package objstore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/redundancy"
	"repro/internal/rng"
)

// testStore builds a small store with short blocks so tests stay fast.
func testStore(t *testing.T, scheme redundancy.Scheme) *Store {
	t.Helper()
	cfg := Config{
		Scheme:              scheme,
		BlockBytes:          256,
		BlocksPerCollection: 4 * scheme.M,
		NumCollections:      32,
		NumDisks:            scheme.N + 8,
		PlacementSeed:       11,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randBytes(r *rng.Source, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

var testSchemes = []redundancy.Scheme{
	{M: 1, N: 2}, {M: 1, N: 3}, {M: 2, N: 3}, {M: 4, N: 6},
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Scheme = redundancy.Scheme{M: 0, N: 2} },
		func(c *Config) { c.BlockBytes = 0 },
		func(c *Config) { c.BlocksPerCollection = 0 },
		func(c *Config) { c.BlocksPerCollection = 3; c.Scheme = redundancy.Scheme{M: 2, N: 3} },
		func(c *Config) { c.NumCollections = 0 },
		func(c *Config) { c.NumDisks = 2 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, scheme := range testSchemes {
		s := testStore(t, scheme)
		for i, size := range []int{0, 1, 255, 256, 257, 1000, 3000} {
			name := string(rune('a' + i))
			data := randBytes(r, size)
			if err := s.Put(name, data); err != nil {
				t.Fatalf("%v size %d: Put: %v", scheme, size, err)
			}
			got, err := s.Get(name)
			if err != nil {
				t.Fatalf("%v size %d: Get: %v", scheme, size, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v size %d: round trip mismatch", scheme, size)
			}
		}
		if err := s.CheckIntegrity(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestPutDuplicate(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	if err := s.Put("x", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("x", []byte("again")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Put: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if _, err := s.Size("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size missing: %v", err)
	}
}

func TestSizeAndFiles(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 2, N: 3})
	s.Put("a", make([]byte, 700))
	s.Put("b", make([]byte, 10))
	if n, _ := s.Size("a"); n != 700 {
		t.Fatalf("Size = %d", n)
	}
	if len(s.Files()) != 2 {
		t.Fatalf("Files = %v", s.Files())
	}
	if s.UsedBlocks() != 4 { // ceil(700/256)=3 + 1
		t.Fatalf("UsedBlocks = %d", s.UsedBlocks())
	}
}

func TestDeleteFreesSlotsAndKeepsParity(t *testing.T) {
	r := rng.New(2)
	s := testStore(t, redundancy.Scheme{M: 4, N: 6})
	s.Put("f", randBytes(r, 2048))
	used := s.UsedBlocks()
	if err := s.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if s.UsedBlocks() != used-8 {
		t.Fatalf("UsedBlocks after delete = %d", s.UsedBlocks())
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatalf("parity broken after delete: %v", err)
	}
	if err := s.Delete("f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestDeltaParityMatchesFullEncode(t *testing.T) {
	// The §2.2 small-write path must leave exactly the parity a full
	// re-encode would produce — CheckIntegrity re-encodes and compares.
	r := rng.New(3)
	for _, scheme := range testSchemes {
		s := testStore(t, scheme)
		for i := 0; i < 10; i++ {
			s.Put(string(rune('a'+i)), randBytes(r, 100+137*i))
		}
		if err := s.CheckIntegrity(); err != nil {
			t.Fatalf("%v: delta parity diverged: %v", scheme, err)
		}
	}
}

func TestDegradedRead(t *testing.T) {
	r := rng.New(4)
	for _, scheme := range testSchemes {
		s := testStore(t, scheme)
		data := randBytes(r, 5000)
		if err := s.Put("f", data); err != nil {
			t.Fatal(err)
		}
		// Fail up to the scheme's tolerance and read through.
		for k := 0; k < scheme.FaultTolerance(); k++ {
			s.FailDisk(k)
			got, err := s.Get("f")
			if err != nil {
				t.Fatalf("%v after %d failures: %v", scheme, k+1, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v after %d failures: corrupted read", scheme, k+1)
			}
		}
	}
}

func TestReadBeyondToleranceFails(t *testing.T) {
	r := rng.New(5)
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	s.Put("f", randBytes(r, 4096))
	// Kill every disk: reads must fail cleanly, not corrupt.
	for id := 0; id < s.NumDisks(); id++ {
		s.FailDisk(id)
	}
	if _, err := s.Get("f"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("expected ErrUnavailable, got %v", err)
	}
}

func TestRecoverRestoresRedundancy(t *testing.T) {
	r := rng.New(6)
	for _, scheme := range testSchemes {
		s := testStore(t, scheme)
		data := randBytes(r, 8000)
		s.Put("f", data)
		lost := s.FailDisk(0)
		stats := s.Recover()
		if stats.ShardsRebuilt != lost {
			t.Fatalf("%v: rebuilt %d of %d shards", scheme, stats.ShardsRebuilt, lost)
		}
		if stats.Unrecoverable != 0 {
			t.Fatalf("%v: %d unrecoverable", scheme, stats.Unrecoverable)
		}
		if err := s.CheckIntegrity(); err != nil {
			t.Fatalf("%v after recover: %v", scheme, err)
		}
		got, err := s.Get("f")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v: data wrong after recover (%v)", scheme, err)
		}
	}
}

func TestRecoverDeclusters(t *testing.T) {
	// FARM property: rebuilt shards land on many disks.
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	r := rng.New(7)
	for i := 0; i < 12; i++ {
		s.Put(string(rune('a'+i)), randBytes(r, 2000))
	}
	lost := s.FailDisk(1)
	if lost < 4 {
		t.Skip("disk 1 held too few shards for a spread test")
	}
	stats := s.Recover()
	if stats.TargetsUsed < 2 {
		t.Fatalf("rebuilt %d shards onto %d disks; expected declustered targets",
			stats.ShardsRebuilt, stats.TargetsUsed)
	}
}

func TestWritesWithDiskDownThenRecover(t *testing.T) {
	// A new write while a disk is down must fail cleanly if it touches a
	// collection with a dead shard... the store routes around it after
	// Recover re-homes the shards.
	r := rng.New(8)
	s := testStore(t, redundancy.Scheme{M: 2, N: 3})
	s.Put("before", randBytes(r, 3000))
	s.FailDisk(0)
	s.Recover()
	if err := s.Put("after", randBytes(r, 3000)); err != nil {
		t.Fatalf("Put after recover: %v", err)
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"before", "after"} {
		if _, err := s.Get(name); err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
	}
}

func TestStoreFull(t *testing.T) {
	cfg := Config{
		Scheme:              redundancy.Scheme{M: 1, N: 2},
		BlockBytes:          16,
		BlocksPerCollection: 1,
		NumCollections:      2,
		NumDisks:            6,
		PlacementSeed:       1,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", make([]byte, 16)); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Put: %v", err)
	}
}

func TestAddDiskUsedByRecovery(t *testing.T) {
	// With barely enough disks, recovery may need a fresh one.
	cfg := Config{
		Scheme:              redundancy.Scheme{M: 1, N: 2},
		BlockBytes:          64,
		BlocksPerCollection: 2,
		NumCollections:      4,
		NumDisks:            4,
		PlacementSeed:       2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	s.Put("f", randBytes(r, 256))
	s.FailDisk(0)
	s.AddDisk()
	stats := s.Recover()
	if stats.Unrecoverable > 0 {
		t.Fatalf("unrecoverable shards with a fresh disk available: %+v", stats)
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary file contents round-trip through every scheme,
// including after a tolerated failure + recovery.
func TestQuickPutFailRecoverGet(t *testing.T) {
	f := func(seed uint64, sizeSel uint16, schemeSel uint8) bool {
		scheme := testSchemes[int(schemeSel)%len(testSchemes)]
		size := int(sizeSel) % 4000
		cfg := Config{
			Scheme:              scheme,
			BlockBytes:          128,
			BlocksPerCollection: 4 * scheme.M,
			NumCollections:      32,
			NumDisks:            scheme.N + 8,
			PlacementSeed:       seed,
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		data := randBytes(r, size)
		if err := s.Put("f", data); err != nil {
			return false
		}
		s.FailDisk(int(seed % uint64(cfg.NumDisks)))
		s.Recover()
		got, err := s.Get("f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, data) && s.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
