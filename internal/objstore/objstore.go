// Package objstore implements the paper's data path (Figure 1) on real
// bytes: files are broken into fixed-size blocks (1 MB by default),
// blocks are gathered into collections by hashing, each collection is
// made redundant as an m/n redundancy group (mirroring, parity, or
// erasure coding via internal/erasure), and the group's n block-shards
// are placed on distinct virtual disks by the RUSH-style algorithm in
// internal/placement.
//
// The store supports degraded reads (reconstructing through the codec
// when a shard's disk is down), FARM-style recovery (re-creating every
// lost shard on a different surviving disk chosen from the candidate
// stream), and the §2.2 small-write optimization: updating one data
// block propagates only the delta to the check shards instead of
// re-encoding the group.
//
// Everything is in memory; the package is the byte-level counterpart of
// the reliability simulator, sharing its scheme, placement, and codec
// substrates.
package objstore

import (
	"errors"
	"fmt"

	"repro/internal/erasure"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/redundancy"
)

// Config sizes a Store.
type Config struct {
	// Scheme is the redundancy configuration of every collection.
	Scheme redundancy.Scheme
	// BlockBytes is the file-block size (the paper's default: 1 MB).
	BlockBytes int
	// BlocksPerCollection is the user-data capacity of one collection in
	// blocks; must be a positive multiple of Scheme.M.
	BlocksPerCollection int
	// NumCollections fixes the collection table (and thus total user
	// capacity = NumCollections × BlocksPerCollection × BlockBytes).
	NumCollections int
	// NumDisks is the virtual disk population; must exceed Scheme.N.
	NumDisks int
	// PlacementSeed drives the deterministic placement.
	PlacementSeed uint64
}

// DefaultConfig returns a small store with the paper's 1 MB blocks and
// two-way mirroring.
func DefaultConfig() Config {
	return Config{
		Scheme:              redundancy.Scheme{M: 1, N: 2},
		BlockBytes:          1 << 20,
		BlocksPerCollection: 16,
		NumCollections:      64,
		NumDisks:            16,
		PlacementSeed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Scheme.M < 1 || c.Scheme.N <= c.Scheme.M:
		return fmt.Errorf("objstore: invalid scheme %v", c.Scheme)
	case c.BlockBytes <= 0:
		return errors.New("objstore: non-positive block size")
	case c.BlocksPerCollection <= 0 || c.BlocksPerCollection%c.Scheme.M != 0:
		return fmt.Errorf("objstore: blocks per collection %d not a positive multiple of m=%d",
			c.BlocksPerCollection, c.Scheme.M)
	case c.NumCollections <= 0:
		return errors.New("objstore: non-positive collection count")
	case c.NumDisks <= c.Scheme.N:
		return fmt.Errorf("objstore: %d disks cannot host %d-wide groups with recovery headroom",
			c.NumDisks, c.Scheme.N)
	}
	return nil
}

// shardKey identifies one shard of one collection on a disk.
type shardKey struct {
	collection int
	rep        int
}

// vdisk is one virtual storage device: a shard map plus liveness. sums
// holds one CRC32C per block-sized shard region, written alongside the
// data; a region whose stored bytes no longer match its sum is silent
// corruption, detected on the next read or integrity check.
type vdisk struct {
	id     int
	alive  bool
	shards map[shardKey][]byte
	sums   map[shardKey][]uint32
}

// collection is one redundancy group of the store.
type collection struct {
	id int
	// disks[rep] is the disk holding shard rep, -1 while lost.
	disks []int
	// used counts occupied block slots.
	used int
	// slots[i] is true if block slot i holds a live block.
	slots []bool
}

// blockAddr locates one file block inside a collection.
type blockAddr struct {
	collection int
	slot       int
}

// fileMeta records a stored file.
type fileMeta struct {
	name   string
	size   int
	blocks []blockAddr
}

// Store is an in-memory object storage cluster.
type Store struct {
	cfg         Config
	codec       erasure.Code
	hasher      *placement.Hasher
	disks       []*vdisk
	collections []*collection
	files       map[string]*fileMeta
	shardBytes  int
	slotsPerRow int // block slots per data shard = BlocksPerCollection / M
	// coefs caches the check-shard generator coefficients (nil for
	// mirroring), probed from the codec once at construction.
	coefs [][]byte
	stats StoreStats
	// sm mirrors fault-path counters into the flight recorder; never nil
	// (a sink over a private registry until SetMetrics installs a real
	// one), so the data paths stay branch-free.
	sm *obs.StoreMetrics
}

// StoreStats counts fault-path activity over the store's lifetime.
type StoreStats struct {
	// DegradedReads counts region reads served through codec
	// reconstruction (shard disk down or shard region corrupt).
	DegradedReads int
	// CorruptionsDetected counts shard regions whose checksum failed on a
	// read or integrity pass; CorruptionsRepaired counts those rewritten
	// in place from reconstructed bytes.
	CorruptionsDetected int
	CorruptionsRepaired int
}

// Stats returns the store's fault-path counters.
func (s *Store) Stats() StoreStats { return s.stats }

// SetMetrics mirrors the store's fault-path counters into the given
// flight-recorder bundle. Purely observational.
func (s *Store) SetMetrics(sm *obs.StoreMetrics) {
	if sm != nil {
		s.sm = sm
	}
}

// Errors returned by Store operations.
var (
	ErrExists      = errors.New("objstore: file already exists")
	ErrNotFound    = errors.New("objstore: file not found")
	ErrFull        = errors.New("objstore: no collection has room")
	ErrUnavailable = errors.New("objstore: data unavailable (too many disks down)")
)

// New builds an empty store with all collections pre-placed (the paper's
// system allocates redundancy groups up front and fills them with
// collections of blocks).
func New(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	codec, err := erasure.New(cfg.Scheme.M, cfg.Scheme.N)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:         cfg,
		codec:       codec,
		hasher:      placement.NewHasher(cfg.PlacementSeed),
		files:       make(map[string]*fileMeta),
		slotsPerRow: cfg.BlocksPerCollection / cfg.Scheme.M,
		sm:          obs.NewStoreMetrics(obs.NewRegistry()),
	}
	s.shardBytes = s.slotsPerRow * cfg.BlockBytes
	if cfg.Scheme.M > 1 {
		coefs, cerr := checkCoefficients(codec, cfg.Scheme.M, cfg.Scheme.N)
		if cerr != nil {
			return nil, cerr
		}
		s.coefs = coefs
	}
	for i := 0; i < cfg.NumDisks; i++ {
		s.disks = append(s.disks, newVdisk(i))
	}
	for cID := 0; cID < cfg.NumCollections; cID++ {
		ids, err := s.hasher.PlaceGroup(storeView{s}, uint64(cID), cfg.Scheme.N, int64(s.shardBytes))
		if err != nil {
			return nil, fmt.Errorf("objstore: placing collection %d: %w", cID, err)
		}
		col := &collection{
			id:    cID,
			disks: ids,
			slots: make([]bool, cfg.BlocksPerCollection),
		}
		for rep, d := range ids {
			s.storeShard(d, shardKey{cID, rep}, make([]byte, s.shardBytes))
		}
		s.collections = append(s.collections, col)
	}
	return s, nil
}

// storeView adapts the store to placement.View. Virtual disks have no
// byte budget (the shard map is the capacity), so eligibility is
// liveness and balance is shard count.
type storeView struct{ s *Store }

func (v storeView) NumDisks() int { return len(v.s.disks) }

func (v storeView) Eligible(id int, _ int64) bool { return v.s.disks[id].alive }

func (v storeView) UsedBytes(id int) int64 {
	return int64(len(v.s.disks[id].shards)) * int64(v.s.shardBytes)
}

// Scheme returns the store's redundancy configuration.
func (s *Store) Scheme() redundancy.Scheme { return s.cfg.Scheme }

// NumDisks returns the virtual disk population.
func (s *Store) NumDisks() int { return len(s.disks) }

// AliveDisks counts disks in service.
func (s *Store) AliveDisks() int {
	n := 0
	for _, d := range s.disks {
		if d.alive {
			n++
		}
	}
	return n
}

// CapacityBlocks returns the total user block slots.
func (s *Store) CapacityBlocks() int {
	return s.cfg.NumCollections * s.cfg.BlocksPerCollection
}

// UsedBlocks returns occupied user block slots.
func (s *Store) UsedBlocks() int {
	n := 0
	for _, c := range s.collections {
		n += c.used
	}
	return n
}

// slotLocation maps a collection slot to its data shard and byte offset.
func (s *Store) slotLocation(slot int) (rep, offset int) {
	return slot / s.slotsPerRow, (slot % s.slotsPerRow) * s.cfg.BlockBytes
}

// chooseCollection maps a block to a collection: hash of (file, index)
// with deterministic linear probing past full collections — the
// decentralized block→collection mapping of Figure 1.
func (s *Store) chooseCollection(name string, index int) (int, error) {
	h := s.hasher.Candidate(hashString(name)+uint64(index)*0x9e3779b97f4a7c15,
		0, 0, s.cfg.NumCollections)
	for probe := 0; probe < s.cfg.NumCollections; probe++ {
		cID := (h + probe) % s.cfg.NumCollections
		if s.collections[cID].used < s.cfg.BlocksPerCollection {
			return cID, nil
		}
	}
	return 0, ErrFull
}

// hashString is a small FNV-1a for block keys.
func hashString(v string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= 1099511628211
	}
	return h
}
