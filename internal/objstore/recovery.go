package objstore

import (
	"fmt"

	"repro/internal/placement"
)

// FailDisk takes a virtual disk out of service, dropping its shards. It
// returns the number of shards lost. Reads continue in degraded mode as
// long as every collection keeps at least m shards.
//
// The shard and checksum maps are cleared in place, not reallocated, so
// repeated fail/recover cycles (crash-loop tests, churn experiments)
// reuse the maps' buckets instead of churning the allocator.
//
//farm:hotpath clear()-reuse failure path, gated by TestFailDiskAllocationStable
func (s *Store) FailDisk(id int) int {
	d := s.disks[id]
	if !d.alive {
		return 0
	}
	d.alive = false
	lost := len(d.shards)
	clear(d.shards)
	clear(d.sums)
	for _, col := range s.collections {
		for rep, cd := range col.disks {
			if cd == id {
				col.disks[rep] = -1
			}
		}
	}
	return lost
}

// ReviveDisk returns a failed disk to service, empty (its contents were
// lost with the failure). Recovery may then choose it as a target again.
func (s *Store) ReviveDisk(id int) {
	s.disks[id].alive = true
}

// CorruptShardRegion silently flips bytes in one block-sized region of a
// resident shard — a fault-injection hook modelling latent sector
// corruption. The stored checksum is left untouched, so the damage is
// discovered only by the next verified read, Recover, or CheckIntegrity.
// Returns false if the shard is not resident (disk down or shard lost).
func (s *Store) CorruptShardRegion(cID, rep, region int) bool {
	if cID < 0 || cID >= len(s.collections) || rep < 0 || rep >= s.cfg.Scheme.N {
		return false
	}
	if region < 0 || region >= s.slotsPerRow {
		return false
	}
	col := s.collections[cID]
	d := col.disks[rep]
	if d < 0 || !s.disks[d].alive {
		return false
	}
	data, ok := s.disks[d].shards[shardKey{cID, rep}]
	if !ok {
		return false
	}
	data[region*s.cfg.BlockBytes] ^= 0xff
	return true
}

// RecoverStats reports what a Recover pass did.
type RecoverStats struct {
	// ShardsRebuilt counts shards re-created on new disks.
	ShardsRebuilt int
	// Unrecoverable counts shards that could not be rebuilt (fewer than
	// m survivors — data loss).
	Unrecoverable int
	// TargetsUsed is the number of distinct disks that received rebuilt
	// shards (FARM declustering: many, not one).
	TargetsUsed int
	// CorruptShards counts survivor shards whose checksums failed
	// verification during the pass (treated as erasures);
	// ShardsRepaired counts those rewritten in place from the
	// reconstruction.
	CorruptShards  int
	ShardsRepaired int
}

// Recover rebuilds every lost shard FARM-style: each missing shard of
// each collection is reconstructed from any m survivors and written to a
// new disk chosen from the collection's candidate stream — alive, not
// already holding a shard of the collection (rule (b)). Lost collections
// (fewer than m survivors) are counted, not resurrected.
func (s *Store) Recover() RecoverStats {
	var stats RecoverStats
	targets := map[int]bool{}
	for _, col := range s.collections {
		var missing []int
		exclude := map[int]bool{}
		for rep, d := range col.disks {
			if d < 0 {
				missing = append(missing, rep)
			} else {
				exclude[d] = true
			}
		}
		// Assemble survivors once, verifying every region checksum; a
		// survivor with a corrupt region is an erasure too — using it
		// would launder the corruption into the rebuilt shards.
		shards := make([][]byte, s.cfg.Scheme.N)
		var corrupt []int
		present := 0
		for rep, d := range col.disks {
			if d < 0 {
				continue
			}
			data, err := s.shard(col, rep)
			if err != nil {
				continue
			}
			ok := true
			for off := 0; off < s.shardBytes; off += s.cfg.BlockBytes {
				if !s.regionOK(col, rep, off, data[off:off+s.cfg.BlockBytes]) {
					ok = false
					break
				}
			}
			if !ok {
				stats.CorruptShards++
				s.stats.CorruptionsDetected++
				s.sm.CorruptRegions.Inc()
				corrupt = append(corrupt, rep)
				continue
			}
			shards[rep] = append([]byte(nil), data...)
			present++
		}
		if len(missing) == 0 && len(corrupt) == 0 {
			continue
		}
		if present < s.cfg.Scheme.M {
			stats.Unrecoverable += len(missing) + len(corrupt)
			continue
		}
		if err := s.codec.Reconstruct(shards); err != nil {
			stats.Unrecoverable += len(missing) + len(corrupt)
			continue
		}
		// Repair corrupt survivors in place on their live disks.
		for _, rep := range corrupt {
			s.storeShard(col.disks[rep], shardKey{col.id, rep}, shards[rep])
			s.stats.CorruptionsRepaired++
			s.sm.Repairs.Inc()
			stats.ShardsRepaired++
		}
		for _, rep := range missing {
			target, _, err := s.hasher.RecoveryTarget(
				storeView{s}, uint64(col.id), rep, int64(s.shardBytes), placement.MapExcluder(exclude), 0)
			if err != nil {
				stats.Unrecoverable++
				continue
			}
			s.storeShard(target, shardKey{col.id, rep}, shards[rep])
			col.disks[rep] = target
			exclude[target] = true
			targets[target] = true
			stats.ShardsRebuilt++
			s.sm.ShardsRebuilt.Inc()
		}
	}
	stats.TargetsUsed = len(targets)
	return stats
}

// AddDisk grows the cluster with a fresh virtual disk and returns its ID.
func (s *Store) AddDisk() int {
	id := len(s.disks)
	s.disks = append(s.disks, newVdisk(id))
	return id
}

// CheckIntegrity verifies every collection: shards live where the
// metadata says, group parity verifies, and no disk holds two shards of
// one collection. Returns the first violation.
func (s *Store) CheckIntegrity() error {
	for _, col := range s.collections {
		seen := map[int]bool{}
		shards := make([][]byte, s.cfg.Scheme.N)
		complete := true
		for rep, d := range col.disks {
			if d < 0 {
				complete = false
				continue
			}
			if seen[d] {
				return fmt.Errorf("objstore: collection %d has two shards on disk %d", col.id, d)
			}
			seen[d] = true
			data, ok := s.disks[d].shards[shardKey{col.id, rep}]
			if !ok {
				return fmt.Errorf("objstore: collection %d shard %d missing from disk %d", col.id, rep, d)
			}
			for off := 0; off < s.shardBytes; off += s.cfg.BlockBytes {
				if !s.regionOK(col, rep, off, data[off:off+s.cfg.BlockBytes]) {
					return fmt.Errorf("objstore: collection %d shard %d region %d checksum mismatch on disk %d",
						col.id, rep, off/s.cfg.BlockBytes, d)
				}
			}
			shards[rep] = data
		}
		if complete {
			ok, err := s.codec.Verify(shards)
			if err != nil {
				return fmt.Errorf("objstore: verifying collection %d: %w", col.id, err)
			}
			if !ok {
				return fmt.Errorf("objstore: collection %d parity mismatch", col.id)
			}
		}
	}
	return nil
}
