package objstore

import (
	"fmt"

	"repro/internal/placement"
)

// FailDisk takes a virtual disk out of service, dropping its shards. It
// returns the number of shards lost. Reads continue in degraded mode as
// long as every collection keeps at least m shards.
func (s *Store) FailDisk(id int) int {
	d := s.disks[id]
	if !d.alive {
		return 0
	}
	d.alive = false
	lost := len(d.shards)
	d.shards = make(map[shardKey][]byte)
	for _, col := range s.collections {
		for rep, cd := range col.disks {
			if cd == id {
				col.disks[rep] = -1
			}
		}
	}
	return lost
}

// RecoverStats reports what a Recover pass did.
type RecoverStats struct {
	// ShardsRebuilt counts shards re-created on new disks.
	ShardsRebuilt int
	// Unrecoverable counts shards that could not be rebuilt (fewer than
	// m survivors — data loss).
	Unrecoverable int
	// TargetsUsed is the number of distinct disks that received rebuilt
	// shards (FARM declustering: many, not one).
	TargetsUsed int
}

// Recover rebuilds every lost shard FARM-style: each missing shard of
// each collection is reconstructed from any m survivors and written to a
// new disk chosen from the collection's candidate stream — alive, not
// already holding a shard of the collection (rule (b)). Lost collections
// (fewer than m survivors) are counted, not resurrected.
func (s *Store) Recover() RecoverStats {
	var stats RecoverStats
	targets := map[int]bool{}
	for _, col := range s.collections {
		var missing []int
		exclude := map[int]bool{}
		for rep, d := range col.disks {
			if d < 0 {
				missing = append(missing, rep)
			} else {
				exclude[d] = true
			}
		}
		if len(missing) == 0 {
			continue
		}
		if len(col.disks)-len(missing) < s.cfg.Scheme.M {
			stats.Unrecoverable += len(missing)
			continue
		}
		// Assemble survivors once, reconstruct all missing shards.
		shards := make([][]byte, s.cfg.Scheme.N)
		for rep, d := range col.disks {
			if d < 0 {
				continue
			}
			data, err := s.shard(col, rep)
			if err != nil {
				continue
			}
			shards[rep] = append([]byte(nil), data...)
		}
		if err := s.codec.Reconstruct(shards); err != nil {
			stats.Unrecoverable += len(missing)
			continue
		}
		for _, rep := range missing {
			target, _, err := s.hasher.RecoveryTarget(
				storeView{s}, uint64(col.id), rep, int64(s.shardBytes), placement.MapExcluder(exclude), 0)
			if err != nil {
				stats.Unrecoverable++
				continue
			}
			s.disks[target].shards[shardKey{col.id, rep}] = shards[rep]
			col.disks[rep] = target
			exclude[target] = true
			targets[target] = true
			stats.ShardsRebuilt++
		}
	}
	stats.TargetsUsed = len(targets)
	return stats
}

// AddDisk grows the cluster with a fresh virtual disk and returns its ID.
func (s *Store) AddDisk() int {
	id := len(s.disks)
	s.disks = append(s.disks, &vdisk{id: id, alive: true, shards: make(map[shardKey][]byte)})
	return id
}

// CheckIntegrity verifies every collection: shards live where the
// metadata says, group parity verifies, and no disk holds two shards of
// one collection. Returns the first violation.
func (s *Store) CheckIntegrity() error {
	for _, col := range s.collections {
		seen := map[int]bool{}
		shards := make([][]byte, s.cfg.Scheme.N)
		complete := true
		for rep, d := range col.disks {
			if d < 0 {
				complete = false
				continue
			}
			if seen[d] {
				return fmt.Errorf("objstore: collection %d has two shards on disk %d", col.id, d)
			}
			seen[d] = true
			data, ok := s.disks[d].shards[shardKey{col.id, rep}]
			if !ok {
				return fmt.Errorf("objstore: collection %d shard %d missing from disk %d", col.id, rep, d)
			}
			shards[rep] = data
		}
		if complete {
			ok, err := s.codec.Verify(shards)
			if err != nil {
				return fmt.Errorf("objstore: verifying collection %d: %w", col.id, err)
			}
			if !ok {
				return fmt.Errorf("objstore: collection %d parity mismatch", col.id)
			}
		}
	}
	return nil
}
