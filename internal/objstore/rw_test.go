package objstore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/redundancy"
	"repro/internal/rng"
)

func TestWriteAtInPlace(t *testing.T) {
	r := rng.New(31)
	for _, scheme := range testSchemes {
		s := testStore(t, scheme)
		data := randBytes(r, 1500)
		if err := s.Put("f", data); err != nil {
			t.Fatal(err)
		}
		patch := randBytes(r, 300)
		off := 200 // spans into the second 256-byte block
		if err := s.WriteAt("f", patch, off); err != nil {
			t.Fatalf("%v: WriteAt: %v", scheme, err)
		}
		copy(data[off:], patch)
		got, err := s.Get("f")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v: content wrong after WriteAt (%v)", scheme, err)
		}
		// The delta path must have kept parity exact.
		if err := s.CheckIntegrity(); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestWriteAtBounds(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 2, N: 3})
	s.Put("f", make([]byte, 100))
	if err := s.WriteAt("f", make([]byte, 10), 95); err == nil {
		t.Fatal("write past EOF accepted")
	}
	if err := s.WriteAt("f", []byte{1}, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := s.WriteAt("nope", []byte{1}, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestReadAt(t *testing.T) {
	r := rng.New(32)
	s := testStore(t, redundancy.Scheme{M: 4, N: 6})
	data := randBytes(r, 2000)
	s.Put("f", data)
	buf := make([]byte, 600)
	if err := s.ReadAt("f", buf, 700); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[700:1300]) {
		t.Fatal("ReadAt content wrong")
	}
	// Degraded partial read.
	s.FailDisk(2)
	if err := s.ReadAt("f", buf, 700); err != nil {
		t.Fatalf("degraded ReadAt: %v", err)
	}
	if !bytes.Equal(buf, data[700:1300]) {
		t.Fatal("degraded ReadAt content wrong")
	}
	if err := s.ReadAt("f", make([]byte, 10), 1995); err == nil {
		t.Fatal("read past EOF accepted")
	}
}

func TestWriteAtOnLastShortBlock(t *testing.T) {
	// File ends mid-block: WriteAt near the tail must not disturb the
	// implied zero padding (checked via parity integrity).
	s := testStore(t, redundancy.Scheme{M: 2, N: 3})
	s.Put("f", make([]byte, 300)) // 256 + 44 bytes
	if err := s.WriteAt("f", []byte{9, 9, 9}, 297); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("f")
	if got[297] != 9 || got[299] != 9 {
		t.Fatal("tail write lost")
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// Property: random splice via WriteAt equals the in-memory splice, under
// every scheme, with parity intact.
func TestQuickWriteAtEquivalence(t *testing.T) {
	f := func(seed uint64, offSel, lenSel uint16) bool {
		scheme := testSchemes[seed%uint64(len(testSchemes))]
		cfg := Config{
			Scheme:              scheme,
			BlockBytes:          128,
			BlocksPerCollection: 4 * scheme.M,
			NumCollections:      24,
			NumDisks:            scheme.N + 6,
			PlacementSeed:       seed,
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		data := randBytes(r, 900)
		if err := s.Put("f", data); err != nil {
			return false
		}
		off := int(offSel) % 900
		n := int(lenSel) % (900 - off)
		patch := randBytes(r, n)
		if err := s.WriteAt("f", patch, off); err != nil {
			return false
		}
		copy(data[off:], patch)
		got, err := s.Get("f")
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		return s.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
