package objstore

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/redundancy"
	"repro/internal/rng"
)

// locate returns the (collection, data rep, region) of a file's block b.
func locate(t *testing.T, s *Store, name string, b int) (cID, rep, region int) {
	t.Helper()
	meta, ok := s.files[name]
	if !ok {
		t.Fatalf("file %q not found", name)
	}
	addr := meta.blocks[b]
	rep, offset := s.slotLocation(addr.slot)
	return addr.collection, rep, offset / s.cfg.BlockBytes
}

// TestCorruptionDetectedDegradedReadAndRepair is the acceptance path for
// checksummed shards: silent corruption of a data shard region is caught
// by the checksum on the next read, served degraded through the codec,
// and repaired in place so the following read is clean.
func TestCorruptionDetectedDegradedReadAndRepair(t *testing.T) {
	for _, scheme := range []redundancy.Scheme{{M: 1, N: 2}, {M: 2, N: 3}, {M: 4, N: 6}} {
		s := testStore(t, scheme)
		data := randBytes(rng.New(99), 5000)
		if err := s.Put("f", data); err != nil {
			t.Fatalf("%v put: %v", scheme, err)
		}
		cID, rep, region := locate(t, s, "f", 1)
		if !s.CorruptShardRegion(cID, rep, region) {
			t.Fatalf("%v: corruption injection refused", scheme)
		}
		got, err := s.Get("f")
		if err != nil {
			t.Fatalf("%v get after corruption: %v", scheme, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: corrupted read returned wrong bytes", scheme)
		}
		st := s.Stats()
		if st.CorruptionsDetected == 0 {
			t.Errorf("%v: corruption not detected", scheme)
		}
		if st.DegradedReads == 0 {
			t.Errorf("%v: read not served degraded", scheme)
		}
		if st.CorruptionsRepaired == 0 {
			t.Errorf("%v: corruption not repaired in place", scheme)
		}
		// The repair must leave the store fully consistent...
		if err := s.CheckIntegrity(); err != nil {
			t.Fatalf("%v integrity after repair: %v", scheme, err)
		}
		// ... and the next read must be clean (no new degraded activity).
		if _, err := s.Get("f"); err != nil {
			t.Fatalf("%v clean re-read: %v", scheme, err)
		}
		if after := s.Stats(); after != st {
			t.Errorf("%v: re-read after repair not clean: %+v -> %+v", scheme, st, after)
		}
	}
}

// TestCorruptCheckShardRepairedOnWrite exercises the §2.2 delta path when
// the check shard's old bytes are corrupt: the delta rule would fold the
// update into garbage, so the region must be rebuilt from the data reps.
func TestCorruptCheckShardRepairedOnWrite(t *testing.T) {
	scheme := redundancy.Scheme{M: 2, N: 4}
	s := testStore(t, scheme)
	data := randBytes(rng.New(7), 4000)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	cID, _, region := locate(t, s, "f", 0)
	// Corrupt a check shard (rep >= m) in the same region.
	if !s.CorruptShardRegion(cID, scheme.M, region) {
		t.Fatal("corruption injection refused")
	}
	// Overwrite the data block: the write must detect and rebuild the
	// corrupt check region rather than delta-folding into it.
	patch := randBytes(rng.New(8), s.cfg.BlockBytes)
	if err := s.WriteAt("f", patch, 0); err != nil {
		t.Fatalf("write over corrupt parity: %v", err)
	}
	if s.Stats().CorruptionsRepaired == 0 {
		t.Error("check-shard corruption not repaired")
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after write-path repair: %v", err)
	}
	got, err := s.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want, patch)
	if !bytes.Equal(got, want) {
		t.Fatal("write over corrupt parity lost data")
	}
}

// TestRecoverVerifiesSurvivorChecksums: a corrupt survivor must be
// treated as an erasure during Recover (using it would launder the
// corruption into the rebuilt shards) and then repaired in place.
func TestRecoverVerifiesSurvivorChecksums(t *testing.T) {
	scheme := redundancy.Scheme{M: 2, N: 4}
	s := testStore(t, scheme)
	data := randBytes(rng.New(21), 6000)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	cID, rep, region := locate(t, s, "f", 0)
	// Kill the disk of another rep of the same collection, then corrupt
	// this (surviving) data shard.
	col := s.collections[cID]
	victim := col.disks[(rep+1)%scheme.N]
	s.FailDisk(victim)
	if !s.CorruptShardRegion(cID, rep, region) {
		t.Fatal("corruption injection refused")
	}
	rs := s.Recover()
	if rs.CorruptShards == 0 {
		t.Error("Recover did not flag the corrupt survivor")
	}
	if rs.ShardsRepaired == 0 {
		t.Error("Recover did not repair the corrupt survivor")
	}
	if rs.Unrecoverable != 0 {
		t.Errorf("Recover reported %d unrecoverable shards", rs.Unrecoverable)
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after recover: %v", err)
	}
	got, err := s.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recover with corrupt survivor lost data")
	}
}

// TestCorruptionBeyondToleranceUnavailable: when corruption plus disk
// failures exceed the scheme's tolerance, reads degrade to
// ErrUnavailable instead of returning wrong bytes.
func TestCorruptionBeyondToleranceUnavailable(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	data := randBytes(rng.New(5), 3000)
	if err := s.Put("f", data); err != nil {
		t.Fatal(err)
	}
	cID, rep, region := locate(t, s, "f", 0)
	col := s.collections[cID]
	s.FailDisk(col.disks[(rep+1)%2]) // kill the mirror
	if !s.CorruptShardRegion(cID, rep, region) {
		t.Fatal("corruption injection refused")
	}
	_, err := s.Get("f")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}

// TestCorruptShardRegionRefusals covers the injection hook's bounds.
func TestCorruptShardRegionRefusals(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	if s.CorruptShardRegion(-1, 0, 0) || s.CorruptShardRegion(len(s.collections), 0, 0) {
		t.Error("out-of-range collection accepted")
	}
	if s.CorruptShardRegion(0, -1, 0) || s.CorruptShardRegion(0, 2, 0) {
		t.Error("out-of-range rep accepted")
	}
	if s.CorruptShardRegion(0, 0, s.slotsPerRow) {
		t.Error("out-of-range region accepted")
	}
	d := s.collections[0].disks[0]
	s.FailDisk(d)
	if s.CorruptShardRegion(0, 0, 0) {
		t.Error("corruption accepted on failed disk")
	}
}

// TestFailDiskAllocationStable: FailDisk must clear and reuse the shard
// and checksum maps rather than allocating fresh ones, so fail/revive
// churn is allocation-free.
func TestFailDiskAllocationStable(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 1, N: 2})
	if err := s.Put("f", randBytes(rng.New(3), 4000)); err != nil {
		t.Fatal(err)
	}
	// Warm up one cycle so map buckets exist.
	s.FailDisk(0)
	s.ReviveDisk(0)
	allocs := testing.AllocsPerRun(50, func() {
		s.FailDisk(0)
		s.ReviveDisk(0)
	})
	if allocs > 0 {
		t.Errorf("FailDisk/ReviveDisk cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFailRecoverCycleStability drives repeated fail → recover → revive
// churn and checks the store stays consistent and readable throughout —
// the graceful-degradation guarantee at the byte level.
func TestFailRecoverCycleStability(t *testing.T) {
	s := testStore(t, redundancy.Scheme{M: 2, N: 4})
	files := map[string][]byte{}
	r := rng.New(11)
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		data := randBytes(rng.New(uint64(i+1)), 2000+i*700)
		files[name] = data
		if err := s.Put(name, data); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 12; cycle++ {
		id := r.Intn(s.NumDisks())
		s.FailDisk(id)
		if rs := s.Recover(); rs.Unrecoverable != 0 {
			t.Fatalf("cycle %d: %d unrecoverable shards", cycle, rs.Unrecoverable)
		}
		s.ReviveDisk(id)
		if err := s.CheckIntegrity(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		for name, want := range files {
			got, err := s.Get(name)
			if err != nil {
				t.Fatalf("cycle %d get %q: %v", cycle, name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cycle %d: %q corrupted", cycle, name)
			}
		}
	}
}
