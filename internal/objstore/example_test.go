package objstore_test

import (
	"fmt"

	"repro/internal/objstore"
	"repro/internal/redundancy"
)

func Example() {
	cfg := objstore.Config{
		Scheme:              redundancy.MustParse("2/3"),
		BlockBytes:          1024,
		BlocksPerCollection: 4,
		NumCollections:      16,
		NumDisks:            8,
		PlacementSeed:       1,
	}
	store, _ := objstore.New(cfg)

	_ = store.Put("hello.txt", []byte("redundancy groups on real bytes"))

	// A disk dies; the read reconstructs through the parity.
	store.FailDisk(0)
	data, _ := store.Get("hello.txt")
	fmt.Println(string(data))

	// FARM-style recovery restores full redundancy on other disks.
	stats := store.Recover()
	fmt.Println("unrecoverable shards:", stats.Unrecoverable)
	fmt.Println("integrity:", store.CheckIntegrity() == nil)
	// Output:
	// redundancy groups on real bytes
	// unrecoverable shards: 0
	// integrity: true
}
