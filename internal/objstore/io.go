package objstore

import (
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/gf256"
)

// castagnoli is the CRC32C polynomial table used for shard-region sums
// (hardware-accelerated on the platforms that matter).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// newVdisk returns a fresh, alive virtual disk.
func newVdisk(id int) *vdisk {
	return &vdisk{
		id:     id,
		alive:  true,
		shards: make(map[shardKey][]byte),
		sums:   make(map[shardKey][]uint32),
	}
}

// storeShard installs a whole shard on a disk, computing all region sums.
func (s *Store) storeShard(d int, key shardKey, data []byte) {
	dk := s.disks[d]
	dk.shards[key] = data
	sums := make([]uint32, s.slotsPerRow)
	for i := range sums {
		lo := i * s.cfg.BlockBytes
		sums[i] = crc32.Checksum(data[lo:lo+s.cfg.BlockBytes], castagnoli)
	}
	dk.sums[key] = sums
}

// setRegionSum refreshes one region's checksum after a legitimate write.
func (s *Store) setRegionSum(col *collection, rep, offset int, region []byte) {
	d := col.disks[rep]
	s.disks[d].sums[shardKey{col.id, rep}][offset/s.cfg.BlockBytes] =
		crc32.Checksum(region, castagnoli)
}

// regionOK verifies one region of a resident shard against its sum.
func (s *Store) regionOK(col *collection, rep, offset int, region []byte) bool {
	d := col.disks[rep]
	sums, ok := s.disks[d].sums[shardKey{col.id, rep}]
	if !ok {
		return false
	}
	return crc32.Checksum(region, castagnoli) == sums[offset/s.cfg.BlockBytes]
}

// Put stores a file under name. The data is split into BlockBytes blocks
// (the last block zero-padded on disk, exact length kept in metadata);
// each block lands in a collection chosen by hashing and the check
// shards are updated with the §2.2 delta rule.
func (s *Store) Put(name string, data []byte) error {
	if _, dup := s.files[name]; dup {
		return ErrExists
	}
	blocks := (len(data) + s.cfg.BlockBytes - 1) / s.cfg.BlockBytes
	if blocks == 0 {
		blocks = 1 // empty files still occupy one (zero) block
	}
	meta := &fileMeta{name: name, size: len(data)}
	for b := 0; b < blocks; b++ {
		cID, err := s.chooseCollection(name, b)
		if err != nil {
			return err
		}
		col := s.collections[cID]
		slot := -1
		for i, taken := range col.slots {
			if !taken {
				slot = i
				break
			}
		}
		if slot < 0 {
			return ErrFull // chooseCollection said there was room; defensive
		}
		lo := b * s.cfg.BlockBytes
		hi := lo + s.cfg.BlockBytes
		if hi > len(data) {
			hi = len(data)
		}
		var chunk []byte
		if lo < len(data) {
			chunk = data[lo:hi]
		}
		if err := s.writeSlot(col, slot, chunk); err != nil {
			return err
		}
		col.slots[slot] = true
		col.used++
		meta.blocks = append(meta.blocks, blockAddr{collection: cID, slot: slot})
	}
	s.files[name] = meta
	return nil
}

// writeSlot writes block bytes into a collection slot and propagates the
// delta to every check shard: newCheck = oldCheck ⊕ coef·(new ⊕ old),
// the paper's RAID-5-style small write (§2.2). Mirrors (m == 1) copy the
// block into every replica directly.
func (s *Store) writeSlot(col *collection, slot int, chunk []byte) error {
	rep, offset := s.slotLocation(slot)
	data, err := s.shard(col, rep)
	if err != nil {
		return err
	}
	region := data[offset : offset+s.cfg.BlockBytes]
	if !s.regionOK(col, rep, offset, region) {
		// The old bytes are corrupt; the delta rule needs the true old
		// region, so repair it first (readRegion reconstructs and rewrites
		// in place when the disk is alive — it is, shard() just succeeded).
		if _, rerr := s.readRegion(col, rep, offset); rerr != nil {
			return rerr
		}
	}

	// Compute the delta before overwriting.
	delta := make([]byte, s.cfg.BlockBytes)
	copy(delta, region)
	for i := range delta {
		var nb byte
		if i < len(chunk) {
			nb = chunk[i]
		}
		delta[i] ^= nb
	}
	// Overwrite the data region.
	for i := range region {
		if i < len(chunk) {
			region[i] = chunk[i]
		} else {
			region[i] = 0
		}
	}
	s.setRegionSum(col, rep, offset, region)
	return s.propagateDelta(col, rep, offset, delta, region)
}

// propagateDelta folds a data-region delta into the check shards.
func (s *Store) propagateDelta(col *collection, dataRep, offset int, delta, newRegion []byte) error {
	m, n := s.cfg.Scheme.M, s.cfg.Scheme.N
	if m == 1 {
		// Mirroring: replicas hold the same bytes; copy the new region.
		// The full-region overwrite incidentally heals any silent
		// corruption of the replica region.
		for rep := 1; rep < n; rep++ {
			shard, err := s.shard(col, rep)
			if err != nil {
				return err
			}
			copy(shard[offset:offset+s.cfg.BlockBytes], newRegion)
			s.setRegionSum(col, rep, offset, shard[offset:offset+s.cfg.BlockBytes])
		}
		return nil
	}
	for rep := m; rep < n; rep++ {
		shard, err := s.shard(col, rep)
		if err != nil {
			return err
		}
		region := shard[offset : offset+s.cfg.BlockBytes]
		if !s.regionOK(col, rep, offset, region) {
			// The old check bytes are corrupt: folding a delta into garbage
			// yields garbage. Rebuild the region from the (verified) data
			// regions instead — the data rep was just overwritten, so the
			// recomputation lands on the new contents directly.
			s.stats.CorruptionsDetected++
			s.sm.CorruptRegions.Inc()
			for i := range region {
				region[i] = 0
			}
			for d := 0; d < m; d++ {
				dreg, derr := s.readRegion(col, d, offset)
				if derr != nil {
					return derr
				}
				gf256.MulSlice(s.coefs[rep-m][d], dreg, region)
			}
			s.stats.CorruptionsRepaired++
			s.sm.Repairs.Inc()
			s.setRegionSum(col, rep, offset, region)
			continue
		}
		gf256.MulSlice(s.coefs[rep-m][dataRep], delta, region)
		s.setRegionSum(col, rep, offset, region)
	}
	return nil
}

// checkCoefficients returns the generator coefficients of each check
// shard over the data shards: XOR parity uses all-ones; Reed–Solomon
// uses its Cauchy rows, recovered by probing the codec with unit
// vectors once per store (cached in Store.coefs by New). A codec that
// rejects the probe surfaces as a constructor error, not a panic.
func checkCoefficients(codec interface {
	DataShards() int
	TotalShards() int
	Encode([][]byte) error
}, m, n int) ([][]byte, error) {
	k := n - m
	out := make([][]byte, k)
	shards := make([][]byte, n)
	for i := range shards {
		shards[i] = make([]byte, 1)
	}
	for c := range out {
		out[c] = make([]byte, m)
	}
	for d := 0; d < m; d++ {
		for i := 0; i < m; i++ {
			shards[i][0] = 0
		}
		shards[d][0] = 1
		if err := codec.Encode(shards); err != nil {
			return nil, fmt.Errorf("objstore: probing codec: %w", err)
		}
		for c := 0; c < k; c++ {
			out[c][d] = shards[m+c][0]
		}
	}
	return out, nil
}

// shard fetches a live shard's bytes, failing if its disk is down.
func (s *Store) shard(col *collection, rep int) ([]byte, error) {
	d := col.disks[rep]
	if d < 0 || !s.disks[d].alive {
		return nil, fmt.Errorf("%w: collection %d shard %d", ErrUnavailable, col.id, rep)
	}
	data, ok := s.disks[d].shards[shardKey{col.id, rep}]
	if !ok {
		return nil, fmt.Errorf("objstore: shard %d/%d missing from disk %d", col.id, rep, d)
	}
	return data, nil
}

// Get reads a file back, reconstructing through the codec when data
// shards are unreachable (degraded read). Fails with ErrUnavailable when
// more than n−m shards of some needed collection are down.
func (s *Store) Get(name string) ([]byte, error) {
	meta, ok := s.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, meta.size)
	for b, addr := range meta.blocks {
		col := s.collections[addr.collection]
		rep, offset := s.slotLocation(addr.slot)
		region, err := s.readRegion(col, rep, offset)
		if err != nil {
			return nil, err
		}
		lo := b * s.cfg.BlockBytes
		n := copy(out[lo:], region)
		_ = n
	}
	return out, nil
}

// readRegion returns a data shard region. A shard on a failed disk or a
// region whose checksum does not verify is treated as an erasure: the
// region is reconstructed from the survivors' verified regions, and
// corrupt regions on live disks are repaired in place with the
// reconstructed bytes.
func (s *Store) readRegion(col *collection, rep, offset int) ([]byte, error) {
	if data, err := s.shard(col, rep); err == nil {
		region := data[offset : offset+s.cfg.BlockBytes]
		if s.regionOK(col, rep, offset, region) {
			return region, nil
		}
		s.stats.CorruptionsDetected++
		s.sm.CorruptRegions.Inc()
	}
	// Degraded read: assemble the surviving verified regions and
	// reconstruct the missing/corrupt ones. Reconstruction is per region
	// (the codecs are bytewise), so only BlockBytes per shard move.
	s.stats.DegradedReads++
	s.sm.DegradedReads.Inc()
	shards := make([][]byte, s.cfg.Scheme.N)
	var corrupt []int
	present := 0
	for r := range shards {
		data, err := s.shard(col, r)
		if err != nil {
			continue
		}
		region := data[offset : offset+s.cfg.BlockBytes]
		if !s.regionOK(col, r, offset, region) {
			if r != rep { // rep's corruption was already counted above
				s.stats.CorruptionsDetected++
				s.sm.CorruptRegions.Inc()
			}
			corrupt = append(corrupt, r)
			continue
		}
		// Reconstruct on copies: a degraded read must not mutate state.
		shards[r] = append([]byte(nil), region...)
		present++
	}
	if present < s.cfg.Scheme.M {
		return nil, fmt.Errorf("%w: collection %d has %d of %d shards",
			ErrUnavailable, col.id, present, s.cfg.Scheme.M)
	}
	if err := s.codec.Reconstruct(shards); err != nil {
		return nil, err
	}
	// Repair corrupt regions in place on their live disks so the next
	// read is clean (scrub-on-read).
	for _, r := range corrupt {
		data, err := s.shard(col, r)
		if err != nil {
			continue
		}
		copy(data[offset:offset+s.cfg.BlockBytes], shards[r])
		s.setRegionSum(col, r, offset, data[offset:offset+s.cfg.BlockBytes])
		s.stats.CorruptionsRepaired++
		s.sm.Repairs.Inc()
	}
	return shards[rep], nil
}

// WriteAt overwrites part of an existing file in place, starting at
// offset off. It cannot extend the file. Each touched block goes through
// the §2.2 delta path: only the changed block and the group's check
// shards are written, not the whole group.
func (s *Store) WriteAt(name string, p []byte, off int) error {
	meta, ok := s.files[name]
	if !ok {
		return ErrNotFound
	}
	if off < 0 || off+len(p) > meta.size {
		return fmt.Errorf("objstore: WriteAt range [%d, %d) outside file of %d bytes",
			off, off+len(p), meta.size)
	}
	for len(p) > 0 {
		b := off / s.cfg.BlockBytes
		inner := off % s.cfg.BlockBytes
		n := s.cfg.BlockBytes - inner
		if n > len(p) {
			n = len(p)
		}
		addr := meta.blocks[b]
		col := s.collections[addr.collection]
		rep, shardOff := s.slotLocation(addr.slot)
		// Read the current block (degraded if needed), splice, rewrite.
		cur, err := s.readRegion(col, rep, shardOff)
		if err != nil {
			return err
		}
		block := append([]byte(nil), cur...)
		copy(block[inner:], p[:n])
		// Trim the trailing zero padding implied for the final block.
		logical := meta.size - b*s.cfg.BlockBytes
		if logical > s.cfg.BlockBytes {
			logical = s.cfg.BlockBytes
		}
		if err := s.writeSlot(col, addr.slot, block[:logical]); err != nil {
			return err
		}
		p = p[n:]
		off += n
	}
	return nil
}

// ReadAt reads len(p) bytes from the file starting at offset off,
// reconstructing through the codec for blocks on failed disks.
func (s *Store) ReadAt(name string, p []byte, off int) error {
	meta, ok := s.files[name]
	if !ok {
		return ErrNotFound
	}
	if off < 0 || off+len(p) > meta.size {
		return fmt.Errorf("objstore: ReadAt range [%d, %d) outside file of %d bytes",
			off, off+len(p), meta.size)
	}
	for len(p) > 0 {
		b := off / s.cfg.BlockBytes
		inner := off % s.cfg.BlockBytes
		n := s.cfg.BlockBytes - inner
		if n > len(p) {
			n = len(p)
		}
		addr := meta.blocks[b]
		col := s.collections[addr.collection]
		rep, shardOff := s.slotLocation(addr.slot)
		region, err := s.readRegion(col, rep, shardOff)
		if err != nil {
			return err
		}
		copy(p[:n], region[inner:])
		p = p[n:]
		off += n
	}
	return nil
}

// Delete removes a file, freeing its slots (block bytes are zeroed so
// parity stays consistent).
func (s *Store) Delete(name string) error {
	meta, ok := s.files[name]
	if !ok {
		return ErrNotFound
	}
	for _, addr := range meta.blocks {
		col := s.collections[addr.collection]
		if err := s.writeSlot(col, addr.slot, nil); err != nil {
			return err
		}
		col.slots[addr.slot] = false
		col.used--
	}
	delete(s.files, name)
	return nil
}

// Files lists stored file names in lexical order. (It previously
// returned map-iteration order, which Go randomizes per run — harmless
// for membership checks but a reproducibility leak for any caller that
// prints or iterates the listing.)
func (s *Store) Files() []string {
	out := make([]string, 0, len(s.files))
	for name := range s.files { //farm:orderinvariant keys are sorted on the next line
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Size returns a file's byte length.
func (s *Store) Size(name string) (int, error) {
	meta, ok := s.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return meta.size, nil
}
