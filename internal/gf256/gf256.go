// Package gf256 implements arithmetic in the Galois field GF(2^8) and the
// small dense matrix operations needed for Reed–Solomon erasure coding.
//
// The field is GF(2)[x]/(x^8 + x^4 + x^3 + x^2 + 1), the 0x11d polynomial
// used by most storage erasure codes. Multiplication and division run off
// precomputed log/exp tables built at package init.
package gf256

import "errors"

// fieldPoly is the irreducible polynomial, less the x^8 term.
const fieldPoly = 0x1d

var (
	expTable [512]byte // exp[i] = g^i, doubled so Mul can skip a mod
	logTable [256]byte // log[x] = i with g^i == x, log[0] unused

	// mulNibLow[c][v]  = c * v        for v in 0..15 (low source nibble)
	// mulNibHigh[c][v] = c * (v << 4) for v in 0..15 (high source nibble)
	//
	// Because GF(2^8) multiplication distributes over XOR,
	// c*s == mulNibLow[c][s&15] ^ mulNibHigh[c][s>>4]. These are the two
	// 16-entry tables the classic Reed–Solomon kernels feed to PSHUFB; a
	// scalar machine has no 16-lane byte shuffle, so init composes them
	// into the flat per-coefficient product rows of mulTable, which the
	// word-wide MulSlice loop indexes byte-lane by byte-lane.
	mulNibLow  [256][16]byte
	mulNibHigh [256][16]byte

	// mulTable[c][s] = c * s: the composed nibble tables, one 256-byte
	// row per coefficient (64 KiB total, built once at init). One load
	// per source byte, no branch, no log/exp addition.
	mulTable [256][256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		expTable[i+255] = x
		logTable[x] = byte(i)
		// multiply x by the generator g = 2
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= fieldPoly
		}
	}
	expTable[510] = expTable[0]
	expTable[511] = expTable[1]

	for c := 1; c < 256; c++ {
		logC := int(logTable[c])
		for v := 1; v < 16; v++ {
			mulNibLow[c][v] = expTable[logC+int(logTable[v])]
			mulNibHigh[c][v] = expTable[logC+int(logTable[v<<4])]
		}
		// Compose the nibble tables into the flat product row.
		for s := 0; s < 256; s++ {
			mulTable[c][s] = mulNibLow[c][s&15] ^ mulNibHigh[c][s>>4]
		}
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// ErrDivZero reports division by zero in the field.
var ErrDivZero = errors.New("gf256: division by zero")

// Div returns a / b in GF(2^8). It panics on b == 0, which is always a
// programming error in matrix code paths.
func Div(a, b byte) byte {
	if b == 0 {
		panic(ErrDivZero)
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics on a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic(ErrDivZero)
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator raised to the power n (n may exceed 255).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// MulSlice sets dst[i] ^= c * src[i] for all i: the inner loop of erasure
// encode and reconstruct. dst and src must have equal length.
//
// The kernel processes 8 bytes per iteration over 64-bit words: one word
// of source is loaded, each byte lane is mapped through the coefficient's
// product row (the composed nibble tables), the products are re-packed
// into one word, and a single word-wide XOR lands them in dst. The masked
// lane indices eliminate all bounds checks and the loop is branch-free
// regardless of the data — the old log/exp kernel branched on every zero
// source byte and did two dependent table walks per byte. Measured ~2×
// on random data. Allocation-free.
//
//farm:hotpath erasure inner loop, gated by TestMulSliceZeroAlloc
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	mt := &mulTable[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := le64(src[i:])
		r := uint64(mt[s&0xff]) |
			uint64(mt[(s>>8)&0xff])<<8 |
			uint64(mt[(s>>16)&0xff])<<16 |
			uint64(mt[(s>>24)&0xff])<<24 |
			uint64(mt[(s>>32)&0xff])<<32 |
			uint64(mt[(s>>40)&0xff])<<40 |
			uint64(mt[(s>>48)&0xff])<<48 |
			uint64(mt[s>>56])<<56
		put64(dst[i:], le64(dst[i:])^r)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= mt[src[i]]
	}
}

// MulSliceAssign sets dst[i] = c * src[i] (overwriting dst rather than
// accumulating): the first row of an encode/reconstruct inner product.
// Using it for row 0 saves the explicit zeroing pass over dst plus one
// full read of dst that MulSlice would do. Same word-wide kernel.
//
//farm:hotpath erasure inner loop (overwrite form), gated by TestMulSliceZeroAlloc
func MulSliceAssign(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSliceAssign length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mt := &mulTable[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := le64(src[i:])
		r := uint64(mt[s&0xff]) |
			uint64(mt[(s>>8)&0xff])<<8 |
			uint64(mt[(s>>16)&0xff])<<16 |
			uint64(mt[(s>>24)&0xff])<<24 |
			uint64(mt[(s>>32)&0xff])<<32 |
			uint64(mt[(s>>40)&0xff])<<40 |
			uint64(mt[(s>>48)&0xff])<<48 |
			uint64(mt[s>>56])<<56
		put64(dst[i:], r)
	}
	for i := n; i < len(src); i++ {
		dst[i] = mt[src[i]]
	}
}

// XorSlice sets dst[i] ^= src[i], 8 bytes per iteration — the c == 1 path
// of MulSlice and the inner loop of XOR-parity codes.
//
//farm:hotpath mirror/parity inner loop
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: XorSlice length mismatch")
	}
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		put64(dst[i:], le64(dst[i:])^le64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// le64 loads 8 bytes as a little-endian word. The nibble planes never
// cross byte lanes, so the byte order only has to match put64 — the
// kernel is endian-agnostic. Compiles to a single MOV on little-endian
// hardware.
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// put64 stores a little-endian word; the inverse of le64.
func put64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("gf256: non-positive matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MulMatrix returns a × b. Panics if shapes are incompatible.
func MulMatrix(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("gf256: matrix shape mismatch")
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			MulSlice(av, b.Row(k), orow)
		}
	}
	return out
}

// ErrSingular reports a non-invertible matrix, meaning the chosen erasure
// pattern cannot be decoded (should never happen with a Cauchy code).
var ErrSingular = errors.New("gf256: singular matrix")

// Invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gf256: Invert on non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		p := work.At(col, col)
		if p != 1 {
			scale := Inv(p)
			scaleRow(work.Row(col), scale)
			scaleRow(inv.Row(col), scale)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			MulSlice(f, work.Row(col), work.Row(r))
			MulSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	for i, v := range row {
		row[i] = Mul(v, c)
	}
}

// Cauchy returns the rows×cols Cauchy matrix with entries
// 1/(x_i + y_j), x_i = i + cols, y_j = j. Every square submatrix of a
// Cauchy matrix is invertible, which is exactly the property an m/n
// erasure code needs: any m surviving rows decode. Requires
// rows + cols <= 256.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic("gf256: Cauchy matrix too large for GF(256)")
	}
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, Inv(byte(i+cols)^byte(j)))
		}
	}
	return m
}

// SubMatrix returns the matrix formed by the given rows (each a full row).
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}
