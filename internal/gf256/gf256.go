// Package gf256 implements arithmetic in the Galois field GF(2^8) and the
// small dense matrix operations needed for Reed–Solomon erasure coding.
//
// The field is GF(2)[x]/(x^8 + x^4 + x^3 + x^2 + 1), the 0x11d polynomial
// used by most storage erasure codes. Multiplication and division run off
// precomputed log/exp tables built at package init.
package gf256

import "errors"

// fieldPoly is the irreducible polynomial, less the x^8 term.
const fieldPoly = 0x1d

var (
	expTable [512]byte // exp[i] = g^i, doubled so Mul can skip a mod
	logTable [256]byte // log[x] = i with g^i == x, log[0] unused
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		expTable[i+255] = x
		logTable[x] = byte(i)
		// multiply x by the generator g = 2
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= fieldPoly
		}
	}
	expTable[510] = expTable[0]
	expTable[511] = expTable[1]
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// ErrDivZero reports division by zero in the field.
var ErrDivZero = errors.New("gf256: division by zero")

// Div returns a / b in GF(2^8). It panics on b == 0, which is always a
// programming error in matrix code paths.
func Div(a, b byte) byte {
	if b == 0 {
		panic(ErrDivZero)
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics on a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic(ErrDivZero)
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator raised to the power n (n may exceed 255).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// MulSlice sets dst[i] ^= c * src[i] for all i: the inner loop of erasure
// encode and reconstruct. dst and src must have equal length.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("gf256: non-positive matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MulMatrix returns a × b. Panics if shapes are incompatible.
func MulMatrix(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("gf256: matrix shape mismatch")
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			MulSlice(av, b.Row(k), orow)
		}
	}
	return out
}

// ErrSingular reports a non-invertible matrix, meaning the chosen erasure
// pattern cannot be decoded (should never happen with a Cauchy code).
var ErrSingular = errors.New("gf256: singular matrix")

// Invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gf256: Invert on non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		p := work.At(col, col)
		if p != 1 {
			scale := Inv(p)
			scaleRow(work.Row(col), scale)
			scaleRow(inv.Row(col), scale)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			MulSlice(f, work.Row(col), work.Row(r))
			MulSlice(f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	for i, v := range row {
		row[i] = Mul(v, c)
	}
}

// Cauchy returns the rows×cols Cauchy matrix with entries
// 1/(x_i + y_j), x_i = i + cols, y_j = j. Every square submatrix of a
// Cauchy matrix is invertible, which is exactly the property an m/n
// erasure code needs: any m surviving rows decode. Requires
// rows + cols <= 256.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic("gf256: Cauchy matrix too large for GF(256)")
	}
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, Inv(byte(i+cols)^byte(j)))
		}
	}
	return m
}

// SubMatrix returns the matrix formed by the given rows (each a full row).
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}
