package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddSelfInverse(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Add(byte(a), byte(a)) != 0 {
			t.Fatalf("a+a != 0 for a=%d", a)
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b += 5 {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("multiplication not commutative at %d,%d", a, b)
			}
		}
	}
}

func TestMulMatchesSlowReference(t *testing.T) {
	// Carry-less polynomial multiplication mod 0x11d.
	slow := func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			carry := a&0x80 != 0
			a <<= 1
			if carry {
				a ^= fieldPoly
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if Div(p, byte(b)) != byte(a) {
				t.Fatalf("Div(Mul(%d,%d),%d) != %d", a, b, b, a)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a=%d", a)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExpPeriodicity(t *testing.T) {
	if Exp(0) != 1 {
		t.Fatal("g^0 != 1")
	}
	for n := 0; n < 255; n++ {
		if Exp(n) != Exp(n+255) {
			t.Fatalf("Exp not periodic at %d", n)
		}
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("Exp of negative exponent wrong")
	}
}

func TestGeneratorOrder(t *testing.T) {
	// g = 2 must generate the full multiplicative group: 255 distinct
	// powers.
	seen := map[byte]bool{}
	for n := 0; n < 255; n++ {
		v := Exp(n)
		if seen[v] {
			t.Fatalf("generator repeats at power %d", n)
		}
		seen[v] = true
	}
}

// Field axioms as properties.
func TestQuickFieldAxioms(t *testing.T) {
	assoc := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	distrib := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	addAssoc := func(a, b, c byte) bool {
		return Add(Add(a, b), c) == Add(a, Add(b, c))
	}
	for name, f := range map[string]func(a, b, c byte) bool{
		"mul-associative": assoc,
		"distributive":    distrib,
		"add-associative": addAssoc,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = Add(dst[i], Mul(7, src[i]))
	}
	MulSlice(7, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice mismatch at %d: %d != %d", i, dst[i], want[i])
		}
	}
}

func TestMulSliceSpecialCoefficients(t *testing.T) {
	src := []byte{5, 6, 7}
	dst := []byte{1, 2, 3}
	MulSlice(0, src, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatal("MulSlice with c=0 modified dst")
	}
	MulSlice(1, src, dst)
	if dst[0] != 1^5 || dst[1] != 2^6 || dst[2] != 3^7 {
		t.Fatal("MulSlice with c=1 is not plain XOR")
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulSlice(3, []byte{1, 2}, []byte{1})
}

func TestMatrixIdentityMultiply(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := []byte{1, 2, 3, 4, 5, 6, 7, 9, 11}
	copy(m.Data, vals)
	p := MulMatrix(Identity(3), m)
	for i := range vals {
		if p.Data[i] != vals[i] {
			t.Fatalf("I*m != m at %d", i)
		}
	}
	p2 := MulMatrix(m, Identity(3))
	for i := range vals {
		if p2.Data[i] != vals[i] {
			t.Fatalf("m*I != m at %d", i)
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	m := Cauchy(4, 4)
	inv, err := m.Invert()
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	p := MulMatrix(m, inv)
	id := Identity(4)
	for i := range id.Data {
		if p.Data[i] != id.Data[i] {
			t.Fatalf("m * m^-1 != I at %d: got %d", i, p.Data[i])
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // duplicate row
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInvertNeedsPivotSwap(t *testing.T) {
	// Leading zero forces a row swap.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	inv, err := m.Invert()
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	p := MulMatrix(m, inv)
	id := Identity(2)
	for i := range id.Data {
		if p.Data[i] != id.Data[i] {
			t.Fatal("inverse wrong after pivot swap")
		}
	}
}

func TestCauchyAllSquareSubmatricesInvertible(t *testing.T) {
	// The decoding guarantee: any k rows of a Cauchy matrix with k columns
	// form an invertible matrix. Exhaustive for a 6×3 Cauchy.
	c := Cauchy(6, 3)
	rows := []int{0, 1, 2, 3, 4, 5}
	var choose func(start int, cur []int)
	checked := 0
	choose = func(start int, cur []int) {
		if len(cur) == 3 {
			sub := c.SubMatrix(cur)
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("singular Cauchy submatrix %v", cur)
			}
			checked++
			return
		}
		for i := start; i < len(rows); i++ {
			choose(i+1, append(cur, rows[i]))
		}
	}
	choose(0, nil)
	if checked != 20 {
		t.Fatalf("checked %d submatrices, want C(6,3)=20", checked)
	}
}

func TestCauchyTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Cauchy did not panic")
		}
	}()
	Cauchy(200, 100)
}

func TestSubMatrix(t *testing.T) {
	m := NewMatrix(3, 2)
	copy(m.Data, []byte{1, 2, 3, 4, 5, 6})
	s := m.SubMatrix([]int{2, 0})
	if s.At(0, 0) != 5 || s.At(0, 1) != 6 || s.At(1, 0) != 1 || s.At(1, 1) != 2 {
		t.Fatalf("SubMatrix wrong: %v", s.Data)
	}
}

func TestMatrixShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MulMatrix(NewMatrix(2, 3), NewMatrix(2, 3))
}
