package gf256

import "testing"

// mulRef is the definitional product via log/exp tables, the oracle for
// the word-wide kernel.
func mulRef(c, s byte) byte { return Mul(c, s) }

// TestMulSliceAllCoefficientsAndTails drives the word-wide kernel across
// every coefficient and a range of lengths that exercise both the 8-byte
// main loop and the scalar tail, including misaligned (non-multiple-of-8)
// sizes.
func TestMulSliceAllCoefficientsAndTails(t *testing.T) {
	lengths := []int{0, 1, 7, 8, 9, 15, 16, 33, 64, 100}
	for c := 0; c < 256; c++ {
		for _, n := range lengths {
			src := make([]byte, n)
			dst := make([]byte, n)
			want := make([]byte, n)
			for i := range src {
				src[i] = byte(i*37 + c)
				dst[i] = byte(i * 11)
				want[i] = dst[i] ^ mulRef(byte(c), src[i])
			}
			MulSlice(byte(c), src, dst)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("c=%d n=%d: dst[%d] = %d, want %d", c, n, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestNibbleTableComposition pins the table construction: the flat
// product rows must equal the XOR of the two 16-entry nibble planes, and
// both must agree with the definitional multiply.
func TestNibbleTableComposition(t *testing.T) {
	for c := 0; c < 256; c++ {
		for s := 0; s < 256; s++ {
			want := mulRef(byte(c), byte(s))
			if got := mulNibLow[c][s&15] ^ mulNibHigh[c][s>>4]; got != want {
				t.Fatalf("nibble tables: %d*%d = %d, want %d", c, s, got, want)
			}
			if got := mulTable[c][s]; got != want {
				t.Fatalf("product row: %d*%d = %d, want %d", c, s, got, want)
			}
		}
	}
}

func TestXorSlice(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64, 129} {
		src := make([]byte, n)
		dst := make([]byte, n)
		want := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 13)
			dst[i] = byte(i * 7)
			want[i] = src[i] ^ dst[i]
		}
		XorSlice(src, dst)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %d, want %d", n, i, dst[i], want[i])
			}
		}
	}
}

func TestXorSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	XorSlice([]byte{1, 2}, []byte{1})
}

// TestMulSliceZeroAlloc is the allocation-regression gate for the erasure
// inner loop: the kernel must not touch the heap.
func TestMulSliceZeroAlloc(t *testing.T) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	if n := testing.AllocsPerRun(100, func() {
		MulSlice(0x8e, src, dst)
		MulSlice(1, src, dst)
	}); n != 0 {
		t.Fatalf("MulSlice allocates %v times per run, want 0", n)
	}
}

func BenchmarkMulSlice64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i * 2654435761)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulSlice(0x8e, src, dst)
	}
}

func BenchmarkXorSlice64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XorSlice(src, dst)
	}
}
