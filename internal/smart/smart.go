// Package smart models S.M.A.R.T.-style disk health monitoring. The paper
// (§2.3) notes that with S.M.A.R.T. "or a similar system to monitor the
// health of disks, we are able to avoid unreliable disks" when choosing
// recovery targets; the same signal enables proactive draining — copying a
// suspect drive's blocks away before it actually dies, collapsing the
// window of vulnerability for predicted failures (Hughes et al., IEEE
// Trans. Reliability 2000 report usable prediction rates).
//
// A Monitor is a simple two-parameter predictor: each failure is flagged
// in advance with probability Accuracy, and flagged failures receive a
// warning LeadHours before death. The simulator marks warned drives as
// suspects — excluded from placement and recovery-target choice — and
// drains them.
package smart

import (
	"errors"

	"repro/internal/rng"
)

// Monitor is a probabilistic failure predictor.
type Monitor struct {
	// Accuracy is the fraction of failures predicted in advance (0..1).
	// Zero disables prediction entirely.
	Accuracy float64
	// LeadHours is how far ahead of the failure the warning fires.
	LeadHours float64
}

// ErrMonitor reports invalid monitor parameters.
var ErrMonitor = errors.New("smart: invalid monitor parameters")

// NewMonitor validates the predictor parameters.
func NewMonitor(accuracy, leadHours float64) (Monitor, error) {
	if accuracy < 0 || accuracy > 1 || leadHours < 0 {
		return Monitor{}, ErrMonitor
	}
	return Monitor{Accuracy: accuracy, LeadHours: leadHours}, nil
}

// Enabled reports whether the monitor can ever produce a warning.
func (m Monitor) Enabled() bool { return m.Accuracy > 0 && m.LeadHours > 0 }

// Predict decides whether the failure at failAt (hours) is caught, and if
// so at what time the warning fires. Warnings never fire before now: a
// prediction whose lead would place it in the past fires immediately
// (now), modelling a drive already deep in its pre-failure signature.
func (m Monitor) Predict(r *rng.Source, now, failAt float64) (warnAt float64, predicted bool) {
	if !m.Enabled() {
		return 0, false
	}
	if r.Float64() >= m.Accuracy {
		return 0, false
	}
	warnAt = failAt - m.LeadHours
	if warnAt < now {
		warnAt = now
	}
	return warnAt, true
}
