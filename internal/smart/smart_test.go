package smart

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0.5, 24); err != nil {
		t.Fatalf("valid monitor rejected: %v", err)
	}
	for _, c := range [][2]float64{{-0.1, 24}, {1.1, 24}, {0.5, -1}} {
		if _, err := NewMonitor(c[0], c[1]); err == nil {
			t.Errorf("NewMonitor(%v, %v) should fail", c[0], c[1])
		}
	}
}

func TestEnabled(t *testing.T) {
	cases := []struct {
		acc, lead float64
		want      bool
	}{
		{0, 24, false},
		{0.5, 0, false},
		{0.5, 24, true},
		{1, 1, true},
	}
	for _, c := range cases {
		m := Monitor{Accuracy: c.acc, LeadHours: c.lead}
		if m.Enabled() != c.want {
			t.Errorf("Enabled(%v, %v) = %v", c.acc, c.lead, m.Enabled())
		}
	}
}

func TestDisabledNeverPredicts(t *testing.T) {
	r := rng.New(1)
	m := Monitor{Accuracy: 0, LeadHours: 24}
	for i := 0; i < 1000; i++ {
		if _, ok := m.Predict(r, 0, 100); ok {
			t.Fatal("disabled monitor predicted")
		}
	}
}

func TestPerfectMonitorAlwaysPredicts(t *testing.T) {
	r := rng.New(2)
	m := Monitor{Accuracy: 1, LeadHours: 24}
	for i := 0; i < 1000; i++ {
		warnAt, ok := m.Predict(r, 0, 100)
		if !ok {
			t.Fatal("perfect monitor missed a failure")
		}
		if warnAt != 76 {
			t.Fatalf("warnAt = %v, want 76", warnAt)
		}
	}
}

func TestPredictionRateMatchesAccuracy(t *testing.T) {
	r := rng.New(3)
	m := Monitor{Accuracy: 0.3, LeadHours: 24}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if _, ok := m.Predict(r, 0, 1000); ok {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("prediction rate %v, want ~0.3", rate)
	}
}

func TestWarningNeverInPast(t *testing.T) {
	r := rng.New(4)
	m := Monitor{Accuracy: 1, LeadHours: 100}
	warnAt, ok := m.Predict(r, 50, 120) // lead would place it at 20 < now
	if !ok || warnAt != 50 {
		t.Fatalf("clipped warning = (%v, %v), want (50, true)", warnAt, ok)
	}
}

// Property: a warning is always in [now, failAt].
func TestQuickWarningWindow(t *testing.T) {
	f := func(seed uint64, lead8 uint8, gap8 uint8) bool {
		r := rng.New(seed)
		lead := float64(lead8)
		m := Monitor{Accuracy: 1, LeadHours: lead}
		now := 100.0
		failAt := now + float64(gap8) + 1
		warnAt, ok := m.Predict(r, now, failAt)
		if lead == 0 {
			return !ok
		}
		return ok && warnAt >= now && warnAt <= failAt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
