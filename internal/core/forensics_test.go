package core

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// forensicsStormConfig is the everything-on scenario the postmortem
// gates run under: the obs storm (gray failures, stragglers, latent
// errors, scrubbing, bursts, S.M.A.R.T. draining) plus the
// oversubscribed fabric with network faults, a bounded spare pool,
// foreground demand with adaptive QoS, and rolling upgrades — every
// taxonomy class and stretch factor has a live producer.
func forensicsStormConfig() Config {
	cfg := obsStormConfig()
	cfg.UseFARM = false // the spare engine owns the bounded pool and queue waits
	cfg.Topology = topology.Config{
		Racks:                 10,
		UplinkMBps:            1000,
		OversubscriptionRatio: 4,
		FalseDeadHours:        24,
	}
	cfg.Faults.Network = faults.NetworkFaultConfig{
		SwitchFailsPerYear:    2,
		PowerEventsPerYear:    4,
		PowerRestoreMeanHours: 8,
		PartitionsPerYear:     50,
		PartitionMeanHours:    12,
	}
	cfg.Faults.BurstsPerYear = 6
	cfg.Faults.BurstMeanSize = 6
	cfg.Faults.SparePoolSize = 2
	cfg.Demand = workload.DemandConfig{
		BaseShare:        0.3,
		DiurnalAmplitude: 0.5,
		BurstsPerDay:     1,
		BurstShare:       0.25,
		RackSkew:         0.3,
		MaxShare:         0.7,
	}
	cfg.Throttle = workload.ThrottleConfig{Policy: workload.PolicyAIMD, FloorMBps: 8, MaxMBps: 32}
	cfg.Maintenance = MaintenanceConfig{
		DrainEveryHours:      720,
		UpgradeEveryHours:    168,
		UpgradeDurationHours: 12,
	}
	return cfg
}

// TestForensicsByteIdentity is the forensic layer's core contract:
// attaching a postmortem aggregate to a campaign must leave the Result
// byte-identical to the unobserved campaign — the analysis is a pure
// function of taps that are themselves read-only.
func TestForensicsByteIdentity(t *testing.T) {
	cfg := forensicsStormConfig()
	bare, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 6, BaseSeed: 41, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	agg := forensics.NewAggregate()
	observed, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 6, BaseSeed: 41, Workers: 2, Forensics: agg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Fatalf("forensics perturbed the campaign:\n bare %+v\n fore %+v", bare, observed)
	}
	if agg.Runs != 6 {
		t.Fatalf("aggregate folded %d runs, want 6", agg.Runs)
	}
}

// TestForensicsWorkerInvariant: the postmortem aggregate folds in
// run-index order, so its JSON and its registry exposition must be
// byte-identical for 1 and 4 workers. Under -race this also shakes out
// unsynchronized access between workers and the aggregate.
func TestForensicsWorkerInvariant(t *testing.T) {
	cfg := forensicsStormConfig()
	var wantJSON, wantReg []byte
	for i, workers := range []int{1, 4} {
		agg := forensics.NewAggregate()
		if _, err := MonteCarlo(cfg, MonteCarloOptions{
			Runs: 8, BaseSeed: 97, Workers: workers, Forensics: agg,
		}); err != nil {
			t.Fatal(err)
		}
		var js, reg bytes.Buffer
		if err := agg.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := agg.Registry().WriteJSONL(&reg); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantJSON, wantReg = js.Bytes(), reg.Bytes()
			if agg.Posts == 0 {
				t.Fatal("storm campaign produced no postmortems; the gate is vacuous")
			}
			continue
		}
		if !bytes.Equal(js.Bytes(), wantJSON) {
			t.Errorf("workers=%d: aggregate JSON differs from workers=1:\n%s\nvs\n%s",
				workers, js.Bytes(), wantJSON)
		}
		if !bytes.Equal(reg.Bytes(), wantReg) {
			t.Errorf("workers=%d: forensic registry differs from workers=1", workers)
		}
	}
}

// TestForensicsStormCoverage is the completeness gate: in the
// everything-on storm, every data-loss and every dropped-rebuild event
// gets exactly one postmortem, every postmortem carries a classified
// verdict and a blame vector summing to 1 within 1e-9, and across the
// seeds both event families actually occur (the gate is not vacuous).
func TestForensicsStormCoverage(t *testing.T) {
	cfg := forensicsStormConfig()
	ctx := forensics.Context{
		OversubscriptionRatio: cfg.Topology.OversubscriptionRatio,
		MaxResourcings:        cfg.Faults.MaxResourcings,
	}
	losses, drops := 0, 0
	for seed := uint64(1); seed <= 6; seed++ {
		run := cfg
		run.Seed = seed
		rec := trace.NewRecorder()
		run.Hook = rec.Record
		spans := obs.NewSpanLog()
		run.Obs = &obs.RunObserver{Spans: spans}
		if _, err := runOnce(run); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range rec.Events() {
			if e.Kind == trace.KindDataLoss || e.Kind == trace.KindDropped {
				want++
			}
		}
		rep := forensics.Analyze(rec.Events(), spans.Spans(), ctx)
		if len(rep.Posts) != want {
			t.Fatalf("seed %d: %d postmortems for %d loss/drop events", seed, len(rep.Posts), want)
		}
		if rep.Losses+rep.Drops != want {
			t.Fatalf("seed %d: losses %d + drops %d != %d events", seed, rep.Losses, rep.Drops, want)
		}
		losses += rep.Losses
		drops += rep.Drops
		for i := range rep.Posts {
			p := &rep.Posts[i]
			if p.Class == "" {
				t.Fatalf("seed %d: postmortem %d has no class", seed, i)
			}
			if s := p.Blame.Sum(); math.Abs(s-1) > 1e-9 {
				t.Fatalf("seed %d: postmortem %d (%s) blame sums to %.12f", seed, i, p.Class, s)
			}
			if p.WindowHours < 0 {
				t.Fatalf("seed %d: postmortem %d has negative window %v", seed, i, p.WindowHours)
			}
			// Drops have span evidence by construction (spans were on),
			// so none may fall back to the unattributed class.
			if p.Kind == string(trace.KindDropped) && p.Class == forensics.ClassUnattributed {
				t.Fatalf("seed %d: dropped rebuild left unattributed: %+v", seed, p)
			}
		}
	}
	if losses == 0 {
		t.Fatal("storm produced no data-loss events across all seeds; the gate is vacuous")
	}
	if drops == 0 {
		t.Fatal("storm produced no dropped rebuilds across all seeds; the gate is vacuous")
	}
}

// TestMonteCarloRejectsSharedHook: a campaign with both a forensic
// aggregate and a caller trace hook cannot be sound — the per-run
// recorder must own the hook.
func TestMonteCarloRejectsSharedHook(t *testing.T) {
	cfg := smallConfig()
	cfg.Hook = func(trace.Event) {}
	_, err := MonteCarlo(cfg, MonteCarloOptions{
		Runs: 2, BaseSeed: 1, Forensics: forensics.NewAggregate(),
	})
	if !errors.Is(err, ErrSharedHook) {
		t.Fatalf("err = %v, want ErrSharedHook", err)
	}
}
