package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/topology"
	"repro/internal/trace"
)

// netConfig is the laptop-sized system on a 10-rack fabric under the
// full correlated network-fault storm: frequent switch deaths, rack
// power events, and long transient partitions, with a one-day
// false-dead timer. Rates are far beyond any realistic fleet on
// purpose — the acceptance criterion is graceful degradation.
func netConfig() Config {
	cfg := smallConfig()
	cfg.VintageScale = 2
	cfg.ReplaceTrigger = 0.04
	cfg.Topology = topology.Config{
		Racks:                 10,
		UplinkMBps:            1000,
		OversubscriptionRatio: 4,
		FalseDeadHours:        24,
	}
	cfg.Faults.Network = faults.NetworkFaultConfig{
		SwitchFailsPerYear:    2,
		PowerEventsPerYear:    4,
		PowerRestoreMeanHours: 8,
		PartitionsPerYear:     50,
		PartitionMeanHours:    12,
	}
	return cfg
}

// TestNetworkStormDeterministicAndCausal is the headline acceptance
// test for the fault-domain layer: a run under the combined network
// storm must terminate, fire every configured process, park rebuilds
// instead of dropping them, reproduce exactly under the same seed, and
// emit a causally ordered trace (every heal and false-dead declaration
// follows a darkening of the same rack).
func TestNetworkStormDeterministicAndCausal(t *testing.T) {
	for _, farm := range []bool{true, false} {
		name := "spare"
		if farm {
			name = "FARM"
		}
		t.Run(name, func(t *testing.T) {
			cfg := netConfig()
			cfg.UseFARM = farm
			cfg.Seed = 7
			var events []trace.Event
			cfg.Hook = func(e trace.Event) { events = append(events, e) }
			res, err := runOnce(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.SwitchFails == 0 || res.RackPowerEvents == 0 || res.Partitions == 0 {
				t.Errorf("switch=%d power=%d partitions=%d: a configured process never fired",
					res.SwitchFails, res.RackPowerEvents, res.Partitions)
			}
			if res.PartitionHeals == 0 {
				t.Error("no rack ever healed across a 6-year horizon")
			}
			if res.FalseDeadRacks == 0 || res.FalseDeadDisks == 0 {
				t.Errorf("false-dead racks=%d disks=%d: dead switches were never written off",
					res.FalseDeadRacks, res.FalseDeadDisks)
			}
			if res.ParkedTransfers == 0 {
				t.Error("no rebuild ever parked against a dark rack under the storm")
			}
			if res.CrossRackTransfers == 0 || res.CrossRackBytes == 0 {
				t.Errorf("cross-rack transfers=%d bytes=%d on a 10-rack fabric",
					res.CrossRackTransfers, res.CrossRackBytes)
			}
			if err := trace.CheckCausality(events); err != nil {
				t.Fatal(err)
			}
			// Determinism: an identical run (fresh hook) reproduces exactly.
			cfg2 := netConfig()
			cfg2.UseFARM = farm
			cfg2.Seed = 7
			res2, err := runOnce(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", res2) {
				t.Fatalf("same seed diverged under network storm:\n%+v\n%+v", res, res2)
			}
		})
	}
}

// TestNetworkStormTraceKinds: the storm's trace must contain the
// network-fault event kinds so downstream tooling can see the paths.
func TestNetworkStormTraceKinds(t *testing.T) {
	cfg := netConfig()
	cfg.Seed = 11
	var events []trace.Event
	cfg.Hook = func(e trace.Event) { events = append(events, e) }
	if _, err := runOnce(cfg); err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(events)
	for _, k := range []trace.Kind{
		trace.KindSwitchFail, trace.KindRackUnreachable,
		trace.KindPartitionHeal, trace.KindFalseDead,
	} {
		if sum.Counts[k] == 0 {
			t.Errorf("no %q events in the storm trace", k)
		}
	}
}

// TestFalseDeadBackdatesWindow: a rack written off by the false-dead
// timer must account its blocks' vulnerability from the instant the
// rack went dark, not the declaration instant — so the worst window is
// at least the false-dead patience.
func TestFalseDeadBackdatesWindow(t *testing.T) {
	cfg := netConfig()
	cfg.Faults.Network.PartitionsPerYear = 0
	cfg.Faults.Network.PowerEventsPerYear = 0
	cfg.Seed = 3
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseDeadRacks == 0 {
		t.Fatal("no rack was declared dead under switch failures alone")
	}
	if res.MaxWindowHours < cfg.Topology.FalseDeadHours {
		t.Errorf("max window %.2fh below the %.0fh false-dead patience",
			res.MaxWindowHours, cfg.Topology.FalseDeadHours)
	}
}

// TestPartitionsAloneLoseNothing: transient partitions with no
// false-dead timer park work and heal; with no disk ever failing
// (VintageScale is irrelevant — failure processes are intact, so use
// the partition-only storm) the partitions themselves must not destroy
// data or leak rebuilds.
func TestPartitionsAloneParkAndResume(t *testing.T) {
	cfg := netConfig()
	cfg.Topology.FalseDeadHours = 0 // infinite patience: never write off
	cfg.Faults.Network.SwitchFailsPerYear = 0
	cfg.Faults.Network.PowerEventsPerYear = 0
	cfg.Seed = 7
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseDeadRacks != 0 || res.FalseDeadDisks != 0 {
		t.Errorf("false-dead fired with a disabled timer: racks=%d disks=%d",
			res.FalseDeadRacks, res.FalseDeadDisks)
	}
	if res.Partitions == 0 || res.PartitionHeals == 0 {
		t.Fatalf("partitions=%d heals=%d", res.Partitions, res.PartitionHeals)
	}
	if res.ParkedTransfers == 0 {
		t.Error("no rebuild ever parked across the partition storm")
	}
}

// TestRackAwarePlacementRuns: rack-aware spread must build and recover
// on the small system (one block per rack per group throughout), and
// stays deterministic.
func TestRackAwarePlacementRuns(t *testing.T) {
	cfg := netConfig()
	cfg.Topology.RackAware = true
	cfg.Seed = 42
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRebuilt == 0 {
		t.Error("no blocks rebuilt under rack-aware placement")
	}
	// Rack-aware targets always leave the failed block's rack, so every
	// rebuild that completed crossed the fabric.
	if res.CrossRackTransfers == 0 {
		t.Error("rack-aware recovery reported no cross-rack transfers")
	}
}

// TestNetworkMonteCarloWorkerInvariant: the campaign Result under the
// network storm must be byte-identical for 1 and 4 workers — the
// ordered fold erases scheduling nondeterminism even with topology on.
func TestNetworkMonteCarloWorkerInvariant(t *testing.T) {
	cfg := netConfig()
	a, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 6, Workers: 1, BaseSeed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 6, Workers: 4, BaseSeed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker count changed the campaign result:\n1: %+v\n4: %+v", a, b)
	}
}

// TestNetworkValidationCrossChecks: network faults without a fabric,
// and rack-aware placement with fewer racks than the scheme width,
// must fail validation with distinct messages.
func TestNetworkValidationCrossChecks(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.Network.PartitionsPerYear = 1
	err := cfg.Validate()
	if err == nil {
		t.Fatal("network faults without a topology accepted")
	}
	cfg2 := smallConfig()
	cfg2.Topology = topology.Config{Racks: 1, RackAware: true}
	err2 := cfg2.Validate()
	if err2 == nil {
		t.Fatal("rack-aware placement with one rack accepted")
	}
	if err.Error() == err2.Error() {
		t.Fatalf("indistinct cross-check messages: %v", err)
	}
}
