package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// failSlowStormConfig is a miniature system with gray failures and the
// straggler layer both enabled: a hot vintage keeps rebuilds flowing,
// frequent onsets (×8 slow, ×64 crawl at p=0.4) plant stragglers among
// them, and correlated slow-bursts arrive yearly. Transient read faults
// are mixed in so hedges sometimes lose their race — the only way a
// crawling primary survives to its hard timeout, which the trace gate
// below requires to fire.
func failSlowStormConfig() Config {
	cfg := smallConfig()
	cfg.VintageScale = 6
	cfg.ReplaceTrigger = 0.04
	cfg.Faults.TransientReadProb = 0.25
	cfg.Faults.FailSlow.OnsetRatePerDiskHour = 2e-5
	cfg.Faults.FailSlow.SlowFactor = 8
	cfg.Faults.FailSlow.CrawlProb = 0.4
	cfg.Faults.FailSlow.RecoveryMeanHours = 4000
	cfg.Faults.FailSlow.SlowBurstsPerYear = 1
	cfg.Straggler.Enabled = true
	return cfg
}

// TestCoreConfigValidateNonFinite: every float field of the simulator
// config rejects NaN and ±Inf with a message naming the field, before
// any range check can misclassify it.
func TestCoreConfigValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"bandwidth", func(c *Config) { c.DiskBandwidthMBps = nan }, "core: DiskBandwidthMBps is NaN"},
		{"recovery", func(c *Config) { c.RecoveryMBps = inf }, "core: RecoveryMBps is infinite"},
		{"latency", func(c *Config) { c.DetectionLatencyHours = nan }, "core: DetectionLatencyHours is NaN"},
		{"utilization", func(c *Config) { c.InitialUtilization = nan }, "core: InitialUtilization is NaN"},
		{"horizon", func(c *Config) { c.SimHours = inf }, "core: SimHours is infinite"},
		{"vintage", func(c *Config) { c.VintageScale = nan }, "core: VintageScale is NaN"},
		{"replace", func(c *Config) { c.ReplaceTrigger = nan }, "core: ReplaceTrigger is NaN"},
		{"smart-acc", func(c *Config) { c.SmartAccuracy = nan }, "core: SmartAccuracy is NaN"},
		{"smart-lead", func(c *Config) { c.SmartLeadHours = math.Inf(-1) }, "core: SmartLeadHours is infinite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
			if _, serr := NewSimulator(cfg); serr == nil {
				t.Fatal("NewSimulator accepted a non-finite config")
			}
		})
	}
}

// TestStragglerValidationPropagates: a bad straggler sub-config must
// fail the top-level Config.Validate, like the faults sub-config does.
func TestStragglerValidationPropagates(t *testing.T) {
	cfg := smallConfig()
	cfg.Straggler.Enabled = true
	cfg.Straggler.EWMAAlpha = math.NaN()
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid straggler config accepted")
	}
	cfg = smallConfig()
	cfg.Straggler.Enabled = true
	cfg.Straggler.HedgeAfterMultiple = math.Inf(1)
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("NewSimulator accepted invalid straggler config")
	}
}

// TestFailSlowStormDeterministic: the full gray-failure storm (onsets,
// recoveries, slow-bursts, hedges, timeouts, evictions) is reproducible
// for a fixed seed and diverges for another.
func TestFailSlowStormDeterministic(t *testing.T) {
	cfg := failSlowStormConfig()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.FailSlowOnsets == 0 {
		t.Fatal("storm produced no fail-slow onsets")
	}
	c, err := sim.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestFailSlowMonteCarloByteIdenticalAcrossWorkers extends the
// reproducibility gate to the gray-failure campaign: every aggregate —
// the new fail-slow and mitigation Welfords included — must be
// bit-identical regardless of worker count. Run under -race this also
// exercises the ordered streaming fold with the new per-run state.
func TestFailSlowMonteCarloByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := failSlowStormConfig()
	const runs = 10
	ref, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FailSlowOnsets.Mean() == 0 {
		t.Fatal("campaign saw no fail-slow onsets; the gate is vacuous")
	}
	for _, workers := range []int{2, 5, 8} {
		got, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 17, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Result differs between Workers=1 and Workers=%d:\n%+v\nvs\n%+v",
				workers, ref, got)
		}
	}
}

// TestFailSlowTraceKinds: the gray-failure storm's trace must contain
// every fail-slow and mitigation event kind so downstream tooling
// (farmtrace) can see the new paths, and the trace must stay causal.
func TestFailSlowTraceKinds(t *testing.T) {
	cfg := failSlowStormConfig()
	cfg.Seed = 11
	var events []trace.Event
	cfg.Hook = func(e trace.Event) { events = append(events, e) }
	if _, err := runOnce(cfg); err != nil {
		t.Fatal(err)
	}
	if err := trace.CheckCausality(events); err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(events)
	for _, k := range []trace.Kind{
		trace.KindFailSlowOnset, trace.KindFailSlowRecover, trace.KindSlowBurst,
		trace.KindHedge, trace.KindHedgeWin, trace.KindRebuildTimeout,
		trace.KindFailSlowDetect, trace.KindEvictSlow,
	} {
		if sum.Counts[k] == 0 {
			t.Errorf("no %q events in the gray-failure trace", k)
		}
	}
}
