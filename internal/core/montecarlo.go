package core

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Result aggregates a Monte Carlo campaign: the statistics the paper's
// figures plot.
type Result struct {
	// Runs is the number of completed trajectories.
	Runs int
	// PLoss estimates the probability of data loss (fraction of runs
	// with at least one lost group), with a Wilson 95% interval.
	PLoss      float64
	PLossLo    float64
	PLossHi    float64
	lossCounts metrics.Proportion
	// RedirectionRate is the fraction of runs that saw at least one
	// recovery redirection (the paper reports <8% at worst, §2.3).
	RedirectionRate float64
	// LostGroups aggregates groups lost per run.
	LostGroups metrics.Welford
	// DiskFailures aggregates drive deaths per run.
	DiskFailures metrics.Welford
	// WindowHours aggregates per-run mean windows of vulnerability.
	WindowHours metrics.Welford
	// BlocksRebuilt aggregates completed reconstructions per run.
	BlocksRebuilt metrics.Welford
	// MigratedBytes aggregates replacement-driven migration per run.
	MigratedBytes metrics.Welford
	// BatchesAdded aggregates replacement batches per run.
	BatchesAdded metrics.Welford
	// Predicted aggregates S.M.A.R.T.-predicted failures per run.
	Predicted metrics.Welford
	// DrainedBlocks aggregates proactively drained blocks per run.
	DrainedBlocks metrics.Welford
	// Disks is the initial drive population (identical across runs).
	Disks int
}

// MonteCarloOptions tunes the campaign.
type MonteCarloOptions struct {
	// Runs is the number of trajectories (the paper uses 100–1000 per
	// point).
	Runs int
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// BaseSeed derives per-run seeds; run i uses BaseSeed + i.
	BaseSeed uint64
	// Progress, when non-nil, receives the completed-run count as runs
	// finish (monotone but unordered arrival).
	Progress func(done, total int)
}

// ErrNoRuns reports an empty campaign request.
var ErrNoRuns = errors.New("core: MonteCarlo needs at least one run")

// MonteCarlo executes opts.Runs independent trajectories of cfg in
// parallel and aggregates them. Each run gets its own seeded RNG stream;
// results are deterministic for a fixed (cfg, BaseSeed, Runs) regardless
// of worker count.
func MonteCarlo(cfg Config, opts MonteCarloOptions) (Result, error) {
	if opts.Runs <= 0 {
		return Result{}, ErrNoRuns
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}

	type item struct {
		res RunResult
		err error
	}
	results := make([]item, opts.Runs)
	var wg sync.WaitGroup
	next := make(chan int)
	var doneMu sync.Mutex
	done := 0

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				runCfg := cfg
				runCfg.Seed = opts.BaseSeed + uint64(i)
				res, err := runOnce(runCfg)
				results[i] = item{res: res, err: err}
				if opts.Progress != nil {
					doneMu.Lock()
					done++
					d := done
					doneMu.Unlock()
					opts.Progress(d, opts.Runs)
				}
			}
		}()
	}
	for i := 0; i < opts.Runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var out Result
	for i := range results {
		if results[i].err != nil {
			return Result{}, results[i].err
		}
		out.add(&results[i].res)
	}
	out.finish()
	return out, nil
}

// add folds one run into the aggregate.
func (r *Result) add(run *RunResult) {
	r.Runs++
	r.lossCounts.Add(run.DataLoss)
	if run.Redirections > 0 {
		r.RedirectionRate++ // converted to a rate in finish
	}
	r.LostGroups.Add(float64(run.LostGroups))
	r.DiskFailures.Add(float64(run.DiskFailures))
	if run.BlocksRebuilt > 0 {
		r.WindowHours.Add(run.MeanWindowHours)
	}
	r.BlocksRebuilt.Add(float64(run.BlocksRebuilt))
	r.MigratedBytes.Add(float64(run.MigratedBytes))
	r.BatchesAdded.Add(float64(run.BatchesAdded))
	r.Predicted.Add(float64(run.PredictedFailures))
	r.DrainedBlocks.Add(float64(run.DrainedBlocks))
	r.Disks = run.Disks
}

// finish converts counters into rates and intervals.
func (r *Result) finish() {
	r.PLoss = r.lossCounts.Estimate()
	r.PLossLo, r.PLossHi = r.lossCounts.Wilson95()
	if r.Runs > 0 {
		r.RedirectionRate /= float64(r.Runs)
	}
}
