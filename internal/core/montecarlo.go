package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/forensics"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Result aggregates a Monte Carlo campaign: the statistics the paper's
// figures plot.
type Result struct {
	// Runs is the number of completed trajectories.
	Runs int
	// PLoss estimates the probability of data loss (fraction of runs
	// with at least one lost group), with a Wilson 95% interval.
	PLoss      float64
	PLossLo    float64
	PLossHi    float64
	lossCounts metrics.Proportion
	// RedirectionRate is the fraction of runs that saw at least one
	// recovery redirection (the paper reports <8% at worst, §2.3).
	RedirectionRate float64
	// LostGroups aggregates groups lost per run.
	LostGroups metrics.Welford
	// DiskFailures aggregates drive deaths per run.
	DiskFailures metrics.Welford
	// WindowHours aggregates per-run mean windows of vulnerability.
	WindowHours metrics.Welford
	// BlocksRebuilt aggregates completed reconstructions per run.
	BlocksRebuilt metrics.Welford
	// MigratedBytes aggregates replacement-driven migration per run.
	MigratedBytes metrics.Welford
	// BatchesAdded aggregates replacement batches per run.
	BatchesAdded metrics.Welford
	// Predicted aggregates S.M.A.R.T.-predicted failures per run.
	Predicted metrics.Welford
	// DrainedBlocks aggregates proactively drained blocks per run.
	DrainedBlocks metrics.Welford
	// Fault-injection aggregates (all zero when cfg.Faults is disabled).
	LSEInjected     metrics.Welford
	LSEDetected     metrics.Welford
	ScrubFound      metrics.Welford
	RebuildRetries  metrics.Welford
	Resourcings     metrics.Welford
	Bursts          metrics.Welford
	QueuedSpareJobs metrics.Welford
	// Fail-slow / straggler-mitigation aggregates (all zero when the
	// fail-slow config and the straggler policy are disabled).
	FailSlowOnsets  metrics.Welford
	SlowEvicted     metrics.Welford
	Hedges          metrics.Welford
	HedgeWins       metrics.Welford
	RebuildTimeouts metrics.Welford
	// WindowP50Hours/WindowP99Hours aggregate each run's streaming
	// median and 99th-percentile vulnerability window — the rebuild-time
	// tail the fail-slow experiment reports.
	WindowP50Hours metrics.Welford
	WindowP99Hours metrics.Welford
	// Network-fault aggregates (all zero when cfg.Topology and
	// cfg.Faults.Network are disabled). MaxWindowHours aggregates each
	// run's worst vulnerability window — the tail the false-dead timeout
	// trades against rebuild-storm traffic.
	SwitchFails        metrics.Welford
	Partitions         metrics.Welford
	FalseDeadRacks     metrics.Welford
	FalseDeadDisks     metrics.Welford
	ParkedTransfers    metrics.Welford
	CrossRackTransfers metrics.Welford
	CrossRackGB        metrics.Welford
	MaxWindowHours     metrics.Welford
	// Living-fleet aggregates (all zero when cfg.Demand, cfg.Throttle,
	// and cfg.Maintenance are disabled). The degraded-read latency
	// quantiles fold only runs that sampled at least one degraded read;
	// the throttle mean folds only runs with at least one QoS decision.
	DemandBursts      metrics.Welford
	DegradedReads     metrics.Welford
	DegradedReadP50Ms metrics.Welford
	DegradedReadP99Ms metrics.Welford
	DegradedReadMaxMs metrics.Welford
	HealthyReadP99Ms  metrics.Welford
	ThrottleSteps     metrics.Welford
	ThrottleMeanMBps  metrics.Welford
	PlannedDrains     metrics.Welford
	UpgradeWindows    metrics.Welford
	FencedParks       metrics.Welford
	GrowthBatches     metrics.Welford
	GrowthDisksAdded  metrics.Welford
	// Disks is the initial drive population (identical across runs).
	Disks int
}

// MonteCarloOptions tunes the campaign.
type MonteCarloOptions struct {
	// Runs is the number of trajectories (the paper uses 100–1000 per
	// point).
	Runs int
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// BaseSeed derives per-run seeds; run i uses BaseSeed + i.
	BaseSeed uint64
	// Progress, when non-nil, receives the completed-run count as runs
	// are folded into the aggregate (monotone, in run order).
	Progress func(done, total int)
	// Telemetry, when non-nil, receives live campaign telemetry: each run
	// executes with its own private metrics registry, and the registries
	// are merged into the campaign master in strict run-index order (the
	// same ordered fold that makes the Result deterministic), so the
	// merged registry is byte-identical regardless of worker count or
	// scheduling. Serving the campaign over HTTP is the caller's business
	// (obs.StartTelemetry).
	Telemetry *obs.Campaign
	// Forensics, when non-nil, receives a causal postmortem for every
	// data-loss and dropped-rebuild event of the campaign. Each run
	// executes with a private trace recorder and span log (the
	// simulation itself is untouched — tracing and spans are read-only
	// taps), forensics.Analyze runs off the hot path after the run
	// finishes, and the per-run reports are folded into the aggregate in
	// strict run-index order alongside the Result, so the aggregate —
	// counts, blame sums, registry bytes — is identical regardless of
	// worker count. Incompatible with a caller-supplied Config.Hook: one
	// hook cannot soundly observe many concurrent runs.
	Forensics *forensics.Aggregate
}

// ErrNoRuns reports an empty campaign request.
var ErrNoRuns = errors.New("core: MonteCarlo needs at least one run")

// ErrSharedObs rejects a Config.Obs on a Monte Carlo campaign: one
// observer cannot soundly record many concurrent runs. Use
// MonteCarloOptions.Telemetry for campaign metrics, Simulator.Run for
// spans and series.
var ErrSharedObs = errors.New("core: Config.Obs is per-run; use MonteCarloOptions.Telemetry for campaigns")

// ErrSharedHook rejects a Config.Hook on a forensic campaign: forensics
// needs a private per-run event stream, and a shared hook across
// parallel runs would race and interleave runs meaninglessly.
var ErrSharedHook = errors.New("core: Config.Hook is per-run; MonteCarloOptions.Forensics records its own traces")

// MonteCarlo executes opts.Runs independent trajectories of cfg in
// parallel and aggregates them streamingly. Each run gets its own seeded
// RNG stream.
//
// Work distribution is an atomic claim index: workers grab the next run
// number with a single fetch-add, so there is no dispatch channel and no
// O(Runs) result buffer. Aggregation is a streaming fold with a bounded
// reorder window: finished runs are deposited into a ring of
// O(workers) slots and folded into the single Result accumulator in
// strict run-index order. Folding in index order makes the floating-point
// reduction identical to a sequential loop — Welford updates are not
// associative, so any scheme that merges per-worker partials in worker
// order would drift with the (nondeterministic) run→worker assignment.
// Here the output is byte-identical for a fixed (cfg, BaseSeed, Runs)
// regardless of worker count, using O(workers) memory instead of the
// former O(Runs) result array.
//
// Backpressure: a worker whose finished run is more than a window ahead
// of the fold frontier waits; the run at the frontier is always either
// being computed or being deposited by some worker (indices are claimed
// in increasing order, one at a time per worker), so the fold always
// advances and no deadlock is possible.
func MonteCarlo(cfg Config, opts MonteCarloOptions) (Result, error) {
	if opts.Runs <= 0 {
		return Result{}, ErrNoRuns
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Obs != nil {
		// A shared RunObserver across parallel runs would race (and a
		// merged Series/SpanLog would interleave runs meaninglessly).
		// Per-run registries come in through Telemetry instead; spans and
		// series belong to single runs (Simulator.Run).
		return Result{}, ErrSharedObs
	}
	fore := opts.Forensics
	if fore != nil && cfg.Hook != nil {
		// Forensics installs its own per-run recorder as the hook; a
		// caller-supplied hook would additionally race across workers.
		return Result{}, ErrSharedHook
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}

	tele := opts.Telemetry
	if tele != nil {
		tele.Begin(opts.Runs, workers)
	}

	type slot struct {
		res   RunResult
		reg   *obs.Registry
		post  *forensics.Report
		err   error
		ready bool
	}
	window := 4 * workers
	if window < 8 {
		window = 8
	}
	ring := make([]slot, window)

	var (
		next    atomic.Int64 // next run index to claim
		mu      sync.Mutex   // guards ring, reduced, out, firstErr
		reduced int          // fold frontier: runs folded so far
		out     Result
		runErr  error
		wg      sync.WaitGroup
	)
	cond := sync.NewCond(&mu)

	worker := func(w int) {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= opts.Runs {
				return
			}
			runCfg := cfg
			runCfg.Seed = opts.BaseSeed + uint64(i)
			var reg *obs.Registry
			if tele != nil {
				// Each run records into a private registry; the ordered
				// fold below merges it into the campaign master.
				reg = obs.NewRegistry()
			}
			var rec *trace.Recorder
			var spans *obs.SpanLog
			if fore != nil {
				// Private per-run trace + span taps for the postmortem
				// analysis; Analyze runs after the run, off the hot path.
				rec = trace.NewRecorder()
				spans = obs.NewSpanLog()
				runCfg.Hook = rec.Record
			}
			if reg != nil || spans != nil {
				runCfg.Obs = &obs.RunObserver{Registry: reg, Spans: spans}
			}
			res, err := runOnce(runCfg)
			if tele != nil {
				tele.WorkerRunDone(w)
			}
			var post *forensics.Report
			if fore != nil && err == nil {
				post = forensics.Analyze(rec.Events(), spans.Spans(), forensics.Context{
					OversubscriptionRatio: cfg.Topology.OversubscriptionRatio,
					MaxResourcings:        cfg.Faults.MaxResourcings,
				})
			}

			mu.Lock()
			for runErr == nil && i-reduced >= window {
				cond.Wait()
			}
			if runErr != nil {
				mu.Unlock()
				return
			}
			s := &ring[i%window]
			s.res, s.reg, s.post, s.err, s.ready = res, reg, post, err, true
			// Fold the ready prefix in run-index order.
			for {
				cur := &ring[reduced%window]
				if !cur.ready {
					break
				}
				if cur.err != nil {
					runErr = cur.err
					// Fast-forward the claim index so idle workers exit.
					next.Store(int64(opts.Runs))
					break
				}
				out.add(&cur.res)
				if tele != nil {
					tele.FoldRun(cur.res.DataLoss, cur.reg)
				}
				if fore != nil {
					fore.AddRun(cur.post)
				}
				cur.ready = false
				cur.res = RunResult{}
				cur.reg = nil
				cur.post = nil
				reduced++
				if opts.Progress != nil {
					opts.Progress(reduced, opts.Runs)
				}
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker(w)
	}
	wg.Wait()
	if runErr != nil {
		return Result{}, runErr
	}
	out.finish()
	return out, nil
}

// add folds one run into the aggregate.
func (r *Result) add(run *RunResult) {
	r.Runs++
	r.lossCounts.Add(run.DataLoss)
	if run.Redirections > 0 {
		r.RedirectionRate++ // converted to a rate in finish
	}
	r.LostGroups.Add(float64(run.LostGroups))
	r.DiskFailures.Add(float64(run.DiskFailures))
	if run.BlocksRebuilt > 0 {
		r.WindowHours.Add(run.MeanWindowHours)
	}
	r.BlocksRebuilt.Add(float64(run.BlocksRebuilt))
	r.MigratedBytes.Add(float64(run.MigratedBytes))
	r.BatchesAdded.Add(float64(run.BatchesAdded))
	r.Predicted.Add(float64(run.PredictedFailures))
	r.DrainedBlocks.Add(float64(run.DrainedBlocks))
	r.LSEInjected.Add(float64(run.LSEInjected))
	r.LSEDetected.Add(float64(run.LSEDetected))
	r.ScrubFound.Add(float64(run.ScrubFound))
	r.RebuildRetries.Add(float64(run.RebuildRetries))
	r.Resourcings.Add(float64(run.Resourcings))
	r.Bursts.Add(float64(run.Bursts))
	r.QueuedSpareJobs.Add(float64(run.QueuedSpareJobs))
	r.FailSlowOnsets.Add(float64(run.FailSlowOnsets))
	r.SlowEvicted.Add(float64(run.SlowEvicted))
	r.Hedges.Add(float64(run.Hedges))
	r.HedgeWins.Add(float64(run.HedgeWins))
	r.RebuildTimeouts.Add(float64(run.RebuildTimeouts))
	if run.BlocksRebuilt > 0 {
		r.WindowP50Hours.Add(run.WindowP50Hours)
		r.WindowP99Hours.Add(run.WindowP99Hours)
	}
	r.SwitchFails.Add(float64(run.SwitchFails))
	r.Partitions.Add(float64(run.Partitions))
	r.FalseDeadRacks.Add(float64(run.FalseDeadRacks))
	r.FalseDeadDisks.Add(float64(run.FalseDeadDisks))
	r.ParkedTransfers.Add(float64(run.ParkedTransfers))
	r.CrossRackTransfers.Add(float64(run.CrossRackTransfers))
	r.CrossRackGB.Add(float64(run.CrossRackBytes) / 1e9)
	if run.BlocksRebuilt > 0 {
		r.MaxWindowHours.Add(run.MaxWindowHours)
	}
	r.DemandBursts.Add(float64(run.DemandBursts))
	r.DegradedReads.Add(float64(run.DegradedReads))
	if run.DegradedReads > 0 {
		r.DegradedReadP50Ms.Add(run.DegradedReadP50Ms)
		r.DegradedReadP99Ms.Add(run.DegradedReadP99Ms)
		r.DegradedReadMaxMs.Add(run.DegradedReadMaxMs)
		r.HealthyReadP99Ms.Add(run.HealthyReadP99Ms)
	}
	r.ThrottleSteps.Add(float64(run.ThrottleSteps))
	if run.ThrottleMeanMBps > 0 {
		r.ThrottleMeanMBps.Add(run.ThrottleMeanMBps)
	}
	r.PlannedDrains.Add(float64(run.PlannedDrains))
	r.UpgradeWindows.Add(float64(run.UpgradeWindows))
	r.FencedParks.Add(float64(run.FencedParks))
	r.GrowthBatches.Add(float64(run.GrowthBatches))
	r.GrowthDisksAdded.Add(float64(run.GrowthDisksAdded))
	r.Disks = run.Disks
}

// finish converts counters into rates and intervals.
func (r *Result) finish() {
	r.PLoss = r.lossCounts.Estimate()
	r.PLossLo, r.PLossHi = r.lossCounts.Wilson95()
	if r.Runs > 0 {
		r.RedirectionRate /= float64(r.Runs)
	}
}
