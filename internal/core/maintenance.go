package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/replace"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the simulator's planned-maintenance layer: the fleet
// operations a real datacenter schedules on purpose, layered over the
// same failure and recovery machinery the unplanned faults exercise.
// Three independent processes, each disabled by its zero knob:
//
//   - periodic proactive drains — every DrainEveryHours the next
//     DrainDisks drives (round-robin by id) take the controlled
//     suspect/drain exit a S.M.A.R.T. warning takes, retiring without a
//     rebuild storm;
//   - rolling-upgrade windows — every UpgradeEveryHours one rack (in
//     rack order) turns read-only for UpgradeDurationHours: its drives
//     keep serving reads (rebuild sources, degraded reads) but rebuild
//     writes targeting them park until the window ends;
//   - scheduled growth — every GrowEveryHours a batch of GrowDisks
//     fresh drives joins with a compounded vintage (capacity, bandwidth,
//     and failure-rate factors per batch), modelling the heterogeneous
//     fleet a system accretes over years of purchases.
//
// None of the schedules draws randomness: drains walk disk ids, upgrade
// windows walk racks, growth compounds fixed factors. Enabling
// maintenance therefore perturbs no RNG stream; it only adds events.

// degradedReadSalt isolates the degraded-read sampling stream from every
// other consumer of the run seed.
const degradedReadSalt = 0xdead_bea7_ca11_f00d

// MaintenanceConfig schedules planned fleet operations. The zero value
// schedules nothing.
type MaintenanceConfig struct {
	// DrainEveryHours is the period of proactive drain windows; zero
	// disables them. DrainDisks is the number of drives drained per
	// window (default 1), chosen round-robin by id over the fleet.
	DrainEveryHours float64
	DrainDisks      int
	// UpgradeEveryHours is the period of rolling-upgrade windows; zero
	// disables them (requires a topology — the window holds one rack).
	// UpgradeDurationHours is the window length (default half the
	// period, capped at 8).
	UpgradeEveryHours    float64
	UpgradeDurationHours float64
	// GrowEveryHours is the period of scheduled growth batches; zero
	// disables them. GrowDisks is the batch size (default 8). The three
	// factors compound per batch: batch k carries capacity
	// ·GrowCapacityFactor^k, bandwidth ·GrowBandwidthFactor^k, and
	// failure rate ·GrowAFRFactor^k relative to the original vintage
	// (each defaults to 1 — identical drives).
	GrowEveryHours      float64
	GrowDisks           int
	GrowCapacityFactor  float64
	GrowBandwidthFactor float64
	GrowAFRFactor       float64
}

// Enabled reports whether any maintenance process is scheduled.
func (c MaintenanceConfig) Enabled() bool {
	return c.DrainEveryHours > 0 || c.UpgradeEveryHours > 0 || c.GrowEveryHours > 0
}

// Validate rejects NaN/Inf and out-of-range fields.
func (c MaintenanceConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DrainEveryHours", c.DrainEveryHours},
		{"UpgradeEveryHours", c.UpgradeEveryHours},
		{"UpgradeDurationHours", c.UpgradeDurationHours},
		{"GrowEveryHours", c.GrowEveryHours},
		{"GrowCapacityFactor", c.GrowCapacityFactor},
		{"GrowBandwidthFactor", c.GrowBandwidthFactor},
		{"GrowAFRFactor", c.GrowAFRFactor},
	} {
		if err := faults.CheckFinite("core: Maintenance."+f.name, f.v); err != nil {
			return err
		}
	}
	switch {
	case c.DrainEveryHours < 0:
		return errors.New("core: negative drain period")
	case c.DrainDisks < 0:
		return errors.New("core: negative drain batch size")
	case c.UpgradeEveryHours < 0:
		return errors.New("core: negative upgrade period")
	case c.UpgradeDurationHours < 0:
		return errors.New("core: negative upgrade window")
	case c.UpgradeEveryHours > 0 && c.UpgradeDurationHours >= c.UpgradeEveryHours:
		return errors.New("core: upgrade window at least as long as its period")
	case c.GrowEveryHours < 0:
		return errors.New("core: negative growth period")
	case c.GrowDisks < 0:
		return errors.New("core: negative growth batch size")
	case c.GrowCapacityFactor < 0 || c.GrowBandwidthFactor < 0 || c.GrowAFRFactor < 0:
		return errors.New("core: negative growth vintage factor")
	}
	return nil
}

// effective fills the zero knobs of the processes that are enabled.
func (c MaintenanceConfig) effective() MaintenanceConfig {
	if c.DrainDisks == 0 {
		c.DrainDisks = 1
	}
	if c.UpgradeEveryHours > 0 && c.UpgradeDurationHours == 0 {
		c.UpgradeDurationHours = c.UpgradeEveryHours / 2
		if c.UpgradeDurationHours > 8 {
			c.UpgradeDurationHours = 8
		}
	}
	if c.GrowDisks == 0 {
		c.GrowDisks = 8
	}
	if c.GrowCapacityFactor == 0 {
		c.GrowCapacityFactor = 1
	}
	if c.GrowBandwidthFactor == 0 {
		c.GrowBandwidthFactor = 1
	}
	if c.GrowAFRFactor == 0 {
		c.GrowAFRFactor = 1
	}
	return c
}

// fleetMTTFHours estimates the fleet's expected time to the next disk
// failure from the Table 1 steady-state rate (~3%/year) scaled by the
// vintage factor — the deadline the deadline-aware throttle policy
// rebuilds against.
func fleetMTTFHours(vintageScale float64, disks int) float64 {
	if disks < 1 {
		disks = 1
	}
	return 8760 / (0.03 * vintageScale * float64(disks))
}

// scheduleDemandBurst chains the demand model's precomputed burst
// episodes into marker events, one at a time in start order. The markers
// are pure annotations — the demand schedule itself was drawn at
// construction — so they shift engine sequence numbers uniformly but
// never change simulation outcomes.
func (st *runState) scheduleDemandBurst(i int) {
	if i >= st.demand.Bursts() {
		return
	}
	start, hours, amp := st.demand.BurstAt(i)
	if start > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(sim.Time(start), "demand-burst", func(now sim.Time) {
		st.res.DemandBursts++
		st.sm.DemandBursts.Inc()
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindDemandBurst,
			Detail: fmt.Sprintf("hours=%.2f amp=%.3f", hours, amp)})
		st.scheduleDemandBurst(i + 1)
	})
}

// scheduleMaintenance arms the configured maintenance processes.
func (st *runState) scheduleMaintenance() {
	m := st.cfg.Maintenance.effective()
	if m.DrainEveryHours > 0 {
		st.scheduleDrainWindow(m)
	}
	if m.UpgradeEveryHours > 0 {
		st.scheduleUpgrade(m)
	}
	if m.GrowEveryHours > 0 {
		st.scheduleGrowth(m)
	}
}

// scheduleDrainWindow arms the next proactive drain window.
func (st *runState) scheduleDrainWindow(m MaintenanceConfig) {
	at := st.eng.Now() + sim.Time(m.DrainEveryHours)
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "drain-window", func(now sim.Time) {
		st.planDrains(now, m.DrainDisks)
		st.scheduleDrainWindow(m)
	})
}

// planDrains sends the next count drives through the controlled
// suspect/drain exit, round-robin by id so every drive eventually gets
// its turn. Dead, already-suspect, and write-fenced drives are skipped
// without consuming the window's budget.
func (st *runState) planDrains(now sim.Time, count int) {
	n := st.cl.NumDisks()
	for picked, scanned := 0, 0; picked < count && scanned < n; scanned++ {
		id := st.drainCursor % n
		st.drainCursor++
		if st.cl.Disks[id].State != disk.Alive || st.cl.IsSuspect(id) || st.cl.ReadOnly(id) {
			continue
		}
		picked++
		st.res.PlannedDrains++
		st.sm.DrainsPlanned.Inc()
		if st.plannedDrain == nil {
			st.plannedDrain = make(map[int]bool)
		}
		st.plannedDrain[id] = true
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindDrainPlanned, Disk: id})
		st.cl.MarkSuspect(id)
		st.drainStep(now, id)
	}
}

// scheduleUpgrade arms the next rolling-upgrade window.
func (st *runState) scheduleUpgrade(m MaintenanceConfig) {
	at := st.eng.Now() + sim.Time(m.UpgradeEveryHours)
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "upgrade-begin", func(now sim.Time) {
		st.beginUpgrade(now, m.UpgradeDurationHours)
		st.scheduleUpgrade(m)
	})
}

// beginUpgrade opens one rolling-upgrade window: the next rack (in rack
// order) turns read-only — its live drives keep serving reads but
// rebuild writes targeting them park — and a timer lifts the fences when
// the window ends. Only the drives fenced at open are unfenced at close:
// drives that die mid-window stay dead, drives added mid-window were
// never fenced.
func (st *runState) beginUpgrade(now sim.Time, durHours float64) {
	racks := st.net.Racks()
	rack := st.upgradeCount % racks
	st.upgradeCount++
	st.res.UpgradeWindows++
	st.sm.UpgradeWins.Inc()
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindUpgradeBegin, Rack: rack,
		Detail: fmt.Sprintf("hours=%.2f", durHours)})
	var fenced []int
	for id := rack; id < st.cl.NumDisks(); id += racks {
		if st.cl.Disks[id].State != disk.Alive || st.cl.ReadOnly(id) {
			continue
		}
		st.cl.MarkReadOnly(id, true)
		st.engine.HandleWriteFence(now, id)
		fenced = append(fenced, id)
	}
	st.eng.Schedule(now+sim.Time(durHours), "upgrade-end", func(enow sim.Time) {
		for _, id := range fenced {
			st.cl.MarkReadOnly(id, false)
			st.engine.HandleWriteUnfence(enow, id)
		}
		st.emit(trace.Event{Time: float64(enow), Kind: trace.KindUpgradeEnd, Rack: rack})
	})
}

// scheduleGrowth arms the next scheduled growth batch.
func (st *runState) scheduleGrowth(m MaintenanceConfig) {
	at := st.eng.Now() + sim.Time(m.GrowEveryHours)
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "growth-batch", func(now sim.Time) {
		st.growFleet(now, m)
		st.scheduleGrowth(m)
	})
}

// growFleet injects one scheduled growth batch with its compounded
// vintage: batch k's drives carry the configured capacity, bandwidth,
// and failure-rate factors raised to the kth power over the original
// model, then the fleet rebalances onto them exactly as replacement
// batches do.
func (st *runState) growFleet(now sim.Time, m MaintenanceConfig) {
	st.growthCount++
	k := float64(st.growthCount)
	scale := st.cfg.VintageScale * math.Pow(m.GrowAFRFactor, k)
	v, err := disk.NewVintage(fmt.Sprintf("growth-%d-x%.2g", st.growthCount, scale), scale)
	if err != nil {
		return // degenerate compounded factor; skip the batch
	}
	model := disk.Model{
		CapacityBytes: int64(float64(st.cfg.DiskCapacityBytes) * math.Pow(m.GrowCapacityFactor, k)),
		BandwidthMBps: st.cfg.DiskBandwidthMBps * math.Pow(m.GrowBandwidthFactor, k),
		Vintage:       v,
	}
	ids := st.cl.AddDisksModel(m.GrowDisks, float64(now), model)
	st.sched.Grow(st.cl.NumDisks())
	for _, nid := range ids {
		st.scheduleFailure(nid)
		st.armLSE(nid)
		st.armFailSlow(nid)
	}
	st.res.GrowthBatches++
	st.res.GrowthDisksAdded += len(ids)
	st.sm.GrowthBatches.Inc()
	st.sm.GrowthDisks.Add(uint64(len(ids)))
	st.res.MigratedBytes += replace.RebalanceOnto(st.cl, ids)
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindGrowth,
		Detail: fmt.Sprintf("disks=%d", len(ids))})
}
