package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/redundancy"
	"repro/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenConfigs are the scenarios the no-drift gate covers: every code
// path the fault-injection subsystem threads through (both engines,
// replacement, S.M.A.R.T., adaptive bandwidth) with fault injection left
// at its zero value. The golden file was generated from the pre-faults
// tree; any behavioural drift with injection disabled fails the test.
func goldenConfigs() []struct {
	name string
	cfg  Config
} {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.TotalDataBytes = 10 * disk.TB
		cfg.GroupBytes = 10 * disk.GB
		return cfg
	}
	farm := base()
	spare := base()
	spare.UseFARM = false
	replace := base()
	replace.ReplaceTrigger = 0.04
	smartCfg := base()
	smartCfg.SmartAccuracy = 0.5
	smartCfg.SmartLeadHours = 24
	adaptive := base()
	adaptive.AdaptiveRecovery = true
	erasure := base()
	erasure.Scheme = redundancy.Scheme{M: 4, N: 6}
	erasure.VintageScale = 2
	// Fault injection enabled with the fail-slow sub-config left at its
	// zero value and the straggler policy disabled: pins that the gray-
	// failure subsystem, dormant, cannot perturb the PR-2 fault paths.
	zeroSlow := base()
	zeroSlow.VintageScale = 2
	zeroSlow.Faults.LSERatePerDiskHour = 1e-5
	zeroSlow.Faults.ScrubIntervalHours = 720
	zeroSlow.Faults.BurstsPerYear = 1
	zeroSlow.Faults.TransientReadProb = 0.05
	// Fault injection and replacement enabled with the topology/network
	// sub-config left at its zero value: pins that the network-fault-domain
	// subsystem, dormant, cannot perturb any pre-existing path (flat
	// placement, flat transfer rates, no unreachability checks).
	nonet := base()
	nonet.VintageScale = 2
	nonet.ReplaceTrigger = 0.04
	nonet.Faults.LSERatePerDiskHour = 1e-5
	nonet.Faults.BurstsPerYear = 2
	nonet.Faults.TransientReadProb = 0.05
	// Fault injection, replacement, and a configured rack fabric with the
	// foreground-traffic, recovery-QoS, and maintenance sub-configs left
	// at their zero values: pins that the living-fleet subsystem, dormant,
	// cannot perturb any pre-existing path (no demand contention, no
	// throttle policy, no read-only fences, no planned drains or growth).
	noload := base()
	noload.VintageScale = 2
	noload.ReplaceTrigger = 0.04
	noload.Faults.LSERatePerDiskHour = 1e-5
	noload.Faults.BurstsPerYear = 2
	noload.Faults.TransientReadProb = 0.05
	noload.Topology = topology.Config{
		Racks:                 12,
		RackAware:             true,
		UplinkMBps:            1250,
		OversubscriptionRatio: 4,
		FalseDeadHours:        24,
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"farm-base", farm},
		{"spare-base", spare},
		{"farm-replace", replace},
		{"farm-smart", smartCfg},
		{"farm-adaptive", adaptive},
		{"farm-erasure-x2", erasure},
		{"farm-faults-zeroslow", zeroSlow},
		{"farm-faults-nonet", nonet},
		{"farm-faults-noload", noload},
	}
}

// hexF renders a float with exact bits so the comparison is byte-level,
// not approximate.
func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// goldenLines renders the pre-faults observable surface of a scenario:
// a single run plus a small Monte Carlo campaign. Only fields that
// existed before the fault subsystem are included, so the golden file
// pins "no drift when injection is off" rather than the new counters.
func goldenLines(t *testing.T, name string, cfg Config) []string {
	t.Helper()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var out []string
	for _, seed := range []uint64{1, 7, 42} {
		r, err := sim.Run(seed)
		if err != nil {
			t.Fatalf("%s seed %d: %v", name, seed, err)
		}
		out = append(out, fmt.Sprintf(
			"%s run seed=%d loss=%v lost=%d fail=%d rebuilt=%d redir=%d mw=%s xw=%s spares=%d batches=%d added=%d mig=%d rdh=%s pred=%d drained=%d disks=%d",
			name, seed, r.DataLoss, r.LostGroups, r.DiskFailures, r.BlocksRebuilt,
			r.Redirections, hexF(r.MeanWindowHours), hexF(r.MaxWindowHours),
			r.SparesUsed, r.BatchesAdded, r.DisksAdded, r.MigratedBytes,
			hexF(r.RecoveryDiskHours), r.PredictedFailures, r.DrainedBlocks, r.Disks))
	}
	res, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 12, BaseSeed: 100, Workers: 3})
	if err != nil {
		t.Fatalf("%s montecarlo: %v", name, err)
	}
	out = append(out, fmt.Sprintf(
		"%s mc runs=%d ploss=%s lo=%s hi=%s rr=%s lg=%s df=%s wh=%s br=%s mig=%s ba=%s pf=%s db=%s disks=%d",
		name, res.Runs, hexF(res.PLoss), hexF(res.PLossLo), hexF(res.PLossHi),
		hexF(res.RedirectionRate), hexF(res.LostGroups.Mean()),
		hexF(res.DiskFailures.Mean()), hexF(res.WindowHours.Mean()),
		hexF(res.BlocksRebuilt.Mean()), hexF(res.MigratedBytes.Mean()),
		hexF(res.BatchesAdded.Mean()), hexF(res.Predicted.Mean()),
		hexF(res.DrainedBlocks.Mean()), res.Disks))
	return out
}

// TestGoldenNoFaultsDrift verifies that with fault injection disabled
// (the zero faults.Config), every simulator output is byte-identical to
// the pre-fault-subsystem tree for the same seeds. Regenerate with
// `go test ./internal/core -run TestGoldenNoFaultsDrift -update` only
// when an intentional behavioural change is made.
func TestGoldenNoFaultsDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is moderately expensive")
	}
	var lines []string
	for _, sc := range goldenConfigs() {
		lines = append(lines, goldenLines(t, sc.name, sc.cfg)...)
	}
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", "golden_nofaults.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != got {
		wl := strings.Split(string(want), "\n")
		gl := strings.Split(got, "\n")
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if wl[i] != gl[i] {
				t.Fatalf("golden drift at line %d:\n want %s\n got  %s", i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("golden drift: %d lines vs %d", len(wl), len(gl))
	}
}
