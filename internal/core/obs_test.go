package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// obsStormConfig is the everything-on scenario the byte-identity gate
// runs under: gray failures, stragglers, latent errors, scrubbing,
// bursts, S.M.A.R.T. draining, and replacement batches all active, so
// every code path that mirrors into the flight recorder is exercised.
func obsStormConfig() Config {
	cfg := failSlowStormConfig()
	cfg.Faults.LSERatePerDiskHour = 1e-5
	cfg.Faults.ScrubIntervalHours = 720
	cfg.Faults.BurstsPerYear = 1
	cfg.SmartAccuracy = 0.5
	cfg.SmartLeadHours = 24
	return cfg
}

// fullObserver returns a RunObserver with every instrument enabled.
func fullObserver() *obs.RunObserver {
	return &obs.RunObserver{
		Registry:         obs.NewRegistry(),
		Spans:            obs.NewSpanLog(),
		Series:           obs.NewSeries(),
		SampleEveryHours: 168,
	}
}

// stripSpanKinds removes the span-lifecycle event kinds (emitted only
// when spans are enabled) so an obs-on trace can be compared against an
// obs-off transcript.
func stripSpanKinds(events []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(events))
	for _, e := range events {
		if e.Kind == trace.KindRebuildQueued || e.Kind == trace.KindTransferStart {
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestObsByteIdentity is the flight recorder's core contract: enabling
// the full obs stack (registry + spans + sampler) leaves RunResult and
// the trace transcript byte-identical to an unobserved run of the same
// seed. Observation is strictly read-only.
func TestObsByteIdentity(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		bare := obsStormConfig()
		rec0 := trace.NewRecorder()
		bare.Hook = rec0.Record
		s0, err := NewSimulator(bare)
		if err != nil {
			t.Fatal(err)
		}
		res0, err := s0.Run(seed)
		if err != nil {
			t.Fatal(err)
		}

		observed := obsStormConfig()
		rec1 := trace.NewRecorder()
		observed.Hook = rec1.Record
		ob := fullObserver()
		observed.Obs = ob
		s1, err := NewSimulator(observed)
		if err != nil {
			t.Fatal(err)
		}
		res1, err := s1.Run(seed)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(res0, res1) {
			t.Fatalf("seed %d: RunResult drifts with obs enabled:\n bare %+v\n obs  %+v", seed, res0, res1)
		}
		got, want := stripSpanKinds(rec1.Events()), rec0.Events()
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace length drifts: %d vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: trace event %d drifts: %+v vs %+v", seed, i, got[i], want[i])
			}
		}

		// The instruments actually recorded: counters mirror the result,
		// spans cover every rebuild, and the sampler took its samples.
		reg := ob.Registry
		if n := reg.Counter(obs.MetricDiskFailures).Value(); n != uint64(res1.DiskFailures) {
			t.Errorf("seed %d: disk_failures_total = %d, result says %d", seed, n, res1.DiskFailures)
		}
		if n := reg.Counter(obs.MetricBlocksRebuilt).Value(); n != uint64(res1.BlocksRebuilt) {
			t.Errorf("seed %d: blocks_rebuilt_total = %d, result says %d", seed, n, res1.BlocksRebuilt)
		}
		if n := reg.Counter(obs.MetricLSEInjected).Value(); n != uint64(res1.LSEInjected) {
			t.Errorf("seed %d: lse_injected_total = %d, result says %d", seed, n, res1.LSEInjected)
		}
		if n := reg.Counter(obs.MetricFailSlowOnsets).Value(); n != uint64(res1.FailSlowOnsets) {
			t.Errorf("seed %d: failslow_onsets_total = %d, result says %d", seed, n, res1.FailSlowOnsets)
		}
		done := 0
		for _, sp := range ob.Spans.Spans() {
			if sp.Outcome == obs.OutcomeDone {
				done++
			}
		}
		if done != res1.BlocksRebuilt {
			t.Errorf("seed %d: %d done spans, result says %d rebuilds", seed, done, res1.BlocksRebuilt)
		}
		if h := reg.Histogram(obs.MetricWindowHours, obs.PhaseBounds); h.Count() != uint64(done) {
			t.Errorf("seed %d: window histogram has %d observations, want %d", seed, h.Count(), done)
		}
		wantSamples := int(float64(observed.SimHours)/ob.SampleEveryHours) + 1
		if ob.Series.Len() != wantSamples {
			t.Errorf("seed %d: %d samples, want %d", seed, ob.Series.Len(), wantSamples)
		}
	}
}

// TestObsSamplerReadOnly pins the sampler-only configuration (no
// registry, no spans): pure sampling must also leave the run untouched.
func TestObsSamplerReadOnly(t *testing.T) {
	cfg := obsStormConfig()
	s0, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := s0.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	sampled := obsStormConfig()
	sampled.Obs = &obs.RunObserver{Series: obs.NewSeries(), SampleEveryHours: 24}
	s1, err := NewSimulator(sampled)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res0, res1) {
		t.Fatalf("sampler perturbed the run:\n bare    %+v\n sampled %+v", res0, res1)
	}
	if sampled.Obs.Series.Len() == 0 {
		t.Fatal("sampler recorded nothing")
	}
	last := sampled.Obs.Series.Samples()[sampled.Obs.Series.Len()-1]
	if last.T > float64(sampled.SimHours) {
		t.Fatalf("sample beyond horizon: %v > %v", last.T, sampled.SimHours)
	}
}

// TestMonteCarloTelemetryByteIdenticalAcrossWorkers: the campaign's
// merged master registry is folded in run-index order, so its exposition
// bytes must not depend on the worker count. Run under -race this also
// shakes out unsynchronized access between workers and the campaign.
func TestMonteCarloTelemetryByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := obsStormConfig()
	var wantJSON, wantProm []byte
	var wantRes Result
	for i, workers := range []int{1, 4} {
		hub := obs.NewCampaign()
		res, err := MonteCarlo(cfg, MonteCarloOptions{
			Runs: 12, BaseSeed: 500, Workers: workers, Telemetry: hub,
		})
		if err != nil {
			t.Fatal(err)
		}
		var js, prom bytes.Buffer
		err = hub.MasterSnapshot(func(r *obs.Registry) error {
			if err := r.WriteJSONL(&js); err != nil {
				return err
			}
			return r.WritePrometheus(&prom)
		})
		if err != nil {
			t.Fatal(err)
		}
		prog := hub.Snapshot()
		wantLosses := int(res.PLoss*float64(res.Runs) + 0.5)
		if prog.RunsDone != 12 || prog.Losses != wantLosses {
			t.Fatalf("workers=%d: progress %+v disagrees with result (ploss %v over %d runs)",
				workers, prog, res.PLoss, res.Runs)
		}
		if i == 0 {
			wantJSON, wantProm, wantRes = js.Bytes(), prom.Bytes(), res
			if !bytes.Contains(wantJSON, []byte("disk_failures_total")) {
				t.Fatalf("master registry missing counters:\n%s", wantJSON)
			}
			continue
		}
		if !bytes.Equal(js.Bytes(), wantJSON) {
			t.Errorf("workers=%d: merged JSONL differs from workers=1", workers)
		}
		if !bytes.Equal(prom.Bytes(), wantProm) {
			t.Errorf("workers=%d: merged Prometheus text differs from workers=1", workers)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("workers=%d: Result differs from workers=1", workers)
		}
	}
}

// TestMonteCarloRejectsSharedObs: a per-run observer on a campaign
// config would be written by every worker at once; the campaign must
// refuse it and point at MonteCarloOptions.Telemetry.
func TestMonteCarloRejectsSharedObs(t *testing.T) {
	cfg := smallConfig()
	cfg.Obs = &obs.RunObserver{Registry: obs.NewRegistry()}
	_, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 2, BaseSeed: 1})
	if !errors.Is(err, ErrSharedObs) {
		t.Fatalf("err = %v, want ErrSharedObs", err)
	}
}

// TestObsValidation: observer misconfiguration surfaces through the
// simulator's Validate path.
func TestObsValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Obs = &obs.RunObserver{Series: obs.NewSeries()} // no cadence
	if _, err := NewSimulator(cfg); !errors.Is(err, obs.ErrSampleCadence) {
		t.Fatalf("err = %v, want ErrSampleCadence", err)
	}
}
