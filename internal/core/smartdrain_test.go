package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/smart"
	"repro/internal/workload"
)

// newDrainScenario builds a miniature run whose events the test drives by
// hand: a FARM cluster, the scheduler, and a runState wired exactly like
// runOnce, but with nothing queued yet — the test chooses what fails and
// what drains, and when.
func newDrainScenario(t *testing.T) *runState {
	t.Helper()
	cfg := smallConfig()
	model, err := cfg.diskModel()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Scheme:             cfg.Scheme,
		GroupBytes:         cfg.GroupBytes,
		NumGroups:          cfg.NumGroups(),
		DiskModel:          model,
		InitialUtilization: cfg.InitialUtilization,
		PlacementSeed:      99,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	sched := recovery.NewScheduler(eng, cl.NumDisks())
	st := &runState{
		cfg:     cfg,
		cl:      cl,
		eng:     eng,
		sched:   sched,
		random:  rng.New(cfg.Seed),
		res:     &RunResult{},
		monitor: smart.Monitor{},
		sm:      obs.NewSimMetrics(obs.NewRegistry()),
	}
	st.engine = recovery.NewFARM(cl, eng, sched, workload.Fixed{MBps: cfg.RecoveryMBps})
	return st
}

// sharedBuddy returns a pair (a, b) of distinct alive disks that share at
// least one redundancy group, so failing b puts a on the rebuild path.
func sharedBuddy(t *testing.T, cl *cluster.Cluster) (a, b int) {
	t.Helper()
	for g := 0; g < cl.GroupCount(); g++ {
		d := cl.GroupDisks(g)
		if len(d) >= 2 && d[0] >= 0 && d[1] >= 0 {
			return int(d[0]), int(d[1])
		}
	}
	t.Fatal("no group with two placed replicas")
	return -1, -1
}

// finishAndCheck drains the event queue and verifies cluster invariants
// plus full redundancy for every non-lost group.
func finishAndCheck(t *testing.T, st *runState) {
	t.Helper()
	st.eng.RunUntil(sim.Time(st.cfg.SimHours))
	if err := st.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.cl.LostGroups != 0 {
		t.Fatalf("scenario lost %d groups", st.cl.LostGroups)
	}
}

// TestDrainWhileSource: a suspect drive starts draining while it is the
// rebuild source for a dead buddy's blocks. Both processes must finish —
// the rebuilds reconstruct every lost block, the drain empties and
// retires the suspect — without ever violating cluster invariants.
func TestDrainWhileSource(t *testing.T) {
	st := newDrainScenario(t)
	src, victim := sharedBuddy(t, st.cl)

	// Kill the buddy: detection + rebuilds start, sourcing (among others)
	// from src.
	st.eng.Schedule(1, "kill", func(now sim.Time) { st.onDiskFailure(now, victim) })
	// While those rebuilds are in flight, src turns suspect and drains.
	st.eng.Schedule(1.1, "warn", func(now sim.Time) { st.onSmartWarning(now, src) })
	finishAndCheck(t, st)

	if st.res.DrainedBlocks == 0 {
		t.Fatal("suspect source drained nothing")
	}
	if st.cl.Disks[src].State == disk.Alive {
		t.Fatal("fully drained suspect was not retired")
	}
	if len(st.cl.BlocksOn(src)) != 0 {
		t.Fatalf("%d blocks left on the retired suspect", len(st.cl.BlocksOn(src)))
	}
	es := st.engine.Stats()
	if es.BlocksRebuilt == 0 {
		t.Fatal("no rebuilds completed around the draining source")
	}
}

// TestDrainWhileTarget: a drive turns suspect while in-flight rebuilds
// are targeting it. The landed blocks must be moved off again by the
// drain, and the suspect must end the run empty and retired.
func TestDrainWhileTarget(t *testing.T) {
	st := newDrainScenario(t)
	_, victim := sharedBuddy(t, st.cl)

	st.eng.Schedule(1, "kill", func(now sim.Time) { st.onDiskFailure(now, victim) })
	// Wait for rebuilds to be submitted (detection fires at +30 s), then
	// mark every disk currently reserved as a rebuild target suspect —
	// guaranteeing at least one drain races an inbound transfer.
	st.eng.Schedule(1.2, "warn-targets", func(now sim.Time) {
		marked := 0
		for id := 0; id < st.cl.NumDisks(); id++ {
			if id != victim && st.sched.Busy(id) && marked < 2 {
				st.onSmartWarning(now, id)
				marked++
			}
		}
		if marked == 0 {
			t.Error("no busy rebuild endpoints to mark suspect")
		}
	})
	finishAndCheck(t, st)

	if st.res.DrainedBlocks == 0 {
		t.Fatal("suspect targets drained nothing")
	}
	if st.engine.Stats().BlocksRebuilt == 0 {
		t.Fatal("no rebuilds completed")
	}
}

// TestDrainThenDeath: a suspect drive dies mid-drain. The drain must stop
// cold, reactive recovery must take over the remaining blocks, and the
// dead drive's in-flight drain transfer must not resurrect anything.
func TestDrainThenDeath(t *testing.T) {
	st := newDrainScenario(t)
	suspect, _ := sharedBuddy(t, st.cl)
	before := len(st.cl.BlocksOn(suspect))
	if before == 0 {
		t.Fatal("chosen suspect holds no blocks")
	}

	st.eng.Schedule(1, "warn", func(now sim.Time) { st.onSmartWarning(now, suspect) })
	// The drain moves one block at a time at RecoveryMBps; kill the drive
	// after a couple of transfers, long before it can empty.
	st.eng.Schedule(2, "kill", func(now sim.Time) { st.onDiskFailure(now, suspect) })
	finishAndCheck(t, st)

	if st.res.DrainedBlocks == 0 {
		t.Fatal("no blocks drained before the death")
	}
	if st.res.DrainedBlocks >= before {
		t.Fatalf("drain claims %d blocks but only %d existed and the drive died early",
			st.res.DrainedBlocks, before)
	}
	es := st.engine.Stats()
	if es.BlocksRebuilt == 0 {
		t.Fatal("reactive recovery rebuilt nothing after the mid-drain death")
	}
	// Everything the drain did not move was rebuilt reactively.
	if got := st.res.DrainedBlocks + es.BlocksRebuilt; got < before {
		t.Fatalf("drained %d + rebuilt %d < %d blocks the drive held",
			st.res.DrainedBlocks, es.BlocksRebuilt, before)
	}
}
