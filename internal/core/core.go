// Package core assembles the paper's system: a discrete-event Monte Carlo
// simulator of a petabyte-scale storage cluster under disk failures, with
// FARM or traditional spare-disk recovery, and the parallel multi-run
// driver that estimates the probability of data loss.
//
// A single Run builds the cluster, samples every drive's failure time from
// the Table 1 hazard, and plays six simulated years: failure → detection
// after the configured latency → rebuild through the chosen recovery
// engine → optional batch replacement of failed drives. The headline
// metric is whether any redundancy group lost data (Figures 3–5, 7, 8);
// secondary metrics include window-of-vulnerability statistics, recovery
// redirection counts (§2.3), and per-disk utilization (Figure 6, Table 3).
package core

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/redundancy"
	"repro/internal/replace"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/smart"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes one simulated system, defaulting to the paper's base
// parameters (Table 2).
type Config struct {
	// TotalDataBytes is the user data stored, excluding redundancy
	// (paper base: 2 PB).
	TotalDataBytes int64
	// GroupBytes is the user data per redundancy group (paper base:
	// 10 GB; examined 1–100 GB).
	GroupBytes int64
	// Scheme is the redundancy configuration (paper base: two-way
	// mirroring, 1/2).
	Scheme redundancy.Scheme
	// DiskCapacityBytes is per-drive capacity (paper: 1 TB).
	DiskCapacityBytes int64
	// DiskBandwidthMBps is the sustainable per-drive transfer rate
	// (paper: ~80 MB/s).
	DiskBandwidthMBps float64
	// RecoveryMBps is the bandwidth allotted to rebuilds (paper base:
	// 16 MB/s — 20% of the drive; examined 8–40 MB/s).
	RecoveryMBps float64
	// DetectionLatencyHours is the failure-detection delay (paper base:
	// 30 s; examined 0–3600 s).
	DetectionLatencyHours float64
	// InitialUtilization is the build-time fill target (paper: 40%,
	// leaving room for recovered data).
	InitialUtilization float64
	// UseFARM selects distributed recovery; false selects the
	// traditional single-spare baseline.
	UseFARM bool
	// SimHours is the simulated horizon (paper: 6 years, the drives'
	// EODL).
	SimHours float64
	// VintageScale multiplies the Table 1 failure rates (Figure 8(b)
	// uses 2).
	VintageScale float64
	// ReplaceTrigger, when positive, adds a batch of fresh drives each
	// time this fraction of the original population has failed since the
	// last batch (Figure 7 examines 0.02–0.08). Zero disables
	// replacement.
	ReplaceTrigger float64
	// AdaptiveRecovery enables the workload-adaptive bandwidth model of
	// §2.4: recovery receives the guaranteed RecoveryMBps floor at the
	// user-load peak and up to the drive's full idle bandwidth at night,
	// following a diurnal load curve. The paper's base experiments keep
	// this off (fixed reservation).
	AdaptiveRecovery bool
	// SmartAccuracy, with SmartLeadHours, enables S.M.A.R.T.-style
	// failure prediction (§2.3): that fraction of failures is flagged
	// SmartLeadHours in advance, the flagged drive is excluded from
	// placement and recovery-target choice, and its blocks are drained
	// to healthy drives before it dies. Zero (the paper's base) disables
	// prediction.
	SmartAccuracy  float64
	SmartLeadHours float64
	// Faults configures deterministic fault injection: latent sector
	// errors with optional scrubbing, correlated failure bursts,
	// transient rebuild-read faults, and a finite spare pool. The zero
	// value disables injection entirely and leaves every existing
	// experiment byte-identical for the same seed (the injector draws
	// from its own stream split off the run seed).
	Faults faults.Config
	// Straggler configures the recovery engines' straggler-mitigation
	// layer: the peer-comparison slow-disk detector, hedged duplicate
	// transfers, hard rebuild timeouts, and eviction of persistent
	// stragglers through the suspect/drain path. The zero value disables
	// the layer entirely and leaves every code path untouched.
	Straggler recovery.StragglerPolicy
	// Topology configures the network fabric: disks spread over racks
	// behind oversubscribable ToR uplinks. With a fabric configured,
	// cross-rack rebuild transfers contend for fair-share bandwidth, and
	// the correlated network faults of Faults.Network (switch failures,
	// rack power events, partitions) become schedulable. The zero value
	// disables the fabric entirely and leaves every experiment
	// byte-identical.
	Topology topology.Config
	// Demand configures the foreground user-I/O model (§2.4's fluctuating
	// user requests): a diurnal base load, Poisson burst episodes, and
	// per-rack skew, all drawn on a dedicated stream salted off the run
	// seed. With demand configured, rebuild transfers stretch by the
	// contention of the moment and user reads landing on lost blocks are
	// priced as degraded (k-way reconstruction) latencies. The zero value
	// constructs no model and leaves every experiment byte-identical.
	Demand workload.DemandConfig
	// Throttle selects the recovery QoS policy governing how much
	// bandwidth rebuilds may take from users: the paper's fixed floor, a
	// load-adaptive AIMD with hysteresis, or the deadline-aware variant
	// floored at the minimum repair rate that clears the backlog before
	// the next expected failure. Requires Demand (the policy reacts to
	// the fleet user share). The zero value keeps the static
	// RecoveryMBps / AdaptiveRecovery bandwidth model.
	Throttle workload.ThrottleConfig
	// Maintenance schedules planned fleet operations: periodic proactive
	// drains, rolling-upgrade windows that hold one rack read-only at a
	// time (requires Topology), and scheduled capacity growth with
	// heterogeneous drive vintages. The zero value schedules nothing.
	Maintenance MaintenanceConfig
	// Seed drives all randomness of the run.
	Seed uint64 //farm:anyvalue every uint64 is a valid seed; runs differ, none misbehave
	// CollectUtilization records per-disk used bytes at build time and
	// at the horizon (Figure 6 / Table 3); costs two []int64 copies.
	CollectUtilization bool
	// Hook, when non-nil, receives every simulator event (failures,
	// detections, rebuilds, losses, warnings, batches) as it happens.
	// Used by cmd/farmtrace; nil costs nothing.
	Hook func(trace.Event)
	// Obs, when non-nil, attaches the flight recorder: a metrics
	// Registry mirroring every simulator and recovery counter, a SpanLog
	// recording one lifecycle span per block rebuild, and a Series of
	// periodic system-state samples. All instruments are read-only
	// observers — an attached recorder leaves the run's RunResult (and,
	// modulo the two span-lifecycle trace kinds, its transcript)
	// byte-identical. Nil costs nothing.
	Obs *obs.RunObserver
}

// DefaultConfig returns the paper's Table 2 base system.
func DefaultConfig() Config {
	return Config{
		TotalDataBytes:        2 * disk.PB,
		GroupBytes:            10 * disk.GB,
		Scheme:                redundancy.Scheme{M: 1, N: 2},
		DiskCapacityBytes:     disk.TB,
		DiskBandwidthMBps:     80,
		RecoveryMBps:          16,
		DetectionLatencyHours: 30.0 / 3600,
		InitialUtilization:    0.4,
		UseFARM:               true,
		SimHours:              disk.EODLHours,
		VintageScale:          1,
		Seed:                  1,
	}
}

// Validate checks the configuration. Every float field rejects NaN and
// ±Inf with a message naming the field before the range checks run, so a
// corrupted sweep config fails loudly instead of poisoning a simulation.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DiskBandwidthMBps", c.DiskBandwidthMBps},
		{"RecoveryMBps", c.RecoveryMBps},
		{"DetectionLatencyHours", c.DetectionLatencyHours},
		{"InitialUtilization", c.InitialUtilization},
		{"SimHours", c.SimHours},
		{"VintageScale", c.VintageScale},
		{"ReplaceTrigger", c.ReplaceTrigger},
		{"SmartAccuracy", c.SmartAccuracy},
		{"SmartLeadHours", c.SmartLeadHours},
	} {
		if err := faults.CheckFinite("core: "+f.name, f.v); err != nil {
			return err
		}
	}
	switch {
	case c.TotalDataBytes <= 0:
		return errors.New("core: non-positive total data")
	case c.GroupBytes <= 0:
		return errors.New("core: non-positive group size")
	case c.GroupBytes > c.TotalDataBytes:
		return errors.New("core: group larger than total data")
	case c.Scheme.M < 1 || c.Scheme.N <= c.Scheme.M:
		return fmt.Errorf("core: invalid scheme %v", c.Scheme)
	case c.DiskCapacityBytes <= 0:
		return errors.New("core: non-positive disk capacity")
	case c.DiskBandwidthMBps <= 0:
		return errors.New("core: non-positive disk bandwidth")
	case c.RecoveryMBps <= 0:
		return errors.New("core: non-positive recovery bandwidth")
	case c.RecoveryMBps > c.DiskBandwidthMBps:
		return errors.New("core: recovery bandwidth exceeds disk bandwidth")
	case c.DetectionLatencyHours < 0:
		return errors.New("core: negative detection latency")
	case c.InitialUtilization <= 0 || c.InitialUtilization > 1:
		return errors.New("core: initial utilization out of (0,1]")
	case c.SimHours <= 0:
		return errors.New("core: non-positive horizon")
	case c.VintageScale <= 0:
		return errors.New("core: non-positive vintage scale")
	case c.ReplaceTrigger < 0 || c.ReplaceTrigger >= 1:
		return errors.New("core: replace trigger out of [0,1)")
	case c.SmartAccuracy < 0 || c.SmartAccuracy > 1:
		return errors.New("core: smart accuracy out of [0,1]")
	case c.SmartLeadHours < 0:
		return errors.New("core: negative smart lead")
	}
	if err := c.Straggler.Validate(); err != nil {
		return err
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Demand.Validate(); err != nil {
		return err
	}
	if err := c.Throttle.Validate(); err != nil {
		return err
	}
	if err := c.Maintenance.Validate(); err != nil {
		return err
	}
	if c.Throttle.Enabled() && !c.Demand.Enabled() {
		return errors.New("core: throttle policy needs a demand model (set Demand.BaseShare)")
	}
	if c.Maintenance.UpgradeEveryHours > 0 && !c.Topology.Enabled() {
		return errors.New("core: rolling upgrades need a topology (set Topology.Racks)")
	}
	if c.Faults.Network.Enabled() && !c.Topology.Enabled() {
		return errors.New("core: network faults need a topology (set Topology.Racks)")
	}
	if c.Topology.RackAware && c.Topology.Racks < c.Scheme.N {
		return errors.New("core: rack-aware placement needs at least N racks")
	}
	if err := c.Obs.Validate(); err != nil {
		return err
	}
	return c.Faults.Validate()
}

// NumGroups returns the redundancy-group count the config implies.
func (c Config) NumGroups() int {
	n := int(c.TotalDataBytes / c.GroupBytes)
	if n < 1 {
		n = 1
	}
	return n
}

// diskModel materializes the drive model, applying the vintage scale.
func (c Config) diskModel() (disk.Model, error) {
	v, err := disk.NewVintage(fmt.Sprintf("table1-x%.2g", c.VintageScale), c.VintageScale)
	if err != nil {
		return disk.Model{}, err
	}
	return disk.Model{
		CapacityBytes: c.DiskCapacityBytes,
		BandwidthMBps: c.DiskBandwidthMBps,
		Vintage:       v,
	}, nil
}

// RunResult reports one six-year trajectory.
type RunResult struct {
	// DataLoss is true if any group lost data during the run.
	DataLoss bool
	// LostGroups counts groups that lost data.
	LostGroups int
	// DiskFailures counts drive deaths (including spares and batch
	// drives).
	DiskFailures int
	// BlocksRebuilt counts completed block reconstructions.
	BlocksRebuilt int
	// Redirections counts recovery-target failures mid-rebuild.
	Redirections int
	// MeanWindowHours is the mean window of vulnerability (failure to
	// block restored).
	MeanWindowHours float64
	// MaxWindowHours is the worst observed window.
	MaxWindowHours float64
	// SparesUsed counts dedicated spares (traditional engine only).
	SparesUsed int
	// BatchesAdded counts replacement batches injected.
	BatchesAdded int
	// DisksAdded counts drives injected by replacement.
	DisksAdded int
	// MigratedBytes counts bytes moved to rebalance onto new batches.
	MigratedBytes int64
	// RecoveryDiskHours is the disk-hours consumed by rebuild transfers
	// (two drives per transfer) — the degraded-mode interference budget.
	RecoveryDiskHours float64
	// PredictedFailures counts failures flagged in advance by the
	// S.M.A.R.T. monitor; DrainedBlocks counts blocks moved off suspect
	// drives before they died.
	PredictedFailures int
	DrainedBlocks     int
	// Fault-injection accounting (zero unless cfg.Faults is enabled).
	// LSEInjected counts latent sector errors that arrived; LSEDetected
	// counts those discovered by rebuild reads; ScrubFound counts those
	// discovered (and queued for repair) by the scrubber. Undiscovered
	// errors either die with their disk or silently ride to the horizon.
	LSEInjected int
	LSEDetected int
	ScrubFound  int
	// RebuildRetries counts backed-off re-attempts after transient
	// source-read faults; TransientFaults counts the faults themselves;
	// Resourcings counts rebuilds that switched source.
	RebuildRetries  int
	TransientFaults int
	Resourcings     int
	// Bursts counts correlated-failure bursts; BurstKills counts the
	// drive deaths they injected (some may coincide with natural deaths).
	Bursts     int
	BurstKills int
	// QueuedSpareJobs counts recovery jobs that waited for an exhausted
	// spare pool (traditional engine with a finite pool).
	QueuedSpareJobs int
	// Fail-slow and straggler-mitigation accounting (zero unless
	// cfg.Faults.FailSlow / cfg.Straggler are enabled). FailSlowOnsets
	// counts drives that degraded; FailSlowRecoveries counts spontaneous
	// recoveries; SlowBursts counts correlated slow-bursts.
	FailSlowOnsets     int
	FailSlowRecoveries int
	SlowBursts         int
	// SlowFlagged counts detector flag transitions; SlowEvicted counts
	// drives the detector condemned; Hedges/HedgeWins count duplicate
	// transfers launched and won; RebuildTimeouts counts hard-aborted
	// attempts.
	SlowFlagged     int
	SlowEvicted     int
	Hedges          int
	HedgeWins       int
	RebuildTimeouts int
	// WindowP50Hours/WindowP99Hours are streaming-quantile estimates of
	// the per-block vulnerability window (the rebuild-time tail the
	// fail-slow experiment reports). Zero when no block was rebuilt.
	WindowP50Hours float64
	WindowP99Hours float64
	// Network-fault accounting (zero unless cfg.Topology and
	// cfg.Faults.Network are enabled). SwitchFails counts ToR-switch
	// deaths; RackPowerEvents and Partitions count the transient rack
	// outages; PartitionHeals counts racks that came back. FalseDeadRacks
	// counts dark racks the false-dead timer declared lost, and
	// FalseDeadDisks the (healthy) drives written off with them.
	SwitchFails     int
	RackPowerEvents int
	Partitions      int
	PartitionHeals  int
	FalseDeadRacks  int
	FalseDeadDisks  int
	// ParkedTransfers counts rebuilds parked against a dark rack instead
	// of abandoned; CrossRackTransfers/CrossRackBytes tally completed
	// transfers that crossed the rack fabric.
	ParkedTransfers    int
	CrossRackTransfers int
	CrossRackBytes     int64
	// Foreground-coexistence accounting (zero unless cfg.Demand is
	// enabled). DemandBursts counts burst episodes that began within the
	// horizon; DegradedReads counts user reads served by reconstruction
	// during a window of vulnerability, with mean/median/p99/max latency
	// in milliseconds and the counterfactual healthy-read p99 sampled at
	// the same instants.
	DemandBursts       int
	DegradedReads      int
	DegradedReadMeanMs float64
	DegradedReadP50Ms  float64
	DegradedReadP99Ms  float64
	DegradedReadMaxMs  float64
	HealthyReadP99Ms   float64
	// QoS accounting (zero unless cfg.Throttle is enabled). ThrottleSteps
	// counts recovery-rate changes the policy made; ThrottleMeanMBps is
	// the mean rate granted across decision points.
	ThrottleSteps    int
	ThrottleMeanMBps float64
	// Maintenance accounting (zero unless cfg.Maintenance schedules
	// anything). PlannedDrains counts drives sent through the proactive
	// drain exit; UpgradeWindows counts rolling-upgrade rack windows;
	// FencedParks counts rebuilds parked against a write-fenced target;
	// GrowthBatches/GrowthDisksAdded tally scheduled capacity growth.
	PlannedDrains    int
	UpgradeWindows   int
	FencedParks      int
	GrowthBatches    int
	GrowthDisksAdded int
	// InitialUsedBytes and FinalUsedBytes are per-disk-slot utilization
	// snapshots, present only when CollectUtilization is set. Final
	// covers all slots ever provisioned (0 for dead drives).
	InitialUsedBytes []int64
	FinalUsedBytes   []int64
	// Disks is the initial drive population.
	Disks int
}

// Simulator executes single runs of a Config.
type Simulator struct {
	cfg Config
}

// NewSimulator validates the config and returns a runner.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Run simulates one trajectory with the given seed (overriding cfg.Seed).
func (s *Simulator) Run(seed uint64) (RunResult, error) {
	cfg := s.cfg
	cfg.Seed = seed
	return runOnce(cfg)
}

// Stream-isolation salts. Every subsystem that draws randomness derives
// its own stream as cfg.Seed XOR a private salt, so enabling one
// subsystem never perturbs another's draws (the property the golden
// transcripts pin). farmlint's rngsalt analyzer proves no two salts in
// the import closure collide; see also degradedReadSalt (maintenance.go),
// demandSeedSalt (workload), and netSeedSalt (faults).
const (
	// placementSeedSalt isolates rendezvous placement from the failure
	// process.
	placementSeedSalt = 0xfa57_feed_c0de_f00d
	// faultSeedSalt isolates fault injection, so the zero Faults config
	// leaves the base simulation's draws untouched.
	faultSeedSalt = 0xbad5_ec70_bad5_ec70
)

func runOnce(cfg Config) (RunResult, error) {
	model, err := cfg.diskModel()
	if err != nil {
		return RunResult{}, err
	}
	net, err := topology.NewNetwork(cfg.Topology)
	if err != nil {
		return RunResult{}, err
	}
	ccfg := cluster.Config{
		Scheme:             cfg.Scheme,
		GroupBytes:         cfg.GroupBytes,
		NumGroups:          cfg.NumGroups(),
		DiskModel:          model,
		InitialUtilization: cfg.InitialUtilization,
		PlacementSeed:      cfg.Seed ^ placementSeedSalt,
		Net:                net,
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return RunResult{}, err
	}

	eng := sim.New()
	sched := recovery.NewScheduler(eng, cl.NumDisks())
	random := rng.New(cfg.Seed)

	var res RunResult
	res.Disks = cl.NumDisks()
	if cfg.CollectUtilization {
		res.InitialUsedBytes = cl.UsedBytesAll()
	}

	st := &runState{
		cfg:     cfg,
		cl:      cl,
		eng:     eng,
		sched:   sched,
		random:  random,
		res:     &res,
		monitor: smart.Monitor{Accuracy: cfg.SmartAccuracy, LeadHours: cfg.SmartLeadHours},
		// The sim-metrics bundle starts as a shared-handle discard sink,
		// so the ~14 counter-mirror sites below need no nil checks; an
		// attached recorder swaps in the real one.
		sm: obs.NewDiscardSimMetrics(),
	}

	spawn := func(now sim.Time) int {
		ids := cl.AddDisks(1, float64(now))
		sched.Grow(cl.NumDisks())
		st.scheduleFailure(ids[0])
		st.armLSE(ids[0])
		st.armFailSlow(ids[0])
		return ids[0]
	}
	var bw workload.BandwidthModel = workload.Fixed{MBps: cfg.RecoveryMBps}
	if cfg.AdaptiveRecovery {
		d, berr := workload.NewDiurnal(cfg.DiskBandwidthMBps, cfg.RecoveryMBps, 0.8, 14)
		if berr != nil {
			return RunResult{}, berr
		}
		bw = d
	}
	if cfg.Faults.FailSlow.Enabled() {
		// Per-disk degradation view over the expectation model. Only
		// installed when gray failures can actually occur, so a zero
		// fail-slow config keeps the engines' healthy fast path (and the
		// golden transcript) byte-identical.
		bw = workload.Degraded{Base: bw, Slowdown: func(id int) float64 {
			if id < len(cl.Disks) {
				return cl.Disks[id].SlowFactor()
			}
			return 1
		}}
	}
	st.bw = bw
	if cfg.UseFARM {
		st.engine = recovery.NewFARM(cl, eng, sched, bw)
	} else {
		st.engine = recovery.NewSpareDisk(cl, eng, sched, bw, spawn)
	}
	if net != nil {
		st.net = net
		st.engine.SetTopology(net)
	}
	demand, derr := workload.NewDemand(cfg.Demand, cfg.SimHours, cfg.Topology.Racks, cfg.Seed)
	if derr != nil {
		return RunResult{}, derr
	}
	if demand != nil {
		st.demand = demand
		pol, terr := workload.NewThrottle(cfg.Throttle)
		if terr != nil {
			return RunResult{}, terr
		}
		// Cross-rack reconstruction pays the oversubscribed spine: the
		// degraded-read stretch is the oversubscription ratio itself.
		cross := 1.0
		if cfg.Topology.Enabled() && cfg.Topology.OversubscriptionRatio > 1 {
			cross = cfg.Topology.OversubscriptionRatio
		}
		st.engine.SetForeground(&workload.Foreground{
			Demand:          demand,
			Policy:          pol,
			Reads:           rng.New(cfg.Seed ^ degradedReadSalt),
			DiskMBps:        cfg.DiskBandwidthMBps,
			KFactor:         float64(cfg.Scheme.M),
			CrossRackFactor: cross,
			MTTFHours:       fleetMTTFHours(cfg.VintageScale, cl.NumDisks()),
		})
		st.scheduleDemandBurst(0)
	}
	if cfg.Maintenance.Enabled() {
		st.scheduleMaintenance()
	}
	if o := cfg.Obs; o != nil {
		if o.Registry != nil {
			st.sm = o.SimMetrics()
		}
		if o.Registry != nil || o.Spans != nil {
			var rm *obs.RecoveryMetrics
			if o.Registry != nil {
				rm = o.RecoveryMetrics()
			}
			st.engine.SetObservability(rm, o.Spans)
		}
	}
	if cfg.Straggler.Enabled {
		st.engine.SetStraggler(cfg.Straggler, st.onSlowEvicted)
	}
	if cfg.Hook != nil {
		st.engine.SetObserver(func(now sim.Time, kind trace.Kind, group, rep, diskID int) {
			cfg.Hook(trace.Event{
				Time: float64(now), Kind: kind,
				Group: group, Rep: rep, Disk: diskID,
			})
		})
		st.engine.SetDetailObserver(func(now sim.Time, kind trace.Kind, group, rep, diskID int, detail string) {
			cfg.Hook(trace.Event{
				Time: float64(now), Kind: kind,
				Group: group, Rep: rep, Disk: diskID, Detail: detail,
			})
		})
	}

	// Replacement bookkeeping: batches trigger on failures of the
	// original population fraction.
	st.originalDisks = cl.NumDisks()

	// Seed the failure process for the initial population.
	for id := 0; id < cl.NumDisks(); id++ {
		st.scheduleFailure(id)
	}

	// Fault injection rides on its own stream split off the run seed, so
	// the zero config leaves the base simulation untouched.
	if cfg.Faults.Enabled() {
		inj, ierr := faults.NewInjector(cfg.Faults, cfg.Seed^faultSeedSalt)
		if ierr != nil {
			return RunResult{}, ierr
		}
		st.inj = inj
		inj.SetDiscoveryHandler(st.onLatentDiscovered)
		if cfg.Obs != nil && cfg.Obs.Registry != nil {
			inj.SetMetrics(cfg.Obs.FaultMetrics())
		}
		st.engine.SetFaultModel(inj)
		if sp, ok := st.engine.(*recovery.SpareDisk); ok && cfg.Faults.SparePoolSize > 0 {
			eff := inj.Config()
			sp.ConfigureSparePool(eff.SparePoolSize, eff.SpareReplenishHours)
		}
		if cfg.Faults.LSERatePerDiskHour > 0 {
			for id := 0; id < cl.NumDisks(); id++ {
				st.scheduleLSE(id)
			}
			if cfg.Faults.ScrubIntervalHours > 0 {
				st.scheduleScrub()
			}
		}
		st.scheduleBurst()
		if st.net != nil && cfg.Faults.Network.Enabled() {
			st.scheduleSwitchFail()
			st.schedulePowerEvent()
			st.schedulePartition()
		}
		if cfg.Faults.FailSlow.Enabled() {
			if cfg.Faults.FailSlow.OnsetRatePerDiskHour > 0 {
				for id := 0; id < cl.NumDisks(); id++ {
					st.scheduleSlowOnset(id)
				}
			}
			st.scheduleSlowBurst()
		}
	}

	if cfg.Obs != nil && cfg.Obs.Series != nil {
		// Baseline sample at t=0, then one per cadence until the horizon.
		st.takeSample(0)
		st.scheduleSample()
	}

	eng.RunUntil(sim.Time(cfg.SimHours))

	if cfg.Obs != nil && cfg.Obs.Registry != nil {
		// Latch the horizon state into the registry gauges so an exported
		// registry is self-describing without the series.
		st.setGauges(st.snapshot(float64(cfg.SimHours)))
	}

	es := st.engine.Stats()
	res.DataLoss = cl.LostGroups > 0
	res.LostGroups = cl.LostGroups
	res.BlocksRebuilt = es.BlocksRebuilt
	res.Redirections = es.Redirections
	res.MeanWindowHours = es.Window.Mean()
	res.MaxWindowHours = es.Window.Max()
	res.SparesUsed = es.SparesUsed
	res.RecoveryDiskHours = sched.BusyHours
	res.RebuildRetries = es.Retries
	res.TransientFaults = es.TransientFaults
	res.Resourcings = es.Resourcings
	res.QueuedSpareJobs = es.SpareWaits
	res.SlowFlagged = es.SlowFlagged
	res.SlowEvicted = es.Evictions
	res.Hedges = es.Hedges
	res.HedgeWins = es.HedgeWins
	res.RebuildTimeouts = es.Timeouts
	res.WindowP50Hours = es.WindowP50.Value()
	res.WindowP99Hours = es.WindowP99.Value()
	res.ParkedTransfers = es.Parked
	res.CrossRackTransfers = es.CrossRackTransfers
	res.CrossRackBytes = es.CrossRackBytes
	res.DegradedReads = es.DegradedReads
	res.DegradedReadMeanMs = es.DegradedMs.Mean()
	res.DegradedReadMaxMs = es.DegradedMs.Max()
	res.DegradedReadP50Ms = es.DegradedP50.Value()
	res.DegradedReadP99Ms = es.DegradedP99.Value()
	res.HealthyReadP99Ms = es.HealthyP99.Value()
	res.ThrottleSteps = es.ThrottleSteps
	res.ThrottleMeanMBps = es.ThrottleMBps.Mean()
	res.FencedParks = es.FencedParks
	if cfg.Obs != nil && cfg.Obs.Registry != nil {
		st.sm.ThrottleMBps.Set(res.ThrottleMeanMBps)
		if st.demand != nil {
			st.sm.UserLoadShare.Set(st.demand.FleetShare(cfg.SimHours))
		}
	}
	if cfg.CollectUtilization {
		res.FinalUsedBytes = cl.UsedBytesAll()
	}
	return res, nil
}

// runState wires the event handlers of one run.
type runState struct {
	cfg    Config
	cl     *cluster.Cluster
	eng    *sim.Engine
	sched  *recovery.Scheduler
	random *rng.Source
	engine recovery.Engine
	res    *RunResult

	originalDisks    int
	failedSinceBatch int
	monitor          smart.Monitor
	// inj, when non-nil, is the fault injector of the run (cfg.Faults
	// enabled). Its randomness lives on a separate stream.
	inj *faults.Injector
	// sm is the simulator-level metrics bundle; never nil (a sink over a
	// private registry when no recorder is attached), so every counter
	// mirror below is branch-free. bw is the run's bandwidth model,
	// retained for the sampler's in-flight recovery-rate estimate.
	sm *obs.SimMetrics
	bw workload.BandwidthModel
	// net, when non-nil, is the run's network fabric (cfg.Topology
	// enabled); rack outages and heals route through it.
	net *topology.Network
	// demand, when non-nil, is the run's foreground-load model
	// (cfg.Demand enabled); its burst schedule drives the marker events
	// and the horizon gauge.
	demand *workload.Demand
	// Maintenance cursors: the round-robin drain position, and the
	// upgrade/growth window counts (the next upgrade rack and the vintage
	// compounding exponent).
	drainCursor  int
	upgradeCount int
	growthCount  int
	// plannedDrain marks drives sent through a maintenance drain window,
	// whose eventual retirement counts toward the replacement batch (a
	// planned drain is the front half of a drive swap). Nil until the
	// first window opens.
	plannedDrain map[int]bool
}

// scheduleSample arms the next read-only system-state snapshot. The
// sampler rides the regular event queue, so an enabled sampler shifts
// engine sequence numbers uniformly but never reorders, adds, or removes
// simulation work — RunResult stays byte-identical.
func (st *runState) scheduleSample() {
	at := st.eng.Now() + sim.Time(st.cfg.Obs.SampleEveryHours)
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "obs-sample", func(now sim.Time) {
		st.takeSample(float64(now))
		st.scheduleSample()
	})
}

// takeSample appends one snapshot to the configured series.
func (st *runState) takeSample(now float64) {
	st.cfg.Obs.Series.Add(st.snapshot(now))
}

// snapshot assembles one Sample from cluster, scheduler, and engine
// state. Strictly read-only.
func (st *runState) snapshot(now float64) obs.Sample {
	s := obs.Sample{
		T:               now,
		ActiveRebuilds:  st.engine.InFlight(),
		QueuedTransfers: st.sched.QueuedTransfers(),
		BusyDisks:       st.sched.BusyDisks(),
		LostGroups:      st.cl.LostGroups,
		SparePoolFree:   -1,
	}
	// Each running transfer occupies a source/target pair; the pair moves
	// data at the per-disk recovery allotment in force at the instant.
	s.RecoveryMBps = float64(s.BusyDisks/2) * st.bw.RecoveryMBps(now)
	// Only damaged groups carry materialized state; healthy groups need
	// no visit, so the scan scales with concurrent damage, not fleet
	// size. The counts are commutative sums, so record order is free.
	n := int32(st.cl.Cfg.Scheme.N)
	st.cl.ForEachDamaged(func(_ int32, avail int32, lost bool) {
		if lost || avail >= n {
			return
		}
		s.DegradedGroups++
		switch n - avail {
		case 1:
			s.Missing1++
		case 2:
			s.Missing2++
		default:
			s.Missing3Plus++
		}
	})
	for id := range st.cl.Disks {
		d := st.cl.Disks[id]
		if d.State != disk.Alive {
			continue
		}
		s.AliveDisks++
		if d.Slowdown > 1 {
			s.SlowDisks++
		}
		if st.cl.IsSuspect(id) {
			s.SuspectDisks++
		}
	}
	s.EvictedSlow = st.engine.Stats().Evictions
	if sp, ok := st.engine.(*recovery.SpareDisk); ok {
		s.SparePoolFree, s.SpareQueue = sp.SparePoolFree()
	}
	return s
}

// setGauges latches one snapshot's values into the registry gauges.
func (st *runState) setGauges(s obs.Sample) {
	st.sm.ActiveRebuilds.Set(float64(s.ActiveRebuilds))
	st.sm.QueuedRebuilds.Set(float64(s.QueuedTransfers))
	st.sm.BusyDisks.Set(float64(s.BusyDisks))
	st.sm.RecoveryMBps.Set(s.RecoveryMBps)
	st.sm.DegradedGroups.Set(float64(s.DegradedGroups))
	st.sm.LostGroups.Set(float64(s.LostGroups))
	st.sm.SparePoolFree.Set(float64(s.SparePoolFree))
	st.sm.AliveDisks.Set(float64(s.AliveDisks))
	st.sm.SlowDisks.Set(float64(s.SlowDisks))
	st.sm.SuspectDisks.Set(float64(s.SuspectDisks))
}

// emit forwards a trace event to the configured hook, if any.
func (st *runState) emit(e trace.Event) {
	if st.cfg.Hook != nil {
		st.cfg.Hook(e)
	}
}

// scheduleFailure samples the drive's death and queues the event. Deaths
// beyond the horizon are not scheduled (RunUntil would skip them anyway;
// this keeps the queue small). With a S.M.A.R.T. monitor configured, a
// predicted failure also queues a warning that starts a proactive drain.
func (st *runState) scheduleFailure(id int) {
	d := st.cl.Disks[id]
	at := d.SampleFailureTime(st.random, float64(st.eng.Now()))
	if at > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(sim.Time(at), "disk-fail", func(now sim.Time) {
		st.onDiskFailure(now, id)
	})
	if warnAt, ok := st.monitor.Predict(st.random, float64(st.eng.Now()), at); ok {
		st.res.PredictedFailures++
		st.sm.Predicted.Inc()
		st.eng.Schedule(sim.Time(warnAt), "smart-warning", func(now sim.Time) {
			st.onSmartWarning(now, id)
		})
	}
}

// onSmartWarning marks the drive suspect and begins draining its blocks
// to healthy drives, one block at a time at the recovery bandwidth
// (a single drive sources the whole drain, so it serializes).
func (st *runState) onSmartWarning(now sim.Time, id int) {
	if st.cl.Disks[id].State != disk.Alive {
		return // died before the warning fired (lead clipped to now)
	}
	st.cl.MarkSuspect(id)
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindSmartWarn, Disk: id})
	st.drainStep(now, id)
}

// drainStep moves the next block off a suspect drive, then re-arms.
func (st *runState) drainStep(now sim.Time, id int) {
	if st.cl.Disks[id].State != disk.Alive {
		return // the drive died mid-drain; normal recovery takes over
	}
	blocks := st.cl.BlocksOn(id)
	if len(blocks) == 0 {
		// Fully drained: retire the drive before it fails in service.
		st.cl.RetireDisk(id)
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindDrained, Disk: id})
		// A maintenance-planned drain is the front half of a drive swap:
		// the retirement counts toward the replacement batch exactly like
		// a failure, or repeated drain windows would starve the fleet of
		// capacity. S.M.A.R.T. drains keep the seed semantics (only real
		// failures count) — they retire moribund drives, not healthy ones,
		// so they cannot shrink the fleet faster than failures would.
		if st.plannedDrain[id] {
			delete(st.plannedDrain, id)
			st.maybeReplace(now)
		}
		return
	}
	ref := blocks[0]
	group := int(ref.Group)
	exclude := st.cl.BuddyExcludes(group)
	target, _, err := st.cl.Hasher().RecoveryTarget(
		st.cl, uint64(group), int(ref.Rep), st.cl.BlockBytes, exclude, 0)
	if err != nil {
		return // nowhere to drain to; leave the blocks for recovery
	}
	transfer := sim.Time(disk.RebuildHours(st.cl.BlockBytes, st.cfg.RecoveryMBps))
	st.eng.Schedule(now+transfer, "drain-block", func(done sim.Time) {
		if st.cl.Disks[id].State != disk.Alive {
			return
		}
		// The block may have been lost meanwhile via a buddy failure
		// marking this group dead; MoveBlock checks residency itself.
		if st.cl.GroupDiskOf(group, int(ref.Rep)) == int32(id) && st.cl.MoveBlock(ref, target) {
			st.res.DrainedBlocks++
			st.sm.DrainedBlocks.Inc()
		}
		st.drainStep(done, id)
	})
}

// onDiskFailure plays one drive death: cluster bookkeeping, in-flight
// rebuild fix-ups, delayed detection, and the replacement policy.
func (st *runState) onDiskFailure(now sim.Time, id int) {
	st.failDiskAt(now, id, now)
}

// failDiskAt is onDiskFailure with an explicit underlying failure time:
// a false-dead declaration backdates failedAt to the instant the rack
// went dark (that is when the data became unavailable), while the
// handlers and detection delay run from now.
func (st *runState) failDiskAt(now sim.Time, id int, failedAt sim.Time) {
	if st.cl.Disks[id].State != disk.Alive {
		return // already dead or retired (defensive)
	}
	lost, newlyDead := st.cl.FailDisk(id, float64(failedAt))
	st.res.DiskFailures++
	st.sm.DiskFailures.Inc()
	if st.inj != nil {
		// Undiscovered latent errors on the dead drive are moot: the
		// whole-disk loss supersedes them.
		st.inj.DropDisk(id)
	}
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindDiskFail, Disk: id,
		Detail: fmt.Sprintf("blocks=%d", len(lost))})
	if newlyDead > 0 {
		st.sm.DataLossGroups.Add(uint64(newlyDead))
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindDataLoss, Disk: id,
			Detail: fmt.Sprintf("groups=%d", newlyDead)})
	}
	st.engine.HandleFailure(now, id)
	blocks := lost
	st.eng.Schedule(now+sim.Time(st.cfg.DetectionLatencyHours), "detect", func(dnow sim.Time) {
		st.emit(trace.Event{Time: float64(dnow), Kind: trace.KindDetect, Disk: id})
		st.engine.HandleDetection(dnow, id, failedAt, blocks)
	})
	st.maybeReplace(now)
}

// armLSE starts the latent-error arrival process on a (new) drive when
// injection is configured; a no-op otherwise.
func (st *runState) armLSE(id int) {
	if st.inj != nil && st.cfg.Faults.LSERatePerDiskHour > 0 {
		st.scheduleLSE(id)
	}
}

// armFailSlow starts the fail-slow onset process on a (new) drive when
// gray-failure injection is configured; a no-op otherwise.
func (st *runState) armFailSlow(id int) {
	if st.inj != nil && st.cfg.Faults.FailSlow.OnsetRatePerDiskHour > 0 {
		st.scheduleSlowOnset(id)
	}
}

// scheduleSlowOnset samples the drive's next fail-slow onset and queues
// it; on firing, the drive degrades and the process re-arms while the
// drive lives (a degraded drive can degrade again after recovering).
func (st *runState) scheduleSlowOnset(id int) {
	at := st.eng.Now() + sim.Time(st.inj.NextSlowOnsetGap())
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "failslow-onset", func(now sim.Time) {
		st.applySlowOnset(now, id)
		st.scheduleSlowOnset(id)
	})
}

// applySlowOnset degrades one drive: healthy → ×k (slow) or ×k²
// (crawling), with an optional spontaneous recovery scheduled from the
// injector's recovery draw. Dead, retired, or already-degraded drives are
// no-ops — an episode must end before the next one can start.
func (st *runState) applySlowOnset(now sim.Time, id int) {
	d := st.cl.Disks[id]
	if d.State != disk.Alive || d.Slowdown > 1 {
		return
	}
	f := st.inj.DrawSlowSeverity()
	d.Slowdown = f
	st.res.FailSlowOnsets++
	st.sm.FailSlowOnsets.Inc()
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindFailSlowOnset, Disk: id,
		Detail: fmt.Sprintf("factor=%g", f)})
	if hours, ok := st.inj.DrawSlowRecovery(); ok {
		st.eng.Schedule(now+sim.Time(hours), "failslow-recover", func(rnow sim.Time) {
			if d.State != disk.Alive || d.Slowdown != f {
				return // died first, or this episode was already cleared
			}
			d.Slowdown = 0
			st.res.FailSlowRecoveries++
			st.sm.FailSlowRecovers.Inc()
			st.emit(trace.Event{Time: float64(rnow), Kind: trace.KindFailSlowRecover, Disk: id})
		})
	}
}

// scheduleSlowBurst samples the next correlated slow-burst (a batch
// gray-failure event: firmware rollout, thermal excursion, a bad rack)
// and queues it; on firing, the drawn victims degrade spread across the
// burst window, and the process re-arms.
func (st *runState) scheduleSlowBurst() {
	at := st.eng.Now() + sim.Time(st.inj.NextSlowBurstGap())
	if float64(at) > st.cfg.SimHours {
		return // also covers the disabled (+Inf) case
	}
	st.eng.Schedule(at, "slow-burst", func(now sim.Time) {
		k := st.inj.SlowBurstSize()
		alive := make([]int, 0, st.cl.AliveDisks())
		for id := range st.cl.Disks {
			if st.cl.Disks[id].State == disk.Alive {
				alive = append(alive, id)
			}
		}
		if k > len(alive) {
			k = len(alive)
		}
		hits := 0
		for _, idx := range st.inj.SampleSlowVictims(len(alive), k) {
			victim := alive[idx]
			st.eng.Schedule(now+sim.Time(st.inj.SlowBurstDelay()), "slow-burst-hit", func(bnow sim.Time) {
				st.applySlowOnset(bnow, victim)
			})
			hits++
		}
		st.res.SlowBursts++
		st.sm.SlowBursts.Inc()
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindSlowBurst,
			Detail: fmt.Sprintf("hits=%d", hits)})
		st.scheduleSlowBurst()
	})
}

// onSlowEvicted fires when the straggler detector condemns a drive: the
// drive is marked suspect (excluded from placement and recovery-target
// choice) and its blocks drain to healthy peers — the same controlled
// exit a S.M.A.R.T. warning takes, so a condemned straggler leaves
// service without a rebuild storm.
func (st *runState) onSlowEvicted(now sim.Time, id int) {
	if st.cl.Disks[id].State != disk.Alive || st.cl.IsSuspect(id) {
		return
	}
	// The engine's observer already traced the "evict-slow" event; this
	// handler only performs the suspect/drain exit.
	st.cl.MarkSuspect(id)
	st.drainStep(now, id)
}

// scheduleLSE samples the drive's next latent-sector-error arrival and
// queues it; on firing, one resident block (chosen uniformly) silently
// becomes unreadable, and the process re-arms while the drive lives.
func (st *runState) scheduleLSE(id int) {
	at := st.eng.Now() + sim.Time(st.inj.NextLSEGap())
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "lse", func(now sim.Time) {
		if st.cl.Disks[id].State != disk.Alive {
			return // died (or was retired) first; the arrival is moot
		}
		blocks := st.cl.BlocksOn(id)
		if len(blocks) > 0 {
			ref := blocks[st.inj.PickIndex(len(blocks))]
			if st.inj.MarkLatent(id, int(ref.Group), int(ref.Rep)) {
				st.res.LSEInjected++
				st.sm.LSEInjected.Inc()
				st.emit(trace.Event{Time: float64(now), Kind: trace.KindLSE,
					Disk: id, Group: int(ref.Group), Rep: int(ref.Rep)})
			}
		}
		st.scheduleLSE(id)
	})
}

// onLatentDiscovered fires when a rebuild read hits a latent error on
// (diskID, group, rep): the damaged replica is unlinked (an erasure) and
// its repair is queued through the recovery engine.
func (st *runState) onLatentDiscovered(now sim.Time, diskID, group, rep int) {
	if st.cl.GroupDiskOf(group, rep) != int32(diskID) {
		return // the block moved (drain/rebalance) since the error arrived
	}
	_, newlyDead := st.cl.CorruptBlock(cluster.BlockRef{Group: int32(group), Rep: int32(rep)})
	st.res.LSEDetected++
	st.sm.LSEDetected.Inc()
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindLSEDetect,
		Disk: diskID, Group: group, Rep: rep})
	if newlyDead {
		st.sm.DataLossGroups.Inc()
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindDataLoss, Disk: diskID,
			Detail: "groups=1"})
		return // beyond repair; in-flight rebuilds of the group will drain
	}
	st.engine.HandleBlockLoss(now, now, diskID, group, rep)
}

// scheduleScrub runs the periodic scrubber: every interval it discovers
// all accumulated latent errors and queues each damaged replica for
// proactive repair.
func (st *runState) scheduleScrub() {
	at := st.eng.Now() + sim.Time(st.cfg.Faults.ScrubIntervalHours)
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "scrub", func(now sim.Time) {
		found := 0
		for _, e := range st.inj.TakeLatent() {
			if st.cl.GroupDiskOf(e.Group, e.Rep) != int32(e.Disk) {
				continue // block moved since the error arrived; stale
			}
			found++
			st.res.ScrubFound++
			st.sm.ScrubFound.Inc()
			_, newlyDead := st.cl.CorruptBlock(cluster.BlockRef{Group: int32(e.Group), Rep: int32(e.Rep)})
			st.emit(trace.Event{Time: float64(now), Kind: trace.KindScrubRepair,
				Disk: e.Disk, Group: e.Group, Rep: e.Rep})
			if newlyDead {
				st.sm.DataLossGroups.Inc()
				st.emit(trace.Event{Time: float64(now), Kind: trace.KindDataLoss, Disk: e.Disk,
					Detail: "groups=1"})
				continue
			}
			st.engine.HandleBlockLoss(now, now, e.Disk, e.Group, e.Rep)
		}
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindScrub,
			Detail: fmt.Sprintf("found=%d", found)})
		st.scheduleScrub()
	})
}

// scheduleBurst samples the next correlated-failure burst and queues it;
// on firing, the drawn victims die spread across the burst window, and
// the process re-arms. Victims that die naturally first are no-ops
// (onDiskFailure is defensive).
func (st *runState) scheduleBurst() {
	at := st.eng.Now() + sim.Time(st.inj.NextBurstGap())
	if float64(at) > st.cfg.SimHours {
		return // also covers the disabled (+Inf) case
	}
	st.eng.Schedule(at, "burst", func(now sim.Time) {
		k := st.inj.BurstSize()
		alive := make([]int, 0, st.cl.AliveDisks())
		for id := range st.cl.Disks {
			if st.cl.Disks[id].State == disk.Alive {
				alive = append(alive, id)
			}
		}
		if k > len(alive) {
			k = len(alive)
		}
		kills := 0
		for _, idx := range st.inj.SampleVictims(len(alive), k) {
			victim := alive[idx]
			st.eng.Schedule(now+sim.Time(st.inj.BurstDelay()), "burst-kill", func(bnow sim.Time) {
				st.onDiskFailure(bnow, victim)
			})
			kills++
		}
		st.res.Bursts++
		st.res.BurstKills += kills
		st.sm.Bursts.Inc()
		st.sm.BurstKills.Add(uint64(kills))
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindBurst,
			Detail: fmt.Sprintf("kills=%d", kills)})
		st.scheduleBurst()
	})
}

// scheduleSwitchFail samples the next ToR-switch failure and queues it;
// on firing, the struck rack goes dark with no scheduled heal (a dead
// switch needs a human; only the false-dead timer ends the outage), and
// the process re-arms.
func (st *runState) scheduleSwitchFail() {
	at := st.eng.Now() + sim.Time(st.inj.NextSwitchFailGap())
	if float64(at) > st.cfg.SimHours {
		return // also covers the disabled (+Inf) case
	}
	st.eng.Schedule(at, "switch-fail", func(now sim.Time) {
		rack := st.inj.PickRack(st.net.Racks())
		st.res.SwitchFails++
		st.sm.SwitchFails.Inc()
		st.emit(trace.Event{Time: float64(now), Kind: trace.KindSwitchFail, Rack: rack})
		st.rackDown(now, rack, "switch-fail", 0)
		st.scheduleSwitchFail()
	})
}

// schedulePowerEvent samples the next rack power event and queues it; on
// firing, the struck rack goes dark until power is restored (drives
// return with their data), and the process re-arms.
func (st *runState) schedulePowerEvent() {
	at := st.eng.Now() + sim.Time(st.inj.NextPowerEventGap())
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "rack-power", func(now sim.Time) {
		rack := st.inj.PickRack(st.net.Racks())
		restore := st.inj.DrawPowerRestore()
		st.res.RackPowerEvents++
		st.sm.RackPowerEvents.Inc()
		st.rackDown(now, rack, "power", restore)
		st.schedulePowerEvent()
	})
}

// schedulePartition samples the next transient network partition and
// queues it; on firing, the struck rack is unreachable (drives healthy,
// data intact) until the partition heals, and the process re-arms.
func (st *runState) schedulePartition() {
	at := st.eng.Now() + sim.Time(st.inj.NextPartitionGap())
	if float64(at) > st.cfg.SimHours {
		return
	}
	st.eng.Schedule(at, "partition", func(now sim.Time) {
		rack := st.inj.PickRack(st.net.Racks())
		heal := st.inj.DrawPartitionHeal()
		st.res.Partitions++
		st.sm.Partitions.Inc()
		st.rackDown(now, rack, "partition", heal)
		st.schedulePartition()
	})
}

// rackDown takes a rack off the fabric: the engine parks or re-sources
// every rebuild touching it, a heal fires healAfter hours later
// (healAfter <= 0 means no scheduled heal), and the false-dead timer —
// when configured — starts counting toward declaring the rack lost.
// A rack already dark merges the new event into the ongoing outage:
// reachability state and timers are left untouched (the random draws
// were already consumed by the caller, so the stream stays aligned).
func (st *runState) rackDown(now sim.Time, rack int, cause string, healAfter float64) {
	if !st.net.SetRackUnreachable(rack, float64(now)) {
		return // already dark; events merge into the ongoing outage
	}
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindRackUnreachable,
		Rack: rack, Detail: cause})
	for id := rack; id < st.cl.NumDisks(); id += st.net.Racks() {
		st.engine.HandleUnreachable(now, id)
	}
	// Epoch-guarded timers: if the rack heals and darkens again, the new
	// outage carries a new epoch and these become stale no-ops.
	epoch := st.net.Epoch(rack)
	if healAfter > 0 {
		st.eng.Schedule(now+sim.Time(healAfter), "rack-heal", func(hnow sim.Time) {
			if st.net.RackUnreachable(rack) && st.net.Epoch(rack) == epoch {
				st.rackHeal(hnow, rack)
			}
		})
	}
	if fd := st.net.FalseDeadHours(); fd > 0 {
		st.eng.Schedule(now+sim.Time(fd), "false-dead", func(fnow sim.Time) {
			if st.net.RackUnreachable(rack) && st.net.Epoch(rack) == epoch {
				st.declareRackDead(fnow, rack)
			}
		})
	}
}

// rackHeal returns a rack to the fabric and resumes every rebuild
// parked against its disks.
func (st *runState) rackHeal(now sim.Time, rack int) {
	st.net.SetRackReachable(rack)
	st.res.PartitionHeals++
	st.sm.PartitionHeals.Inc()
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindPartitionHeal, Rack: rack})
	for id := rack; id < st.cl.NumDisks(); id += st.net.Racks() {
		st.engine.HandleReachable(now, id)
	}
}

// declareRackDead is the false-dead timer firing: the rack has been
// dark past the configured patience, so the control plane writes its
// drives off and re-replicates — trading a rebuild storm (and, if the
// outage was transient, wasted work) for a bounded window of
// vulnerability. The underlying failure time is backdated to the
// instant the rack went dark: that is when the data became
// unavailable. The rack stays unreachable while its drives fail (so
// re-sourcing flees it), then returns to the fabric empty.
func (st *runState) declareRackDead(now sim.Time, rack int) {
	since := sim.Time(st.net.UnreachableSince(rack))
	st.res.FalseDeadRacks++
	st.sm.FalseDeadRacks.Inc()
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindFalseDead, Rack: rack})
	killed := 0
	for id := rack; id < st.cl.NumDisks(); id += st.net.Racks() {
		if st.cl.Disks[id].State == disk.Alive {
			st.failDiskAt(now, id, since)
			killed++
		}
	}
	st.res.FalseDeadDisks += killed
	st.sm.FalseDeadDisks.Add(uint64(killed))
	st.net.SetRackReachable(rack)
	for id := rack; id < st.cl.NumDisks(); id += st.net.Racks() {
		st.engine.HandleReachable(now, id)
	}
}

// maybeReplace applies the Figure 7 batch-replacement policy: once the
// configured fraction of the original population has failed since the
// last batch, inject that many fresh drives and rebalance onto them.
func (st *runState) maybeReplace(now sim.Time) {
	if st.cfg.ReplaceTrigger <= 0 {
		return
	}
	st.failedSinceBatch++
	threshold := int(st.cfg.ReplaceTrigger * float64(st.originalDisks))
	if threshold < 1 {
		threshold = 1
	}
	if st.failedSinceBatch < threshold {
		return
	}
	count := st.failedSinceBatch
	st.failedSinceBatch = 0
	ids := st.cl.AddDisks(count, float64(now))
	st.sched.Grow(st.cl.NumDisks())
	for _, nid := range ids {
		st.scheduleFailure(nid)
		st.armLSE(nid)
		st.armFailSlow(nid)
	}
	st.res.BatchesAdded++
	st.res.DisksAdded += count
	st.sm.BatchesAdded.Inc()
	st.sm.DisksAdded.Add(uint64(count))
	st.res.MigratedBytes += replace.RebalanceOnto(st.cl, ids)
	st.emit(trace.Event{Time: float64(now), Kind: trace.KindBatchAdded,
		Detail: fmt.Sprintf("disks=%d", count)})
}
