package core

import (
	"fmt"
	"math"
	"testing"
)

func TestResultAddAndFinish(t *testing.T) {
	var r Result
	runs := []RunResult{
		{DataLoss: true, LostGroups: 3, DiskFailures: 10, BlocksRebuilt: 100,
			MeanWindowHours: 2, Redirections: 1, Disks: 50},
		{DataLoss: false, LostGroups: 0, DiskFailures: 8, BlocksRebuilt: 80,
			MeanWindowHours: 1, Disks: 50},
		{DataLoss: false, LostGroups: 0, DiskFailures: 12, BlocksRebuilt: 0,
			Disks: 50},
	}
	for i := range runs {
		r.add(&runs[i])
	}
	r.finish()
	if r.Runs != 3 {
		t.Fatalf("Runs = %d", r.Runs)
	}
	if math.Abs(r.PLoss-1.0/3) > 1e-12 {
		t.Fatalf("PLoss = %v", r.PLoss)
	}
	if r.PLossLo >= r.PLoss || r.PLossHi <= r.PLoss {
		t.Fatalf("CI [%v, %v] excludes estimate %v", r.PLossLo, r.PLossHi, r.PLoss)
	}
	if math.Abs(r.RedirectionRate-1.0/3) > 1e-12 {
		t.Fatalf("RedirectionRate = %v", r.RedirectionRate)
	}
	if r.DiskFailures.Mean() != 10 {
		t.Fatalf("DiskFailures mean = %v", r.DiskFailures.Mean())
	}
	// Window stats only include runs that rebuilt something.
	if r.WindowHours.N() != 2 || math.Abs(r.WindowHours.Mean()-1.5) > 1e-12 {
		t.Fatalf("WindowHours = %v over %d runs", r.WindowHours.Mean(), r.WindowHours.N())
	}
	if r.Disks != 50 {
		t.Fatalf("Disks = %d", r.Disks)
	}
}

func TestFinishEmpty(t *testing.T) {
	var r Result
	r.finish()
	if r.PLoss != 0 || r.RedirectionRate != 0 {
		t.Fatal("empty result not clean")
	}
}

func TestMonteCarloWorkerClamp(t *testing.T) {
	cfg := smallConfig()
	// More workers than runs must not deadlock or panic.
	res, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 2, Workers: 16, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 {
		t.Fatalf("Runs = %d", res.Runs)
	}
}

func TestRecoveryDiskHoursPositive(t *testing.T) {
	simr, err := NewSimulator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(21)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRebuilt > 0 && res.RecoveryDiskHours <= 0 {
		t.Fatal("rebuilds happened but no recovery disk-hours recorded")
	}
	// Two disks per transfer: disk-hours = 2 × transfers × duration.
	perBlock := float64(res.BlocksRebuilt) * 2
	if res.RecoveryDiskHours > perBlock { // duration < 1 h per block here
		t.Fatalf("disk-hours %v implausibly large for %d rebuilds",
			res.RecoveryDiskHours, res.BlocksRebuilt)
	}
}

func TestVintageScaleIncreasesFailures(t *testing.T) {
	base := smallConfig()
	fast := base
	fast.VintageScale = 3
	const runs = 8
	a, err := MonteCarlo(base, MonteCarloOptions{Runs: runs, BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(fast, MonteCarloOptions{Runs: runs, BaseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.DiskFailures.Mean() <= a.DiskFailures.Mean() {
		t.Fatalf("tripled vintage produced %v failures vs %v",
			b.DiskFailures.Mean(), a.DiskFailures.Mean())
	}
}

func TestLatencyIncreasesWindow(t *testing.T) {
	base := smallConfig()
	slow := base
	slow.DetectionLatencyHours = 2
	a, err := MonteCarlo(base, MonteCarloOptions{Runs: 5, BaseSeed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(slow, MonteCarloOptions{Runs: 5, BaseSeed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if b.WindowHours.Mean() < a.WindowHours.Mean()+1.5 {
		t.Fatalf("2h latency lifted window only from %v to %v",
			a.WindowHours.Mean(), b.WindowHours.Mean())
	}
}

// TestMonteCarloWorkersByteIdentical pins the cross-worker determinism
// contract on the lazy-group path: a hostile campaign (tripled failure
// rates plus the full fault storm, so group records churn through the
// materialize/recycle pool constantly) must aggregate to a byte-identical
// Result whether runs execute on one worker or race across four. The
// ordered ring fold in MonteCarlo makes worker count invisible; this test
// (run under -race in CI) is the gate that keeps it so.
func TestMonteCarloWorkersByteIdentical(t *testing.T) {
	cfg := stormConfig()
	cfg.VintageScale = 3
	const runs = 6
	serial, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 17, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", serial) != fmt.Sprintf("%+v", parallel) {
		t.Fatalf("worker count changed the aggregate:\n1 worker:  %+v\n4 workers: %+v",
			serial, parallel)
	}
}
