package core

import (
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/redundancy"
)

// smallConfig is a laptop-sized system that still exhibits the paper's
// dynamics: ~50 disks, 20 TB of user data, two-way mirroring.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalDataBytes = 10 * disk.TB
	cfg.GroupBytes = 10 * disk.GB
	return cfg
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TotalDataBytes != 2*disk.PB {
		t.Error("base total data should be 2 PB")
	}
	if cfg.GroupBytes != 10*disk.GB {
		t.Error("base group size should be 10 GB")
	}
	if cfg.Scheme != (redundancy.Scheme{M: 1, N: 2}) {
		t.Error("base scheme should be two-way mirroring")
	}
	if cfg.DetectionLatencyHours*3600 != 30 {
		t.Error("base detection latency should be 30 s")
	}
	if cfg.RecoveryMBps != 16 {
		t.Error("base recovery bandwidth should be 16 MB/s")
	}
	if cfg.SimHours != 6*8760 {
		t.Error("base horizon should be 6 years")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.TotalDataBytes = 0 },
		func(c *Config) { c.GroupBytes = 0 },
		func(c *Config) { c.GroupBytes = c.TotalDataBytes * 2 },
		func(c *Config) { c.Scheme = redundancy.Scheme{M: 0, N: 2} },
		func(c *Config) { c.DiskCapacityBytes = 0 },
		func(c *Config) { c.DiskBandwidthMBps = 0 },
		func(c *Config) { c.RecoveryMBps = 0 },
		func(c *Config) { c.RecoveryMBps = 1000 },
		func(c *Config) { c.DetectionLatencyHours = -1 },
		func(c *Config) { c.InitialUtilization = 0 },
		func(c *Config) { c.InitialUtilization = 1.2 },
		func(c *Config) { c.SimHours = 0 },
		func(c *Config) { c.VintageScale = 0 },
		func(c *Config) { c.ReplaceTrigger = -0.1 },
		func(c *Config) { c.ReplaceTrigger = 1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNumGroups(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.NumGroups(); got != 209715 {
		t.Fatalf("2 PB / 10 GB = %d groups, want 209715", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	simr, err := NewSimulator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := simr.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simr.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if a.DataLoss != b.DataLoss || a.DiskFailures != b.DiskFailures ||
		a.BlocksRebuilt != b.BlocksRebuilt || a.LostGroups != b.LostGroups {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	simr, err := NewSimulator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := simr.Run(1)
	diff := false
	for seed := uint64(2); seed < 6; seed++ {
		b, _ := simr.Run(seed)
		if b.DiskFailures != a.DiskFailures {
			diff = true
		}
	}
	if !diff {
		t.Fatal("five different seeds produced identical failure counts")
	}
}

func TestRunBasicShape(t *testing.T) {
	simr, err := NewSimulator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disks <= 0 {
		t.Fatal("no disks")
	}
	// Over six years roughly 10% of drives fail.
	if res.DiskFailures == 0 {
		t.Fatal("no failures in six years across ~50 disks is implausible")
	}
	if res.BlocksRebuilt == 0 {
		t.Fatal("failures occurred but nothing was rebuilt")
	}
	if res.MeanWindowHours < 0 || res.MaxWindowHours < res.MeanWindowHours {
		t.Fatalf("window stats inconsistent: mean %v max %v",
			res.MeanWindowHours, res.MaxWindowHours)
	}
}

func TestCollectUtilization(t *testing.T) {
	cfg := smallConfig()
	cfg.CollectUtilization = true
	simr, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InitialUsedBytes) == 0 || len(res.FinalUsedBytes) < len(res.InitialUsedBytes) {
		t.Fatal("utilization snapshots missing")
	}
	var initTotal int64
	for _, b := range res.InitialUsedBytes {
		initTotal += b
	}
	wantRaw := cfg.Scheme.GroupRawBytes(cfg.GroupBytes) * int64(cfg.NumGroups())
	if initTotal != wantRaw {
		t.Fatalf("initial bytes %d, want raw data %d", initTotal, wantRaw)
	}
}

func TestSpareEngineRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.UseFARM = false
	simr, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(11)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskFailures > 0 && res.SparesUsed == 0 {
		t.Fatal("failures without spares under the traditional engine")
	}
}

func TestReplacementBatches(t *testing.T) {
	cfg := smallConfig()
	cfg.ReplaceTrigger = 0.02 // small trigger so batches certainly fire
	simr, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(13)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskFailures > 0 && res.BatchesAdded == 0 {
		t.Fatal("no replacement batches despite failures and a 2% trigger")
	}
	if res.BatchesAdded > 0 && res.DisksAdded == 0 {
		t.Fatal("batches added no disks")
	}
	if res.BatchesAdded > 0 && res.MigratedBytes == 0 {
		t.Fatal("batches fired but nothing migrated")
	}
}

func TestMonteCarloAggregates(t *testing.T) {
	cfg := smallConfig()
	res, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 10, BaseSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 10 {
		t.Fatalf("runs = %d", res.Runs)
	}
	if res.PLoss < 0 || res.PLoss > 1 || res.PLossLo > res.PLoss || res.PLossHi < res.PLoss {
		t.Fatalf("loss estimate inconsistent: %v [%v, %v]", res.PLoss, res.PLossLo, res.PLossHi)
	}
	if res.DiskFailures.N() != 10 {
		t.Fatal("per-run stats incomplete")
	}
}

func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallConfig()
	a, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 6, BaseSeed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 6, BaseSeed: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.PLoss != b.PLoss || a.DiskFailures.Mean() != b.DiskFailures.Mean() {
		t.Fatal("results depend on worker count")
	}
}

// TestMonteCarloByteIdenticalAcrossWorkers is the reproducibility gate
// for the streaming aggregation: the *entire* Result — every Welford
// accumulator bit included — must be identical for a fixed
// (cfg, BaseSeed, Runs) no matter how many workers computed it. The
// ordered fold guarantees this; a per-worker partial merge would not
// (Welford updates are not associative in floating point).
func TestMonteCarloByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := smallConfig()
	const runs = 16
	ref, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Result differs between Workers=1 and Workers=%d:\n%+v\nvs\n%+v",
				workers, ref, got)
		}
	}
	// And the whole thing is reproducible run-to-run.
	again, err := MonteCarlo(cfg, MonteCarloOptions{Runs: runs, BaseSeed: 42, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, again) {
		t.Fatal("repeated campaign not reproducible")
	}
}

func TestMonteCarloProgress(t *testing.T) {
	cfg := smallConfig()
	var last int
	_, err := MonteCarlo(cfg, MonteCarloOptions{
		Runs: 4, BaseSeed: 9,
		Progress: func(done, total int) {
			if total != 4 || done < 1 || done > 4 {
				t.Errorf("progress out of range: %d/%d", done, total)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 4 {
		t.Fatalf("final progress %d, want 4", last)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(DefaultConfig(), MonteCarloOptions{Runs: 0}); err == nil {
		t.Fatal("zero runs accepted")
	}
	bad := DefaultConfig()
	bad.GroupBytes = 0
	if _, err := MonteCarlo(bad, MonteCarloOptions{Runs: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFARMBeatsSpareOnLossProbability(t *testing.T) {
	// The paper's headline (Figure 3): with FARM the probability of data
	// loss drops substantially versus the traditional scheme. Use a
	// deliberately stressed small system (long latency, modest bandwidth)
	// so both probabilities are measurable with few runs.
	cfg := smallConfig()
	cfg.GroupBytes = 50 * disk.GB
	cfg.DetectionLatencyHours = 1
	const runs = 30
	farm := cfg
	farm.UseFARM = true
	spare := cfg
	spare.UseFARM = false
	fr, err := MonteCarlo(farm, MonteCarloOptions{Runs: runs, BaseSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := MonteCarlo(spare, MonteCarloOptions{Runs: runs, BaseSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if fr.PLoss > sr.PLoss {
		t.Fatalf("FARM loss %v > spare loss %v", fr.PLoss, sr.PLoss)
	}
	// Windows of vulnerability must be dramatically shorter under FARM.
	if fr.WindowHours.Mean() >= sr.WindowHours.Mean() {
		t.Fatalf("FARM window %v >= spare window %v",
			fr.WindowHours.Mean(), sr.WindowHours.Mean())
	}
}
