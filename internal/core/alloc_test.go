package core

import (
	"testing"

	"repro/internal/disk"
)

// TestSingleRunAllocCeiling is the allocation-regression gate for the full
// single-run path — kernel, cluster, placement, recovery, replacement and
// metrics together — at the benchmark configuration BENCH_*.json records
// (50 TB user data, 10 GB groups, FARM engine). The ceiling was the
// BENCH_1 baseline (8857 allocs/op) through PR 9; PR 6's arena event
// queue and lazy group materialization plus PR 10's discard metric sinks
// hold the measured figure near 7390, so the gate is tightened to the
// BENCH_6 level (7430) — any change that drifts allocations back above
// the claw-back fails `go test`, not just a benchmark eyeball.
func TestSingleRunAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const ceiling = 7430 // BENCH_6 SingleRunFARM allocs/op (PR 6 claw-back, locked in)
	cfg := DefaultConfig()
	cfg.TotalDataBytes = 50 * disk.TB
	cfg.GroupBytes = 10 * disk.GB
	cfg.UseFARM = true
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	run := func() {
		if _, err := s.Run(seed); err != nil {
			t.Fatal(err)
		}
		seed++
	}
	// The BENCH_* figures are steady-state averages over hundreds of
	// runs; warm the simulator past its allocation high-water mark
	// (lazy group maps, event arena chunks) before measuring, or the
	// first runs' one-time growth lands in the average.
	for i := 0; i < 30; i++ {
		run()
	}
	if n := testing.AllocsPerRun(20, run); n > ceiling {
		t.Fatalf("full single run allocates %.0f times, ceiling %d (BENCH_6)", n, ceiling)
	}
}
