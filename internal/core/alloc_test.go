package core

import (
	"testing"

	"repro/internal/disk"
)

// TestSingleRunAllocCeiling is the allocation-regression gate for the full
// single-run path — kernel, cluster, placement, recovery, replacement and
// metrics together — at the benchmark configuration BENCH_*.json records
// (50 TB user data, 10 GB groups, FARM engine). The ceiling is the
// BENCH_1 baseline (8857 allocs/op); the arena event queue and lazy group
// materialization hold the measured figure well under it, so any change
// that drifts allocations back above the seed fails `go test`, not just a
// benchmark eyeball.
func TestSingleRunAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const ceiling = 8857 // BENCH_1 SingleRunFARM allocs/op
	cfg := DefaultConfig()
	cfg.TotalDataBytes = 50 * disk.TB
	cfg.GroupBytes = 10 * disk.GB
	cfg.UseFARM = true
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	run := func() {
		if _, err := s.Run(seed); err != nil {
			t.Fatal(err)
		}
		seed++
	}
	if n := testing.AllocsPerRun(20, run); n > ceiling {
		t.Fatalf("full single run allocates %.0f times, ceiling %d (BENCH_1)", n, ceiling)
	}
}
