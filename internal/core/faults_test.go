package core

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/trace"
)

// stormConfig layers every fault process on the laptop-sized system:
// LSEs frequent enough to land hundreds of errors, a monthly scrubber,
// quarterly bursts, a high transient-fault rate, and (for the spare
// engine) a small finite pool. The rates are far beyond any realistic
// fleet on purpose — the acceptance criterion is graceful degradation.
func stormConfig() Config {
	cfg := smallConfig()
	cfg.Faults = faults.Config{
		LSERatePerDiskHour: 1e-4,
		ScrubIntervalHours: 720,
		BurstsPerYear:      4,
		BurstMeanSize:      3,
		TransientReadProb:  0.2,
		SparePoolSize:      2,
	}
	return cfg
}

// TestFaultStormDeterministicAndBounded is the headline acceptance test:
// a run under the combined storm (LSEs + scrubbing + bursts + transient
// rebuild faults) must terminate, keep every fault-path counter
// consistent, reproduce exactly under the same seed, and emit a causally
// ordered trace.
func TestFaultStormDeterministicAndBounded(t *testing.T) {
	for _, farm := range []bool{true, false} {
		farm := farm
		name := "spare"
		if farm {
			name = "FARM"
		}
		t.Run(name, func(t *testing.T) {
			cfg := stormConfig()
			cfg.UseFARM = farm
			var events []trace.Event
			cfg.Hook = func(e trace.Event) { events = append(events, e) }
			cfg.Seed = 7
			res, err := runOnce(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Every injected process must have fired at these rates.
			if res.LSEInjected == 0 {
				t.Error("no latent errors injected")
			}
			if res.ScrubFound == 0 {
				t.Error("scrubber found nothing across a 6-year horizon")
			}
			if res.Bursts == 0 || res.BurstKills < res.Bursts {
				t.Errorf("bursts=%d kills=%d", res.Bursts, res.BurstKills)
			}
			if res.TransientFaults == 0 || res.RebuildRetries == 0 {
				t.Errorf("transient faults=%d retries=%d", res.TransientFaults, res.RebuildRetries)
			}
			// Retries are capped: each transient fault triggers at most one
			// retry, and re-sourcings only happen after retry exhaustion or a
			// latent hit, so the counters bound each other.
			if res.RebuildRetries > res.TransientFaults {
				t.Errorf("retries %d exceed transient faults %d", res.RebuildRetries, res.TransientFaults)
			}
			if res.LSEDetected+res.ScrubFound > res.LSEInjected {
				t.Errorf("discovered %d+%d latent errors, only %d injected",
					res.LSEDetected, res.ScrubFound, res.LSEInjected)
			}
			if !farm && res.QueuedSpareJobs == 0 {
				t.Error("2-spare pool never queued under the storm")
			}
			if err := trace.CheckCausality(events); err != nil {
				t.Fatal(err)
			}
			// Determinism: an identical run (fresh hook) reproduces exactly.
			cfg2 := stormConfig()
			cfg2.UseFARM = farm
			cfg2.Seed = 7
			res2, err := runOnce(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", res2) {
				t.Fatalf("same seed diverged under fault storm:\n%+v\n%+v", res, res2)
			}
		})
	}
}

// TestFaultStormTraceKinds: the storm's trace must contain the
// fault-specific event kinds so downstream tooling (farmtrace) can see
// the fault paths.
func TestFaultStormTraceKinds(t *testing.T) {
	cfg := stormConfig()
	cfg.Seed = 11
	var events []trace.Event
	cfg.Hook = func(e trace.Event) { events = append(events, e) }
	if _, err := runOnce(cfg); err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(events)
	for _, k := range []trace.Kind{trace.KindLSE, trace.KindScrub, trace.KindBurst, trace.KindRetry} {
		if sum.Counts[k] == 0 {
			t.Errorf("no %q events in the storm trace", k)
		}
	}
}

// TestFaultsValidationPropagates: a bad faults sub-config must fail the
// top-level Config.Validate, not surface later inside a run.
func TestFaultsValidationPropagates(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults.TransientReadProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid faults config accepted")
	}
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("NewSimulator accepted invalid faults config")
	}
}

// TestReplaceTriggerNeverReached: a trigger fraction above the six-year
// cumulative failure fraction (~10%, §3.6) must inject no replacement
// batches — the policy arms but never fires. Transient faults ride along
// to confirm the fault paths don't tickle the replacement counters;
// bursts stay off because they really can kill 95% of a small fleet.
func TestReplaceTriggerNeverReached(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = faults.Config{TransientReadProb: 0.2}
	cfg.ReplaceTrigger = 0.95
	cfg.Seed = 3
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesAdded != 0 || res.DisksAdded != 0 {
		t.Fatalf("batches=%d disks=%d with a 95%% trigger", res.BatchesAdded, res.DisksAdded)
	}
}

// TestMonteCarloFoldsFaultAggregates: the campaign-level Result must
// carry the fault counters through the streaming fold.
func TestMonteCarloFoldsFaultAggregates(t *testing.T) {
	cfg := stormConfig()
	res, err := MonteCarlo(cfg, MonteCarloOptions{Runs: 4, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.LSEInjected.Mean() == 0 {
		t.Error("campaign mean LSEs is zero under the storm")
	}
	if res.RebuildRetries.Mean() == 0 {
		t.Error("campaign mean retries is zero under the storm")
	}
	if res.Bursts.Mean() == 0 {
		t.Error("campaign mean bursts is zero under the storm")
	}
}
