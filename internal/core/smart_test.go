package core

import "testing"

func TestSmartValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.SmartAccuracy = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("accuracy > 1 accepted")
	}
	cfg = smallConfig()
	cfg.SmartLeadHours = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative lead accepted")
	}
}

func TestSmartDrainHappens(t *testing.T) {
	cfg := smallConfig()
	cfg.SmartAccuracy = 1
	cfg.SmartLeadHours = 72
	simr, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedFailures == 0 {
		t.Fatal("perfect monitor predicted nothing")
	}
	if res.DrainedBlocks == 0 {
		t.Fatal("no blocks drained despite perfect prediction")
	}
}

func TestSmartDisabledByDefault(t *testing.T) {
	simr, err := NewSimulator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedFailures != 0 || res.DrainedBlocks != 0 {
		t.Fatal("prediction active without configuration")
	}
}

func TestSmartReducesRebuildLoad(t *testing.T) {
	// With a perfect long-lead monitor, most failed drives were drained
	// (retired) beforehand, so reactive rebuilds collapse.
	base := smallConfig()
	const runs = 10
	noSmart, err := MonteCarlo(base, MonteCarloOptions{Runs: runs, BaseSeed: 31})
	if err != nil {
		t.Fatal(err)
	}
	withSmart := base
	withSmart.SmartAccuracy = 1
	withSmart.SmartLeadHours = 24 * 14 // two weeks of warning
	sm, err := MonteCarlo(withSmart, MonteCarloOptions{Runs: runs, BaseSeed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if sm.BlocksRebuilt.Mean() >= noSmart.BlocksRebuilt.Mean() {
		t.Fatalf("smart draining did not reduce reactive rebuilds: %v >= %v",
			sm.BlocksRebuilt.Mean(), noSmart.BlocksRebuilt.Mean())
	}
}

func TestAdaptiveRecoveryRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.AdaptiveRecovery = true
	simr, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simr.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskFailures > 0 && res.BlocksRebuilt == 0 {
		t.Fatal("adaptive recovery rebuilt nothing")
	}
}

func TestAdaptiveShortensSpareWindows(t *testing.T) {
	// The spare engine's long serialized rebuilds benefit from night-time
	// bandwidth; mean windows must not grow under the adaptive model.
	base := smallConfig()
	base.UseFARM = false
	base.GroupBytes = 50 * GBtest
	const runs = 8
	fixed, err := MonteCarlo(base, MonteCarloOptions{Runs: runs, BaseSeed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ad := base
	ad.AdaptiveRecovery = true
	adaptive, err := MonteCarlo(ad, MonteCarloOptions{Runs: runs, BaseSeed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.WindowHours.Mean() > fixed.WindowHours.Mean() {
		t.Fatalf("adaptive windows %v longer than fixed %v",
			adaptive.WindowHours.Mean(), fixed.WindowHours.Mean())
	}
}

// GBtest avoids importing disk here just for the constant.
const GBtest = int64(1) << 30
