package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
)

// Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Deps lists the package's transitive dependencies (import paths),
	// used by the standalone driver to thread facts in dependency order.
	Deps []string
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Deps       []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns (run from dir) with
// full type information, using only the standard library: package
// metadata and compiled export data come from `go list -export`, so the
// loader works offline with no dependency on golang.org/x/tools.
//
// Only packages belonging to the main module are returned for analysis;
// their dependencies contribute export data for type checking.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Deps,Standard,Module,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			cp := p
			targets = append(targets, &cp)
		}
	}
	sorted, err := topoSort(targets)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range sorted {
		pkg, err := typecheckFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Deps = t.Deps
		out = append(out, pkg)
	}
	return out, nil
}

// topoSort orders the analysis targets so every in-module dependency
// precedes its dependents (alphabetical among ready packages, so the
// order — and hence fact-dependent diagnostics — is deterministic).
// Facts can then be threaded through one in-memory map.
func topoSort(targets []*listedPkg) ([]*listedPkg, error) {
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	inModule := make(map[string]bool, len(targets))
	for _, t := range targets {
		inModule[t.ImportPath] = true
	}
	done := make(map[string]bool, len(targets))
	out := make([]*listedPkg, 0, len(targets))
	for len(out) < len(targets) {
		progressed := false
		for _, t := range targets {
			if done[t.ImportPath] {
				continue
			}
			ready := true
			for _, d := range t.Deps {
				if inModule[d] && !done[d] {
					ready = false
					break
				}
			}
			if ready {
				done[t.ImportPath] = true
				out = append(out, t)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("lint: import cycle among analysis targets")
		}
	}
	return out, nil
}

// newExportImporter returns a go/types importer that resolves imports
// from compiled export data files (as produced by `go list -export`).
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheckFiles parses and type-checks one package unit.
func typecheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if dir != "" {
			fn = dir + string(os.PathSeparator) + name
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, err := conf.Check(cleanPkgPath(path), fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, firstErr)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run loads patterns from dir and applies the full analyzer suite,
// threading facts between packages in dependency order, returning all
// findings (position-sorted, deduplicated — a cross-package collision
// is reported once even when many packages can see it).
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	analyzers := Analyzers()
	facts := make(map[string]FactSet, len(pkgs))
	var out []Diagnostic
	for _, pkg := range pkgs {
		deps := make(map[string]FactSet)
		for _, d := range pkg.Deps {
			if fs, ok := facts[d]; ok {
				deps[d] = fs
			}
		}
		ds, exported, err := RunAnalyzers(pkg, analyzers, deps)
		if err != nil {
			return nil, err
		}
		facts[cleanPkgPath(pkg.Path)] = exported
		out = append(out, ds...)
	}
	sortDiagnostics(out)
	return dedupeDiagnostics(out), nil
}
