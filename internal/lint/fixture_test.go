package lint

// The fixture harness mirrors golang.org/x/tools/go/analysis/analysistest
// with the same on-disk layout (testdata/<analyzer>/src/<importpath>/) and
// the same `// want "regexp"` convention, built on the standard library
// only. Each analyzer's fixtures are small packages containing both
// positive cases (every reported line carries a want comment whose regexp
// must match the diagnostic) and negative cases (clean idioms that must
// not be reported). A fixture run fails on any unmatched expectation AND
// on any unexpected diagnostic, so the fixtures pin both directions of
// each analyzer's behavior.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNoDetermFixtures(t *testing.T)   { testAnalyzerFixtures(t, NoDeterm) }
func TestHotPathFixtures(t *testing.T)    { testAnalyzerFixtures(t, HotPath) }
func TestFloatValidFixtures(t *testing.T) { testAnalyzerFixtures(t, FloatValid) }
func TestTraceKindFixtures(t *testing.T)  { testAnalyzerFixtures(t, TraceKind) }
func TestMetricNameFixtures(t *testing.T) { testAnalyzerFixtures(t, MetricName) }
func TestSeqTieFixtures(t *testing.T)     { testAnalyzerFixtures(t, SeqTie) }
func TestRngSaltFixtures(t *testing.T)    { testAnalyzerFixtures(t, RngSalt) }
func TestUnitCheckFixtures(t *testing.T)  { testAnalyzerFixtures(t, UnitCheck) }
func TestConfigFlowFixtures(t *testing.T) { testAnalyzerFixtures(t, ConfigFlow) }
func TestKindFlowFixtures(t *testing.T)   { testAnalyzerFixtures(t, KindFlow) }

// testAnalyzerFixtures loads every fixture package under
// testdata/<analyzer>/src, runs the analyzer over them in dependency
// order with facts threaded between packages (the same discipline as
// lint.Run), and checks the aggregated diagnostics against the `// want`
// expectations embedded in the sources. Aggregation matters for the
// fact-based analyzers: a cross-package collision is discovered while
// analyzing the importer but reported at a declaration in a dependency,
// so expectations can only be matched against the whole fixture tree.
func testAnalyzerFixtures(t *testing.T, a *Analyzer) {
	srcRoot := filepath.Join("testdata", a.Name, "src")
	paths := fixturePackagePaths(t, srcRoot)
	if len(paths) == 0 {
		t.Fatalf("no fixture packages under %s", srcRoot)
	}
	loader := newFixtureLoader(t, srcRoot)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.load(path)
		if err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	deps := fixtureDeps(pkgs)

	facts := make(map[string]FactSet, len(pkgs))
	var diags []Diagnostic
	analyzed := make(map[string]bool, len(pkgs))
	for len(analyzed) < len(pkgs) {
		progressed := false
		for _, pkg := range pkgs { // paths are sorted, so the order is deterministic
			if analyzed[pkg.Path] {
				continue
			}
			ready := true
			for _, d := range deps[pkg.Path] {
				if !analyzed[d] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			depFacts := make(map[string]FactSet)
			for _, d := range deps[pkg.Path] {
				if fs, ok := facts[d]; ok {
					depFacts[d] = fs
				}
			}
			ds, exported, err := RunAnalyzers(pkg, []*Analyzer{a}, depFacts)
			if err != nil {
				t.Fatalf("run %s on fixture %s: %v", a.Name, pkg.Path, err)
			}
			facts[pkg.Path] = exported
			diags = append(diags, ds...)
			analyzed[pkg.Path] = true
			progressed = true
		}
		if !progressed {
			t.Fatalf("import cycle among %s fixtures", a.Name)
		}
	}
	sortDiagnostics(diags)
	diags = dedupeDiagnostics(diags)

	// The acceptance contract: every analyzer has at least one failing
	// fixture proving it fires.
	if totalWants := checkWants(t, pkgs, diags); totalWants == 0 {
		t.Fatalf("%s fixtures declare no // want expectations: the analyzer is never shown to fire", a.Name)
	}
}

// fixtureDeps maps each fixture package to its transitive sibling-fixture
// dependencies, derived from the parsed import declarations.
func fixtureDeps(pkgs []*Package) map[string][]string {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	direct := make(map[string][]string, len(pkgs))
	for _, pkg := range pkgs {
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				p := importPath(imp)
				if _, sibling := byPath[p]; sibling && !seen[p] {
					seen[p] = true
					direct[pkg.Path] = append(direct[pkg.Path], p)
				}
			}
		}
	}
	trans := make(map[string][]string, len(pkgs))
	var closure func(path string) []string
	closure = func(path string) []string {
		if c, ok := trans[path]; ok {
			return c
		}
		trans[path] = nil // break cycles defensively; typecheck already rejects them
		seen := map[string]bool{}
		var out []string
		for _, d := range direct[path] {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
			for _, dd := range closure(d) {
				if !seen[dd] {
					seen[dd] = true
					out = append(out, dd)
				}
			}
		}
		sort.Strings(out)
		trans[path] = out
		return out
	}
	for _, pkg := range pkgs {
		closure(pkg.Path)
	}
	return trans
}

// fixturePackagePaths returns the slash-separated import paths of every
// directory under srcRoot containing .go files, sorted.
func fixturePackagePaths(t *testing.T, srcRoot string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", srcRoot, err)
	}
	sort.Strings(out)
	// Deduplicate (one entry per .go file so far).
	uniq := out[:0]
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq
}

// fixtureLoader type-checks fixture packages, resolving imports first
// against sibling fixture directories (so a fixture "consumer" can import
// a fixture "trace") and then against compiled stdlib export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func newFixtureLoader(t *testing.T, srcRoot string) *fixtureLoader {
	t.Helper()
	fset := token.NewFileSet()
	exports := resolveStdExports(t, externalImports(t, srcRoot))
	return &fixtureLoader{
		srcRoot: srcRoot,
		fset:    fset,
		std:     newExportImporter(fset, exports),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over fixtures-then-stdlib.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one fixture package (memoized).
func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle at %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// externalImports collects every import path referenced by fixture files
// that does not resolve to a sibling fixture directory (i.e. stdlib
// imports needing compiled export data).
func externalImports(t *testing.T, srcRoot string) []string {
	t.Helper()
	seen := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, perr := parser.ParseFile(fset, p, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			path := importPath(imp)
			dir := filepath.Join(srcRoot, filepath.FromSlash(path))
			if fi, serr := os.Stat(dir); serr == nil && fi.IsDir() {
				continue // sibling fixture
			}
			seen[path] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan fixture imports: %v", err)
	}
	out := make([]string, 0, len(seen))
	for p := range seen { //farm:orderinvariant keys are sorted before use
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// stdExportCache memoizes `go list -export` runs across fixture tests.
var stdExportCache struct {
	sync.Mutex
	m map[string]string
}

// resolveStdExports maps stdlib import paths (plus their dependencies) to
// compiled export-data files via `go list -export`, memoized per process.
func resolveStdExports(t *testing.T, paths []string) map[string]string {
	t.Helper()
	stdExportCache.Lock()
	defer stdExportCache.Unlock()
	if stdExportCache.m == nil {
		stdExportCache.m = make(map[string]string)
	}
	var missing []string
	for _, p := range paths {
		if _, ok := stdExportCache.m[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-e", "-export", "-json=ImportPath,Export", "-deps"}, missing...)
		cmd := exec.Command("go", args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("go list -export %v: %v\n%s", missing, err, stderr.String())
		}
		dec := json.NewDecoder(&stdout)
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("go list output: %v", err)
			}
			if p.Export != "" {
				stdExportCache.m[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(stdExportCache.m))
	for k, v := range stdExportCache.m { //farm:orderinvariant building a lookup map; never iterated for output
		out[k] = v
	}
	return out
}

// wantRe matches the trailing `want` clause of a fixture comment;
// wantArgRe extracts each quoted regexp from the clause — either a Go
// interpreted string or a backquoted raw string (handy when the pattern
// needs backslash escapes like `\(Ms\)`).
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

type wantExpectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants matches the aggregated diagnostics of a fixture tree
// against the `// want` comments in all of its packages, reporting both
// unmatched expectations and unexpected diagnostics. It returns the
// number of expectations declared.
func checkWants(t *testing.T, pkgs []*Package, diags []Diagnostic) int {
	t.Helper()
	expect := map[string][]*wantExpectation{} // "file:line" -> expectations
	total := 0
	for _, pkg := range pkgs {
		total += collectWants(t, pkg, expect)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range expect[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	keys := make([]string, 0, len(expect))
	for k := range expect { //farm:orderinvariant keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range expect[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", k, w.raw)
			}
		}
	}
	return total
}

// collectWants parses one package's `// want` comments into expect.
func collectWants(t *testing.T, pkg *Package, expect map[string][]*wantExpectation) int {
	t.Helper()
	total := 0
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					expect[key] = append(expect[key], &wantExpectation{re: re, raw: raw})
					total++
				}
			}
		}
	}
	return total
}
