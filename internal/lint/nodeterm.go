package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoDeterm enforces the determinism contract: a simulation run is a pure
// function of its seed. Inside simulator packages it forbids
//
//   - wall-clock reads (time.Now/Since/Until) — simulated time comes from
//     the sim.Engine clock; reporting-only timing must be justified with
//     //farm:wallclock <reason>;
//   - math/rand and crypto/rand — all randomness flows through the pinned
//     xoshiro256** streams of internal/rng (math/rand's top-level
//     functions are globally seeded and algorithm-unstable across Go
//     releases);
//   - ranging over a map with order-dependent effects in the body — Go
//     randomizes map iteration order per run, so any fold that is not
//     commutative-and-associative (float sums, appends, early returns,
//     calls) silently breaks byte-identity. Iterate sorted keys, or
//     justify a genuinely order-invariant walk with
//     //farm:orderinvariant <reason>.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall clocks, global randomness, and order-dependent map iteration in simulator packages",
	Run:  runNoDeterm,
}

// forbiddenRandImports are packages whose presence alone breaks seeded
// reproducibility (global state, or OS entropy).
var forbiddenRandImports = map[string]string{
	"math/rand":    "globally seeded and algorithm-unstable; use repro/internal/rng",
	"math/rand/v2": "globally seeded; use repro/internal/rng",
	"crypto/rand":  "draws OS entropy; use repro/internal/rng",
}

// nodetermExempt lists package-path base names outside the determinism
// contract: rng implements the sanctioned generator, lint is the tooling
// itself, and examples are non-simulation demos.
func nodetermGuarded(path string) bool {
	switch pkgPathBase(path) {
	case "rng", "lint":
		return false
	}
	clean := cleanPkgPath(path)
	for _, seg := range [...]string{"examples/", "lint/"} {
		if containsSegment(clean, seg) {
			return false
		}
	}
	return true
}

func containsSegment(path, seg string) bool {
	for i := 0; i+len(seg) <= len(path); i++ {
		if path[i:i+len(seg)] == seg && (i == 0 || path[i-1] == '/') {
			return true
		}
	}
	return false
}

func runNoDeterm(pass *Pass) error {
	if !nodetermGuarded(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path := importPath(imp)
			if why, bad := forbiddenRandImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s breaks seeded determinism: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkWallClock(n)
			case *ast.RangeStmt:
				pass.checkMapRange(n)
			}
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	if imp.Path == nil {
		return ""
	}
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// wallClockFuncs are the time package entry points that read the host
// clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func (p *Pass) checkWallClock(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !wallClockFuncs[sel.Sel.Name] {
		return
	}
	obj := p.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	pos := p.Fset.Position(call.Pos())
	if why, ok := p.directiveAt(pos.Line, pos.Filename, dirWallClock); ok {
		if why == "" {
			p.Reportf(call.Pos(), "//farm:wallclock needs a justification (why is wall-clock time safe here?)")
		}
		return
	}
	p.Reportf(call.Pos(), "time.%s reads the wall clock; simulation time must come from the sim.Engine clock (annotate reporting-only timing with //farm:wallclock <reason>)", sel.Sel.Name)
}

// checkMapRange flags `range m` over a map whose body has effects that
// observe iteration order.
func (p *Pass) checkMapRange(rs *ast.RangeStmt) {
	tv, ok := p.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pos := p.Fset.Position(rs.Pos())
	if why, ok := p.directiveAt(pos.Line, pos.Filename, dirOrderInvariant); ok {
		if why == "" {
			p.Reportf(rs.Pos(), "//farm:orderinvariant needs a justification (why is this map walk order-invariant?)")
		}
		return
	}
	if effect, detail := p.orderDependentEffect(rs); effect != nil {
		p.Reportf(rs.Pos(), "map iteration order is randomized, and this body %s (line %d); iterate sorted keys or annotate //farm:orderinvariant <reason>",
			detail, p.Fset.Position(effect.Pos()).Line)
	}
}

// orderDependentEffect scans a map-range body for the first construct
// whose outcome can depend on iteration order. Constructs proven
// commutative-and-associative are admitted without annotation:
//
//   - writes to variables declared inside the loop;
//   - integer/bitwise accumulation (n++, n += v, bits |= v) — commutative;
//   - boolean-literal latches (found = true);
//   - keyed writes into an outer map (out[k] = v) — each key written once;
//   - delete(m, k), len, cap, min, max builtins and type conversions;
//   - calls into package math (pure).
//
// Everything else — appends, float sums, plain assignments, early returns
// carrying loop data, arbitrary calls, channel ops — is flagged.
func (p *Pass) orderDependentEffect(rs *ast.RangeStmt) (node ast.Node, detail string) {
	local := func(e ast.Expr) bool { return p.declaredWithin(e, rs.Pos(), rs.End()) }

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if node != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if p.callIsOrderSafe(n) {
				return true
			}
			node, detail = n, "calls "+calleeName(n)
			return false
		case *ast.SendStmt:
			node, detail = n, "sends on a channel"
			return false
		case *ast.GoStmt:
			node, detail = n, "starts a goroutine"
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if exprMentions(r, rs.Key) || exprMentions(r, rs.Value) {
					node, detail = n, "returns a value picked by iteration order"
					return false
				}
			}
		case *ast.IncDecStmt:
			return true // counters commute
		case *ast.AssignStmt:
			if bad, why := p.assignIsOrderDependent(n, rs, local); bad {
				node, detail = n, why
				return false
			}
		}
		return true
	}
	ast.Inspect(rs.Body, visit)
	return node, detail
}

// assignIsOrderDependent classifies one assignment inside a map-range
// body.
func (p *Pass) assignIsOrderDependent(as *ast.AssignStmt, rs *ast.RangeStmt, local func(ast.Expr) bool) (bool, string) {
	for i, lhs := range as.Lhs {
		if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
			continue
		}
		if as.Tok == token.DEFINE || local(lhs) {
			continue // loop-local state cannot leak order
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			if p.isIntegerExpr(lhs) {
				continue // integer accumulation commutes exactly
			}
			return true, "accumulates a non-integer (order-sensitive rounding/concatenation) into outer state"
		case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			continue // bitwise ops commute
		case token.ASSIGN:
			if idx, isIdx := lhs.(*ast.IndexExpr); isIdx {
				// A keyed write is order-invariant when each iteration
				// writes its own slot (the index depends on the loop
				// element) or when the written value does not (all
				// iterations store the same thing).
				if keyedWriteIsOrderSafe(idx, rhs, rs) {
					continue
				}
				return true, "writes loop-dependent data to a fixed outer slot (last iteration wins)"
			}
			if isBoolLiteral(rhs) {
				continue // latch: found = true
			}
			return true, "assigns loop-dependent data to outer state"
		default:
			return true, "updates outer state order-sensitively"
		}
	}
	return false, ""
}

// keyedWriteIsOrderSafe reports whether out[idx] = rhs inside a map range
// is order-invariant: either each iteration writes its own slot (the
// index depends on the loop element), or the stored value does not.
func keyedWriteIsOrderSafe(idx *ast.IndexExpr, rhs ast.Expr, rs *ast.RangeStmt) bool {
	loopDep := func(e ast.Expr) bool {
		return e != nil && (exprMentions(e, rs.Key) || exprMentions(e, rs.Value))
	}
	if loopDep(idx.Index) {
		return true
	}
	return !loopDep(rhs)
}

// callIsOrderSafe admits builtins and calls known to be pure.
func (p *Pass) callIsOrderSafe(call *ast.CallExpr) bool {
	// Type conversions are pure.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := p.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "len", "cap", "min", "max", "delete", "append":
				// append is judged by its enclosing assignment; the
				// call itself is admitted so `x = append(x, ...)` inside
				// an admitted assignment does not double-report. An
				// append into outer state is caught by assignIsOrderDependent.
				return true
			}
		}
	case *ast.SelectorExpr:
		if obj := p.TypesInfo.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math" {
			return true // package math is pure
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "a function"
	}
}

// declaredWithin reports whether the root object of e was declared inside
// [lo, hi] (i.e. is loop-local).
func (p *Pass) declaredWithin(e ast.Expr, lo, hi token.Pos) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := p.TypesInfo.ObjectOf(x)
			if obj == nil {
				return false
			}
			return obj.Pos() >= lo && obj.Pos() <= hi
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (p *Pass) isIntegerExpr(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBoolLiteral(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "true" || id.Name == "false")
}

// exprMentions reports whether expr syntactically references the same
// object as ident.
func exprMentions(expr, ident ast.Expr) bool {
	id, ok := ident.(*ast.Ident)
	if !ok || id == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if x, ok := n.(*ast.Ident); ok && x.Name == id.Name {
			found = true
		}
		return !found
	})
	return found
}
