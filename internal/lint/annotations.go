package lint

import (
	"go/ast"
	"strings"
)

// Annotation directives. A directive is a line comment of the form
// //farm:<name> <justification>, attached either to the statement it
// permits (same line or the line directly above) or, for hotpath, to the
// function declaration's doc comment. The justification text is free-form
// but required: an annotation without a reason is itself a finding.
const (
	// dirHotPath marks a function bound by the hot-path contract.
	dirHotPath = "farm:hotpath"
	// dirOrderInvariant justifies a map iteration whose effects are
	// order-invariant (e.g. results are sorted before use).
	dirOrderInvariant = "farm:orderinvariant"
	// dirWallClock justifies a wall-clock read (reporting-only timing
	// outside the simulation's virtual clock).
	dirWallClock = "farm:wallclock"
	// dirUnitless justifies arithmetic mixing unit-suffixed quantities
	// (e.g. a deliberate dimension change the naming can't express).
	dirUnitless = "farm:unitless"
	// dirNoCausality justifies a trace.Kind with no CheckCausality rule
	// (a pure marker event with no ordering contract).
	dirNoCausality = "farm:nocausality"
	// dirAnyValue justifies a numeric config field whose whole domain is
	// valid, exempting it from the Validate-coverage requirement.
	dirAnyValue = "farm:anyvalue"
	// dirReserved justifies a config field that is declared and validated
	// but intentionally not yet read (a forward-looking knob).
	dirReserved = "farm:reserved"
	// dirFactSink marks a package whose import closure spans the full
	// simulator; whole-program fact aggregations (configflow's dead-knob
	// check, kindflow's dead-kind check) fire only in sink packages.
	dirFactSink = "farm:factsink"
)

// annotations indexes every //farm:* directive of one package by file and
// line.
type annotations struct {
	// byLine maps filename -> line -> directive text (without "//").
	byLine map[string]map[int]string
}

// annotationsOf builds (once) and returns the package's annotation index.
func (p *Pass) annotationsOf() *annotations {
	if p.ann != nil {
		return p.ann
	}
	a := &annotations{byLine: make(map[string]map[int]string)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "farm:") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = text
			}
		}
	}
	p.ann = a
	return a
}

// directiveAt reports the //farm:<name> directive governing the node
// starting at pos: on the same line or the line immediately above.
// It returns the justification text and whether the directive was found.
func (p *Pass) directiveAt(pos int, filename, name string) (string, bool) {
	a := p.annotationsOf()
	lines := a.byLine[filename]
	if lines == nil {
		return "", false
	}
	for _, l := range [2]int{pos, pos - 1} {
		if text, ok := lines[l]; ok {
			if rest, ok := cutDirective(text, name); ok {
				return rest, true
			}
		}
	}
	return "", false
}

// cutDirective splits "farm:name justification" into its justification if
// the directive name matches.
func cutDirective(text, name string) (string, bool) {
	if !strings.HasPrefix(text, name) {
		return "", false
	}
	rest := text[len(name):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. farm:hotpathological
	}
	return strings.TrimSpace(rest), true
}

// packageHasDirective reports whether any non-test file of the package
// carries the named directive anywhere (used for package-scoped markers
// like //farm:factsink).
func (p *Pass) packageHasDirective(name string) bool {
	a := p.annotationsOf()
	for file, lines := range a.byLine { //farm:orderinvariant existence check only; no order-dependent effects
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		for _, text := range lines { //farm:orderinvariant existence check only; no order-dependent effects
			if _, ok := cutDirective(text, name); ok {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether the function declaration's doc comment
// carries the named directive.
func funcHasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if _, ok := cutDirective(text, name); ok {
			return true
		}
	}
	return false
}
