package lint

import (
	"go/ast"
	"strings"
)

// Annotation directives. A directive is a line comment of the form
// //farm:<name> <justification>, attached either to the statement it
// permits (same line or the line directly above) or, for hotpath, to the
// function declaration's doc comment. The justification text is free-form
// but required: an annotation without a reason is itself a finding.
const (
	// dirHotPath marks a function bound by the hot-path contract.
	dirHotPath = "farm:hotpath"
	// dirOrderInvariant justifies a map iteration whose effects are
	// order-invariant (e.g. results are sorted before use).
	dirOrderInvariant = "farm:orderinvariant"
	// dirWallClock justifies a wall-clock read (reporting-only timing
	// outside the simulation's virtual clock).
	dirWallClock = "farm:wallclock"
)

// annotations indexes every //farm:* directive of one package by file and
// line.
type annotations struct {
	// byLine maps filename -> line -> directive text (without "//").
	byLine map[string]map[int]string
}

// annotationsOf builds (once) and returns the package's annotation index.
func (p *Pass) annotationsOf() *annotations {
	if p.ann != nil {
		return p.ann
	}
	a := &annotations{byLine: make(map[string]map[int]string)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "farm:") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = text
			}
		}
	}
	p.ann = a
	return a
}

// directiveAt reports the //farm:<name> directive governing the node
// starting at pos: on the same line or the line immediately above.
// It returns the justification text and whether the directive was found.
func (p *Pass) directiveAt(pos int, filename, name string) (string, bool) {
	a := p.annotationsOf()
	lines := a.byLine[filename]
	if lines == nil {
		return "", false
	}
	for _, l := range [2]int{pos, pos - 1} {
		if text, ok := lines[l]; ok {
			if rest, ok := cutDirective(text, name); ok {
				return rest, true
			}
		}
	}
	return "", false
}

// cutDirective splits "farm:name justification" into its justification if
// the directive name matches.
func cutDirective(text, name string) (string, bool) {
	if !strings.HasPrefix(text, name) {
		return "", false
	}
	rest := text[len(name):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. farm:hotpathological
	}
	return strings.TrimSpace(rest), true
}

// funcHasDirective reports whether the function declaration's doc comment
// carries the named directive.
func funcHasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if _, ok := cutDirective(text, name); ok {
			return true
		}
	}
	return false
}
