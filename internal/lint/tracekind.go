package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// TraceKind enforces the trace vocabulary contract. Downstream tooling
// (cmd/farmtrace, golden-transcript tests, the causality checker) matches
// on trace.Kind values, so the set of kinds must be closed and collision-
// free:
//
//   - every Kind constant is declared in internal/trace, and no two
//     declared kinds share a string value;
//   - code outside internal/trace never materializes a Kind from an
//     inline string — neither by implicit conversion (Kind: "lse") nor by
//     explicit conversion (trace.Kind("lse")) — it must name a declared
//     constant, so adding an event kind forces a declaration the
//     transcript tests can see.
var TraceKind = &Analyzer{
	Name: "tracekind",
	Doc:  "trace.Kind values are unique constants declared in internal/trace; no inline kind strings elsewhere",
	Run:  runTraceKind,
}

// isTracePkg matches the trace package itself (and fixture stand-ins
// named trace).
func isTracePkg(path string) bool {
	return pkgPathBase(path) == "trace"
}

func runTraceKind(pass *Pass) error {
	if isTracePkg(pass.Pkg.Path()) {
		return runTraceKindDecls(pass)
	}
	return runTraceKindUses(pass)
}

// runTraceKindDecls checks the declaration site: Kind constants must not
// collide.
func runTraceKindDecls(pass *Pass) error {
	seen := make(map[string]string) // string value -> first constant name
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isKindType(obj.Type()) {
						continue
					}
					if obj.Val().Kind() != constant.String {
						continue
					}
					val := constant.StringVal(obj.Val())
					if first, dup := seen[val]; dup {
						pass.Reportf(name.Pos(), "kind %q collides with %s: declared kinds must be unique strings", val, first)
						continue
					}
					seen[val] = name.Name
				}
			}
		}
	}
	return nil
}

// runTraceKindUses checks every other package: no inline Kind strings,
// and no Kind constants declared outside internal/trace.
func runTraceKindUses(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				// An untyped string literal adopting the Kind type is an
				// implicit conversion: Event{Kind: "lse"}, k == "lse", etc.
				if tv, ok := pass.TypesInfo.Types[n]; ok && isKindType(tv.Type) {
					pass.Reportf(n.Pos(), "inline trace kind %s: use a constant declared in internal/trace so transcript tooling sees a closed vocabulary", n.Value)
				}
			case *ast.CallExpr:
				// Explicit conversion trace.Kind(x).
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && isKindType(tv.Type) {
					pass.Reportf(n.Pos(), "conversion to trace.Kind outside internal/trace: emit a declared constant instead")
					return false // don't double-report a literal argument
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Const); ok && isKindType(obj.Type()) {
						pass.Reportf(name.Pos(), "trace.Kind constant %s declared outside internal/trace: add it to the declared vocabulary instead", name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isKindType reports whether t is the trace package's Kind type.
func isKindType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && obj.Pkg() != nil && isTracePkg(obj.Pkg().Path())
}
