package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ConfigFlow generalizes floatvalid into a dataflow contract over the
// whole simulator: an exported field on a Config/Policy struct is an
// operator-facing knob, and a knob is only real if (a) Validate vets it
// before a run starts and (b) something actually reads it afterwards. A
// field that is validated but never read is a dead knob — the operator
// turns it and nothing happens, the evaluation silently runs a different
// system than its config claims — and the reader is frequently in a
// *different* package than the declaration (core reads topology's and
// workload's knobs), so the check cannot be package-local.
//
//   - locally, in the watched packages (core, faults, recovery,
//     topology, workload): every exported integer field of an exported
//     Config/Policy struct must be referenced by the package's
//     Validate/validate function, extending floatvalid (which owns
//     float64/Duration) to the int knobs; //farm:anyvalue <why> exempts
//     a field whose entire domain is valid (e.g. a seed);
//   - via facts: each watched package exports its declared fields (with
//     local read/validate bits) and every package exports the foreign
//     config fields it reads; a //farm:factsink package — one whose
//     import closure spans the full simulator — aggregates and reports
//     any field never read outside its own Validate anywhere in that
//     closure. //farm:reserved <why> exempts a deliberately dormant
//     knob.
//
// Reads are selector loads: assignments' left-hand sides and composite-
// literal keys are writes, so a knob that is set everywhere but
// consulted nowhere is still dead.
var ConfigFlow = &Analyzer{
	Name: "configflow",
	Doc:  "every exported Config/Policy field is validated and read outside Validate somewhere in the simulator",
	Run:  runConfigFlow,
}

// configFlowPkgs are the watched declaration packages (the same set
// floatvalid audits).
var configFlowPkgs = map[string]bool{"core": true, "faults": true, "recovery": true, "topology": true, "workload": true}

// configFlowFact is the package fact. Watched packages export Fields;
// every package exports the foreign Reads it performs.
type configFlowFact struct {
	Fields []configFieldDecl `json:"fields,omitempty"`
	Reads  []configFieldRef  `json:"reads,omitempty"`
}

type configFieldDecl struct {
	Struct string `json:"struct"`
	Field  string `json:"field"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	// Read is true when the declaring package itself reads the field
	// outside Validate.
	Read bool `json:"read,omitempty"`
	// Reserved carries a //farm:reserved exemption from the read check.
	Reserved bool `json:"reserved,omitempty"`
}

type configFieldRef struct {
	Pkg    string `json:"pkg"`
	Struct string `json:"struct"`
	Field  string `json:"field"`
}

func (r configFieldRef) key() string { return r.Pkg + "." + r.Struct + "." + r.Field }

func runConfigFlow(pass *Pass) error {
	watched := configFlowPkgs[pkgPathBase(pass.Pkg.Path())]

	// Shared groundwork: which selector expressions are pure writes
	// (direct LHS of = / :=), and which field selections happen inside a
	// Validate function.
	writes := make(map[ast.Expr]bool)
	inValidate := make(map[ast.Node]bool) // Validate/validate function bodies
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						writes[unparen(lhs)] = true
					}
				}
			case *ast.FuncDecl:
				if name := n.Name.Name; (name == "Validate" || name == "validate") && n.Body != nil {
					inValidate[n.Body] = true
				}
			}
			return true
		})
	}

	// Collect every field *read*: a FieldVal selection that is not a
	// pure write, split into local-struct reads and foreign reads, and
	// flagged by whether it sits inside a Validate body.
	localReads := make(map[*types.Var]bool)     // reads outside Validate, this package's structs
	validatedBy := make(map[*types.Var]bool)    // references inside Validate (any selection)
	foreignReads := make(map[string]configFieldRef)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			insideValidate := inValidate[fd.Body]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				field, ok := s.Obj().(*types.Var)
				if !ok || field.Pkg() == nil {
					return true
				}
				ownStruct, structName := configOwner(s.Recv())
				if !ownStruct {
					return true
				}
				if field.Pkg() == pass.Pkg {
					if insideValidate {
						validatedBy[field] = true
					} else if !writes[sel] {
						localReads[field] = true
					}
					return true
				}
				// Foreign config field. Reads inside *our* Validate still
				// count: core.Validate consulting topology knobs is a read
				// outside topology's Validate.
				if writes[sel] {
					return true
				}
				if !configFlowPkgs[pkgPathBase(field.Pkg().Path())] {
					return true
				}
				ref := configFieldRef{Pkg: cleanPkgPath(field.Pkg().Path()), Struct: structName, Field: field.Name()}
				foreignReads[ref.key()] = ref
				return true
			})
		}
	}

	fact := configFlowFact{}
	for _, ref := range foreignReads { //farm:orderinvariant collected into a slice sorted below
		fact.Reads = append(fact.Reads, ref)
	}
	sort.Slice(fact.Reads, func(i, j int) bool { return fact.Reads[i].key() < fact.Reads[j].key() })

	// Declaration audit in watched packages: integer fields must be
	// covered by Validate (the local half), and every exported field is
	// exported as a fact for the sink's read audit (the global half).
	if watched {
		sawValidate := len(inValidate) > 0
		for _, file := range pass.Files {
			if pass.InTestFile(file.Pos()) {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !isConfigStructName(ts.Name.Name) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					fact.Fields = append(fact.Fields,
						pass.auditConfigFlow(ts.Name.Name, st, validatedBy, localReads, sawValidate)...)
				}
			}
		}
	}
	if len(fact.Fields) > 0 || len(fact.Reads) > 0 {
		pass.ExportFact(fact)
	}

	// Sink aggregation: the dead-knob report.
	if pass.packageHasDirective(dirFactSink) {
		pass.reportDeadKnobs(fact)
	}
	return nil
}

// configOwner reports whether the selection's receiver is an exported
// Config/Policy struct, and its name.
func configOwner(recv types.Type) (bool, string) {
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false, ""
	}
	name := named.Obj().Name()
	return isConfigStructName(name), name
}

// auditConfigFlow checks one struct's fields locally and returns their
// fact records.
func (p *Pass) auditConfigFlow(typeName string, st *ast.StructType, validatedBy, localReads map[*types.Var]bool, sawValidate bool) []configFieldDecl {
	var out []configFieldDecl
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !ast.IsExported(name.Name) {
				continue
			}
			obj, ok := p.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			pos := p.Fset.Position(name.Pos())
			_, anyValue := p.directiveAt(pos.Line, pos.Filename, dirAnyValue)
			_, reserved := p.directiveAt(pos.Line, pos.Filename, dirReserved)
			if isIntegerKnob(obj.Type()) && !anyValue {
				if !sawValidate {
					p.Reportf(name.Pos(), "%s.%s is a numeric knob but package %s has no Validate function to check it", typeName, name.Name, p.Pkg.Name())
				} else if !validatedBy[obj] {
					p.Reportf(name.Pos(), "%s.%s (%s) is never referenced by Validate: out-of-range values will reach the simulation (//farm:anyvalue if the whole domain is valid)", typeName, name.Name, obj.Type().String())
				}
			}
			out = append(out, configFieldDecl{
				Struct:   typeName,
				Field:    name.Name,
				File:     pos.Filename,
				Line:     pos.Line,
				Read:     localReads[obj],
				Reserved: reserved,
			})
		}
	}
	return out
}

// isIntegerKnob matches the numeric kinds floatvalid does not already
// own: integers of any width and signedness (bools, strings, structs,
// funcs, and floats/Durations are out of scope here).
func isIntegerKnob(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// reportDeadKnobs is the sink-side aggregation: union the read sets of
// the whole import closure (plus the sink's own) and report any declared
// field nobody reads outside its Validate.
func (p *Pass) reportDeadKnobs(own configFlowFact) {
	read := make(map[string]bool)
	var decls []struct {
		pkg  string
		decl configFieldDecl
	}
	consume := func(pkg string, fact configFlowFact) {
		for _, r := range fact.Reads {
			read[r.key()] = true
		}
		for _, d := range fact.Fields {
			if d.Read {
				read[configFieldRef{Pkg: pkg, Struct: d.Struct, Field: d.Field}.key()] = true
			}
			decls = append(decls, struct {
				pkg  string
				decl configFieldDecl
			}{pkg, d})
		}
	}
	consume(cleanPkgPath(p.Pkg.Path()), own)
	for _, dep := range p.FactProviders() {
		var fact configFlowFact
		if p.ImportFact(dep, &fact) {
			consume(dep, fact)
		}
	}
	sort.Slice(decls, func(i, j int) bool {
		if decls[i].pkg != decls[j].pkg {
			return decls[i].pkg < decls[j].pkg
		}
		if decls[i].decl.Struct != decls[j].decl.Struct {
			return decls[i].decl.Struct < decls[j].decl.Struct
		}
		return decls[i].decl.Field < decls[j].decl.Field
	})
	for _, d := range decls {
		if d.decl.Reserved {
			continue
		}
		key := configFieldRef{Pkg: d.pkg, Struct: d.decl.Struct, Field: d.decl.Field}.key()
		if read[key] {
			continue
		}
		p.report(Diagnostic{
			Pos:      token.Position{Filename: d.decl.File, Line: d.decl.Line, Column: 1},
			Analyzer: p.Analyzer.Name,
			Message: "dead knob: " + d.pkg + "." + d.decl.Struct + "." + d.decl.Field +
				" is never read outside Validate anywhere in the simulator: wire it up, delete it, or annotate //farm:reserved",
		})
	}
}
