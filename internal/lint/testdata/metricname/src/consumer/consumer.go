// Package consumer is a metricname fixture for code outside
// internal/obs: it must register declared catalogue constants, never
// inline metric-name strings.
package consumer

import "obs"

// registerLiteral materializes a Name by implicit conversion.
func registerLiteral(r *obs.Registry) {
	r.Counter("oops_total") // want "inline metric name"
}

// convert materializes a Name by explicit conversion.
func convert(s string) obs.Name {
	return obs.Name(s) // want "conversion to obs.Name"
}

// compare adopts the Name type in a comparison.
func compare(n obs.Name) bool {
	return n == "active_rebuilds" // want "inline metric name"
}

// localName extends the catalogue outside the obs package.
const localName obs.Name = "local_total" // want "declared outside internal/obs" "inline metric name"

// registerConstant names a declared constant: clean.
func registerConstant(r *obs.Registry) {
	r.Counter(obs.MetricDiskFailures)
}

// plainString passes an ordinary string around: clean.
func plainString() string {
	return "disk_failures_total"
}
