// Package obs is a fixture stand-in for internal/obs (the analyzer
// matches the package-path base name). Declared metric names must be
// unique snake_case strings.
package obs

// Name is a metric identifier.
type Name string

// Declared catalogue.
const (
	MetricDiskFailures Name = "disk_failures_total"
	MetricActive       Name = "active_rebuilds"
	MetricDup          Name = "disk_failures_total" // want "collides with MetricDiskFailures"
	MetricCamel        Name = "DiskFailures"        // want "not snake_case"
	MetricDashed       Name = "disk-failures"       // want "not snake_case"
	MetricEmpty        Name = ""                    // want "not snake_case"
)

// Registry is a metric sink keyed by Name.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(n Name) {}
