// Package sink is the configflow aggregation point: its import closure
// spans the whole fixture "simulator", so the dead-knob check is
// decidable here. Findings land at the declarations in core and faults.

//farm:factsink the fixture's import closure converges here
package sink

import (
	"consumer"
	"core"
	"faults"
)

// Main ties the closure together.
func Main() int {
	var cfg core.Config
	var p faults.InjectPolicy
	_ = p
	return consumer.Build(cfg)
}
