// Package faults is a configflow fixture for a watched package with no
// Validate function at all: declaring a numeric knob is then itself a
// finding, and with nothing reading the knob the sink reports it dead
// too.
package faults

// InjectPolicy carries a knob no Validate checks and no code reads.
type InjectPolicy struct {
	Burst int // want "has no Validate function" "dead knob"
}
