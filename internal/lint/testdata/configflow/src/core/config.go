// Package core is a configflow fixture standing in for a watched
// simulator package (path base core): every exported integer field of a
// Config/Policy struct must be referenced by Validate, and every
// exported field must be read outside Validate somewhere in the import
// closure (checked in the sink fixture).
package core

import "errors"

var errBad = errors.New("bad config")

// Config is audited on both axes.
type Config struct {
	// Replicas is validated here and read by the consumer fixture: clean.
	Replicas int
	// Unchecked is read by the consumer but missing from Validate.
	Unchecked int // want "never referenced by Validate"
	// Seed is exempt from validation (whole domain valid) and read: clean.
	Seed uint64 //farm:anyvalue any seed is valid
	// DeadKnob is validated but nothing anywhere reads it.
	DeadKnob int // want "dead knob"
	// WriteOnly is validated and assigned by the consumer, but a store is
	// not a read: still dead.
	WriteOnly int // want "dead knob"
	// Future is validated and deliberately dormant: exempt.
	Future int //farm:reserved wired up by the planned follow-up experiment
	// Rate is a float (floatvalid's axis, not ours) and read: clean here.
	Rate float64
	// hidden is unexported: exempt.
	hidden int
}

// Validate covers every integer knob except Unchecked.
func (c *Config) Validate() error {
	if c.Replicas <= 0 || c.DeadKnob < 0 || c.WriteOnly < 0 || c.Future < 0 {
		return errBad
	}
	_ = c.hidden
	return nil
}

// localRead consumes Rate in the declaring package itself.
func (c *Config) localRead() float64 { return c.Rate }
