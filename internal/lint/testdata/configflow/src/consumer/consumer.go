// Package consumer is a configflow fixture reading (and writing) the
// core fixture's knobs from outside its Validate: these reads are
// exported as facts and satisfy the sink's dead-knob check for the
// fields they load.
package consumer

import "core"

// Build consumes the knobs.
func Build(cfg core.Config) int {
	n := cfg.Replicas + cfg.Unchecked // reads: Replicas, Unchecked
	if cfg.Seed != 0 {                // read: Seed
		n++
	}
	n += int(cfg.Rate) // read: Rate

	// A bare store is not a read: WriteOnly stays dead.
	cfg.WriteOnly = n
	return n
}
