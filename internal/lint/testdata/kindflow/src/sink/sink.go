// Package sink is the kindflow aggregation point: the emitters' used
// kinds and the trace fixture's declared kinds meet here, and declared
// kinds nothing emits are reported dead at their declarations.

//farm:factsink the fixture's import closure converges here
package sink

import "emitter"

// Main ties the closure together.
func Main() int {
	return len(emitter.Emit())
}
