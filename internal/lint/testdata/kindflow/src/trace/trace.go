// Package trace is a kindflow fixture standing in for internal/trace:
// every Kind constant needs a CheckCausality rule or //farm:nocausality,
// and (checked in the sink fixture) an emission site somewhere in the
// closure.
package trace

import "errors"

// Kind labels an event.
type Kind string

const (
	// KindFail and KindDetect have causality rules and emitters: clean.
	KindFail   Kind = "fail"
	KindDetect Kind = "detect"
	// KindMarker is a declared pure marker, emitted: clean.
	KindMarker Kind = "marker" //farm:nocausality load-bearing free-form marker with no ordering contract
	// KindNoRule is emitted but has neither a rule nor an annotation.
	KindNoRule Kind = "norule" // want "has no CheckCausality rule"
	// KindDead has a rule but no emitter anywhere in the closure.
	KindDead Kind = "dead" // want "dead kind"
	// KindFuture is forward-declared: exempt from both checks.
	//farm:reserved forward-declared for the planned maintenance PR
	KindFuture Kind = "future" //farm:nocausality pure marker once emitted
)

// Event is one trace record.
type Event struct {
	Kind Kind
}

// CheckCausality references KindFail, KindDetect, and KindDead.
func CheckCausality(events []Event) error {
	seen := false
	for _, e := range events {
		switch e.Kind {
		case KindFail:
			seen = true
		case KindDetect, KindDead:
			if !seen {
				return errors.New("trace: effect before cause")
			}
		}
	}
	return nil
}
