// Package emitter is a kindflow fixture emitting part of the trace
// fixture's vocabulary; its used-kind set flows to the sink as a fact.
package emitter

import "trace"

// Emit produces the live kinds. KindDead and KindFuture are deliberately
// absent.
func Emit() []trace.Event {
	return []trace.Event{
		{Kind: trace.KindFail},
		{Kind: trace.KindDetect},
		{Kind: trace.KindMarker},
		{Kind: trace.KindNoRule},
	}
}
