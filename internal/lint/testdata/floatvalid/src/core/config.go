// Package core is a floatvalid fixture standing in for a simulator
// package carrying validated configuration structs (the guard matches
// path base names core, faults, recovery).
package core

import (
	"errors"
	"time"
)

var errBad = errors.New("bad config")

// Config is audited: every exported float64/time.Duration field must be
// referenced by Validate.
type Config struct {
	Rate     float64       // want "never referenced by Validate"
	Timeout  time.Duration // checked below: clean
	Checked  float64       // checked below: clean
	Name     string        // not a float: exempt
	Replicas int           // not a float: exempt
	hidden   float64       // unexported: exempt
}

// Validate range-checks part of the struct.
func (c *Config) Validate() error {
	if c.Checked < 0 || c.Checked != c.Checked {
		return errBad
	}
	if c.Timeout <= 0 {
		return errBad
	}
	_ = c.hidden
	return nil
}

// Tracker is exported but matches neither Config nor Policy: exempt.
type Tracker struct {
	Score float64
}

// sample is unexported: exempt.
type sample struct {
	X float64
}
