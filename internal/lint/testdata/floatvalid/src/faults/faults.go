// Package faults is a floatvalid fixture for the degenerate case: a
// guarded package declaring float-bearing config structs with no Validate
// function at all.
package faults

// BurstPolicy carries a rate no one checks.
type BurstPolicy struct {
	Lambda float64 // want "has no Validate function"
}
