// Package sim exercises the seqtie analyzer: every container/heap
// implementation must tie-break its comparator on an explicit sequence
// number so simultaneous entries pop in scheduling order.
package sim

type item struct {
	t   float64
	seq uint64
}

// goodHeap compares on time and tie-breaks on seq: clean.
type goodHeap []item

func (h goodHeap) Len() int { return len(h) }
func (h goodHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h goodHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *goodHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *goodHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// badHeap has a sequence field but compares on time alone.
type badHeap []item

func (h badHeap) Len() int           { return len(h) }
func (h badHeap) Less(i, j int) bool { return h[i].t < h[j].t } // want "does not tie-break on seq"
func (h badHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *badHeap) Push(x any)        { *h = append(*h, x.(item)) }
func (h *badHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type noSeqItem struct {
	t float64
}

// noSeqHeap's element type has no sequence field at all.
type noSeqHeap []noSeqItem

func (h noSeqHeap) Len() int           { return len(h) }
func (h noSeqHeap) Less(i, j int) bool { return h[i].t < h[j].t } // want "has no sequence field"
func (h noSeqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *noSeqHeap) Push(x any)        { *h = append(*h, x.(noSeqItem)) }
func (h *noSeqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ordHeap is a bare ordinal heap with no struct element to carry a
// sequence number.
type ordHeap []int

func (h ordHeap) Len() int           { return len(h) }
func (h ordHeap) Less(i, j int) bool { return h[i] < h[j] } // want "has no struct element"
func (h ordHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ordHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *ordHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// byTime is a plain sort.Interface (no Push/Pop): outside the contract.
type byTime []item

func (s byTime) Len() int           { return len(s) }
func (s byTime) Less(i, j int) bool { return s[i].t < s[j].t }
func (s byTime) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// slotEntry is the implicit-heap element shape: an ordering key plus a
// sequence number.
type slotEntry struct {
	at  float64
	seq uint64
}

// goodEntryLess is the implicit-heap comparator done right: compares on
// time, tie-breaks on seq. Clean.
func goodEntryLess(a, b slotEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// badEntryLess drops the tie-break while the element carries a sequence
// field: the exact regression an implicit-heap rewrite invites.
func badEntryLess(a, b slotEntry) bool { return a.at < b.at } // want "does not tie-break on seq"

// ptrEntryLess compares through pointers; same contract.
func ptrEntryLess(a, b *slotEntry) bool { return a.at < b.at } // want "does not tie-break on seq"

type labeled struct{ name string }

// nameLess orders a struct with no sequence field: sorting on other keys
// is legitimate, outside the contract.
func nameLess(a, b labeled) bool { return a.name < b.name }

// less over non-structs is outside the contract.
func intLess(a, b int) bool { return a < b }

// lessThan3 is not a two-argument comparator: outside the contract.
func lessThan3(v slotEntry) bool { return v.at < 3 }

// stacklike has Push/Pop with non-heap shapes: outside the contract.
type stacklike []item

func (s stacklike) Len() int           { return len(s) }
func (s stacklike) Less(i, j int) bool { return s[i].t < s[j].t }
func (s stacklike) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s *stacklike) Push(x item)       { *s = append(*s, x) }
func (s *stacklike) Pop() item {
	old := *s
	n := len(old)
	it := old[n-1]
	*s = old[:n-1]
	return it
}
