// Package hp exercises the hotpath analyzer: functions annotated
// //farm:hotpath must stay structurally allocation-free.
package hp

import (
	"errors"
	"fmt"
)

// errFull is the sanctioned sentinel-error idiom: allocated once at
// package init, returned by value from hot paths.
var errFull = errors.New("full")

func release() {}

// step shows the clean idioms: sentinel errors and self-append reuse.
//
//farm:hotpath fixture for the clean idioms
func step(buf []int, v int) ([]int, error) {
	if v < 0 {
		return nil, errFull
	}
	buf = append(buf, v)
	return buf, nil
}

// reslice appends into the truncated destination, which reuses the
// backing array: clean.
//
//farm:hotpath fixture for the reslice idiom
func reslice(buf []int, v int) []int {
	buf = append(buf[:0], v)
	return buf
}

//farm:hotpath fixture
func formats(v int) string {
	return fmt.Sprintf("%d", v) // want "calls fmt.Sprintf"
}

//farm:hotpath fixture
func newErr() error {
	return errors.New("boom") // want "calls errors.New"
}

//farm:hotpath fixture
func captures(vs []int) func() int {
	return func() int { return len(vs) } // want "captures a closure"
}

//farm:hotpath fixture
func deferred() {
	defer release() // want "defers"
}

//farm:hotpath fixture
func spawns() {
	go release() // want "starts a goroutine"
}

//farm:hotpath fixture
func makesMap() map[int]int {
	return make(map[int]int) // want "makes a map/chan"
}

//farm:hotpath fixture
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want "builds a map/chan literal"
}

//farm:hotpath fixture
func freshSlice(buf []int, v int) []int {
	out := append(buf, v) // want "appends into a different slice"
	return out
}

// guard panics on corruption; formatting inside a panic argument is a
// crash path, not a hot path: clean.
//
//farm:hotpath fixture for the panic exemption
func guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bad v %d", v))
	}
}

// cold is not annotated, so the contract does not bind it: clean.
func cold(v int) string {
	return fmt.Sprintf("%d", v)
}
