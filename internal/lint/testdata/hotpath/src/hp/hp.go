// Package hp exercises the hotpath analyzer: functions annotated
// //farm:hotpath must stay structurally allocation-free.
package hp

import (
	"container/heap" // want "imports container/heap"
	"errors"
	"fmt"
)

// errFull is the sanctioned sentinel-error idiom: allocated once at
// package init, returned by value from hot paths.
var errFull = errors.New("full")

func release() {}

// step shows the clean idioms: sentinel errors and self-append reuse.
//
//farm:hotpath fixture for the clean idioms
func step(buf []int, v int) ([]int, error) {
	if v < 0 {
		return nil, errFull
	}
	buf = append(buf, v)
	return buf, nil
}

// reslice appends into the truncated destination, which reuses the
// backing array: clean.
//
//farm:hotpath fixture for the reslice idiom
func reslice(buf []int, v int) []int {
	buf = append(buf[:0], v)
	return buf
}

//farm:hotpath fixture
func formats(v int) string {
	return fmt.Sprintf("%d", v) // want "calls fmt.Sprintf"
}

//farm:hotpath fixture
func newErr() error {
	return errors.New("boom") // want "calls errors.New"
}

//farm:hotpath fixture
func captures(vs []int) func() int {
	return func() int { return len(vs) } // want "captures a closure"
}

//farm:hotpath fixture
func deferred() {
	defer release() // want "defers"
}

//farm:hotpath fixture
func spawns() {
	go release() // want "starts a goroutine"
}

//farm:hotpath fixture
func makesMap() map[int]int {
	return make(map[int]int) // want "makes a map/chan"
}

//farm:hotpath fixture
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want "builds a map/chan literal"
}

//farm:hotpath fixture
func freshSlice(buf []int, v int) []int {
	out := append(buf, v) // want "appends into a different slice"
	return out
}

// guard panics on corruption; formatting inside a panic argument is a
// crash path, not a hot path: clean.
//
//farm:hotpath fixture for the panic exemption
func guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bad v %d", v))
	}
}

//farm:hotpath fixture
func siftsViaInterface(h heap.Interface) {
	heap.Init(h) // want "calls heap.Init"
}

// sink stands in for any API taking an empty interface.
func sink(v any) {}

// sinkAll is the variadic flavor (fmt-style APIs).
func sinkAll(vs ...any) {}

// typedSink takes a concrete parameter: calls to it never box.
func typedSink(v int) {}

//farm:hotpath fixture
func boxesArg(v int) {
	sink(v) // want "boxes int into an interface"
}

//farm:hotpath fixture
func boxesVariadic(v float64) {
	sinkAll(v) // want "boxes float64 into an interface"
}

// passesInterface hands over a value that is already an interface — a
// copy, not a box: clean.
//
//farm:hotpath fixture for the interface pass-through exemption
func passesInterface(err error) {
	sink(err)
}

// passesNil converts untyped nil for free: clean.
//
//farm:hotpath fixture for the nil exemption
func passesNil() {
	sink(nil)
}

// concreteCall passes concrete to concrete: clean.
//
//farm:hotpath fixture for concrete calls
func concreteCall(v int) {
	typedSink(v)
}

// forwards re-slices an existing []any through; no per-element boxing
// happens at this call site: clean.
//
//farm:hotpath fixture for the slice-forwarding exemption
func forwards(vs []any) {
	sinkAll(vs...)
}

// cold is not annotated, so the contract does not bind it: clean.
func cold(v int) string {
	return fmt.Sprintf("%d", v)
}
