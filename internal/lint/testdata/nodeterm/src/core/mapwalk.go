package core

import (
	"math"
	"sort"
)

// sumFloats folds floats in iteration order: rounding makes the result
// order-sensitive.
func sumFloats(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	return total
}

// countInts accumulates integers, which commutes exactly: clean.
func countInts(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// orFlags folds with a bitwise op, which commutes: clean.
func orFlags(m map[int]uint64) uint64 {
	var bits uint64
	for _, v := range m {
		bits |= v
	}
	return bits
}

// collectKeys appends in iteration order before sorting; without an
// annotation the analyzer cannot see the later sort.
func collectKeys(m map[int]bool) []int {
	var out []int
	for k := range m { // want "map iteration order is randomized"
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// sortedWalk is the same shape with the sanctioned annotation: clean.
func sortedWalk(m map[int]bool) []int {
	var out []int
	for k := range m { //farm:orderinvariant keys are sorted on the next line before use
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// unjustifiedWalk annotates without a reason, which is itself a finding.
func unjustifiedWalk(m map[int]bool) []int {
	var out []int
	//farm:orderinvariant
	for k := range m { // want "needs a justification"
		out = append(out, k)
	}
	return out
}

// invert performs keyed writes, one slot per element: clean.
func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// latch sets a boolean literal: clean.
func latch(m map[int]bool) bool {
	found := false
	for _, v := range m {
		if v {
			found = true
		}
	}
	return found
}

// pickAny returns a value chosen by iteration order.
func pickAny(m map[int]string) string {
	for _, v := range m { // want "map iteration order is randomized"
		return v
	}
	return ""
}

// localState mutates loop-local variables only: clean.
func localState(m map[int]float64) int {
	n := 0
	for _, v := range m {
		scaled := math.Sqrt(v)
		if scaled > 1 {
			n++
		}
	}
	return n
}

// lastWins overwrites one outer slot with loop data.
func lastWins(m map[int]string, out map[string]string) {
	for _, v := range m { // want "map iteration order is randomized"
		out["last"] = v
	}
}
