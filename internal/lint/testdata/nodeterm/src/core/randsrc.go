package core

import (
	crand "crypto/rand" // want "import of crypto/rand breaks seeded determinism"
	"math/rand"         // want "import of math/rand breaks seeded determinism"
)

// roll draws from the globally seeded generator.
func roll() int {
	return rand.Intn(6)
}

// entropy draws OS entropy.
func entropy(buf []byte) {
	_, _ = crand.Read(buf)
}
