// Package core is a nodeterm fixture standing in for a simulator package
// (the guard admits any path outside rng/, lint/, and examples/).
package core

import "time"

// wallClock reads the host clock without justification.
func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// elapsed reads the clock twice, both unjustified.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// justified carries a reasoned annotation and passes.
func justified() time.Duration {
	//farm:wallclock reporting-only timing for this fixture
	start := time.Now()
	d := time.Since(start) //farm:wallclock reporting-only timing for this fixture
	return d
}

// bare carries an annotation with no reason, which is itself a finding.
func bare() time.Time {
	//farm:wallclock
	return time.Now() // want "needs a justification"
}
