// Package consumer is an rngsalt fixture importing lib: its salt
// registry is checked pairwise against every dependency's, so the
// value shared with lib.otherSalt is a collision even though both
// packages are individually consistent. The diagnostic lands on lib's
// declaration (the deterministic reporting side).
package consumer

import "lib"

// consumerSeedSalt shares 0x222 with lib.otherSalt.
const consumerSeedSalt = 0x222

// privateSalt is unique across the closure: clean.
const privateSalt = 0x333

// Stream splits a private stream off the run seed.
func Stream(run uint64) uint64 {
	return lib.Seed(run) ^ consumerSeedSalt
}

// Other draws on the unique salt: clean.
func Other(run uint64) uint64 {
	return run ^ privateSalt
}
