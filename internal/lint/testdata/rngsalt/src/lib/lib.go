// Package lib is an rngsalt fixture declaring a salt registry: named
// *Salt/*Seed constants must be unique within the package, and the
// registry is exported as a fact for cross-package collision checks
// (see the consumer fixture, which collides with otherSalt below).
package lib

// demandSeedSalt isolates the demand stream: clean.
const demandSeedSalt = 0x111

// otherSalt collides with a salt declared in the consumer fixture; the
// collision is discovered while analyzing consumer (whose fact view
// holds both registries) and reported here, at the lexicographically
// last declaration.
const otherSalt = 0x222 // want "collides with consumer.consumerSeedSalt"

// dupSalt repeats demandSeedSalt's value within one package.
const dupSalt = 0x111 // want "duplicates the value of demandSeedSalt"

// plainMask is an ordinary constant; XORing with it below is a finding
// because the registry cannot audit stream separations that are not
// named *Salt/*Seed.
const plainMask = 7

// Seed derives subsystem streams from the run seed.
func Seed(run uint64) uint64 {
	a := run ^ demandSeedSalt // named salt: clean
	b := run ^ 0xbad          // want "inline RNG salt"
	c := run ^ plainMask      // want "XOR with constant plainMask"
	d := a ^ b                // no constant operand: clean
	return c ^ d
}
