// Package units is a unitcheck fixture: quantities carry their unit in
// the name suffix (*Hours, *Ms, *MBps, *Bytes, *Ratio, *PerHour), and
// the analyzer rejects direct cross-unit arithmetic while accepting the
// recognized conversions and anything it cannot name a unit for.
package units

// Cfg carries unit-suffixed fields for the keyed-literal check.
type Cfg struct {
	DetectHours float64
	WindowMs    float64
}

func mix(windowMs, detectHours, limitHours float64) float64 {
	sum := windowMs + detectHours  // want "mixing units"
	if limitHours < windowMs {     // want "mixing units"
		sum++
	}
	var xHours float64
	xHours = windowMs // want `assigning windowMs \(Ms\) to xHours \(Hours\)`
	return sum + xHours
}

func products(rateMBps, spanHours, failPerHour, scaleRatio, xBytes float64) float64 {
	a := rateMBps * spanHours  // want "cross-unit product"
	b := failPerHour * spanHours // rate × time: clean
	c := scaleRatio * xBytes     // dimensionless scaling: clean
	d := xBytes / rateMBps       // want "cross-unit quotient"
	e := xBytes / scaleRatio     // de-scaling: clean
	f := xBytes / c              // c carries no inferred unit: clean
	return a + b + c + d + e + f
}

// scaling pins the constant-scaling propagation: a quantity scaled by a
// bare number keeps its dimension family, so the mixed quotient is
// still visible through the parentheses.
func scaling(pendingBytes, mttfHours float64) float64 {
	g := pendingBytes / (mttfHours * 3600 * 1e6) // want "cross-unit quotient"
	//farm:unitless deliberate bytes-per-second conversion for the fixture
	h := pendingBytes / (mttfHours * 3600)
	return g + h
}

// conversions keep the unit: float64(nBytes) is still bytes.
func converted(nBytes int64, windowMs float64) float64 {
	return float64(nBytes) + windowMs // want "mixing units"
}

// wait names its parameter's unit; arguments must match it.
func wait(hours float64) float64 { return hours }

func calls(windowMs, spanHours float64) float64 {
	a := wait(windowMs) // want `passing windowMs \(Ms\) to parameter hours`
	b := wait(spanHours) // matching unit: clean
	return a + b
}

func literals(windowMs, spanHours float64) Cfg {
	return Cfg{
		DetectHours: windowMs, // want `assigning windowMs \(Ms\) to field DetectHours`
		WindowMs:    windowMs, // matching unit: clean
	}
}

// shallow pins the deliberate limit: arithmetic between same-unit
// operands has no inferred unit, so downstream mixing is not reported.
// Every finding points at a direct use of two named quantities.
func shallow(aBytes, bBytes, spanHours float64) float64 {
	opaque := aBytes - bBytes // same unit: clean
	return opaque + spanHours // opaque has no unit: clean
}
