// Package consumer is a tracekind fixture for code outside internal/trace:
// it must emit declared constants, never inline kind strings.
package consumer

import "trace"

// emitLiteral materializes a Kind by implicit conversion.
func emitLiteral() trace.Event {
	return trace.Event{Kind: "fail"} // want "inline trace kind"
}

// convert materializes a Kind by explicit conversion.
func convert(s string) trace.Kind {
	return trace.Kind(s) // want "conversion to trace.Kind"
}

// compare adopts the Kind type in a comparison.
func compare(k trace.Kind) bool {
	return k == "rebuild" // want "inline trace kind"
}

// localKind extends the vocabulary outside the trace package.
const localKind trace.Kind = "local" // want "declared outside internal/trace" "inline trace kind"

// emitConstant names a declared constant: clean.
func emitConstant() trace.Event {
	return trace.Event{Kind: trace.KindFail}
}

// plainString passes an ordinary string around: clean.
func plainString() string {
	return "fail"
}
