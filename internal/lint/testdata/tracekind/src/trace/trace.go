// Package trace is a fixture stand-in for internal/trace (the analyzer
// matches the package-path base name). Declared kinds must be unique.
package trace

// Kind labels an event.
type Kind string

// Declared vocabulary.
const (
	KindFail    Kind = "fail"
	KindRebuild Kind = "rebuild"
	KindDup     Kind = "fail" // want "collides with KindFail"
)

// Event is one simulator occurrence.
type Event struct {
	Kind Kind
}
