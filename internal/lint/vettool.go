package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
)

// This file implements the `go vet -vettool` driver protocol (the same
// wire protocol golang.org/x/tools/go/analysis/unitchecker speaks),
// from scratch on the standard library, so farmlint plugs into
// `go vet -vettool=$(bin)/farmlint ./...` without any module downloads:
//
//   - `farmlint -V=full` prints a version line the go command hashes
//     into its action cache key;
//   - `farmlint -flags` prints the JSON list of analyzer flags (none);
//   - `farmlint <unit>.cfg` analyzes one package unit described by the
//     JSON config the go command writes, prints findings in
//     file:line:col form, writes the unit's .vetx facts file (the
//     merged facts of the unit and its import closure — see facts.go),
//     and exits 2 when there are findings. Dependency units arrive with
//     VetxOnly set: the suite still runs to compute facts, but
//     diagnostics are suppressed (they surface when the dependency is
//     itself a vet target).

// vetConfig mirrors the JSON the go command hands a vet tool for each
// package unit. Unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetConfig reports whether arg names a unit-checker config file.
func IsVetConfig(arg string) bool { return filepath.Ext(arg) == ".cfg" }

// RunVetUnit analyzes one `go vet` package unit. It returns the exit
// code the tool should finish with: 0 (clean), 1 (tool error, message on
// stderr), or 2 (findings printed to stderr).
func RunVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "farmlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "farmlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// writeVetx persists facts as the unit's cached action output. The
	// go command demands the file exist even when there is nothing to
	// say, so failures to produce facts still write an empty payload.
	writeVetx := func(packages map[string]FactSet) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		payload, err := encodeFacts(packages)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, payload, 0o666)
		}
		if err != nil {
			fmt.Fprintf(stderr, "farmlint: %v\n", err)
			return false
		}
		return true
	}

	// Standard-library units carry no farmlint facts; skip the (large)
	// typecheck instead of analyzing the stdlib on every vet run.
	if cfg.Standard[cfg.ImportPath] {
		if !writeVetx(nil) {
			return 1
		}
		return 0
	}

	// Merge the facts of every dependency's .vetx. Each file already
	// holds its unit's whole import closure, so the union is the
	// transitive fact view for this unit.
	depFacts := make(map[string]FactSet)
	for _, vetx := range cfg.PackageVetx { //farm:orderinvariant keyed merge; consumers sort before use
		for path, fs := range decodeFactsFile(vetx) { //farm:orderinvariant keyed merge; consumers sort before use
			depFacts[path] = fs
		}
	}

	fset := token.NewFileSet()
	// Resolve each source-level import path through the unit's ImportMap
	// (vendoring, test variants) before consulting the export data files
	// the go command compiled for this unit's dependencies.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for from, to := range cfg.ImportMap { //farm:orderinvariant keyed writes, one per source path
		if f, ok := cfg.PackageFile[to]; ok {
			exports[from] = f
		}
	}
	imp := newExportImporter(fset, exports)

	pkg, err := typecheckFiles(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			// Pass dependency facts through so a broken leaf does not
			// sever fact flow for the rest of the graph.
			if !writeVetx(depFacts) {
				return 1
			}
			return 0
		}
		fmt.Fprintf(stderr, "farmlint: %v\n", err)
		return 1
	}
	diags, exported, err := RunAnalyzers(pkg, Analyzers(), depFacts)
	if err != nil {
		fmt.Fprintf(stderr, "farmlint: %v\n", err)
		return 1
	}
	merged := depFacts
	merged[cleanPkgPath(cfg.ImportPath)] = exported
	if !writeVetx(merged) {
		return 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	return 2
}

// PrintVersion implements the -V=full handshake: the go command hashes
// this line into its action-cache key, so it must change when the tool's
// behavior does.
func PrintVersion(w io.Writer) {
	fmt.Fprintf(w, "farmlint version %s\n", Version)
}

// Version identifies the analyzer suite for the go command's cache.
// Bump it whenever an analyzer's behavior changes, or stale clean
// results may be served from the vet action cache. 2.0.0 is the
// fact-exporting suite: the .vetx payload format is keyed on this
// string too, so older cached facts read as empty rather than lying.
const Version = "2.0.0"

// PrintFlags implements the -flags handshake: the JSON list of
// analyzer flags this tool accepts (none — the suite is not
// configurable from the vet command line).
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}
