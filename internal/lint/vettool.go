package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
)

// This file implements the `go vet -vettool` driver protocol (the same
// wire protocol golang.org/x/tools/go/analysis/unitchecker speaks),
// from scratch on the standard library, so farmlint plugs into
// `go vet -vettool=$(bin)/farmlint ./...` without any module downloads:
//
//   - `farmlint -V=full` prints a version line the go command hashes
//     into its action cache key;
//   - `farmlint -flags` prints the JSON list of analyzer flags (none);
//   - `farmlint <unit>.cfg` analyzes one package unit described by the
//     JSON config the go command writes, prints findings in
//     file:line:col form, writes the (empty — farmlint is fact-free)
//     .vetx facts file, and exits 2 when there are findings.

// vetConfig mirrors the JSON the go command hands a vet tool for each
// package unit. Unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetConfig reports whether arg names a unit-checker config file.
func IsVetConfig(arg string) bool { return filepath.Ext(arg) == ".cfg" }

// RunVetUnit analyzes one `go vet` package unit. It returns the exit
// code the tool should finish with: 0 (clean), 1 (tool error, message on
// stderr), or 2 (findings printed to stderr).
func RunVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "farmlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "farmlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Always write the facts file first: the go command caches it as the
	// action's output even for fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "farmlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	// Resolve each source-level import path through the unit's ImportMap
	// (vendoring, test variants) before consulting the export data files
	// the go command compiled for this unit's dependencies.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for from, to := range cfg.ImportMap { //farm:orderinvariant keyed writes, one per source path
		if f, ok := cfg.PackageFile[to]; ok {
			exports[from] = f
		}
	}
	imp := newExportImporter(fset, exports)

	pkg, err := typecheckFiles(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "farmlint: %v\n", err)
		return 1
	}
	diags, err := RunAnalyzers(pkg, Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "farmlint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	return 2
}

// PrintVersion implements the -V=full handshake: the go command hashes
// this line into its action-cache key, so it must change when the tool's
// behavior does.
func PrintVersion(w io.Writer) {
	fmt.Fprintf(w, "farmlint version %s\n", Version)
}

// Version identifies the analyzer suite for the go command's cache.
// Bump it whenever an analyzer's behavior changes, or stale clean
// results may be served from the vet action cache.
const Version = "1.0.0"

// PrintFlags implements the -flags handshake: the JSON list of
// analyzer flags this tool accepts (none — the suite is not
// configurable from the vet command line).
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}
