// Package lint is farmlint: a repo-specific static-analysis suite that
// mechanically enforces the simulator's determinism, hot-path, and
// validation invariants. Every result of the paper's evaluation rests on
// the Monte Carlo being a pure function of its seed; earlier PRs defend
// that property dynamically (golden transcripts, byte-identity tests,
// AllocsPerRun gates). farmlint turns the same contracts into law the
// compiler toolchain checks on every build:
//
//   - nodeterm: no wall-clock reads, no global randomness, no
//     order-dependent map iteration in simulator packages
//     (annotate intentional exceptions with //farm:orderinvariant or
//     //farm:wallclock);
//   - hotpath: functions annotated //farm:hotpath must stay structurally
//     allocation-free (no fmt/errors calls, closures, map/chan makes,
//     non-self appends, defers);
//   - floatvalid: every exported float64/time.Duration field on a
//     Config/Policy struct in core, faults, and recovery must be
//     referenced by that package's Validate function;
//   - tracekind: trace.Kind constants are unique, declared only in
//     internal/trace, and emitted only via declared constants — never
//     inline string literals;
//   - metricname: obs.Name constants are unique snake_case [a-z_]+
//     strings declared only in internal/obs, and metrics register only
//     via declared constants — never inline name strings;
//   - seqtie: every container/heap element ordering must tie-break on an
//     explicit sequence number, so simultaneous events pop in a
//     deterministic order.
//
// The v2 analyzers are cross-package: each package exports *facts*
// (see facts.go) that flow along import edges, so contracts spanning
// the whole module are checked mechanically:
//
//   - rngsalt: every XOR-derived RNG stream seed uses a named
//     *Salt/*Seed package constant — no inline magic salts — and no two
//     packages in an import closure share a salt value;
//   - unitcheck: quantities named by the repo's unit suffixes (*Hours,
//     *Ms, *MBps, *Bytes, *Ratio, *PerHour) are never added, compared,
//     or assigned across units, and cross-unit multiply/divide must be
//     a recognized conversion (annotate exceptions //farm:unitless);
//   - configflow: every exported field of a Config/Policy struct in
//     core/faults/recovery/topology/workload is validated (numeric
//     fields referenced by Validate; //farm:anyvalue exempts) and read
//     outside Validate somewhere in the simulator's import closure
//     (//farm:reserved exempts) — the dead-knob detector;
//   - kindflow: every trace.Kind constant carries a CheckCausality rule
//     or //farm:nocausality, and is actually used outside internal/trace
//     somewhere in the simulator — the dead-kind detector.
//
// The suite is framework-compatible in spirit with
// golang.org/x/tools/go/analysis but deliberately depends only on the
// standard library (go/ast, go/types, go/importer), so the repo builds
// offline with no module downloads. cmd/farmlint is the driver: it runs
// standalone over package patterns and also speaks the `go vet -vettool`
// unitchecker protocol.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer (stdlib-only).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fixtures.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run inspects one type-checked package and reports diagnostics
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// DepFacts maps each dependency import path (transitively) to the
	// FactSet its analyzers exported. Nil when the package has no
	// in-module dependencies.
	DepFacts map[string]FactSet

	// exported collects the facts this package's analyzers export; the
	// driver shares one set across the whole suite for the package.
	exported FactSet

	// ann is the lazily built //farm:* annotation index for the package.
	ann *annotations

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a *_test.go file. The
// determinism and hot-path contracts bind the simulator binary, not its
// tests (benchmarks legitimately read the wall clock; table tests walk
// maps), so every analyzer skips test files.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzers returns the full farmlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterm,
		HotPath,
		FloatValid,
		TraceKind,
		MetricName,
		SeqTie,
		RngSalt,
		UnitCheck,
		ConfigFlow,
		KindFlow,
	}
}

// RunAnalyzers applies every analyzer in the suite to one loaded
// package, with deps carrying the facts of its (transitive) in-module
// dependencies, and returns the findings sorted by position plus the
// FactSet the package's analyzers exported.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, deps map[string]FactSet) ([]Diagnostic, FactSet, error) {
	var out []Diagnostic
	exported := make(FactSet)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			DepFacts:  deps,
			exported:  exported,
			report:    func(d Diagnostic) { out = append(out, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sortDiagnostics(out)
	return out, exported, nil
}

// sortDiagnostics orders findings by position, then analyzer name.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupeDiagnostics removes exact duplicates from a sorted slice.
// Cross-package analyzers report a collision between two dependencies
// from every package that imports both; the finding is one finding.
func dedupeDiagnostics(in []Diagnostic) []Diagnostic {
	out := in[:0]
	for i, d := range in {
		if i > 0 && d == in[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// pkgPathBase returns the last segment of an import path, with any
// " [test-variant]" suffix the go command appends stripped first.
func pkgPathBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// cleanPkgPath strips the " [test-variant]" suffix from an import path.
func cleanPkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}
