package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// KindFlow closes the loop tracekind opens. tracekind proves the Kind
// vocabulary is declared only in internal/trace and collision-free;
// kindflow proves the vocabulary is *alive*:
//
//   - locally, in internal/trace: every declared Kind constant must be
//     referenced by CheckCausality — the ordering contract is the whole
//     reason kinds exist as a closed vocabulary — or carry an explicit
//     //farm:nocausality <why> stating it is a pure marker with no
//     ordering semantics. A kind silently absent from CheckCausality is
//     an invariant nobody is checking;
//   - via facts: internal/trace exports its declared kinds, every other
//     package exports the kinds it references, and a //farm:factsink
//     package (one whose import closure spans the full simulator)
//     reports any declared kind no simulator code ever emits — a dead
//     vocabulary entry that transcript tooling and analysis scripts
//     will wait on forever. //farm:reserved <why> on the declaration
//     exempts a deliberately forward-declared kind.
var KindFlow = &Analyzer{
	Name: "kindflow",
	Doc:  "every trace.Kind is emitted somewhere in the simulator and has a CheckCausality rule or //farm:nocausality",
	Run:  runKindFlow,
}

// kindFlowFact is the package fact: internal/trace exports Declared;
// every other package exports the kind constants it Uses.
type kindFlowFact struct {
	Declared []kindDecl `json:"declared,omitempty"`
	Uses     []string   `json:"uses,omitempty"`
}

type kindDecl struct {
	Name string `json:"name"`
	File string `json:"file"`
	Line int    `json:"line"`
	// Reserved exempts the declaration from the must-be-emitted check.
	Reserved bool `json:"reserved,omitempty"`
}

func runKindFlow(pass *Pass) error {
	fact := kindFlowFact{}
	if isTracePkg(pass.Pkg.Path()) {
		fact.Declared = pass.auditKindDecls()
	} else {
		fact.Uses = pass.collectKindUses()
	}
	if len(fact.Declared) > 0 || len(fact.Uses) > 0 {
		pass.ExportFact(fact)
	}
	if pass.packageHasDirective(dirFactSink) {
		pass.reportDeadKinds(fact)
	}
	return nil
}

// auditKindDecls runs the declaration-side check inside internal/trace:
// each Kind constant must appear in CheckCausality's body or carry
// //farm:nocausality. Returns the declared-kind fact records.
func (p *Pass) auditKindDecls() []kindDecl {
	// The set of Kind constants CheckCausality references.
	causality := make(map[*types.Const]bool)
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "CheckCausality" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if c, ok := p.TypesInfo.Uses[id].(*types.Const); ok && isKindType(c.Type()) {
					causality[c] = true
				}
				return true
			})
		}
	}

	var out []kindDecl
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := p.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isKindType(obj.Type()) {
						continue
					}
					pos := p.Fset.Position(name.Pos())
					_, noCausality := p.directiveAt(pos.Line, pos.Filename, dirNoCausality)
					_, reserved := p.directiveAt(pos.Line, pos.Filename, dirReserved)
					if !causality[obj] && !noCausality {
						p.Reportf(name.Pos(), "%s has no CheckCausality rule: give it an ordering invariant or annotate //farm:nocausality with why it is a pure marker", name.Name)
					}
					out = append(out, kindDecl{Name: name.Name, File: pos.Filename, Line: pos.Line, Reserved: reserved})
				}
			}
		}
	}
	return out
}

// collectKindUses gathers every trace.Kind constant this (non-trace)
// package references in non-test code — its emission vocabulary.
func (p *Pass) collectKindUses() []string {
	used := make(map[string]bool)
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if c, ok := p.TypesInfo.Uses[id].(*types.Const); ok && isKindType(c.Type()) {
				used[c.Name()] = true
			}
			return true
		})
	}
	out := make([]string, 0, len(used))
	for name := range used { //farm:orderinvariant collected into a slice sorted below
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// reportDeadKinds is the sink-side aggregation: union the use sets of the
// whole import closure (plus the sink's own) and report declared kinds
// nothing emits.
func (p *Pass) reportDeadKinds(own kindFlowFact) {
	used := make(map[string]bool)
	var declared []kindDecl
	consume := func(fact kindFlowFact) {
		for _, u := range fact.Uses {
			used[u] = true
		}
		declared = append(declared, fact.Declared...)
	}
	consume(own)
	for _, dep := range p.FactProviders() {
		var fact kindFlowFact
		if p.ImportFact(dep, &fact) {
			consume(fact)
		}
	}
	sort.Slice(declared, func(i, j int) bool { return declared[i].Name < declared[j].Name })
	for _, d := range declared {
		if d.Reserved || used[d.Name] {
			continue
		}
		p.report(Diagnostic{
			Pos:      token.Position{Filename: d.File, Line: d.Line, Column: 1},
			Analyzer: p.Analyzer.Name,
			Message: "dead kind: " + d.Name +
				" is declared but never emitted anywhere in the simulator: emit it, delete it, or annotate //farm:reserved",
		})
	}
}
