package lint

import "testing"

func TestCutDirective(t *testing.T) {
	cases := []struct {
		text, name string
		wantRest   string
		wantOK     bool
	}{
		{"farm:hotpath exercised by the alloc gate", dirHotPath, "exercised by the alloc gate", true},
		{"farm:hotpath", dirHotPath, "", true},
		{"farm:hotpath\tper-step kernel", dirHotPath, "per-step kernel", true},
		{"farm:hotpathological", dirHotPath, "", false},
		{"farm:orderinvariant keys sorted", dirHotPath, "", false},
		{"farm:orderinvariant keys sorted", dirOrderInvariant, "keys sorted", true},
		{"farm:wallclock reporting only", dirWallClock, "reporting only", true},
		{"unrelated comment", dirWallClock, "", false},
	}
	for _, c := range cases {
		rest, ok := cutDirective(c.text, c.name)
		if rest != c.wantRest || ok != c.wantOK {
			t.Errorf("cutDirective(%q, %q) = (%q, %v), want (%q, %v)",
				c.text, c.name, rest, ok, c.wantRest, c.wantOK)
		}
	}
}

func TestPkgPathBase(t *testing.T) {
	cases := []struct{ in, want string }{
		{"repro/internal/trace", "trace"},
		{"repro/internal/core [repro/internal/core.test]", "core"},
		{"core", "core"},
		{"", ""},
	}
	for _, c := range cases {
		if got := pkgPathBase(c.in); got != c.want {
			t.Errorf("pkgPathBase(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestContainsSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"repro/internal/lint/testdata", "lint/", true},
		{"repro/internal/lint", "lint/", false},
		{"repro/examples/demo", "examples/", true},
		{"repro/internal/flint/x", "lint/", false},
	}
	for _, c := range cases {
		if got := containsSegment(c.path, c.seg); got != c.want {
			t.Errorf("containsSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}
