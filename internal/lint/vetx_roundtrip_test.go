package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetxFactRoundTrip proves facts survive the full `go vet -vettool`
// protocol: a two-package module where package a exports its salt
// registry into a .vetx file and package b's unit — whose fact view the
// go command assembles from that file — discovers the cross-package
// collision. The same module is then analyzed by the standalone driver
// (lint.Run), which threads facts in-process, and both paths must agree
// on the finding.
func TestVetxFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool binary and shells out to go vet")
	}

	// The fixture module: b imports a, and both name a salt with the
	// same value, so the collision is only visible to an analyzer whose
	// facts crossed the package boundary.
	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module vetxfix\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "a", "a.go"), `// Package a exports its salt registry as a farmlint fact.
package a

// AlphaSeedSalt isolates a's stream.
const AlphaSeedSalt = 0x5eed

// Seed derives a's stream.
func Seed(run uint64) uint64 { return run ^ AlphaSeedSalt }
`)
	writeFile(t, filepath.Join(mod, "b", "b.go"), `// Package b collides with a's salt; only a's imported fact reveals it.
package b

import "vetxfix/a"

// betaSeedSalt accidentally repeats a.AlphaSeedSalt's value.
const betaSeedSalt = 0x5eed

// Seed derives b's stream on top of a's.
func Seed(run uint64) uint64 { return a.Seed(run) ^ betaSeedSalt }
`)

	// Leg 1: the unitchecker protocol. go vet writes a's .vetx, hands it
	// to b's unit via PackageVetx, and the tool must exit 2 with the
	// collision on stderr.
	bin := filepath.Join(t.TempDir(), "farmlint")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/farmlint")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building farmlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded; want the cross-package collision\n%s", out)
	}
	if !strings.Contains(string(out), "collides with vetxfix/a.AlphaSeedSalt") {
		t.Fatalf("go vet -vettool output missing the collision finding:\n%s", out)
	}

	// Leg 2: the standalone driver over the same module must reach the
	// identical conclusion with its in-process fact threading.
	diags, err := Run(mod, "./...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	var collisions []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "rngsalt" && strings.Contains(d.Message, "collides with vetxfix/a.AlphaSeedSalt") {
			collisions = append(collisions, d)
		}
	}
	if len(collisions) != 1 {
		t.Fatalf("standalone driver: want exactly one collision finding, got %d in:\n%v", len(collisions), diags)
	}
	if base := filepath.Base(collisions[0].Pos.Filename); base != "b.go" {
		t.Errorf("collision reported in %s; want b.go (the lexicographically-last declaration)", base)
	}
}

// writeFile creates path (and parents) with contents.
func writeFile(t *testing.T, path, contents string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(contents), 0o666); err != nil {
		t.Fatal(err)
	}
}

// repoRoot resolves the module root from the test's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
