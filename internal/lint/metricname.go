package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// MetricName enforces the metric vocabulary contract, the static twin of
// obs.checkName's registration-time panic. Exposition consumers
// (farmstat, Prometheus scrapes, the campaign merge) key on obs.Name
// values, so the catalogue must be closed, collision-free, and uniformly
// snake_case:
//
//   - every Name constant is declared in internal/obs, matches [a-z_]+,
//     and no two declared names share a string value;
//   - code outside internal/obs never materializes a Name from an inline
//     string — neither by implicit conversion (r.Counter("oops")) nor by
//     explicit conversion (obs.Name("oops")) — it must name a declared
//     constant, so adding a metric forces a catalogue entry the
//     exposition tooling can see.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs.Name values are unique [a-z_]+ constants declared in internal/obs; no inline metric names elsewhere",
	Run:  runMetricName,
}

// isObsPkg matches the obs package itself (and fixture stand-ins named
// obs).
func isObsPkg(path string) bool {
	return pkgPathBase(path) == "obs"
}

func runMetricName(pass *Pass) error {
	if isObsPkg(pass.Pkg.Path()) {
		return runMetricNameDecls(pass)
	}
	return runMetricNameUses(pass)
}

// validMetricName reports whether s is non-empty snake_case [a-z_]+,
// mirroring obs.checkName.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '_' && (c < 'a' || c > 'z') {
			return false
		}
	}
	return true
}

// runMetricNameDecls checks the declaration site: Name constants must be
// well-formed and collision-free.
func runMetricNameDecls(pass *Pass) error {
	seen := make(map[string]string) // string value -> first constant name
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isMetricNameType(obj.Type()) {
						continue
					}
					if obj.Val().Kind() != constant.String {
						continue
					}
					val := constant.StringVal(obj.Val())
					if !validMetricName(val) {
						pass.Reportf(name.Pos(), "metric name %q is not snake_case [a-z_]+", val)
					}
					if first, dup := seen[val]; dup {
						pass.Reportf(name.Pos(), "metric name %q collides with %s: declared names must be unique strings", val, first)
						continue
					}
					seen[val] = name.Name
				}
			}
		}
	}
	return nil
}

// runMetricNameUses checks every other package: no inline Name strings,
// and no Name constants declared outside internal/obs.
func runMetricNameUses(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				// An untyped string literal adopting the Name type is an
				// implicit conversion: r.Counter("oops"), n == "oops", etc.
				if tv, ok := pass.TypesInfo.Types[n]; ok && isMetricNameType(tv.Type) {
					pass.Reportf(n.Pos(), "inline metric name %s: use a constant declared in internal/obs so the exposition catalogue stays closed", n.Value)
				}
			case *ast.CallExpr:
				// Explicit conversion obs.Name(x).
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && isMetricNameType(tv.Type) {
					pass.Reportf(n.Pos(), "conversion to obs.Name outside internal/obs: use a declared catalogue constant instead")
					return false // don't double-report a literal argument
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Const); ok && isMetricNameType(obj.Type()) {
						pass.Reportf(name.Pos(), "obs.Name constant %s declared outside internal/obs: add it to the catalogue instead", name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isMetricNameType reports whether t is the obs package's Name type.
func isMetricNameType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Name" && obj.Pkg() != nil && isObsPkg(obj.Pkg().Path())
}
