package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoClean is the meta-test behind scripts/lint.sh: the full farmlint
// suite — all ten analyzers, facts threaded across packages — must run
// clean over every package of the module. Any new wall-clock read,
// global-randomness import, order-dependent map walk, allocating
// hot-path construct, unvalidated config float or integer, inline trace
// kind, tie-break-free heap, inline or colliding RNG salt, cross-unit
// arithmetic, dead config knob, or dead/uncovered trace kind anywhere
// in the repo fails this test.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint loads and type-checks every package; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, "./...")
	if err != nil {
		t.Fatalf("farmlint run over ./...: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("farmlint found %d violation(s); fix them or annotate with a justified //farm:* directive", len(diags))
	}
}
