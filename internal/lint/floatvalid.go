package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FloatValid enforces the validation contract on configuration structs: a
// NaN or ±Inf smuggled into a sweep config sails through `< 0`
// comparisons and silently poisons six simulated years of arithmetic (the
// class of bug PR 3 fixed by hand). In the core, faults, and recovery
// packages, every exported float64 or time.Duration field of an exported
// Config/Policy struct must be referenced by that package's
// Validate/validate function — the mechanical proxy for "someone range-
// and finiteness-checks this number before a run starts".
var FloatValid = &Analyzer{
	Name: "floatvalid",
	Doc:  "every exported float field on a Config/Policy struct must be referenced by Validate",
	Run:  runFloatValid,
}

// floatValidPkgs are the package-path base names carrying validated
// config structs.
var floatValidPkgs = map[string]bool{"core": true, "faults": true, "recovery": true, "topology": true, "workload": true}

func runFloatValid(pass *Pass) error {
	if !floatValidPkgs[pkgPathBase(pass.Pkg.Path())] {
		return nil
	}

	// Pass 1: every struct field referenced inside a Validate/validate
	// function or method anywhere in the package.
	validated := make(map[*types.Var]bool)
	sawValidate := false
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if name := fd.Name.Name; name != "Validate" && name != "validate" {
				continue
			}
			sawValidate = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
					if v, ok := s.Obj().(*types.Var); ok {
						validated[v] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: audit the config structs.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !isConfigStructName(ts.Name.Name) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				pass.auditConfigStruct(ts.Name.Name, st, validated, sawValidate)
			}
		}
	}
	return nil
}

// isConfigStructName matches the exported configuration types the
// contract covers.
func isConfigStructName(name string) bool {
	if !ast.IsExported(name) {
		return false
	}
	return name == "Config" || strings.HasSuffix(name, "Config") || strings.HasSuffix(name, "Policy")
}

func (p *Pass) auditConfigStruct(typeName string, st *ast.StructType, validated map[*types.Var]bool, sawValidate bool) {
	for _, field := range st.Fields.List {
		if !p.isValidatableFieldType(field.Type) {
			continue
		}
		for _, name := range field.Names {
			if !ast.IsExported(name.Name) {
				continue
			}
			obj, ok := p.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if !sawValidate {
				p.Reportf(name.Pos(), "%s.%s is a float field but package %s has no Validate function to check it", typeName, name.Name, p.Pkg.Name())
				continue
			}
			if !validated[obj] {
				p.Reportf(name.Pos(), "%s.%s (%s) is never referenced by Validate: NaN/Inf or out-of-range values will reach the simulation", typeName, name.Name, types.ExprString(field.Type))
			}
		}
	}
}

// isValidatableFieldType matches float64 (or a named alias of it) and
// time.Duration.
func (p *Pass) isValidatableFieldType(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
			return true
		}
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind() == types.Float64 || b.Kind() == types.Float32
	}
	return false
}
