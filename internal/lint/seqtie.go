package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeqTie enforces deterministic heap ordering. The simulator's event
// queue is a binary heap; when two events carry the same timestamp, the
// pop order of a heap compared on time alone is an artifact of insertion
// and sift history — legal for container/heap, fatal for reproducibility.
// Every type that implements container/heap.Interface must therefore
//
//   - carry a sequence-number field (name matching seq*/Seq*) on its
//     element type, and
//   - reference that field in its Less method (the explicit tie-break:
//     equal times fall back to scheduling order).
//
// The same contract binds implicit heaps, which replace container/heap
// with inline sift loops over a concrete entry slice: their comparator is
// a plain two-argument less function (func(a, b entry) bool). Any
// package-level function whose name contains "less" comparing two values
// of a struct type that carries a sequence field must reference that
// field — dropping the tie-break while rewriting a heap from
// container/heap to an implicit array is exactly the regression this
// analyzer exists to stop.
var SeqTie = &Analyzer{
	Name: "seqtie",
	Doc:  "heap comparators must tie-break on an explicit sequence number",
	Run:  runSeqTie,
}

func runSeqTie(pass *Pass) error {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !implementsHeapInterface(named) {
			continue
		}
		less := findMethod(named, "Less")
		if less == nil {
			continue // interface embedding etc.; nothing to inspect
		}
		fd := pass.funcDeclOf(less)
		if fd == nil || fd.Body == nil || pass.InTestFile(fd.Pos()) {
			continue
		}
		elem := heapElemStruct(named)
		if elem == nil {
			// Cannot see through to a struct element (e.g. heap of ints);
			// a bare ordinal heap cannot tie-break, which is exactly the
			// hazard this analyzer exists to surface.
			pass.Reportf(fd.Pos(), "heap %s has no struct element carrying a sequence number: simultaneous entries pop in sift order, not scheduling order", name)
			continue
		}
		seq := seqFieldOf(elem)
		if seq == nil {
			pass.Reportf(fd.Pos(), "heap %s's element type %s has no sequence field (name starting with 'seq'): add one and tie-break on it in Less", name, elem.String())
			continue
		}
		if !pass.bodyReferencesField(fd.Body, seq) {
			pass.Reportf(fd.Pos(), "heap %s's Less does not tie-break on %s: events at equal times will pop in nondeterministic sift order", name, seq.Name())
		}
	}
	return runSeqTieComparators(pass)
}

// runSeqTieComparators covers the implicit-heap shape: standalone
// comparator functions over a seq-bearing struct.
func runSeqTieComparators(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			if !strings.Contains(strings.ToLower(fd.Name.Name), "less") {
				continue
			}
			def, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := def.Type().(*types.Signature)
			if !ok {
				continue
			}
			elem := comparatorElemStruct(sig)
			if elem == nil {
				continue
			}
			seq := seqFieldOf(elem)
			if seq == nil {
				// A struct with no sequence field may legitimately be
				// sorted on other keys; only seq-bearing entries are bound
				// to the determinism contract.
				continue
			}
			if !pass.bodyReferencesField(fd.Body, seq) {
				pass.Reportf(fd.Pos(), "comparator %s does not tie-break on %s: entries at equal times will pop in nondeterministic sift order", fd.Name.Name, seq.Name())
			}
		}
	}
	return nil
}

// comparatorElemStruct recognizes the implicit-heap comparator shape —
// func(a, b T) bool with both parameters the same struct type (possibly
// through a pointer) — and returns T's struct type, or nil.
func comparatorElemStruct(sig *types.Signature) *types.Struct {
	if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return nil
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return nil
	}
	a, b := sig.Params().At(0).Type(), sig.Params().At(1).Type()
	if !types.Identical(a, b) {
		return nil
	}
	if p, ok := a.Underlying().(*types.Pointer); ok {
		a = p.Elem()
	}
	st, ok := a.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// implementsHeapInterface reports whether T or *T provides the five
// container/heap.Interface methods with plausible signatures.
func implementsHeapInterface(named *types.Named) bool {
	need := map[string]bool{"Len": false, "Less": false, "Swap": false, "Push": false, "Pop": false}
	for mset := range need {
		m := findMethod(named, mset)
		if m == nil {
			return false
		}
		need[mset] = true
	}
	// Shape checks on the two distinguishing methods so plain
	// sort.Interface implementations (Len/Less/Swap only) and unrelated
	// Push/Pop APIs don't match: heap.Push takes a single any parameter,
	// heap.Pop returns a single any.
	push := findMethod(named, "Push")
	pop := findMethod(named, "Pop")
	psig, ok := push.Type().(*types.Signature)
	if !ok || psig.Params().Len() != 1 || !isEmptyInterface(psig.Params().At(0).Type()) {
		return false
	}
	osig, ok := pop.Type().(*types.Signature)
	if !ok || osig.Results().Len() != 1 || !isEmptyInterface(osig.Results().At(0).Type()) {
		return false
	}
	return true
}

func isEmptyInterface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.NumMethods() == 0
}

// findMethod returns the declared method name on T or *T.
func findMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// heapElemStruct digs the struct type a heap orders: for a heap declared
// as []E or []*E it returns E's struct type.
func heapElemStruct(named *types.Named) *types.Struct {
	sl, ok := named.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	t := sl.Elem()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// seqFieldOf returns the element's sequence-number field, matching any
// field whose name starts with "seq" case-insensitively and whose type is
// an integer.
func seqFieldOf(st *types.Struct) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !strings.HasPrefix(strings.ToLower(f.Name()), "seq") {
			continue
		}
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return f
		}
	}
	return nil
}

// funcDeclOf finds the AST declaration of a method.
func (p *Pass) funcDeclOf(fn *types.Func) *ast.FuncDecl {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if def, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok && def == fn {
				return fd
			}
		}
	}
	return nil
}

// bodyReferencesField reports whether the body selects the given struct
// field.
func (p *Pass) bodyReferencesField(body *ast.BlockStmt, field *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := p.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal && s.Obj() == field {
			found = true
		}
		return !found
	})
	return found
}
