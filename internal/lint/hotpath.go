package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// HotPath makes the PR-1 zero-alloc guarantee structural. Functions whose
// doc comment carries //farm:hotpath (the engine step, placement lookup,
// GF(256) kernels, FailDisk — the paths gated today by AllocsPerRun
// tests) must not contain constructs that allocate or capture:
//
//   - calls into fmt or errors (Sprintf/Errorf/New all allocate; hot
//     paths return sentinel errors declared at package level);
//   - function literals (closure capture heap-allocates the environment);
//   - defer and go statements;
//   - make of a map or channel, or map/chan composite literals;
//   - append whose destination is not the slice being appended to
//     (x = append(x, ...) reuses a preallocated buffer and amortizes;
//     y := append(x, ...) builds a fresh escaping slice);
//   - calls into container/heap, and the import itself in any file that
//     declares hot functions (heap.Push/Pop box every element through
//     interface{}; the kernel uses an inline implicit heap of concrete
//     entries instead);
//   - passing a concrete value where the callee takes an empty interface
//     (the conversion boxes: one heap allocation per call for any value
//     that doesn't fit an interface word).
//
// The benchmark gates remain the ground truth for allocation counts;
// this analyzer stops regressions from being written in the first place.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //farm:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		hot := false
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, dirHotPath) {
				continue
			}
			hot = true
			pass.checkHotFunc(fd)
		}
		if !hot {
			continue
		}
		// The import ban is per-file: a file declaring hot functions has no
		// business depending on container/heap at all — the temptation to
		// "just heap.Fix this one path" is exactly the regression the arena
		// kernel removed.
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "container/heap" {
				pass.Reportf(imp.Pos(), "file declares //farm:hotpath functions but imports container/heap (boxes every element through interface{}); use an inline implicit heap over concrete entries")
			}
		}
	}
	return nil
}

// allocPkgs are packages whose every call allocates on the way out.
var allocPkgs = map[string]string{
	"fmt":            "formats into a fresh string/interface",
	"errors":         "allocates a new error; declare sentinel errors at package level",
	"container/heap": "boxes every element through interface{}; use an inline implicit heap",
}

func (p *Pass) checkHotFunc(fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// A panic argument is a crash path, not a hot path:
			// `panic(fmt.Sprintf(...))` on a corruption check never runs
			// in a healthy simulation, so its formatting is exempt.
			if fun, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
			p.checkHotCall(name, n)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "hot path %s captures a closure (heap-allocates its environment)", name)
			return false
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "hot path %s defers (allocates a defer record on some paths)", name)
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "hot path %s starts a goroutine", name)
		case *ast.CompositeLit:
			if p.isMapOrChan(p.typeOf(n)) {
				p.Reportf(n.Pos(), "hot path %s builds a map/chan literal (allocates)", name)
			}
		case *ast.AssignStmt:
			p.checkHotAppend(name, n)
		}
		return true
	})
}

func (p *Pass) checkHotCall(name string, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj := p.TypesInfo.Uses[fun.Sel]
		if obj != nil && obj.Pkg() != nil {
			if why, bad := allocPkgs[obj.Pkg().Path()]; bad {
				p.Reportf(call.Pos(), "hot path %s calls %s.%s (%s)", name, obj.Pkg().Name(), fun.Sel.Name, why)
				return // the call is already condemned; boxing into it is moot
			}
		}
	case *ast.Ident:
		if obj, ok := p.TypesInfo.Uses[fun].(*types.Builtin); ok {
			if obj.Name() == "make" && len(call.Args) > 0 && p.isMapOrChan(p.typeOf(call.Args[0])) {
				p.Reportf(call.Pos(), "hot path %s makes a map/chan (always allocates)", name)
			}
			return // no other builtin boxes its arguments
		}
	}
	p.checkHotBoxing(name, call)
}

// checkHotBoxing flags arguments that box: a concrete value passed where
// the callee declares an empty-interface parameter is converted to an
// interface at the call site, which heap-allocates for anything wider
// than a pointer word. Interface-typed arguments pass through unboxed and
// untyped nil converts for free; both are exempt.
func (p *Pass) checkHotBoxing(name string, call *ast.CallExpr) {
	sig := p.callSignature(call)
	if sig == nil || call.Ellipsis.IsValid() {
		return // conversion, builtin, or slice-forwarding call
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !isEmptyInterface(param) {
			continue
		}
		at := p.typeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue
		}
		p.Reportf(arg.Pos(), "hot path %s boxes %s into an interface{} argument (allocates per call); take a concrete parameter type", name, at.String())
	}
}

// callSignature resolves the signature of a call's callee, or nil for
// type conversions and builtins.
func (p *Pass) callSignature(call *ast.CallExpr) *types.Signature {
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok {
		if tv.IsType() {
			return nil
		}
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.TypesInfo.Uses[fun.Sel]
	}
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// checkHotAppend flags appends whose destination differs from the slice
// appended to: `y := append(x, ...)` or `s.out = append(s.buf, ...)`
// grows a fresh escaping slice, while the reuse idiom
// `x = append(x, ...)` (or `x = append(x[:0], ...)`) amortizes into a
// preallocated buffer.
func (p *Pass) checkHotAppend(name string, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := p.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		dst := types.ExprString(as.Lhs[i])
		src := call.Args[0]
		if se, ok := src.(*ast.SliceExpr); ok {
			src = se.X // append(x[:0], ...) reuses x's backing array
		}
		if types.ExprString(src) != dst {
			p.Reportf(call.Pos(), "hot path %s appends into a different slice (%s -> %s): fresh backing array escapes; reuse the destination buffer", name, types.ExprString(src), dst)
		}
	}
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (p *Pass) isMapOrChan(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Chan:
		return true
	}
	return false
}
