package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// UnitCheck is shallow dimensional analysis driven by the repo's naming
// convention. The simulator threads hours, milliseconds, MB/s, bytes,
// and dimensionless ratios through the same float64/int64 types; the
// only machine-visible record of a quantity's unit is its name suffix
// (*Hours, *Ms, *MBps, *Bytes, *Ratio, *PerHour). Rashmi et al.'s
// warehouse study (PAPERS.md) is the cautionary tale: one mis-accounted
// bandwidth term invalidates a whole repair-traffic evaluation, and a
// `windowMs + detectHours` compiles without complaint.
//
// The analyzer assigns a unit to every named quantity (field, local,
// parameter, constant — through parentheses, unary sign, and numeric
// conversions, but deliberately not through arithmetic) and checks:
//
//   - add/subtract/compare (including += / -= and plain assignment):
//     both sides' units, when known, must agree;
//   - multiply: cross-unit products must be recognized conversions
//     (rate × time: PerHour × Hours; scaling: Ratio × anything);
//   - divide: same unit (a ratio) is fine; de-scaling by a Ratio is
//     fine; anything else cross-unit must go through a named helper
//     (disk.RebuildHours, not ad-hoc `bytes / mbps` with loose 1e6s);
//   - calls: an argument with a known unit must match the unit named by
//     the parameter it binds to.
//
// Deliberate dimension changes annotate the line with
// //farm:unitless <why>.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "unit-suffixed quantities (*Hours, *Ms, *MBps, *Bytes, *Ratio, *PerHour) never mix across units",
	Run:  runUnitCheck,
}

// unitSuffixes in match order: longer suffixes first so PerHour wins
// over Hours.
var unitSuffixes = []string{"PerHour", "Hours", "MBps", "Bytes", "Ratio", "Ms"}

// unitOfName maps an identifier to its declared unit, or "". A suffix
// matches on a word boundary — camelCase (GroupBytes, windowMs,
// p99Hours) or the end of an acronym (MTTFHours) — or as the whole
// lowercased name (bytes, mbps, hours, ms, ratio — the convention for
// short parameter names). The two-letter "Ms" suffix only matches after
// a lowercase/digit boundary: after an uppercase rune it is far more
// likely a plural acronym (VMs) than milliseconds.
func unitOfName(name string) string {
	for _, suf := range unitSuffixes {
		if name == strings.ToLower(suf) {
			return suf
		}
		if len(name) > len(suf) && strings.HasSuffix(name, suf) {
			prev := rune(name[len(name)-len(suf)-1])
			if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && len(suf) > 2) {
				return suf
			}
		}
	}
	return ""
}

func runUnitCheck(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				pass.checkUnitBinary(n)
			case *ast.AssignStmt:
				pass.checkUnitAssign(n)
			case *ast.CallExpr:
				pass.checkUnitCall(n)
			case *ast.KeyValueExpr:
				pass.checkUnitKeyValue(n)
			}
			return true
		})
	}
	return nil
}

// unitOf derives the unit of an expression from the name of the
// variable, field, or constant it denotes. Propagation is deliberately
// shallow — arithmetic results have no inferred unit — so every finding
// points at a direct cross-unit use of two named quantities.
func (p *Pass) unitOf(e ast.Expr) string {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return p.unitOfObject(e)
	case *ast.SelectorExpr:
		return p.unitOfObject(e.Sel)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return p.unitOf(e.X)
		}
	case *ast.CallExpr:
		// A numeric conversion keeps the unit: float64(groupBytes) is
		// still bytes.
		if tv, ok := p.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return p.unitOf(e.Args[0])
		}
	case *ast.BinaryExpr:
		// Scaling by a bare compile-time number keeps the dimension
		// family: MTTFHours*3600 is still time, PendingBytes/1e6 is
		// still data. (The factor may change the *scale* — hours to
		// seconds — which is exactly why mixing the result with another
		// family must go through a named conversion helper.)
		if e.Op == token.MUL {
			if p.isBareConst(e.Y) {
				return p.unitOf(e.X)
			}
			if p.isBareConst(e.X) {
				return p.unitOf(e.Y)
			}
		}
		if e.Op == token.QUO && p.isBareConst(e.Y) {
			return p.unitOf(e.X)
		}
	}
	return ""
}

// isBareConst reports whether e is a compile-time constant that is not a
// reference to a unit-suffixed named constant (a bare scale factor).
func (p *Pass) isBareConst(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil && p.unitOf(e) == ""
}

// unitOfObject resolves an identifier to a var/const and maps its name;
// only numeric objects carry units (a struct field that *contains*
// per-unit stats is not itself a quantity).
func (p *Pass) unitOfObject(id *ast.Ident) string {
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.TypesInfo.Defs[id]
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return ""
	}
	if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
		return ""
	}
	return unitOfName(obj.Name())
}

// unitlessAt reports whether the position's line carries //farm:unitless.
func (p *Pass) unitlessAt(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	_, ok := p.directiveAt(position.Line, position.Filename, dirUnitless)
	return ok
}

func (p *Pass) checkUnitBinary(be *ast.BinaryExpr) {
	ux, uy := p.unitOf(be.X), p.unitOf(be.Y)
	if ux == "" || uy == "" || ux == uy {
		return
	}
	switch be.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		if !p.unitlessAt(be.OpPos) {
			p.Reportf(be.OpPos, "mixing units: %s %s %s (%s vs %s): convert explicitly or annotate //farm:unitless",
				exprText(be.X), be.Op, exprText(be.Y), ux, uy)
		}
	case token.MUL:
		if allowedProduct(ux, uy) {
			return
		}
		if !p.unitlessAt(be.OpPos) {
			p.Reportf(be.OpPos, "cross-unit product %s * %s (%s × %s) is not a recognized conversion: use a named helper or annotate //farm:unitless",
				exprText(be.X), exprText(be.Y), ux, uy)
		}
	case token.QUO:
		if uy == "Ratio" {
			return // de-scaling
		}
		if !p.unitlessAt(be.OpPos) {
			p.Reportf(be.OpPos, "cross-unit quotient %s / %s (%s ÷ %s) is not a recognized conversion: use a named helper (e.g. disk.RebuildHours) or annotate //farm:unitless",
				exprText(be.X), exprText(be.Y), ux, uy)
		}
	}
}

// allowedProduct recognizes the conversions the simulator legitimately
// writes inline: scaling by a dimensionless ratio, and rate × time.
func allowedProduct(a, b string) bool {
	if a == "Ratio" || b == "Ratio" {
		return true
	}
	if (a == "PerHour" && b == "Hours") || (a == "Hours" && b == "PerHour") {
		return true
	}
	return false
}

func (p *Pass) checkUnitAssign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple assignment from a call: no per-element pairing
	}
	for i := range as.Lhs {
		ul, ur := p.unitOf(as.Lhs[i]), p.unitOf(as.Rhs[i])
		if ul == "" || ur == "" || ul == ur {
			continue
		}
		if p.unitlessAt(as.TokPos) {
			continue
		}
		p.Reportf(as.TokPos, "assigning %s (%s) to %s (%s): convert explicitly or annotate //farm:unitless",
			exprText(as.Rhs[i]), ur, exprText(as.Lhs[i]), ul)
	}
}

// checkUnitCall matches each argument's unit against the unit named by
// the parameter it binds to, using the callee's declared parameter
// names (available through export data for cross-package calls too).
func (p *Pass) checkUnitCall(call *ast.CallExpr) {
	var fn *types.Func
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = p.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = p.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pu := unitOfName(params.At(pi).Name())
		au := p.unitOf(arg)
		if pu == "" || au == "" || pu == au {
			continue
		}
		if p.unitlessAt(arg.Pos()) {
			continue
		}
		p.Reportf(arg.Pos(), "passing %s (%s) to parameter %s (%s) of %s: convert explicitly or annotate //farm:unitless",
			exprText(arg), au, params.At(pi).Name(), pu, fn.Name())
	}
}

// checkUnitKeyValue matches a keyed struct-literal element's value unit
// against the unit named by the field (Config literals are where most
// quantities cross package boundaries).
func (p *Pass) checkUnitKeyValue(kv *ast.KeyValueExpr) {
	key, ok := kv.Key.(*ast.Ident)
	if !ok {
		return
	}
	if _, isField := p.TypesInfo.Uses[key].(*types.Var); !isField {
		return // map literal with an identifier key, not a struct field
	}
	fu := unitOfName(key.Name)
	vu := p.unitOf(kv.Value)
	if fu == "" || vu == "" || fu == vu {
		return
	}
	if p.unitlessAt(kv.Value.Pos()) {
		return
	}
	p.Reportf(kv.Value.Pos(), "assigning %s (%s) to field %s (%s): convert explicitly or annotate //farm:unitless",
		exprText(kv.Value), vu, key.Name, fu)
}

// exprText renders a compact form of an expression for diagnostics.
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}
