package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// RngSalt enforces the stream-isolation contract behind every
// byte-identity guarantee in the repo. Each subsystem that draws
// randomness derives its own stream by XORing the run seed with a
// private salt (`rng.New(seed ^ demandSeedSalt)`); two subsystems
// sharing a salt value silently share a stream, and enabling one then
// perturbs the other's draws — exactly the class of coupling the golden
// transcripts exist to forbid, and the hardest to spot in review because
// the collision lives in two different packages.
//
//   - locally: every constant operand of a binary XOR in non-test code
//     must be a named package-level constant whose name ends in Salt or
//     Seed — no inline magic numbers (`seed ^ 0xbad5ec70bad5ec70`),
//     which can't be audited for uniqueness at a glance;
//   - locally: no two salt constants in one package share a value;
//   - cross-package (via facts): the salt registries of a package and
//     its whole import closure are pairwise collision-free, so the
//     uniqueness proof spans every pair of packages that can ever run
//     in the same process.
var RngSalt = &Analyzer{
	Name: "rngsalt",
	Doc:  "XOR-derived RNG stream salts are named *Salt/*Seed constants, unique across the import closure",
	Run:  runRngSalt,
}

// saltFact is the package fact: the registry of named salt constants the
// package declares, with declaration positions so collision reports can
// point at both sides.
type saltFact struct {
	Salts []saltDecl `json:"salts"`
}

type saltDecl struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
	File  string `json:"file"`
	Line  int    `json:"line"`
}

// isSaltName matches the naming convention for stream-isolation
// constants: netSeedSalt, demandSeedSalt, degradedReadSalt,
// placementSeedSalt, ...
func isSaltName(name string) bool {
	const salt, seed = "Salt", "Seed"
	for _, suf := range [2]string{salt, seed} {
		if len(name) >= len(suf) && name[len(name)-len(suf):] == suf {
			return true
		}
	}
	return false
}

func runRngSalt(pass *Pass) error {
	// Pass 1: the package's declared salt registry, with the local
	// duplicate-value check.
	var local []saltDecl
	byValue := make(map[uint64]string)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isSaltName(name.Name) {
						continue
					}
					v, ok := saltValue(obj)
					if !ok {
						continue
					}
					pos := pass.Fset.Position(name.Pos())
					if first, dup := byValue[v]; dup {
						pass.Reportf(name.Pos(), "salt %s duplicates the value of %s (%#x): every RNG stream needs its own salt", name.Name, first, v)
						continue
					}
					byValue[v] = name.Name
					local = append(local, saltDecl{Name: name.Name, Value: v, File: pos.Filename, Line: pos.Line})
				}
			}
		}
	}

	// Pass 2: every binary XOR whose operand is a compile-time constant
	// must name a salt constant — inline literals can't be registered.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.XOR {
				return true
			}
			for _, operand := range [2]ast.Expr{be.X, be.Y} {
				pass.checkXorOperand(operand)
			}
			return true
		})
	}

	// Pass 3 (cross-package): my registry against every dependency's,
	// and dependencies pairwise — the importer is the first unit whose
	// view contains both sides of a collision.
	owners := make(map[uint64][]saltOwner)
	for _, d := range local {
		owners[d.Value] = append(owners[d.Value], saltOwner{pkg: cleanPkgPath(pass.Pkg.Path()), decl: d})
	}
	for _, dep := range pass.FactProviders() {
		var fact saltFact
		if !pass.ImportFact(dep, &fact) {
			continue
		}
		for _, d := range fact.Salts {
			owners[d.Value] = append(owners[d.Value], saltOwner{pkg: dep, decl: d})
		}
	}
	values := make([]uint64, 0, len(owners))
	for v := range owners { //farm:orderinvariant keys are sorted before use
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, v := range values {
		os := owners[v]
		if len(os) < 2 {
			continue
		}
		// Report at the lexicographically-last declaration so exactly one
		// deterministic position carries the finding; the message names
		// the other side. (Within-package duplicates already reported.)
		sort.Slice(os, func(i, j int) bool {
			if os[i].pkg != os[j].pkg {
				return os[i].pkg < os[j].pkg
			}
			return os[i].decl.Name < os[j].decl.Name
		})
		a, b := os[len(os)-2], os[len(os)-1]
		if a.pkg == b.pkg {
			continue
		}
		pass.report(Diagnostic{
			Pos:      token.Position{Filename: b.decl.File, Line: b.decl.Line, Column: 1},
			Analyzer: pass.Analyzer.Name,
			Message: fmt.Sprintf("salt %s.%s (%#x) collides with %s.%s: packages sharing a salt share an RNG stream",
				b.pkg, b.decl.Name, v, a.pkg, a.decl.Name),
		})
	}

	if len(local) > 0 {
		pass.ExportFact(saltFact{Salts: local})
	}
	return nil
}

type saltOwner struct {
	pkg  string
	decl saltDecl
}

// checkXorOperand reports a constant XOR operand that is not a reference
// to a named salt constant.
func (p *Pass) checkXorOperand(e ast.Expr) {
	e = unparen(e)
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return // not a compile-time integer constant: a variable seed side
	}
	// A named reference: `seed ^ demandSeedSalt` or `seed ^ pkg.FooSalt`.
	var named *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		named = e
	case *ast.SelectorExpr:
		named = e.Sel
	}
	if named != nil {
		if obj, ok := p.TypesInfo.Uses[named].(*types.Const); ok && isSaltName(obj.Name()) {
			return
		}
		p.Reportf(e.Pos(), "XOR with constant %s: stream salts must be named *Salt/*Seed constants so the registry can prove isolation", named.Name)
		return
	}
	val := tv.Value.ExactString()
	if u, exact := constant.Uint64Val(tv.Value); exact {
		val = fmt.Sprintf("%#x", u) // salts are written in hex; report them that way
	}
	p.Reportf(e.Pos(), "inline RNG salt %s: name it as a package-level *Salt/*Seed constant so the cross-package registry can prove stream isolation", val)
}

// saltValue extracts the constant's value as uint64 (the salt domain).
func saltValue(obj *types.Const) (uint64, bool) {
	v := obj.Val()
	if v.Kind() != constant.Int {
		return 0, false
	}
	if u, ok := constant.Uint64Val(v); ok {
		return u, true
	}
	if i, ok := constant.Int64Val(v); ok {
		return uint64(i), true
	}
	return 0, false
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
