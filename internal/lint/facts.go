package lint

// Facts are how farmlint sees across package boundaries. PR 4's six
// analyzers were package-local: every invariant they enforce can be
// decided from one type-checked package. The v2 analyzers cannot —
// whether two packages salt their RNG streams with the same constant,
// whether a config knob declared in internal/topology is ever read by
// the engine, whether a trace kind is emitted anywhere at all — so each
// analyzer may now export one *package fact*: a small JSON-marshalable
// summary of the package (its salt constants, its config fields, the
// kinds it emits) that flows to every package importing it.
//
// The transport mirrors golang.org/x/tools/go/analysis facts in spirit
// but rides the repo's stdlib-only drivers:
//
//   - under `go vet -vettool`, facts travel in the .vetx files the go
//     command already threads between package units (PackageVetx in,
//     VetxOutput out). Each unit's .vetx holds the merged facts of the
//     unit and its whole import closure, so transitive visibility
//     survives even when the driver only hands us direct dependencies;
//   - under the standalone driver (lint.Run, TestRepoClean), packages
//     are analyzed in dependency order and facts are threaded in
//     memory.
//
// Fact flow follows import edges only: an analyzer that needs a
// whole-program view (configflow's dead-knob check, kindflow's dead-kind
// check) aggregates in a *sink* package — one whose import closure spans
// the full simulator, marked //farm:factsink — rather than pretending
// any single unit can see packages it does not import.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// FactSet maps analyzer name -> that analyzer's JSON-encoded package
// fact, for one package.
type FactSet map[string]json.RawMessage

// vetxPayload is the on-disk .vetx format: the facts of one package unit
// merged with the facts of its entire import closure, keyed by import
// path. Versioned so a toolchain cache serving a stale schema is ignored
// rather than misdecoded (the go command already keys its action cache on
// the -V=full handshake, so this is a second line of defense).
type vetxPayload struct {
	Farmlint string             `json:"farmlint"`
	Packages map[string]FactSet `json:"packages,omitempty"`
}

// encodeFacts serializes the merged fact map of a unit's import closure
// (plus the unit itself) for its VetxOutput file.
func encodeFacts(packages map[string]FactSet) ([]byte, error) {
	return json.Marshal(vetxPayload{Farmlint: Version, Packages: packages})
}

// decodeFactsFile reads one dependency's .vetx. Empty files (the PR 4
// fact-free format) and version mismatches decode to no facts rather
// than an error: a missing fact degrades a cross-package check to a
// local one, which is the correct failure direction for a linter.
func decodeFactsFile(path string) map[string]FactSet {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return nil
	}
	var p vetxPayload
	if err := json.Unmarshal(data, &p); err != nil || p.Farmlint != Version {
		return nil
	}
	return p.Packages
}

// ExportFact records v as this package's fact for the running analyzer.
// At most one fact per (package, analyzer); the last export wins.
func (p *Pass) ExportFact(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Facts are produced by the analyzers themselves from plain
		// structs; a marshal failure is a programming error in the suite.
		panic(fmt.Sprintf("lint: %s: marshal fact: %v", p.Analyzer.Name, err))
	}
	p.exported[p.Analyzer.Name] = data
}

// ImportFact decodes the named dependency's fact for the running
// analyzer into out, reporting whether one was found.
func (p *Pass) ImportFact(pkgPath string, out any) bool {
	fs, ok := p.DepFacts[pkgPath]
	if !ok {
		return false
	}
	raw, ok := fs[p.Analyzer.Name]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// FactProviders returns, sorted, the dependency import paths that
// exported a fact for the running analyzer. Iterating providers in this
// order keeps cross-package diagnostics deterministic.
func (p *Pass) FactProviders() []string {
	var out []string
	for path, fs := range p.DepFacts { //farm:orderinvariant keys are sorted before use
		if _, ok := fs[p.Analyzer.Name]; ok {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}
