package sim

import (
	"testing"

	"repro/internal/rng"
)

// TestCancelDuringRun: events cancelling later events while the engine
// drains must suppress exactly those events.
func TestCancelDuringRun(t *testing.T) {
	e := New()
	var later []Handle
	fired := map[int]bool{}
	for i := 0; i < 10; i++ {
		i := i
		later = append(later, e.Schedule(Time(100+i), "victim", func(Time) {
			fired[i] = true
		}))
	}
	e.Schedule(50, "assassin", func(Time) {
		e.Cancel(later[2])
		e.Cancel(later[7])
	})
	e.Run()
	for i := 0; i < 10; i++ {
		want := i != 2 && i != 7
		if fired[i] != want {
			t.Fatalf("event %d fired=%v, want %v", i, fired[i], want)
		}
	}
}

// TestRunUntilThenContinue: RunUntil can be called repeatedly, events
// scheduled between calls land correctly.
func TestRunUntilThenContinue(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(10, "a", func(Time) { order = append(order, "a") })
	e.RunUntil(20)
	e.Schedule(30, "b", func(Time) { order = append(order, "b") })
	e.RunUntil(40)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 40 {
		t.Fatalf("clock %v", e.Now())
	}
}

// TestHeapStress: tens of thousands of random schedules and cancels keep
// the heap consistent and ordered.
func TestHeapStress(t *testing.T) {
	e := New()
	r := rng.New(77)
	var live []Handle
	const n = 30000
	for i := 0; i < n; i++ {
		at := Time(r.Float64() * 1e6)
		ev := e.Schedule(at, "s", func(Time) {})
		live = append(live, ev)
		if r.Intn(3) == 0 && len(live) > 0 {
			j := r.Intn(len(live))
			e.Cancel(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	prev := Time(-1)
	for e.Len() > 0 {
		// Peek via Step: verify the clock is monotone.
		e.Step()
		if e.Now() < prev {
			t.Fatalf("clock went backwards: %v < %v", e.Now(), prev)
		}
		prev = e.Now()
	}
}

// TestZeroDelayAfter: After(0) fires at the current time, after events
// already queued at that time.
func TestZeroDelayAfter(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(5, "x", func(now Time) {
		e.After(0, "y", func(Time) { order = append(order, 2) })
		order = append(order, 1)
	})
	e.Schedule(5, "z", func(Time) { order = append(order, 3) })
	e.Run()
	// x fires (1), then z (3) was scheduled before y so z precedes y (2).
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("order %v, want [1 3 2]", order)
	}
}
