// Package sim is a small discrete-event simulation kernel: a virtual clock
// and a priority queue of timestamped events with deterministic ordering.
//
// It stands in for the PARSEC simulation library the paper used. The FARM
// simulator only needs sequential discrete-event semantics — schedule,
// cancel, advance — so the kernel is deliberately simple, allocation-light,
// and fully deterministic: events at equal times fire in scheduling order
// (FIFO by sequence number), which keeps every run reproducible.
package sim

import (
	"container/heap"
	"errors"
	"math"
)

// Time is virtual simulation time. The FARM simulator measures it in hours.
type Time float64

// Forever is a time later than any event the simulator schedules.
const Forever = Time(math.MaxFloat64)

// Event is a scheduled callback. The zero Event is invalid; obtain events
// from Engine.Schedule.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	fn    func(now Time)
	label string
}

// Time returns the event's scheduled time.
func (e *Event) Time() Time { return e.at }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued (not fired, not
// cancelled).
func (e *Event) Pending() bool { return e.index >= 0 }

// Engine owns the virtual clock and the event queue. Not safe for
// concurrent use: a simulation run is single-threaded by design, and
// parallelism lives one level up (many independent runs).
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap
	fired uint64
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.queue) }

// ErrPast reports an attempt to schedule an event before the current time.
var ErrPast = errors.New("sim: schedule in the past")

// Schedule enqueues fn to run at time at. It returns the Event, which can
// be cancelled. Scheduling at the current time is allowed (the event fires
// after all earlier-scheduled events at that time). Scheduling in the past
// panics: that is always a simulator bug, not a recoverable condition.
func (e *Engine) Schedule(at Time, label string, fn func(now Time)) *Event {
	if at < e.now {
		panic(ErrPast)
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run delay after the current time.
func (e *Engine) After(delay Time, label string, fn func(now Time)) *Event {
	return e.Schedule(e.now+delay, label, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a harmless no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.fn = nil
	return true
}

// Step fires the single earliest pending event and advances the clock to
// its time. It returns false when the queue is empty.
//
//farm:hotpath the discrete-event engine step, fired once per simulated event
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	fn := ev.fn
	ev.fn = nil
	fn(e.now)
	return true
}

// RunUntil fires events in order until the queue is empty or the next
// event is after deadline. The clock finishes at min(deadline, last event
// time)… precisely: it is left at deadline if the queue drained past it,
// so that callers can read Now() == deadline for an uneventful tail.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// eventHeap orders by (time, seq) so simultaneous events fire in the order
// they were scheduled — the property that keeps runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
