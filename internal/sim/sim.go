// Package sim is a small discrete-event simulation kernel: a virtual clock
// and a priority queue of timestamped events with deterministic ordering.
//
// It stands in for the PARSEC simulation library the paper used. The FARM
// simulator only needs sequential discrete-event semantics — schedule,
// cancel, advance — so the kernel is deliberately simple, allocation-free in
// steady state, and fully deterministic: events at equal times fire in
// scheduling order (FIFO by sequence number), which keeps every run
// reproducible.
//
// Internally the kernel is built for fleet scale. Events live in a chunked
// free-list arena of intrusive slots — no per-event heap object, no
// interface{} boxing — and are addressed by generation-stamped Handles, so
// Cancel and Pending are O(1) generation comparisons. The priority queue is
// a 4-ary implicit heap of 24-byte inline entries ordered by (time, seq);
// cancellation uses lazy deletion (the slot is recycled immediately, the
// stale heap entry is skipped on pop), so a cancel never reshapes the heap.
package sim

import (
	"errors"
	"math"
)

// Time is virtual simulation time. The FARM simulator measures it in hours.
type Time float64

// Forever is a time later than any event the simulator schedules.
const Forever = Time(math.MaxFloat64)

// Handle names a scheduled event. The zero Handle is invalid and names
// nothing: Cancel and Pending on it are harmless no-ops, so callers can use
// the zero value for "no event armed". Handles are only meaningful on the
// Engine that issued them.
type Handle struct {
	idx int32  // arena slot index
	gen uint32 // slot generation at scheduling time; 0 only in the zero Handle
}

// Valid reports whether the handle was issued by Schedule (as opposed to
// the zero value). A valid handle may still refer to an event that has
// already fired or been cancelled; use Engine.Pending for liveness.
func (h Handle) Valid() bool { return h.gen != 0 }

// slot is one arena cell. A slot alternates between queued (holding a live
// event's callback) and free (linked into the free list); its generation
// increments on every release, invalidating outstanding Handles and any
// stale heap entry that still points at it. Slots are 24 bytes: the
// scheduling label is deliberately not stored (it documents call sites;
// at fleet scale a string header per slot would be a third of the arena).
type slot struct {
	at   Time
	fn   func(now Time)
	gen  uint32
	next int32 // free-list link, meaningful only while free
}

// entry is one implicit-heap element: the (time, seq) ordering key plus the
// generation-stamped slot reference. Entries are plain values — comparisons
// never chase a pointer — and may outlive their event (lazy deletion):
// an entry whose generation no longer matches its slot is dead and is
// discarded when it surfaces at the heap top.
type entry struct {
	at  Time
	seq uint64
	idx int32
	gen uint32
}

// entryLess orders heap entries by (time, seq): simultaneous events fire in
// the order they were scheduled — the property that keeps runs
// deterministic. seq is unique per engine, so the order is total.
func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Arena geometry: slots are allocated in fixed chunks so slot addresses
// never move (the chunks slice may grow, but each chunk's backing array is
// immortal for the engine's lifetime).
const (
	chunkBits = 10
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
	// heapSeed is the initial heap capacity: most runs keep well under a
	// few hundred concurrent events, and deeper queues double into place.
	heapSeed = 256
)

// Engine owns the virtual clock and the event queue. Not safe for
// concurrent use: a simulation run is single-threaded by design, and
// parallelism lives one level up (many independent runs).
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	pending int

	chunks [][]slot // slot arena; index idx lives at chunks[idx>>chunkBits][idx&chunkMask]
	free   int32    // head of the free-slot list, -1 when empty
	heap   []entry  // 4-ary implicit min-heap ordered by entryLess
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{free: -1}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Len returns the number of pending events.
func (e *Engine) Len() int { return e.pending }

// ErrPast reports an attempt to schedule an event before the current time.
var ErrPast = errors.New("sim: schedule in the past")

// slotOf returns the arena cell for slot index idx.
//
//farm:hotpath arena slot lookup on every schedule/cancel/step
func (e *Engine) slotOf(idx int32) *slot {
	return &e.chunks[idx>>chunkBits][idx&chunkMask]
}

// alloc pops a free slot, growing the arena by one chunk when the free
// list is empty. Growth is the only allocation in the scheduling path and
// amortizes to zero in steady state: fired and cancelled events recycle
// their slots through the free list.
//
//farm:hotpath slot allocation on every Schedule
func (e *Engine) alloc() int32 {
	if e.free >= 0 {
		idx := e.free
		e.free = e.slotOf(idx).next
		return idx
	}
	c := make([]slot, chunkSize)
	base := int32(len(e.chunks)) << chunkBits
	e.chunks = append(e.chunks, c)
	if e.heap == nil {
		// Pre-size the heap alongside the first chunk so typical queue
		// depths cost one allocation, not a run of append-doublings.
		e.heap = make([]entry, 0, heapSeed)
	}
	// Thread slots [1, chunkSize) onto the free list in ascending order;
	// slot base is handed to the caller. Generations start at 1 so the
	// zero Handle can never match a live slot.
	for i := chunkSize - 1; i >= 1; i-- {
		c[i].gen = 1
		c[i].next = e.free
		e.free = base + int32(i)
	}
	c[0].gen = 1
	return base
}

// release recycles a slot: the generation bump invalidates every Handle
// and heap entry still naming it.
//
//farm:hotpath slot recycling on every fire/cancel
func (e *Engine) release(idx int32, s *slot) {
	s.gen++
	if s.gen == 0 { // 2^32 reuses; keep zero reserved for invalid Handles
		s.gen = 1
	}
	s.fn = nil
	s.next = e.free
	e.free = idx
}

// push inserts an entry into the 4-ary heap (sift-up with a hole, so each
// level costs one copy, not a swap).
//
//farm:hotpath heap insert on every Schedule
func (e *Engine) push(en entry) {
	e.heap = append(e.heap, en)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(en, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = en
}

// popMin removes and returns the least entry. The heap must be non-empty.
//
//farm:hotpath heap pop on every fired or lazily-discarded event
func (e *Engine) popMin() entry {
	h := e.heap
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	e.heap = h
	n := len(h)
	if n > 0 {
		// Sift the displaced last element down from the root, again with
		// a hole: at most one copy per level plus the final store.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			if c+1 < n && entryLess(h[c+1], h[m]) {
				m = c + 1
			}
			if c+2 < n && entryLess(h[c+2], h[m]) {
				m = c + 2
			}
			if c+3 < n && entryLess(h[c+3], h[m]) {
				m = c + 3
			}
			if !entryLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// peek discards dead heap entries (cancelled events) until a live entry
// surfaces, and returns it without removing it. Reports false when the
// queue is empty.
//
//farm:hotpath lazy-deletion purge on every Step/RunUntil head probe
func (e *Engine) peek() (entry, bool) {
	for len(e.heap) > 0 {
		en := e.heap[0]
		if e.slotOf(en.idx).gen == en.gen {
			return en, true
		}
		e.popMin()
	}
	return entry{}, false
}

// Schedule enqueues fn to run at time at. It returns a Handle, which can
// be cancelled. Scheduling at the current time is allowed (the event fires
// after all earlier-scheduled events at that time). Scheduling in the past
// panics: that is always a simulator bug, not a recoverable condition.
//
//farm:hotpath event admission, called once per scheduled event
func (e *Engine) Schedule(at Time, label string, fn func(now Time)) Handle {
	if at < e.now {
		panic(ErrPast)
	}
	idx := e.alloc()
	s := e.slotOf(idx)
	s.at = at
	s.fn = fn
	_ = label // diagnostic only; not stored (see slot)
	seq := e.seq
	e.seq++
	e.push(entry{at: at, seq: seq, idx: idx, gen: s.gen})
	e.pending++
	return Handle{idx: idx, gen: s.gen}
}

// After enqueues fn to run delay after the current time.
func (e *Engine) After(delay Time, label string, fn func(now Time)) Handle {
	return e.Schedule(e.now+delay, label, fn)
}

// Cancel removes a pending event in O(1): the slot is recycled and its
// generation bumped, orphaning the heap entry, which is discarded when it
// reaches the top. Cancelling an already-fired or already-cancelled event
// — or the zero Handle — is a harmless no-op and returns false.
//
//farm:hotpath O(1) generation-bump cancellation
func (e *Engine) Cancel(h Handle) bool {
	if h.gen == 0 {
		return false
	}
	s := e.slotOf(h.idx)
	if s.gen != h.gen {
		return false
	}
	e.release(h.idx, s)
	e.pending--
	return true
}

// Pending reports whether the event named by h is still queued (not fired,
// not cancelled). The zero Handle is never pending.
func (e *Engine) Pending(h Handle) bool {
	return h.gen != 0 && e.slotOf(h.idx).gen == h.gen
}

// EventTime returns the scheduled time of a still-pending event; ok is
// false once the event has fired or been cancelled (diagnostics).
func (e *Engine) EventTime(h Handle) (at Time, ok bool) {
	if !e.Pending(h) {
		return 0, false
	}
	return e.slotOf(h.idx).at, true
}

// Step fires the single earliest pending event and advances the clock to
// its time. It returns false when the queue is empty.
//
//farm:hotpath the discrete-event engine step, fired once per simulated event
func (e *Engine) Step() bool {
	en, ok := e.peek()
	if !ok {
		return false
	}
	e.popMin()
	s := e.slotOf(en.idx)
	e.now = en.at
	e.fired++
	e.pending--
	fn := s.fn
	// Recycle before firing: the callback may schedule into (and is
	// allowed to reuse) this very slot — the generation bump keeps any
	// stale Handle to the fired event inert.
	e.release(en.idx, s)
	fn(e.now)
	return true
}

// RunUntil fires events in order until the queue is empty or the next
// event is after deadline. The clock finishes at min(deadline, last event
// time)… precisely: it is left at deadline if the queue drained past it,
// so that callers can read Now() == deadline for an uneventful tail.
func (e *Engine) RunUntil(deadline Time) {
	for {
		en, ok := e.peek()
		if !ok || en.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
