package sim

import (
	"testing"
)

// FuzzEngine interprets a byte stream as a random schedule / cancel /
// step / run-until program against the event kernel and checks the
// invariants everything above the kernel depends on:
//
//   - events fire in (time, seq) order: never back in time, and FIFO
//     among events scheduled for the same instant;
//   - the clock never runs backwards and matches each fired event's time;
//   - cancelled events never fire, fired events fire exactly once;
//   - Len agrees with the caller's own pending bookkeeping;
//   - handle generations stay consistent (checked implicitly: under the
//     random cancels and slot reuse, a generation bug would revive a
//     stale handle, double-fire, or misfire).
func FuzzEngine(f *testing.F) {
	// Seed corpus: empty, a plain schedule run, same-time FIFO ties,
	// cancel patterns, and interleaved run-until advances.
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 0, 10, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 3}) // all at the same instant
	f.Add([]byte{0, 50, 0, 20, 1, 0, 0, 30, 3})
	f.Add([]byte{0, 5, 2, 10, 0, 5, 1, 0, 2, 255, 3})
	f.Add([]byte{0, 1, 0, 1, 1, 0, 1, 1, 0, 1, 1, 2, 3, 0, 2, 3})
	// Slot-reuse stress: cancel, reschedule into the freed slot, then
	// cancel the stale handle again (must be a no-op on the new tenant).
	f.Add([]byte{0, 10, 2, 0, 0, 10, 2, 0, 0, 10, 2, 1, 3, 255})

	f.Fuzz(func(t *testing.T, program []byte) {
		eng := New()

		type tracked struct {
			ev        Handle
			at        Time
			seq       int // order of scheduling, for FIFO checking
			fired     bool
			cancelled bool
		}
		var all []*tracked
		var pending int

		lastAt := Time(-1)
		lastSeq := -1
		fire := func(tr *tracked) func(now Time) {
			return func(now Time) {
				if tr.fired {
					t.Fatalf("event %d fired twice", tr.seq)
				}
				if tr.cancelled {
					t.Fatalf("cancelled event %d fired", tr.seq)
				}
				tr.fired = true
				pending--
				if now != tr.at {
					t.Fatalf("event %d fired at %v, scheduled for %v", tr.seq, now, tr.at)
				}
				if now != eng.Now() {
					t.Fatalf("callback now %v != engine now %v", now, eng.Now())
				}
				if now < lastAt {
					t.Fatalf("time ran backwards: %v after %v", now, lastAt)
				}
				if now == lastAt && tr.seq < lastSeq {
					t.Fatalf("FIFO violated at t=%v: seq %d after %d", now, tr.seq, lastSeq)
				}
				lastAt, lastSeq = now, tr.seq
			}
		}

		// Interpret the program: opcode byte + operand byte(s).
		for i := 0; i < len(program); i++ {
			switch program[i] % 4 {
			case 0: // schedule at now + delta
				i++
				if i >= len(program) {
					break
				}
				delta := Time(program[i]) / 16
				tr := &tracked{at: eng.Now() + delta, seq: len(all)}
				tr.ev = eng.Schedule(tr.at, "fuzz", fire(tr))
				all = append(all, tr)
				pending++
			case 1: // step
				had := eng.Len() > 0
				if eng.Step() != had {
					t.Fatal("Step return disagreed with Len")
				}
			case 2: // cancel an arbitrary tracked event
				i++
				if i >= len(program) || len(all) == 0 {
					break
				}
				tr := all[int(program[i])%len(all)]
				got := eng.Cancel(tr.ev)
				want := !tr.fired && !tr.cancelled
				if got != want {
					t.Fatalf("Cancel(seq %d) = %v, want %v (fired=%v cancelled=%v)",
						tr.seq, got, want, tr.fired, tr.cancelled)
				}
				if got {
					tr.cancelled = true
					pending--
				}
				if eng.Pending(tr.ev) {
					t.Fatalf("event %d still Pending after Cancel", tr.seq)
				}
			case 3: // run until a horizon a little past now
				i++
				var h Time
				if i < len(program) {
					h = Time(program[i]) / 8
				}
				deadline := eng.Now() + h
				eng.RunUntil(deadline)
				if eng.Now() < deadline {
					t.Fatalf("RunUntil left clock at %v < deadline %v", eng.Now(), deadline)
				}
				// Nothing at or before the deadline may remain pending.
				for _, tr := range all {
					if !tr.fired && !tr.cancelled && tr.at <= deadline {
						t.Fatalf("event %d at %v pending past RunUntil(%v)", tr.seq, tr.at, deadline)
					}
				}
			}
			if eng.Len() != pending {
				t.Fatalf("Len() = %d, tracked pending = %d", eng.Len(), pending)
			}
		}

		// Drain: everything not cancelled must fire, in order.
		eng.Run()
		if eng.Len() != 0 {
			t.Fatalf("queue not empty after Run: %d", eng.Len())
		}
		for _, tr := range all {
			if tr.cancelled && tr.fired {
				t.Fatalf("event %d both cancelled and fired", tr.seq)
			}
			if !tr.cancelled && !tr.fired {
				t.Fatalf("event %d neither cancelled nor fired after Run", tr.seq)
			}
		}
	})
}

// FuzzEngineTieOrder focuses the kernel's FIFO-at-equal-times guarantee:
// a batch of events all scheduled for the same instant (encoded by the
// fuzzer as arbitrary group sizes) must fire exactly in scheduling order.
func FuzzEngineTieOrder(f *testing.F) {
	f.Add(uint16(3), uint16(5))
	f.Add(uint16(1), uint16(1))
	f.Add(uint16(64), uint16(2))
	f.Fuzz(func(t *testing.T, groups, perGroup uint16) {
		g := int(groups%64) + 1
		per := int(perGroup%16) + 1
		eng := New()
		next := 0
		want := 0
		for i := 0; i < g; i++ {
			at := Time(i)
			for j := 0; j < per; j++ {
				id := next
				next++
				eng.Schedule(at, "tie", func(now Time) {
					if id != want {
						t.Fatalf("fired %d, want %d (t=%v)", id, want, now)
					}
					want++
				})
			}
		}
		eng.Run()
		if want != next {
			t.Fatalf("fired %d of %d", want, next)
		}
	})
}
