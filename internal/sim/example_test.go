package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

func ExampleEngine() {
	eng := sim.New()
	eng.Schedule(10, "disk-fail", func(now sim.Time) {
		fmt.Printf("t=%v: disk failed\n", now)
		eng.After(0.5, "detect", func(now sim.Time) {
			fmt.Printf("t=%v: failure detected, rebuild starts\n", now)
		})
	})
	eng.Run()
	fmt.Printf("clock: %v, events fired: %d\n", eng.Now(), eng.Fired())
	// Output:
	// t=10: disk failed
	// t=10.5: failure detected, rebuild starts
	// clock: 10.5, events fired: 2
}
