package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyEngine(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("fresh engine Now = %v", e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	e.Run() // must not hang
	if e.Len() != 0 || e.Fired() != 0 {
		t.Fatal("empty engine mutated state")
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, "c", func(Time) { got = append(got, 3) })
	e.Schedule(10, "a", func(Time) { got = append(got, 1) })
	e.Schedule(20, "b", func(Time) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(5, "tie", func(Time) { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events not FIFO: %v", got)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(10, "first", func(now Time) {
		e.After(5, "second", func(now Time) { at = now })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, "x", func(Time) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, "past", func(Time) {})
}

func TestScheduleAtNow(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(10, "x", func(now Time) {
		e.Schedule(now, "same-time", func(Time) { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("event scheduled at the current time never fired")
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, "x", func(Time) { fired = true })
	if !ev.Valid() {
		t.Fatal("Schedule returned an invalid handle")
	}
	if !e.Pending(ev) {
		t.Fatal("scheduled event not pending")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Pending(ev) {
		t.Fatal("cancelled event still pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(ev) {
		t.Fatal("double-cancel returned true")
	}
	if e.Cancel(Handle{}) {
		t.Fatal("Cancel of the zero Handle returned true")
	}
	if (Handle{}).Valid() {
		t.Fatal("zero Handle claims to be valid")
	}
	if e.Pending(Handle{}) {
		t.Fatal("zero Handle claims to be pending")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Handle, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Time(i), "x", func(Time) { got = append(got, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, "x", func(now Time) { got = append(got, now) })
	}
	e.RunUntil(12)
	if len(got) != 2 {
		t.Fatalf("RunUntil(12) fired %d events, want 2", len(got))
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("RunUntil(100) total fired %d, want 4", len(got))
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want advanced to deadline 100", e.Now())
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(10, "x", func(Time) { fired = true })
	e.RunUntil(10)
	if !fired {
		t.Fatal("event exactly at deadline did not fire")
	}
}

func TestEventAccessors(t *testing.T) {
	e := New()
	ev := e.Schedule(42, "hello", func(Time) {})
	if at, ok := e.EventTime(ev); !ok || at != 42 {
		t.Fatalf("EventTime: %v %v", at, ok)
	}
	e.Run()
	if _, ok := e.EventTime(ev); ok {
		t.Fatal("EventTime ok for a fired event")
	}
}

// TestStaleHandleAfterSlotReuse pins the generation mechanism: once an
// event's slot has been recycled by a newer event, the old handle must be
// inert — not pending, not cancellable — and cancelling it must never
// disturb the new occupant.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	e := New()
	h1 := e.Schedule(10, "old", func(Time) {})
	if !e.Cancel(h1) {
		t.Fatal("Cancel of live event failed")
	}
	// The freed slot is at the head of the free list; this schedule
	// reuses it under a bumped generation.
	fired := false
	h2 := e.Schedule(20, "new", func(Time) { fired = true })
	if h2 == h1 {
		t.Fatal("reused slot handed out under the same generation")
	}
	if e.Pending(h1) {
		t.Fatal("stale handle pending after cancel")
	}
	if e.Cancel(h1) {
		t.Fatal("stale handle cancel returned true")
	}
	if !e.Pending(h2) {
		t.Fatal("stale cancel disturbed the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("new occupant never fired")
	}
}

// TestStaleHandleAfterFire: a handle to a fired event must be equally
// inert, even after the slot is reused many times over.
func TestStaleHandleAfterFire(t *testing.T) {
	e := New()
	h := e.Schedule(1, "once", func(Time) {})
	e.Run()
	if e.Pending(h) || e.Cancel(h) {
		t.Fatal("handle to fired event still live")
	}
	var reused []Handle
	for i := 0; i < 100; i++ {
		reused = append(reused, e.Schedule(Time(100+i), "reuse", func(Time) {}))
	}
	if e.Pending(h) || e.Cancel(h) {
		t.Fatal("stale handle revived by slot reuse")
	}
	for _, r := range reused {
		if !e.Pending(r) {
			t.Fatal("live handle lost")
		}
	}
}

// TestCancelRescheduleStorm: tight schedule/cancel cycling over the same
// arena slot must keep Len exact and fire only the survivors.
func TestCancelRescheduleStorm(t *testing.T) {
	e := New()
	fired := 0
	for i := 0; i < 10000; i++ {
		h := e.Schedule(Time(i), "churn", func(Time) { fired++ })
		if i%2 == 0 {
			if !e.Cancel(h) {
				t.Fatal("cancel failed")
			}
		}
		if want := (i + 1) / 2; e.Len() != want {
			t.Fatalf("Len = %d, want %d", e.Len(), want)
		}
	}
	e.Run()
	if fired != 5000 {
		t.Fatalf("fired %d, want 5000", fired)
	}
	if e.Len() != 0 {
		t.Fatalf("Len after drain = %d", e.Len())
	}
}

// TestArenaGrowth: more live events than one chunk holds forces arena
// growth; ordering and liveness must survive it.
func TestArenaGrowth(t *testing.T) {
	e := New()
	const n = 5000 // several chunks
	var prev Time
	fired := 0
	for i := 0; i < n; i++ {
		e.Schedule(Time(n-i), "grow", func(now Time) {
			if now < prev {
				t.Fatalf("order violated: %v after %v", now, prev)
			}
			prev = now
			fired++
		})
	}
	if e.Len() != n {
		t.Fatalf("Len = %d, want %d", e.Len(), n)
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
}

func TestFiredCount(t *testing.T) {
	e := New()
	for i := 0; i < 25; i++ {
		e.Schedule(Time(i), "x", func(Time) {})
	}
	e.Run()
	if e.Fired() != 25 {
		t.Fatalf("Fired = %d, want 25", e.Fired())
	}
}

func TestReentrantScheduling(t *testing.T) {
	// An event chain: each event schedules the next; clock advances
	// strictly; 1000 links terminate.
	e := New()
	count := 0
	var step func(now Time)
	step = func(now Time) {
		count++
		if count < 1000 {
			e.After(1, "chain", step)
		}
	}
	e.Schedule(0, "chain", step)
	e.Run()
	if count != 1000 {
		t.Fatalf("chain length %d, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("clock = %v, want 999", e.Now())
	}
}

// Property: for arbitrary schedules, the firing order is sorted by time and
// by insertion order among ties.
func TestQuickOrdering(t *testing.T) {
	f := func(times []uint8) bool {
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, tt := range times {
			at := Time(tt)
			seq := i
			e.Schedule(at, "q", func(now Time) {
				fired = append(fired, rec{at: now, seq: seq})
			})
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
