// Cross-validation of the closed-form model against the discrete-event
// simulator, in an external test package so it can import internal/core.
package analytic_test

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/redundancy"
)

// TestAnalyticMatchesSimulatorSpare compares the spare-disk loss
// probability of the simulator with the first-order analytic model on a
// configuration where losses are frequent enough to measure with few
// runs. The analytic model is an upper-bound-flavoured approximation
// (independent windows, mission-averaged rate), so agreement within a
// factor of ~2.5 is the expectation, not equality.
func TestAnalyticMatchesSimulatorSpare(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := core.DefaultConfig()
	cfg.TotalDataBytes = 500 * disk.TB
	cfg.GroupBytes = 2 * disk.GB
	cfg.UseFARM = false
	cfg.DetectionLatencyHours = 0

	const runs = 30
	res, err := core.MonteCarlo(cfg, core.MonteCarloOptions{Runs: runs, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}

	p := analytic.Params{
		Disks:                 res.Disks,
		DiskCapacityBytes:     cfg.DiskCapacityBytes,
		Utilization:           cfg.InitialUtilization,
		GroupBytes:            cfg.GroupBytes,
		Scheme:                redundancy.Scheme{M: 1, N: 2},
		RecoveryMBps:          cfg.RecoveryMBps,
		DetectionLatencyHours: 0,
		MissionHours:          cfg.SimHours,
		Hazard:                disk.Table1(),
	}
	want, err := p.PLossSpare()
	if err != nil {
		t.Fatal(err)
	}
	got := res.PLoss
	t.Logf("simulated P(loss) = %.3f, analytic = %.3f", got, want)
	if got < want/2.5 || got > want*2.5 {
		t.Fatalf("simulated loss %.3f vs analytic %.3f: disagreement beyond 2.5x", got, want)
	}
}

// TestAnalyticMatchesSimulatorFARM checks the FARM side: both the
// simulator and the model must put the loss probability well below the
// spare-disk figure on the same configuration.
func TestAnalyticMatchesSimulatorFARM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := core.DefaultConfig()
	cfg.TotalDataBytes = 500 * disk.TB
	cfg.GroupBytes = 2 * disk.GB
	cfg.UseFARM = true
	cfg.DetectionLatencyHours = 0

	const runs = 20
	res, err := core.MonteCarlo(cfg, core.MonteCarloOptions{Runs: runs, BaseSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := analytic.Params{
		Disks:                 res.Disks,
		DiskCapacityBytes:     cfg.DiskCapacityBytes,
		Utilization:           cfg.InitialUtilization,
		GroupBytes:            cfg.GroupBytes,
		Scheme:                redundancy.Scheme{M: 1, N: 2},
		RecoveryMBps:          cfg.RecoveryMBps,
		DetectionLatencyHours: 0,
		MissionHours:          cfg.SimHours,
		Hazard:                disk.Table1(),
	}
	want, err := p.PLossFARM()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("simulated FARM P(loss) = %.3f, analytic = %.3f", res.PLoss, want)
	// Both must be small (the analytic figure is ~0.5% here); with 20
	// runs the simulator can at most show a few losses.
	if want > 0.05 {
		t.Fatalf("analytic FARM loss %.3f unexpectedly large", want)
	}
	if res.PLoss > 0.2 {
		t.Fatalf("simulated FARM loss %.3f far above analytic %.3f", res.PLoss, want)
	}
}
