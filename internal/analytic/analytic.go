// Package analytic provides closed-form approximations of the probability
// of data loss, used to cross-validate the simulator and to explain the
// paper's qualitative findings:
//
//   - With FARM and zero detection latency, the mirrored loss probability
//     is independent of group size (the per-failure exposure K·T_block =
//     C·u/bw cancels the group size; §3.2 / [37]).
//   - Without FARM, rebuilds serialize on the spare, the i-th group waits
//     i·T_block, and the summed exposure grows as 1/G — smaller groups are
//     worse (§3.2).
//   - Detection latency adds K·L to the exposure, K = C·u/B blocks per
//     disk, so small groups (large K) are latency-sensitive, and the
//     latency/rebuild-time ratio governs the loss (§3.3).
//
// The model: disk failures are a Poisson process at the mission-averaged
// hazard rate λ; a group dies when, during the vulnerability window of an
// affected block, enough of its other disks fail. First-order in λ·window,
// which holds comfortably at realistic rates.
package analytic

import (
	"errors"
	"math"

	"repro/internal/disk"
	"repro/internal/redundancy"
	"repro/internal/rng"
)

// Params describes the system to approximate. Fields mirror core.Config.
type Params struct {
	Disks                 int
	DiskCapacityBytes     int64
	Utilization           float64 // fill fraction holding redundancy-group blocks
	GroupBytes            int64
	Scheme                redundancy.Scheme
	RecoveryMBps          float64
	DetectionLatencyHours float64
	MissionHours          float64
	Hazard                *rng.PiecewiseHazard
}

// ErrParams reports invalid parameters.
var ErrParams = errors.New("analytic: invalid parameters")

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Disks <= 0, p.DiskCapacityBytes <= 0, p.GroupBytes <= 0,
		p.Utilization <= 0, p.Utilization > 1,
		p.RecoveryMBps <= 0, p.MissionHours <= 0,
		p.DetectionLatencyHours < 0,
		p.Scheme.M < 1, p.Scheme.N <= p.Scheme.M,
		p.Hazard == nil:
		return ErrParams
	}
	return nil
}

// MeanFailureRate returns the mission-averaged per-disk hazard rate λ
// (failures per hour).
func (p Params) MeanFailureRate() float64 {
	return p.Hazard.Cumulative(p.MissionHours) / p.MissionHours
}

// ExpectedFailures returns the expected number of drive deaths over the
// mission.
func (p Params) ExpectedFailures() float64 {
	return float64(p.Disks) * (1 - p.Hazard.Survival(p.MissionHours))
}

// BlocksPerDisk returns K, the expected number of redundancy-group blocks
// resident on one drive.
func (p Params) BlocksPerDisk() float64 {
	blockBytes := p.Scheme.BlockBytes(p.GroupBytes)
	return float64(p.DiskCapacityBytes) * p.Utilization / float64(blockBytes)
}

// RebuildHoursPerBlock returns T, the transfer time of one block at the
// recovery bandwidth.
func (p Params) RebuildHoursPerBlock() float64 {
	return disk.RebuildHours(p.Scheme.BlockBytes(p.GroupBytes), p.RecoveryMBps)
}

// binom returns C(n, k) as a float.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}

// lossPerFailureFARM approximates P(some affected group dies | one disk
// failure) under FARM: every affected block rebuilds in parallel with
// window w = L + T, and a group with n−1 surviving blocks dies if its
// remaining tolerance k−1... precisely, if k more of its specific disks
// fail within w, k = n − m.
func (p Params) lossPerFailureFARM() float64 {
	lambda := p.MeanFailureRate()
	k := p.Scheme.FaultTolerance()
	w := p.DetectionLatencyHours + p.RebuildHoursPerBlock()
	perGroup := binom(p.Scheme.N-1, k) * math.Pow(lambda*w, float64(k))
	return p.BlocksPerDisk() * perGroup
}

// lossPerFailureSpare approximates the same quantity for the traditional
// engine: the K affected blocks rebuild one after another onto the single
// spare, so block i's window is L + i·T.
func (p Params) lossPerFailureSpare() float64 {
	lambda := p.MeanFailureRate()
	k := p.Scheme.FaultTolerance()
	T := p.RebuildHoursPerBlock()
	K := int(math.Ceil(p.BlocksPerDisk()))
	sum := 0.0
	for i := 1; i <= K; i++ {
		w := p.DetectionLatencyHours + float64(i)*T
		sum += binom(p.Scheme.N-1, k) * math.Pow(lambda*w, float64(k))
	}
	return sum
}

// clampP converts an expected loss count into a probability.
func clampP(expected float64) float64 {
	return 1 - math.Exp(-expected)
}

// PLossFARM approximates the mission probability of data loss under FARM.
func (p Params) PLossFARM() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return clampP(p.ExpectedFailures() * p.lossPerFailureFARM()), nil
}

// PLossSpare approximates the mission probability of data loss under the
// traditional dedicated-spare scheme.
func (p Params) PLossSpare() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return clampP(p.ExpectedFailures() * p.lossPerFailureSpare()), nil
}

// WindowRatio returns the paper's Figure 4(b) x-axis: detection latency
// over per-group recovery time.
func (p Params) WindowRatio() float64 {
	return p.DetectionLatencyHours / p.RebuildHoursPerBlock()
}
