package analytic

import (
	"math"
	"testing"

	"repro/internal/disk"
	"repro/internal/redundancy"
)

func baseParams() Params {
	return Params{
		Disks:                 10000,
		DiskCapacityBytes:     disk.TB,
		Utilization:           0.4,
		GroupBytes:            10 * disk.GB,
		Scheme:                redundancy.Scheme{M: 1, N: 2},
		RecoveryMBps:          16,
		DetectionLatencyHours: 0,
		MissionHours:          disk.EODLHours,
		Hazard:                disk.Table1(),
	}
}

func TestValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Disks = 0 },
		func(p *Params) { p.DiskCapacityBytes = 0 },
		func(p *Params) { p.GroupBytes = 0 },
		func(p *Params) { p.Utilization = 0 },
		func(p *Params) { p.Utilization = 1.5 },
		func(p *Params) { p.RecoveryMBps = 0 },
		func(p *Params) { p.MissionHours = 0 },
		func(p *Params) { p.DetectionLatencyHours = -1 },
		func(p *Params) { p.Scheme = redundancy.Scheme{M: 2, N: 2} },
		func(p *Params) { p.Hazard = nil },
	}
	for i, m := range mutations {
		p := baseParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBasicQuantities(t *testing.T) {
	p := baseParams()
	// ~11% of drives fail over 6 years → ~1100 failures of 10k drives.
	f := p.ExpectedFailures()
	if f < 900 || f > 1300 {
		t.Fatalf("expected failures = %v, want ~1100", f)
	}
	// 400 GB of 10 GB blocks → 40 blocks per disk.
	if k := p.BlocksPerDisk(); math.Abs(k-40) > 1 {
		t.Fatalf("blocks per disk = %v, want ~40", k)
	}
	// 10 GB at 16 MB/s ≈ 0.186 h.
	if tr := p.RebuildHoursPerBlock(); tr < 0.15 || tr > 0.22 {
		t.Fatalf("rebuild hours = %v", tr)
	}
}

func TestFARMBeatsSpare(t *testing.T) {
	p := baseParams()
	farm, err := p.PLossFARM()
	if err != nil {
		t.Fatal(err)
	}
	spare, err := p.PLossSpare()
	if err != nil {
		t.Fatal(err)
	}
	if farm >= spare {
		t.Fatalf("analytic FARM loss %v >= spare loss %v", farm, spare)
	}
	if spare/farm < 5 {
		t.Fatalf("FARM advantage only %vx; expected an order of magnitude", spare/farm)
	}
}

func TestFARMMirrorIndependentOfGroupSize(t *testing.T) {
	// The paper's §3.2 result at zero latency: group size cancels.
	var probs []float64
	for _, g := range []int64{1, 5, 10, 50, 100} {
		p := baseParams()
		p.GroupBytes = g * disk.GB
		v, err := p.PLossFARM()
		if err != nil {
			t.Fatal(err)
		}
		probs = append(probs, v)
	}
	for i := 1; i < len(probs); i++ {
		if math.Abs(probs[i]-probs[0])/probs[0] > 0.01 {
			t.Fatalf("FARM mirror loss varies with group size: %v", probs)
		}
	}
}

func TestSpareLossGrowsAsGroupsShrink(t *testing.T) {
	// Without FARM, smaller groups mean more serialized rebuilds and
	// more loss (§3.2).
	small := baseParams()
	small.GroupBytes = 1 * disk.GB
	large := baseParams()
	large.GroupBytes = 50 * disk.GB
	ps, _ := small.PLossSpare()
	pl, _ := large.PLossSpare()
	if ps <= pl {
		t.Fatalf("spare loss with 1GB groups (%v) not above 50GB groups (%v)", ps, pl)
	}
}

func TestLatencyHurtsSmallGroupsMore(t *testing.T) {
	// §3.3: a fixed latency is a larger share of a small group's window.
	ratio := func(g int64) float64 {
		p := baseParams()
		p.GroupBytes = g * disk.GB
		base, _ := p.PLossFARM()
		p.DetectionLatencyHours = 10.0 / 60
		withLat, _ := p.PLossFARM()
		return withLat / base
	}
	if ratio(1) <= ratio(100) {
		t.Fatalf("latency amplification: 1GB %v <= 100GB %v", ratio(1), ratio(100))
	}
}

func TestWindowRatioGovernsLoss(t *testing.T) {
	// Figure 4(b): equal latency/recovery ratios give equal FARM loss
	// probabilities across group sizes (mirroring).
	mk := func(g int64, ratio float64) float64 {
		p := baseParams()
		p.GroupBytes = g * disk.GB
		p.DetectionLatencyHours = ratio * p.RebuildHoursPerBlock()
		if math.Abs(p.WindowRatio()-ratio) > 1e-9 {
			t.Fatalf("WindowRatio = %v, want %v", p.WindowRatio(), ratio)
		}
		v, _ := p.PLossFARM()
		return v
	}
	for _, ratio := range []float64{0.5, 1, 2} {
		a := mk(1, ratio)
		b := mk(100, ratio)
		if math.Abs(a-b)/a > 0.01 {
			t.Fatalf("ratio %v: losses differ across group sizes: %v vs %v", ratio, a, b)
		}
	}
}

func TestHigherToleranceSchemesSafer(t *testing.T) {
	loss := func(m, n int) float64 {
		p := baseParams()
		p.Scheme = redundancy.Scheme{M: m, N: n}
		v, err := p.PLossFARM()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if loss(1, 3) >= loss(1, 2) {
		t.Fatal("3-way mirror not safer than 2-way")
	}
	if loss(4, 6) >= loss(4, 5) {
		t.Fatal("4/6 not safer than 4/5")
	}
	if loss(2, 3) >= loss(1, 2)*100 {
		// RAID-5-like has single tolerance but more exposed disks per
		// group; it should not be orders of magnitude safer than mirror.
		t.Log("sanity: 2/3 loss", loss(2, 3), "1/2 loss", loss(1, 2))
	}
}

func TestScaleLinearity(t *testing.T) {
	// Figure 8: P(loss) approximately linear in system size (small-p
	// regime).
	p1 := baseParams()
	p1.Disks = 1000
	p2 := baseParams()
	p2.Disks = 2000
	a, _ := p1.PLossFARM()
	b, _ := p2.PLossFARM()
	if b/a < 1.8 || b/a > 2.2 {
		t.Fatalf("doubling disks scaled loss by %v, want ~2", b/a)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestClampP(t *testing.T) {
	if clampP(0) != 0 {
		t.Fatal("clampP(0) != 0")
	}
	if p := clampP(100); p < 0.999 || p > 1 {
		t.Fatalf("clampP(100) = %v", p)
	}
	if p := clampP(0.01); math.Abs(p-0.00995) > 1e-4 {
		t.Fatalf("clampP small = %v", p)
	}
}
