// Package report renders experiment results as aligned plain-text tables
// and CSV, the formats cmd/farmsim prints for each reproduced table and
// figure.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of formatted cells.
type Table struct {
	Title   string
	Notes   []string // free-form caption lines
	Columns []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a caption line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing padding.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()
			b.Reset()
			b.WriteString(strings.TrimRight(s, " "))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w2 := range widths {
		sep[i] = strings.Repeat("-", w2)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a probability as a percentage with one decimal.
func Pct(p float64) string { return fmt.Sprintf("%.1f%%", 100*p) }

// PctCI formats a probability with its 95% interval.
func PctCI(p, lo, hi float64) string {
	return fmt.Sprintf("%.1f%% [%.1f, %.1f]", 100*p, 100*lo, 100*hi)
}

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v != 0 && (v < 0.001 || v >= 1e6):
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// GB formats a byte count in decimal-free GiB.
func GB(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/float64(1<<30))
}
