package report

import (
	"strings"
	"testing"
)

func TestWriteTextAligned(t *testing.T) {
	tb := NewTable("Demo", "scheme", "ploss")
	tb.AddRow("1/2", "3.0%")
	tb.AddRow("8/10", "0.1%")
	tb.AddNote("runs=%d", 100)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" || !strings.HasPrefix(lines[1], "====") {
		t.Fatalf("title block wrong:\n%s", out)
	}
	if !strings.Contains(out, "scheme  ploss") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "runs=100") {
		t.Fatalf("note missing:\n%s", out)
	}
	// Columns align: "1/2 " padded to width of "scheme".
	if !strings.Contains(out, "1/2     3.0%") {
		t.Fatalf("row not aligned:\n%s", out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := NewTable("x", "a", "b", "c")
	tb.AddRow("1")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "hello")
	tb.AddRow("with,comma", `with"quote`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,hello\n\"with,comma\",\"with\"\"quote\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.031) != "3.1%" {
		t.Errorf("Pct = %q", Pct(0.031))
	}
	if got := PctCI(0.5, 0.4, 0.6); got != "50.0% [40.0, 60.0]" {
		t.Errorf("PctCI = %q", got)
	}
	if F(5) != "5" {
		t.Errorf("F(5) = %q", F(5))
	}
	if F(0.125) != "0.125" {
		t.Errorf("F(0.125) = %q", F(0.125))
	}
	if F(1e9) != "1e+09" {
		t.Errorf("F(1e9) = %q", F(1e9))
	}
	if GB(1<<30) != "1.0" {
		t.Errorf("GB = %q", GB(1<<30))
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("", "only")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "only\n") {
		t.Fatalf("untitled table wrong:\n%s", sb.String())
	}
}
