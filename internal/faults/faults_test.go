package faults

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestConfigEnabled(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"zero", Config{}, false},
		{"scrub only", Config{ScrubIntervalHours: 168}, false},
		{"lse", Config{LSERatePerDiskHour: 1e-5}, true},
		{"bursts", Config{BurstsPerYear: 1}, true},
		{"transient", Config{TransientReadProb: 0.01}, true},
		{"spare pool", Config{SparePoolSize: 2}, true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		LSERatePerDiskHour: 1e-5,
		ScrubIntervalHours: 168,
		BurstsPerYear:      1,
		BurstMeanSize:      3,
		TransientReadProb:  0.05,
		SparePoolSize:      4,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{LSERatePerDiskHour: -1},
		{ScrubIntervalHours: -1},
		{BurstsPerYear: -1},
		{BurstMeanSize: -1},
		{BurstSpanHours: -0.5},
		{TransientReadProb: -0.1},
		{TransientReadProb: 1}, // must stay below 1: retries could never succeed
		{MaxRetries: -1},
		{BackoffBaseHours: -1},
		{BackoffCapHours: -1},
		{MaxResourcings: -1},
		{SparePoolSize: -1},
		{SpareReplenishHours: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := NewInjector(c, 1); err == nil {
			t.Errorf("NewInjector accepted bad config %d", i)
		}
	}
}

// TestDefaults: the zero policy fields pick up the documented defaults,
// and explicit values are left alone.
func TestDefaults(t *testing.T) {
	in, err := NewInjector(Config{BurstsPerYear: 2, SparePoolSize: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Config()
	if c.MaxRetries != 3 || c.MaxResourcings != 8 {
		t.Errorf("retry caps = %d/%d, want 3/8", c.MaxRetries, c.MaxResourcings)
	}
	if c.BackoffBaseHours != 0.05 || c.BackoffCapHours != 1 {
		t.Errorf("backoff = %g/%g, want 0.05/1", c.BackoffBaseHours, c.BackoffCapHours)
	}
	if c.BurstMeanSize != 3 || c.BurstSpanHours != 1 {
		t.Errorf("burst defaults = %g/%g, want 3/1", c.BurstMeanSize, c.BurstSpanHours)
	}
	if c.SpareReplenishHours != 24 {
		t.Errorf("spare replenish = %g, want 24", c.SpareReplenishHours)
	}

	in2, err := NewInjector(Config{MaxRetries: 5, BackoffBaseHours: 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c2 := in2.Config(); c2.MaxRetries != 5 || c2.BackoffBaseHours != 0.2 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
	// Bursts disabled: burst policy fields stay zero.
	if c2 := in2.Config(); c2.BurstMeanSize != 0 || c2.BurstSpanHours != 0 {
		t.Errorf("burst defaults applied while bursts disabled: %+v", c2)
	}
}

func TestMarkLatentDedupAndCount(t *testing.T) {
	in, _ := NewInjector(Config{LSERatePerDiskHour: 1e-5}, 1)
	if !in.MarkLatent(3, 10, 1) {
		t.Fatal("first mark rejected")
	}
	if in.MarkLatent(3, 10, 0) {
		t.Fatal("duplicate (disk,group) mark accepted")
	}
	if !in.MarkLatent(3, 11, 0) || !in.MarkLatent(4, 10, 2) {
		t.Fatal("distinct marks rejected")
	}
	if in.LatentCount() != 3 {
		t.Fatalf("LatentCount = %d, want 3", in.LatentCount())
	}
}

func TestDropDisk(t *testing.T) {
	in, _ := NewInjector(Config{LSERatePerDiskHour: 1e-5}, 1)
	in.MarkLatent(1, 10, 0)
	in.MarkLatent(2, 11, 1)
	in.MarkLatent(1, 12, 0)
	if got := in.DropDisk(1); got != 2 {
		t.Fatalf("DropDisk(1) = %d, want 2", got)
	}
	if in.LatentCount() != 1 {
		t.Fatalf("LatentCount = %d, want 1", in.LatentCount())
	}
	if got := in.DropDisk(1); got != 0 {
		t.Fatalf("second DropDisk(1) = %d, want 0", got)
	}
	// The survivor must still be discoverable.
	got := in.TakeLatent()
	if len(got) != 1 || got[0] != (Entry{Disk: 2, Group: 11, Rep: 1}) {
		t.Fatalf("TakeLatent = %+v", got)
	}
}

func TestTakeLatentDrainsInOrder(t *testing.T) {
	in, _ := NewInjector(Config{LSERatePerDiskHour: 1e-5}, 1)
	want := []Entry{
		{Disk: 5, Group: 1, Rep: 0},
		{Disk: 6, Group: 2, Rep: 1},
		{Disk: 7, Group: 3, Rep: 2},
	}
	for _, e := range want {
		in.MarkLatent(e.Disk, e.Group, e.Rep)
	}
	got := in.TakeLatent()
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if in.LatentCount() != 0 {
		t.Fatal("TakeLatent left entries behind")
	}
	if in.TakeLatent() != nil {
		t.Fatal("empty drain should return nil")
	}
}

func TestProbeReadOutcomes(t *testing.T) {
	// No transient probability: outcomes are purely the latent lookup.
	in, _ := NewInjector(Config{LSERatePerDiskHour: 1e-5}, 1)
	in.MarkLatent(2, 7, 1)
	var discovered []Entry
	in.SetDiscoveryHandler(func(now sim.Time, diskID, group, rep int) {
		discovered = append(discovered, Entry{Disk: diskID, Group: group, Rep: rep})
	})
	if got := in.ProbeRead(0, 2, 8); got != ReadOK {
		t.Fatalf("clean read = %v, want ok", got)
	}
	if got := in.ProbeRead(1, 2, 7); got != ReadLatent {
		t.Fatalf("latent read = %v, want latent", got)
	}
	if len(discovered) != 1 || discovered[0] != (Entry{Disk: 2, Group: 7, Rep: 1}) {
		t.Fatalf("discovery handler saw %+v", discovered)
	}
	// The hit consumed the entry: a second read is clean.
	if got := in.ProbeRead(2, 2, 7); got != ReadOK {
		t.Fatalf("re-read = %v, want ok", got)
	}
	if in.LatentCount() != 0 {
		t.Fatal("latent entry not consumed by discovery")
	}
}

func TestProbeReadTransientRate(t *testing.T) {
	in, _ := NewInjector(Config{TransientReadProb: 0.25}, 99)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if in.ProbeRead(0, 0, 0) == ReadTransient {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Fatalf("transient rate = %.3f, want ~0.25", rate)
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	in, _ := NewInjector(Config{BackoffBaseHours: 0.1, BackoffCapHours: 0.4}, 7)
	for attempt := 0; attempt <= 8; attempt++ {
		nominal := 0.1 * math.Pow(2, math.Max(0, float64(attempt-1)))
		if nominal > 0.4 {
			nominal = 0.4
		}
		for i := 0; i < 50; i++ {
			d := float64(in.RetryBackoff(attempt))
			if d < 0.75*nominal-1e-12 || d > 1.25*nominal+1e-12 {
				t.Fatalf("attempt %d backoff %g outside ±25%% of %g", attempt, d, nominal)
			}
		}
	}
}

func TestBurstDraws(t *testing.T) {
	in, _ := NewInjector(Config{BurstsPerYear: 2}, 11)
	for i := 0; i < 1000; i++ {
		if s := in.BurstSize(); s < 1 {
			t.Fatalf("burst size %d < 1", s)
		}
		if d := in.BurstDelay(); d < 0 || d >= in.Config().BurstSpanHours {
			t.Fatalf("burst delay %g outside [0, %g)", d, in.Config().BurstSpanHours)
		}
		if g := in.NextBurstGap(); g < 0 || math.IsInf(g, 1) {
			t.Fatalf("burst gap %g", g)
		}
	}
	// Mean size ≈ configured mean (3 by default).
	sum := 0
	const n = 5000
	for i := 0; i < n; i++ {
		sum += in.BurstSize()
	}
	if mean := float64(sum) / n; math.Abs(mean-3) > 0.2 {
		t.Fatalf("mean burst size %.2f, want ~3", mean)
	}
}

func TestDisabledProcessesReturnInf(t *testing.T) {
	in, _ := NewInjector(Config{TransientReadProb: 0.1}, 1)
	if g := in.NextLSEGap(); !math.IsInf(g, 1) {
		t.Fatalf("LSE gap with rate 0 = %g, want +Inf", g)
	}
	if g := in.NextBurstGap(); !math.IsInf(g, 1) {
		t.Fatalf("burst gap with rate 0 = %g, want +Inf", g)
	}
}

func TestSampleVictimsDistinct(t *testing.T) {
	in, _ := NewInjector(Config{BurstsPerYear: 1}, 3)
	for trial := 0; trial < 200; trial++ {
		got := in.SampleVictims(10, 4)
		if len(got) != 4 {
			t.Fatalf("sampled %d, want 4", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 10 {
				t.Fatalf("victim %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate victim %d in %v", v, got)
			}
			seen[v] = true
		}
	}
}

// TestDeterminism: two injectors with the same seed and config produce
// identical draw sequences; a different seed diverges.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		LSERatePerDiskHour: 1e-4,
		BurstsPerYear:      4,
		TransientReadProb:  0.1,
	}
	a, _ := NewInjector(cfg, 42)
	b, _ := NewInjector(cfg, 42)
	c, _ := NewInjector(cfg, 43)
	same, diff := true, true
	for i := 0; i < 200; i++ {
		ga, gb, gc := a.NextLSEGap(), b.NextLSEGap(), c.NextLSEGap()
		if ga != gb {
			same = false
		}
		if ga != gc {
			diff = false
		}
		if a.ProbeRead(0, 1, 2) != b.ProbeRead(0, 1, 2) {
			same = false
		}
		c.ProbeRead(0, 1, 2)
	}
	if !same {
		t.Fatal("same seed diverged")
	}
	if diff {
		t.Fatal("different seeds produced identical streams")
	}
}
