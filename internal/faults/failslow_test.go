package faults

import (
	"math"
	"strings"
	"testing"
)

// TestFailSlowValidate is the table-driven NaN/Inf/range check for the
// gray-failure configuration, including the field-distinct messages.
func TestFailSlowValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(-1)
	cases := []struct {
		name string
		c    FailSlowConfig
		want string
	}{
		{"zero", FailSlowConfig{}, ""},
		{"typical", FailSlowConfig{OnsetRatePerDiskHour: 2e-6, SlowFactor: 4, CrawlProb: 0.2}, ""},
		{"nan-rate", FailSlowConfig{OnsetRatePerDiskHour: nan}, "FailSlow.OnsetRatePerDiskHour is NaN"},
		{"inf-factor", FailSlowConfig{SlowFactor: inf}, "FailSlow.SlowFactor is infinite"},
		{"nan-crawl", FailSlowConfig{CrawlProb: nan}, "FailSlow.CrawlProb is NaN"},
		{"nan-recovery", FailSlowConfig{RecoveryMeanHours: nan}, "FailSlow.RecoveryMeanHours is NaN"},
		{"inf-burst-rate", FailSlowConfig{SlowBurstsPerYear: inf}, "FailSlow.SlowBurstsPerYear is infinite"},
		{"nan-burst-size", FailSlowConfig{SlowBurstMeanSize: nan}, "FailSlow.SlowBurstMeanSize is NaN"},
		{"nan-burst-span", FailSlowConfig{SlowBurstSpanHours: nan}, "FailSlow.SlowBurstSpanHours is NaN"},
		{"neg-rate", FailSlowConfig{OnsetRatePerDiskHour: -1}, "negative fail-slow onset rate"},
		{"factor-below-1", FailSlowConfig{SlowFactor: 0.5}, "factor must exceed 1"},
		{"crawl-range", FailSlowConfig{CrawlProb: 1.5}, "crawl probability"},
		{"neg-recovery", FailSlowConfig{RecoveryMeanHours: -2}, "negative fail-slow recovery mean"},
		{"neg-burst-rate", FailSlowConfig{SlowBurstsPerYear: -1}, "negative slow-burst rate"},
		{"neg-burst-size", FailSlowConfig{SlowBurstMeanSize: -1}, "negative slow-burst size"},
		{"neg-burst-span", FailSlowConfig{SlowBurstSpanHours: -1}, "negative slow-burst span"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
			// The enclosing fault config must surface the same error.
			if err2 := (Config{FailSlow: tc.c}).Validate(); err2 == nil ||
				err2.Error() != err.Error() {
				t.Fatalf("Config.Validate gave %v, want %v", err2, err)
			}
		})
	}
}

// TestConfigValidateNonFinite: every float field of the fault config
// rejects NaN and ±Inf with a message naming the field.
func TestConfigValidateNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		c    Config
		want string
	}{
		{Config{LSERatePerDiskHour: nan}, "faults: LSERatePerDiskHour is NaN"},
		{Config{ScrubIntervalHours: math.Inf(1)}, "faults: ScrubIntervalHours is infinite"},
		{Config{BurstsPerYear: nan}, "faults: BurstsPerYear is NaN"},
		{Config{BurstMeanSize: nan}, "faults: BurstMeanSize is NaN"},
		{Config{BurstSpanHours: nan}, "faults: BurstSpanHours is NaN"},
		{Config{TransientReadProb: nan}, "faults: TransientReadProb is NaN"},
		{Config{BackoffBaseHours: nan}, "faults: BackoffBaseHours is NaN"},
		{Config{BackoffCapHours: math.Inf(-1)}, "faults: BackoffCapHours is infinite"},
		{Config{SpareReplenishHours: nan}, "faults: SpareReplenishHours is NaN"},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %v does not contain %q", err, tc.want)
		}
	}
}

// TestFailSlowDefaults: enabling any process fills the documented
// defaults; the zero config passes through untouched.
func TestFailSlowDefaults(t *testing.T) {
	c := Config{FailSlow: FailSlowConfig{OnsetRatePerDiskHour: 1e-6, SlowBurstsPerYear: 2}}.withDefaults()
	fs := c.FailSlow
	if fs.SlowFactor != 4 || fs.CrawlProb != 0.2 || fs.SlowBurstMeanSize != 8 || fs.SlowBurstSpanHours != 1 {
		t.Fatalf("defaults not filled: %+v", fs)
	}
	var zero FailSlowConfig
	if zero.withDefaults() != zero {
		t.Fatal("zero fail-slow config must pass through unchanged")
	}
	if zero.Enabled() {
		t.Fatal("zero fail-slow config reads enabled")
	}
	if !(Config{FailSlow: FailSlowConfig{SlowBurstsPerYear: 1}}).Enabled() {
		t.Fatal("slow-bursts alone must enable the fault layer")
	}
}

// TestFailSlowStreamIsolation: consuming fail-slow draws must not
// perturb the main fault stream (LSE gaps, burst draws, read probes) —
// the determinism contract that keeps a zero fail-slow config
// byte-identical.
func TestFailSlowStreamIsolation(t *testing.T) {
	cfg := Config{
		LSERatePerDiskHour: 1e-5,
		BurstsPerYear:      2,
		TransientReadProb:  0.01,
		FailSlow: FailSlowConfig{
			OnsetRatePerDiskHour: 1e-4,
			RecoveryMeanHours:    100,
			SlowBurstsPerYear:    5,
		},
	}
	a, err := NewInjector(cfg, 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg, 12345)
	if err != nil {
		t.Fatal(err)
	}
	// b consumes a pile of fail-slow draws; a consumes none.
	for i := 0; i < 257; i++ {
		b.NextSlowOnsetGap()
		b.DrawSlowSeverity()
		b.DrawSlowRecovery()
		b.NextSlowBurstGap()
		b.SlowBurstSize()
		b.SlowBurstDelay()
	}
	for i := 0; i < 64; i++ {
		if ga, gb := a.NextLSEGap(), b.NextLSEGap(); ga != gb {
			t.Fatalf("LSE stream diverged at draw %d: %v != %v", i, ga, gb)
		}
		if ga, gb := a.NextBurstGap(), b.NextBurstGap(); ga != gb {
			t.Fatalf("burst stream diverged at draw %d: %v != %v", i, ga, gb)
		}
		if oa, ob := a.ProbeRead(0, 1, 2), b.ProbeRead(0, 1, 2); oa != ob {
			t.Fatalf("probe stream diverged at draw %d: %v != %v", i, oa, ob)
		}
	}
}

// TestFailSlowDrawsDeterministic: two injectors with the same seed
// produce identical fail-slow sequences; a different seed diverges.
func TestFailSlowDrawsDeterministic(t *testing.T) {
	cfg := Config{FailSlow: FailSlowConfig{
		OnsetRatePerDiskHour: 1e-5,
		SlowFactor:           4,
		CrawlProb:            0.3,
		RecoveryMeanHours:    50,
		SlowBurstsPerYear:    3,
		SlowBurstMeanSize:    6,
		SlowBurstSpanHours:   2,
	}}
	draw := func(seed uint64) []float64 {
		in, err := NewInjector(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 100; i++ {
			out = append(out, in.NextSlowOnsetGap(), in.DrawSlowSeverity(),
				in.NextSlowBurstGap(), float64(in.SlowBurstSize()), in.SlowBurstDelay())
			if h, ok := in.DrawSlowRecovery(); ok {
				out = append(out, h)
			}
		}
		return out
	}
	a, b, c := draw(99), draw(99), draw(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed draws diverged at %d", i)
		}
	}
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = true // diverged somewhere, as it must
				break
			}
		}
		if !same {
			t.Fatal("different seeds produced identical fail-slow sequences")
		}
	}
}

// TestSeverityLadder: a vanishing crawl probability always yields x k
// (zero would take the 0.2 default), probability 1 always yields x k^2;
// disabled onset and recovery read as such.
func TestSeverityLadder(t *testing.T) {
	mk := func(crawl float64) *Injector {
		in, err := NewInjector(Config{FailSlow: FailSlowConfig{
			OnsetRatePerDiskHour: 1e-6, SlowFactor: 5, CrawlProb: crawl}}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	slow := mk(1e-300)
	for i := 0; i < 32; i++ {
		if got := slow.DrawSlowSeverity(); got != 5 {
			t.Fatalf("crawl~0 severity %v, want 5", got)
		}
	}
	crawl := mk(1)
	for i := 0; i < 32; i++ {
		if got := crawl.DrawSlowSeverity(); got != 25 {
			t.Fatalf("crawl=1 severity %v, want 25", got)
		}
	}
	if g := slow.NextSlowOnsetGap(); math.IsInf(g, 1) || g <= 0 {
		t.Fatalf("onset gap %v, want positive finite", g)
	}
	off, err := NewInjector(Config{LSERatePerDiskHour: 1e-9}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g := off.NextSlowOnsetGap(); !math.IsInf(g, 1) {
		t.Fatalf("disabled onset gap %v, want +Inf", g)
	}
	if g := off.NextSlowBurstGap(); !math.IsInf(g, 1) {
		t.Fatalf("disabled slow-burst gap %v, want +Inf", g)
	}
	if _, ok := off.DrawSlowRecovery(); ok {
		t.Fatal("permanent degradation drew a recovery time")
	}
}

// TestSampleSlowVictims: distinct indices in range, deterministic per
// seed.
func TestSampleSlowVictims(t *testing.T) {
	in, err := NewInjector(Config{FailSlow: FailSlowConfig{SlowBurstsPerYear: 1}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	v := in.SampleSlowVictims(50, 8)
	if len(v) != 8 {
		t.Fatalf("drew %d victims, want 8", len(v))
	}
	seen := map[int]bool{}
	for _, id := range v {
		if id < 0 || id >= 50 || seen[id] {
			t.Fatalf("bad victim set %v", v)
		}
		seen[id] = true
	}
}
