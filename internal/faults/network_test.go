package faults

import (
	"math"
	"strings"
	"testing"
)

// TestNetworkValidateRejectsNonFinite pins field-distinct NaN/±Inf
// messages on every network-fault float.
func TestNetworkValidateRejectsNonFinite(t *testing.T) {
	fields := []struct {
		name string
		set  func(*NetworkFaultConfig, float64)
	}{
		{"SwitchFailsPerYear", func(c *NetworkFaultConfig, v float64) { c.SwitchFailsPerYear = v }},
		{"PowerEventsPerYear", func(c *NetworkFaultConfig, v float64) { c.PowerEventsPerYear = v }},
		{"PowerRestoreMeanHours", func(c *NetworkFaultConfig, v float64) { c.PowerRestoreMeanHours = v }},
		{"PartitionsPerYear", func(c *NetworkFaultConfig, v float64) { c.PartitionsPerYear = v }},
		{"PartitionMeanHours", func(c *NetworkFaultConfig, v float64) { c.PartitionMeanHours = v }},
	}
	for _, f := range fields {
		for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			var cfg NetworkFaultConfig
			f.set(&cfg, v)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("%s=%v accepted", f.name, v)
			}
			if !strings.Contains(err.Error(), f.name) {
				t.Fatalf("%s=%v: message %q does not name the field", f.name, v, err)
			}
		}
	}
}

// TestNetworkValidateRanges pins the distinct range messages and that
// the composite faults.Config.Validate reaches them.
func TestNetworkValidateRanges(t *testing.T) {
	cases := []struct {
		mut  func(*NetworkFaultConfig)
		want string
	}{
		{func(c *NetworkFaultConfig) { c.SwitchFailsPerYear = -1 }, "negative switch-failure rate"},
		{func(c *NetworkFaultConfig) { c.PowerEventsPerYear = -1 }, "negative power-event rate"},
		{func(c *NetworkFaultConfig) { c.PowerRestoreMeanHours = -1 }, "negative power-restore mean"},
		{func(c *NetworkFaultConfig) { c.PartitionsPerYear = -1 }, "negative partition rate"},
		{func(c *NetworkFaultConfig) { c.PartitionMeanHours = -1 }, "negative partition heal mean"},
	}
	for _, tc := range cases {
		var net NetworkFaultConfig
		tc.mut(&net)
		err := net.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("got %v, want substring %q", err, tc.want)
		}
		full := Config{Network: net}
		if err := full.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("composite Validate: got %v, want substring %q", err, tc.want)
		}
	}
}

// TestNetworkDefaultsAndEnabled pins the dwell defaults and the
// Enabled wiring through the composite config.
func TestNetworkDefaultsAndEnabled(t *testing.T) {
	if (NetworkFaultConfig{}).Enabled() {
		t.Fatal("zero network config reports enabled")
	}
	if !(Config{Network: NetworkFaultConfig{PartitionsPerYear: 1}}).Enabled() {
		t.Fatal("partitions alone do not enable the injector")
	}
	in, err := NewInjector(Config{Network: NetworkFaultConfig{PowerEventsPerYear: 2, PartitionsPerYear: 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := in.Config().Network
	if got.PowerRestoreMeanHours != 4 || got.PartitionMeanHours != 1 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

// TestNetworkStreamIsolated pins that enabling network faults leaves
// the other fault streams byte-identical: the same LSE gap sequence
// with and without network processes configured.
func TestNetworkStreamIsolated(t *testing.T) {
	base := Config{LSERatePerDiskHour: 1e-5, BurstsPerYear: 2}
	withNet := base
	withNet.Network = NetworkFaultConfig{SwitchFailsPerYear: 4, PartitionsPerYear: 12}
	a, err := NewInjector(base, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(withNet, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		// Interleave network draws on b: they must not perturb its main
		// stream.
		if i%3 == 0 {
			b.NextSwitchFailGap()
			b.DrawPartitionHeal()
			b.PickRack(16)
		}
		if ga, gb := a.NextLSEGap(), b.NextLSEGap(); ga != gb {
			t.Fatalf("draw %d: LSE gap diverged %v vs %v", i, ga, gb)
		}
		if ga, gb := a.NextBurstGap(), b.NextBurstGap(); ga != gb {
			t.Fatalf("draw %d: burst gap diverged %v vs %v", i, ga, gb)
		}
	}
}

// TestNetworkDisabledGapsInfinite pins the +Inf sentinels.
func TestNetworkDisabledGapsInfinite(t *testing.T) {
	in, err := NewInjector(Config{LSERatePerDiskHour: 1e-6}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, gap := range map[string]float64{
		"switch":    in.NextSwitchFailGap(),
		"power":     in.NextPowerEventGap(),
		"partition": in.NextPartitionGap(),
	} {
		if !math.IsInf(gap, 1) {
			t.Fatalf("%s gap = %v with process disabled, want +Inf", name, gap)
		}
	}
}
