// Package faults is the seeded, deterministic fault-injection layer of
// the simulator. The paper's reliability model assumes whole-disk deaths
// are the only fault mode; real fleets additionally see
//
//   - latent sector errors (LSEs): individual blocks silently become
//     unreadable and are only discovered when something reads them — a
//     rebuild sourcing from the block, or a periodic scrubber;
//   - correlated failure bursts: batch/vintage-correlated death clusters
//     (rack power events, firmware bugs) layered on top of the Table 1
//     hazard, which compress many failures into a short window; and
//   - transient rebuild-I/O faults: a rebuild read fails once and
//     succeeds on retry.
//
// The Injector owns all fault randomness on a stream split from the
// run's seed, so enabling injection never perturbs the failure-time,
// placement, or S.M.A.R.T. draws of the base simulation — with the zero
// Config the simulator's output is byte-identical to a tree without this
// package.
//
// Division of labour: the Injector holds the latent-error bookkeeping
// and every random draw; internal/core schedules the simulation events
// (LSE arrivals, scrub passes, burst deaths) and repairs discovered
// damage through the recovery engines; internal/recovery consults the
// Injector's ProbeRead/RetryBackoff when rebuild transfers complete.
package faults

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Outcome classifies one probed rebuild read.
type Outcome uint8

// Probed read outcomes.
const (
	// ReadOK means the source read succeeded.
	ReadOK Outcome = iota
	// ReadTransient means the read failed but the block is intact; a
	// retry (after backoff) may succeed.
	ReadTransient
	// ReadLatent means the read hit a latent sector error: the source
	// replica itself is damaged and must be repaired from redundancy.
	ReadLatent
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case ReadOK:
		return "ok"
	case ReadTransient:
		return "transient"
	case ReadLatent:
		return "latent"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Config describes the injected fault processes. The zero value disables
// injection entirely; any enabled process leaves the base simulation's
// random streams untouched (the Injector draws from its own split
// stream).
type Config struct {
	// LSERatePerDiskHour is the Poisson arrival rate of latent sector
	// errors per disk-hour (field studies put annualized LSE incidence
	// at a few percent of drives; ~3%/year ≈ 3.4e-6 per disk-hour).
	// Zero disables the LSE process.
	LSERatePerDiskHour float64
	// ScrubIntervalHours is the period of the background scrubber: every
	// interval, all accumulated latent errors are discovered and queued
	// for proactive repair through the recovery engine. Zero disables
	// scrubbing (LSEs are then found only by rebuild reads — or never,
	// until the last redundant copy dies).
	ScrubIntervalHours float64
	// BurstsPerYear is the cluster-level Poisson rate of correlated
	// failure bursts. Zero disables bursts.
	BurstsPerYear float64
	// BurstMeanSize is the mean number of drives killed per burst
	// (at least 1 dies; the excess is Poisson-distributed). Defaults to
	// 3 when bursts are enabled.
	BurstMeanSize float64
	// BurstSpanHours spreads a burst's deaths uniformly over this window
	// (defaults to 1 h when bursts are enabled).
	BurstSpanHours float64
	// TransientReadProb is the probability that a completed rebuild
	// transfer discovers its source read failed transiently and must be
	// retried. Zero disables transient faults.
	TransientReadProb float64
	// MaxRetries caps transient-fault retries per rebuild source before
	// the engine re-sources to another buddy (default 3).
	MaxRetries int
	// BackoffBaseHours is the first retry delay; subsequent retries
	// double it up to BackoffCapHours, with deterministic ±25% jitter
	// drawn from the injector's stream (defaults 0.05 h and 1 h).
	BackoffBaseHours float64
	BackoffCapHours  float64
	// MaxResourcings caps how many times one rebuild may switch source
	// before it is abandoned through the DroppedLost path (default 8).
	MaxResourcings int
	// SparePoolSize, when positive, bounds the traditional engine's
	// dedicated-spare pool: activations beyond the pool queue until a
	// replenishment drive arrives SpareReplenishHours later (default
	// 24 h). Zero keeps the paper's unlimited spares.
	SparePoolSize       int
	SpareReplenishHours float64
	// FailSlow configures gray-failure injection: drives that stay alive
	// but deliver a fraction of their recovery bandwidth. The zero value
	// disables it.
	FailSlow FailSlowConfig
	// Network configures correlated network faults — ToR switch deaths,
	// rack power events, transient partitions — that dark whole rack
	// domains (requires topology). The zero value disables it.
	Network NetworkFaultConfig
}

// FailSlowConfig describes the fail-slow (gray failure) processes:
// per-disk degradation onsets, optional spontaneous recovery, and
// correlated slow-bursts. All randomness is drawn from a dedicated
// stream split off the injector seed, so any combination of the *other*
// fault processes produces byte-identical runs whether or not this
// struct is zero — and vice versa.
type FailSlowConfig struct {
	// OnsetRatePerDiskHour is the hazard of a healthy drive entering a
	// degraded state (exponential). Field studies (Gunawi et al., FAST'18)
	// put fail-slow incidence at roughly 1–2% of drives per year
	// (~1e-6–2e-6 per disk-hour). Zero disables per-disk onsets.
	OnsetRatePerDiskHour float64
	// SlowFactor is k in the healthy → slow ×k → crawling ×k² ladder: a
	// slow drive delivers 1/k of its recovery allotment, a crawling
	// drive 1/k². Defaults to 4 when fail-slow is enabled.
	SlowFactor float64
	// CrawlProb is the probability that an onset lands directly in the
	// crawling state (×k²) rather than merely slow (×k). Default 0.2.
	CrawlProb float64
	// RecoveryMeanHours, when positive, gives degraded drives an
	// exponential dwell time after which they spontaneously return to
	// full speed (transient gray failures: firmware GC storms, thermal
	// throttling). Zero makes degradation permanent until the drive dies
	// or is evicted.
	RecoveryMeanHours float64
	// SlowBurstsPerYear is the cluster-level Poisson rate of correlated
	// slow-bursts — many drives degrading together (shared backplane,
	// switch congestion, bad firmware push). Zero disables bursts.
	SlowBurstsPerYear float64
	// SlowBurstMeanSize is the mean number of drives degraded per burst
	// (at least 1; the excess is Poisson). Default 8.
	SlowBurstMeanSize float64
	// SlowBurstSpanHours spreads a burst's onsets uniformly over this
	// window. Default 1 h.
	SlowBurstSpanHours float64
}

// Enabled reports whether any fail-slow process is configured.
func (c FailSlowConfig) Enabled() bool {
	return c.OnsetRatePerDiskHour > 0 || c.SlowBurstsPerYear > 0
}

// Validate checks the fail-slow configuration, rejecting NaN/±Inf with
// field-distinct messages before sign checks (a NaN bandwidth factor
// sails through `< 0` comparisons and poisons every duration downstream).
func (c FailSlowConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"OnsetRatePerDiskHour", c.OnsetRatePerDiskHour},
		{"SlowFactor", c.SlowFactor},
		{"CrawlProb", c.CrawlProb},
		{"RecoveryMeanHours", c.RecoveryMeanHours},
		{"SlowBurstsPerYear", c.SlowBurstsPerYear},
		{"SlowBurstMeanSize", c.SlowBurstMeanSize},
		{"SlowBurstSpanHours", c.SlowBurstSpanHours},
	} {
		if err := CheckFinite("faults: FailSlow."+f.name, f.v); err != nil {
			return err
		}
	}
	switch {
	case c.OnsetRatePerDiskHour < 0:
		return errors.New("faults: negative fail-slow onset rate")
	case c.SlowFactor < 0 || (c.SlowFactor > 0 && c.SlowFactor <= 1):
		return errors.New("faults: fail-slow factor must exceed 1")
	case c.CrawlProb < 0 || c.CrawlProb > 1:
		return errors.New("faults: crawl probability out of [0,1]")
	case c.RecoveryMeanHours < 0:
		return errors.New("faults: negative fail-slow recovery mean")
	case c.SlowBurstsPerYear < 0:
		return errors.New("faults: negative slow-burst rate")
	case c.SlowBurstMeanSize < 0:
		return errors.New("faults: negative slow-burst size")
	case c.SlowBurstSpanHours < 0:
		return errors.New("faults: negative slow-burst span")
	}
	return nil
}

// withDefaults fills the zero fail-slow policy fields.
func (c FailSlowConfig) withDefaults() FailSlowConfig {
	if !c.Enabled() {
		return c
	}
	if c.SlowFactor == 0 {
		c.SlowFactor = 4
	}
	if c.CrawlProb == 0 {
		c.CrawlProb = 0.2
	}
	if c.SlowBurstsPerYear > 0 {
		if c.SlowBurstMeanSize == 0 {
			c.SlowBurstMeanSize = 8
		}
		if c.SlowBurstSpanHours == 0 {
			c.SlowBurstSpanHours = 1
		}
	}
	return c
}

// CheckFinite rejects NaN and ±Inf float configuration values with a
// message naming the offending field; shared by the fault and core
// config validators.
func CheckFinite(field string, v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("%s is NaN", field)
	}
	if math.IsInf(v, 0) {
		return fmt.Errorf("%s is infinite (%v)", field, v)
	}
	return nil
}

// Enabled reports whether any fault process is configured.
func (c Config) Enabled() bool {
	return c.LSERatePerDiskHour > 0 || c.BurstsPerYear > 0 ||
		c.TransientReadProb > 0 || c.SparePoolSize > 0 || c.FailSlow.Enabled() ||
		c.Network.Enabled()
}

// Validate checks the configuration. Non-finite floats (NaN, ±Inf) are
// rejected first with field-distinct messages: a NaN rate passes every
// `< 0` guard and then poisons exponential gaps and durations downstream.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LSERatePerDiskHour", c.LSERatePerDiskHour},
		{"ScrubIntervalHours", c.ScrubIntervalHours},
		{"BurstsPerYear", c.BurstsPerYear},
		{"BurstMeanSize", c.BurstMeanSize},
		{"BurstSpanHours", c.BurstSpanHours},
		{"TransientReadProb", c.TransientReadProb},
		{"BackoffBaseHours", c.BackoffBaseHours},
		{"BackoffCapHours", c.BackoffCapHours},
		{"SpareReplenishHours", c.SpareReplenishHours},
	} {
		if err := CheckFinite("faults: "+f.name, f.v); err != nil {
			return err
		}
	}
	if err := c.FailSlow.Validate(); err != nil {
		return err
	}
	if err := c.Network.Validate(); err != nil {
		return err
	}
	switch {
	case c.LSERatePerDiskHour < 0:
		return errors.New("faults: negative LSE rate")
	case c.ScrubIntervalHours < 0:
		return errors.New("faults: negative scrub interval")
	case c.BurstsPerYear < 0:
		return errors.New("faults: negative burst rate")
	case c.BurstMeanSize < 0:
		return errors.New("faults: negative burst size")
	case c.BurstSpanHours < 0:
		return errors.New("faults: negative burst span")
	case c.TransientReadProb < 0 || c.TransientReadProb >= 1:
		return errors.New("faults: transient read probability out of [0,1)")
	case c.MaxRetries < 0:
		return errors.New("faults: negative retry cap")
	case c.BackoffBaseHours < 0 || c.BackoffCapHours < 0:
		return errors.New("faults: negative backoff")
	case c.MaxResourcings < 0:
		return errors.New("faults: negative re-sourcing cap")
	case c.SparePoolSize < 0:
		return errors.New("faults: negative spare pool")
	case c.SpareReplenishHours < 0:
		return errors.New("faults: negative spare replenish delay")
	}
	return nil
}

// withDefaults fills the zero policy fields.
func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBaseHours == 0 {
		c.BackoffBaseHours = 0.05
	}
	if c.BackoffCapHours == 0 {
		c.BackoffCapHours = 1
	}
	if c.MaxResourcings == 0 {
		c.MaxResourcings = 8
	}
	if c.BurstsPerYear > 0 {
		if c.BurstMeanSize == 0 {
			c.BurstMeanSize = 3
		}
		if c.BurstSpanHours == 0 {
			c.BurstSpanHours = 1
		}
	}
	if c.SparePoolSize > 0 && c.SpareReplenishHours == 0 {
		c.SpareReplenishHours = 24
	}
	c.FailSlow = c.FailSlow.withDefaults()
	c.Network = c.Network.withDefaults()
	return c
}

// lseKey identifies a latent error by the disk and the redundancy group
// of the damaged resident block (a disk holds at most one block per
// group, so the pair is unique).
type lseKey struct {
	disk  int32
	group int32
}

// Entry is one latent sector error: the damaged replica (Group, Rep)
// resident on Disk.
type Entry struct {
	Disk  int
	Group int
	Rep   int
}

// Injector owns the fault state and randomness of one simulation run.
// Not safe for concurrent use — like the rest of a run, it is
// single-threaded.
type Injector struct {
	cfg Config
	rng *rng.Source
	// slow is the dedicated fail-slow stream: every gray-failure draw
	// (onset gaps, severities, recovery dwell times, slow-bursts) comes
	// from here, so enabling/disabling fail-slow never perturbs the LSE,
	// burst, or transient-read draws and vice versa.
	slow *rng.Source
	// netr is the dedicated network-fault stream (switch-fail/power/
	// partition gaps, dwell times, victim racks), isolated for the same
	// reason.
	netr *rng.Source
	// latent maps (disk, group) to the damaged replica index; order
	// preserves deterministic scrub iteration.
	latent map[lseKey]int32
	order  []lseKey
	// onDiscover, when set, fires once per latent error found by a
	// rebuild read (scrub discovery is driven by the caller through
	// TakeLatent). It runs before ProbeRead returns.
	onDiscover func(now sim.Time, diskID, group, rep int)
	// fm mirrors probe outcomes into the flight recorder; never nil (a
	// sink over a private registry until SetMetrics installs a real one),
	// so ProbeRead stays branch-free.
	fm *obs.FaultMetrics
}

// failSlowSeedSalt splits the fail-slow (degraded-performance) stream
// off the injector's seed, so enabling fail-slow events never perturbs
// the fail-stop, latent-error, or network draws. Registered with
// farmlint's cross-package salt registry (rngsalt).
const failSlowSeedSalt = 0x51c0_f1a5_10fd_d15c

// NewInjector validates cfg, applies policy defaults, and seeds the
// injector's private random streams.
func NewInjector(cfg Config, seed uint64) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:    cfg.withDefaults(),
		rng:    rng.New(seed),
		slow:   rng.New(seed ^ failSlowSeedSalt),
		netr:   newNetStream(seed),
		latent: make(map[lseKey]int32),
		fm:     obs.NewFaultMetrics(obs.NewRegistry()),
	}, nil
}

// SetMetrics mirrors the injector's read-probe classifications into the
// given flight-recorder bundle. Purely observational.
func (in *Injector) SetMetrics(fm *obs.FaultMetrics) {
	if fm != nil {
		in.fm = fm
	}
}

// Config returns the effective (default-filled) configuration.
func (in *Injector) Config() Config { return in.cfg }

// SetDiscoveryHandler installs the callback fired when a rebuild read
// discovers a latent error.
func (in *Injector) SetDiscoveryHandler(fn func(now sim.Time, diskID, group, rep int)) {
	in.onDiscover = fn
}

// --- Latent sector errors ---

// NextLSEGap draws the time to a disk's next latent-error arrival
// (exponential with the per-disk rate). Returns +Inf when disabled.
func (in *Injector) NextLSEGap() float64 {
	if in.cfg.LSERatePerDiskHour <= 0 {
		return math.Inf(1)
	}
	return in.rng.Exp(in.cfg.LSERatePerDiskHour)
}

// PickIndex draws a uniform index in [0, n) from the injector's stream
// (used to choose which resident block an LSE lands on).
func (in *Injector) PickIndex(n int) int { return in.rng.Intn(n) }

// MarkLatent records a latent error on the block (group, rep) resident
// on disk. Returns false if that block already carries one.
func (in *Injector) MarkLatent(diskID, group, rep int) bool {
	k := lseKey{int32(diskID), int32(group)}
	if _, dup := in.latent[k]; dup {
		return false
	}
	in.latent[k] = int32(rep)
	in.order = append(in.order, k)
	return true
}

// LatentCount returns the number of undiscovered latent errors.
func (in *Injector) LatentCount() int { return len(in.latent) }

// removeLatent drops one entry, keeping order deterministic
// (swap-remove; the perturbed order is itself a pure function of the
// event history, so runs stay reproducible).
func (in *Injector) removeLatent(k lseKey) {
	delete(in.latent, k)
	for i, o := range in.order {
		if o == k {
			in.order[i] = in.order[len(in.order)-1]
			in.order = in.order[:len(in.order)-1]
			return
		}
	}
}

// DropDisk discards the latent errors on a disk (its death loses the
// blocks anyway) and returns how many were dropped.
func (in *Injector) DropDisk(diskID int) int {
	dropped := 0
	for i := 0; i < len(in.order); {
		k := in.order[i]
		if k.disk == int32(diskID) {
			delete(in.latent, k)
			in.order[i] = in.order[len(in.order)-1]
			in.order = in.order[:len(in.order)-1]
			dropped++
			continue
		}
		i++
	}
	return dropped
}

// TakeLatent drains every accumulated latent error in deterministic
// order — the scrubber's discovery pass. The caller repairs (or
// declares lost) each entry.
func (in *Injector) TakeLatent() []Entry {
	if len(in.order) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(in.order))
	for _, k := range in.order {
		out = append(out, Entry{Disk: int(k.disk), Group: int(k.group), Rep: int(in.latent[k])})
		delete(in.latent, k)
	}
	in.order = in.order[:0]
	return out
}

// --- Rebuild read probing (recovery.FaultModel) ---

// ProbeRead classifies a completed rebuild transfer's source read. A
// transient fault consumes one Bernoulli draw; a latent hit removes the
// error from the undiscovered set and fires the discovery handler
// before returning.
func (in *Injector) ProbeRead(now sim.Time, src, group int) Outcome {
	in.fm.ProbeReads.Inc()
	if p := in.cfg.TransientReadProb; p > 0 && in.rng.Float64() < p {
		in.fm.ProbeTransient.Inc()
		return ReadTransient
	}
	k := lseKey{int32(src), int32(group)}
	if rep, ok := in.latent[k]; ok {
		in.fm.ProbeLatent.Inc()
		in.removeLatent(k)
		if in.onDiscover != nil {
			in.onDiscover(now, src, group, int(rep))
		}
		return ReadLatent
	}
	return ReadOK
}

// RetryBackoff returns the delay before retry attempt n (1-based):
// capped exponential with ±25% jitter from the injector's stream.
func (in *Injector) RetryBackoff(attempt int) sim.Time {
	if attempt < 1 {
		attempt = 1
	}
	d := in.cfg.BackoffBaseHours * math.Pow(2, float64(attempt-1))
	if d > in.cfg.BackoffCapHours {
		d = in.cfg.BackoffCapHours
	}
	return sim.Time(d * (0.75 + 0.5*in.rng.Float64()))
}

// MaxRetries returns the per-source transient retry cap.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// MaxResourcings returns the per-rebuild source-switch cap.
func (in *Injector) MaxResourcings() int { return in.cfg.MaxResourcings }

// --- Correlated failure bursts ---

// NextBurstGap draws the time to the next burst (exponential with the
// cluster-level rate). Returns +Inf when disabled.
func (in *Injector) NextBurstGap() float64 {
	if in.cfg.BurstsPerYear <= 0 {
		return math.Inf(1)
	}
	return in.rng.Exp(in.cfg.BurstsPerYear / 8760)
}

// BurstSize draws how many drives one burst kills: 1 + Poisson(mean-1).
func (in *Injector) BurstSize() int {
	mean := in.cfg.BurstMeanSize
	if mean <= 1 {
		return 1
	}
	return 1 + poisson(in.rng, mean-1)
}

// BurstDelay draws a death's offset within the burst window.
func (in *Injector) BurstDelay() float64 {
	return in.rng.Float64() * in.cfg.BurstSpanHours
}

// SampleVictims draws k distinct indices in [0, n).
func (in *Injector) SampleVictims(n, k int) []int {
	return in.rng.SampleK(n, k)
}

// poisson draws Poisson(lambda) from src by Knuth's product method
// (lambda is small here — burst sizes — so the loop is short).
func poisson(src *rng.Source, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// --- Fail-slow (gray failure) injection ---
//
// All draws below come from the injector's dedicated slow stream.

// NextSlowOnsetGap draws the time to a drive's next fail-slow onset
// (exponential with the per-disk hazard). Returns +Inf when disabled.
func (in *Injector) NextSlowOnsetGap() float64 {
	if in.cfg.FailSlow.OnsetRatePerDiskHour <= 0 {
		return math.Inf(1)
	}
	return in.slow.Exp(in.cfg.FailSlow.OnsetRatePerDiskHour)
}

// DrawSlowSeverity draws the degradation factor of one onset: ×k (slow)
// or ×k² (crawling) with the configured crawl probability.
func (in *Injector) DrawSlowSeverity() float64 {
	k := in.cfg.FailSlow.SlowFactor
	if in.cfg.FailSlow.CrawlProb > 0 && in.slow.Float64() < in.cfg.FailSlow.CrawlProb {
		return k * k
	}
	return k
}

// DrawSlowRecovery draws the dwell time until a degraded drive
// spontaneously recovers. ok is false when degradation is permanent.
func (in *Injector) DrawSlowRecovery() (hours float64, ok bool) {
	m := in.cfg.FailSlow.RecoveryMeanHours
	if m <= 0 {
		return 0, false
	}
	return in.slow.Exp(1 / m), true
}

// NextSlowBurstGap draws the time to the next correlated slow-burst.
// Returns +Inf when disabled.
func (in *Injector) NextSlowBurstGap() float64 {
	if in.cfg.FailSlow.SlowBurstsPerYear <= 0 {
		return math.Inf(1)
	}
	return in.slow.Exp(in.cfg.FailSlow.SlowBurstsPerYear / 8760)
}

// SlowBurstSize draws how many drives one slow-burst degrades:
// 1 + Poisson(mean-1).
func (in *Injector) SlowBurstSize() int {
	mean := in.cfg.FailSlow.SlowBurstMeanSize
	if mean <= 1 {
		return 1
	}
	return 1 + poisson(in.slow, mean-1)
}

// SlowBurstDelay draws an onset's offset within the slow-burst window.
func (in *Injector) SlowBurstDelay() float64 {
	return in.slow.Float64() * in.cfg.FailSlow.SlowBurstSpanHours
}

// SampleSlowVictims draws k distinct indices in [0, n) from the
// fail-slow stream.
func (in *Injector) SampleSlowVictims(n, k int) []int {
	return in.slow.SampleK(n, k)
}
