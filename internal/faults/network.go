package faults

import (
	"errors"
	"math"

	"repro/internal/rng"
)

// NetworkFaultConfig describes the correlated network-fault processes
// that dark whole rack domains at once: ToR switch failures (permanent
// until the false-dead policy fences the rack), rack power events
// (restored after an exponential dwell), and transient network
// partitions (healed after an exponential dwell). All of them render a
// rack's disks *unreachable* — the data is intact behind a dark switch,
// distinct from dead — and all randomness comes from a dedicated stream
// split off the injector seed, so enabling network faults never
// perturbs the LSE/burst/transient/fail-slow draws and vice versa. The
// zero value disables everything. Requires topology to be configured
// (racks are the fault domain).
type NetworkFaultConfig struct {
	// SwitchFailsPerYear is the cluster-level Poisson rate of ToR switch
	// failures. A failed switch never recovers on its own: the rack
	// stays dark until the false-dead timeout declares its disks lost
	// and the rack is fenced and repaired. Zero disables.
	SwitchFailsPerYear float64
	// PowerEventsPerYear is the cluster-level Poisson rate of rack
	// power events (PDU trips, maintenance mistakes). Zero disables.
	PowerEventsPerYear float64
	// PowerRestoreMeanHours is the mean of the exponential dwell before
	// power returns. Default 4 h.
	PowerRestoreMeanHours float64
	// PartitionsPerYear is the cluster-level Poisson rate of transient
	// network partitions isolating one rack. Zero disables.
	PartitionsPerYear float64
	// PartitionMeanHours is the mean of the exponential dwell before a
	// partition heals. Default 1 h.
	PartitionMeanHours float64
}

// Enabled reports whether any network-fault process is configured.
func (c NetworkFaultConfig) Enabled() bool {
	return c.SwitchFailsPerYear > 0 || c.PowerEventsPerYear > 0 || c.PartitionsPerYear > 0
}

// Validate checks the network-fault configuration, rejecting NaN/±Inf
// with field-distinct messages before sign checks (a NaN event rate
// turns every exponential gap into NaN and stalls the event queue).
func (c NetworkFaultConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SwitchFailsPerYear", c.SwitchFailsPerYear},
		{"PowerEventsPerYear", c.PowerEventsPerYear},
		{"PowerRestoreMeanHours", c.PowerRestoreMeanHours},
		{"PartitionsPerYear", c.PartitionsPerYear},
		{"PartitionMeanHours", c.PartitionMeanHours},
	} {
		if err := CheckFinite("faults: Network."+f.name, f.v); err != nil {
			return err
		}
	}
	switch {
	case c.SwitchFailsPerYear < 0:
		return errors.New("faults: negative switch-failure rate")
	case c.PowerEventsPerYear < 0:
		return errors.New("faults: negative power-event rate")
	case c.PowerRestoreMeanHours < 0:
		return errors.New("faults: negative power-restore mean")
	case c.PartitionsPerYear < 0:
		return errors.New("faults: negative partition rate")
	case c.PartitionMeanHours < 0:
		return errors.New("faults: negative partition heal mean")
	}
	return nil
}

// withDefaults fills the zero dwell means.
func (c NetworkFaultConfig) withDefaults() NetworkFaultConfig {
	if !c.Enabled() {
		return c
	}
	if c.PowerEventsPerYear > 0 && c.PowerRestoreMeanHours == 0 {
		c.PowerRestoreMeanHours = 4
	}
	if c.PartitionsPerYear > 0 && c.PartitionMeanHours == 0 {
		c.PartitionMeanHours = 1
	}
	return c
}

// hoursPerYear converts the per-year rates of the network processes to
// the simulator's hour clock.
const hoursPerYear = 8760

// NextSwitchFailGap draws the time (hours) to the next ToR switch
// failure. Returns +Inf when disabled.
func (in *Injector) NextSwitchFailGap() float64 {
	if in.cfg.Network.SwitchFailsPerYear <= 0 {
		return math.Inf(1)
	}
	return in.netr.Exp(in.cfg.Network.SwitchFailsPerYear / hoursPerYear)
}

// NextPowerEventGap draws the time (hours) to the next rack power
// event. Returns +Inf when disabled.
func (in *Injector) NextPowerEventGap() float64 {
	if in.cfg.Network.PowerEventsPerYear <= 0 {
		return math.Inf(1)
	}
	return in.netr.Exp(in.cfg.Network.PowerEventsPerYear / hoursPerYear)
}

// NextPartitionGap draws the time (hours) to the next transient
// partition. Returns +Inf when disabled.
func (in *Injector) NextPartitionGap() float64 {
	if in.cfg.Network.PartitionsPerYear <= 0 {
		return math.Inf(1)
	}
	return in.netr.Exp(in.cfg.Network.PartitionsPerYear / hoursPerYear)
}

// DrawPowerRestore draws the dwell (hours) until a darked rack's power
// returns.
func (in *Injector) DrawPowerRestore() float64 {
	return in.netr.Exp(1 / in.cfg.Network.PowerRestoreMeanHours)
}

// DrawPartitionHeal draws the dwell (hours) until a partition heals.
func (in *Injector) DrawPartitionHeal() float64 {
	return in.netr.Exp(1 / in.cfg.Network.PartitionMeanHours)
}

// PickRack draws a uniform victim rack in [0, n) from the network
// stream.
func (in *Injector) PickRack(n int) int { return in.netr.Intn(n) }

// netSeedSalt splits the network-fault stream off the injector seed
// ("netfault" in ASCII); a dedicated stream keeps every other fault
// process byte-identical whether or not network faults are enabled.
const netSeedSalt = 0x6e65_7466_6175_6c74

func newNetStream(seed uint64) *rng.Source { return rng.New(seed ^ netSeedSalt) }
