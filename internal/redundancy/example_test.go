package redundancy_test

import (
	"fmt"

	"repro/internal/redundancy"
)

func ExampleParse() {
	scheme := redundancy.MustParse("4/6")
	fmt.Println("scheme:", scheme)
	fmt.Println("tolerates:", scheme.FaultTolerance(), "failures")
	fmt.Printf("efficiency: %.2f\n", scheme.StorageEfficiency())
	// Output:
	// scheme: 4/6
	// tolerates: 2 failures
	// efficiency: 0.67
}

func ExampleScheme_BlockBytes() {
	scheme := redundancy.MustParse("4/6")
	const groupBytes = 10 << 30 // 10 GiB of user data
	fmt.Printf("block: %d GiB\n", scheme.BlockBytes(groupBytes)>>30)
	fmt.Printf("raw group: %d GiB\n", scheme.GroupRawBytes(groupBytes)>>30)
	// Output:
	// block: 2 GiB
	// raw group: 15 GiB
}

func ExampleScheme_Lost() {
	scheme := redundancy.MustParse("8/10")
	fmt.Println("8 of 10 blocks left:", scheme.Lost(8))
	fmt.Println("7 of 10 blocks left:", scheme.Lost(7))
	// Output:
	// 8 of 10 blocks left: false
	// 7 of 10 blocks left: true
}
