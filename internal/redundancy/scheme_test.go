package redundancy

import (
	"testing"
	"testing/quick"
)

func TestNewSchemeValidation(t *testing.T) {
	valid := [][2]int{{1, 2}, {1, 3}, {2, 3}, {4, 5}, {4, 6}, {8, 10}, {16, 20}}
	for _, v := range valid {
		if _, err := NewScheme(v[0], v[1]); err != nil {
			t.Errorf("NewScheme(%d,%d): %v", v[0], v[1], err)
		}
	}
	invalid := [][2]int{{0, 2}, {-1, 3}, {2, 2}, {3, 2}, {5, 5}}
	for _, v := range invalid {
		if _, err := NewScheme(v[0], v[1]); err == nil {
			t.Errorf("NewScheme(%d,%d) should fail", v[0], v[1])
		}
	}
}

func TestParse(t *testing.T) {
	cases := map[string]Scheme{
		"1/2":    {1, 2},
		"8/10":   {8, 10},
		" 4 / 6": {4, 6},
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "1", "1/2/3", "a/b", "2/1", "0/4"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage did not panic")
		}
	}()
	MustParse("zzz")
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range PaperSchemes() {
		rt, err := Parse(s.String())
		if err != nil || rt != s {
			t.Errorf("round trip failed for %v: %v %v", s, rt, err)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	cases := []struct {
		s          Scheme
		tol        int
		efficiency float64
	}{
		{Scheme{1, 2}, 1, 0.5},
		{Scheme{1, 3}, 2, 1.0 / 3},
		{Scheme{2, 3}, 1, 2.0 / 3},
		{Scheme{4, 5}, 1, 0.8},
		{Scheme{4, 6}, 2, 2.0 / 3},
		{Scheme{8, 10}, 2, 0.8},
	}
	for _, c := range cases {
		if c.s.FaultTolerance() != c.tol {
			t.Errorf("%v tolerance = %d, want %d", c.s, c.s.FaultTolerance(), c.tol)
		}
		if got := c.s.StorageEfficiency(); got != c.efficiency {
			t.Errorf("%v efficiency = %v, want %v", c.s, got, c.efficiency)
		}
		if c.s.CheckBlocks() != c.s.N-c.s.M {
			t.Errorf("%v check blocks wrong", c.s)
		}
	}
}

func TestBlockBytes(t *testing.T) {
	const gib = int64(1) << 30
	cases := []struct {
		s     Scheme
		group int64
		block int64
		raw   int64
	}{
		{Scheme{1, 2}, 10 * gib, 10 * gib, 20 * gib},
		{Scheme{4, 6}, 10 * gib, 10 * gib / 4, 15 * gib},
		{Scheme{8, 10}, 8 * gib, gib, 10 * gib},
		{Scheme{4, 5}, 10, 3, 15}, // ceil division: 10/4 -> 3
	}
	for _, c := range cases {
		if got := c.s.BlockBytes(c.group); got != c.block {
			t.Errorf("%v BlockBytes(%d) = %d, want %d", c.s, c.group, got, c.block)
		}
		if got := c.s.GroupRawBytes(c.group); got != c.raw {
			t.Errorf("%v GroupRawBytes(%d) = %d, want %d", c.s, c.group, got, c.raw)
		}
	}
}

func TestLostPredicate(t *testing.T) {
	s := Scheme{4, 6}
	for avail := 0; avail <= 6; avail++ {
		want := avail < 4
		if s.Lost(avail) != want {
			t.Errorf("Lost(%d) = %v, want %v", avail, s.Lost(avail), want)
		}
	}
}

func TestClassification(t *testing.T) {
	if !(Scheme{1, 2}).IsMirror() || (Scheme{2, 3}).IsMirror() {
		t.Error("IsMirror wrong")
	}
	if !(Scheme{4, 5}).IsSingleParity() || (Scheme{4, 6}).IsSingleParity() {
		t.Error("IsSingleParity wrong")
	}
}

func TestPaperSchemesOrder(t *testing.T) {
	got := PaperSchemes()
	want := []string{"1/2", "1/3", "2/3", "4/5", "4/6", "8/10"}
	if len(got) != len(want) {
		t.Fatalf("PaperSchemes length %d", len(got))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("scheme %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: raw bytes always cover the user bytes with overhead n/m, and
// efficiency * overhead == 1.
func TestQuickConsistency(t *testing.T) {
	f := func(m8, n8 uint8, group uint32) bool {
		m := int(m8%12) + 1
		n := m + int(n8%8) + 1
		s, err := NewScheme(m, n)
		if err != nil {
			return false
		}
		g := int64(group) + 1
		raw := s.GroupRawBytes(g)
		if raw < g {
			return false
		}
		eff := s.StorageEfficiency()
		ovh := s.StorageOverhead()
		return eff > 0 && eff <= 1 && ovh >= 1 && eff*ovh > 0.999 && eff*ovh < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
