// Package redundancy models the paper's redundancy-group configurations:
// m/n schemes that store m blocks of user data plus n−m check blocks and
// survive the loss of any n−m blocks.
//
// This is the shared vocabulary between the reliability simulator (which
// only needs loss-tolerance semantics and block sizes) and the byte-level
// codecs in internal/erasure (which implement the same schemes on data).
package redundancy

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Scheme is an m/n redundancy configuration. The paper writes m⌢n; we use
// the "m/n" notation from Figures 3 and 8. m == 1 is n-way mirroring;
// n−m == 1 is RAID-5-like single parity; the rest are general erasure
// codes.
type Scheme struct {
	M int // user-data blocks per group
	N int // total blocks per group (data + check)
}

// ErrScheme reports an invalid scheme specification.
var ErrScheme = errors.New("redundancy: invalid scheme")

// NewScheme validates and returns an m/n scheme.
func NewScheme(m, n int) (Scheme, error) {
	if m < 1 || n <= m {
		return Scheme{}, fmt.Errorf("%w: %d/%d", ErrScheme, m, n)
	}
	return Scheme{M: m, N: n}, nil
}

// Parse reads "m/n" notation, e.g. "1/2", "8/10".
func Parse(s string) (Scheme, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return Scheme{}, fmt.Errorf("%w: %q", ErrScheme, s)
	}
	m, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return Scheme{}, fmt.Errorf("%w: %q", ErrScheme, s)
	}
	return NewScheme(m, n)
}

// MustParse is Parse for package-level tables; it panics on error.
func MustParse(s string) Scheme {
	sch, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sch
}

// String returns the "m/n" notation.
func (s Scheme) String() string { return fmt.Sprintf("%d/%d", s.M, s.N) }

// CheckBlocks returns k = n − m, the number of parity/replica blocks.
func (s Scheme) CheckBlocks() int { return s.N - s.M }

// FaultTolerance returns the number of simultaneous block losses a group
// survives: n − m.
func (s Scheme) FaultTolerance() int { return s.N - s.M }

// StorageEfficiency returns m/n, the ratio of user data to total storage —
// the paper's storage-efficiency tradeoff (1/2 for two-way mirroring,
// m/n for an ECC).
func (s Scheme) StorageEfficiency() float64 { return float64(s.M) / float64(s.N) }

// StorageOverhead returns n/m, the raw bytes stored per user byte.
func (s Scheme) StorageOverhead() float64 { return float64(s.N) / float64(s.M) }

// BlockBytes returns the size of a single block for a group holding
// groupBytes of user data: user data is split over the m data blocks, and
// every block (data or check) has the same size.
func (s Scheme) BlockBytes(groupBytes int64) int64 {
	return (groupBytes + int64(s.M) - 1) / int64(s.M)
}

// GroupRawBytes returns the total raw bytes a group occupies on disk.
func (s Scheme) GroupRawBytes(groupBytes int64) int64 {
	return s.BlockBytes(groupBytes) * int64(s.N)
}

// Lost reports whether a group with the given number of still-available
// blocks has lost data (fewer than m survivors).
func (s Scheme) Lost(available int) bool { return available < s.M }

// IsMirror reports whether the scheme is n-way replication.
func (s Scheme) IsMirror() bool { return s.M == 1 }

// IsSingleParity reports whether the scheme is RAID-5-like (k == 1).
func (s Scheme) IsSingleParity() bool { return s.N-s.M == 1 }

// PaperSchemes returns the six configurations of Figure 3 in paper order:
// 1/2, 1/3, 2/3, 4/5, 4/6, 8/10.
func PaperSchemes() []Scheme {
	return []Scheme{
		{M: 1, N: 2}, {M: 1, N: 3},
		{M: 2, N: 3}, {M: 4, N: 5},
		{M: 4, N: 6}, {M: 8, N: 10},
	}
}
