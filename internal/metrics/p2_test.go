package metrics

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator for test streams (not a stats
// RNG; just stable noise).
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / float64(1<<53)
}

// TestP2SmallSampleExact: with fewer than five observations the
// estimator must match the exact interpolated quantile bit for bit.
func TestP2SmallSampleExact(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		p := NewP2(q)
		xs := []float64{7, 3, 11, 5}
		for i, x := range xs {
			p.Add(x)
			want := Quantile(xs[:i+1], q)
			if got := p.Value(); got != want {
				t.Fatalf("q=%v n=%d: got %v, want exact %v", q, i+1, got, want)
			}
		}
	}
}

// TestP2TracksMedianAndTail: on a smooth unimodal stream the P² median
// and P99 stay within a few percent of the exact order statistics —
// far tighter than the 2–4x discrimination thresholds the straggler
// detector feeds.
func TestP2TracksMedianAndTail(t *testing.T) {
	var r lcg = 42
	p50, p99 := NewP2(0.5), NewP2(0.99)
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Sum of three uniforms: smooth, bell-ish on [0, 48).
		x := 16 * (r.next() + r.next() + r.next())
		xs = append(xs, x)
		p50.Add(x)
		p99.Add(x)
	}
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", p50.Value(), Quantile(xs, 0.5)},
		{"p99", p99.Value(), Quantile(xs, 0.99)},
	} {
		if rel := math.Abs(tc.got-tc.want) / tc.want; rel > 0.05 {
			t.Errorf("%s: got %v, want ~%v (rel err %.3f)", tc.name, tc.got, tc.want, rel)
		}
	}
	if p50.N() != 20000 || p50.Q() != 0.5 {
		t.Fatalf("N=%d Q=%v", p50.N(), p50.Q())
	}
}

// TestP2ZeroValueActsAsMedian: the zero value self-initialises on first
// Add (defensive: detector fields embedded in larger zero structs).
func TestP2ZeroValueActsAsMedian(t *testing.T) {
	var p P2Quantile
	for _, x := range []float64{1, 2, 3, 4, 5, 6, 7} {
		p.Add(x)
	}
	if got := p.Value(); math.Abs(got-4) > 1 {
		t.Fatalf("zero-value median = %v, want ~4", got)
	}
	if p.Q() != 0.5 {
		t.Fatalf("zero-value q = %v, want 0.5", p.Q())
	}
}

// TestP2Clamps: out-of-range targets clamp instead of panicking.
func TestP2Clamps(t *testing.T) {
	for _, q := range []float64{-1, 0, 2, math.NaN()} {
		p := NewP2(q)
		for i := 0; i < 10; i++ {
			p.Add(float64(i))
		}
		if v := p.Value(); math.IsNaN(v) {
			t.Fatalf("q=%v produced NaN estimate", q)
		}
	}
}

// TestP2Monotone: the estimate lies within the observed range.
func TestP2Monotone(t *testing.T) {
	var r lcg = 7
	p := NewP2(0.99)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 5000; i++ {
		x := r.next() * 100
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
		p.Add(x)
		if v := p.Value(); v < lo || v > hi {
			t.Fatalf("estimate %v escaped observed range [%v, %v] at n=%d", v, lo, hi, i+1)
		}
	}
}
