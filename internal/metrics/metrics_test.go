package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("zero value not clean")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of the classic dataset: population var is 4, sample
	// var is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("single observation stats wrong")
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 5000)
	var w Welford
	sum := 0.0
	for i := range xs {
		xs[i] = r.Norm(10, 3)
		w.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("variance %v vs %v", w.Variance(), variance)
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(2)
	var whole, a, b Welford
	for i := 0; i < 3000; i++ {
		x := r.Float64() * 100
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty wrong")
	}
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI for the mean of uniform(0,1) samples should contain 0.5
	// roughly 95% of the time.
	r := rng.New(3)
	hits := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		var w Welford
		for j := 0; j < 100; j++ {
			w.Add(r.Float64())
		}
		if math.Abs(w.Mean()-0.5) <= w.CI95() {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("CI95 coverage %v, want ~0.95", rate)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if p.Estimate() != 0 {
		t.Fatal("empty proportion estimate nonzero")
	}
	lo, hi := p.Wilson95()
	if lo != 0 || hi != 1 {
		t.Fatal("empty proportion CI should be [0,1]")
	}
	for i := 0; i < 100; i++ {
		p.Add(i < 30)
	}
	if p.Estimate() != 0.3 {
		t.Fatalf("estimate = %v", p.Estimate())
	}
	lo, hi = p.Wilson95()
	if lo >= 0.3 || hi <= 0.3 {
		t.Fatalf("CI [%v,%v] does not contain estimate", lo, hi)
	}
	if lo < 0.2 || hi > 0.42 {
		t.Fatalf("CI [%v,%v] implausibly wide for n=100", lo, hi)
	}
}

func TestWilsonAtExtremes(t *testing.T) {
	var p Proportion
	for i := 0; i < 50; i++ {
		p.Add(false)
	}
	lo, hi := p.Wilson95()
	if lo != 0 {
		t.Fatalf("all-failure lo = %v", lo)
	}
	if hi <= 0 || hi > 0.10 {
		t.Fatalf("all-failure hi = %v, want small positive", hi)
	}
	var q Proportion
	for i := 0; i < 50; i++ {
		q.Add(true)
	}
	lo, hi = q.Wilson95()
	if hi != 1 {
		t.Fatalf("all-success hi = %v", hi)
	}
	if lo >= 1 || lo < 0.9 {
		t.Fatalf("all-success lo = %v", lo)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Buckets[i] != c {
			t.Fatalf("bucket %d = %d, want %d (buckets %v)", i, h.Buckets[i], c, h.Buckets)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.35); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 3.5", got)
	}
}

// Property: Merge is equivalent to adding all observations to one
// accumulator, regardless of split.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(seed uint64, splitAt uint8) bool {
		r := rng.New(seed)
		n := 64
		split := int(splitAt) % n
		var whole, a, b Welford
		for i := 0; i < n; i++ {
			x := r.Norm(0, 5)
			whole.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProportionMerge(t *testing.T) {
	var a, b, whole Proportion
	outcomes := []bool{true, false, false, true, true, false, false, false, true, false}
	for i, o := range outcomes {
		whole.Add(o)
		if i < 4 {
			a.Add(o)
		} else {
			b.Add(o)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatalf("merged proportion %+v, want %+v", a, whole)
	}
	// Merging an empty accumulator is a no-op.
	var empty Proportion
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merge with empty changed the accumulator")
	}
}
