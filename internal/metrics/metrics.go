// Package metrics provides the streaming statistics the Monte Carlo driver
// and the experiments use: Welford mean/variance, binomial proportion
// estimates with 95% confidence intervals (Figure 7's error bars), and
// fixed-width histograms.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass, numerically stably.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 for none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for none).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// CI95 returns the 95% confidence half-width for the mean (normal
// approximation, appropriate at the run counts the experiments use).
func (w *Welford) CI95() float64 { return z95 * w.StdErr() }

// Merge folds another accumulator into this one (parallel reduction).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Proportion estimates a probability from Bernoulli trials — the
// probability of data loss over Monte Carlo runs.
type Proportion struct {
	Successes int
	Trials    int
}

// Add records one trial.
func (p *Proportion) Add(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Merge folds another accumulator into this one (parallel reduction).
// Integer counts make the merge exact and order-independent, unlike
// Welford.Merge.
func (p *Proportion) Merge(o *Proportion) {
	p.Successes += o.Successes
	p.Trials += o.Trials
}

// Estimate returns the point estimate successes/trials (0 for no trials).
func (p *Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson95 returns the Wilson score 95% interval (lo, hi), which behaves
// sensibly at the extremes (0 or all losses) where the Wald interval
// collapses.
func (p *Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	ph := p.Estimate()
	z2 := z95 * z95
	den := 1 + z2/n
	center := (ph + z2/(2*n)) / den
	half := z95 * math.Sqrt(ph*(1-ph)/n+z2/(4*n*n)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram is a fixed-width histogram over [Lo, Hi) with out-of-range
// counters.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
	count   int
}

// ErrHistogram reports an invalid histogram specification.
var ErrHistogram = errors.New("metrics: invalid histogram")

// NewHistogram builds a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, ErrHistogram
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // guard fp edge
			i--
		}
		h.Buckets[i]++
	}
}

// Count returns total observations including out-of-range ones.
func (h *Histogram) Count() int { return h.count }

// P2Quantile is a streaming quantile estimator using the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers track the target quantile
// with O(1) memory and O(1) deterministic update cost, no allocation
// after construction. It is the cluster-median estimator of the
// straggler detector and the per-run rebuild-time tail (P50/P99)
// accumulator — places where storing every observation would break the
// simulator's allocation-free steady state.
//
// The estimate is exact for the first five observations (it falls back
// to the sorted prefix) and an interpolated approximation afterwards;
// for the smooth unimodal distributions the detector sees, the error is
// well under the 2–4× discrimination thresholds it feeds.
type P2Quantile struct {
	q       float64    // target quantile in (0, 1)
	heights [5]float64 // marker heights q0..q4
	pos     [5]float64 // actual marker positions (1-based counts)
	want    [5]float64 // desired marker positions
	dWant   [5]float64 // desired-position increments per observation
	n       int
}

// NewP2 returns a streaming estimator of the q-quantile. q outside
// (0, 1) is clamped to the nearest meaningful value.
func NewP2(q float64) P2Quantile {
	if !(q > 0) { // also catches NaN
		q = 0.5
	}
	if q >= 1 {
		q = 1 - 1e-9
	}
	p := P2Quantile{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.dWant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Q returns the target quantile.
func (p *P2Quantile) Q() float64 { return p.q }

// N returns the number of observations.
func (p *P2Quantile) N() int { return p.n }

// Add incorporates one observation.
func (p *P2Quantile) Add(x float64) {
	if p.dWant[4] == 0 {
		// Zero value used directly; behave as a median estimator.
		*p = NewP2(0.5)
	}
	if p.n < 5 {
		// Insertion sort into the initial marker set.
		i := p.n
		for i > 0 && p.heights[i-1] > x {
			p.heights[i] = p.heights[i-1]
			i--
		}
		p.heights[i] = x
		p.n++
		if p.n == 5 {
			p.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	p.n++
	// Locate the cell containing x and clamp the extremes.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.dWant[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction.
func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate (0 with no observations).
// With fewer than five observations it interpolates the sorted prefix
// exactly, so small samples are not biased by marker initialisation.
func (p *P2Quantile) Value() float64 {
	switch {
	case p.n == 0:
		return 0
	case p.n < 5:
		pos := p.q * float64(p.n-1)
		i := int(pos)
		if i >= p.n-1 {
			return p.heights[p.n-1]
		}
		frac := pos - float64(i)
		return p.heights[i]*(1-frac) + p.heights[i+1]*frac
	default:
		return p.heights[2]
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sample, interpolating
// between order statistics. It sorts a copy; fine for experiment-sized
// samples.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}
