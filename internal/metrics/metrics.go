// Package metrics provides the streaming statistics the Monte Carlo driver
// and the experiments use: Welford mean/variance, binomial proportion
// estimates with 95% confidence intervals (Figure 7's error bars), and
// fixed-width histograms.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass, numerically stably.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 for none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for none).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// z95 is the two-sided 95% normal quantile.
const z95 = 1.959963984540054

// CI95 returns the 95% confidence half-width for the mean (normal
// approximation, appropriate at the run counts the experiments use).
func (w *Welford) CI95() float64 { return z95 * w.StdErr() }

// Merge folds another accumulator into this one (parallel reduction).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Proportion estimates a probability from Bernoulli trials — the
// probability of data loss over Monte Carlo runs.
type Proportion struct {
	Successes int
	Trials    int
}

// Add records one trial.
func (p *Proportion) Add(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Merge folds another accumulator into this one (parallel reduction).
// Integer counts make the merge exact and order-independent, unlike
// Welford.Merge.
func (p *Proportion) Merge(o *Proportion) {
	p.Successes += o.Successes
	p.Trials += o.Trials
}

// Estimate returns the point estimate successes/trials (0 for no trials).
func (p *Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson95 returns the Wilson score 95% interval (lo, hi), which behaves
// sensibly at the extremes (0 or all losses) where the Wald interval
// collapses.
func (p *Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	ph := p.Estimate()
	z2 := z95 * z95
	den := 1 + z2/n
	center := (ph + z2/(2*n)) / den
	half := z95 * math.Sqrt(ph*(1-ph)/n+z2/(4*n*n)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram is a fixed-width histogram over [Lo, Hi) with out-of-range
// counters.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
	count   int
}

// ErrHistogram reports an invalid histogram specification.
var ErrHistogram = errors.New("metrics: invalid histogram")

// NewHistogram builds a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, ErrHistogram
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // guard fp edge
			i--
		}
		h.Buckets[i]++
	}
}

// Count returns total observations including out-of-range ones.
func (h *Histogram) Count() int { return h.count }

// Quantile returns the q-quantile (0 <= q <= 1) of a sample, interpolating
// between order statistics. It sorts a copy; fine for experiment-sized
// samples.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}
