package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

func ExampleWelford() {
	var w metrics.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("n=%d mean=%.1f stddev=%.2f\n", w.N(), w.Mean(), w.StdDev())
	// Output:
	// n=8 mean=5.0 stddev=2.14
}

func ExampleProportion() {
	// Probability of data loss over Monte Carlo runs, with a Wilson 95%
	// interval.
	var p metrics.Proportion
	for run := 0; run < 100; run++ {
		p.Add(run < 7) // 7 of 100 runs lost data
	}
	lo, hi := p.Wilson95()
	fmt.Printf("P(loss) = %.2f [%.3f, %.3f]\n", p.Estimate(), lo, hi)
	// Output:
	// P(loss) = 0.07 [0.034, 0.137]
}
