// Package rng provides deterministic, splittable pseudo-random number
// generation for the FARM simulator.
//
// Reliability simulations must be reproducible: the same seed must produce
// the same six-year trajectory on every platform, and Monte Carlo drivers
// must be able to hand each parallel run an independent stream derived from
// a single master seed. The standard library's math/rand (v1) does not
// guarantee a stable algorithm across Go releases for its top-level
// functions, so this package pins a specific generator: xoshiro256** seeded
// through splitmix64, the combination recommended by the xoshiro authors.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// The splitmix64 constants (Vigna's splitmix64.c, derived from Steele,
// Lea & Flood's SplittableRandom). This is their one home in the repo:
// every consumer of the mixer — stream seeding here, placement hashing
// in internal/placement — references these, so a typo'd digit cannot
// silently fork the two into different hash functions.
const (
	// SplitmixGamma is the golden-ratio increment of the splitmix64
	// state walk (2^64 / φ, rounded to odd).
	SplitmixGamma = 0x9e3779b97f4a7c15
	// splitmixMul1 and splitmixMul2 are the finalizer's two
	// multiply-xorshift constants.
	splitmixMul1 = 0xbf58476d1ce4e5b9
	splitmixMul2 = 0x94d049bb133111eb
)

// Mix64 is the splitmix64 finalizer: a fast, well-distributed,
// bijective 64-bit mixer. Exported for deterministic hashing elsewhere
// in the simulator (internal/placement derives candidate streams from
// it); any change here changes every transcript.
//
//farm:hotpath pure-arithmetic mixer on placement and seeding paths
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * splitmixMul1
	z = (z ^ (z >> 27)) * splitmixMul2
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via splitmix64, so that nearby
// seeds (0, 1, 2, ...) still yield well-separated streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state from seed as New does.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += SplitmixGamma
		return Mix64(sm)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// All-zero state is the one invalid state for xoshiro; splitmix64
	// cannot produce four zero outputs in a row, but guard regardless.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = SplitmixGamma
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new independent Source from this one. The child stream is
// seeded from fresh output of the parent, so parent and child do not
// overlap in any practical sense. Used to give each Monte Carlo run its own
// stream.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// -log(U) with U in (0, 1]; Float64 returns [0,1), so flip.
	return -math.Log(1-r.Float64()) / rate
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK fills a reservoir sample of k indices drawn without replacement
// from [0, n). The result is sorted order-free (reservoir order). If k >= n
// it returns all n indices.
func (r *Source) SampleK(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			out[j] = i
		}
	}
	return out
}
