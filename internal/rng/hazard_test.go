package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// hoursPerMonth mirrors the simulator's convention for the Table 1 bands.
const hoursPerMonth = 730.0

func table1Hazard(t *testing.T) *PiecewiseHazard {
	t.Helper()
	h, err := NewPiecewiseHazard(
		[]float64{0, 3 * hoursPerMonth, 6 * hoursPerMonth, 12 * hoursPerMonth},
		[]float64{0.005 / 1000, 0.0035 / 1000, 0.0025 / 1000, 0.002 / 1000},
	)
	if err != nil {
		t.Fatalf("NewPiecewiseHazard: %v", err)
	}
	return h
}

func TestHazardValidation(t *testing.T) {
	cases := []struct {
		starts, rates []float64
	}{
		{nil, nil},
		{[]float64{0}, []float64{0.1, 0.2}},
		{[]float64{1}, []float64{0.1}},             // must start at 0
		{[]float64{0, 5, 5}, []float64{1, 1, 1}},   // non-increasing
		{[]float64{0, 5}, []float64{0.1, 0}},       // zero rate
		{[]float64{0, 5}, []float64{0.1, -1}},      // negative rate
		{[]float64{0, 5, 2}, []float64{0.1, 1, 1}}, // decreasing bound
	}
	for i, c := range cases {
		if _, err := NewPiecewiseHazard(c.starts, c.rates); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHazardRate(t *testing.T) {
	h := table1Hazard(t)
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0.005 / 1000},
		{hoursPerMonth, 0.005 / 1000},
		{3 * hoursPerMonth, 0.0035 / 1000},
		{5 * hoursPerMonth, 0.0035 / 1000},
		{6 * hoursPerMonth, 0.0025 / 1000},
		{12 * hoursPerMonth, 0.002 / 1000},
		{72 * hoursPerMonth, 0.002 / 1000},
		{-5, 0.005 / 1000},
	}
	for _, c := range cases {
		if got := h.Rate(c.t); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestCumulativeMatchesNumericIntegral(t *testing.T) {
	h := table1Hazard(t)
	for _, age := range []float64{0, 100, 2000, 5000, 20000, 52560} {
		// Trapezoid integration of Rate (rate is piecewise constant, so a
		// fine midpoint sum is exact up to step effects at boundaries).
		const step = 1.0
		sum := 0.0
		for x := 0.0; x < age; x += step {
			sum += h.Rate(x+step/2) * step
		}
		if got := h.Cumulative(age); math.Abs(got-sum) > 1e-3 {
			t.Errorf("Cumulative(%v) = %v, numeric = %v", age, got, sum)
		}
	}
}

func TestSurvivalMonotone(t *testing.T) {
	h := table1Hazard(t)
	prev := 1.0
	for age := 0.0; age <= 6*8760; age += 500 {
		s := h.Survival(age)
		if s > prev+1e-12 {
			t.Fatalf("Survival increased at age %v: %v > %v", age, s, prev)
		}
		if s <= 0 || s > 1 {
			t.Fatalf("Survival(%v) = %v out of (0,1]", age, s)
		}
		prev = s
	}
}

func TestSixYearFailureFraction(t *testing.T) {
	// The paper reports roughly 10% of disks failing over 6 years with the
	// Table 1 rates; check the analytic model agrees to the right order.
	h := table1Hazard(t)
	sixYears := 6.0 * 8760
	pFail := 1 - h.Survival(sixYears)
	if pFail < 0.08 || pFail > 0.15 {
		t.Fatalf("6-year failure probability = %v, want ~0.10", pFail)
	}
}

func TestSampleAgeDistribution(t *testing.T) {
	h := table1Hazard(t)
	r := New(21)
	const n = 100000
	sixYears := 6.0 * 8760
	failedBySix := 0
	for i := 0; i < n; i++ {
		if h.SampleAge(r) <= sixYears {
			failedBySix++
		}
	}
	got := float64(failedBySix) / n
	want := 1 - h.Survival(sixYears)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("empirical 6-year failure %v, analytic %v", got, want)
	}
}

func TestSampleAgeAfterConditional(t *testing.T) {
	h := table1Hazard(t)
	r := New(22)
	t0 := 10000.0
	for i := 0; i < 10000; i++ {
		age := h.SampleAgeAfter(r, t0)
		if age <= t0 {
			t.Fatalf("conditional sample %v <= t0 %v", age, t0)
		}
	}
}

func TestSampleAgeAfterMatchesMemorylessTail(t *testing.T) {
	// Deep in the final (constant-rate) segment the conditional
	// distribution must be exponential with the tail rate.
	h := table1Hazard(t)
	r := New(23)
	t0 := 20000.0
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += h.SampleAgeAfter(r, t0) - t0
	}
	mean := sum / n
	want := 1000 / 0.002 // 1/rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("conditional tail mean %v, want ~%v", mean, want)
	}
}

func TestScale(t *testing.T) {
	h := table1Hazard(t)
	h2, err := h.Scale(2)
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	for _, age := range []float64{0, 1000, 10000, 50000} {
		if math.Abs(h2.Rate(age)-2*h.Rate(age)) > 1e-15 {
			t.Errorf("scaled rate at %v: %v, want %v", age, h2.Rate(age), 2*h.Rate(age))
		}
		if math.Abs(h2.Cumulative(age)-2*h.Cumulative(age)) > 1e-12 {
			t.Errorf("scaled cumulative at %v mismatch", age)
		}
	}
	if _, err := h.Scale(0); err == nil {
		t.Error("Scale(0) should fail")
	}
}

// Property: inversion sampling round-trips — Cumulative(SampleAge) is
// exponential(1), so its mean over many draws is ~1.
func TestQuickInversionRoundTrip(t *testing.T) {
	h := table1Hazard(t)
	f := func(seed uint64) bool {
		r := New(seed)
		sum := 0.0
		const n = 2000
		for i := 0; i < n; i++ {
			sum += h.Cumulative(h.SampleAge(r))
		}
		mean := sum / n
		return mean > 0.9 && mean < 1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
