package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed did not reset state at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	child := parent.Split()
	// Child continues deterministically and differs from parent stream.
	p1 := parent.Uint64()
	c1 := child.Uint64()
	if p1 == c1 {
		t.Fatal("parent and child produced identical first values")
	}
	// Splitting again from the same parent state is reproducible.
	parent2 := New(9)
	child2 := parent2.Split()
	if child2.Uint64() != c1 {
		t.Fatal("Split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 4*math.Sqrt(float64(want)) {
			t.Errorf("bucket %d count %d too far from %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const rate, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(10)
	const mean, sd, n = 5.0, 2.0, 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sum2 += v * v
	}
	m := sum / n
	variance := sum2/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Norm stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestSampleK(t *testing.T) {
	r := New(13)
	s := r.SampleK(100, 10)
	if len(s) != 10 {
		t.Fatalf("SampleK returned %d items, want 10", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("SampleK produced invalid or duplicate index %d", v)
		}
		seen[v] = true
	}
	all := r.SampleK(5, 10)
	if len(all) != 5 {
		t.Fatalf("SampleK(5,10) returned %d items, want 5", len(all))
	}
}

func TestSampleKCoverage(t *testing.T) {
	// Every index should be picked with roughly equal frequency.
	r := New(14)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(20, 5) {
			counts[v]++
		}
	}
	want := trials * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 5*math.Sqrt(float64(want)) {
			t.Errorf("index %d sampled %d times, want ~%d", i, c, want)
		}
	}
}

// Property: Intn always lands in range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: same seed, same stream (determinism under quick's seeds).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
