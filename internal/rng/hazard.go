package rng

import (
	"errors"
	"math"
	"sort"
)

// PiecewiseHazard models a piecewise-constant hazard (failure) rate over
// time, the form the paper takes from the disk-drive industry's reliability
// tables (Elerath 2000, IDEMA R2-98): the instantaneous failure rate is
// constant within each age band and drops as drives burn in.
//
// Times are in arbitrary but consistent units (the simulator uses hours).
type PiecewiseHazard struct {
	// bounds[i] is the start time of segment i; bounds[0] must be 0.
	bounds []float64
	// rates[i] is the hazard rate on [bounds[i], bounds[i+1]).
	// The final rate extends to +inf.
	rates []float64
	// cum[i] is the cumulative hazard at bounds[i].
	cum []float64
}

// ErrHazard reports an invalid hazard specification.
var ErrHazard = errors.New("rng: invalid piecewise hazard")

// NewPiecewiseHazard builds a hazard from segment start times and rates.
// starts must begin at 0 and strictly increase; rates must be positive and
// have the same length as starts. The last rate extends forever.
func NewPiecewiseHazard(starts, rates []float64) (*PiecewiseHazard, error) {
	if len(starts) == 0 || len(starts) != len(rates) || starts[0] != 0 {
		return nil, ErrHazard
	}
	for i := range starts {
		if rates[i] <= 0 || (i > 0 && starts[i] <= starts[i-1]) {
			return nil, ErrHazard
		}
	}
	h := &PiecewiseHazard{
		bounds: append([]float64(nil), starts...),
		rates:  append([]float64(nil), rates...),
		cum:    make([]float64, len(starts)),
	}
	for i := 1; i < len(starts); i++ {
		h.cum[i] = h.cum[i-1] + h.rates[i-1]*(starts[i]-starts[i-1])
	}
	return h, nil
}

// Rate returns the hazard rate at age t (t < 0 is treated as 0).
func (h *PiecewiseHazard) Rate(t float64) float64 {
	if t < 0 {
		t = 0
	}
	i := sort.SearchFloat64s(h.bounds, t)
	// SearchFloat64s returns the first index with bounds[i] >= t; we want
	// the segment containing t.
	if i == len(h.bounds) || h.bounds[i] > t {
		i--
	}
	return h.rates[i]
}

// Cumulative returns the integrated hazard H(t) = ∫₀ᵗ rate.
func (h *PiecewiseHazard) Cumulative(t float64) float64 {
	if t <= 0 {
		return 0
	}
	i := sort.SearchFloat64s(h.bounds, t)
	if i == len(h.bounds) || h.bounds[i] > t {
		i--
	}
	return h.cum[i] + h.rates[i]*(t-h.bounds[i])
}

// Survival returns S(t) = exp(-H(t)), the probability a fresh unit survives
// past age t.
func (h *PiecewiseHazard) Survival(t float64) float64 {
	return math.Exp(-h.Cumulative(t))
}

// invert returns the age at which the cumulative hazard reaches target.
func (h *PiecewiseHazard) invert(target float64) float64 {
	// Find the segment whose cumulative range contains target.
	i := sort.SearchFloat64s(h.cum, target)
	if i == len(h.cum) || h.cum[i] > target {
		i--
	}
	return h.bounds[i] + (target-h.cum[i])/h.rates[i]
}

// SampleAge draws a failure age for a fresh unit: the age T at which the
// unit fails, with P(T > t) = exp(-H(t)). Inversion sampling: solve
// H(T) = -log(U).
func (h *PiecewiseHazard) SampleAge(r *Source) float64 {
	u := 1 - r.Float64() // in (0, 1]
	return h.invert(-math.Log(u))
}

// SampleAgeAfter draws a failure age conditioned on survival to age t0
// (memory of burn-in: an old disk fails at the old-age rate). Returns an
// age strictly greater than t0.
func (h *PiecewiseHazard) SampleAgeAfter(r *Source, t0 float64) float64 {
	if t0 < 0 {
		t0 = 0
	}
	u := 1 - r.Float64()
	return h.invert(h.Cumulative(t0) - math.Log(u))
}

// Scale returns a new hazard with every rate multiplied by factor — the
// paper's "disk vintage" knob (Figure 8(b) doubles all failure rates).
func (h *PiecewiseHazard) Scale(factor float64) (*PiecewiseHazard, error) {
	if factor <= 0 {
		return nil, ErrHazard
	}
	rates := make([]float64, len(h.rates))
	for i, v := range h.rates {
		rates[i] = v * factor
	}
	return NewPiecewiseHazard(h.bounds, rates)
}
