package disk

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTable1Bands(t *testing.T) {
	h := Table1()
	cases := []struct {
		months float64
		want   float64 // fraction per hour
	}{
		{0, 0.005 / 1000},
		{2, 0.005 / 1000},
		{3, 0.0035 / 1000},
		{5.9, 0.0035 / 1000},
		{6, 0.0025 / 1000},
		{11, 0.0025 / 1000},
		{12, 0.002 / 1000},
		{71, 0.002 / 1000},
	}
	for _, c := range cases {
		if got := h.Rate(c.months * HoursPerMonth); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("rate at %v months = %v, want %v", c.months, got, c.want)
		}
	}
}

func TestTable1SixYearFailureFraction(t *testing.T) {
	// ~10% of drives fail by EODL — the basis for the paper's replacement
	// discussion (§3.6).
	p := 1 - Table1().Survival(EODLHours)
	if p < 0.08 || p > 0.13 {
		t.Fatalf("six-year failure fraction %v, want ~0.10", p)
	}
}

func TestNewVintageScale(t *testing.T) {
	v, err := NewVintage("double", 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Table1()
	for _, age := range []float64{0, 1000, 30000} {
		if math.Abs(v.Hazard.Rate(age)-2*base.Rate(age)) > 1e-15 {
			t.Errorf("vintage rate at %v not doubled", age)
		}
	}
	if _, err := NewVintage("bad", -1); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []Model{
		{CapacityBytes: 0, BandwidthMBps: 80, Vintage: Vintage{Hazard: Table1()}},
		{CapacityBytes: TB, BandwidthMBps: 0, Vintage: Vintage{Hazard: Table1()}},
		{CapacityBytes: TB, BandwidthMBps: 80},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
}

func TestStateString(t *testing.T) {
	if Alive.String() != "alive" || Failed.String() != "failed" || Retired.String() != "retired" {
		t.Error("state names wrong")
	}
	if State(99).String() == "" {
		t.Error("unknown state has empty name")
	}
}

func TestDriveStoreRelease(t *testing.T) {
	d := NewDrive(1, DefaultModel(), 0)
	if d.FreeBytes() != TB {
		t.Fatalf("fresh drive free = %d", d.FreeBytes())
	}
	if !d.Store(400 * GB) {
		t.Fatal("store within capacity failed")
	}
	if math.Abs(d.Utilization()-float64(400*GB)/float64(TB)) > 1e-12 {
		t.Fatalf("utilization = %v", d.Utilization())
	}
	if d.Store(TB) {
		t.Fatal("store beyond capacity succeeded")
	}
	if d.Store(-1) {
		t.Fatal("negative store succeeded")
	}
	d.Release(100 * GB)
	if d.UsedBytes != 300*GB {
		t.Fatalf("used after release = %d", d.UsedBytes)
	}
	d.State = Failed
	if d.Store(1) {
		t.Fatal("store on failed drive succeeded")
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	d := NewDrive(1, DefaultModel(), 0)
	d.Store(10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	d.Release(11)
}

func TestDriveAge(t *testing.T) {
	d := NewDrive(7, DefaultModel(), 1000)
	if d.Age(1500) != 500 {
		t.Fatalf("age = %v", d.Age(1500))
	}
}

func TestSampleFailureTimeAfterNow(t *testing.T) {
	r := rng.New(55)
	d := NewDrive(1, DefaultModel(), 200)
	for i := 0; i < 10000; i++ {
		ft := d.SampleFailureTime(r, 500)
		if ft <= 500 {
			t.Fatalf("failure time %v not after now", ft)
		}
	}
}

func TestSampleFailureRespectsVintage(t *testing.T) {
	// Doubling the hazard should roughly double the 6-year failure
	// fraction (at these low rates).
	r := rng.New(56)
	v2, _ := NewVintage("double", 2)
	base := DefaultModel()
	fast := base
	fast.Vintage = v2
	const n = 40000
	count := func(m Model) int {
		c := 0
		for i := 0; i < n; i++ {
			d := NewDrive(i, m, 0)
			if d.SampleFailureTime(r, 0) <= EODLHours {
				c++
			}
		}
		return c
	}
	slow := count(base)
	quick := count(fast)
	ratio := float64(quick) / float64(slow)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("doubled vintage failure ratio = %v, want ~2", ratio)
	}
}

func TestRebuildHours(t *testing.T) {
	// 10 GB at 16 MB/s ≈ 625 s ≈ 0.186 h (the paper's §3.3 example says
	// ~640 s for a 10 GB group; decimal-vs-binary GB accounts for the
	// difference).
	h := RebuildHours(10*GB, 16)
	seconds := h * 3600
	if seconds < 600 || seconds < 0 || seconds > 700 {
		t.Fatalf("10GB@16MB/s = %v s, want ~640 s", seconds)
	}
	// 1 GB should be 10x faster.
	h1 := RebuildHours(1*GB, 16)
	if math.Abs(h/h1-10) > 1e-9 {
		t.Fatalf("rebuild hours not linear in size: %v vs %v", h, h1)
	}
	// Doubling bandwidth halves time.
	h2 := RebuildHours(10*GB, 32)
	if math.Abs(h/h2-2) > 1e-9 {
		t.Fatalf("rebuild hours not inverse in bandwidth")
	}
}

func TestRebuildHoursPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	RebuildHours(GB, 0)
}

func TestRecoveryBandwidthBps(t *testing.T) {
	// 16 MB/s = 16e6 * 3600 bytes per hour.
	if got := RecoveryBandwidthBps(16); got != 16e6*3600 {
		t.Fatalf("RecoveryBandwidthBps(16) = %v", got)
	}
}
