// Package disk models the storage devices of the simulated cluster: their
// capacity, bandwidth, age-dependent failure behaviour (Table 1 of the
// paper), and end-of-design-life.
//
// The paper's drives are extrapolated 1 TB devices with roughly 80 MB/s of
// sustainable bandwidth (based on the IBM Deskstar of the day), of which at
// most 20% — 16 MB/s — is allotted to recovery. Failure rates follow the
// industry's age-banded table (Elerath 2000 / IDEMA R2-98) rather than a
// constant MTBF.
package disk

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// Unit constants. Simulation time is in hours; sizes are in bytes.
const (
	GB = int64(1) << 30
	TB = int64(1) << 40
	PB = int64(1) << 50

	// HoursPerMonth follows the 730 h convention (8760 h / 12).
	HoursPerMonth = 730.0
	// HoursPerYear is 8760.
	HoursPerYear = 8760.0
	// EODLYears is the end of design life the paper assumes.
	EODLYears = 6
	// EODLHours is the design life in simulation time.
	EODLHours = EODLYears * HoursPerYear
)

// Table1 returns the paper's disk failure-rate table as a piecewise
// hazard: percent failing per 1000 hours by age band.
//
//	months 0–3:  0.50 %/kh
//	months 3–6:  0.35 %/kh
//	months 6–12: 0.25 %/kh
//	months 12+:  0.20 %/kh
//
// The early bands are the infant-mortality edge of the bathtub curve; the
// final band extends to (and past) the 6-year EODL.
func Table1() *rng.PiecewiseHazard {
	h, err := rng.NewPiecewiseHazard(
		[]float64{0, 3 * HoursPerMonth, 6 * HoursPerMonth, 12 * HoursPerMonth},
		[]float64{0.005 / 1000, 0.0035 / 1000, 0.0025 / 1000, 0.002 / 1000},
	)
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return h
}

// Vintage describes a drive generation: its hazard curve and a scale
// factor. Figure 8(b) doubles the Table 1 rates via Scale = 2.
type Vintage struct {
	Name   string
	Hazard *rng.PiecewiseHazard
}

// NewVintage builds a vintage from Table 1 scaled by factor.
func NewVintage(name string, factor float64) (Vintage, error) {
	h, err := Table1().Scale(factor)
	if err != nil {
		return Vintage{}, err
	}
	return Vintage{Name: name, Hazard: h}, nil
}

// Model holds the physical parameters shared by a batch of drives.
type Model struct {
	CapacityBytes int64   // e.g. 1 TB
	BandwidthMBps float64 // sustainable transfer rate
	Vintage       Vintage
}

// ErrModel reports an invalid drive model.
var ErrModel = errors.New("disk: invalid model")

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.CapacityBytes <= 0 {
		return fmt.Errorf("%w: capacity %d", ErrModel, m.CapacityBytes)
	}
	if m.BandwidthMBps <= 0 {
		return fmt.Errorf("%w: bandwidth %v", ErrModel, m.BandwidthMBps)
	}
	if m.Vintage.Hazard == nil {
		return fmt.Errorf("%w: nil vintage hazard", ErrModel)
	}
	return nil
}

// DefaultModel returns the paper's extrapolated drive: 1 TB capacity,
// 80 MB/s sustainable bandwidth, Table 1 vintage.
func DefaultModel() Model {
	return Model{
		CapacityBytes: TB,
		BandwidthMBps: 80,
		Vintage:       Vintage{Name: "table1", Hazard: Table1()},
	}
}

// State is a drive's lifecycle state in the simulator.
type State uint8

// Drive lifecycle states.
const (
	// Alive means the drive is in service.
	Alive State = iota
	// Failed means the drive has failed but the failure may not yet be
	// detected.
	Failed
	// Retired means the drive was removed by a replacement batch.
	Retired
)

// String names the state.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Failed:
		return "failed"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Drive is one simulated disk.
type Drive struct {
	ID        int
	Model     Model
	State     State
	BornAt    float64 // simulation hour the drive entered service
	FailedAt  float64 // simulation hour of failure (valid when State != Alive)
	UsedBytes int64   // bytes currently stored (data + redundancy)
	// Slowdown is the fail-slow degradation multiplier: a gray-failed
	// drive delivers its recovery allotment divided by this factor.
	// Values <= 1 (including the zero value) mean healthy; the fail-slow
	// injector sets ×k (slow) or ×k² (crawling) and may clear it back on
	// spontaneous recovery.
	Slowdown float64
}

// NewDrive returns an alive drive entering service at bornAt.
func NewDrive(id int, m Model, bornAt float64) *Drive {
	return &Drive{ID: id, Model: m, State: Alive, BornAt: bornAt}
}

// NewFleet returns count alive drives (ids 0..count-1) entering service at
// bornAt, all sharing one backing array: building a fleet costs two
// allocations, not one per drive — the difference between 2k disks and
// 100k disks per simulated run.
func NewFleet(count int, m Model, bornAt float64) []*Drive {
	backing := make([]Drive, count)
	fleet := make([]*Drive, count)
	for i := range backing {
		backing[i] = Drive{ID: i, Model: m, State: Alive, BornAt: bornAt}
		fleet[i] = &backing[i]
	}
	return fleet
}

// Age returns the drive's age at simulation time now.
func (d *Drive) Age(now float64) float64 { return now - d.BornAt }

// SampleFailureTime draws the absolute simulation time at which the drive
// will fail, given it is alive at time now, using the vintage hazard
// conditioned on the drive's current age.
func (d *Drive) SampleFailureTime(r *rng.Source, now float64) float64 {
	age := d.Age(now)
	if age < 0 {
		age = 0
	}
	failAge := d.Model.Vintage.Hazard.SampleAgeAfter(r, age)
	return d.BornAt + failAge
}

// SlowFactor returns the drive's effective degradation multiplier,
// normalised to at least 1 (the zero value and any sub-unity setting
// read as healthy).
func (d *Drive) SlowFactor() float64 {
	if d.Slowdown > 1 {
		return d.Slowdown
	}
	return 1
}

// EffectiveRecoveryMBps returns the recovery bandwidth the drive
// actually delivers given a nominal allotment: the allotment divided by
// the fail-slow degradation factor. Healthy drives return the allotment
// bit-for-bit unchanged (no division), so enabling the fail-slow fields
// without any degradation cannot perturb durations.
func (d *Drive) EffectiveRecoveryMBps(nominalMBps float64) float64 {
	if d.Slowdown > 1 {
		return nominalMBps / d.Slowdown
	}
	return nominalMBps
}

// FreeBytes returns remaining capacity.
func (d *Drive) FreeBytes() int64 { return d.Model.CapacityBytes - d.UsedBytes }

// Utilization returns the used fraction of capacity in [0, 1+].
func (d *Drive) Utilization() float64 {
	return float64(d.UsedBytes) / float64(d.Model.CapacityBytes)
}

// Store reserves bytes on the drive. It returns false (and stores nothing)
// if the drive lacks space or is not alive.
func (d *Drive) Store(bytes int64) bool {
	if d.State != Alive || bytes < 0 || d.UsedBytes+bytes > d.Model.CapacityBytes {
		return false
	}
	d.UsedBytes += bytes
	return true
}

// Release frees bytes previously stored. Releasing more than stored is a
// simulator bug and panics.
func (d *Drive) Release(bytes int64) {
	if bytes < 0 || bytes > d.UsedBytes {
		panic(fmt.Sprintf("disk: release %d of %d used", bytes, d.UsedBytes))
	}
	d.UsedBytes -= bytes
}

// RecoveryBandwidthBps converts a recovery allotment in MB/s to bytes per
// simulation hour. The paper expresses recovery bandwidth in MB/s
// (decimal megabytes, as drive vendors do).
func RecoveryBandwidthBps(mbps float64) float64 {
	return mbps * 1e6 * 3600 // bytes per hour
}

// RebuildHours returns the virtual hours needed to move bytes at mbps.
func RebuildHours(bytes int64, mbps float64) float64 {
	if mbps <= 0 {
		panic("disk: non-positive rebuild bandwidth")
	}
	return float64(bytes) / RecoveryBandwidthBps(mbps)
}
