package replace

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/redundancy"
)

func buildCluster(t *testing.T, groups int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Scheme:             redundancy.Scheme{M: 1, N: 2},
		GroupBytes:         10 * disk.GB,
		NumGroups:          groups,
		DiskModel:          disk.DefaultModel(),
		InitialUtilization: 0.4,
		PlacementSeed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewPolicy(t *testing.T) {
	for _, f := range []float64{0.02, 0.04, 0.06, 0.08} {
		if _, err := NewPolicy(f); err != nil {
			t.Errorf("NewPolicy(%v): %v", f, err)
		}
	}
	for _, f := range []float64{0, 1, -0.5, 2} {
		if _, err := NewPolicy(f); err == nil {
			t.Errorf("NewPolicy(%v) should fail", f)
		}
	}
}

func TestThreshold(t *testing.T) {
	p, _ := NewPolicy(0.2)
	if got := p.Threshold(1000); got != 200 {
		t.Fatalf("Threshold(1000) = %d, want 200", got)
	}
	tiny, _ := NewPolicy(0.2)
	if got := tiny.Threshold(3); got != 1 {
		t.Fatalf("Threshold(3) = %d, want at least 1", got)
	}
}

func TestExpectedBatches(t *testing.T) {
	// The paper: ~10% of drives fail over six years, so a 2% batch fires
	// about five times and an 8% batch about once (§3.6).
	p2, _ := NewPolicy(0.02)
	p8, _ := NewPolicy(0.08)
	if got := p2.ExpectedBatches(0.10); got != 5 {
		t.Fatalf("2%% trigger: %d batches, want 5", got)
	}
	if got := p8.ExpectedBatches(0.10); got != 1 {
		t.Fatalf("8%% trigger: %d batches, want 1", got)
	}
	if got := p2.ExpectedBatches(0); got != 0 {
		t.Fatalf("no failures: %d batches, want 0", got)
	}
}

func TestRebalanceOntoMovesData(t *testing.T) {
	cl := buildCluster(t, 400)
	ids := cl.AddDisks(2, 1000)
	migrated := RebalanceOnto(cl, ids)
	if migrated <= 0 {
		t.Fatal("no bytes migrated onto fresh drives")
	}
	for _, id := range ids {
		if cl.Disks[id].UsedBytes == 0 {
			t.Fatalf("new disk %d still empty", id)
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalancePreservesGroupInvariant(t *testing.T) {
	cl := buildCluster(t, 400)
	ids := cl.AddDisks(3, 1000)
	RebalanceOnto(cl, ids)
	for g := 0; g < cl.GroupCount(); g++ {
		d := cl.GroupDisks(g)
		seen := map[int32]bool{}
		for _, id := range d {
			if id < 0 {
				continue
			}
			if seen[id] {
				t.Fatalf("group %d has two blocks on disk %d after rebalance", g, id)
			}
			seen[id] = true
		}
	}
}

func TestRebalanceApproachesMean(t *testing.T) {
	cl := buildCluster(t, 800)
	ids := cl.AddDisks(2, 1000)
	RebalanceOnto(cl, ids)
	var total int64
	alive := 0
	for _, d := range cl.Disks {
		if d.State == disk.Alive {
			total += d.UsedBytes
			alive++
		}
	}
	mean := total / int64(alive)
	for _, id := range ids {
		got := cl.Disks[id].UsedBytes
		// Within one block of the mean.
		if got < mean-cl.BlockBytes || got > mean+cl.BlockBytes {
			t.Fatalf("new disk %d at %d bytes, mean %d", id, got, mean)
		}
	}
}

func TestRebalanceMigratedFractionSmall(t *testing.T) {
	// The paper's point: replacing a small failed fraction moves only a
	// small share of the data (2–8%).
	cl := buildCluster(t, 800)
	var before int64
	for _, d := range cl.Disks {
		before += d.UsedBytes
	}
	ids := cl.AddDisks(1, 1000) // ~2% of a ~50-disk system
	migrated := RebalanceOnto(cl, ids)
	frac := float64(migrated) / float64(before)
	if frac <= 0 || frac > 0.10 {
		t.Fatalf("migrated fraction %v, want small (0, 0.10]", frac)
	}
}

func TestRebalanceNoNewDisks(t *testing.T) {
	cl := buildCluster(t, 100)
	if got := RebalanceOnto(cl, nil); got != 0 {
		t.Fatalf("migrated %d bytes with no new disks", got)
	}
}

func TestRebalanceDeadClusterIsNoop(t *testing.T) {
	cl := buildCluster(t, 50)
	for id := 0; id < cl.NumDisks(); id++ {
		cl.FailDisk(id, 1)
	}
	ids := cl.AddDisks(1, 10)
	// Only the new disk is alive and there are no donors above the mean
	// holding anything — nothing should move, and nothing should panic.
	if got := RebalanceOnto(cl, ids); got != 0 {
		t.Fatalf("migrated %d bytes from a dead cluster", got)
	}
}
