package replace

import (
	"testing"

	"repro/internal/disk"
)

// TestThresholdNeverReached: a trigger fraction so large that the failed
// count can never climb to it must still yield a sane (positive)
// threshold, and ExpectedBatches must report zero batches over the design
// life instead of going negative or wrapping.
func TestThresholdNeverReached(t *testing.T) {
	p, err := NewPolicy(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threshold(100); got != 90 {
		t.Errorf("Threshold(100) = %d, want 90", got)
	}
	// ~10% of drives fail in six years (§3.6); a 90% trigger never fires.
	if got := p.ExpectedBatches(0.10); got != 0 {
		t.Errorf("ExpectedBatches(0.10) = %d, want 0", got)
	}
	if got := p.ExpectedBatches(0); got != 0 {
		t.Errorf("ExpectedBatches(0) = %d, want 0", got)
	}
}

// TestThresholdTinyPopulation: with very small populations the raw
// fraction truncates to zero; the threshold must clamp to one so the
// policy still fires eventually rather than firing on every failure of a
// zero threshold.
func TestThresholdTinyPopulation(t *testing.T) {
	p, err := NewPolicy(0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, disks := range []int{1, 10, 49} {
		if got := p.Threshold(disks); got != 1 {
			t.Errorf("Threshold(%d) = %d, want 1", disks, got)
		}
	}
	if got := p.Threshold(50); got != 1 {
		t.Errorf("Threshold(50) = %d, want 1", got)
	}
	if got := p.Threshold(100); got != 2 {
		t.Errorf("Threshold(100) = %d, want 2", got)
	}
}

// TestRebalanceOntoCohortAtEndOfLife models the end-of-design-life batch:
// most of the original population has already died when the cohort
// arrives, so the donors are few and heavily loaded. The migration must
// stay within capacity, preserve the group-placement invariant, and leave
// the cluster consistent.
func TestRebalanceOntoCohortAtEndOfLife(t *testing.T) {
	cl := buildCluster(t, 256)
	orig := cl.NumDisks()
	// Kill most of the population, as at the end of the drives' design
	// life with no earlier replacement.
	dead := 0
	for id := 0; id < orig && dead < orig*2/3; id++ {
		if cl.Disks[id].State == disk.Alive {
			cl.FailDisk(id, float64(dead))
			dead++
		}
	}
	ids := cl.AddDisks(dead, disk.EODLHours)
	migrated := RebalanceOnto(cl, ids)
	if migrated < 0 {
		t.Fatalf("negative migration: %d", migrated)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatalf("invariants after EODL cohort rebalance: %v", err)
	}
	// No new drive may exceed its capacity or hold two blocks of a group
	// (CheckInvariants covers the latter); capacity explicitly:
	for _, id := range ids {
		if cl.Disks[id].UsedBytes > cl.Disks[id].Model.CapacityBytes {
			t.Errorf("disk %d over capacity after rebalance", id)
		}
	}
}

// TestRebalanceOntoAllDonorsDead: when the cohort arrives and no alive
// drive is above the mean (everything already balanced or dead), the
// rebalance must be a no-op rather than looping or moving blocks onto
// ineligible drives.
func TestRebalanceOntoAllDonorsDead(t *testing.T) {
	cl := buildCluster(t, 64)
	// Fail every original drive: the incoming cohort is the whole system.
	orig := cl.NumDisks()
	for id := 0; id < orig; id++ {
		if cl.Disks[id].State == disk.Alive {
			cl.FailDisk(id, 1)
		}
	}
	ids := cl.AddDisks(4, 100)
	if migrated := RebalanceOnto(cl, ids); migrated != 0 {
		t.Errorf("migrated %d bytes with no donors", migrated)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceRepeatedCohorts drives several successive batches through
// one cluster (the Figure 7 regime compressed): every pass must keep the
// invariants, and the per-pass migration must shrink as the system
// re-balances.
func TestRebalanceRepeatedCohorts(t *testing.T) {
	cl := buildCluster(t, 256)
	for batch := 0; batch < 3; batch++ {
		// Fail a handful of drives, then inject a same-sized cohort.
		killed := 0
		for id := 0; id < cl.NumDisks() && killed < 3; id++ {
			if cl.Disks[id].State == disk.Alive {
				cl.FailDisk(id, float64(batch*10+killed))
				killed++
			}
		}
		ids := cl.AddDisks(killed, float64(batch*10+5))
		RebalanceOnto(cl, ids)
		if err := cl.CheckInvariants(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
}
