// Package replace implements the paper's disk-replacement machinery
// (§3.6): failed drives are not swapped one-by-one but in batches, sized
// by a trigger fraction of the original population (2–8% in Figure 7).
// When a batch of fresh drives arrives, data migrates onto them to restore
// balance; the freshly added cohort briefly raises the system's failure
// rate (the "cohort effect").
package replace

import (
	"errors"

	"repro/internal/cluster"
	"repro/internal/disk"
)

// Policy describes when batches are injected.
type Policy struct {
	// TriggerFraction is the share of the original drive population
	// whose failure triggers a batch (paper: 0.2, 0.4, 0.6, 0.8).
	TriggerFraction float64
}

// ErrPolicy reports an invalid replacement policy.
var ErrPolicy = errors.New("replace: trigger fraction out of (0,1)")

// NewPolicy validates the trigger fraction.
func NewPolicy(fraction float64) (Policy, error) {
	if fraction <= 0 || fraction >= 1 {
		return Policy{}, ErrPolicy
	}
	return Policy{TriggerFraction: fraction}, nil
}

// Threshold returns the failure count that triggers a batch for a system
// of originalDisks drives — at least one.
func (p Policy) Threshold(originalDisks int) int {
	t := int(p.TriggerFraction * float64(originalDisks))
	if t < 1 {
		t = 1
	}
	return t
}

// ExpectedBatches estimates how many batches fire over the drives' design
// life given the six-year failure fraction — the paper's "about five times
// at the batch size of 2%... about once at 8%" arithmetic (§3.6, with ~10%
// of drives failing).
func (p Policy) ExpectedBatches(sixYearFailureFraction float64) int {
	if sixYearFailureFraction <= 0 {
		return 0
	}
	return int(sixYearFailureFraction / p.TriggerFraction)
}

// RebalanceOnto migrates blocks onto freshly added drives until each new
// drive reaches the alive-population mean utilization, drawing from the
// most-loaded drives. A block never moves onto a drive that already holds
// another block of its group. Returns the bytes migrated.
//
// The paper treats reorganization as instantaneous weight-based
// remapping; what matters for reliability is the small migrated fraction
// (2–8% of objects) and the fresh cohort's age, both preserved here.
func RebalanceOnto(cl *cluster.Cluster, newDisks []int) int64 {
	if len(newDisks) == 0 {
		return 0
	}
	// Mean utilization over alive drives (the new ones included).
	var total int64
	alive := 0
	for _, d := range cl.Disks {
		if d.State == disk.Alive {
			total += d.UsedBytes
			alive++
		}
	}
	if alive == 0 {
		return 0
	}
	mean := total / int64(alive)

	// Donors: alive drives above the mean, heaviest first (simple
	// selection; populations are small enough).
	donors := make([]int, 0, len(cl.Disks))
	for id, d := range cl.Disks {
		if d.State == disk.Alive && d.UsedBytes > mean && !contains(newDisks, id) {
			donors = append(donors, id)
		}
	}

	var migrated int64
	for _, nd := range newDisks {
		for _, donor := range donors {
			if cl.Disks[nd].UsedBytes >= mean {
				break
			}
			blocks := cl.BlocksOn(donor)
			// Walk a snapshot; MoveBlock mutates the list.
			snapshot := append([]cluster.BlockRef(nil), blocks...)
			for _, ref := range snapshot {
				if cl.Disks[nd].UsedBytes >= mean || cl.Disks[donor].UsedBytes <= mean {
					break
				}
				if groupHasBlockOn(cl, int(ref.Group), nd) {
					continue
				}
				if cl.MoveBlock(ref, nd) {
					migrated += cl.BlockBytes
				}
			}
		}
	}
	return migrated
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func groupHasBlockOn(cl *cluster.Cluster, group, diskID int) bool {
	for _, d := range cl.GroupDisks(group) {
		if int(d) == diskID {
			return true
		}
	}
	return false
}
