package cluster

import (
	"testing"

	"repro/internal/redundancy"
)

// TestFailDiskZeroAlloc is the allocation-regression gate for the
// per-failure bookkeeping: failing a disk and unlinking its blocks must
// not touch the heap (the byDisk slice is handed back, group state is
// updated in the flat arena).
func TestFailDiskZeroAlloc(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 2}, 2000))
	if err != nil {
		t.Fatal(err)
	}
	const runs = 50
	if c.NumDisks() < runs+2 {
		t.Fatalf("cluster too small for the test: %d disks", c.NumDisks())
	}
	next := 0
	if n := testing.AllocsPerRun(runs, func() {
		c.FailDisk(next, float64(next))
		next++
	}); n != 0 {
		t.Fatalf("FailDisk allocates %v times per run, want 0", n)
	}
}

// TestRecoveryTargetSelectionZeroAlloc gates the steady-state rebuild
// targeting path: filling the reusable buddy-exclusion scratch and
// walking the candidate stream must be allocation-free.
func TestRecoveryTargetSelectionZeroAlloc(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 3}, 500))
	if err != nil {
		t.Fatal(err)
	}
	// Fail one disk so there are genuinely missing blocks to target.
	lost, _ := c.FailDisk(1, 0)
	if len(lost) == 0 {
		t.Fatal("disk 1 held no blocks")
	}
	ref := lost[0]
	// Warm the scratch once (first use sizes it to the disk population).
	c.BuddyExcludes(int(ref.Group))
	if n := testing.AllocsPerRun(100, func() {
		ex := c.BuddyExcludes(int(ref.Group))
		if _, _, err := c.Hasher().RecoveryTarget(
			c, uint64(ref.Group), int(ref.Rep), c.BlockBytes, ex, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("recovery-target selection allocates %v times per run, want 0", n)
	}
}

// TestBuddyExcludesMatchesGroupState pins BuddyExcludes semantics: the
// scratch must contain exactly the disks holding intact blocks of the
// group, and a following call for another group must fully supersede it.
func TestBuddyExcludesMatchesGroupState(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 3}, 100))
	if err != nil {
		t.Fatal(err)
	}
	in := func(ds []int32, id int) bool {
		for _, d := range ds {
			if int(d) == id {
				return true
			}
		}
		return false
	}
	for g := 0; g < 10; g++ {
		ex := c.BuddyExcludes(g)
		for id := 0; id < c.NumDisks(); id++ {
			want := in(c.GroupDisks(g), id)
			if got := ex.Excluded(id); got != want {
				t.Fatalf("group %d disk %d: excluded=%v want %v", g, id, got, want)
			}
		}
	}
	// Epoch reuse: the next call must clear the previous group's marks.
	first := c.BuddyExcludes(0)
	d0 := int(c.GroupDiskOf(0, 0))
	second := c.BuddyExcludes(1)
	if first != second {
		t.Fatal("BuddyExcludes must return the shared scratch")
	}
	if !in(c.GroupDisks(1), d0) && second.Excluded(d0) {
		t.Fatal("stale exclusion survived epoch reset")
	}
}

// TestGroupStateScalesWithDamage pins the lazy-materialization contract:
// group bookkeeping exists only for groups touched by damage, is recycled
// to the pool on full repair, and the pool is reused — so resident group
// state follows concurrent damage, never fleet size.
func TestGroupStateScalesWithDamage(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 3}, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if live, pooled := c.MaterializedGroupStates(); live != 0 || pooled != 0 {
		t.Fatalf("healthy fleet holds %d live / %d pooled records", live, pooled)
	}

	repair := func(lost []BlockRef) {
		t.Helper()
		for _, ref := range lost {
			g := int(ref.Group)
			target, _, err := c.Hasher().RecoveryTarget(
				c, uint64(ref.Group), int(ref.Rep), c.BlockBytes, c.BuddyExcludes(g), 0)
			if err != nil {
				t.Fatalf("no target for %v: %v", ref, err)
			}
			if !c.ReserveTarget(target) {
				t.Fatalf("reserve failed on %d", target)
			}
			c.PlaceRecovered(g, int(ref.Rep), target)
		}
	}

	lost, _ := c.FailDisk(7, 1)
	touched := map[int32]bool{}
	for _, ref := range lost {
		touched[ref.Group] = true
	}
	live, pooled := c.MaterializedGroupStates()
	if live != len(touched) || pooled != 0 {
		t.Fatalf("after one failure: %d live / %d pooled, want %d / 0", live, pooled, len(touched))
	}
	if live >= c.GroupCount()/10 {
		t.Fatalf("one failure materialized %d of %d groups", live, c.GroupCount())
	}

	repair(lost)
	live, pooled = c.MaterializedGroupStates()
	if live != 0 || pooled != len(touched) {
		t.Fatalf("after full repair: %d live / %d pooled, want 0 / %d", live, pooled, len(touched))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A second damage wave of similar size must be absorbed by the pool:
	// the record table's high-water mark may creep only if the new wave
	// touches more groups than the pool holds.
	highWater := live + pooled
	lost2, _ := c.FailDisk(11, 2)
	repair(lost2)
	live, pooled = c.MaterializedGroupStates()
	if live != 0 {
		t.Fatalf("second wave left %d live records", live)
	}
	if grown := live + pooled - highWater; grown > len(lost2) {
		t.Fatalf("pool grew by %d on a reusable wave of %d blocks", grown, len(lost2))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTouchReleaseZeroAlloc gates the steady-state materialize/recycle
// cycle: once the pool holds a record, damaging and repairing a group
// must not allocate.
func TestTouchReleaseZeroAlloc(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 2}, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool with one record.
	c.touch(0)
	c.releaseState(0)
	if n := testing.AllocsPerRun(100, func() {
		c.touch(42)
		c.releaseState(42)
	}); n != 0 {
		t.Fatalf("touch/release cycle allocates %v times per run, want 0", n)
	}
}
