package cluster

import (
	"testing"

	"repro/internal/redundancy"
)

// TestFailDiskZeroAlloc is the allocation-regression gate for the
// per-failure bookkeeping: failing a disk and unlinking its blocks must
// not touch the heap (the byDisk slice is handed back, group state is
// updated in the flat arena).
func TestFailDiskZeroAlloc(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 2}, 2000))
	if err != nil {
		t.Fatal(err)
	}
	const runs = 50
	if c.NumDisks() < runs+2 {
		t.Fatalf("cluster too small for the test: %d disks", c.NumDisks())
	}
	next := 0
	if n := testing.AllocsPerRun(runs, func() {
		c.FailDisk(next, float64(next))
		next++
	}); n != 0 {
		t.Fatalf("FailDisk allocates %v times per run, want 0", n)
	}
}

// TestRecoveryTargetSelectionZeroAlloc gates the steady-state rebuild
// targeting path: filling the reusable buddy-exclusion scratch and
// walking the candidate stream must be allocation-free.
func TestRecoveryTargetSelectionZeroAlloc(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 3}, 500))
	if err != nil {
		t.Fatal(err)
	}
	// Fail one disk so there are genuinely missing blocks to target.
	lost, _ := c.FailDisk(1, 0)
	if len(lost) == 0 {
		t.Fatal("disk 1 held no blocks")
	}
	ref := lost[0]
	// Warm the scratch once (first use sizes it to the disk population).
	c.BuddyExcludes(int(ref.Group))
	if n := testing.AllocsPerRun(100, func() {
		ex := c.BuddyExcludes(int(ref.Group))
		if _, _, err := c.Hasher().RecoveryTarget(
			c, uint64(ref.Group), int(ref.Rep), c.BlockBytes, ex, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("recovery-target selection allocates %v times per run, want 0", n)
	}
}

// TestBuddyExcludesMatchesGroupState pins BuddyExcludes semantics: the
// scratch must contain exactly the disks holding intact blocks of the
// group, and a following call for another group must fully supersede it.
func TestBuddyExcludesMatchesGroupState(t *testing.T) {
	c, err := New(testConfig(redundancy.Scheme{M: 1, N: 3}, 100))
	if err != nil {
		t.Fatal(err)
	}
	in := func(ds []int32, id int) bool {
		for _, d := range ds {
			if int(d) == id {
				return true
			}
		}
		return false
	}
	for g := 0; g < 10; g++ {
		ex := c.BuddyExcludes(g)
		for id := 0; id < c.NumDisks(); id++ {
			want := in(c.Groups[g].Disks, id)
			if got := ex.Excluded(id); got != want {
				t.Fatalf("group %d disk %d: excluded=%v want %v", g, id, got, want)
			}
		}
	}
	// Epoch reuse: the next call must clear the previous group's marks.
	first := c.BuddyExcludes(0)
	d0 := int(c.Groups[0].Disks[0])
	second := c.BuddyExcludes(1)
	if first != second {
		t.Fatal("BuddyExcludes must return the shared scratch")
	}
	if !in(c.Groups[1].Disks, d0) && second.Excluded(d0) {
		t.Fatal("stale exclusion survived epoch reset")
	}
}
