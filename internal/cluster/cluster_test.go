package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/redundancy"
)

func testConfig(scheme redundancy.Scheme, groups int) Config {
	return Config{
		Scheme:             scheme,
		GroupBytes:         10 * disk.GB,
		NumGroups:          groups,
		DiskModel:          disk.DefaultModel(),
		InitialUtilization: 0.4,
		PlacementSeed:      99,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(redundancy.Scheme{M: 1, N: 2}, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		func() Config { c := good; c.GroupBytes = 0; return c }(),
		func() Config { c := good; c.NumGroups = 0; return c }(),
		func() Config { c := good; c.InitialUtilization = 0; return c }(),
		func() Config { c := good; c.InitialUtilization = 1.5; return c }(),
		func() Config { c := good; c.Scheme = redundancy.Scheme{M: 2, N: 2}; return c }(),
		func() Config { c := good; c.DiskModel.CapacityBytes = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDisksFor(t *testing.T) {
	// 100 groups × 10 GB × 2 (mirror) = 2 TB raw; at 40% of 1 TB drives
	// that needs 5 disks.
	c := testConfig(redundancy.Scheme{M: 1, N: 2}, 100)
	if got := c.DisksFor(); got != 5 {
		t.Fatalf("DisksFor = %d, want 5", got)
	}
	// Never fewer than n disks.
	tiny := testConfig(redundancy.Scheme{M: 8, N: 10}, 1)
	if got := tiny.DisksFor(); got < 10 {
		t.Fatalf("DisksFor = %d, want >= 10", got)
	}
}

func TestNewPlacesAllGroups(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 500)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.GroupCount() != 500 {
		t.Fatalf("groups = %d", c.GroupCount())
	}
	for g := 0; g < c.GroupCount(); g++ {
		if c.GroupAvailable(g) != 2 || c.GroupLost(g) {
			t.Fatalf("group %d not fully available", g)
		}
		row := c.GroupDisks(g)
		if row[0] == row[1] {
			t.Fatalf("group %d has both blocks on disk %d", g, row[0])
		}
	}
	if live, pooled := c.MaterializedGroupStates(); live != 0 || pooled != 0 {
		t.Fatalf("fresh cluster materialized %d/%d group states", live, pooled)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDeterministic(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 4, N: 6}, 200)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < a.GroupCount(); g++ {
		for rep := range a.GroupDisks(g) {
			if a.GroupDiskOf(g, rep) != b.GroupDiskOf(g, rep) {
				t.Fatalf("placement differs at group %d rep %d", g, rep)
			}
		}
	}
}

func TestInitialUtilizationNearTarget(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 2000)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	utils := c.Utilizations()
	sum := 0.0
	for _, u := range utils {
		sum += u
	}
	mean := sum / float64(len(utils))
	if mean < 0.3 || mean > 0.5 {
		t.Fatalf("mean initial utilization %v, want ~0.4", mean)
	}
}

func TestFailDiskBookkeeping(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 400)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := 0
	resident := len(c.BlocksOn(id))
	if resident == 0 {
		t.Fatal("disk 0 holds no blocks; test needs a loaded disk")
	}
	lost, dead := c.FailDisk(id, 100)
	if len(lost) != resident {
		t.Fatalf("lost %d blocks, expected %d", len(lost), resident)
	}
	if dead != 0 {
		t.Fatalf("single failure killed %d mirrored groups", dead)
	}
	if c.Disks[id].State != disk.Failed || c.Disks[id].UsedBytes != 0 {
		t.Fatal("failed disk state wrong")
	}
	if c.AliveDisks() != len(c.Disks)-1 {
		t.Fatalf("alive count %d", c.AliveDisks())
	}
	for _, ref := range lost {
		if c.GroupDiskOf(int(ref.Group), int(ref.Rep)) != -1 || c.GroupAvailable(int(ref.Group)) != 1 {
			t.Fatalf("group %d block state wrong after failure", ref.Group)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Failing again is a no-op.
	lost2, dead2 := c.FailDisk(id, 200)
	if lost2 != nil || dead2 != 0 {
		t.Fatal("double failure not a no-op")
	}
}

func TestDataLossLatch(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 300)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill disks until some group dies; LostGroups must latch and match.
	killed := 0
	for id := 0; id < len(c.Disks) && c.LostGroups == 0; id++ {
		c.FailDisk(id, float64(id))
		killed++
	}
	if c.LostGroups == 0 {
		t.Fatal("no data loss even after killing every disk")
	}
	recount := 0
	for g := 0; g < c.GroupCount(); g++ {
		if c.GroupLost(g) {
			recount++
		}
	}
	if recount != c.LostGroups {
		t.Fatalf("LostGroups %d, recount %d", c.LostGroups, recount)
	}
}

func TestRecoveryCycle(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 3}, 200)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lost, _ := c.FailDisk(2, 10)
	for _, ref := range lost {
		g := int(ref.Group)
		src := c.SourceFor(g, -1)
		if src < 0 {
			t.Fatalf("no source for group %d after single failure", g)
		}
		buddies := c.BuddyExcludes(g)
		if buddies.Excluded(2) {
			t.Fatal("failed disk still in buddy set")
		}
		target, _, err := c.Hasher().RecoveryTarget(c, uint64(g), int(ref.Rep), c.BlockBytes, buddies, 0)
		if err != nil {
			t.Fatalf("no recovery target: %v", err)
		}
		if buddies.Excluded(target) || target == 2 {
			t.Fatalf("target %d violates rules", target)
		}
		if !c.ReserveTarget(target) {
			t.Fatalf("reserve failed on %d", target)
		}
		c.PlaceRecovered(g, int(ref.Rep), target)
		if c.GroupAvailable(g) != 3 {
			t.Fatalf("group %d not restored", g)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceRecoveredPanicsIfPresent(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 50)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PlaceRecovered on intact block did not panic")
		}
	}()
	c.PlaceRecovered(0, 0, 3)
}

func TestReserveRelease(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 50)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	used := c.Disks[1].UsedBytes
	if !c.ReserveTarget(1) {
		t.Fatal("reserve failed")
	}
	if c.Disks[1].UsedBytes != used+c.BlockBytes {
		t.Fatal("reserve did not book bytes")
	}
	c.ReleaseTarget(1)
	if c.Disks[1].UsedBytes != used {
		t.Fatal("release did not return bytes")
	}
	// Releasing on a failed disk is a no-op (bytes already dropped).
	c.FailDisk(1, 5)
	c.ReleaseTarget(1)
	if c.Disks[1].UsedBytes != 0 {
		t.Fatal("release on failed disk mutated bytes")
	}
}

func TestAddDisks(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 50)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := len(c.Disks)
	alive := c.AliveDisks()
	ids := c.AddDisks(3, 1000)
	if len(ids) != 3 || len(c.Disks) != before+3 || c.AliveDisks() != alive+3 {
		t.Fatal("AddDisks bookkeeping wrong")
	}
	for _, id := range ids {
		if c.Disks[id].BornAt != 1000 || c.Disks[id].State != disk.Alive {
			t.Fatal("new disk state wrong")
		}
	}
}

func TestMoveBlock(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 100)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newIDs := c.AddDisks(1, 500)
	target := newIDs[0]
	ref := c.BlocksOn(0)[0]
	if !c.MoveBlock(ref, target) {
		t.Fatal("MoveBlock failed")
	}
	if c.GroupDiskOf(int(ref.Group), int(ref.Rep)) != int32(target) {
		t.Fatal("group table not updated by move")
	}
	found := false
	for _, r := range c.BlocksOn(target) {
		if r == ref {
			found = true
		}
	}
	if !found {
		t.Fatal("byDisk index not updated by move")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Moving a lost block fails.
	c.FailDisk(target, 600)
	if c.MoveBlock(ref, 0) {
		t.Fatal("moved a lost block")
	}
}

func TestRetireDisk(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 50)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alive := c.AliveDisks()
	c.RetireDisk(0)
	if c.Disks[0].State != disk.Retired || c.AliveDisks() != alive-1 {
		t.Fatal("retire bookkeeping wrong")
	}
}

func TestUsedBytesAll(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 50)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := c.UsedBytesAll()
	if len(all) != len(c.Disks) {
		t.Fatal("length mismatch")
	}
	c.FailDisk(0, 1)
	if c.UsedBytesAll()[0] != 0 {
		t.Fatal("failed disk should report zero bytes")
	}
}

// Property: after any sequence of failures, invariants hold and
// availability never goes negative.
func TestQuickFailureSequences(t *testing.T) {
	f := func(seed uint64, kills []uint8) bool {
		cfg := testConfig(redundancy.Scheme{M: 2, N: 3}, 60)
		cfg.PlacementSeed = seed
		c, err := New(cfg)
		if err != nil {
			return false
		}
		for _, k := range kills {
			id := int(k) % len(c.Disks)
			c.FailDisk(id, 1)
		}
		for g := 0; g < c.GroupCount(); g++ {
			if c.GroupAvailable(g) < 0 {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
