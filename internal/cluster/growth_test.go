package cluster

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/redundancy"
)

// TestGrowthCandidatesReachNewDisks verifies the RUSH-growth property the
// paper relies on for replacement batches: after AddDisks, the candidate
// streams address the enlarged population, so recovery targets land on
// fresh drives too.
func TestGrowthCandidatesReachNewDisks(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 200)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := c.NumDisks()
	ids := c.AddDisks(before, 100) // double the cluster
	hit := map[int]bool{}
	for g := 0; g < 500; g++ {
		target, _, err := c.Hasher().RecoveryTarget(c, uint64(g), 0, c.BlockBytes, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		hit[target] = true
	}
	newHits := 0
	for _, id := range ids {
		if hit[id] {
			newHits++
		}
	}
	// Fresh drives are half the population; candidate streams should
	// reach a healthy share of them.
	if newHits < len(ids)/4 {
		t.Fatalf("only %d of %d new disks ever chosen as targets", newHits, len(ids))
	}
}

// TestSuspectsExcludedEverywhere checks the §2.3 rule: a drive flagged by
// the health monitor receives no placements, no recovered blocks, and no
// migrations.
func TestSuspectsExcludedEverywhere(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 2}, 200)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sus := 3
	c.MarkSuspect(sus)
	if !c.IsSuspect(sus) {
		t.Fatal("suspect not flagged")
	}
	if c.Eligible(sus, 1) {
		t.Fatal("suspect still eligible")
	}
	for g := 0; g < 300; g++ {
		target, _, err := c.Hasher().RecoveryTarget(c, uint64(g), 0, c.BlockBytes, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if target == sus {
			t.Fatal("suspect chosen as recovery target")
		}
	}
	// Placement of new groups avoids it as well.
	ids, err := c.Hasher().PlaceGroup(c, 9999, 2, c.BlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == sus {
			t.Fatal("suspect received a placement")
		}
	}
}

// TestUtilizationConservation: total stored bytes equal raw group bytes
// after arbitrary failure and recovery cycles (no byte leaks).
func TestUtilizationConservation(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 1, N: 3}, 150)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw := cfg.Scheme.GroupRawBytes(cfg.GroupBytes) * int64(cfg.NumGroups)
	sum := func() int64 {
		var s int64
		for _, d := range c.Disks {
			s += d.UsedBytes
		}
		return s
	}
	if sum() != wantRaw {
		t.Fatalf("initial bytes %d, want %d", sum(), wantRaw)
	}
	// Fail a disk, manually restore every block, re-check.
	lost, _ := c.FailDisk(0, 1)
	for _, ref := range lost {
		buddies := c.BuddyExcludes(int(ref.Group))
		target, _, err := c.Hasher().RecoveryTarget(c, uint64(ref.Group), int(ref.Rep), c.BlockBytes, buddies, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !c.ReserveTarget(target) {
			t.Fatal("reserve failed")
		}
		c.PlaceRecovered(int(ref.Group), int(ref.Rep), target)
	}
	if sum() != wantRaw {
		t.Fatalf("bytes after recovery %d, want %d", sum(), wantRaw)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockBytesCeilDivision: odd group sizes split over m blocks round
// up, and the disk accounting uses the rounded size consistently.
func TestBlockBytesCeilDivision(t *testing.T) {
	cfg := testConfig(redundancy.Scheme{M: 4, N: 6}, 10)
	cfg.GroupBytes = 10*disk.GB + 1 // not divisible by 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (cfg.GroupBytes + 3) / 4
	if c.BlockBytes != want {
		t.Fatalf("BlockBytes = %d, want %d", c.BlockBytes, want)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
