// Package cluster tracks the state of the simulated storage system: the
// disk population, every redundancy group's block locations, the
// disk→block index needed to react to a failure, and per-disk utilization.
//
// The paper's system stores 2 PB of user data in redundancy groups of
// 1–100 GB placed over up to 15,000 one-terabyte drives, with each drive
// initially ~40% utilized so that recovered blocks always find space.
//
// Group state is materialized lazily: a healthy group exists only as its
// row of the flat int32 placement arena (disk per replica), with
// availability implied to be the full scheme width. Mutable bookkeeping —
// the availability count and the data-loss latch — is created on the first
// failure touching a group and recycled through a free pool once the group
// is repaired back to full health, so resident group state scales with
// concurrent damage rather than fleet size.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/placement"
	"repro/internal/redundancy"
	"repro/internal/topology"
)

// BlockRef identifies one block: replica Rep of group Group.
type BlockRef struct {
	Group int32
	Rep   int32
}

// groupState is the mutable bookkeeping of one damaged group. Healthy
// groups have none; the placement arena alone describes them.
type groupState struct {
	// avail is the number of blocks currently intact.
	avail int32
	// lost is latched true the first time avail drops below m. Lost
	// groups keep their state resident forever (the latch must survive).
	lost bool
}

// Config sizes a cluster.
type Config struct {
	Scheme             redundancy.Scheme
	GroupBytes         int64 // user data per redundancy group
	NumGroups          int
	DiskModel          disk.Model
	InitialUtilization float64 // target fill fraction at build time (paper: 0.40)
	PlacementSeed      uint64
	// ExtraDisks adds headroom beyond the computed population (unused by
	// the paper's experiments; handy for stress tests).
	ExtraDisks int
	// Net, when non-nil, is the run's network fabric: disks in dark
	// racks stop being eligible sources/targets, and with RackAware set
	// the initial build spreads each group over distinct racks. Nil
	// keeps the flat (topology-free) behaviour bit-for-bit.
	Net *topology.Network
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.GroupBytes <= 0 {
		return fmt.Errorf("cluster: non-positive group size %d", c.GroupBytes)
	}
	if c.NumGroups <= 0 {
		return fmt.Errorf("cluster: non-positive group count %d", c.NumGroups)
	}
	if c.InitialUtilization <= 0 || c.InitialUtilization > 1 {
		return fmt.Errorf("cluster: initial utilization %v out of (0,1]", c.InitialUtilization)
	}
	if c.Scheme.M < 1 || c.Scheme.N <= c.Scheme.M {
		return fmt.Errorf("cluster: invalid scheme %v", c.Scheme)
	}
	return c.DiskModel.Validate()
}

// DisksFor returns the drive population needed to hold the configured
// groups at the initial utilization target.
func (c Config) DisksFor() int {
	raw := c.Scheme.GroupRawBytes(c.GroupBytes) * int64(c.NumGroups)
	perDisk := float64(c.DiskModel.CapacityBytes) * c.InitialUtilization
	n := int(float64(raw)/perDisk + 0.999999)
	if n < c.Scheme.N {
		n = c.Scheme.N // at least one disk per block of a group
	}
	return n + c.ExtraDisks
}

// Cluster is the mutable system state for one simulation run.
type Cluster struct {
	Cfg        Config
	BlockBytes int64 // size of one block on disk
	Disks      []*disk.Drive
	hasher     *placement.Hasher
	// groupDisks is the flat placement arena: groupDisks[g*N+rep] is the
	// disk holding block rep of group g, or -1 while the block is
	// lost/being rebuilt. One allocation for the whole fleet.
	groupDisks []int32
	// stateIdx[g] indexes the group's materialized state in states, or -1
	// while the group is healthy and carries no mutable bookkeeping.
	stateIdx []int32
	// states holds materialized group records; stateOwner[i] is the group
	// owning record i (-1 when the record is in the free pool). Records
	// are recycled through freeStates when a group returns to full
	// health, so len(states) tracks the damage high-water mark.
	states     []groupState
	stateOwner []int32
	freeStates []int32
	// byDisk[d] lists the blocks resident on disk d.
	byDisk [][]BlockRef
	// aliveCount tracks the alive drive population.
	aliveCount int
	// LostGroups counts groups that have lost data (latched).
	LostGroups int
	// suspect flags drives a health monitor (S.M.A.R.T., §2.3) expects
	// to fail; suspects are excluded from placement and recovery-target
	// choice and are typically being drained. One bit per disk slot.
	suspect []uint64
	// readOnly flags drives fenced for writes by an operator (a rolling-
	// upgrade window): they still serve reads — rebuild sources, user
	// traffic — but accept no new data until the fence lifts. Allocated
	// lazily; nil until the first fence, so the zero-maintenance config
	// costs nothing.
	readOnly []uint64
	// excl is the reusable epoch-stamped exclusion scratch handed to
	// recovery-target selection; resetting it is O(1) and refilling it
	// allocates nothing, so steady-state rebuild targeting produces no
	// garbage (the former per-rebuild map[int]bool did).
	excl placement.ExcludeSet
	// rackExcl is the rack-indexed twin of excl for rack-aware target
	// selection (rule: a target's rack must not already hold a block of
	// the group).
	rackExcl placement.ExcludeSet
}

// ErrBuild reports that initial placement could not complete.
var ErrBuild = errors.New("cluster: initial placement failed")

// New builds a cluster and places every group. The build is deterministic
// in the placement seed.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numDisks := cfg.DisksFor()
	n := cfg.Scheme.N
	c := &Cluster{
		Cfg:        cfg,
		BlockBytes: cfg.Scheme.BlockBytes(cfg.GroupBytes),
		// One backing array for the whole initial fleet instead of one
		// heap object per drive; the per-run build stays O(1) drive
		// allocations even at 100k disks.
		Disks:      disk.NewFleet(numDisks, cfg.DiskModel, 0),
		hasher:     placement.NewHasher(cfg.PlacementSeed),
		groupDisks: make([]int32, cfg.NumGroups*n),
		stateIdx:   make([]int32, cfg.NumGroups),
		byDisk:     make([][]BlockRef, numDisks),
		aliveCount: numDisks,
		suspect:    make([]uint64, (numDisks+63)/64),
	}
	for i := range c.stateIdx {
		c.stateIdx[i] = -1
	}
	// Pre-reserve every per-disk block index at the expected
	// blocks-per-disk (with slack for placement jitter) so the build loop
	// never regrows them; placement is near-balanced, so overflow past
	// the slack is rare and handled by the ordinary append path.
	totalBlocks := cfg.NumGroups * n
	est := totalBlocks/numDisks + 1
	est += est/4 + 2
	for d := range c.byDisk {
		c.byDisk[d] = make([]BlockRef, 0, est)
	}
	// One reusable placement buffer for the whole build: with the flat
	// group arena this makes the per-group loop allocation-free.
	idsBuf := make([]int, 0, n)
	rackAware := cfg.Net != nil && cfg.Net.RackAware()
	for g := 0; g < cfg.NumGroups; g++ {
		var ids []int
		var err error
		if rackAware {
			ids, err = c.hasher.PlaceGroupSpreadInto(c, cfg.Net, uint64(g), n, c.BlockBytes, idsBuf)
		} else {
			ids, err = c.hasher.PlaceGroupInto(c, uint64(g), n, c.BlockBytes, idsBuf)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: group %d: %v", ErrBuild, g, err)
		}
		row := c.groupDisks[g*n : (g+1)*n]
		for rep, id := range ids {
			row[rep] = int32(id)
			if !c.Disks[id].Store(c.BlockBytes) {
				return nil, fmt.Errorf("%w: disk %d rejected block", ErrBuild, id)
			}
			c.byDisk[id] = append(c.byDisk[id], BlockRef{Group: int32(g), Rep: int32(rep)})
		}
	}
	return c, nil
}

// Group-state accessors. Healthy groups answer from the arena alone.

// GroupCount returns the number of redundancy groups.
func (c *Cluster) GroupCount() int { return c.Cfg.NumGroups }

// GroupDisks returns the group's placement row: element rep is the disk
// holding block rep, or -1 while that block is lost/being rebuilt. The
// slice aliases the cluster's arena; callers must not mutate it.
func (c *Cluster) GroupDisks(group int) []int32 {
	n := c.Cfg.Scheme.N
	return c.groupDisks[group*n : (group+1)*n : (group+1)*n]
}

// GroupDiskOf returns the disk holding block rep of group, or -1 while the
// block is lost/being rebuilt.
func (c *Cluster) GroupDiskOf(group, rep int) int32 {
	return c.groupDisks[group*c.Cfg.Scheme.N+rep]
}

// GroupAvailable returns the number of intact blocks of group. Healthy
// (unmaterialized) groups report the full scheme width.
func (c *Cluster) GroupAvailable(group int) int32 {
	if si := c.stateIdx[group]; si >= 0 {
		return c.states[si].avail
	}
	return int32(c.Cfg.Scheme.N)
}

// GroupLost reports whether the group has (irrecoverably) lost data.
//
//farm:hotpath data-loss latch check on every rebuild decision
func (c *Cluster) GroupLost(group int) bool {
	si := c.stateIdx[group]
	return si >= 0 && c.states[si].lost
}

// ForEachDamaged calls fn for every group with materialized state — every
// group that is degraded or lost — in a deterministic (materialization
// record) order. Iteration cost scales with concurrent damage, not fleet
// size.
func (c *Cluster) ForEachDamaged(fn func(group int32, available int32, lost bool)) {
	for i := range c.states {
		g := c.stateOwner[i]
		if g < 0 {
			continue // pooled record
		}
		fn(g, c.states[i].avail, c.states[i].lost)
	}
}

// MaterializedGroupStates reports the resident and pooled group-state
// record counts (test/diagnostic hook for the lazy-materialization
// contract: live+pooled is the concurrent-damage high-water mark).
func (c *Cluster) MaterializedGroupStates() (live, pooled int) {
	return len(c.states) - len(c.freeStates), len(c.freeStates)
}

// touch returns the group's mutable state, materializing it on the first
// failure that reaches the group. Materialization recycles a pooled record
// when one exists; growing the record table is the only allocating path
// and amortizes to zero once the table covers the damage high-water mark.
//
//farm:hotpath group-state materialization on every block loss
func (c *Cluster) touch(group int32) *groupState {
	if si := c.stateIdx[group]; si >= 0 {
		return &c.states[si]
	}
	var si int32
	if k := len(c.freeStates); k > 0 {
		si = c.freeStates[k-1]
		c.freeStates = c.freeStates[:k-1]
	} else {
		c.states = append(c.states, groupState{})
		c.stateOwner = append(c.stateOwner, -1)
		si = int32(len(c.states) - 1)
	}
	// A dormant group is at full health by construction: every release
	// back to the pool requires avail == N.
	c.states[si] = groupState{avail: int32(c.Cfg.Scheme.N)}
	c.stateOwner[si] = group
	c.stateIdx[group] = si
	return &c.states[si]
}

// releaseState returns a fully-repaired group's record to the free pool.
//
//farm:hotpath group-state recycling on repair completion
func (c *Cluster) releaseState(group int32) {
	si := c.stateIdx[group]
	c.stateIdx[group] = -1
	c.stateOwner[si] = -1
	c.freeStates = append(c.freeStates, si)
}

// placement.View implementation.

// NumDisks returns the number of disk slots (alive or not).
func (c *Cluster) NumDisks() int { return len(c.Disks) }

// Eligible reports whether disk id can accept size more bytes: alive,
// reachable, writable, not suspected of imminent failure, and with space.
func (c *Cluster) Eligible(id int, size int64) bool {
	d := c.Disks[id]
	return d.State == disk.Alive && c.reachable(id) && !c.isReadOnly(id) &&
		!c.isSuspect(id) && d.FreeBytes() >= size
}

// reachable reports whether the disk's rack is currently reachable;
// always true without a configured topology.
func (c *Cluster) reachable(id int) bool {
	return c.Cfg.Net == nil || !c.Cfg.Net.DiskUnreachable(id)
}

// isSuspect tests the suspect bit without bounds surprises.
func (c *Cluster) isSuspect(id int) bool {
	w := id >> 6
	return w < len(c.suspect) && c.suspect[w]&(1<<(uint(id)&63)) != 0
}

// MarkSuspect flags a drive as expected to fail (a S.M.A.R.T. warning):
// no new data — placed, recovered, or migrated — will be directed to it.
func (c *Cluster) MarkSuspect(id int) {
	w := id >> 6
	for w >= len(c.suspect) {
		c.suspect = append(c.suspect, 0)
	}
	c.suspect[w] |= 1 << (uint(id) & 63)
}

// IsSuspect reports whether a drive carries a health warning.
func (c *Cluster) IsSuspect(id int) bool { return c.isSuspect(id) }

// isReadOnly tests the write fence without bounds surprises; nil-safe so
// the zero-maintenance config pays one nil check.
//
//farm:hotpath consulted by Eligible on every target choice
func (c *Cluster) isReadOnly(id int) bool {
	w := id >> 6
	return w < len(c.readOnly) && c.readOnly[w]&(1<<(uint(id)&63)) != 0
}

// MarkReadOnly raises or lowers a drive's write fence (rolling-upgrade
// window). A fenced drive keeps serving reads but is excluded from
// placement, recovery-target, and migration choice until unfenced.
func (c *Cluster) MarkReadOnly(id int, fenced bool) {
	w := id >> 6
	if fenced {
		for w >= len(c.readOnly) {
			c.readOnly = append(c.readOnly, 0)
		}
		c.readOnly[w] |= 1 << (uint(id) & 63)
		return
	}
	if w < len(c.readOnly) {
		c.readOnly[w] &^= 1 << (uint(id) & 63)
	}
}

// ReadOnly reports whether a drive is currently write-fenced.
func (c *Cluster) ReadOnly(id int) bool { return c.isReadOnly(id) }

// UsedBytes returns bytes stored on disk id.
func (c *Cluster) UsedBytes(id int) int64 { return c.Disks[id].UsedBytes }

// AliveDisks returns the number of drives in service.
func (c *Cluster) AliveDisks() int { return c.aliveCount }

// Hasher exposes the placement hasher for recovery-target selection.
func (c *Cluster) Hasher() *placement.Hasher { return c.hasher }

// BlocksOn returns the blocks resident on disk id. The returned slice is
// owned by the cluster; callers must not mutate it.
func (c *Cluster) BlocksOn(id int) []BlockRef { return c.byDisk[id] }

// FailDisk transitions a drive to Failed at time now and unlinks every
// resident block. It returns the list of blocks that were lost and the
// number of groups that crossed into data loss as a result.
//
//farm:hotpath per-failure bookkeeping, gated by TestFailDiskZeroAlloc
func (c *Cluster) FailDisk(id int, now float64) (lost []BlockRef, newlyDead int) {
	d := c.Disks[id]
	if d.State != disk.Alive {
		return nil, 0
	}
	d.State = disk.Failed
	d.FailedAt = now
	c.aliveCount--
	lost = c.byDisk[id]
	c.byDisk[id] = nil
	d.UsedBytes = 0
	n := c.Cfg.Scheme.N
	for _, ref := range lost {
		slot := &c.groupDisks[int(ref.Group)*n+int(ref.Rep)]
		if *slot != int32(id) {
			panic(fmt.Sprintf("cluster: index corruption: group %d rep %d on disk %d, index says %d",
				ref.Group, ref.Rep, *slot, id))
		}
		gs := c.touch(ref.Group)
		*slot = -1
		gs.avail--
		if !gs.lost && c.Cfg.Scheme.Lost(int(gs.avail)) {
			gs.lost = true
			c.LostGroups++
			newlyDead++
		}
	}
	return lost, newlyDead
}

// CorruptBlock unlinks a single damaged replica — a discovered latent
// sector error: the resident disk loses the block (and its bytes), group
// availability drops, and the group latches Lost if it fell below m.
// Returns the disk that held the block (-1 if the block was already
// missing, a no-op) and whether the group newly crossed into data loss.
func (c *Cluster) CorruptBlock(ref BlockRef) (onDisk int, newlyDead bool) {
	slot := &c.groupDisks[int(ref.Group)*c.Cfg.Scheme.N+int(ref.Rep)]
	d := *slot
	if d < 0 {
		return -1, false
	}
	list := c.byDisk[d]
	for i, r := range list {
		if r == ref {
			list[i] = list[len(list)-1]
			c.byDisk[d] = list[:len(list)-1]
			break
		}
	}
	if c.Disks[d].State == disk.Alive {
		c.Disks[d].Release(c.BlockBytes)
	}
	gs := c.touch(ref.Group)
	*slot = -1
	gs.avail--
	if !gs.lost && c.Cfg.Scheme.Lost(int(gs.avail)) {
		gs.lost = true
		c.LostGroups++
		return int(d), true
	}
	return int(d), false
}

// RetireDisk removes a drive from service without data loss accounting
// (used by replacement policies after its data has been migrated).
func (c *Cluster) RetireDisk(id int) {
	d := c.Disks[id]
	if d.State == disk.Alive {
		c.aliveCount--
	}
	d.State = disk.Retired
}

// PlaceRecovered installs a rebuilt block of (group, rep) on disk target.
// The caller must have reserved the space via ReserveTarget. It increments
// group availability; a group repaired back to full health releases its
// materialized state to the pool.
func (c *Cluster) PlaceRecovered(group, rep, target int) {
	n := c.Cfg.Scheme.N
	slot := &c.groupDisks[group*n+rep]
	if *slot != -1 {
		panic(fmt.Sprintf("cluster: recovered block %d/%d already present on %d", group, rep, *slot))
	}
	// The group must be materialized: one of its blocks was missing.
	gs := &c.states[c.stateIdx[group]]
	*slot = int32(target)
	gs.avail++
	if !gs.lost && int(gs.avail) == n {
		c.releaseState(int32(group))
	}
	c.byDisk[target] = append(c.byDisk[target], BlockRef{Group: int32(group), Rep: int32(rep)})
}

// ReserveTarget books BlockBytes on a target drive ahead of a rebuild, so
// concurrent rebuilds cannot oversubscribe it. Returns false if the drive
// cannot take the block.
func (c *Cluster) ReserveTarget(target int) bool {
	return c.Disks[target].Store(c.BlockBytes)
}

// ReleaseTarget returns a reservation made by ReserveTarget (rebuild was
// redirected or abandoned). Only valid for alive drives; failed drives
// already dropped their byte accounting.
func (c *Cluster) ReleaseTarget(target int) {
	if c.Disks[target].State == disk.Alive {
		c.Disks[target].Release(c.BlockBytes)
	}
}

// SourceFor returns a disk currently holding an intact block of group,
// other than exclude, to serve as a rebuild read source. Returns -1 if no
// source exists (the group is unrecoverable). For m/n schemes any intact
// buddy works in this model; the full m-block read is folded into the
// rebuild duration.
func (c *Cluster) SourceFor(group int, exclude int) int {
	for _, d := range c.GroupDisks(group) {
		if d >= 0 && int(d) != exclude && c.Disks[d].State == disk.Alive && c.reachable(int(d)) {
			return int(d)
		}
	}
	return -1
}

// AnySourceFor is SourceFor without the reachability requirement: it
// reports whether an intact buddy *exists*, reachable or not. The
// engines use it to distinguish "the group's data is gone" (abandon)
// from "the data sits behind a dark switch" (park until heal).
func (c *Cluster) AnySourceFor(group int, exclude int) int {
	for _, d := range c.GroupDisks(group) {
		if d >= 0 && int(d) != exclude && c.Disks[d].State == disk.Alive {
			return int(d)
		}
	}
	return -1
}

// SourceForExcluding returns a disk holding an intact block of group
// other than ex1 and ex2 — the alternate-buddy pick used by hedged
// transfers and re-sourced rebuilds, which want a source *different*
// from the one that just proved slow or faulty. Returns -1 when no such
// disk exists; callers fall back to SourceFor.
func (c *Cluster) SourceForExcluding(group, ex1, ex2 int) int {
	for _, d := range c.GroupDisks(group) {
		if d >= 0 && int(d) != ex1 && int(d) != ex2 && c.Disks[d].State == disk.Alive && c.reachable(int(d)) {
			return int(d)
		}
	}
	return -1
}

// BuddyExcludes returns the cluster's reusable exclusion scratch reset
// and filled with the disks holding intact blocks of group — the
// exclusion set for recovery-target choice (rule (b): a target must not
// already hold a block of the group). The returned set is owned by the
// cluster and valid until the next BuddyExcludes call; callers may Add
// further exclusions (e.g. in-flight rebuild targets) before use. The
// call performs no allocation in steady state.
//
//farm:hotpath exclusion scratch fill, gated by TestRecoveryTargetSelectionZeroAlloc
func (c *Cluster) BuddyExcludes(group int) *placement.ExcludeSet {
	c.excl.Reset(len(c.Disks))
	for _, d := range c.GroupDisks(group) {
		if d >= 0 {
			c.excl.Add(int(d))
		}
	}
	return &c.excl
}

// BuddyRackExcludes returns the cluster's reusable rack-exclusion
// scratch reset and filled with the racks holding intact blocks of
// group — the rack-aware recovery-target rule (no two blocks of a group
// in one rack, preserved through recovery re-placement). Requires a
// configured topology. Owned by the cluster, valid until the next call;
// callers may Add the racks of in-flight rebuild targets before use.
//
//farm:hotpath rack-exclusion scratch fill, gated by TestSingleRunAllocCeiling
func (c *Cluster) BuddyRackExcludes(group int) *placement.ExcludeSet {
	net := c.Cfg.Net
	c.rackExcl.Reset(net.Racks())
	for _, d := range c.GroupDisks(group) {
		if d >= 0 {
			c.rackExcl.Add(net.RackOf(int(d)))
		}
	}
	return &c.rackExcl
}

// AddDisks appends fresh drives entering service at bornAt (a replacement
// batch) and returns their IDs.
func (c *Cluster) AddDisks(count int, bornAt float64) []int {
	return c.AddDisksModel(count, bornAt, c.Cfg.DiskModel)
}

// AddDisksModel is AddDisks with an explicit drive model — a growth batch
// of a newer vintage (different capacity, bandwidth, or hazard) entering
// a fleet of older drives. Failure sampling and placement consult each
// drive's own model, so mixed-vintage fleets need no other plumbing.
func (c *Cluster) AddDisksModel(count int, bornAt float64, model disk.Model) []int {
	ids := make([]int, 0, count)
	for i := 0; i < count; i++ {
		id := len(c.Disks)
		c.Disks = append(c.Disks, disk.NewDrive(id, model, bornAt))
		c.byDisk = append(c.byDisk, nil)
		c.aliveCount++
		ids = append(ids, id)
	}
	return ids
}

// MoveBlock migrates an intact block to a new disk (replacement-batch
// rebalancing). The destination must be alive with space; returns false
// otherwise.
func (c *Cluster) MoveBlock(ref BlockRef, to int) bool {
	slot := &c.groupDisks[int(ref.Group)*c.Cfg.Scheme.N+int(ref.Rep)]
	from := *slot
	if from < 0 || int(from) == to {
		return false
	}
	if !c.Disks[to].Store(c.BlockBytes) {
		return false
	}
	// Unlink from the old disk.
	list := c.byDisk[from]
	for i, r := range list {
		if r == ref {
			list[i] = list[len(list)-1]
			c.byDisk[from] = list[:len(list)-1]
			break
		}
	}
	c.Disks[from].Release(c.BlockBytes)
	*slot = int32(to)
	c.byDisk[to] = append(c.byDisk[to], ref)
	return true
}

// Utilizations returns the used fraction of every alive drive.
func (c *Cluster) Utilizations() []float64 {
	out := make([]float64, 0, len(c.Disks))
	for _, d := range c.Disks {
		if d.State == disk.Alive {
			out = append(out, d.Utilization())
		}
	}
	return out
}

// UsedBytesAll returns UsedBytes for every drive slot (0 for dead drives),
// indexed by disk ID — the view Figure 6 plots.
func (c *Cluster) UsedBytesAll() []int64 {
	out := make([]int64, len(c.Disks))
	for i, d := range c.Disks {
		out[i] = d.UsedBytes
	}
	return out
}

// CheckInvariants validates internal consistency (test hook): the byDisk
// index and the placement arena agree, materialized availability counts
// match the arena, dormant groups are at full health, the state pool's
// bookkeeping is coherent, and byte accounting covers resident blocks.
func (c *Cluster) CheckInvariants() error {
	n := c.Cfg.Scheme.N
	counts := make([]int64, len(c.Disks))
	for d, list := range c.byDisk {
		for _, ref := range list {
			if got := c.GroupDiskOf(int(ref.Group), int(ref.Rep)); got != int32(d) {
				return fmt.Errorf("cluster: block %v indexed on disk %d but group says %d", ref, d, got)
			}
			counts[d] += c.BlockBytes
		}
	}
	lost := 0
	for g := 0; g < c.Cfg.NumGroups; g++ {
		avail := int32(0)
		for rep, d := range c.GroupDisks(g) {
			if d < 0 {
				continue
			}
			avail++
			if c.Disks[d].State != disk.Alive {
				return fmt.Errorf("cluster: group %d rep %d on non-alive disk %d", g, rep, d)
			}
		}
		si := c.stateIdx[g]
		if si < 0 {
			if avail != int32(n) {
				return fmt.Errorf("cluster: dormant group %d has %d/%d blocks", g, avail, n)
			}
			continue
		}
		if c.stateOwner[si] != int32(g) {
			return fmt.Errorf("cluster: group %d state record %d owned by %d", g, si, c.stateOwner[si])
		}
		gs := &c.states[si]
		if avail != gs.avail {
			return fmt.Errorf("cluster: group %d availability %d, counted %d", g, gs.avail, avail)
		}
		if !gs.lost && avail == int32(n) {
			return fmt.Errorf("cluster: group %d fully healthy but still materialized", g)
		}
		if gs.lost {
			lost++
		}
	}
	if lost != c.LostGroups {
		return fmt.Errorf("cluster: LostGroups %d, counted %d", c.LostGroups, lost)
	}
	free := 0
	for si, owner := range c.stateOwner {
		if owner < 0 {
			free++
		} else if c.stateIdx[owner] != int32(si) {
			return fmt.Errorf("cluster: state record %d claims group %d, which points at %d",
				si, owner, c.stateIdx[owner])
		}
	}
	if free != len(c.freeStates) {
		return fmt.Errorf("cluster: %d free-owner records, pool holds %d", free, len(c.freeStates))
	}
	for d, want := range counts {
		drv := c.Disks[d]
		if drv.State != disk.Alive {
			continue
		}
		// UsedBytes may exceed resident blocks by outstanding rebuild
		// reservations, never the other way.
		if drv.UsedBytes < want {
			return fmt.Errorf("cluster: disk %d used %d < resident %d", d, drv.UsedBytes, want)
		}
	}
	return nil
}
