package forensics

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func sumsToOne(t *testing.T, p Postmortem) {
	t.Helper()
	if s := p.Blame.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("postmortem %d (%s) blame sums to %.12f, want 1", p.Seq, p.Class, s)
	}
}

func TestAnalyzeFalseDeadLoss(t *testing.T) {
	events := []trace.Event{
		{Time: 2, Kind: trace.KindSwitchFail, Rack: 3},
		{Time: 2, Kind: trace.KindRackUnreachable, Rack: 3, Detail: "switch-fail"},
		{Time: 26, Kind: trace.KindFalseDead, Rack: 3},
		{Time: 26, Kind: trace.KindDiskFail, Disk: 13, Rack: 3, Detail: "blocks=40"},
		{Time: 26, Kind: trace.KindDataLoss, Disk: 13, Detail: "groups=2"},
	}
	rep := Analyze(events, nil, Context{})
	if rep.Losses != 1 || rep.Drops != 0 || len(rep.Posts) != 1 {
		t.Fatalf("losses=%d drops=%d posts=%d", rep.Losses, rep.Drops, len(rep.Posts))
	}
	p := rep.Posts[0]
	if p.Class != ClassFalseDead {
		t.Fatalf("class = %q", p.Class)
	}
	if p.WindowHours != 24 {
		t.Fatalf("window = %g, want 24 (the dark interval)", p.WindowHours)
	}
	if p.Blame.Stalled != 1 {
		t.Fatalf("blame = %+v, want all stalled", p.Blame)
	}
	if p.Groups != 2 {
		t.Fatalf("groups = %d", p.Groups)
	}
	sumsToOne(t, p)
	if len(p.Chain) < 2 || p.Chain[0].Kind != string(trace.KindRackUnreachable) {
		t.Fatalf("chain = %+v, want rack-unreachable first", p.Chain)
	}
}

func TestAnalyzeLSEDuringRebuildLoss(t *testing.T) {
	spans := []*obs.Span{{
		Group: 9, Rep: 1,
		FailedAt: 1, DetectedAt: 1.5, QueuedAt: 1.5, StartAt: 2, DoneAt: -1,
		QueueWait: 0.5, Transfer: 2,
		Attempts: 1, Outcome: obs.OutcomeUnfinished,
	}}
	events := []trace.Event{
		{Time: 1, Kind: trace.KindDiskFail, Disk: 2, Detail: "blocks=5"},
		{Time: 1.5, Kind: trace.KindDetect, Disk: 2},
		{Time: 3, Kind: trace.KindLSE, Disk: 4, Group: 9, Rep: 2},
		{Time: 5, Kind: trace.KindLSEDetect, Disk: 4, Group: 9, Rep: 2},
		{Time: 5, Kind: trace.KindDataLoss, Disk: 4, Detail: "groups=1"},
	}
	rep := Analyze(events, spans, Context{})
	if len(rep.Posts) != 1 {
		t.Fatalf("posts = %d", len(rep.Posts))
	}
	p := rep.Posts[0]
	if p.Class != ClassLSERebuild {
		t.Fatalf("class = %q", p.Class)
	}
	if p.Group != 9 {
		t.Fatalf("group = %d", p.Group)
	}
	if p.WindowHours != 4 {
		t.Fatalf("window = %g, want 4 (loss at 5 minus block failed at 1)", p.WindowHours)
	}
	sumsToOne(t, p)
	// Additive split: detect 0.5, queue 0.5, transfer 2, stalled 1 → /4.
	if math.Abs(p.Blame.Detect-0.125) > 1e-12 || math.Abs(p.Blame.Transfer-0.5) > 1e-12 ||
		math.Abs(p.Blame.Stalled-0.25) > 1e-12 {
		t.Fatalf("blame = %+v", p.Blame)
	}
}

func TestAnalyzeBurstClasses(t *testing.T) {
	base := []trace.Event{
		{Time: 10, Kind: trace.KindBurst, Detail: "kills=5"},
		{Time: 10.5, Kind: trace.KindSpareQueued, Group: -1, Rep: -1, Disk: 7},
		{Time: 12, Kind: trace.KindDataLoss, Disk: 8, Detail: "groups=1"},
	}
	rep := Analyze(base, nil, Context{})
	if rep.Posts[0].Class != ClassBurstSpare {
		t.Fatalf("class = %q, want burst+spare-exhaustion", rep.Posts[0].Class)
	}
	if rep.Posts[0].Blame.Instant != 1 {
		t.Fatalf("span-less loss should be instant: %+v", rep.Posts[0].Blame)
	}
	sumsToOne(t, rep.Posts[0])

	noSpare := []trace.Event{base[0], base[2]}
	rep = Analyze(noSpare, nil, Context{})
	if rep.Posts[0].Class != ClassBurst {
		t.Fatalf("class = %q, want correlated-burst", rep.Posts[0].Class)
	}

	// Outside the association window the burst is forgotten.
	late := []trace.Event{base[0], {Time: 40, Kind: trace.KindDataLoss, Disk: 8, Detail: "groups=1"}}
	rep = Analyze(late, nil, Context{})
	if rep.Posts[0].Class != ClassIndependent {
		t.Fatalf("class = %q, want independent-failures", rep.Posts[0].Class)
	}
}

func TestAnalyzeDropClasses(t *testing.T) {
	mk := func(doneAt float64, group int, timedOut bool, resourcings int) *obs.Span {
		return &obs.Span{
			Group: group, Rep: 0,
			FailedAt: 1, DetectedAt: 1.2, QueuedAt: 1.2, StartAt: 1.3, DoneAt: doneAt,
			QueueWait: 0.1, Transfer: 1, RetryWait: 0.4,
			Attempts: 2, TimedOut: timedOut, Resourcings: resourcings,
			Outcome: obs.OutcomeDropped,
		}
	}
	spans := []*obs.Span{
		mk(6, 1, false, 9), // over the default cap of 8
		mk(7, 2, true, 2),
		mk(8, 3, false, 0),
	}
	events := []trace.Event{
		{Time: 1, Kind: trace.KindDiskFail, Disk: 2, Detail: "blocks=5"},
		{Time: 1.2, Kind: trace.KindDetect, Disk: 2},
		{Time: 5, Kind: trace.KindRebuildTimeout, Group: 2, Rep: 0, Disk: 11},
		{Time: 6, Kind: trace.KindDropped, Group: 1, Rep: 0, Disk: 10},
		{Time: 7, Kind: trace.KindDropped, Group: 2, Rep: 0, Disk: 11},
		{Time: 8, Kind: trace.KindDropped, Group: 3, Rep: 0, Disk: 12},
	}
	rep := Analyze(events, spans, Context{})
	if rep.Drops != 3 || len(rep.Posts) != 3 {
		t.Fatalf("drops=%d posts=%d", rep.Drops, len(rep.Posts))
	}
	want := []string{ClassSourceExhaustion, ClassTimeout, ClassGroupLost}
	for i, p := range rep.Posts {
		if p.Class != want[i] {
			t.Errorf("post %d class = %q, want %q", i, p.Class, want[i])
		}
		if p.WindowHours != p.T-1 {
			t.Errorf("post %d window = %g, want %g", i, p.WindowHours, p.T-1)
		}
		sumsToOne(t, p)
	}
}

func TestAnalyzeSpanlessDropUnattributed(t *testing.T) {
	events := []trace.Event{
		{Time: 6, Kind: trace.KindDropped, Group: 1, Rep: 0, Disk: 10},
	}
	rep := Analyze(events, nil, Context{})
	p := rep.Posts[0]
	if p.Class != ClassUnattributed || p.Blame.Instant != 1 {
		t.Fatalf("post = %+v", p)
	}
	sumsToOne(t, p)
}

func TestAnalyzeStretchFactors(t *testing.T) {
	spans := []*obs.Span{{
		Group: 5, Rep: 1,
		FailedAt: 0, DetectedAt: 0, QueuedAt: 0, StartAt: 0, DoneAt: 10,
		Transfer: 10,
		Attempts: 1, Outcome: obs.OutcomeDropped,
	}}
	events := []trace.Event{
		{Time: 0, Kind: trace.KindDiskFail, Disk: 2, Detail: "blocks=5"},
		{Time: 0, Kind: trace.KindDetect, Disk: 2},
		{Time: 0.5, Kind: trace.KindFailSlowOnset, Disk: 20, Detail: "factor=4"},
		{Time: 1, Kind: trace.KindThrottle, Group: -1, Rep: -1, Disk: -1, Detail: "mbps=12.00 share=0.500"},
		{Time: 2, Kind: trace.KindResourceCrossRack, Group: 5, Rep: 1, Disk: 30},
		{Time: 10, Kind: trace.KindDropped, Group: 5, Rep: 1, Disk: 20},
	}
	rep := Analyze(events, spans, Context{OversubscriptionRatio: 4})
	p := rep.Posts[0]
	sumsToOne(t, p)
	if p.Blame.FailSlow <= 0 || p.Blame.Contention <= 0 || p.Blame.Network <= 0 {
		t.Fatalf("stretch components missing: %+v", p.Blame)
	}
	// F = 4 × 2 × 4 = 32: 31/32 of transfer is slowdown, 1/32 honest.
	if p.Blame.Transfer <= 0 || p.Blame.Transfer > 0.05 {
		t.Fatalf("residual transfer fraction = %g, want ~1/32", p.Blame.Transfer)
	}
	// Log-partition: failslow and network carry equal factors (4 = 4).
	if math.Abs(p.Blame.FailSlow-p.Blame.Network) > 1e-12 {
		t.Fatalf("log partition skewed: %+v", p.Blame)
	}
}

func TestParkedChainLinks(t *testing.T) {
	spans := []*obs.Span{{
		Group: 7, Rep: 0,
		FailedAt: 1, DetectedAt: 1.2, QueuedAt: 1.2, StartAt: 1.3, DoneAt: 30,
		QueueWait: 0.1, Transfer: 2,
		Attempts: 2, Outcome: obs.OutcomeDropped,
	}}
	events := []trace.Event{
		{Time: 1, Kind: trace.KindDiskFail, Disk: 2, Detail: "blocks=5"},
		{Time: 1.2, Kind: trace.KindDetect, Disk: 2},
		{Time: 2, Kind: trace.KindRackUnreachable, Rack: 3, Detail: "partition"},
		{Time: 2.5, Kind: trace.KindRebuildParked, Group: 7, Rep: 0, Disk: 9},
		{Time: 14, Kind: trace.KindPartitionHeal, Rack: 3},
		{Time: 14, Kind: trace.KindRebuildResumed, Group: 7, Rep: 0, Disk: 9},
		{Time: 30, Kind: trace.KindDropped, Group: 7, Rep: 0, Disk: 9},
	}
	rep := Analyze(events, spans, Context{})
	p := rep.Posts[0]
	sumsToOne(t, p)
	// The parked interval (2.5 → 14) is invisible to phase accounting,
	// so the stalled share dominates: 29h window, ~2.1h accounted.
	if p.Blame.Stalled < 0.8 {
		t.Fatalf("stalled = %g, want dominant", p.Blame.Stalled)
	}
	var sawPark, sawResume bool
	for _, l := range p.Chain {
		if l.Kind == string(trace.KindRebuildParked) {
			sawPark = true
		}
		if l.Kind == string(trace.KindRebuildResumed) {
			sawResume = true
		}
	}
	if !sawPark || !sawResume {
		t.Fatalf("chain missing park/resume: %+v", p.Chain)
	}
	// Chain is time-sorted.
	for i := 1; i < len(p.Chain); i++ {
		if p.Chain[i].T < p.Chain[i-1].T {
			t.Fatalf("chain unsorted: %+v", p.Chain)
		}
	}
}

func TestAggregateAndRecordInto(t *testing.T) {
	events := []trace.Event{
		{Time: 10, Kind: trace.KindBurst, Detail: "kills=5"},
		{Time: 12, Kind: trace.KindDataLoss, Disk: 8, Detail: "groups=1"},
		{Time: 13, Kind: trace.KindDropped, Group: 1, Rep: 0, Disk: 10},
	}
	rep := Analyze(events, nil, Context{})
	agg := NewAggregate()
	agg.AddRun(rep)
	agg.AddRun(rep)
	agg.AddRun(nil) // skipped runs fold as nothing
	if agg.Runs != 2 || agg.Posts != 4 || agg.Losses != 2 || agg.Drops != 2 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.ByClass[ClassBurst] != 2 || agg.ByClass[ClassUnattributed] != 2 {
		t.Fatalf("by-class = %+v", agg.ByClass)
	}
	mean := agg.MeanBlame()
	if math.Abs(mean.Sum()-1) > 1e-9 {
		t.Fatalf("mean blame sums to %g", mean.Sum())
	}
	reg := agg.Registry()
	if got := reg.Counter(obs.MetricPostmortems).Value(); got != 4 {
		t.Fatalf("postmortems_total = %d", got)
	}
	if got := reg.Counter(obs.MetricLossBurst).Value(); got != 2 {
		t.Fatalf("loss_correlated_burst_total = %d", got)
	}
	var buf bytes.Buffer
	if err := agg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty aggregate JSON")
	}
}

func TestPostmortemJSONLRoundTrip(t *testing.T) {
	events := []trace.Event{
		{Time: 10, Kind: trace.KindBurst, Detail: "kills=5"},
		{Time: 12, Kind: trace.KindDataLoss, Disk: 8, Detail: "groups=1"},
	}
	rep := Analyze(events, nil, Context{})
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPostmortemJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Class != rep.Posts[0].Class ||
		back[0].Blame != rep.Posts[0].Blame {
		t.Fatalf("round trip: %+v vs %+v", back, rep.Posts)
	}
}
