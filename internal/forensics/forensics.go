// Package forensics is the simulator's root-cause layer: a
// deterministic, read-only pass over one run's trace and span streams
// that explains every loss. For each traced `data-loss` and `dropped`
// event it produces a Postmortem — the causal chain that led there, a
// deterministic taxonomy class, and a blame vector decomposing the
// lost group's window of vulnerability into where the time went
// (detect/queue/transfer/retry/hedge/stalled) and what stretched it
// (fail-slow sources, foreground contention, the oversubscribed
// spine). Fleet-level Aggregates fold postmortems across Monte Carlo
// runs in run-index order, so blame attribution is byte-identical
// across worker counts, like every other campaign output.
//
// The layer consumes only what the flight recorder already emits; it
// never touches the simulation, so forensics-on is byte-identical to
// forensics-off for all simulation outputs.
package forensics

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

// Context carries the configuration facts blame attribution needs —
// the knobs that shaped the run but are invisible in the event stream.
type Context struct {
	// OversubscriptionRatio is the fabric's spine oversubscription
	// (cfg.Topology.OversubscriptionRatio); ≤ 1 disables the network
	// stretch factor.
	OversubscriptionRatio float64
	// MaxResourcings is the per-rebuild source-switch cap
	// (cfg.Faults.MaxResourcings); 0 means the fault model's default, 8.
	MaxResourcings int
	// BurstAssocHours is how long after a correlated burst a loss is
	// still blamed on it; 0 means the default, 24.
	BurstAssocHours float64
}

func (c Context) burstWindow() float64 {
	if c.BurstAssocHours > 0 {
		return c.BurstAssocHours
	}
	return 24
}

func (c Context) maxResourcings() int {
	if c.MaxResourcings > 0 {
		return c.MaxResourcings
	}
	return 8
}

// ChainLink is one hop of a postmortem's causal chain, in time order.
type ChainLink struct {
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
}

// Postmortem explains one traced data-loss or dropped-rebuild event.
type Postmortem struct {
	// Seq numbers postmortems within a run, in trace order.
	Seq int `json:"seq"`
	// T is the time of the loss event (simulated hours).
	T float64 `json:"t"`
	// Kind is the losing event's trace kind: "data-loss" or "dropped".
	Kind string `json:"kind"`
	// Class is the deterministic taxonomy verdict (see taxonomy.go).
	Class string `json:"class"`
	// Disk is the event's disk: the final trigger for a loss, the
	// rebuild target for a drop.
	Disk int `json:"disk"`
	// Group/Rep identify the rebuild for drops (and for losses when the
	// chain pins one); -1 when unknown.
	Group int `json:"group"`
	Rep   int `json:"rep"`
	// Groups is how many groups crossed into loss at this instant
	// (data-loss only; 1 otherwise).
	Groups int `json:"groups,omitempty"`
	// WindowHours is the reconstructed window of vulnerability the
	// blame vector decomposes; 0 when the loss was instantaneous (or no
	// span evidence exists — then Blame.Instant is 1).
	WindowHours float64 `json:"window_hours"`
	// Blame is the normalized blame vector; fractions sum to 1.
	Blame Blame `json:"blame"`
	// Chain is the causal chain, oldest first, capped at maxChain.
	Chain []ChainLink `json:"chain,omitempty"`
}

// Report is one run's forensic output: a postmortem per loss event, in
// trace order.
type Report struct {
	Posts  []Postmortem `json:"posts"`
	Losses int          `json:"losses"`
	Drops  int          `json:"drops"`
}

// maxChain caps a postmortem's causal chain; the classification anchors
// always fit, deep retry ladders are summarized instead of enumerated.
const maxChain = 16

type gr struct{ g, r int }

type lseHit struct {
	t          float64
	group, rep int
}

type parkSpan struct{ from, to float64 }

// analyzer is the single-forward-pass state machine over the trace.
// All lookups are by concrete key — no map iteration — so the pass is
// deterministic without sorting.
type analyzer struct {
	ctx   Context
	spans []*obs.Span

	// dropIdx indexes dropped spans by rebuild identity for exact
	// DoneAt matching; consumed front-to-back per key.
	dropIdx map[gr][]*obs.Span

	diskFailAt      map[int]float64
	diskFailBlocks  map[int]int
	darkSince       map[int]float64
	lastLSEDetect   map[int]lseHit
	lastScrubRepair map[int]lseHit
	slowFactor      map[int]float64
	crossRackAt     map[gr]float64
	timedOutAt      map[gr]float64
	hedgeAt         map[gr]float64
	parkFrom        map[gr]float64
	parks           map[gr][]parkSpan

	falseDead struct {
		t, since float64
		rack     int
		ok       bool
	}
	throttle struct {
		t, mbps, share float64
		ok             bool
	}
	burst struct {
		t     float64
		kills int
		ok    bool
	}
	spare struct {
		t  float64
		ok bool
	}
}

// Analyze runs the forensic pass over one run's event stream and
// (optionally) its rebuild-lifecycle spans, producing exactly one
// postmortem per data-loss and per dropped event, in trace order. A nil
// span slice degrades gracefully: windows without span evidence come
// back Instant and drop classification falls to ClassUnattributed.
// Events must be time-sorted (the recorder's natural order).
func Analyze(events []trace.Event, spans []*obs.Span, ctx Context) *Report {
	a := &analyzer{
		ctx:             ctx,
		spans:           spans,
		dropIdx:         map[gr][]*obs.Span{},
		diskFailAt:      map[int]float64{},
		diskFailBlocks:  map[int]int{},
		darkSince:       map[int]float64{},
		lastLSEDetect:   map[int]lseHit{},
		lastScrubRepair: map[int]lseHit{},
		slowFactor:      map[int]float64{},
		crossRackAt:     map[gr]float64{},
		timedOutAt:      map[gr]float64{},
		hedgeAt:         map[gr]float64{},
		parkFrom:        map[gr]float64{},
		parks:           map[gr][]parkSpan{},
	}
	for _, sp := range spans {
		if sp.Outcome == obs.OutcomeDropped {
			k := gr{sp.Group, sp.Rep}
			a.dropIdx[k] = append(a.dropIdx[k], sp)
		}
	}
	rep := &Report{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindDiskFail:
			a.diskFailAt[e.Disk] = e.Time
			if n, ok := trace.ParseBlocks(e.Detail); ok {
				a.diskFailBlocks[e.Disk] = n
			}
		case trace.KindRackUnreachable:
			a.darkSince[e.Rack] = e.Time
		case trace.KindPartitionHeal:
			delete(a.darkSince, e.Rack)
		case trace.KindFalseDead:
			a.falseDead.t = e.Time
			a.falseDead.rack = e.Rack
			a.falseDead.since = a.darkSince[e.Rack]
			a.falseDead.ok = true
			delete(a.darkSince, e.Rack)
		case trace.KindFailSlowOnset:
			if f, ok := trace.ParseFactor(e.Detail); ok && f > 1 {
				a.slowFactor[e.Disk] = f
			} else {
				a.slowFactor[e.Disk] = 1
			}
		case trace.KindFailSlowRecover:
			delete(a.slowFactor, e.Disk)
		case trace.KindThrottle:
			if m, s, ok := trace.ParseThrottleStep(e.Detail); ok {
				a.throttle.t, a.throttle.mbps, a.throttle.share = e.Time, m, s
				a.throttle.ok = true
			}
		case trace.KindBurst:
			a.burst.t = e.Time
			a.burst.ok = true
			a.burst.kills = 0
			if k, ok := trace.ParseKills(e.Detail); ok {
				a.burst.kills = k
			}
		case trace.KindSpareQueued:
			a.spare.t = e.Time
			a.spare.ok = true
		case trace.KindLSEDetect:
			a.lastLSEDetect[e.Disk] = lseHit{e.Time, e.Group, e.Rep}
		case trace.KindScrubRepair:
			a.lastScrubRepair[e.Disk] = lseHit{e.Time, e.Group, e.Rep}
		case trace.KindResourceCrossRack:
			a.crossRackAt[gr{e.Group, e.Rep}] = e.Time
		case trace.KindRebuildTimeout:
			a.timedOutAt[gr{e.Group, e.Rep}] = e.Time
		case trace.KindHedge:
			a.hedgeAt[gr{e.Group, e.Rep}] = e.Time
		case trace.KindRebuildParked:
			a.parkFrom[gr{e.Group, e.Rep}] = e.Time
		case trace.KindRebuildResumed:
			k := gr{e.Group, e.Rep}
			if from, ok := a.parkFrom[k]; ok {
				if len(a.parks[k]) < 4 {
					a.parks[k] = append(a.parks[k], parkSpan{from, e.Time})
				}
				delete(a.parkFrom, k)
			}
		case trace.KindDataLoss:
			p := a.lossPostmortem(e)
			p.Seq = len(rep.Posts)
			rep.Posts = append(rep.Posts, p)
			rep.Losses++
		case trace.KindDropped:
			p := a.dropPostmortem(e)
			p.Seq = len(rep.Posts)
			rep.Posts = append(rep.Posts, p)
			rep.Drops++
		}
	}
	return rep
}

// openSpanOn returns the earliest-failed span open at time t, optionally
// restricted to one group (group < 0 matches any). A span is open at t
// when its block was already lost and its rebuild had not yet resolved.
func (a *analyzer) openSpanOn(t float64, group int) *obs.Span {
	var best *obs.Span
	for _, sp := range a.spans {
		if group >= 0 && sp.Group != group {
			continue
		}
		if sp.FailedAt > t {
			continue
		}
		if sp.DoneAt >= 0 && sp.DoneAt < t {
			continue
		}
		if best == nil || sp.FailedAt < best.FailedAt {
			best = sp
		}
	}
	return best
}

// takeDroppedSpan consumes the first unconsumed dropped span for the
// rebuild that ended exactly at t. Exact float equality is correct
// here: the span's DoneAt and the dropped event's Time are the same
// float64, surviving a JSON round-trip bit-for-bit.
func (a *analyzer) takeDroppedSpan(k gr, t float64) *obs.Span {
	list := a.dropIdx[k]
	for i, sp := range list {
		if sp.DoneAt == t {
			a.dropIdx[k] = append(list[:i:i], list[i+1:]...)
			return sp
		}
	}
	return nil
}
