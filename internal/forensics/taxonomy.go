package forensics

import (
	"fmt"

	"repro/internal/trace"
)

// Loss taxonomy. Classification is deterministic: the rules below are
// tried in order and the first match wins, so the same trace always
// yields the same verdicts.
//
// data-loss events:
//
//  1. ClassFalseDead — a false-dead declaration fired at this exact
//     instant: the loss is the write-off of a dark rack's drives.
//  2. ClassLSERebuild — an lse-detect on the event's disk at this exact
//     instant: a rebuild read tripped over a latent error and took the
//     group's last redundancy.
//  3. ClassLSEScrub — likewise, discovered by the scrubber.
//  4. ClassBurstSpare — a correlated burst within the association
//     window AND a spare-pool wait within it: the burst outran the
//     exhausted pool.
//  5. ClassBurst — a correlated burst within the association window.
//  6. ClassIndependent — none of the above: independent failures
//     stacked up faster than recovery.
//
// dropped events (span evidence required; spans off → ClassUnattributed):
//
//  1. ClassSourceExhaustion — the re-sourcing ladder exceeded the cap.
//  2. ClassTimeout — the straggler timeout condemned the attempt
//     before it dropped.
//  3. ClassGroupLost — the group died while the rebuild was in flight;
//     the drop just drains work the loss already orphaned.
const (
	ClassFalseDead        = "false-dead-writeoff"
	ClassLSERebuild       = "lse-during-rebuild"
	ClassLSEScrub         = "lse-at-scrub"
	ClassBurstSpare       = "burst+spare-exhaustion"
	ClassBurst            = "correlated-burst"
	ClassIndependent      = "independent-failures"
	ClassSourceExhaustion = "source-exhaustion"
	ClassTimeout          = "timeout-abandon"
	ClassGroupLost        = "group-lost"
	ClassUnattributed     = "unattributed"
)

// Classes lists every taxonomy class in display order: data-loss
// classes first, drop classes after, most specific first within each.
var Classes = []string{
	ClassFalseDead, ClassLSERebuild, ClassLSEScrub,
	ClassBurstSpare, ClassBurst, ClassIndependent,
	ClassSourceExhaustion, ClassTimeout, ClassGroupLost,
	ClassUnattributed,
}

// lossPostmortem builds the postmortem for one data-loss event.
func (a *analyzer) lossPostmortem(e trace.Event) Postmortem {
	groups := 1
	if n, ok := trace.ParseGroups(e.Detail); ok {
		groups = n
	}
	p := Postmortem{
		T: e.Time, Kind: string(trace.KindDataLoss),
		Disk: e.Disk, Group: -1, Rep: -1, Groups: groups,
	}
	switch {
	case a.falseDead.ok && a.falseDead.t == e.Time:
		p.Class = ClassFalseDead
		// The window is the whole outage: the data became unavailable
		// when the rack went dark, and the write-off ends the wait.
		p.WindowHours = e.Time - a.falseDead.since
		p.Blame = Blame{Stalled: 1}
		p.Chain = append(p.Chain,
			ChainLink{a.falseDead.since, string(trace.KindRackUnreachable), fmt.Sprintf("rack=%d", a.falseDead.rack)},
			ChainLink{a.falseDead.t, string(trace.KindFalseDead), fmt.Sprintf("rack=%d", a.falseDead.rack)},
			ChainLink{e.Time, string(trace.KindDiskFail), fmt.Sprintf("disk=%d", e.Disk)})
	case hitAt(a.lastLSEDetect, e.Disk, e.Time):
		h := a.lastLSEDetect[e.Disk]
		p.Class = ClassLSERebuild
		p.Group, p.Rep = h.group, h.rep
		p.Chain = append(p.Chain,
			ChainLink{h.t, string(trace.KindLSEDetect), fmt.Sprintf("disk=%d group=%d", e.Disk, h.group)})
		a.windowFromOpenSpan(&p, e, h.group)
	case hitAt(a.lastScrubRepair, e.Disk, e.Time):
		h := a.lastScrubRepair[e.Disk]
		p.Class = ClassLSEScrub
		p.Group, p.Rep = h.group, h.rep
		p.Chain = append(p.Chain,
			ChainLink{h.t, string(trace.KindScrubRepair), fmt.Sprintf("disk=%d group=%d", e.Disk, h.group)})
		a.windowFromOpenSpan(&p, e, h.group)
	case a.burst.ok && e.Time-a.burst.t <= a.ctx.burstWindow():
		if a.spare.ok && e.Time-a.spare.t <= a.ctx.burstWindow() {
			p.Class = ClassBurstSpare
			p.Chain = append(p.Chain,
				ChainLink{a.burst.t, string(trace.KindBurst), fmt.Sprintf("kills=%d", a.burst.kills)},
				ChainLink{a.spare.t, string(trace.KindSpareQueued), ""})
		} else {
			p.Class = ClassBurst
			p.Chain = append(p.Chain,
				ChainLink{a.burst.t, string(trace.KindBurst), fmt.Sprintf("kills=%d", a.burst.kills)})
		}
		a.windowFromOpenSpan(&p, e, -1)
	default:
		p.Class = ClassIndependent
		if t, ok := a.diskFailAt[e.Disk]; ok {
			p.Chain = append(p.Chain,
				ChainLink{t, string(trace.KindDiskFail), fmt.Sprintf("disk=%d", e.Disk)})
		}
		a.windowFromOpenSpan(&p, e, -1)
	}
	a.finishChain(&p, e.Time)
	return p
}

// hitAt reports whether the map holds a hit for the disk at exactly t
// (the presence check guards the zero lseHit from aliasing a hit at 0).
func hitAt(m map[int]lseHit, disk int, t float64) bool {
	h, ok := m[disk]
	return ok && h.t == t
}

// windowFromOpenSpan anchors a loss postmortem's window on the
// earliest-failed rebuild still open at the loss instant — for an
// LSE-class loss, open on the struck group; for burst/independent
// losses, the longest-exposed rebuild anywhere (the fleet's deepest
// exposure when the music stopped). Without span evidence the loss is
// Instant: no reconstruction was in flight, or spans were off.
func (a *analyzer) windowFromOpenSpan(p *Postmortem, e trace.Event, group int) {
	sp := a.openSpanOn(e.Time, group)
	if sp == nil {
		p.WindowHours = 0
		p.Blame = Blame{Instant: 1}
		return
	}
	if p.Group < 0 {
		p.Group, p.Rep = sp.Group, sp.Rep
	}
	p.WindowHours = e.Time - sp.FailedAt
	p.Blame = a.blameFromSpan(sp, e.Time, e.Disk)
	p.Chain = append(p.Chain,
		ChainLink{sp.FailedAt, "block-failed", fmt.Sprintf("group=%d rep=%d", sp.Group, sp.Rep)})
}

// dropPostmortem builds the postmortem for one dropped-rebuild event.
func (a *analyzer) dropPostmortem(e trace.Event) Postmortem {
	k := gr{e.Group, e.Rep}
	p := Postmortem{
		T: e.Time, Kind: string(trace.KindDropped),
		Disk: e.Disk, Group: e.Group, Rep: e.Rep,
	}
	sp := a.takeDroppedSpan(k, e.Time)
	if sp == nil {
		p.Class = ClassUnattributed
		p.Blame = Blame{Instant: 1}
		a.finishChain(&p, e.Time)
		return p
	}
	switch {
	case sp.Resourcings > a.ctx.maxResourcings():
		p.Class = ClassSourceExhaustion
	case sp.TimedOut:
		p.Class = ClassTimeout
	default:
		p.Class = ClassGroupLost
	}
	p.WindowHours = sp.DoneAt - sp.FailedAt
	p.Blame = a.blameFromSpan(sp, sp.DoneAt, e.Disk)
	p.Chain = append(p.Chain,
		ChainLink{sp.FailedAt, "block-failed", fmt.Sprintf("group=%d rep=%d", sp.Group, sp.Rep)})
	if sp.Retries > 0 || sp.Resourcings > 0 || sp.Redirections > 0 {
		p.Chain = append(p.Chain, ChainLink{sp.QueuedAt, "retry-ladder",
			fmt.Sprintf("retries=%d resourcings=%d redirections=%d",
				sp.Retries, sp.Resourcings, sp.Redirections)})
	}
	if t, ok := a.timedOutAt[k]; ok {
		p.Chain = append(p.Chain, ChainLink{t, string(trace.KindRebuildTimeout), ""})
	}
	if t, ok := a.hedgeAt[k]; ok {
		p.Chain = append(p.Chain, ChainLink{t, string(trace.KindHedge), ""})
	}
	a.finishChain(&p, e.Time)
	return p
}

// finishChain appends the chain links shared by every postmortem — the
// rebuild's parked intervals, its cross-rack flight, the throttle step
// and fail-slow episode in effect at the loss — then time-sorts (the
// links arrive near-sorted; a stable insertion keeps ties in append
// order) and caps the chain.
func (a *analyzer) finishChain(p *Postmortem, t float64) {
	k := gr{p.Group, p.Rep}
	if p.Group >= 0 {
		for _, ps := range a.parks[k] {
			p.Chain = append(p.Chain,
				ChainLink{ps.from, string(trace.KindRebuildParked), ""},
				ChainLink{ps.to, string(trace.KindRebuildResumed), ""})
		}
		if from, ok := a.parkFrom[k]; ok {
			p.Chain = append(p.Chain, ChainLink{from, string(trace.KindRebuildParked), "unresumed"})
		}
		if ct, ok := a.crossRackAt[k]; ok {
			p.Chain = append(p.Chain, ChainLink{ct, string(trace.KindResourceCrossRack), ""})
		}
	}
	if a.throttle.ok && a.throttle.t <= t {
		p.Chain = append(p.Chain, ChainLink{a.throttle.t, string(trace.KindThrottle),
			fmt.Sprintf("mbps=%.2f share=%.3f", a.throttle.mbps, a.throttle.share)})
	}
	if f, ok := a.slowFactor[p.Disk]; ok && f > 1 {
		p.Chain = append(p.Chain, ChainLink{t, string(trace.KindFailSlowOnset),
			fmt.Sprintf("factor=%g", f)})
	}
	// Insertion sort: chains are tiny and near-sorted, and stability
	// preserves append order on equal times.
	for i := 1; i < len(p.Chain); i++ {
		for j := i; j > 0 && p.Chain[j].T < p.Chain[j-1].T; j-- {
			p.Chain[j], p.Chain[j-1] = p.Chain[j-1], p.Chain[j]
		}
	}
	if len(p.Chain) > maxChain {
		p.Chain = p.Chain[:maxChain]
	}
}
