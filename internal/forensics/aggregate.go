package forensics

import (
	"encoding/json"
	"io"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Aggregate folds postmortems across Monte Carlo runs. It must be fed
// complete runs in run-index order (the ordered fold in core.MonteCarlo
// does exactly that), which makes every float accumulation — blame
// sums, window moments, registry histograms — byte-identical across
// worker counts. Not safe for concurrent use; the fold is serialized.
type Aggregate struct {
	// Runs counts the folded runs; Posts/Losses/Drops the postmortems.
	Runs   int `json:"runs"`
	Posts  int `json:"posts"`
	Losses int `json:"losses"`
	Drops  int `json:"drops"`
	// ByClass counts postmortems per taxonomy class.
	ByClass map[string]int `json:"by_class"`
	// BlameSum accumulates blame fractions over all postmortems; divide
	// by Posts for the fleet-mean blame vector.
	BlameSum Blame `json:"blame_sum"`
	// Window accumulates the postmortem windows' moments.
	Window metrics.Welford `json:"-"`

	reg *obs.Registry
}

// NewAggregate returns an empty aggregate with a fresh metrics registry.
func NewAggregate() *Aggregate {
	return &Aggregate{ByClass: map[string]int{}, reg: obs.NewRegistry()}
}

// AddRun folds one run's report. Call in run-index order.
func (a *Aggregate) AddRun(r *Report) {
	if r == nil {
		return
	}
	a.Runs++
	a.Posts += len(r.Posts)
	a.Losses += r.Losses
	a.Drops += r.Drops
	for i := range r.Posts {
		p := &r.Posts[i]
		a.ByClass[p.Class]++
		a.BlameSum.add(p.Blame)
		a.Window.Add(p.WindowHours)
	}
	r.RecordInto(a.reg)
}

// MeanBlame returns the fleet-mean blame vector (zero when no
// postmortems exist).
func (a *Aggregate) MeanBlame() Blame {
	b := a.BlameSum
	if a.Posts > 0 {
		b.scale(1 / float64(a.Posts))
	}
	return b
}

// Registry exposes the aggregate's forensic counters and histograms
// for exposition or merging into a campaign registry.
func (a *Aggregate) Registry() *obs.Registry { return a.reg }

// WriteJSON writes the aggregate as one JSON object (map keys sorted by
// encoding/json, so the bytes are deterministic).
func (a *Aggregate) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(a)
}

// classCounter maps taxonomy classes to their obs catalogue names.
// Declared as a function, not a map, so there is no iteration-order
// hazard anywhere near the registry.
func classCounter(class string) obs.Name {
	switch class {
	case ClassFalseDead:
		return obs.MetricLossFalseDead
	case ClassLSERebuild:
		return obs.MetricLossLSERebuild
	case ClassLSEScrub:
		return obs.MetricLossLSEScrub
	case ClassBurstSpare:
		return obs.MetricLossBurstSpare
	case ClassBurst:
		return obs.MetricLossBurst
	case ClassIndependent:
		return obs.MetricLossIndependent
	case ClassSourceExhaustion:
		return obs.MetricDropSourceExhaustion
	case ClassTimeout:
		return obs.MetricDropTimeout
	case ClassGroupLost, ClassUnattributed:
		return obs.MetricDropGroupLost
	}
	return obs.MetricPostmortems
}

// RecordInto records one run's postmortems into a registry: total and
// per-class counters, window and leading-blame-fraction histograms.
// Postmortems are recorded in report order, so the float histogram sums
// are deterministic.
func (r *Report) RecordInto(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.Counter(obs.MetricPostmortems).Add(uint64(len(r.Posts)))
	reg.Counter(obs.MetricPostmortemLosses).Add(uint64(r.Losses))
	reg.Counter(obs.MetricPostmortemDrops).Add(uint64(r.Drops))
	wh := reg.Histogram(obs.MetricPostmortemWindow, obs.PhaseBounds)
	bt := reg.Histogram(obs.MetricBlameTransfer, obs.FractionBounds)
	bd := reg.Histogram(obs.MetricBlameDetect, obs.FractionBounds)
	bs := reg.Histogram(obs.MetricBlameStretch, obs.FractionBounds)
	for i := range r.Posts {
		p := &r.Posts[i]
		reg.Counter(classCounter(p.Class)).Inc()
		wh.Observe(p.WindowHours)
		bt.Observe(p.Blame.Transfer)
		bd.Observe(p.Blame.Detect)
		bs.Observe(p.Blame.FailSlow + p.Blame.Contention + p.Blame.Network)
	}
}
