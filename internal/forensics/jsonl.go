package forensics

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes one JSON object per postmortem, in report order.
func (r *Report) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Posts {
		if err := enc.Encode(&r.Posts[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadPostmortemJSONL parses a stream written by WriteJSONL.
func ReadPostmortemJSONL(rd io.Reader) ([]Postmortem, error) {
	dec := json.NewDecoder(rd)
	var out []Postmortem
	for dec.More() {
		var p Postmortem
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("forensics: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
