package forensics

import (
	"math"

	"repro/internal/obs"
	"repro/internal/workload"
)

// Blame is a postmortem's normalized window decomposition. The additive
// components (Detect through Stalled) are the span's phase accounting;
// the stretch components (FailSlow, Contention, Network) are the share
// of transfer time the multiplicative slowdowns added on top of the
// healthy-hardware baseline. Fractions are non-negative and sum to 1;
// Instant is 1 exactly when no window evidence exists (all-at-once
// losses, spans off).
type Blame struct {
	Detect     float64 `json:"detect,omitempty"`
	Queue      float64 `json:"queue,omitempty"`
	Transfer   float64 `json:"transfer,omitempty"`
	Retry      float64 `json:"retry,omitempty"`
	Hedge      float64 `json:"hedge,omitempty"`
	Stalled    float64 `json:"stalled,omitempty"`
	FailSlow   float64 `json:"failslow,omitempty"`
	Contention float64 `json:"contention,omitempty"`
	Network    float64 `json:"network,omitempty"`
	Instant    float64 `json:"instant,omitempty"`
}

// Sum returns the total of all fractions (1 for a well-formed vector).
func (b Blame) Sum() float64 {
	return b.Detect + b.Queue + b.Transfer + b.Retry + b.Hedge +
		b.Stalled + b.FailSlow + b.Contention + b.Network + b.Instant
}

// AddBlame returns the component-wise sum of two blame vectors.
func AddBlame(a, b Blame) Blame {
	a.add(b)
	return a
}

// ScaleBlame returns b with every component multiplied by f.
func ScaleBlame(b Blame, f float64) Blame {
	b.scale(f)
	return b
}

// add accumulates another blame vector component-wise.
func (b *Blame) add(o Blame) {
	b.Detect += o.Detect
	b.Queue += o.Queue
	b.Transfer += o.Transfer
	b.Retry += o.Retry
	b.Hedge += o.Hedge
	b.Stalled += o.Stalled
	b.FailSlow += o.FailSlow
	b.Contention += o.Contention
	b.Network += o.Network
	b.Instant += o.Instant
}

// scale multiplies every component by f.
func (b *Blame) scale(f float64) {
	b.Detect *= f
	b.Queue *= f
	b.Transfer *= f
	b.Retry *= f
	b.Hedge *= f
	b.Stalled *= f
	b.FailSlow *= f
	b.Contention *= f
	b.Network *= f
	b.Instant *= f
}

// blameFromSpan decomposes a rebuild span's window ending (or cut) at t
// into the blame vector.
//
// Additive split: the window W = t − FailedAt is detect wait + queue
// wait + retry backoff + transfer + a residual. Hedge overlap is carved
// out of transfer (the overlap is transfer time spent racing a
// duplicate). The residual is time the span's phase accounting cannot
// see — parked against dark racks, write-fenced, or waiting between
// attempts — and lands in Stalled. When phase accounting overshoots the
// window (an attempt was still accruing at the cut), the components are
// rescaled into it instead, and Stalled is 0.
//
// Multiplicative stretch: the transfer share then splits against the
// stretch factors in effect — the source/target fail-slow factor, the
// foreground contention factor of the last throttle step's share, and
// the spine oversubscription when the rebuild re-sourced across racks
// mid-flight. With combined factor F, a fraction (1 − 1/F) of observed
// transfer time is slowdown, attributed ∝ log of each factor (factors
// compose multiplicatively, so log shares partition the slowdown
// exactly); the remaining 1/F is honest data movement.
//
// The vector is finally normalized by its own sum, so the fractions sum
// to 1 to within a few ulps whatever the float path here did.
func (a *analyzer) blameFromSpan(sp *obs.Span, t float64, disk int) Blame {
	w := t - sp.FailedAt
	if w <= 0 {
		return Blame{Instant: 1}
	}
	detect := clamp(sp.DetectedAt-sp.FailedAt, 0, w)
	queue := math.Max(sp.QueueWait, 0)
	retry := math.Max(sp.RetryWait, 0)
	transfer := math.Max(sp.Transfer, 0)
	hedge := clamp(sp.HedgeOverlap, 0, transfer)
	transfer -= hedge

	b := Blame{Detect: detect, Queue: queue, Retry: retry, Transfer: transfer, Hedge: hedge}
	accounted := detect + queue + retry + transfer + hedge
	if accounted > w && accounted > 0 {
		b.scale(w / accounted)
	} else {
		b.Stalled = w - accounted
	}

	// Stretch factors in effect for this rebuild.
	fFail := 1.0
	if f, ok := a.slowFactor[disk]; ok && f > 1 {
		fFail = f
	}
	fCont := 1.0
	if a.throttle.ok && a.throttle.share > 0 {
		fCont = workload.ContentionFactor(a.throttle.share)
	}
	fNet := 1.0
	if a.ctx.OversubscriptionRatio > 1 {
		if ct, ok := a.crossRackAt[gr{sp.Group, sp.Rep}]; ok && ct >= sp.QueuedAt && ct <= t {
			fNet = a.ctx.OversubscriptionRatio
		}
	}
	if f := fFail * fCont * fNet; f > 1 && b.Transfer > 0 {
		excess := b.Transfer * (1 - 1/f)
		lf, lc, ln := math.Log(fFail), math.Log(fCont), math.Log(fNet)
		lsum := lf + lc + ln
		b.FailSlow = excess * lf / lsum
		b.Contention = excess * lc / lsum
		b.Network = excess * ln / lsum
		b.Transfer -= excess
	}

	s := b.Sum()
	if !(s > 0) {
		return Blame{Instant: 1}
	}
	b.scale(1 / s)
	return b
}

// clamp bounds v into [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
