// Package topology models the cluster network as the recovery paper's
// successors measure it: disks grouped into racks, each rack hanging off
// a top-of-rack (ToR) switch with a finite uplink, all uplinks meeting
// at a spine whose bisection bandwidth may be oversubscribed (Rashmi et
// al.'s warehouse study puts the real repair bottleneck here, not at the
// disk arm). The simulator's flat per-disk recovery rate remains the
// intra-rack model; a transfer that crosses racks is additionally
// throttled by the most-contended link on its path — source uplink,
// destination downlink, or the shared spine — fair-shared among the
// cross-rack flows using it.
//
// The same rack structure doubles as the correlated-fault domain: a ToR
// switch death or rack power event renders every disk in the rack
// unreachable (distinct from dead — the data is intact but temporarily
// behind a dark switch), and the Network tracks reachability with
// epoch-stamped transitions so heal/false-dead timers scheduled against
// one outage cannot fire against a later one.
//
// The zero Config disables everything: with Racks == 0 no Network is
// constructed and every consumer keeps its flat-rate, always-reachable
// behaviour bit-for-bit.
package topology

import (
	"errors"

	"repro/internal/faults"
)

// Config describes the rack/spine fabric. The zero value disables the
// topology model entirely.
type Config struct {
	// Racks is the number of rack fault domains; 0 disables topology.
	// Disks map to racks round-robin (disk id mod Racks), which keeps
	// the mapping stable as replacement batches grow the fleet.
	Racks int

	// RackAware places the blocks of each group in distinct racks (and
	// re-places them rack-disjointly during recovery), so a single
	// domain fault costs at most one erasure per group. Requires
	// Racks >= the redundancy scheme's group size.
	RackAware bool

	// UplinkMBps is each rack's ToR uplink (and downlink) bandwidth in
	// MB/s. Default 1250 MB/s (a 10 Gb/s ToR uplink).
	UplinkMBps float64

	// OversubscriptionRatio is the ratio of aggregate ToR uplink
	// bandwidth to spine bisection bandwidth; 1 (the default) is a
	// non-blocking fabric, 4 means the spine carries a quarter of the
	// sum of uplinks.
	OversubscriptionRatio float64

	// FalseDeadHours is how long a rack may stay unreachable before its
	// disks are declared dead and rebuilt elsewhere (the partition-
	// tolerance dial: small values convert every transient partition
	// into a rebuild storm; large values stretch the window of
	// vulnerability while data sits behind a dark switch). 0 means
	// never declare — wait for the partition to heal.
	FalseDeadHours float64
}

// Enabled reports whether the topology model is configured.
func (c Config) Enabled() bool { return c.Racks > 0 }

// Validate checks the topology configuration, rejecting NaN/±Inf with
// field-distinct messages before range checks (a NaN uplink bandwidth
// sails through `< 0` and turns every cross-rack duration into NaN).
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"UplinkMBps", c.UplinkMBps},
		{"OversubscriptionRatio", c.OversubscriptionRatio},
		{"FalseDeadHours", c.FalseDeadHours},
	} {
		if err := faults.CheckFinite("topology: "+f.name, f.v); err != nil {
			return err
		}
	}
	switch {
	case c.Racks < 0:
		return errors.New("topology: negative rack count")
	case c.UplinkMBps < 0:
		return errors.New("topology: negative uplink bandwidth")
	case c.OversubscriptionRatio < 0 || (c.OversubscriptionRatio > 0 && c.OversubscriptionRatio < 1):
		return errors.New("topology: oversubscription ratio must be at least 1")
	case c.FalseDeadHours < 0:
		return errors.New("topology: negative false-dead timeout")
	case c.RackAware && c.Racks == 0:
		return errors.New("topology: rack-aware placement needs a rack count")
	}
	return nil
}

// withDefaults fills the zero fabric parameters. Only meaningful when
// Enabled.
func (c Config) withDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.UplinkMBps == 0 {
		c.UplinkMBps = 1250 // 10 Gb/s ToR uplink
	}
	if c.OversubscriptionRatio == 0 {
		c.OversubscriptionRatio = 1 // non-blocking fabric
	}
	return c
}

// Network is the live fabric state for one run: per-rack reachability
// with epoch-stamped transitions, and per-link concurrent-flow counts
// for the fair-share contention model. Not safe for concurrent use —
// like the rest of the kernel it lives on one run's event loop.
type Network struct {
	cfg Config

	// spineMBps is the fabric bisection bandwidth: the sum of uplinks
	// divided by the oversubscription ratio.
	spineMBps float64

	// up/down count the cross-rack flows currently traversing each
	// rack's ToR uplink (as source) and downlink (as destination);
	// cross counts all cross-rack flows (spine load). Intra-rack
	// transfers never touch these.
	up    []int32
	down  []int32
	cross int32

	// unreachable marks racks currently behind a failed switch, power
	// event, or partition. epoch bumps on every reachability
	// transition so timers scheduled against one outage can detect
	// they are stale. since records when the current outage began.
	unreachable []bool
	epoch       []uint32
	since       []float64
}

// NewNetwork validates cfg and builds the run-time fabric state.
// Returns nil when the topology is disabled.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	return &Network{
		cfg:         cfg,
		spineMBps:   cfg.UplinkMBps * float64(cfg.Racks) / cfg.OversubscriptionRatio,
		up:          make([]int32, cfg.Racks),
		down:        make([]int32, cfg.Racks),
		unreachable: make([]bool, cfg.Racks),
		epoch:       make([]uint32, cfg.Racks),
		since:       make([]float64, cfg.Racks),
	}, nil
}

// Racks returns the number of rack fault domains.
func (n *Network) Racks() int { return n.cfg.Racks }

// RackAware reports whether placement must spread groups across racks.
func (n *Network) RackAware() bool { return n.cfg.RackAware }

// FalseDeadHours returns the partition-tolerance timeout (0 = never
// declare a dark rack dead).
func (n *Network) FalseDeadHours() float64 { return n.cfg.FalseDeadHours }

// RackOf maps a disk to its rack. Round-robin by id: replacement
// batches grown mid-run land in existing racks without any bookkeeping.
//
//farm:hotpath called per transfer and per placement candidate
func (n *Network) RackOf(disk int) int { return disk % n.cfg.Racks }

// SameRack reports whether two disks share a rack (no uplink crossing).
//
//farm:hotpath called per transfer completion
func (n *Network) SameRack(a, b int) bool { return a%n.cfg.Racks == b%n.cfg.Racks }

// DiskUnreachable reports whether the disk sits behind a dark switch.
//
//farm:hotpath consulted per source/target eligibility check
func (n *Network) DiskUnreachable(disk int) bool { return n.unreachable[disk%n.cfg.Racks] }

// RackUnreachable reports whether the rack is currently dark.
func (n *Network) RackUnreachable(rack int) bool { return n.unreachable[rack] }

// SetRackUnreachable marks a rack dark at time now (hours), bumping its
// epoch. Returns false when the rack was already dark: an overlapping
// domain event merges into the ongoing outage (no epoch bump, no new
// timers — the first event's heal/false-dead schedule stands).
func (n *Network) SetRackUnreachable(rack int, now float64) bool {
	if n.unreachable[rack] {
		return false
	}
	n.unreachable[rack] = true
	n.epoch[rack]++
	n.since[rack] = now
	return true
}

// SetRackReachable marks a dark rack healed, bumping its epoch so any
// outstanding timers against the outage become stale.
func (n *Network) SetRackReachable(rack int) {
	if !n.unreachable[rack] {
		return
	}
	n.unreachable[rack] = false
	n.epoch[rack]++
}

// Epoch returns the rack's reachability-transition counter. Timers
// capture it at scheduling time and no-op when it has moved on.
func (n *Network) Epoch(rack int) uint32 { return n.epoch[rack] }

// UnreachableSince returns the start time (hours) of the rack's current
// outage; meaningful only while RackUnreachable.
func (n *Network) UnreachableSince(rack int) float64 { return n.since[rack] }

// BeginFlow registers a transfer from disk src to disk dst and returns
// the fair-share bandwidth (MB/s) of the most-contended link on its
// path, or cross=false for an intra-rack transfer (no fabric link
// crossed; the flat per-disk rate stands). The share is computed
// quasi-statically — once, at transfer start, from the concurrent flow
// counts at that instant — and held for the transfer's lifetime
// (DESIGN.md §13 discusses the approximation). Every BeginFlow must be
// paired with exactly one EndFlow.
//
//farm:hotpath per-transfer admission, gated by TestSingleRunAllocCeiling
func (n *Network) BeginFlow(src, dst int) (shareMBps float64, cross bool) {
	sr, dr := src%n.cfg.Racks, dst%n.cfg.Racks
	if sr == dr {
		return 0, false
	}
	n.up[sr]++
	n.down[dr]++
	n.cross++
	share := n.cfg.UplinkMBps / float64(n.up[sr])
	if d := n.cfg.UplinkMBps / float64(n.down[dr]); d < share {
		share = d
	}
	if s := n.spineMBps / float64(n.cross); s < share {
		share = s
	}
	return share, true
}

// EndFlow releases the link capacity claimed by BeginFlow(src, dst).
//
//farm:hotpath per-transfer release
func (n *Network) EndFlow(src, dst int) {
	sr, dr := src%n.cfg.Racks, dst%n.cfg.Racks
	if sr == dr {
		return
	}
	n.up[sr]--
	n.down[dr]--
	n.cross--
	if n.up[sr] < 0 || n.down[dr] < 0 || n.cross < 0 {
		panic("topology: EndFlow without matching BeginFlow")
	}
}

// CrossFlows returns the number of cross-rack flows currently in
// flight (for tests and invariant checks).
func (n *Network) CrossFlows() int { return int(n.cross) }
