package topology

import (
	"math"
	"strings"
	"testing"
)

// valid is a baseline enabled config the table tests perturb.
func valid() Config {
	return Config{Racks: 8, RackAware: true, UplinkMBps: 1250, OversubscriptionRatio: 4, FalseDeadHours: 24}
}

// TestValidateRejectsNonFinite pins that every float field rejects NaN
// and ±Inf with a message naming the field (the floatvalid contract:
// distinct, diagnosable messages before any range check).
func TestValidateRejectsNonFinite(t *testing.T) {
	fields := []struct {
		name string
		set  func(*Config, float64)
	}{
		{"UplinkMBps", func(c *Config, v float64) { c.UplinkMBps = v }},
		{"OversubscriptionRatio", func(c *Config, v float64) { c.OversubscriptionRatio = v }},
		{"FalseDeadHours", func(c *Config, v float64) { c.FalseDeadHours = v }},
	}
	for _, f := range fields {
		for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			cfg := valid()
			f.set(&cfg, v)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("%s=%v accepted", f.name, v)
			}
			if !strings.Contains(err.Error(), f.name) {
				t.Fatalf("%s=%v: message %q does not name the field", f.name, v, err)
			}
		}
	}
}

// TestValidateRanges pins the distinct range-violation messages.
func TestValidateRanges(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative racks", func(c *Config) { c.Racks = -1 }, "negative rack count"},
		{"negative uplink", func(c *Config) { c.UplinkMBps = -1 }, "negative uplink bandwidth"},
		{"negative ratio", func(c *Config) { c.OversubscriptionRatio = -2 }, "oversubscription ratio"},
		{"fractional ratio", func(c *Config) { c.OversubscriptionRatio = 0.5 }, "oversubscription ratio"},
		{"negative false-dead", func(c *Config) { c.FalseDeadHours = -1 }, "negative false-dead timeout"},
		{"rack-aware without racks", func(c *Config) { c.Racks = 0 }, "rack-aware placement needs a rack count"},
	}
	for _, tc := range cases {
		cfg := valid()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %q, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// TestNewNetworkDefaults pins the zero-field defaults and the nil
// return for a disabled config.
func TestNewNetworkDefaults(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil || n != nil {
		t.Fatalf("zero config: got %v, %v; want nil, nil", n, err)
	}
	n, err = NewNetwork(Config{Racks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.UplinkMBps != 1250 || n.cfg.OversubscriptionRatio != 1 {
		t.Fatalf("defaults not applied: %+v", n.cfg)
	}
	if n.spineMBps != 1250*4 {
		t.Fatalf("non-blocking spine = %v, want %v", n.spineMBps, 1250.0*4)
	}
}

// TestFairShare exercises the three bottlenecks of BeginFlow: source
// uplink, destination downlink, and the oversubscribed spine.
func TestFairShare(t *testing.T) {
	n, err := NewNetwork(Config{Racks: 4, UplinkMBps: 1000, OversubscriptionRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	// spine = 1000*4/2 = 2000 MB/s.
	if share, cross := n.BeginFlow(0, 0); cross || share != 0 {
		t.Fatalf("intra-rack flow shaped: %v %v", share, cross)
	}
	// First cross flow rack0→rack1: uplink 1000, downlink 1000, spine 2000.
	share, cross := n.BeginFlow(0, 1)
	if !cross || share != 1000 {
		t.Fatalf("flow 1: share %v, want 1000", share)
	}
	// Second flow from the same source rack: uplink now 1000/2 = 500.
	if share, _ := n.BeginFlow(4, 2); share != 500 {
		t.Fatalf("uplink contention: share %v, want 500", share)
	}
	// Third flow on disjoint racks: links free, but spine has 3 flows:
	// 2000/3 < 1000.
	if share, _ := n.BeginFlow(2, 3); share != 2000.0/3 {
		t.Fatalf("spine contention: share %v, want %v", share, 2000.0/3)
	}
	// Downlink contention: second flow into rack 1 from a fresh source:
	// downlink 1000/2 = 500 beats spine 2000/4.
	if share, _ := n.BeginFlow(3, 1); share != 500 {
		t.Fatalf("downlink contention: share %v, want 500", share)
	}
	for _, f := range [][2]int{{0, 1}, {4, 2}, {2, 3}, {3, 1}} {
		n.EndFlow(f[0], f[1])
	}
	n.EndFlow(0, 0) // intra-rack: no-op
	if n.CrossFlows() != 0 {
		t.Fatalf("flows leaked: %d", n.CrossFlows())
	}
}

// TestEndFlowUnderflowPanics pins the accounting invariant.
func TestEndFlowUnderflowPanics(t *testing.T) {
	n, err := NewNetwork(Config{Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EndFlow without BeginFlow did not panic")
		}
	}()
	n.EndFlow(0, 1)
}

// TestReachabilityEpochs pins the epoch discipline: transitions bump,
// overlapping outages merge, heal invalidates.
func TestReachabilityEpochs(t *testing.T) {
	n, err := NewNetwork(Config{Racks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.DiskUnreachable(7) { // disk 7 → rack 1
		t.Fatal("fresh network has dark racks")
	}
	if !n.SetRackUnreachable(1, 10) {
		t.Fatal("first outage not registered")
	}
	e := n.Epoch(1)
	if !n.RackUnreachable(1) || !n.DiskUnreachable(7) || n.DiskUnreachable(6) {
		t.Fatal("reachability not scoped to rack 1")
	}
	if n.UnreachableSince(1) != 10 {
		t.Fatalf("since = %v, want 10", n.UnreachableSince(1))
	}
	// Overlapping event on the dark rack merges: no epoch bump, since kept.
	if n.SetRackUnreachable(1, 20) {
		t.Fatal("overlapping outage not merged")
	}
	if n.Epoch(1) != e || n.UnreachableSince(1) != 10 {
		t.Fatal("merge perturbed epoch or since")
	}
	n.SetRackReachable(1)
	if n.RackUnreachable(1) || n.Epoch(1) == e {
		t.Fatal("heal did not clear and bump")
	}
	n.SetRackReachable(1) // idempotent
	if n.Epoch(1) != e+1 {
		t.Fatal("redundant heal bumped the epoch")
	}
}
