package erasure

import (
	"errors"
	"fmt"
)

// EvenOdd implements the EVENODD code of Blaum, Brady, Bruck, and Menon
// (IEEE ToC 1995), which the paper cites as an erasure-code candidate for
// redundancy groups [4]. EVENODD stores p data columns (p an odd prime)
// plus two parity columns — one of horizontal (row) parity and one of
// diagonal parity — and tolerates the loss of any two columns using only
// XOR, no finite-field multiplication.
//
// As a Code, EvenOdd is a p/(p+2) scheme. Each shard is one column of the
// (p−1)-row array; shard length must be a multiple of p−1 (row i of a
// column occupies bytes [i·stride, (i+1)·stride) with stride =
// len/(p−1)). Row p−1 is the standard imaginary all-zero row.
//
// Conventions (following the original paper):
//
//   - row parity      c(i, p)   = ⊕_j a(i, j)
//   - special diag    S         = ⊕ { a(i, j) : (i+j) ≡ p−1 (mod p) }
//   - diagonal parity c(d, p+1) = S ⊕ ⊕ { a(i, j) : (i+j) ≡ d (mod p) }
//     for d = 0..p−2
type EvenOdd struct {
	p int // prime number of data columns
}

// ErrNotPrime reports a non-prime column count.
var ErrNotPrime = errors.New("erasure: evenodd needs an odd prime number of data columns")

// ErrShardStride reports a shard length not divisible by p−1.
var ErrShardStride = errors.New("erasure: evenodd shard length must be a multiple of p-1")

// NewEvenOdd returns an EVENODD codec with p data columns. p must be an
// odd prime (3, 5, 7, ...).
func NewEvenOdd(p int) (*EvenOdd, error) {
	if p < 3 || !isPrime(p) {
		return nil, fmt.Errorf("%w: got %d", ErrNotPrime, p)
	}
	return &EvenOdd{p: p}, nil
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// DataShards returns p.
func (e *EvenOdd) DataShards() int { return e.p }

// TotalShards returns p + 2.
func (e *EvenOdd) TotalShards() int { return e.p + 2 }

// Name returns the scheme in m/n notation with an evenodd tag.
func (e *EvenOdd) Name() string { return fmt.Sprintf("%d/%d-evenodd", e.p, e.p+2) }

// layout validates shards and returns the row stride.
func (e *EvenOdd) layout(shards [][]byte, needPresent int) (int, error) {
	size, err := shardSize(shards, e.p+2, needPresent)
	if err != nil {
		return 0, err
	}
	if size%(e.p-1) != 0 {
		return 0, fmt.Errorf("%w: len %d, p %d", ErrShardStride, size, e.p)
	}
	return size / (e.p - 1), nil
}

// cell returns the byte slice of array row i within a column buffer.
func cell(buf []byte, i, stride int) []byte {
	return buf[i*stride : (i+1)*stride]
}

// xorInto dst ^= src.
func xorInto(dst, src []byte) {
	for k, b := range src {
		dst[k] ^= b
	}
}

// specialS computes S = ⊕ a(i, j) over the special diagonal
// (i+j ≡ p−1 mod p, i real) from intact data columns.
func (e *EvenOdd) specialS(shards [][]byte, stride int) []byte {
	p := e.p
	s := make([]byte, stride)
	for j := 1; j < p; j++ {
		xorInto(s, cell(shards[j], p-1-j, stride))
	}
	return s
}

// Encode fills the row-parity column (index p) and the diagonal-parity
// column (index p+1).
func (e *EvenOdd) Encode(shards [][]byte) error {
	stride, err := e.layout(shards, e.p+2)
	if err != nil {
		return err
	}
	p := e.p
	rowPar := shards[p]
	diagPar := shards[p+1]
	for k := range rowPar {
		rowPar[k] = 0
		diagPar[k] = 0
	}
	// Row parity: XOR of whole columns equals row-wise XOR.
	for j := 0; j < p; j++ {
		xorInto(rowPar, shards[j])
	}
	// Diagonal parity: c(d, p+1) = S ⊕ (XOR over diagonal d).
	s := e.specialS(shards, stride)
	diag := e.diagKnownXor(shards, nil, stride)
	for d := 0; d < p-1; d++ {
		out := cell(diagPar, d, stride)
		copy(out, s)
		xorInto(out, cell(diag, d, stride))
	}
	return nil
}

// Verify recomputes both parity columns and compares.
func (e *EvenOdd) Verify(shards [][]byte) (bool, error) {
	size, err := shardSize(shards, e.p+2, e.p+2)
	if err != nil {
		return false, err
	}
	work := make([][]byte, len(shards))
	for i, s := range shards {
		if i < e.p {
			work[i] = s
		} else {
			work[i] = make([]byte, size)
		}
	}
	if err := e.Encode(work); err != nil {
		return false, err
	}
	for i := e.p; i < e.p+2; i++ {
		for k := range shards[i] {
			if shards[i][k] != work[i][k] {
				return false, nil
			}
		}
	}
	return true, nil
}

// diagKnownXor returns, for each diagonal d = 0..p−1, the XOR of the
// present data cells on it (columns in skip and nil shards excluded; the
// imaginary row contributes nothing). Row p−1 of the result is the
// special diagonal.
func (e *EvenOdd) diagKnownXor(shards [][]byte, skip map[int]bool, stride int) []byte {
	p := e.p
	out := make([]byte, p*stride)
	for j := 0; j < p; j++ {
		if skip[j] || shards[j] == nil {
			continue
		}
		for i := 0; i < p-1; i++ {
			d := (i + j) % p
			xorInto(cell(out, d, stride), cell(shards[j], i, stride))
		}
	}
	return out
}

// Reconstruct rebuilds up to two missing columns in place.
func (e *EvenOdd) Reconstruct(shards [][]byte) error {
	stride, err := e.layout(shards, e.p)
	if err != nil {
		return err
	}
	var missing []int
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
		}
	}
	switch len(missing) {
	case 0:
		return nil
	case 1:
		return e.reconstruct1(shards, missing[0], stride)
	case 2:
		return e.reconstruct2(shards, missing[0], missing[1], stride)
	default:
		return ErrTooFewShards
	}
}

// reconstruct1 handles a single erasure.
func (e *EvenOdd) reconstruct1(shards [][]byte, lost, stride int) error {
	p := e.p
	size := stride * (p - 1)
	if lost >= p {
		// A parity column: re-encode from the intact data. Encode needs
		// both parity buffers; give the intact one a scratch copy so it
		// is not clobbered... it would be recomputed identically anyway,
		// so encoding in place is safe.
		shards[lost] = make([]byte, size)
		return e.Encode(shards)
	}
	// A data column: row parity ⊕ other data columns.
	out := make([]byte, size)
	copy(out, shards[p])
	for j := 0; j < p; j++ {
		if j != lost {
			xorInto(out, shards[j])
		}
	}
	shards[lost] = out
	return nil
}

// reconstruct2 handles two erasures r < s.
func (e *EvenOdd) reconstruct2(shards [][]byte, r, s, stride int) error {
	p := e.p
	size := stride * (p - 1)
	switch {
	case r == p && s == p+1:
		// Both parity columns: plain re-encode.
		shards[p] = make([]byte, size)
		shards[p+1] = make([]byte, size)
		return e.Encode(shards)
	case s == p+1:
		// A data column and the diagonal parity: row parity alone
		// recovers the data column, then re-encode.
		if err := e.reconstruct1(shards, r, stride); err != nil {
			return err
		}
		shards[p+1] = make([]byte, size)
		return e.Encode(shards)
	case s == p:
		// A data column and the row parity: recover the data through
		// the diagonals, then re-encode.
		if err := e.recoverDataViaDiagonals(shards, r, stride); err != nil {
			return err
		}
		shards[p] = make([]byte, size)
		return e.Encode(shards)
	default:
		return e.recoverTwoData(shards, r, s, stride)
	}
}

// recoverDataViaDiagonals rebuilds data column r when the row parity is
// also lost, using only the diagonal parity.
func (e *EvenOdd) recoverDataViaDiagonals(shards [][]byte, r, stride int) error {
	p := e.p
	size := stride * (p - 1)
	diag := e.diagKnownXor(shards, map[int]bool{r: true}, stride)

	// Recover S first.
	sVec := make([]byte, stride)
	dStar := (p - 1 + r) % p // diagonal through the imaginary cell (p−1, r)
	if dStar <= p-2 {
		// Column r contributes nothing to diagonal dStar, so
		// c(dStar, p+1) = S ⊕ knowns:  S = c(dStar, p+1) ⊕ knowns.
		copy(sVec, cell(shards[p+1], dStar, stride))
		xorInto(sVec, cell(diag, dStar, stride))
	} else {
		// r == 0: every real row of column 0 sits on a real parity
		// diagonal d = i. Writing a(i, 0) = c(i, p+1) ⊕ S ⊕ known_i and
		// folding the rows: ⊕_i a(i, 0) = ⊕_i base_i with
		// base_i = c(i, p+1) ⊕ known_i (the p−1 copies of S cancel).
		// The all-diagonal-parity identity ⊕_d c(d, p+1) = T ⊕ S (T =
		// XOR of every data cell) then isolates S:
		//   u := ⊕_d c(d, p+1) ⊕ (known data cells)   // = S ⊕ ⊕_i a(i,0)
		//   S  = u ⊕ ⊕_i base_i.
		u := make([]byte, stride)
		for d := 0; d < p-1; d++ {
			xorInto(u, cell(shards[p+1], d, stride))
		}
		for j := 0; j < p; j++ {
			if j == r {
				continue
			}
			for i := 0; i < p-1; i++ {
				xorInto(u, cell(shards[j], i, stride))
			}
		}
		copy(sVec, u)
		for i := 0; i < p-1; i++ {
			xorInto(sVec, cell(shards[p+1], i, stride)) // c(i, p+1)
			xorInto(sVec, cell(diag, i, stride))        // known_i
		}
	}

	// With S known, each row of column r comes off its diagonal.
	out := make([]byte, size)
	for i := 0; i < p-1; i++ {
		d := (i + r) % p
		dst := cell(out, i, stride)
		if d <= p-2 {
			// a(i, r) = c(d, p+1) ⊕ S ⊕ knowns on d.
			copy(dst, cell(shards[p+1], d, stride))
			xorInto(dst, sVec)
			xorInto(dst, cell(diag, d, stride))
		} else {
			// The special diagonal: its cells XOR to S directly.
			copy(dst, sVec)
			xorInto(dst, cell(diag, p-1, stride))
		}
	}
	shards[r] = out
	return nil
}

// recoverTwoData implements the EVENODD zigzag for two lost data columns
// r < s.
func (e *EvenOdd) recoverTwoData(shards [][]byte, r, s, stride int) error {
	p := e.p
	size := stride * (p - 1)

	// S = ⊕ row-parity cells ⊕ diagonal-parity cells (both intact).
	sVec := make([]byte, stride)
	for i := 0; i < p-1; i++ {
		xorInto(sVec, cell(shards[p], i, stride))
		xorInto(sVec, cell(shards[p+1], i, stride))
	}

	// Row syndromes: s0[i] = ⊕ of the two unknown cells in row i.
	s0 := make([]byte, size)
	for i := 0; i < p-1; i++ {
		copy(cell(s0, i, stride), cell(shards[p], i, stride))
	}
	for j := 0; j < p; j++ {
		if j == r || j == s {
			continue
		}
		xorInto(s0, shards[j])
	}

	// Diagonal syndromes: s1[d] = ⊕ of the unknown cells on diagonal d,
	// for d = 0..p−1 (the special diagonal included).
	diag := e.diagKnownXor(shards, map[int]bool{r: true, s: true}, stride)
	s1 := make([]byte, p*stride)
	for d := 0; d < p-1; d++ {
		dst := cell(s1, d, stride)
		copy(dst, cell(shards[p+1], d, stride)) // c(d, p+1)
		xorInto(dst, sVec)                      // ⊕ S
		xorInto(dst, cell(diag, d, stride))     // ⊕ knowns
	}
	// Special diagonal: unknowns = S ⊕ knowns.
	dst := cell(s1, p-1, stride)
	copy(dst, sVec)
	xorInto(dst, cell(diag, p-1, stride))

	// Zigzag: start at the row of column s whose diagonal passes through
	// the imaginary cell (p−1, r) — that diagonal has a single unknown.
	outR := make([]byte, size)
	outS := make([]byte, size)
	delta := ((s-r)%p + p) % p
	i := ((p-1-delta)%p + p) % p
	for i != p-1 {
		// Diagonal through (i, s): all other cells known except possibly
		// the column-r cell at row (i + delta) mod p, which is either
		// imaginary or already recovered by a previous step.
		d := (i + s) % p
		dstS := cell(outS, i, stride)
		copy(dstS, cell(s1, d, stride))
		ir := (i + delta) % p
		if ir != p-1 {
			xorInto(dstS, cell(outR, ir, stride))
		}
		// Row i now has one unknown: a(i, r) = s0[i] ⊕ a(i, s).
		dstR := cell(outR, i, stride)
		copy(dstR, cell(s0, i, stride))
		xorInto(dstR, dstS)
		i = ((i-delta)%p + p) % p
	}
	shards[r] = outR
	shards[s] = outS
	return nil
}
