package erasure

import "fmt"

// XORParity is the RAID-5-like m/(m+1) scheme: m data shards plus one XOR
// parity shard. It tolerates exactly one lost shard. These are the paper's
// 2/3 and 4/5 configurations.
type XORParity struct {
	m int
}

// NewXORParity returns an m/(m+1) single-parity codec. m must be >= 2
// (m == 1 is mirroring).
func NewXORParity(m int) (*XORParity, error) {
	if m < 2 {
		return nil, fmt.Errorf("erasure: xor parity needs m >= 2, got %d", m)
	}
	return &XORParity{m: m}, nil
}

// DataShards returns m.
func (x *XORParity) DataShards() int { return x.m }

// TotalShards returns m + 1.
func (x *XORParity) TotalShards() int { return x.m + 1 }

// Name returns the scheme in m/n notation, e.g. "4/5".
func (x *XORParity) Name() string { return fmt.Sprintf("%d/%d", x.m, x.m+1) }

// Encode computes the parity shard as the XOR of the data shards.
func (x *XORParity) Encode(shards [][]byte) error {
	size, err := shardSize(shards, x.m+1, x.m+1)
	if err != nil {
		return err
	}
	parity := shards[x.m]
	for i := 0; i < size; i++ {
		parity[i] = 0
	}
	for d := 0; d < x.m; d++ {
		for i, b := range shards[d] {
			parity[i] ^= b
		}
	}
	return nil
}

// Reconstruct rebuilds at most one missing shard by XOR of the others.
func (x *XORParity) Reconstruct(shards [][]byte) error {
	size, err := shardSize(shards, x.m+1, x.m)
	if err != nil {
		return err
	}
	missing := -1
	for i, s := range shards {
		if s == nil {
			missing = i
		}
	}
	if missing < 0 {
		return nil // nothing to do
	}
	out := make([]byte, size)
	for i, s := range shards {
		if i == missing {
			continue
		}
		for j, b := range s {
			out[j] ^= b
		}
	}
	shards[missing] = out
	return nil
}

// Verify reports whether the parity shard equals the XOR of the data
// shards.
func (x *XORParity) Verify(shards [][]byte) (bool, error) {
	size, err := shardSize(shards, x.m+1, x.m+1)
	if err != nil {
		return false, err
	}
	for i := 0; i < size; i++ {
		var acc byte
		for d := 0; d <= x.m; d++ {
			acc ^= shards[d][i]
		}
		if acc != 0 {
			return false, nil
		}
	}
	return true, nil
}
