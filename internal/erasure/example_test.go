package erasure_test

import (
	"fmt"

	"repro/internal/erasure"
)

func ExampleNew() {
	// A 4/6 redundancy group: four data blocks, two check blocks,
	// survives any two losses.
	code, _ := erasure.New(4, 6)
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = make([]byte, 8)
	}
	copy(shards[0], "the data")
	copy(shards[1], "spread o")
	copy(shards[2], "ver four")
	copy(shards[3], " shards!")
	if err := code.Encode(shards); err != nil {
		fmt.Println("encode:", err)
		return
	}
	// Two disks die.
	shards[0] = nil
	shards[4] = nil
	if err := code.Reconstruct(shards); err != nil {
		fmt.Println("reconstruct:", err)
		return
	}
	fmt.Println(string(shards[0]) + string(shards[1]) + string(shards[2]) + string(shards[3]))
	// Output:
	// the dataspread over four shards!
}
