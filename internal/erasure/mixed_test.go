package erasure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mixedShards(t testing.TB, r *rng.Source, m, size int) (*Mixed, [][]byte) {
	t.Helper()
	code, err := NewMixed(m)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, code.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, size)
	}
	for d := 0; d < m; d++ {
		for j := range shards[d] {
			shards[d][j] = byte(r.Intn(256))
		}
	}
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return code, shards
}

func TestNewMixedValidation(t *testing.T) {
	if _, err := NewMixed(1); err == nil {
		t.Fatal("m=1 accepted")
	}
	code, err := NewMixed(4)
	if err != nil {
		t.Fatal(err)
	}
	if code.DataShards() != 4 || code.TotalShards() != 10 {
		t.Fatal("shape wrong")
	}
	if code.Name() != "4/10-mixed" {
		t.Fatalf("name %q", code.Name())
	}
}

func TestMixedEncodeVerify(t *testing.T) {
	r := rng.New(1)
	code, shards := mixedShards(t, r, 4, 64)
	ok, err := code.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("verify after encode: %v %v", ok, err)
	}
	shards[2][10] ^= 1
	if ok, _ := code.Verify(shards); ok {
		t.Fatal("verify accepted corruption")
	}
}

func TestMixedSurvivesWholeSide(t *testing.T) {
	// The headline property: lose an entire side (m+1 shards), recover.
	r := rng.New(2)
	for _, lo := range []int{0, 5} {
		code, shards := mixedShards(t, r, 4, 32)
		want := make([][]byte, len(shards))
		for i, s := range shards {
			want[i] = append([]byte(nil), s...)
		}
		for i := lo; i < lo+5; i++ {
			shards[i] = nil
		}
		if err := code.Reconstruct(shards); err != nil {
			t.Fatalf("side %d: %v", lo, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], want[i]) {
				t.Fatalf("side %d: shard %d wrong", lo, i)
			}
		}
	}
}

func TestMixedSurvivesSidePlusOne(t *testing.T) {
	// One whole side plus a single shard of the other: the survivor side
	// XOR-repairs its one loss, then mirrors everything back.
	r := rng.New(3)
	code, shards := mixedShards(t, r, 3, 32)
	want := make([][]byte, len(shards))
	for i, s := range shards {
		want[i] = append([]byte(nil), s...)
	}
	for i := 4; i < 8; i++ { // whole mirror side (m=3 → half=4)
		shards[i] = nil
	}
	shards[1] = nil // plus one primary shard
	if err := code.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d wrong", i)
		}
	}
}

func TestMixedUnrecoverablePattern(t *testing.T) {
	// Losing the same two data shards on both sides plus both parities
	// leaves two unknowns in every equation: unrecoverable.
	r := rng.New(4)
	code, shards := mixedShards(t, r, 3, 16)
	// half = 4: primary data 0,1; mirror data 4,5; parities 3, 7.
	for _, i := range []int{0, 1, 3, 4, 5, 7} {
		shards[i] = nil
	}
	if err := code.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("expected ErrTooFewShards, got %v", err)
	}
}

func TestMixedCounterpartLossRecoverable(t *testing.T) {
	// Both copies of one data block lost, everything else intact: each
	// side XOR-repairs its own copy.
	r := rng.New(5)
	code, shards := mixedShards(t, r, 4, 16)
	want := append([]byte(nil), shards[2]...)
	shards[2] = nil
	shards[code.counterpart(2)] = nil
	if err := code.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[2], want) {
		t.Fatal("repair wrong")
	}
}

// Property: any loss pattern that Reconstruct accepts restores the exact
// original content, and patterns of ≤ 1 loss per... any two random
// losses are always recoverable for this layout.
func TestQuickMixedRandomLosses(t *testing.T) {
	f := func(seed uint64, m8, losses8 uint8) bool {
		m := int(m8%4) + 2
		r := rng.New(seed)
		code, err := NewMixed(m)
		if err != nil {
			return false
		}
		shards := make([][]byte, code.TotalShards())
		for i := range shards {
			shards[i] = make([]byte, 24)
		}
		for d := 0; d < m; d++ {
			for j := range shards[d] {
				shards[d][j] = byte(r.Intn(256))
			}
		}
		if err := code.Encode(shards); err != nil {
			return false
		}
		want := make([][]byte, len(shards))
		for i, s := range shards {
			want[i] = append([]byte(nil), s...)
		}
		losses := int(losses8) % code.TotalShards()
		for _, idx := range r.SampleK(code.TotalShards(), losses) {
			shards[idx] = nil
		}
		err = code.Reconstruct(shards)
		if losses <= 2 && err != nil {
			return false // any double loss is recoverable here
		}
		if err != nil {
			return true // declared unrecoverable: acceptable for >2 losses
		}
		for i := range shards {
			if !bytes.Equal(shards[i], want[i]) {
				return false // recovered but wrong: never acceptable
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
