package erasure

import "fmt"

// Mixed implements the paper's §2.2 "mixed scheme": a redundancy group
// structured as m data blocks plus an XOR parity block, together with a
// mirror of the data blocks and parity — RAID 5+1. Shards 0..m are the
// primary side (data 0..m−1, parity m); shards m+1..2m+1 are the mirror
// side in the same order.
//
// The scheme is not MDS: it stores m user blocks in 2(m+1) shards but
// survives many patterns beyond its worst case. Any single side fully
// lost is survivable (the mirror has everything); within a side, one
// loss is XOR-repairable; and cross-side repair copies a shard from its
// counterpart. Reconstruct applies these rules to a fixed point, which
// recovers every pattern that is information-theoretically recoverable
// for this layout.
type Mixed struct {
	m int
}

// NewMixed returns a mixed codec over m data blocks (m >= 2). Total
// shards: 2(m+1).
func NewMixed(m int) (*Mixed, error) {
	if m < 2 {
		return nil, fmt.Errorf("erasure: mixed scheme needs m >= 2, got %d", m)
	}
	return &Mixed{m: m}, nil
}

// DataShards returns m.
func (x *Mixed) DataShards() int { return x.m }

// TotalShards returns 2(m+1).
func (x *Mixed) TotalShards() int { return 2 * (x.m + 1) }

// Name tags the scheme.
func (x *Mixed) Name() string { return fmt.Sprintf("%d/%d-mixed", x.m, x.TotalShards()) }

// side returns the index of the shard's counterpart on the other side.
func (x *Mixed) counterpart(i int) int {
	half := x.m + 1
	if i < half {
		return i + half
	}
	return i - half
}

// Encode fills parity and mirror shards from the data shards 0..m−1.
func (x *Mixed) Encode(shards [][]byte) error {
	size, err := shardSize(shards, x.TotalShards(), x.TotalShards())
	if err != nil {
		return err
	}
	m := x.m
	parity := shards[m]
	for i := 0; i < size; i++ {
		parity[i] = 0
	}
	for d := 0; d < m; d++ {
		for i, b := range shards[d] {
			parity[i] ^= b
		}
	}
	for i := 0; i <= m; i++ {
		copy(shards[x.counterpart(i)], shards[i])
	}
	return nil
}

// Reconstruct repairs missing shards to a fixed point: mirror copies and
// single-loss XOR repairs, repeated until no rule applies. Returns
// ErrTooFewShards if unknowns remain (the pattern is unrecoverable).
func (x *Mixed) Reconstruct(shards [][]byte) error {
	size, err := shardSize(shards, x.TotalShards(), 1)
	if err != nil {
		return err
	}
	half := x.m + 1
	progress := true
	for progress {
		progress = false
		// Rule 1: copy from the counterpart.
		for i := range shards {
			if shards[i] == nil && shards[x.counterpart(i)] != nil {
				shards[i] = append([]byte(nil), shards[x.counterpart(i)]...)
				progress = true
			}
		}
		// Rule 2: XOR-repair a side with exactly one missing shard.
		for _, lo := range []int{0, half} {
			missing := -1
			count := 0
			for i := lo; i < lo+half; i++ {
				if shards[i] == nil {
					missing = i
					count++
				}
			}
			if count != 1 {
				continue
			}
			out := make([]byte, size)
			for i := lo; i < lo+half; i++ {
				if i == missing {
					continue
				}
				for j, b := range shards[i] {
					out[j] ^= b
				}
			}
			shards[missing] = out
			progress = true
		}
	}
	for _, s := range shards {
		if s == nil {
			return ErrTooFewShards
		}
	}
	return nil
}

// Verify checks both parities and the mirror relation.
func (x *Mixed) Verify(shards [][]byte) (bool, error) {
	size, err := shardSize(shards, x.TotalShards(), x.TotalShards())
	if err != nil {
		return false, err
	}
	half := x.m + 1
	for i := 0; i < half; i++ {
		a, b := shards[i], shards[x.counterpart(i)]
		for j := 0; j < size; j++ {
			if a[j] != b[j] {
				return false, nil
			}
		}
	}
	for _, lo := range []int{0, half} {
		for j := 0; j < size; j++ {
			var acc byte
			for i := lo; i < lo+half; i++ {
				acc ^= shards[i][j]
			}
			if acc != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}
