// Package erasure implements the byte-level redundancy codecs behind the
// paper's redundancy groups: n-way mirroring, single XOR parity (the
// RAID-5-like schemes), and generalized Reed–Solomon m/n erasure coding.
//
// Terminology follows the paper: an "m/n scheme" stores m user-data blocks
// plus k = n−m check blocks and can reconstruct the group from any m of
// the n blocks ("m-availability"). The codecs here operate on real byte
// shards so that examples and tests exercise actual encode/rebuild paths;
// the reliability simulator shares the same m/n semantics through
// internal/redundancy.
package erasure

import (
	"errors"
	"fmt"
)

// Code is an m/n erasure codec over byte shards. Shards are equal-length
// byte slices; indices 0..m-1 are data shards, m..n-1 are check shards.
type Code interface {
	// DataShards returns m, the number of user-data blocks per group.
	DataShards() int
	// TotalShards returns n, data plus check blocks.
	TotalShards() int
	// Encode fills the check shards from the data shards in place.
	// shards must have length n; all shards must be equal, non-zero
	// length.
	Encode(shards [][]byte) error
	// Reconstruct rebuilds missing shards in place. Missing shards are
	// nil entries; present shards must be equal length. Fails with
	// ErrTooFewShards if fewer than m shards are present.
	Reconstruct(shards [][]byte) error
	// Verify reports whether the check shards match the data shards.
	Verify(shards [][]byte) (bool, error)
	// Name returns the scheme name in the paper's m/n notation.
	Name() string
}

// Errors shared by all codecs.
var (
	ErrShardCount   = errors.New("erasure: wrong number of shards")
	ErrShardSize    = errors.New("erasure: shards have unequal or zero size")
	ErrTooFewShards = errors.New("erasure: too few shards to reconstruct")
)

// shardSize validates the present shards of a group and returns their
// common length. Missing (nil) shards are skipped; needPresent requires at
// least that many present.
func shardSize(shards [][]byte, want int, needPresent int) (int, error) {
	if len(shards) != want {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), want)
	}
	size := 0
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		if len(s) == 0 {
			return 0, ErrShardSize
		}
		if size == 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
		present++
	}
	if present < needPresent {
		return 0, ErrTooFewShards
	}
	return size, nil
}

// New returns a codec for an m/n scheme: Mirror for m == 1, XORParity for
// k == 1, and ReedSolomon otherwise.
func New(m, n int) (Code, error) {
	switch {
	case m <= 0 || n <= m:
		return nil, fmt.Errorf("erasure: invalid scheme %d/%d", m, n)
	case m == 1:
		return NewMirror(n)
	case n-m == 1:
		return NewXORParity(m)
	default:
		return NewReedSolomon(m, n)
	}
}
