package erasure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// paperSchemes are the six configurations evaluated in Figure 3.
var paperSchemes = [][2]int{{1, 2}, {1, 3}, {2, 3}, {4, 5}, {4, 6}, {8, 10}}

func makeShards(t *testing.T, r *rng.Source, m, n, size int) [][]byte {
	t.Helper()
	shards := make([][]byte, n)
	for i := range shards {
		shards[i] = make([]byte, size)
	}
	for d := 0; d < m; d++ {
		for j := range shards[d] {
			shards[d][j] = byte(r.Intn(256))
		}
	}
	return shards
}

func TestNewDispatch(t *testing.T) {
	cases := []struct {
		m, n int
		want string
	}{
		{1, 2, "*erasure.Mirror"},
		{1, 3, "*erasure.Mirror"},
		{2, 3, "*erasure.XORParity"},
		{4, 5, "*erasure.XORParity"},
		{4, 6, "*erasure.ReedSolomon"},
		{8, 10, "*erasure.ReedSolomon"},
	}
	for _, c := range cases {
		code, err := New(c.m, c.n)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c.m, c.n, err)
		}
		if code.DataShards() != c.m || code.TotalShards() != c.n {
			t.Errorf("New(%d,%d) shape wrong", c.m, c.n)
		}
	}
}

func TestNewInvalid(t *testing.T) {
	for _, c := range [][2]int{{0, 2}, {-1, 3}, {2, 2}, {3, 2}} {
		if _, err := New(c[0], c[1]); err == nil {
			t.Errorf("New(%d,%d) should fail", c[0], c[1])
		}
	}
}

func TestEncodeVerifyAllSchemes(t *testing.T) {
	r := rng.New(100)
	for _, s := range paperSchemes {
		code, err := New(s[0], s[1])
		if err != nil {
			t.Fatal(err)
		}
		shards := makeShards(t, r, s[0], s[1], 512)
		if err := code.Encode(shards); err != nil {
			t.Fatalf("%s Encode: %v", code.Name(), err)
		}
		ok, err := code.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("%s Verify after encode: ok=%v err=%v", code.Name(), ok, err)
		}
		// Corrupt a byte — verify must fail.
		shards[0][7] ^= 0x55
		ok, err = code.Verify(shards)
		if err != nil {
			t.Fatalf("%s Verify: %v", code.Name(), err)
		}
		if ok {
			t.Fatalf("%s Verify accepted corrupted data", code.Name())
		}
	}
}

func TestReconstructSingleLossAllSchemes(t *testing.T) {
	r := rng.New(101)
	for _, s := range paperSchemes {
		code, _ := New(s[0], s[1])
		for lost := 0; lost < s[1]; lost++ {
			shards := makeShards(t, r, s[0], s[1], 256)
			if err := code.Encode(shards); err != nil {
				t.Fatal(err)
			}
			want := make([][]byte, len(shards))
			for i, sh := range shards {
				want[i] = append([]byte(nil), sh...)
			}
			shards[lost] = nil
			if err := code.Reconstruct(shards); err != nil {
				t.Fatalf("%s lost=%d Reconstruct: %v", code.Name(), lost, err)
			}
			if !bytes.Equal(shards[lost], want[lost]) {
				t.Fatalf("%s lost=%d reconstructed shard differs", code.Name(), lost)
			}
		}
	}
}

func TestReconstructMaxLosses(t *testing.T) {
	// Every scheme must survive exactly n-m losses; which shards are lost
	// should not matter. Exhaustive over loss sets for the small schemes.
	r := rng.New(102)
	for _, s := range paperSchemes {
		m, n := s[0], s[1]
		code, _ := New(m, n)
		k := n - m
		lossSets := combinations(n, k)
		for _, lossSet := range lossSets {
			shards := makeShards(t, r, m, n, 128)
			if err := code.Encode(shards); err != nil {
				t.Fatal(err)
			}
			want := make([][]byte, n)
			for i, sh := range shards {
				want[i] = append([]byte(nil), sh...)
			}
			for _, l := range lossSet {
				shards[l] = nil
			}
			if err := code.Reconstruct(shards); err != nil {
				t.Fatalf("%s losses %v: %v", code.Name(), lossSet, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], want[i]) {
					t.Fatalf("%s losses %v: shard %d differs", code.Name(), lossSet, i)
				}
			}
		}
	}
}

func TestReconstructTooManyLosses(t *testing.T) {
	r := rng.New(103)
	for _, s := range paperSchemes {
		m, n := s[0], s[1]
		code, _ := New(m, n)
		shards := makeShards(t, r, m, n, 64)
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n-m+1; i++ {
			shards[i] = nil
		}
		err := code.Reconstruct(shards)
		if !errors.Is(err, ErrTooFewShards) {
			t.Fatalf("%s: expected ErrTooFewShards, got %v", code.Name(), err)
		}
	}
}

func TestReconstructNoLossIsNoop(t *testing.T) {
	r := rng.New(104)
	for _, s := range paperSchemes {
		code, _ := New(s[0], s[1])
		shards := makeShards(t, r, s[0], s[1], 64)
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		snap := make([][]byte, len(shards))
		for i, sh := range shards {
			snap[i] = append([]byte(nil), sh...)
		}
		if err := code.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], snap[i]) {
				t.Fatalf("%s: no-loss Reconstruct mutated shard %d", code.Name(), i)
			}
		}
	}
}

func TestShardValidation(t *testing.T) {
	code, _ := New(4, 6)
	// Wrong count.
	if err := code.Encode(make([][]byte, 5)); !errors.Is(err, ErrShardCount) {
		t.Errorf("wrong count: %v", err)
	}
	// Unequal sizes.
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = make([]byte, 10)
	}
	shards[3] = make([]byte, 9)
	if err := code.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Errorf("unequal size: %v", err)
	}
	// Zero-length shard.
	shards[3] = []byte{}
	if err := code.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Errorf("zero size: %v", err)
	}
}

func TestMirrorSpecifics(t *testing.T) {
	if _, err := NewMirror(1); err == nil {
		t.Error("NewMirror(1) should fail")
	}
	m, err := NewMirror(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "1/3" {
		t.Errorf("Name = %q", m.Name())
	}
	shards := [][]byte{{1, 2, 3}, make([]byte, 3), make([]byte, 3)}
	if err := m.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(shards[i], shards[0]) {
			t.Fatalf("replica %d differs", i)
		}
	}
	// Survive with only the last replica.
	shards[0], shards[1] = nil, nil
	if err := m.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[0], []byte{1, 2, 3}) {
		t.Fatal("mirror reconstruct from last replica failed")
	}
}

func TestXORSpecifics(t *testing.T) {
	if _, err := NewXORParity(1); err == nil {
		t.Error("NewXORParity(1) should fail")
	}
	x, err := NewXORParity(4)
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != "4/5" {
		t.Errorf("Name = %q", x.Name())
	}
}

func TestReedSolomonInvalid(t *testing.T) {
	for _, c := range [][2]int{{0, 2}, {3, 3}, {3, 2}, {200, 300}} {
		if _, err := NewReedSolomon(c[0], c[1]); err == nil {
			t.Errorf("NewReedSolomon(%d,%d) should fail", c[0], c[1])
		}
	}
}

func TestReedSolomonLargeScheme(t *testing.T) {
	// A wider scheme than the paper uses, to exercise the matrix paths.
	r := rng.New(105)
	code, err := NewReedSolomon(16, 20)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, r, 16, 20, 1024)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), shards[5]...)
	shards[5], shards[11], shards[17], shards[19] = nil, nil, nil, nil
	if err := code.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[5], want) {
		t.Fatal("large-scheme reconstruct wrong")
	}
	if ok, _ := code.Verify(shards); !ok {
		t.Fatal("large-scheme verify failed after reconstruct")
	}
}

// Property: encode → drop any k shards → reconstruct recovers the original
// data exactly, for random data and random loss patterns.
func TestQuickReconstructRoundTrip(t *testing.T) {
	f := func(seed uint64, schemeIdx uint8) bool {
		s := paperSchemes[int(schemeIdx)%len(paperSchemes)]
		m, n := s[0], s[1]
		code, err := New(m, n)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		shards := make([][]byte, n)
		for i := range shards {
			shards[i] = make([]byte, 64)
		}
		for d := 0; d < m; d++ {
			for j := range shards[d] {
				shards[d][j] = byte(r.Intn(256))
			}
		}
		if err := code.Encode(shards); err != nil {
			return false
		}
		orig := make([][]byte, n)
		for i, sh := range shards {
			orig[i] = append([]byte(nil), sh...)
		}
		// Drop a random set of up to n-m shards.
		for _, idx := range r.SampleK(n, n-m) {
			shards[idx] = nil
		}
		if err := code.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// combinations returns all k-element subsets of [0, n).
func combinations(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}
