package erasure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// evenOddShards builds a random encoded EVENODD group for prime p with
// the given stride (shard length = stride × (p−1)).
func evenOddShards(t testing.TB, r *rng.Source, p, stride int) (*EvenOdd, [][]byte) {
	t.Helper()
	code, err := NewEvenOdd(p)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, p+2)
	for i := range shards {
		shards[i] = make([]byte, stride*(p-1))
	}
	for j := 0; j < p; j++ {
		for k := range shards[j] {
			shards[j][k] = byte(r.Intn(256))
		}
	}
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return code, shards
}

func TestNewEvenOddValidation(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13} {
		if _, err := NewEvenOdd(p); err != nil {
			t.Errorf("NewEvenOdd(%d): %v", p, err)
		}
	}
	for _, p := range []int{-1, 0, 1, 2, 4, 6, 8, 9, 15} {
		if _, err := NewEvenOdd(p); err == nil {
			t.Errorf("NewEvenOdd(%d) should fail", p)
		}
	}
}

func TestEvenOddShape(t *testing.T) {
	code, _ := NewEvenOdd(5)
	if code.DataShards() != 5 || code.TotalShards() != 7 {
		t.Fatal("shape wrong")
	}
	if code.Name() != "5/7-evenodd" {
		t.Fatalf("name %q", code.Name())
	}
}

func TestEvenOddStrideValidation(t *testing.T) {
	code, _ := NewEvenOdd(5)
	shards := make([][]byte, 7)
	for i := range shards {
		shards[i] = make([]byte, 10) // not a multiple of p−1 = 4
	}
	if err := code.Encode(shards); !errors.Is(err, ErrShardStride) {
		t.Fatalf("expected ErrShardStride, got %v", err)
	}
}

func TestEvenOddEncodeVerify(t *testing.T) {
	r := rng.New(1)
	for _, p := range []int{3, 5, 7} {
		code, shards := evenOddShards(t, r, p, 8)
		ok, err := code.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("p=%d verify after encode: ok=%v err=%v", p, ok, err)
		}
		shards[1][3] ^= 0xff
		ok, err = code.Verify(shards)
		if err != nil || ok {
			t.Fatalf("p=%d verify accepted corruption", p)
		}
	}
}

func TestEvenOddRowParityProperty(t *testing.T) {
	// Row parity column must equal the XOR of the data columns.
	r := rng.New(2)
	_, shards := evenOddShards(t, r, 5, 4)
	for k := range shards[5] {
		var acc byte
		for j := 0; j < 5; j++ {
			acc ^= shards[j][k]
		}
		if shards[5][k] != acc {
			t.Fatalf("row parity wrong at byte %d", k)
		}
	}
}

func TestEvenOddSingleErasureAllColumns(t *testing.T) {
	r := rng.New(3)
	for _, p := range []int{3, 5, 7} {
		for lost := 0; lost < p+2; lost++ {
			code, shards := evenOddShards(t, r, p, 4)
			want := append([]byte(nil), shards[lost]...)
			shards[lost] = nil
			if err := code.Reconstruct(shards); err != nil {
				t.Fatalf("p=%d lost=%d: %v", p, lost, err)
			}
			if !bytes.Equal(shards[lost], want) {
				t.Fatalf("p=%d lost=%d: wrong reconstruction", p, lost)
			}
		}
	}
}

func TestEvenOddDoubleErasureAllPairs(t *testing.T) {
	// The EVENODD guarantee: any two columns (data or parity, in any
	// combination) are recoverable. Exhaustive for p = 3, 5, 7.
	r := rng.New(4)
	for _, p := range []int{3, 5, 7} {
		for a := 0; a < p+2; a++ {
			for b := a + 1; b < p+2; b++ {
				code, shards := evenOddShards(t, r, p, 4)
				wantA := append([]byte(nil), shards[a]...)
				wantB := append([]byte(nil), shards[b]...)
				shards[a], shards[b] = nil, nil
				if err := code.Reconstruct(shards); err != nil {
					t.Fatalf("p=%d lost=(%d,%d): %v", p, a, b, err)
				}
				if !bytes.Equal(shards[a], wantA) || !bytes.Equal(shards[b], wantB) {
					t.Fatalf("p=%d lost=(%d,%d): wrong reconstruction", p, a, b)
				}
			}
		}
	}
}

func TestEvenOddTripleErasureFails(t *testing.T) {
	r := rng.New(5)
	code, shards := evenOddShards(t, r, 5, 4)
	shards[0], shards[2], shards[6] = nil, nil, nil
	if err := code.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("triple erasure: %v", err)
	}
}

func TestEvenOddNoErasureNoop(t *testing.T) {
	r := rng.New(6)
	code, shards := evenOddShards(t, r, 5, 4)
	snap := make([][]byte, len(shards))
	for i, s := range shards {
		snap[i] = append([]byte(nil), s...)
	}
	if err := code.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], snap[i]) {
			t.Fatalf("no-op reconstruct mutated shard %d", i)
		}
	}
}

func TestEvenOddMatchesReedSolomonAvailability(t *testing.T) {
	// EVENODD and a p/(p+2) Reed–Solomon code protect the same data with
	// the same overhead; cross-check that both round-trip the same
	// payloads under the same double-erasure patterns.
	r := rng.New(7)
	const p = 5
	eo, err := NewEvenOdd(p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewReedSolomon(p, p+2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, p)
	for j := range data {
		data[j] = make([]byte, 16)
		for k := range data[j] {
			data[j][k] = byte(r.Intn(256))
		}
	}
	mk := func(code Code) [][]byte {
		shards := make([][]byte, p+2)
		for j := 0; j < p; j++ {
			shards[j] = append([]byte(nil), data[j]...)
		}
		shards[p] = make([]byte, 16)
		shards[p+1] = make([]byte, 16)
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		return shards
	}
	eoShards, rsShards := mk(eo), mk(rs)
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			e1 := append([][]byte(nil), eoShards...)
			e2 := append([][]byte(nil), rsShards...)
			e1[a], e1[b], e2[a], e2[b] = nil, nil, nil, nil
			if err := eo.Reconstruct(e1); err != nil {
				t.Fatal(err)
			}
			if err := rs.Reconstruct(e2); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < p; j++ {
				if !bytes.Equal(e1[j], data[j]) || !bytes.Equal(e2[j], data[j]) {
					t.Fatalf("codes disagree with original at column %d", j)
				}
			}
		}
	}
}

// Property: random data, random double erasure, exact round-trip.
func TestQuickEvenOddRoundTrip(t *testing.T) {
	f := func(seed uint64, pIdx, strideSel uint8) bool {
		primes := []int{3, 5, 7, 11}
		p := primes[int(pIdx)%len(primes)]
		stride := int(strideSel%7) + 1
		r := rng.New(seed)
		code, err := NewEvenOdd(p)
		if err != nil {
			return false
		}
		shards := make([][]byte, p+2)
		for i := range shards {
			shards[i] = make([]byte, stride*(p-1))
		}
		for j := 0; j < p; j++ {
			for k := range shards[j] {
				shards[j][k] = byte(r.Intn(256))
			}
		}
		if err := code.Encode(shards); err != nil {
			return false
		}
		orig := make([][]byte, len(shards))
		for i, s := range shards {
			orig[i] = append([]byte(nil), s...)
		}
		a := r.Intn(p + 2)
		b := r.Intn(p + 2)
		shards[a] = nil
		shards[b] = nil
		if err := code.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
