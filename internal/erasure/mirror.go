package erasure

import "fmt"

// Mirror is n-way replication: one data shard and n−1 identical copies.
// This is the paper's 1/2 (two-way) and 1/3 (three-way) mirroring.
type Mirror struct {
	n int
}

// NewMirror returns an n-way mirroring codec (1/n scheme). n must be >= 2.
func NewMirror(n int) (*Mirror, error) {
	if n < 2 {
		return nil, fmt.Errorf("erasure: mirror needs n >= 2, got %d", n)
	}
	return &Mirror{n: n}, nil
}

// DataShards returns 1.
func (m *Mirror) DataShards() int { return 1 }

// TotalShards returns n.
func (m *Mirror) TotalShards() int { return m.n }

// Name returns the scheme in m/n notation, e.g. "1/2".
func (m *Mirror) Name() string { return fmt.Sprintf("1/%d", m.n) }

// Encode copies the data shard into every replica shard.
func (m *Mirror) Encode(shards [][]byte) error {
	size, err := shardSize(shards, m.n, m.n)
	if err != nil {
		return err
	}
	_ = size
	for i := 1; i < m.n; i++ {
		copy(shards[i], shards[0])
	}
	return nil
}

// Reconstruct fills missing shards from any surviving replica.
func (m *Mirror) Reconstruct(shards [][]byte) error {
	size, err := shardSize(shards, m.n, 1)
	if err != nil {
		return err
	}
	var src []byte
	for _, s := range shards {
		if s != nil {
			src = s
			break
		}
	}
	for i, s := range shards {
		if s == nil {
			shards[i] = make([]byte, size)
			copy(shards[i], src)
		}
	}
	return nil
}

// Verify reports whether all replicas are identical.
func (m *Mirror) Verify(shards [][]byte) (bool, error) {
	if _, err := shardSize(shards, m.n, m.n); err != nil {
		return false, err
	}
	for i := 1; i < m.n; i++ {
		for j, b := range shards[i] {
			if shards[0][j] != b {
				return false, nil
			}
		}
	}
	return true, nil
}
