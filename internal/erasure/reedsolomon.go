package erasure

import (
	"fmt"

	"repro/internal/gf256"
)

// ReedSolomon is a generalized Reed–Solomon m/n erasure code built from a
// Cauchy generator matrix over GF(2^8): m data shards, k = n−m check
// shards, any m of the n shards reconstruct the group. These are the
// paper's 4/6 and 8/10 ECC configurations (and any other m/n).
type ReedSolomon struct {
	m, n int
	// gen is the full n×m generator: the identity on top (data rows)
	// followed by the k Cauchy check rows. shard_i = gen.Row(i) · data.
	gen *gf256.Matrix
}

// NewReedSolomon returns an m/n Reed–Solomon codec. Requires
// 1 <= m < n and n <= 256.
func NewReedSolomon(m, n int) (*ReedSolomon, error) {
	if m < 1 || n <= m || n > 256 {
		return nil, fmt.Errorf("erasure: invalid reed-solomon scheme %d/%d", m, n)
	}
	k := n - m
	gen := gf256.NewMatrix(n, m)
	for i := 0; i < m; i++ {
		gen.Set(i, i, 1)
	}
	cauchy := gf256.Cauchy(k, m)
	for i := 0; i < k; i++ {
		copy(gen.Row(m+i), cauchy.Row(i))
	}
	return &ReedSolomon{m: m, n: n, gen: gen}, nil
}

// DataShards returns m.
func (rs *ReedSolomon) DataShards() int { return rs.m }

// TotalShards returns n.
func (rs *ReedSolomon) TotalShards() int { return rs.n }

// Name returns the scheme in m/n notation, e.g. "8/10".
func (rs *ReedSolomon) Name() string { return fmt.Sprintf("%d/%d", rs.m, rs.n) }

// Encode fills the k check shards from the m data shards.
func (rs *ReedSolomon) Encode(shards [][]byte) error {
	if _, err := shardSize(shards, rs.n, rs.n); err != nil {
		return err
	}
	for c := rs.m; c < rs.n; c++ {
		row := rs.gen.Row(c)
		out := shards[c]
		// Row 0 assigns (no zeroing pass over out), the rest accumulate.
		gf256.MulSliceAssign(row[0], shards[0], out)
		for d := 1; d < rs.m; d++ {
			gf256.MulSlice(row[d], shards[d], out)
		}
	}
	return nil
}

// Reconstruct rebuilds all missing shards (nil entries) in place, provided
// at least m shards are present.
func (rs *ReedSolomon) Reconstruct(shards [][]byte) error {
	size, err := shardSize(shards, rs.n, rs.m)
	if err != nil {
		return err
	}
	// Collect the first m present shard indices.
	present := make([]int, 0, rs.m)
	anyMissing := false
	for i, s := range shards {
		if s == nil {
			anyMissing = true
		} else if len(present) < rs.m {
			present = append(present, i)
		}
	}
	if !anyMissing {
		return nil
	}
	// Solve for the data shards: sub = gen[present rows], data =
	// sub^-1 · presentShards.
	sub := rs.gen.SubMatrix(present)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen for a Cauchy generator; surface it anyway.
		return fmt.Errorf("erasure: reconstruct: %w", err)
	}
	data := make([][]byte, rs.m)
	for d := 0; d < rs.m; d++ {
		if shards[d] != nil {
			// Fast path: the data shard survived; no solve needed.
			data[d] = shards[d]
			continue
		}
		row := inv.Row(d)
		out := make([]byte, size)
		gf256.MulSliceAssign(row[0], shards[present[0]], out)
		for j := 1; j < len(present); j++ {
			gf256.MulSlice(row[j], shards[present[j]], out)
		}
		data[d] = out
		shards[d] = out
	}
	// Re-encode any missing check shards from the recovered data.
	for c := rs.m; c < rs.n; c++ {
		if shards[c] != nil {
			continue
		}
		row := rs.gen.Row(c)
		out := make([]byte, size)
		gf256.MulSliceAssign(row[0], data[0], out)
		for d := 1; d < rs.m; d++ {
			gf256.MulSlice(row[d], data[d], out)
		}
		shards[c] = out
	}
	return nil
}

// Verify recomputes the check shards and compares.
func (rs *ReedSolomon) Verify(shards [][]byte) (bool, error) {
	size, err := shardSize(shards, rs.n, rs.n)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for c := rs.m; c < rs.n; c++ {
		row := rs.gen.Row(c)
		gf256.MulSliceAssign(row[0], shards[0], buf)
		for d := 1; d < rs.m; d++ {
			gf256.MulSlice(row[d], shards[d], buf)
		}
		for i, b := range shards[c] {
			if buf[i] != b {
				return false, nil
			}
		}
	}
	return true, nil
}
