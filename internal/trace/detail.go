package trace

import "fmt"

// Detail parsers for the structured payloads some event kinds carry.
// The emitters in internal/core and internal/workload format these
// strings; cmd/farmstat and internal/forensics parse them back. Keeping
// both directions next to the Kind declarations stops the format and
// its consumers from drifting apart. Every parser returns ok=false on
// malformed input instead of partial values — a truncated or
// hand-edited trace line degrades to "no detail", never to garbage.

// ParseDegradedReads unpacks a degraded-reads Detail
// ("n=%d mean=%.3f max=%.3f", latencies in milliseconds).
func ParseDegradedReads(detail string) (n int, meanMs, maxMs float64, ok bool) {
	if _, err := fmt.Sscanf(detail, "n=%d mean=%g max=%g", &n, &meanMs, &maxMs); err != nil {
		return 0, 0, 0, false
	}
	return n, meanMs, maxMs, true
}

// ParseDemandBurst unpacks a demand-burst Detail
// ("hours=%.2f amp=%.3f": episode length and amplitude multiplier).
func ParseDemandBurst(detail string) (hours, amp float64, ok bool) {
	if _, err := fmt.Sscanf(detail, "hours=%g amp=%g", &hours, &amp); err != nil {
		return 0, 0, false
	}
	return hours, amp, true
}

// ParseThrottleStep unpacks a throttle-step Detail
// ("mbps=%.2f share=%.3f": the new per-disk recovery rate and the
// foreground share that drove the step).
func ParseThrottleStep(detail string) (mbps, share float64, ok bool) {
	if _, err := fmt.Sscanf(detail, "mbps=%g share=%g", &mbps, &share); err != nil {
		return 0, 0, false
	}
	return mbps, share, true
}

// ParseGroups unpacks a data-loss Detail ("groups=%d": how many groups
// crossed into loss at this instant).
func ParseGroups(detail string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(detail, "groups=%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// ParseFactor unpacks a failslow-onset Detail ("factor=%g": the
// service-time multiplier of the degraded drive).
func ParseFactor(detail string) (float64, bool) {
	var f float64
	if _, err := fmt.Sscanf(detail, "factor=%g", &f); err != nil {
		return 0, false
	}
	return f, true
}

// ParseKills unpacks a burst Detail ("kills=%d": drives struck by the
// correlated burst).
func ParseKills(detail string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(detail, "kills=%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// ParseBlocks unpacks a disk-fail Detail ("blocks=%d": resident blocks
// lost with the drive).
func ParseBlocks(detail string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(detail, "blocks=%d", &n); err != nil {
		return 0, false
	}
	return n, true
}
