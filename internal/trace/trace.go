// Package trace records the event stream of a simulation run — failures,
// detections, rebuilds, losses, warnings, batches — for inspection and
// replay. cmd/farmtrace dumps a run's trace as JSON lines; tests use the
// recorder to assert event ordering properties (a detection never precedes
// its failure, a rebuild never precedes its detection, ...).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind labels an event.
type Kind string

// Event kinds emitted by the simulator. Kinds whose ordering is part of
// the trace contract appear in CheckCausality below; pure markers with
// no ordering semantics carry //farm:nocausality with the reason
// (farmlint's kindflow analyzer enforces that every kind does one or
// the other, and that every kind is emitted somewhere).
const (
	KindDiskFail   Kind = "disk-fail"   // a drive died
	KindDetect     Kind = "detect"      // the death was noticed
	KindRebuilt    Kind = "rebuilt"     // one block reconstruction completed
	KindDropped    Kind = "dropped"     //farm:nocausality a rebuild was abandoned; abandonment may follow any rung of the retry ladder, not one fixed predecessor
	KindDataLoss   Kind = "data-loss"   //farm:nocausality group(s) crossed into data loss; losses from bursts or false-dead write-offs need no prior detection
	KindSmartWarn  Kind = "smart-warn"  //farm:nocausality the health monitor fires from its own draw, not from a prior event
	KindDrained    Kind = "drained"     //farm:nocausality a drain completes from warn, plan, or eviction paths; no single required predecessor
	KindBatchAdded Kind = "batch-added" //farm:nocausality replacement batches trigger on cumulative failure counts, a threshold not visible per event

	// Fault-injection kinds (internal/faults).
	KindLSE         Kind = "lse"          // a latent sector error arrived (undiscovered)
	KindLSEDetect   Kind = "lse-detect"   // a rebuild read discovered a latent error
	KindScrub       Kind = "scrub"        //farm:nocausality scrub passes run on a fixed period independent of other events
	KindScrubRepair Kind = "scrub-repair" // the scrubber queued a damaged replica for repair
	KindBurst       Kind = "burst"        //farm:nocausality correlated bursts arrive from their own Poisson process; no predecessor
	KindRetry       Kind = "retry"        //farm:nocausality transient read faults can hit the very first transfer of a rebuild
	KindSpareQueued Kind = "spare-queued" //farm:nocausality queueing is a pool-capacity marker; exhaustion depends on counts, not one event

	// Fail-slow / straggler-mitigation kinds (gray failures and the
	// hedging layer in internal/recovery).
	KindFailSlowOnset   Kind = "failslow-onset"   // a drive degraded (Detail: factor)
	KindFailSlowRecover Kind = "failslow-recover" // a degraded drive recovered
	KindFailSlowDetect  Kind = "failslow-detect"  //farm:nocausality the peer-comparison detector scores observed service times, which lag onsets arbitrarily and survive recoveries
	KindHedge           Kind = "hedge"            // a duplicate transfer was launched
	KindHedgeWin        Kind = "hedge-win"        // the duplicate finished before the primary
	KindEvictSlow       Kind = "evict-slow"       //farm:nocausality eviction needs consecutive slow scores, a detector-internal streak not visible in the trace
	KindRebuildTimeout  Kind = "rebuild-timeout"  //farm:nocausality timeouts fire against expected duration; the rebuild's queue event predates the recorder when spans are off
	KindSlowBurst       Kind = "slow-burst"       //farm:nocausality correlated slow-bursts arrive from their own Poisson process; no predecessor

	// Span-lifecycle kinds, emitted only when the flight recorder's
	// rebuild-lifecycle spans are enabled — transcripts recorded without
	// the obs stack stay byte-identical.
	KindRebuildQueued Kind = "rebuild-queued" //farm:nocausality span marker, present only when span recording is on; rebuilds elsewhere in the trace have no queued event to order against
	KindTransferStart Kind = "transfer-start" //farm:nocausality span marker, present only when span recording is on (see rebuild-queued)

	// Network fault-domain kinds (internal/topology + internal/faults).
	// Rack-scoped events carry the rack in Event.Rack.
	KindSwitchFail        Kind = "switch-fail"        //farm:nocausality ToR switch deaths arrive from their own failure process; no predecessor
	KindRackUnreachable   Kind = "rack-unreachable"   // a rack went dark (Detail: cause)
	KindPartitionHeal     Kind = "partition-heal"     // a dark rack became reachable again
	KindResourceCrossRack Kind = "resource-crossrack" //farm:nocausality re-sourcing reacts to source-rack state at transfer time, not to one prior trace event
	KindFalseDead         Kind = "false-dead"         // a dark rack's disks were declared lost

	// Living-fleet kinds (foreground traffic, recovery QoS, and planned
	// maintenance in internal/workload + internal/core).
	KindDemandBurst   Kind = "demand-burst"   //farm:nocausality foreground bursts arrive from the workload's own stream; no predecessor
	KindDegradedReads Kind = "degraded-reads" // a closed window's degraded reads (Detail: n, mean/max ms)
	KindThrottle      Kind = "throttle-step"  //farm:nocausality QoS steps track utilization thresholds, which move with load as well as events
	KindDrainPlanned  Kind = "drain-planned"  //farm:nocausality operator-scheduled; planned work has no in-trace cause
	KindUpgradeBegin  Kind = "upgrade-begin"  // a rack's rolling-upgrade window opened (read-only)
	KindUpgradeEnd    Kind = "upgrade-end"    // the upgrade window closed (writes unfenced)
	KindGrowth        Kind = "growth-batch"   //farm:nocausality operator-scheduled; planned work has no in-trace cause

	// Forensic park/resume kinds: a rebuild's stalled intervals, emitted
	// so postmortems can attribute window time spent waiting on dark
	// racks or write fences.
	KindRebuildParked  Kind = "rebuild-parked"  // a rebuild stalled against a dark rack or write fence
	KindRebuildResumed Kind = "rebuild-resumed" // a parked rebuild was resubmitted
)

// Event is one timestamped simulator occurrence. Times are simulation
// hours.
type Event struct {
	Time   float64 `json:"t"`
	Kind   Kind    `json:"kind"`
	Disk   int     `json:"disk,omitempty"`
	Group  int     `json:"group,omitempty"`
	Rep    int     `json:"rep,omitempty"`
	Rack   int     `json:"rack,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Recorder buffers events in arrival order. Not safe for concurrent use —
// a simulation run is single-threaded, and each run gets its own Recorder.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event.
func (r *Recorder) Record(e Event) { r.events = append(r.events, e) }

// Events returns the recorded stream (caller must not mutate).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL writes one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a stream written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// clusterWide lists the kinds whose Disk field carries no drive
// identity (cluster-scope events; their payload lives in Detail).
// Every other kind's Disk names a real drive — the failed, detected,
// warned, degraded, or rebuilt-onto disk — except when negative (the
// emitter had no disk in hand).
var clusterWide = map[Kind]bool{
	KindScrub:      true,
	KindBurst:      true,
	KindSlowBurst:  true,
	KindBatchAdded: true,
	// Rack-scoped network events: identity lives in Rack, not Disk
	// (resource-crossrack keeps a real disk — the new source).
	KindSwitchFail:      true,
	KindRackUnreachable: true,
	KindPartitionHeal:   true,
	KindFalseDead:       true,
	// Living-fleet cluster-scope events: demand episodes, throttle steps,
	// and growth batches have no drive identity; upgrade windows are
	// rack-scoped like the network events (degraded-reads and
	// drain-planned keep a real disk — the read source / drained drive).
	KindDemandBurst:  true,
	KindThrottle:     true,
	KindUpgradeBegin: true,
	KindUpgradeEnd:   true,
	KindGrowth:       true,
}

// Summary aggregates an event stream.
type Summary struct {
	Counts map[Kind]int
	// FirstAt/LastAt record the first and last occurrence time of each
	// kind present in the stream.
	FirstAt map[Kind]float64
	LastAt  map[Kind]float64
	// FirstLossAt is the time of the first data-loss event (-1 if none).
	FirstLossAt float64
	LastEventAt float64
	// DistinctDisks counts the distinct drives named by any disk-bearing
	// event — failures, detections, warnings, LSEs, degradations, and
	// rebuild targets alike — not just drives that died.
	DistinctDisks int
}

// Summarize computes a Summary.
func Summarize(events []Event) Summary {
	s := Summary{
		Counts:      make(map[Kind]int),
		FirstAt:     make(map[Kind]float64),
		LastAt:      make(map[Kind]float64),
		FirstLossAt: -1,
	}
	disks := map[int]bool{}
	for _, e := range events {
		if s.Counts[e.Kind] == 0 {
			s.FirstAt[e.Kind] = e.Time
		}
		s.Counts[e.Kind]++
		s.LastAt[e.Kind] = e.Time
		if e.Kind == KindDataLoss && s.FirstLossAt < 0 {
			s.FirstLossAt = e.Time
		}
		if e.Time > s.LastEventAt {
			s.LastEventAt = e.Time
		}
		if !clusterWide[e.Kind] && e.Disk >= 0 {
			disks[e.Disk] = true
		}
	}
	s.DistinctDisks = len(disks)
	return s
}

// WriteSummary prints a human-readable digest: one line per kind with
// its count and first/last occurrence, then the loss verdict.
func (s Summary) WriteSummary(w io.Writer) error {
	kinds := make([]string, 0, len(s.Counts))
	for k := range s.Counts { //farm:orderinvariant keys are sorted on the next line before any output
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "%-16s %7d   first %10.1f h   last %10.1f h\n",
			k, s.Counts[Kind(k)], s.FirstAt[Kind(k)], s.LastAt[Kind(k)]); err != nil {
			return err
		}
	}
	if s.FirstLossAt >= 0 {
		fmt.Fprintf(w, "first data loss at %.1f h (%.2f years)\n",
			s.FirstLossAt, s.FirstLossAt/8760)
	} else {
		fmt.Fprintln(w, "no data loss")
	}
	_, err := fmt.Fprintf(w, "distinct disks seen: %d, last event at %.1f h\n",
		s.DistinctDisks, s.LastEventAt)
	return err
}

// CheckCausality verifies ordering invariants of a simulator trace:
//
//   - events are time-sorted;
//   - each disk's detection follows its failure;
//   - no block rebuild completes before some repair trigger (a
//     detection, a discovered latent error, or a scrub repair) has
//     appeared — rebuilds are always *re*actions;
//   - a hedge win follows a hedge launch for the same (group, rep);
//   - a discovered latent error (lse-detect) follows the arrival of a
//     latent error on the same (disk, group);
//   - a fail-slow recovery follows a fail-slow onset on the same disk
//     (an episode must begin before it can end);
//   - a partition heal follows a rack-unreachable on the same rack
//     (racks only heal out of an outage);
//   - a false-dead declaration follows a rack-unreachable on the same
//     rack no earlier than the configured timeout after it (the policy
//     never fences a reachable or freshly-dark rack);
//   - degraded reads are sampled only when a window of vulnerability
//     closes, so like rebuilds they require a prior repair trigger;
//   - an upgrade-end follows an upgrade-begin on the same rack (windows
//     only close after they open);
//   - a rebuild-parked follows some rack darkening or upgrade fence
//     anywhere in the run (parks only exist against dark racks and
//     write fences; the predicate is sticky because a false-dead
//     write-off can redirect work into the still-dark rack at the very
//     timestamp that closes the outage);
//   - a rebuild-resumed follows a rebuild-parked on the same
//     (group, rep) (only parked work can resume).
//
// Returns the first violation found.
func CheckCausality(events []Event) error {
	type gr struct{ g, r int }
	type dg struct{ d, g int }
	last := -1.0
	failedAt := map[int]float64{}
	hedged := map[gr]bool{}
	latent := map[dg]bool{}
	darkAt := map[int]float64{}
	slow := map[int]bool{}
	upgrading := map[int]bool{}
	parked := map[gr]bool{}
	triggerSeen := false
	fenceSeen := false
	for i, e := range events {
		if e.Time < last {
			return fmt.Errorf("trace: event %d at %v precedes predecessor at %v", i, e.Time, last)
		}
		last = e.Time
		switch e.Kind {
		case KindDiskFail:
			failedAt[e.Disk] = e.Time
		case KindDetect:
			f, ok := failedAt[e.Disk]
			if !ok {
				return fmt.Errorf("trace: detect of disk %d without failure", e.Disk)
			}
			if e.Time < f {
				return fmt.Errorf("trace: detect of disk %d at %v precedes failure at %v", e.Disk, e.Time, f)
			}
			triggerSeen = true
		case KindLSE:
			latent[dg{e.Disk, e.Group}] = true
		case KindLSEDetect:
			if !latent[dg{e.Disk, e.Group}] {
				return fmt.Errorf("trace: lse-detect on disk %d group %d without a prior lse", e.Disk, e.Group)
			}
			triggerSeen = true
		case KindScrubRepair:
			if !latent[dg{e.Disk, e.Group}] {
				return fmt.Errorf("trace: scrub-repair on disk %d group %d without a prior lse", e.Disk, e.Group)
			}
			triggerSeen = true
		case KindRebuilt:
			if e.Time < 0 {
				return fmt.Errorf("trace: rebuild before start")
			}
			if !triggerSeen {
				return fmt.Errorf("trace: rebuilt of group %d rep %d before any detection", e.Group, e.Rep)
			}
		case KindHedge:
			hedged[gr{e.Group, e.Rep}] = true
		case KindHedgeWin:
			if !hedged[gr{e.Group, e.Rep}] {
				return fmt.Errorf("trace: hedge-win on group %d rep %d without a prior hedge", e.Group, e.Rep)
			}
		case KindFailSlowOnset:
			slow[e.Disk] = true
		case KindFailSlowRecover:
			if !slow[e.Disk] {
				return fmt.Errorf("trace: failslow-recover of disk %d without a prior failslow-onset", e.Disk)
			}
			delete(slow, e.Disk)
		case KindRackUnreachable:
			darkAt[e.Rack] = e.Time
			fenceSeen = true
		case KindPartitionHeal:
			if _, dark := darkAt[e.Rack]; !dark {
				return fmt.Errorf("trace: partition-heal of rack %d without a prior rack-unreachable", e.Rack)
			}
			delete(darkAt, e.Rack)
		case KindFalseDead:
			at, dark := darkAt[e.Rack]
			if !dark {
				return fmt.Errorf("trace: false-dead of rack %d without a prior rack-unreachable", e.Rack)
			}
			if e.Time <= at {
				return fmt.Errorf("trace: false-dead of rack %d at %v not after unreachable at %v", e.Rack, e.Time, at)
			}
			delete(darkAt, e.Rack)
		case KindDegradedReads:
			if !triggerSeen {
				return fmt.Errorf("trace: degraded-reads on group %d before any repair trigger", e.Group)
			}
		case KindUpgradeBegin:
			upgrading[e.Rack] = true
			fenceSeen = true
		case KindUpgradeEnd:
			if !upgrading[e.Rack] {
				return fmt.Errorf("trace: upgrade-end of rack %d without a prior upgrade-begin", e.Rack)
			}
			delete(upgrading, e.Rack)
		case KindRebuildParked:
			if !fenceSeen {
				return fmt.Errorf("trace: rebuild-parked on group %d rep %d before any rack outage or write fence", e.Group, e.Rep)
			}
			parked[gr{e.Group, e.Rep}] = true
		case KindRebuildResumed:
			if !parked[gr{e.Group, e.Rep}] {
				return fmt.Errorf("trace: rebuild-resumed on group %d rep %d without a prior rebuild-parked", e.Group, e.Rep)
			}
			delete(parked, gr{e.Group, e.Rep})
		}
	}
	return nil
}
