// Package trace records the event stream of a simulation run — failures,
// detections, rebuilds, losses, warnings, batches — for inspection and
// replay. cmd/farmtrace dumps a run's trace as JSON lines; tests use the
// recorder to assert event ordering properties (a detection never precedes
// its failure, a rebuild never precedes its detection, ...).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind labels an event.
type Kind string

// Event kinds emitted by the simulator.
const (
	KindDiskFail   Kind = "disk-fail"   // a drive died
	KindDetect     Kind = "detect"      // the death was noticed
	KindRebuilt    Kind = "rebuilt"     // one block reconstruction completed
	KindDropped    Kind = "dropped"     // a rebuild was abandoned (group lost)
	KindDataLoss   Kind = "data-loss"   // group(s) crossed into data loss
	KindSmartWarn  Kind = "smart-warn"  // a health monitor flagged a drive
	KindDrained    Kind = "drained"     // a suspect drive was fully drained
	KindBatchAdded Kind = "batch-added" // a replacement batch arrived

	// Fault-injection kinds (internal/faults).
	KindLSE         Kind = "lse"          // a latent sector error arrived (undiscovered)
	KindLSEDetect   Kind = "lse-detect"   // a rebuild read discovered a latent error
	KindScrub       Kind = "scrub"        // a scrub pass ran (Detail: found=N)
	KindScrubRepair Kind = "scrub-repair" // the scrubber queued a damaged replica for repair
	KindBurst       Kind = "burst"        // a correlated failure burst fired (Detail: kills=N)
	KindRetry       Kind = "retry"        // a rebuild read faulted transiently and was retried
	KindSpareQueued Kind = "spare-queued" // recovery work queued for an exhausted spare pool

	// Fail-slow / straggler-mitigation kinds (gray failures and the
	// hedging layer in internal/recovery).
	KindFailSlowOnset   Kind = "failslow-onset"   // a drive degraded (Detail: factor)
	KindFailSlowRecover Kind = "failslow-recover" // a degraded drive recovered
	KindFailSlowDetect  Kind = "failslow-detect"  // the peer-comparison detector flagged a drive
	KindHedge           Kind = "hedge"            // a duplicate transfer was launched
	KindHedgeWin        Kind = "hedge-win"        // the duplicate finished before the primary
	KindEvictSlow       Kind = "evict-slow"       // the detector condemned a persistent straggler
	KindRebuildTimeout  Kind = "rebuild-timeout"  // a rebuild overstayed its timeout multiple
	KindSlowBurst       Kind = "slow-burst"       // a correlated slow-burst fired (Detail: hits=N)
)

// Event is one timestamped simulator occurrence. Times are simulation
// hours.
type Event struct {
	Time   float64 `json:"t"`
	Kind   Kind    `json:"kind"`
	Disk   int     `json:"disk,omitempty"`
	Group  int     `json:"group,omitempty"`
	Rep    int     `json:"rep,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Recorder buffers events in arrival order. Not safe for concurrent use —
// a simulation run is single-threaded, and each run gets its own Recorder.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event.
func (r *Recorder) Record(e Event) { r.events = append(r.events, e) }

// Events returns the recorded stream (caller must not mutate).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL writes one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a stream written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Summary aggregates an event stream.
type Summary struct {
	Counts        map[Kind]int
	FirstLossAt   float64 // -1 if no loss
	LastEventAt   float64
	DistinctDisks int
}

// Summarize computes a Summary.
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[Kind]int), FirstLossAt: -1}
	disks := map[int]bool{}
	for _, e := range events {
		s.Counts[e.Kind]++
		if e.Kind == KindDataLoss && s.FirstLossAt < 0 {
			s.FirstLossAt = e.Time
		}
		if e.Time > s.LastEventAt {
			s.LastEventAt = e.Time
		}
		if e.Kind == KindDiskFail {
			disks[e.Disk] = true
		}
	}
	s.DistinctDisks = len(disks)
	return s
}

// WriteSummary prints a human-readable digest.
func (s Summary) WriteSummary(w io.Writer) error {
	kinds := make([]string, 0, len(s.Counts))
	for k := range s.Counts { //farm:orderinvariant keys are sorted on the next line before any output
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "%-12s %d\n", k, s.Counts[Kind(k)]); err != nil {
			return err
		}
	}
	if s.FirstLossAt >= 0 {
		fmt.Fprintf(w, "first data loss at %.1f h (%.2f years)\n",
			s.FirstLossAt, s.FirstLossAt/8760)
	} else {
		fmt.Fprintln(w, "no data loss")
	}
	_, err := fmt.Fprintf(w, "last event at %.1f h\n", s.LastEventAt)
	return err
}

// CheckCausality verifies ordering invariants of a simulator trace:
// events are time-sorted, each disk's detect follows its failure, and no
// rebuild completes before the simulation starts. Returns the first
// violation found.
func CheckCausality(events []Event) error {
	last := -1.0
	failedAt := map[int]float64{}
	for i, e := range events {
		if e.Time < last {
			return fmt.Errorf("trace: event %d at %v precedes predecessor at %v", i, e.Time, last)
		}
		last = e.Time
		switch e.Kind {
		case KindDiskFail:
			failedAt[e.Disk] = e.Time
		case KindDetect:
			f, ok := failedAt[e.Disk]
			if !ok {
				return fmt.Errorf("trace: detect of disk %d without failure", e.Disk)
			}
			if e.Time < f {
				return fmt.Errorf("trace: detect of disk %d at %v precedes failure at %v", e.Disk, e.Time, f)
			}
		case KindRebuilt:
			if e.Time < 0 {
				return fmt.Errorf("trace: rebuild before start")
			}
		}
	}
	return nil
}
