package trace

import "testing"

// TestDetailParsersRoundTrip: each parser accepts the exact format its
// emitter produces (including %g-printed floats) and rejects malformed,
// truncated, or empty details with ok=false and zero values.
func TestDetailParsersRoundTrip(t *testing.T) {
	if n, mean, max, ok := ParseDegradedReads("n=42 mean=3.125 max=97.500"); !ok || n != 42 || mean != 3.125 || max != 97.5 {
		t.Errorf("ParseDegradedReads: n=%d mean=%g max=%g ok=%v", n, mean, max, ok)
	}
	if h, a, ok := ParseDemandBurst("hours=6.50 amp=2.250"); !ok || h != 6.5 || a != 2.25 {
		t.Errorf("ParseDemandBurst: hours=%g amp=%g ok=%v", h, a, ok)
	}
	if m, s, ok := ParseThrottleStep("mbps=12.00 share=0.750"); !ok || m != 12 || s != 0.75 {
		t.Errorf("ParseThrottleStep: mbps=%g share=%g ok=%v", m, s, ok)
	}
	if n, ok := ParseGroups("groups=3"); !ok || n != 3 {
		t.Errorf("ParseGroups: n=%d ok=%v", n, ok)
	}
	if f, ok := ParseFactor("factor=4.5"); !ok || f != 4.5 {
		t.Errorf("ParseFactor: f=%g ok=%v", f, ok)
	}
	if n, ok := ParseKills("kills=12"); !ok || n != 12 {
		t.Errorf("ParseKills: n=%d ok=%v", n, ok)
	}
	if n, ok := ParseBlocks("blocks=250"); !ok || n != 250 {
		t.Errorf("ParseBlocks: n=%d ok=%v", n, ok)
	}
}

// TestDetailParsersMalformed: every parser refuses garbage rather than
// returning partially filled values.
func TestDetailParsersMalformed(t *testing.T) {
	bad := []string{
		"",
		"nonsense",
		"n=",
		"n=x mean=1 max=2",
		"mean=1 max=2",        // missing leading field
		"hours=1.0",           // truncated: amp missing
		"amp=2 hours=1",       // fields swapped
		"mbps=ten share=0.5",  // non-numeric
		"groups=",             // empty value
		"factor=",             // empty value
		"factor=fast",         // non-numeric
		"share=0.5 mbps=12.0", // fields swapped
	}
	for _, d := range bad {
		if n, mean, max, ok := ParseDegradedReads(d); ok {
			t.Errorf("ParseDegradedReads(%q) accepted: n=%d mean=%g max=%g", d, n, mean, max)
		}
		if h, a, ok := ParseDemandBurst(d); ok {
			t.Errorf("ParseDemandBurst(%q) accepted: hours=%g amp=%g", d, h, a)
		}
		if m, s, ok := ParseThrottleStep(d); ok {
			t.Errorf("ParseThrottleStep(%q) accepted: mbps=%g share=%g", d, m, s)
		}
		if n, ok := ParseGroups(d); ok {
			t.Errorf("ParseGroups(%q) accepted: n=%d", d, n)
		}
		if f, ok := ParseFactor(d); ok {
			t.Errorf("ParseFactor(%q) accepted: f=%g", d, f)
		}
		if n, ok := ParseKills(d); ok {
			t.Errorf("ParseKills(%q) accepted: n=%d", d, n)
		}
		if n, ok := ParseBlocks(d); ok {
			t.Errorf("ParseBlocks(%q) accepted: n=%d", d, n)
		}
	}
}
