// Package trace_test lives outside the trace package so the integration
// test can import internal/core (which itself imports trace) without a
// cycle.
package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	. "repro/internal/trace"
)

func TestRecorderRoundTrip(t *testing.T) {
	rec := NewRecorder()
	events := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 3, Detail: "blocks=10"},
		{Time: 1.01, Kind: KindDetect, Disk: 3},
		{Time: 2, Kind: KindRebuilt, Group: 7, Rep: 1, Disk: 9},
	}
	for _, e := range events {
		rec.Record(e)
	}
	if rec.Len() != 3 {
		t.Fatalf("Len = %d", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d", len(back))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 2, Kind: KindDiskFail, Disk: 2},
		{Time: 3, Kind: KindDataLoss, Detail: "groups=2"},
		{Time: 4, Kind: KindRebuilt},
	}
	s := Summarize(events)
	if s.Counts[KindDiskFail] != 2 || s.Counts[KindRebuilt] != 1 {
		t.Fatalf("counts wrong: %+v", s.Counts)
	}
	if s.FirstLossAt != 3 || s.LastEventAt != 4 || s.DistinctDisks != 2 {
		t.Fatalf("summary wrong: %+v", s)
	}
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "first data loss at 3.0 h") {
		t.Fatalf("summary text wrong:\n%s", buf.String())
	}
}

func TestSummarizeNoLoss(t *testing.T) {
	s := Summarize([]Event{{Time: 1, Kind: KindDiskFail, Disk: 1}})
	if s.FirstLossAt != -1 {
		t.Fatal("FirstLossAt should be -1 with no loss")
	}
	var buf bytes.Buffer
	s.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "no data loss") {
		t.Fatal("summary should say no data loss")
	}
}

func TestCheckCausality(t *testing.T) {
	good := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 1.5, Kind: KindDetect, Disk: 1},
		{Time: 2, Kind: KindRebuilt},
	}
	if err := CheckCausality(good); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	unsorted := []Event{{Time: 2, Kind: KindDiskFail, Disk: 1}, {Time: 1, Kind: KindDetect, Disk: 1}}
	if err := CheckCausality(unsorted); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	orphan := []Event{{Time: 1, Kind: KindDetect, Disk: 5}}
	if err := CheckCausality(orphan); err == nil {
		t.Fatal("orphan detect accepted")
	}
}

func TestSimulatorTraceIsCausal(t *testing.T) {
	// Integration: a real run's trace passes the causality check and
	// contains the expected event kinds.
	cfg := core.DefaultConfig()
	cfg.TotalDataBytes = 10 * disk.TB
	cfg.SmartAccuracy = 0.5
	cfg.SmartLeadHours = 24
	rec := NewRecorder()
	cfg.Hook = rec.Record
	s, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCausality(rec.Events()); err != nil {
		t.Fatal(err)
	}
	sum := Summarize(rec.Events())
	if sum.Counts[KindDiskFail] != res.DiskFailures {
		t.Fatalf("trace has %d failures, result says %d",
			sum.Counts[KindDiskFail], res.DiskFailures)
	}
	if sum.Counts[KindRebuilt] != res.BlocksRebuilt {
		t.Fatalf("trace has %d rebuilds, result says %d",
			sum.Counts[KindRebuilt], res.BlocksRebuilt)
	}
	if res.PredictedFailures > 0 && sum.Counts[KindSmartWarn] == 0 {
		t.Fatal("predictions made but no warnings traced")
	}
}
