// Package trace_test lives outside the trace package so the integration
// test can import internal/core (which itself imports trace) without a
// cycle.
package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	. "repro/internal/trace"
)

func TestRecorderRoundTrip(t *testing.T) {
	rec := NewRecorder()
	events := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 3, Detail: "blocks=10"},
		{Time: 1.01, Kind: KindDetect, Disk: 3},
		{Time: 2, Kind: KindRebuilt, Group: 7, Rep: 1, Disk: 9},
	}
	for _, e := range events {
		rec.Record(e)
	}
	if rec.Len() != 3 {
		t.Fatalf("Len = %d", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d", len(back))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 2, Kind: KindDiskFail, Disk: 2},
		{Time: 3, Kind: KindDataLoss, Disk: 2, Detail: "groups=2"},
		{Time: 4, Kind: KindRebuilt, Disk: 7},         // rebuild targets count as disks
		{Time: 5, Kind: KindSmartWarn, Disk: 9},       // so do warned drives
		{Time: 6, Kind: KindScrub, Detail: "found=0"}, // cluster-wide: no disk identity
		{Time: 7, Kind: KindRebuildQueued, Disk: -1},  // negative disk: emitter had none
		{Time: 8, Kind: KindDiskFail, Disk: 1},        // duplicate: still one drive
	}
	s := Summarize(events)
	if s.Counts[KindDiskFail] != 3 || s.Counts[KindRebuilt] != 1 {
		t.Fatalf("counts wrong: %+v", s.Counts)
	}
	if s.FirstLossAt != 3 || s.LastEventAt != 8 {
		t.Fatalf("summary wrong: %+v", s)
	}
	// Distinct drives named anywhere: 1, 2, 7, 9 — scrub and the negative
	// disk contribute nothing.
	if s.DistinctDisks != 4 {
		t.Fatalf("DistinctDisks = %d, want 4", s.DistinctDisks)
	}
	if s.FirstAt[KindDiskFail] != 1 || s.LastAt[KindDiskFail] != 8 {
		t.Fatalf("disk-fail first/last = %v/%v, want 1/8",
			s.FirstAt[KindDiskFail], s.LastAt[KindDiskFail])
	}
	if s.FirstAt[KindRebuilt] != 4 || s.LastAt[KindRebuilt] != 4 {
		t.Fatalf("rebuilt first/last = %v/%v, want 4/4",
			s.FirstAt[KindRebuilt], s.LastAt[KindRebuilt])
	}
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "first data loss at 3.0 h") {
		t.Fatalf("summary text wrong:\n%s", out)
	}
	if !strings.Contains(out, "distinct disks seen: 4") {
		t.Fatalf("summary text missing disk count:\n%s", out)
	}
}

func TestSummarizeNoLoss(t *testing.T) {
	s := Summarize([]Event{{Time: 1, Kind: KindDiskFail, Disk: 1}})
	if s.FirstLossAt != -1 {
		t.Fatal("FirstLossAt should be -1 with no loss")
	}
	var buf bytes.Buffer
	s.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "no data loss") {
		t.Fatal("summary should say no data loss")
	}
}

func TestCheckCausality(t *testing.T) {
	good := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 1.5, Kind: KindDetect, Disk: 1},
		{Time: 2, Kind: KindRebuilt},
	}
	if err := CheckCausality(good); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	unsorted := []Event{{Time: 2, Kind: KindDiskFail, Disk: 1}, {Time: 1, Kind: KindDetect, Disk: 1}}
	if err := CheckCausality(unsorted); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	orphan := []Event{{Time: 1, Kind: KindDetect, Disk: 5}}
	if err := CheckCausality(orphan); err == nil {
		t.Fatal("orphan detect accepted")
	}
}

func TestCheckCausalityViolations(t *testing.T) {
	fail := Event{Time: 1, Kind: KindDiskFail, Disk: 1}
	detect := Event{Time: 1.5, Kind: KindDetect, Disk: 1}
	cases := []struct {
		name   string
		events []Event
	}{
		{"rebuilt before any detection", []Event{
			fail,
			{Time: 1.2, Kind: KindRebuilt, Group: 3, Rep: 0, Disk: 7},
		}},
		{"hedge-win without hedge", []Event{
			fail, detect,
			{Time: 2, Kind: KindHedgeWin, Group: 3, Rep: 0, Disk: 7},
		}},
		{"hedge-win for a different rebuild", []Event{
			fail, detect,
			{Time: 2, Kind: KindHedge, Group: 3, Rep: 1, Disk: 7},
			{Time: 3, Kind: KindHedgeWin, Group: 3, Rep: 0, Disk: 7},
		}},
		{"lse-detect without lse", []Event{
			fail, detect,
			{Time: 2, Kind: KindLSEDetect, Disk: 4, Group: 9, Rep: 1},
		}},
		{"scrub-repair without lse", []Event{
			{Time: 2, Kind: KindScrubRepair, Disk: 4, Group: 9, Rep: 1},
		}},
		{"partition-heal without rack-unreachable", []Event{
			{Time: 2, Kind: KindPartitionHeal, Rack: 3},
		}},
		{"partition-heal for a different rack", []Event{
			{Time: 2, Kind: KindRackUnreachable, Rack: 1},
			{Time: 3, Kind: KindPartitionHeal, Rack: 3},
		}},
		{"partition-heal after the outage already healed", []Event{
			{Time: 2, Kind: KindRackUnreachable, Rack: 1},
			{Time: 3, Kind: KindPartitionHeal, Rack: 1},
			{Time: 4, Kind: KindPartitionHeal, Rack: 1},
		}},
		{"false-dead without rack-unreachable", []Event{
			{Time: 2, Kind: KindFalseDead, Rack: 3},
		}},
		{"false-dead at the unreachable instant", []Event{
			{Time: 2, Kind: KindRackUnreachable, Rack: 3},
			{Time: 2, Kind: KindFalseDead, Rack: 3},
		}},
		{"false-dead after the partition healed", []Event{
			{Time: 2, Kind: KindRackUnreachable, Rack: 3},
			{Time: 3, Kind: KindPartitionHeal, Rack: 3},
			{Time: 4, Kind: KindFalseDead, Rack: 3},
		}},
		{"rebuild-parked before any outage or fence", []Event{
			fail, detect,
			{Time: 2, Kind: KindRebuildParked, Group: 3, Rep: 0, Disk: 7},
		}},
		{"rebuild-resumed without a park", []Event{
			fail, detect,
			{Time: 2, Kind: KindRackUnreachable, Rack: 1},
			{Time: 3, Kind: KindRebuildResumed, Group: 3, Rep: 0, Disk: 7},
		}},
		{"rebuild-resumed for a different rebuild", []Event{
			fail, detect,
			{Time: 2, Kind: KindRackUnreachable, Rack: 1},
			{Time: 2.5, Kind: KindRebuildParked, Group: 3, Rep: 1, Disk: 7},
			{Time: 3, Kind: KindRebuildResumed, Group: 3, Rep: 0, Disk: 7},
		}},
		{"rebuild-resumed twice for one park", []Event{
			fail, detect,
			{Time: 2, Kind: KindRackUnreachable, Rack: 1},
			{Time: 2.5, Kind: KindRebuildParked, Group: 3, Rep: 0, Disk: 7},
			{Time: 3, Kind: KindPartitionHeal, Rack: 1},
			{Time: 3, Kind: KindRebuildResumed, Group: 3, Rep: 0, Disk: 7},
			{Time: 4, Kind: KindRebuildResumed, Group: 3, Rep: 0, Disk: 7},
		}},
	}
	for _, tc := range cases {
		if err := CheckCausality(tc.events); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The legal orderings of the same kinds pass.
	good := []Event{
		fail, detect,
		{Time: 2, Kind: KindLSE, Disk: 4, Group: 9, Rep: 1},
		{Time: 2.5, Kind: KindRebuilt, Group: 3, Rep: 0, Disk: 7},
		{Time: 3, Kind: KindLSEDetect, Disk: 4, Group: 9, Rep: 1},
		{Time: 3.5, Kind: KindHedge, Group: 3, Rep: 0, Disk: 8},
		{Time: 4, Kind: KindHedgeWin, Group: 3, Rep: 0, Disk: 8},
		{Time: 5, Kind: KindSwitchFail, Rack: 2},
		{Time: 5, Kind: KindRackUnreachable, Rack: 2, Detail: "switch-fail"},
		{Time: 6, Kind: KindRackUnreachable, Rack: 4, Detail: "partition"},
		{Time: 7, Kind: KindPartitionHeal, Rack: 4},
		{Time: 29, Kind: KindFalseDead, Rack: 2},
		// A rack may go dark again after healing or fencing.
		{Time: 30, Kind: KindRackUnreachable, Rack: 4, Detail: "power"},
		{Time: 31, Kind: KindPartitionHeal, Rack: 4},
	}
	if err := CheckCausality(good); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}
}

// TestCheckCausalityForensicChains: the chains the forensics layer
// reconstructs postmortems from are causally legal end to end —
// a false-dead write-off after the rack darkened, and a parked rebuild
// resuming after the partition heals (including the re-park of the same
// rebuild against a second outage, and a park triggered at the fence of
// a rolling upgrade rather than a dark rack).
func TestCheckCausalityForensicChains(t *testing.T) {
	falseDead := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 1.5, Kind: KindDetect, Disk: 1},
		{Time: 2, Kind: KindSwitchFail, Rack: 2},
		{Time: 2, Kind: KindRackUnreachable, Rack: 2, Detail: "switch-fail"},
		{Time: 3, Kind: KindRebuildParked, Group: 5, Rep: 1, Disk: 9},
		{Time: 26, Kind: KindFalseDead, Rack: 2},
		{Time: 26, Kind: KindDiskFail, Disk: 40, Rack: 2},
		{Time: 26, Kind: KindDataLoss, Disk: 40, Detail: "groups=1"},
		// The write-off reopens the survivors: the park resumes at the
		// same instant the rack is marked reachable again.
		{Time: 26, Kind: KindRebuildResumed, Group: 5, Rep: 1, Disk: 9},
	}
	if err := CheckCausality(falseDead); err != nil {
		t.Fatalf("false-dead write-off chain rejected: %v", err)
	}
	parkResume := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 1.5, Kind: KindDetect, Disk: 1},
		{Time: 2, Kind: KindRackUnreachable, Rack: 3, Detail: "partition"},
		{Time: 2.1, Kind: KindRebuildParked, Group: 7, Rep: 0, Disk: 11},
		{Time: 14, Kind: KindPartitionHeal, Rack: 3},
		{Time: 14, Kind: KindRebuildResumed, Group: 7, Rep: 0, Disk: 11},
		// The same rebuild may park again against a later outage.
		{Time: 20, Kind: KindRackUnreachable, Rack: 3, Detail: "power"},
		{Time: 20.5, Kind: KindRebuildParked, Group: 7, Rep: 0, Disk: 11},
		{Time: 30, Kind: KindPartitionHeal, Rack: 3},
		{Time: 30, Kind: KindRebuildResumed, Group: 7, Rep: 0, Disk: 11},
		{Time: 31, Kind: KindRebuilt, Group: 7, Rep: 0, Disk: 11},
	}
	if err := CheckCausality(parkResume); err != nil {
		t.Fatalf("park/resume chain rejected: %v", err)
	}
	fencePark := []Event{
		{Time: 1, Kind: KindDiskFail, Disk: 1},
		{Time: 1.5, Kind: KindDetect, Disk: 1},
		{Time: 2, Kind: KindUpgradeBegin, Rack: 4, Detail: "hours=6.00"},
		{Time: 2.2, Kind: KindRebuildParked, Group: 9, Rep: 2, Disk: 13},
		{Time: 8, Kind: KindUpgradeEnd, Rack: 4},
		{Time: 8, Kind: KindRebuildResumed, Group: 9, Rep: 2, Disk: 13},
	}
	if err := CheckCausality(fencePark); err != nil {
		t.Fatalf("write-fence park chain rejected: %v", err)
	}
}

func TestSimulatorTraceIsCausal(t *testing.T) {
	// Integration: a real run's trace passes the causality check and
	// contains the expected event kinds.
	cfg := core.DefaultConfig()
	cfg.TotalDataBytes = 10 * disk.TB
	cfg.SmartAccuracy = 0.5
	cfg.SmartLeadHours = 24
	rec := NewRecorder()
	cfg.Hook = rec.Record
	s, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCausality(rec.Events()); err != nil {
		t.Fatal(err)
	}
	sum := Summarize(rec.Events())
	if sum.Counts[KindDiskFail] != res.DiskFailures {
		t.Fatalf("trace has %d failures, result says %d",
			sum.Counts[KindDiskFail], res.DiskFailures)
	}
	if sum.Counts[KindRebuilt] != res.BlocksRebuilt {
		t.Fatalf("trace has %d rebuilds, result says %d",
			sum.Counts[KindRebuilt], res.BlocksRebuilt)
	}
	if res.PredictedFailures > 0 && sum.Counts[KindSmartWarn] == 0 {
		t.Fatal("predictions made but no warnings traced")
	}
}
