package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Counter is a monotone event counter. The zero value is ready to use
// once obtained from a Registry.
type Counter struct {
	v uint64
}

// Inc adds one.
//
//farm:hotpath registry record path, gated by TestRegistryRecordZeroAlloc
func (c *Counter) Inc() { c.v++ }

// Add adds n.
//
//farm:hotpath registry record path, gated by TestRegistryRecordZeroAlloc
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a last-value instrument for sampled system state.
type Gauge struct {
	v float64
}

// Set overwrites the gauge.
//
//farm:hotpath registry record path, gated by TestRegistryRecordZeroAlloc
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by d.
//
//farm:hotpath registry record path, gated by TestRegistryRecordZeroAlloc
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket histogram: counts per bucket, plus total
// count and sum. Bucket i counts observations v <= bounds[i]; an
// implicit +Inf bucket catches the rest. Buckets are fixed at
// registration, so the record path is a branchless binary search over a
// preallocated array — no allocation, ever.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	count  uint64
	sum    float64
}

// Observe bins one observation. NaN observations are dropped: they
// would poison the running sum, and a NaN phase duration is a simulator
// bug the validation layer catches, not a value worth binning.
//
//farm:hotpath registry record path, gated by TestRegistryRecordZeroAlloc
func (h *Histogram) Observe(v float64) {
	if v != v { // NaN
		return
	}
	h.count++
	h.sum += v
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (caller must not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket counts, the last entry being the
// +Inf bucket (caller must not mutate).
func (h *Histogram) BucketCounts() []uint64 { return h.counts }

// Registry is a deterministic metrics registry. Registration (Counter,
// Gauge, Histogram) happens at run setup and may allocate; the handles it
// returns record with zero allocation. A Registry is not safe for
// concurrent use — a simulation run is single-threaded, and each Monte
// Carlo run gets its own Registry, merged in run-index order afterwards.
type Registry struct {
	counters map[Name]*Counter
	gauges   map[Name]*Gauge
	hists    map[Name]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Name]*Counter),
		gauges:   make(map[Name]*Gauge),
		hists:    make(map[Name]*Histogram),
	}
}

// checkName panics on a malformed metric name. Registration is setup
// code, so failing loudly beats silently exporting an off-vocabulary
// name; the farmlint metricname analyzer enforces the same contract
// statically on the constant declarations.
func checkName(n Name) {
	if n == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(n); i++ {
		c := n[i]
		if c != '_' && (c < 'a' || c > 'z') {
			panic(fmt.Sprintf("obs: metric name %q is not snake_case [a-z_]+", string(n)))
		}
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(n Name) *Counter {
	if c, ok := r.counters[n]; ok {
		return c
	}
	checkName(n)
	c := &Counter{}
	r.counters[n] = c
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(n Name) *Gauge {
	if g, ok := r.gauges[n]; ok {
		return g
	}
	checkName(n)
	g := &Gauge{}
	r.gauges[n] = g
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket upper bounds (strictly increasing) on first use. Re-registering
// with different bounds panics: bucket layouts must agree for merging.
func (r *Registry) Histogram(n Name, bounds []float64) *Histogram {
	if h, ok := r.hists[n]; ok {
		if !sameBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", string(n)))
		}
		return h
	}
	checkName(n)
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", string(n)))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[n] = h
	return h
}

// ErrMergeMismatch reports a histogram bucket-layout mismatch on merge.
var ErrMergeMismatch = errors.New("obs: histogram bucket layouts differ")

// Merge folds another registry into this one: counters and histogram
// buckets add, gauges add (a merged gauge is the level summed across
// runs — "active rebuilds across the campaign"). Addition is commutative
// and exact for the integer instruments; for byte-identical float sums,
// merge in run-index order (the Monte Carlo driver does).
func (r *Registry) Merge(o *Registry) error {
	// Merging walks the source maps in sorted-name order so the float
	// folds below (gauge adds, histogram sums) see a deterministic
	// sequence even within one source registry.
	for _, n := range sortedNames(o.counters) {
		r.Counter(n).Add(o.counters[n].v)
	}
	for _, n := range sortedNames(o.gauges) {
		r.Gauge(n).Add(o.gauges[n].v)
	}
	for _, n := range sortedNames(o.hists) {
		oh := o.hists[n]
		h, ok := r.hists[n]
		if !ok {
			h = r.Histogram(n, oh.bounds)
		}
		if !sameBounds(h.bounds, oh.bounds) {
			return fmt.Errorf("%w: %s", ErrMergeMismatch, string(n))
		}
		for i := range oh.counts {
			h.counts[i] += oh.counts[i]
		}
		h.count += oh.count
		h.sum += oh.sum
	}
	return nil
}

// sameBounds reports whether two bucket layouts are identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedNames returns the map's keys in sorted order — the registry's
// deterministic iteration idiom.
func sortedNames[V any](m map[Name]V) []Name {
	out := make([]Name, 0, len(m))
	for n := range m { //farm:orderinvariant keys are sorted on the next line before any use
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteJSONL writes one JSON object per metric, sorted by name:
//
//	{"name":"blocks_rebuilt_total","type":"counter","value":17}
//	{"name":"rebuild_window_hours","type":"histogram","count":9,"sum":1.25,"bounds":[...],"counts":[...]}
func (r *Registry) WriteJSONL(w io.Writer) error {
	for _, n := range sortedNames(r.counters) {
		if _, err := fmt.Fprintf(w, "{\"name\":%q,\"type\":\"counter\",\"value\":%d}\n",
			string(n), r.counters[n].v); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(r.gauges) {
		if _, err := fmt.Fprintf(w, "{\"name\":%q,\"type\":\"gauge\",\"value\":%s}\n",
			string(n), jsonFloat(r.gauges[n].v)); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(r.hists) {
		h := r.hists[n]
		if _, err := fmt.Fprintf(w, "{\"name\":%q,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"bounds\":%s,\"counts\":%s}\n",
			string(n), h.count, jsonFloat(h.sum), jsonFloats(h.bounds), jsonUints(h.counts)); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4), metrics sorted by name. Histograms follow the
// cumulative-bucket convention with `le` labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, n := range sortedNames(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			string(n), string(n), r.counters[n].v); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			string(n), string(n), promFloat(r.gauges[n].v)); err != nil {
			return err
		}
	}
	for _, n := range sortedNames(r.hists) {
		h := r.hists[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", string(n)); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				string(n), promFloat(b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			string(n), h.count, string(n), promFloat(h.sum), string(n), h.count); err != nil {
			return err
		}
	}
	return nil
}

// jsonFloat renders a float as JSON (NaN/Inf become null — JSON has no
// spelling for them, and a poisoned gauge should be visible, not a
// parse error downstream).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFloat renders a float for Prometheus text format.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func jsonFloats(vs []float64) string {
	out := make([]byte, 0, 2+8*len(vs))
	out = append(out, '[')
	for i, v := range vs {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, jsonFloat(v)...)
	}
	return string(append(out, ']'))
}

func jsonUints(vs []uint64) string {
	out := make([]byte, 0, 2+4*len(vs))
	out = append(out, '[')
	for i, v := range vs {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendUint(out, v, 10)
	}
	return string(append(out, ']'))
}
