// Package obs is the simulator's flight recorder: a deterministic,
// allocation-free observability layer threaded through core, recovery,
// faults, and objstore.
//
// It provides four instruments, all strictly read-only with respect to
// the simulation — enabling any of them leaves RunResult and the trace
// transcript byte-identical for the same seed (pinned by the golden
// byte-identity test in internal/core):
//
//   - a metrics Registry of named counters, gauges, and fixed-bucket
//     histograms with zero-alloc record paths (gated by AllocsPerRun
//     tests) and JSONL / Prometheus-text exposition;
//   - rebuild-lifecycle Spans: every block rebuild tracked from
//     disk-fail → detect → queued → transfer-start → done/dropped with a
//     per-phase sim-time breakdown (queue wait, transfer, retry backoff,
//     hedge overlap);
//   - a time-series Series of periodic system-state Samples (active
//     rebuilds, in-flight recovery bandwidth, degraded groups by
//     redundancy remaining, spare-pool level, slow/suspect disks);
//   - a Campaign aggregating live Monte Carlo telemetry (progress, ETA,
//     per-worker throughput, merged registries) behind an optional HTTP
//     endpoint with Prometheus text and net/http/pprof.
//
// Determinism contract: metric registration happens at run setup (may
// allocate); the record paths (Counter.Inc/Add, Gauge.Set, Histogram
// .Observe) never allocate and never consult wall clocks or randomness.
// Registries from a Monte Carlo campaign merge in run-index order, so the
// merged registry is byte-identical regardless of worker count.
package obs

// Name is a metric identifier. The farmlint metricname analyzer enforces
// the vocabulary contract: Name constants are unique snake_case
// ([a-z_]+) strings declared only in this package, so exposition
// consumers (farmstat, Prometheus scrapes) see a closed, collision-free
// catalogue.
type Name string

// Metric catalogue — counters. The *_total suffix follows Prometheus
// convention for monotone counters.
const (
	// Simulator-level event counters (internal/core).
	MetricDiskFailures     Name = "disk_failures_total"
	MetricDataLossGroups   Name = "data_loss_groups_total"
	MetricBatchesAdded     Name = "batches_added_total"
	MetricDisksAdded       Name = "disks_added_total"
	MetricPredicted        Name = "predicted_failures_total"
	MetricDrainedBlocks    Name = "drained_blocks_total"
	MetricLSEInjected      Name = "lse_injected_total"
	MetricLSEDetected      Name = "lse_detected_total"
	MetricScrubFound       Name = "scrub_found_total"
	MetricBursts           Name = "bursts_total"
	MetricBurstKills       Name = "burst_kills_total"
	MetricFailSlowOnsets   Name = "failslow_onsets_total"
	MetricFailSlowRecovers Name = "failslow_recoveries_total"
	MetricSlowBursts       Name = "slow_bursts_total"

	// Network fault-domain counters (internal/core + internal/topology).
	MetricSwitchFails     Name = "switch_fails_total"
	MetricRackPowerEvents Name = "rack_power_events_total"
	MetricPartitions      Name = "partitions_total"
	MetricPartitionHeals  Name = "partition_heals_total"
	MetricFalseDeadRacks  Name = "false_dead_racks_total"
	MetricFalseDeadDisks  Name = "false_dead_disks_total"

	// Recovery-engine counters (internal/recovery).
	MetricBlocksRebuilt   Name = "blocks_rebuilt_total"
	MetricRebuildsDropped Name = "rebuilds_dropped_total"
	MetricRedirections    Name = "redirections_total"
	MetricResourcings     Name = "resourcings_total"
	MetricRetries         Name = "rebuild_retries_total"
	MetricTransientFaults Name = "transient_faults_total"
	MetricHedges          Name = "hedges_total"
	MetricHedgeWins       Name = "hedge_wins_total"
	MetricTimeouts        Name = "rebuild_timeouts_total"
	MetricSlowFlagged     Name = "slow_flagged_total"
	MetricSlowEvicted     Name = "slow_evicted_total"
	MetricSpareWaits      Name = "spare_waits_total"
	MetricSparesUsed      Name = "spares_used_total"
	// Topology-aware recovery counters: cross-rack repair traffic and
	// transfers parked against dark racks.
	MetricCrossRackTransfers Name = "cross_rack_transfers_total"
	MetricCrossRackBytes     Name = "cross_rack_bytes_total"
	MetricParkedTransfers    Name = "parked_transfers_total"

	// Living-fleet counters: foreground-traffic coexistence
	// (internal/recovery) and planned maintenance (internal/core).
	MetricDegradedReads Name = "degraded_reads_total"
	MetricThrottleSteps Name = "throttle_steps_total"
	MetricDemandBursts  Name = "demand_bursts_total"
	MetricDrainsPlanned Name = "drains_planned_total"
	MetricUpgradeWins   Name = "upgrade_windows_total"
	MetricGrowthBatches Name = "growth_batches_total"
	MetricGrowthDisks   Name = "growth_disks_total"

	// Fault-injection probe counters (internal/faults).
	MetricProbeReads     Name = "probe_reads_total"
	MetricProbeTransient Name = "probe_transient_total"
	MetricProbeLatent    Name = "probe_latent_total"

	// Object-store data-path counters (internal/objstore).
	MetricObjDegradedReads  Name = "objstore_degraded_reads_total"
	MetricObjCorruptRegions Name = "objstore_corrupt_regions_total"
	MetricObjRepairs        Name = "objstore_repairs_total"
	MetricObjShardsRebuilt  Name = "objstore_shards_rebuilt_total"

	// Loss-forensics counters (internal/forensics): one postmortem per
	// traced data-loss or dropped-rebuild event, bucketed by the
	// deterministic taxonomy.
	MetricPostmortems          Name = "postmortems_total"
	MetricPostmortemLosses     Name = "postmortem_losses_total"
	MetricPostmortemDrops      Name = "postmortem_drops_total"
	MetricLossFalseDead        Name = "loss_false_dead_writeoff_total"
	MetricLossLSERebuild       Name = "loss_lse_during_rebuild_total"
	MetricLossLSEScrub         Name = "loss_lse_at_scrub_total"
	MetricLossBurstSpare       Name = "loss_burst_spare_exhaustion_total"
	MetricLossBurst            Name = "loss_correlated_burst_total"
	MetricLossIndependent      Name = "loss_independent_failures_total"
	MetricDropTimeout          Name = "drop_timeout_abandon_total"
	MetricDropSourceExhaustion Name = "drop_source_exhaustion_total"
	MetricDropGroupLost        Name = "drop_group_lost_total"
)

// Metric catalogue — gauges (sampled system state).
const (
	MetricActiveRebuilds Name = "active_rebuilds"
	MetricQueuedRebuilds Name = "queued_rebuilds"
	MetricBusyDisks      Name = "busy_disks"
	MetricRecoveryMBps   Name = "recovery_mbps_in_flight"
	MetricDegradedGroups Name = "degraded_groups"
	MetricLostGroups     Name = "lost_groups"
	MetricSparePoolFree  Name = "spare_pool_free"
	MetricAliveDisks     Name = "alive_disks"
	MetricSlowDisks      Name = "slow_disks"
	MetricSuspectDisks   Name = "suspect_disks"
	MetricUserLoadShare  Name = "user_load_share"
	MetricThrottleMBps   Name = "throttle_mbps"
)

// Metric catalogue — histograms (per-rebuild phase breakdowns, hours).
const (
	MetricWindowHours       Name = "rebuild_window_hours"
	MetricQueueWaitHours    Name = "rebuild_queue_wait_hours"
	MetricTransferHours     Name = "rebuild_transfer_hours"
	MetricRetryWaitHours    Name = "rebuild_retry_wait_hours"
	MetricHedgeOverlapHours Name = "rebuild_hedge_overlap_hours"
	MetricDetectWaitHours   Name = "rebuild_detect_wait_hours"
	MetricDegradedLatency   Name = "degraded_read_latency_ms"

	// Loss-forensics histograms: per-postmortem vulnerability windows
	// (hours) and the leading blame fractions of each loss's normalized
	// blame vector.
	MetricPostmortemWindow Name = "postmortem_window_hours"
	MetricBlameTransfer    Name = "blame_transfer_fraction"
	MetricBlameDetect      Name = "blame_detect_fraction"
	MetricBlameStretch     Name = "blame_stretch_fraction"
)

// PhaseBounds are the default histogram bucket upper bounds for the
// rebuild-phase histograms, in hours: exponential from ~4 s to ~42 days.
// An implicit +Inf bucket catches the rest.
var PhaseBounds = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000,
}

// LatencyBounds are the histogram bucket upper bounds for read-latency
// metrics, in milliseconds: exponential from a healthy seek to a
// pathological multi-second reconstruction. Implicit +Inf catches worse.
var LatencyBounds = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
}

// FractionBounds are the histogram bucket upper bounds for blame
// fractions on [0, 1]: dense at both ends, where "negligible" and
// "dominant" verdicts live. Implicit +Inf catches exactly-1.0.
var FractionBounds = []float64{
	0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99,
}
