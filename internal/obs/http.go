package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// TelemetryServer is the optional live-telemetry HTTP endpoint behind
// the -telemetry flag of farmsim/farmtrace. It serves:
//
//	/            campaign progress as JSON (runs done, losses, ETA,
//	             per-worker throughput)
//	/progress    same as /
//	/metrics     the merged registry in Prometheus text format
//	/debug/pprof the standard Go profiler endpoints
//
// The server is a pure observer: it reads the Campaign (which locks) and
// the Go runtime; it cannot touch simulation state, so serving telemetry
// leaves the results byte-identical.
type TelemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartTelemetry listens on addr (e.g. "localhost:8080") and serves the
// campaign's telemetry until Close. The returned server is already
// accepting connections.
func StartTelemetry(addr string, c *Campaign) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	progress := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Snapshot())
	}
	mux.HandleFunc("/", progress)
	mux.HandleFunc("/progress", progress)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = c.MasterSnapshot(func(r *Registry) error { return r.WritePrometheus(w) })
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ts := &TelemetryServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = ts.srv.Serve(ln) }()
	return ts, nil
}

// Addr returns the bound address (useful with a ":0" listen spec).
func (t *TelemetryServer) Addr() string { return t.ln.Addr().String() }

// Close stops the server.
func (t *TelemetryServer) Close() error { return t.srv.Close() }
