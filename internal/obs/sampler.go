package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sample is one snapshot of system state at a simulated instant, taken
// by the core simulator's periodic sampler. Sampling is strictly
// read-only: it observes cluster, scheduler, and engine state without
// touching any of it, so an enabled sampler leaves the run byte-identical.
type Sample struct {
	// T is the snapshot time in simulated hours.
	T float64 `json:"t"`

	// ActiveRebuilds counts block rebuilds in flight (tracked by a
	// recovery engine, whether transferring or queued).
	ActiveRebuilds int `json:"active_rebuilds"`
	// QueuedTransfers counts rebuild transfers parked in disk FIFO
	// queues waiting for a busy endpoint.
	QueuedTransfers int `json:"queued_transfers"`
	// BusyDisks counts disks currently mid-transfer (two per running
	// transfer: source and target).
	BusyDisks int `json:"busy_disks"`
	// RecoveryMBps is the recovery bandwidth in flight: running
	// transfers × the per-disk recovery allotment at T.
	RecoveryMBps float64 `json:"recovery_mbps"`

	// DegradedGroups counts groups missing at least one replica but not
	// yet lost; Missing1/Missing2/Missing3Plus break them down by how
	// many replicas are gone (redundancy remaining shrinks as the count
	// grows). LostGroups counts groups latched lost so far.
	DegradedGroups int `json:"degraded_groups"`
	Missing1       int `json:"missing_1"`
	Missing2       int `json:"missing_2,omitempty"`
	Missing3Plus   int `json:"missing_3plus,omitempty"`
	LostGroups     int `json:"lost_groups"`

	// AliveDisks counts drives in service; SlowDisks counts drives
	// currently degraded by the fail-slow model; SuspectDisks counts
	// drives marked suspect (S.M.A.R.T. warning or straggler eviction)
	// and draining.
	AliveDisks   int `json:"alive_disks"`
	SlowDisks    int `json:"slow_disks,omitempty"`
	SuspectDisks int `json:"suspect_disks,omitempty"`
	// EvictedSlow counts drives the straggler detector has condemned so
	// far (cumulative).
	EvictedSlow int `json:"evicted_slow,omitempty"`

	// SparePoolFree is the spare-disk pool level (traditional engine
	// with a finite pool; -1 means unlimited or not applicable).
	// SpareQueue counts recovery work items parked waiting for a spare.
	SparePoolFree int `json:"spare_pool_free"`
	SpareQueue    int `json:"spare_queue,omitempty"`
}

// Series collects samples in time order. Not safe for concurrent use.
type Series struct {
	samples []Sample
}

// NewSeries returns an empty series.
func NewSeries() *Series { return &Series{} }

// Add appends one sample.
func (s *Series) Add(sm Sample) { s.samples = append(s.samples, sm) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns the collected samples (caller must not mutate).
func (s *Series) Samples() []Sample { return s.samples }

// WriteJSONL writes one JSON object per sample.
func (s *Series) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range s.samples {
		if err := enc.Encode(&s.samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSampleJSONL parses a stream written by WriteJSONL.
func ReadSampleJSONL(rd io.Reader) ([]Sample, error) {
	dec := json.NewDecoder(rd)
	var out []Sample
	for dec.More() {
		var sm Sample
		if err := dec.Decode(&sm); err != nil {
			return nil, fmt.Errorf("obs: sample: %w", err)
		}
		out = append(out, sm)
	}
	return out, nil
}
