package obs

import (
	"strings"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	l := NewSpanLog()
	sp := l.Start(3, 1, 10, 10.5, 10.5)
	if sp.Outcome != OutcomeUnfinished {
		t.Fatalf("new span outcome = %q", sp.Outcome)
	}
	if sp.StartAt != -1 || sp.DoneAt != -1 {
		t.Fatalf("new span start/done = %v/%v, want -1/-1", sp.StartAt, sp.DoneAt)
	}
	if got := sp.Window(); got != 0 {
		t.Fatalf("unfinished window = %v, want 0", got)
	}
	if got := sp.DetectWait(); got != 0.5 {
		t.Fatalf("detect wait = %v, want 0.5", got)
	}

	sp.StartAt = 11
	sp.QueueWait += 0.5
	sp.Transfer += 2
	sp.Attempts = 1
	sp.DoneAt = 13
	sp.Outcome = OutcomeDone
	if got := sp.Window(); got != 3 {
		t.Fatalf("window = %v, want 3", got)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	l := NewSpanLog()
	a := l.Start(1, 0, 0, 0.25, 0.25)
	a.StartAt, a.DoneAt = 0.5, 1.75
	a.QueueWait, a.Transfer = 0.25, 1.25
	a.Attempts, a.Retries, a.Hedges = 2, 1, 1
	a.HedgeWon = true
	a.Outcome = OutcomeDone
	b := l.Start(2, 1, 5, 5, 5)
	b.Outcome = OutcomeDropped
	b.DoneAt = 6

	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadSpanJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip: %d spans, want 2", len(back))
	}
	if *back[0] != *a || *back[1] != *b {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back[0], back[1])
	}
	// Unfinished third span still serializes with the -1 sentinels.
	l.Start(3, 2, 7, 7.5, 7.5)
	sb.Reset()
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(sb.String(), `"outcome":"unfinished"`) {
		t.Fatalf("unfinished span missing from JSONL:\n%s", sb.String())
	}
}

func TestReadSpanJSONLBad(t *testing.T) {
	if _, err := ReadSpanJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatalf("bad input did not error")
	}
}

func TestSampleJSONLRoundTrip(t *testing.T) {
	s := NewSeries()
	s.Add(Sample{T: 1, ActiveRebuilds: 2, BusyDisks: 4, RecoveryMBps: 80, DegradedGroups: 2, Missing1: 2, AliveDisks: 100, SparePoolFree: -1})
	s.Add(Sample{T: 2, LostGroups: 1, Missing2: 1, SlowDisks: 3, EvictedSlow: 1, SparePoolFree: 5, SpareQueue: 2})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	var sb strings.Builder
	if err := s.WriteJSONL(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadSampleJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip: %d samples, want 2", len(back))
	}
	if back[0] != s.Samples()[0] || back[1] != s.Samples()[1] {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back[0], back[1])
	}
}

func TestRunObserverValidate(t *testing.T) {
	var nilObs *RunObserver
	if err := nilObs.Validate(); err != nil {
		t.Fatalf("nil observer: %v", err)
	}
	if err := (&RunObserver{}).Validate(); err != nil {
		t.Fatalf("zero observer: %v", err)
	}
	if err := (&RunObserver{Series: NewSeries()}).Validate(); err == nil {
		t.Fatalf("series without cadence did not error")
	}
	if err := (&RunObserver{Series: NewSeries(), SampleEveryHours: 24}).Validate(); err != nil {
		t.Fatalf("valid sampler config: %v", err)
	}
}
