package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Span outcomes.
const (
	// OutcomeDone marks a rebuild that landed its block.
	OutcomeDone = "done"
	// OutcomeDropped marks a rebuild abandoned (group lost, sources
	// exhausted, or the re-sourcing cap reached).
	OutcomeDropped = "dropped"
	// OutcomeUnfinished marks a rebuild still in flight when the
	// simulation horizon arrived.
	OutcomeUnfinished = "unfinished"
)

// Span tracks one block rebuild through its whole lifecycle: the block
// is lost at FailedAt (disk death or discovered latent error), the loss
// is noticed at DetectedAt, the first transfer attempt is submitted at
// QueuedAt, actually starts at StartAt, and the rebuild ends at DoneAt.
// The phase accumulators break the window of vulnerability down by where
// the time went; across retries, redirections, and re-sourcings each
// attempt's queue wait and transfer time adds into the same buckets.
// All times are simulated hours.
type Span struct {
	Group int `json:"group"`
	Rep   int `json:"rep"`

	FailedAt   float64 `json:"failed_at"`
	DetectedAt float64 `json:"detected_at"`
	QueuedAt   float64 `json:"queued_at"`
	// StartAt is the first transfer start; -1 if no attempt ever started.
	StartAt float64 `json:"start_at"`
	// DoneAt is the completion/abandonment time; -1 while unfinished.
	DoneAt float64 `json:"done_at"`

	// QueueWait accumulates hours spent waiting in disk FIFO queues (and
	// for an exhausted spare pool) across all attempts.
	QueueWait float64 `json:"queue_wait"`
	// Transfer accumulates hours spent actually transferring, including
	// partial transfers lost to cancellations.
	Transfer float64 `json:"transfer"`
	// RetryWait accumulates backoff hours after transient read faults.
	RetryWait float64 `json:"retry_wait"`
	// HedgeOverlap accumulates hours during which a duplicate transfer
	// raced the primary.
	HedgeOverlap float64 `json:"hedge_overlap"`

	Attempts     int  `json:"attempts"`
	Retries      int  `json:"retries,omitempty"`
	Resourcings  int  `json:"resourcings,omitempty"`
	Redirections int  `json:"redirections,omitempty"`
	Hedges       int  `json:"hedges,omitempty"`
	HedgeWon     bool `json:"hedge_won,omitempty"`
	TimedOut     bool `json:"timed_out,omitempty"`

	// Outcome is "done", "dropped", or "unfinished".
	Outcome string `json:"outcome"`
}

// Window returns the span's window of vulnerability (failure to end);
// 0 for unfinished spans.
func (s *Span) Window() float64 {
	if s.DoneAt < 0 {
		return 0
	}
	return s.DoneAt - s.FailedAt
}

// DetectWait returns the detection-latency phase of the span.
func (s *Span) DetectWait() float64 { return s.DetectedAt - s.FailedAt }

// SpanLog collects rebuild-lifecycle spans in start order. Not safe for
// concurrent use — one run, one SpanLog.
type SpanLog struct {
	spans []*Span
}

// NewSpanLog returns an empty span log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Start opens a span for one block rebuild at queue time and returns it
// for in-place phase accounting.
func (l *SpanLog) Start(group, rep int, failedAt, detectedAt, queuedAt float64) *Span {
	sp := &Span{
		Group: group, Rep: rep,
		FailedAt: failedAt, DetectedAt: detectedAt, QueuedAt: queuedAt,
		StartAt: -1, DoneAt: -1,
		Outcome: OutcomeUnfinished,
	}
	l.spans = append(l.spans, sp)
	return sp
}

// Len returns the number of spans (finished or not).
func (l *SpanLog) Len() int { return len(l.spans) }

// Spans returns the recorded spans in start order (caller must not
// mutate the slice).
func (l *SpanLog) Spans() []*Span { return l.spans }

// WriteJSONL writes one JSON object per span.
func (l *SpanLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range l.spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// ReadSpanJSONL parses a stream written by WriteJSONL.
func ReadSpanJSONL(rd io.Reader) ([]*Span, error) {
	dec := json.NewDecoder(rd)
	var out []*Span
	for dec.More() {
		sp := &Span{}
		if err := dec.Decode(sp); err != nil {
			return nil, fmt.Errorf("obs: span: %w", err)
		}
		out = append(out, sp)
	}
	return out, nil
}
