package obs

import (
	"math"
	"strings"
	"testing"
)

// TestRegistryRecordZeroAlloc is the gate the //farm:hotpath annotations
// in registry.go point at: once handles are resolved, Inc/Add/Set/Observe
// must not allocate.
func TestRegistryRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MetricBlocksRebuilt)
	g := r.Gauge(MetricActiveRebuilds)
	h := r.Histogram(MetricWindowHours, PhaseBounds)

	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
	}); n != 0 {
		t.Fatalf("counter record path allocates: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		g.Set(4.5)
		g.Add(-1.25)
	}); n != 0 {
		t.Fatalf("gauge record path allocates: %v allocs/op", n)
	}
	v := 0.0009
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v *= 1.001
	}); n != 0 {
		t.Fatalf("histogram record path allocates: %v allocs/op", n)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MetricRetries)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter(MetricRetries); c2 != c {
		t.Fatalf("re-registration returned a different counter handle")
	}

	g := r.Gauge(MetricBusyDisks)
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	if g2 := r.Gauge(MetricBusyDisks); g2 != g {
		t.Fatalf("re-registration returned a different gauge handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_test", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	// Bucket i counts v <= bounds[i] (non-cumulative internally; the
	// cumulative rendering happens at exposition time).
	want := []uint64{2, 2, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+5+10+99+1000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// +Inf lands in the overflow bucket; NaN is dropped entirely.
	h.Observe(math.Inf(1))
	if got := h.BucketCounts()[3]; got != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", got)
	}
	h.Observe(math.NaN())
	if h.Count() != 7 {
		t.Fatalf("NaN observation counted: %d", h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Fatalf("NaN observation poisoned the sum")
	}
}

func TestHistogramBoundMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_test", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with different bounds did not panic")
		}
	}()
	r.Histogram("h_test", []float64{1, 3})
}

func TestBadNamePanics(t *testing.T) {
	for _, bad := range []Name{"", "Upper", "has-dash", "has.dot", "has space", "digit0"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad)
		}()
	}
}

func TestBadBoundsPanics(t *testing.T) {
	for _, bad := range [][]float64{
		{1, 1},
		{2, 1},
		{1, math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bad)
				}
			}()
			NewRegistry().Histogram("h_test", bad)
		}()
	}
}

func fillRegistry(r *Registry) {
	r.Counter(MetricBlocksRebuilt).Add(10)
	r.Counter(MetricRetries).Add(2)
	r.Gauge(MetricActiveRebuilds).Set(3)
	h := r.Histogram(MetricWindowHours, PhaseBounds)
	h.Observe(0.02)
	h.Observe(7)
	h.Observe(2000)
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fillRegistry(a)
	fillRegistry(b)
	b.Counter(MetricBlocksRebuilt).Add(5)
	b.Gauge(MetricActiveRebuilds).Set(9)

	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got := a.Counter(MetricBlocksRebuilt).Value(); got != 25 {
		t.Fatalf("merged counter = %d, want 25", got)
	}
	if got := a.Gauge(MetricActiveRebuilds).Value(); got != 12 {
		t.Fatalf("merged gauge = %v, want 12 (gauges add)", got)
	}
	h := a.Histogram(MetricWindowHours, PhaseBounds)
	if h.Count() != 6 {
		t.Fatalf("merged hist count = %d, want 6", h.Count())
	}

	// Merging into an empty registry adopts the source's instruments.
	e := NewRegistry()
	if err := e.Merge(b); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if got := e.Counter(MetricBlocksRebuilt).Value(); got != 15 {
		t.Fatalf("adopted counter = %d, want 15", got)
	}
}

func TestMergeBoundMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h_test", []float64{1, 2})
	b.Histogram("h_test", []float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatalf("merge with mismatched bounds did not error")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("prometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE blocks_rebuilt_total counter",
		"blocks_rebuilt_total 10",
		"# TYPE active_rebuilds gauge",
		"active_rebuilds 3",
		"# TYPE rebuild_window_hours histogram",
		`rebuild_window_hours_bucket{le="0.05"} 1`, // cumulative le buckets
		`rebuild_window_hours_bucket{le="+Inf"} 3`,
		"rebuild_window_hours_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		fillRegistry(r)
		var sb strings.Builder
		if err := r.WriteJSONL(&sb); err != nil {
			t.Fatalf("jsonl: %v", err)
		}
		return sb.String()
	}
	a := render()
	for i := 0; i < 10; i++ {
		if b := render(); b != a {
			t.Fatalf("JSONL output not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
	if !strings.Contains(a, `"name":"blocks_rebuilt_total"`) {
		t.Fatalf("JSONL missing counter entry:\n%s", a)
	}
}
