package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCampaignProgress(t *testing.T) {
	c := NewCampaign()
	c.Begin(10, 2)
	p := c.Snapshot()
	if p.RunsTotal != 10 || p.RunsDone != 0 || p.EtaSeconds != -1 {
		t.Fatalf("fresh campaign snapshot: %+v", p)
	}
	if len(p.PerWorker) != 2 {
		t.Fatalf("per-worker slots = %d, want 2", len(p.PerWorker))
	}

	reg := NewRegistry()
	reg.Counter(MetricBlocksRebuilt).Add(7)
	c.WorkerRunDone(0)
	c.FoldRun(true, reg)
	c.WorkerRunDone(1)
	c.FoldRun(false, nil)

	p = c.Snapshot()
	if p.RunsDone != 2 || p.Losses != 1 {
		t.Fatalf("after folds: %+v", p)
	}
	if p.PerWorker[0] != 1 || p.PerWorker[1] != 1 {
		t.Fatalf("per-worker: %v", p.PerWorker)
	}
	if err := c.MasterSnapshot(func(r *Registry) error {
		if got := r.Counter(MetricBlocksRebuilt).Value(); got != 7 {
			t.Fatalf("master counter = %d, want 7", got)
		}
		return nil
	}); err != nil {
		t.Fatalf("master snapshot: %v", err)
	}

	// A second Begin accumulates totals (sweep of several campaigns).
	c.Begin(5, 3)
	if p := c.Snapshot(); p.RunsTotal != 15 || len(p.PerWorker) != 3 {
		t.Fatalf("accumulated: %+v", p)
	}
}

// TestCampaignConcurrent exercises the lock under -race: many workers
// crediting runs and folding registries while a reader snapshots.
func TestCampaignConcurrent(t *testing.T) {
	c := NewCampaign()
	c.Begin(64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				reg := NewRegistry()
				reg.Counter(MetricBlocksRebuilt).Inc()
				c.WorkerRunDone(w)
				c.FoldRun(i%2 == 0, reg)
				_ = c.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	p := c.Snapshot()
	if p.RunsDone != 64 || p.Losses != 32 {
		t.Fatalf("concurrent folds: %+v", p)
	}
	_ = c.MasterSnapshot(func(r *Registry) error {
		if got := r.Counter(MetricBlocksRebuilt).Value(); got != 64 {
			t.Fatalf("master counter = %d, want 64", got)
		}
		return nil
	})
}

func TestTelemetryServer(t *testing.T) {
	c := NewCampaign()
	c.Begin(4, 1)
	reg := NewRegistry()
	reg.Counter(MetricBlocksRebuilt).Add(3)
	c.WorkerRunDone(0)
	c.FoldRun(false, reg)

	ts, err := StartTelemetry("localhost:0", c)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() { _ = ts.Close() }()
	base := "http://" + ts.Addr()

	fetch := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := fetch("/progress")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/progress content type = %q", ctype)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if p.RunsDone != 1 || p.RunsTotal != 4 {
		t.Errorf("/progress = %+v", p)
	}

	body, ctype = fetch("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "blocks_rebuilt_total 3") {
		t.Errorf("/metrics missing merged counter:\n%s", body)
	}

	if body, _ = fetch("/debug/pprof/cmdline"); body == "" {
		t.Errorf("/debug/pprof/cmdline empty")
	}
}
