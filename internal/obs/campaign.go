package obs

import (
	"sync"
	"time"
)

// Campaign aggregates live telemetry over one or more Monte Carlo
// campaigns: progress, losses, ETA, per-worker throughput, and the
// merged metrics registry. It is the only concurrency-aware type in the
// package — workers and the HTTP endpoint touch it from different
// goroutines, so every method locks.
//
// Determinism: the campaign is a pure observer. The Monte Carlo driver
// folds per-run registries into the master in strict run-index order, so
// the merged registry is byte-identical regardless of worker count; the
// wall-clock fields (start time, ETA) feed only the progress endpoint,
// never the simulation.
type Campaign struct {
	mu        sync.Mutex
	total     int
	done      int
	losses    int
	perWorker []int
	started   bool
	startWall time.Time
	master    *Registry
}

// NewCampaign returns an empty campaign telemetry hub.
func NewCampaign() *Campaign {
	return &Campaign{master: NewRegistry()}
}

// Begin announces one Monte Carlo campaign of runs trajectories spread
// over workers workers. Totals accumulate, so a sweep of several
// campaigns (one per data point) reports combined progress.
func (c *Campaign) Begin(runs, workers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total += runs
	for len(c.perWorker) < workers {
		c.perWorker = append(c.perWorker, 0)
	}
	if !c.started {
		c.started = true
		//farm:wallclock progress/ETA reporting only; never feeds the simulation
		c.startWall = time.Now()
	}
}

// WorkerRunDone credits one completed trajectory to worker w (0-based).
// Called from worker goroutines as runs finish computing, before the
// ordered fold.
func (c *Campaign) WorkerRunDone(w int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.perWorker) <= w {
		c.perWorker = append(c.perWorker, 0)
	}
	c.perWorker[w]++
}

// FoldRun folds one run's outcome into the campaign in run-index order:
// the loss flag and, when reg is non-nil, the run's metrics registry
// into the master. The Monte Carlo driver calls this under its ordered
// reduction, so master merges are deterministic.
func (c *Campaign) FoldRun(loss bool, reg *Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done++
	if loss {
		c.losses++
	}
	if reg != nil {
		// Bucket layouts come from the same catalogue; a mismatch is a
		// programming error surfaced by the merge tests, not a runtime
		// condition worth plumbing an error path for.
		_ = c.master.Merge(reg)
	}
}

// MasterSnapshot renders the merged registry with the given writer
// function while holding the lock (e.g. (*Registry).WritePrometheus).
func (c *Campaign) MasterSnapshot(write func(*Registry) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return write(c.master)
}

// Progress is a point-in-time view of the campaign.
type Progress struct {
	// RunsDone and RunsTotal report completed vs requested trajectories.
	RunsDone  int `json:"runs_done"`
	RunsTotal int `json:"runs_total"`
	// Losses counts trajectories with data loss so far.
	Losses int `json:"losses"`
	// ElapsedSeconds is wall time since the first Begin; EtaSeconds
	// extrapolates the remaining runs at the observed rate (-1 until the
	// first run completes).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	EtaSeconds     float64 `json:"eta_seconds"`
	// RunsPerSecond is the aggregate throughput; PerWorker is the
	// completed-run count per worker slot.
	RunsPerSecond float64 `json:"runs_per_second"`
	PerWorker     []int   `json:"per_worker"`
}

// Snapshot returns the current progress.
func (c *Campaign) Snapshot() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		RunsDone:   c.done,
		RunsTotal:  c.total,
		Losses:     c.losses,
		EtaSeconds: -1,
		PerWorker:  append([]int(nil), c.perWorker...),
	}
	if c.started {
		//farm:wallclock progress/ETA reporting only; never feeds the simulation
		p.ElapsedSeconds = time.Since(c.startWall).Seconds()
	}
	if p.ElapsedSeconds > 0 && c.done > 0 {
		p.RunsPerSecond = float64(c.done) / p.ElapsedSeconds
		if c.total > c.done {
			p.EtaSeconds = float64(c.total-c.done) / p.RunsPerSecond
		} else {
			p.EtaSeconds = 0
		}
	}
	return p
}
