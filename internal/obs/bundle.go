package obs

import (
	"errors"
	"fmt"
	"math"
)

// RecoveryMetrics is the pre-resolved handle bundle the recovery engines
// record into. Resolving handles once at setup keeps the record paths
// free of map lookups and allocation.
type RecoveryMetrics struct {
	BlocksRebuilt   *Counter
	Dropped         *Counter
	Redirections    *Counter
	Resourcings     *Counter
	Retries         *Counter
	TransientFaults *Counter
	Hedges          *Counter
	HedgeWins       *Counter
	Timeouts        *Counter
	SlowFlagged     *Counter
	SlowEvicted     *Counter
	SpareWaits      *Counter
	SparesUsed      *Counter

	CrossRackTransfers *Counter
	CrossRackBytes     *Counter
	ParkedTransfers    *Counter

	DegradedReads *Counter
	ThrottleSteps *Counter

	WindowHours       *Histogram
	QueueWaitHours    *Histogram
	TransferHours     *Histogram
	RetryWaitHours    *Histogram
	HedgeOverlapHours *Histogram
	DetectWaitHours   *Histogram
	DegradedLatencyMs *Histogram
}

// NewRecoveryMetrics resolves the recovery-engine handles on r.
func NewRecoveryMetrics(r *Registry) *RecoveryMetrics {
	return &RecoveryMetrics{
		BlocksRebuilt:   r.Counter(MetricBlocksRebuilt),
		Dropped:         r.Counter(MetricRebuildsDropped),
		Redirections:    r.Counter(MetricRedirections),
		Resourcings:     r.Counter(MetricResourcings),
		Retries:         r.Counter(MetricRetries),
		TransientFaults: r.Counter(MetricTransientFaults),
		Hedges:          r.Counter(MetricHedges),
		HedgeWins:       r.Counter(MetricHedgeWins),
		Timeouts:        r.Counter(MetricTimeouts),
		SlowFlagged:     r.Counter(MetricSlowFlagged),
		SlowEvicted:     r.Counter(MetricSlowEvicted),
		SpareWaits:      r.Counter(MetricSpareWaits),
		SparesUsed:      r.Counter(MetricSparesUsed),

		CrossRackTransfers: r.Counter(MetricCrossRackTransfers),
		CrossRackBytes:     r.Counter(MetricCrossRackBytes),
		ParkedTransfers:    r.Counter(MetricParkedTransfers),

		DegradedReads: r.Counter(MetricDegradedReads),
		ThrottleSteps: r.Counter(MetricThrottleSteps),

		WindowHours:       r.Histogram(MetricWindowHours, PhaseBounds),
		QueueWaitHours:    r.Histogram(MetricQueueWaitHours, PhaseBounds),
		TransferHours:     r.Histogram(MetricTransferHours, PhaseBounds),
		RetryWaitHours:    r.Histogram(MetricRetryWaitHours, PhaseBounds),
		HedgeOverlapHours: r.Histogram(MetricHedgeOverlapHours, PhaseBounds),
		DetectWaitHours:   r.Histogram(MetricDetectWaitHours, PhaseBounds),
		DegradedLatencyMs: r.Histogram(MetricDegradedLatency, LatencyBounds),
	}
}

// NewDiscardRecoveryMetrics returns a RecoveryMetrics sink whose
// handles all share one scratch counter and one scratch histogram (a
// single +Inf bucket). Unobserved runs need a non-nil bundle so the
// record sites carry no nil checks; resolving a throwaway registry for
// that costs ~55 allocations per run, the shared-handle sink four.
// Nothing ever reads the scratch instruments, so the aliasing is
// invisible — but each run still needs its own sink (the handles are
// not atomic, so parallel Monte Carlo runs must not share one).
func NewDiscardRecoveryMetrics() *RecoveryMetrics {
	c := &Counter{}
	h := &Histogram{counts: make([]uint64, 1)}
	return &RecoveryMetrics{
		BlocksRebuilt:   c,
		Dropped:         c,
		Redirections:    c,
		Resourcings:     c,
		Retries:         c,
		TransientFaults: c,
		Hedges:          c,
		HedgeWins:       c,
		Timeouts:        c,
		SlowFlagged:     c,
		SlowEvicted:     c,
		SpareWaits:      c,
		SparesUsed:      c,

		CrossRackTransfers: c,
		CrossRackBytes:     c,
		ParkedTransfers:    c,

		DegradedReads: c,
		ThrottleSteps: c,

		WindowHours:       h,
		QueueWaitHours:    h,
		TransferHours:     h,
		RetryWaitHours:    h,
		HedgeOverlapHours: h,
		DetectWaitHours:   h,
		DegradedLatencyMs: h,
	}
}

// SimMetrics is the simulator-level handle bundle (internal/core).
type SimMetrics struct {
	DiskFailures     *Counter
	DataLossGroups   *Counter
	BatchesAdded     *Counter
	DisksAdded       *Counter
	Predicted        *Counter
	DrainedBlocks    *Counter
	LSEInjected      *Counter
	LSEDetected      *Counter
	ScrubFound       *Counter
	Bursts           *Counter
	BurstKills       *Counter
	FailSlowOnsets   *Counter
	FailSlowRecovers *Counter
	SlowBursts       *Counter
	SwitchFails      *Counter
	RackPowerEvents  *Counter
	Partitions       *Counter
	PartitionHeals   *Counter
	FalseDeadRacks   *Counter
	FalseDeadDisks   *Counter

	DemandBursts  *Counter
	DrainsPlanned *Counter
	UpgradeWins   *Counter
	GrowthBatches *Counter
	GrowthDisks   *Counter

	ActiveRebuilds *Gauge
	QueuedRebuilds *Gauge
	BusyDisks      *Gauge
	RecoveryMBps   *Gauge
	DegradedGroups *Gauge
	LostGroups     *Gauge
	SparePoolFree  *Gauge
	AliveDisks     *Gauge
	SlowDisks      *Gauge
	SuspectDisks   *Gauge
	UserLoadShare  *Gauge
	ThrottleMBps   *Gauge
}

// NewSimMetrics resolves the simulator-level handles on r.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		DiskFailures:     r.Counter(MetricDiskFailures),
		DataLossGroups:   r.Counter(MetricDataLossGroups),
		BatchesAdded:     r.Counter(MetricBatchesAdded),
		DisksAdded:       r.Counter(MetricDisksAdded),
		Predicted:        r.Counter(MetricPredicted),
		DrainedBlocks:    r.Counter(MetricDrainedBlocks),
		LSEInjected:      r.Counter(MetricLSEInjected),
		LSEDetected:      r.Counter(MetricLSEDetected),
		ScrubFound:       r.Counter(MetricScrubFound),
		Bursts:           r.Counter(MetricBursts),
		BurstKills:       r.Counter(MetricBurstKills),
		FailSlowOnsets:   r.Counter(MetricFailSlowOnsets),
		FailSlowRecovers: r.Counter(MetricFailSlowRecovers),
		SlowBursts:       r.Counter(MetricSlowBursts),
		SwitchFails:      r.Counter(MetricSwitchFails),
		RackPowerEvents:  r.Counter(MetricRackPowerEvents),
		Partitions:       r.Counter(MetricPartitions),
		PartitionHeals:   r.Counter(MetricPartitionHeals),
		FalseDeadRacks:   r.Counter(MetricFalseDeadRacks),
		FalseDeadDisks:   r.Counter(MetricFalseDeadDisks),

		DemandBursts:  r.Counter(MetricDemandBursts),
		DrainsPlanned: r.Counter(MetricDrainsPlanned),
		UpgradeWins:   r.Counter(MetricUpgradeWins),
		GrowthBatches: r.Counter(MetricGrowthBatches),
		GrowthDisks:   r.Counter(MetricGrowthDisks),

		ActiveRebuilds: r.Gauge(MetricActiveRebuilds),
		QueuedRebuilds: r.Gauge(MetricQueuedRebuilds),
		BusyDisks:      r.Gauge(MetricBusyDisks),
		RecoveryMBps:   r.Gauge(MetricRecoveryMBps),
		DegradedGroups: r.Gauge(MetricDegradedGroups),
		LostGroups:     r.Gauge(MetricLostGroups),
		SparePoolFree:  r.Gauge(MetricSparePoolFree),
		AliveDisks:     r.Gauge(MetricAliveDisks),
		SlowDisks:      r.Gauge(MetricSlowDisks),
		SuspectDisks:   r.Gauge(MetricSuspectDisks),
		UserLoadShare:  r.Gauge(MetricUserLoadShare),
		ThrottleMBps:   r.Gauge(MetricThrottleMBps),
	}
}

// NewDiscardSimMetrics returns a SimMetrics sink whose handles all
// share one scratch counter and one scratch gauge — the simulator-level
// counterpart of NewDiscardRecoveryMetrics, with the same contract:
// per-run, write-only, never read.
func NewDiscardSimMetrics() *SimMetrics {
	c, g := &Counter{}, &Gauge{}
	return &SimMetrics{
		DiskFailures:     c,
		DataLossGroups:   c,
		BatchesAdded:     c,
		DisksAdded:       c,
		Predicted:        c,
		DrainedBlocks:    c,
		LSEInjected:      c,
		LSEDetected:      c,
		ScrubFound:       c,
		Bursts:           c,
		BurstKills:       c,
		FailSlowOnsets:   c,
		FailSlowRecovers: c,
		SlowBursts:       c,
		SwitchFails:      c,
		RackPowerEvents:  c,
		Partitions:       c,
		PartitionHeals:   c,
		FalseDeadRacks:   c,
		FalseDeadDisks:   c,

		DemandBursts:  c,
		DrainsPlanned: c,
		UpgradeWins:   c,
		GrowthBatches: c,
		GrowthDisks:   c,

		ActiveRebuilds: g,
		QueuedRebuilds: g,
		BusyDisks:      g,
		RecoveryMBps:   g,
		DegradedGroups: g,
		LostGroups:     g,
		SparePoolFree:  g,
		AliveDisks:     g,
		SlowDisks:      g,
		SuspectDisks:   g,
		UserLoadShare:  g,
		ThrottleMBps:   g,
	}
}

// FaultMetrics is the fault-injector handle bundle (internal/faults):
// read-probe classification counters.
type FaultMetrics struct {
	ProbeReads     *Counter
	ProbeTransient *Counter
	ProbeLatent    *Counter
}

// NewFaultMetrics resolves the fault-injector handles on r.
func NewFaultMetrics(r *Registry) *FaultMetrics {
	return &FaultMetrics{
		ProbeReads:     r.Counter(MetricProbeReads),
		ProbeTransient: r.Counter(MetricProbeTransient),
		ProbeLatent:    r.Counter(MetricProbeLatent),
	}
}

// StoreMetrics is the object-store handle bundle (internal/objstore):
// degraded-path data counters.
type StoreMetrics struct {
	DegradedReads  *Counter
	CorruptRegions *Counter
	Repairs        *Counter
	ShardsRebuilt  *Counter
}

// NewStoreMetrics resolves the object-store handles on r.
func NewStoreMetrics(r *Registry) *StoreMetrics {
	return &StoreMetrics{
		DegradedReads:  r.Counter(MetricObjDegradedReads),
		CorruptRegions: r.Counter(MetricObjCorruptRegions),
		Repairs:        r.Counter(MetricObjRepairs),
		ShardsRebuilt:  r.Counter(MetricObjShardsRebuilt),
	}
}

// RunObserver bundles the per-run observability configuration the core
// simulator threads through its layers. Every field is optional; the
// zero value (and a nil *RunObserver) disables the corresponding
// instrument and leaves the simulation untouched.
type RunObserver struct {
	// Registry, when non-nil, receives the metric catalogue of the run.
	Registry *Registry
	// Spans, when non-nil, records a rebuild-lifecycle span per block
	// rebuild.
	Spans *SpanLog
	// Series, when non-nil together with a positive SampleEveryHours,
	// receives periodic system-state samples.
	Series *Series
	// SampleEveryHours is the sampling cadence in simulated hours.
	SampleEveryHours float64

	// Memoized handle bundles over Registry, resolved on first use so
	// repeat runs against one observer re-register nothing and allocate
	// nothing (the metrics-on alloc parity gated by BENCH_5.json).
	sm *SimMetrics
	rm *RecoveryMetrics
	fm *FaultMetrics
}

// SimMetrics returns the simulator-level handle bundle over Registry,
// resolving it on first call. Registry must be non-nil.
func (o *RunObserver) SimMetrics() *SimMetrics {
	if o.sm == nil {
		o.sm = NewSimMetrics(o.Registry)
	}
	return o.sm
}

// RecoveryMetrics returns the recovery-engine handle bundle over
// Registry, resolving it on first call. Registry must be non-nil.
func (o *RunObserver) RecoveryMetrics() *RecoveryMetrics {
	if o.rm == nil {
		o.rm = NewRecoveryMetrics(o.Registry)
	}
	return o.rm
}

// FaultMetrics returns the fault-injector handle bundle over Registry,
// resolving it on first call. Registry must be non-nil.
func (o *RunObserver) FaultMetrics() *FaultMetrics {
	if o.fm == nil {
		o.fm = NewFaultMetrics(o.Registry)
	}
	return o.fm
}

// ErrSampleCadence reports an invalid sampler configuration.
var ErrSampleCadence = errors.New("obs: non-positive sample cadence with a Series configured")

// Validate checks the observer configuration.
func (o *RunObserver) Validate() error {
	if o == nil {
		return nil
	}
	if math.IsNaN(o.SampleEveryHours) || math.IsInf(o.SampleEveryHours, 0) {
		return fmt.Errorf("obs: SampleEveryHours is not finite")
	}
	if o.Series != nil && o.SampleEveryHours <= 0 {
		return ErrSampleCadence
	}
	return nil
}
