package obs

import (
	"errors"
	"fmt"
	"math"
)

// RecoveryMetrics is the pre-resolved handle bundle the recovery engines
// record into. Resolving handles once at setup keeps the record paths
// free of map lookups and allocation.
type RecoveryMetrics struct {
	BlocksRebuilt   *Counter
	Dropped         *Counter
	Redirections    *Counter
	Resourcings     *Counter
	Retries         *Counter
	TransientFaults *Counter
	Hedges          *Counter
	HedgeWins       *Counter
	Timeouts        *Counter
	SlowFlagged     *Counter
	SlowEvicted     *Counter
	SpareWaits      *Counter
	SparesUsed      *Counter

	CrossRackTransfers *Counter
	CrossRackBytes     *Counter
	ParkedTransfers    *Counter

	DegradedReads *Counter
	ThrottleSteps *Counter

	WindowHours       *Histogram
	QueueWaitHours    *Histogram
	TransferHours     *Histogram
	RetryWaitHours    *Histogram
	HedgeOverlapHours *Histogram
	DetectWaitHours   *Histogram
	DegradedLatencyMs *Histogram
}

// NewRecoveryMetrics resolves the recovery-engine handles on r.
func NewRecoveryMetrics(r *Registry) *RecoveryMetrics {
	return &RecoveryMetrics{
		BlocksRebuilt:   r.Counter(MetricBlocksRebuilt),
		Dropped:         r.Counter(MetricRebuildsDropped),
		Redirections:    r.Counter(MetricRedirections),
		Resourcings:     r.Counter(MetricResourcings),
		Retries:         r.Counter(MetricRetries),
		TransientFaults: r.Counter(MetricTransientFaults),
		Hedges:          r.Counter(MetricHedges),
		HedgeWins:       r.Counter(MetricHedgeWins),
		Timeouts:        r.Counter(MetricTimeouts),
		SlowFlagged:     r.Counter(MetricSlowFlagged),
		SlowEvicted:     r.Counter(MetricSlowEvicted),
		SpareWaits:      r.Counter(MetricSpareWaits),
		SparesUsed:      r.Counter(MetricSparesUsed),

		CrossRackTransfers: r.Counter(MetricCrossRackTransfers),
		CrossRackBytes:     r.Counter(MetricCrossRackBytes),
		ParkedTransfers:    r.Counter(MetricParkedTransfers),

		DegradedReads: r.Counter(MetricDegradedReads),
		ThrottleSteps: r.Counter(MetricThrottleSteps),

		WindowHours:       r.Histogram(MetricWindowHours, PhaseBounds),
		QueueWaitHours:    r.Histogram(MetricQueueWaitHours, PhaseBounds),
		TransferHours:     r.Histogram(MetricTransferHours, PhaseBounds),
		RetryWaitHours:    r.Histogram(MetricRetryWaitHours, PhaseBounds),
		HedgeOverlapHours: r.Histogram(MetricHedgeOverlapHours, PhaseBounds),
		DetectWaitHours:   r.Histogram(MetricDetectWaitHours, PhaseBounds),
		DegradedLatencyMs: r.Histogram(MetricDegradedLatency, LatencyBounds),
	}
}

// SimMetrics is the simulator-level handle bundle (internal/core).
type SimMetrics struct {
	DiskFailures     *Counter
	DataLossGroups   *Counter
	BatchesAdded     *Counter
	DisksAdded       *Counter
	Predicted        *Counter
	DrainedBlocks    *Counter
	LSEInjected      *Counter
	LSEDetected      *Counter
	ScrubFound       *Counter
	Bursts           *Counter
	BurstKills       *Counter
	FailSlowOnsets   *Counter
	FailSlowRecovers *Counter
	SlowBursts       *Counter
	SwitchFails      *Counter
	RackPowerEvents  *Counter
	Partitions       *Counter
	PartitionHeals   *Counter
	FalseDeadRacks   *Counter
	FalseDeadDisks   *Counter

	DemandBursts  *Counter
	DrainsPlanned *Counter
	UpgradeWins   *Counter
	GrowthBatches *Counter
	GrowthDisks   *Counter

	ActiveRebuilds *Gauge
	QueuedRebuilds *Gauge
	BusyDisks      *Gauge
	RecoveryMBps   *Gauge
	DegradedGroups *Gauge
	LostGroups     *Gauge
	SparePoolFree  *Gauge
	AliveDisks     *Gauge
	SlowDisks      *Gauge
	SuspectDisks   *Gauge
	UserLoadShare  *Gauge
	ThrottleMBps   *Gauge
}

// NewSimMetrics resolves the simulator-level handles on r.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		DiskFailures:     r.Counter(MetricDiskFailures),
		DataLossGroups:   r.Counter(MetricDataLossGroups),
		BatchesAdded:     r.Counter(MetricBatchesAdded),
		DisksAdded:       r.Counter(MetricDisksAdded),
		Predicted:        r.Counter(MetricPredicted),
		DrainedBlocks:    r.Counter(MetricDrainedBlocks),
		LSEInjected:      r.Counter(MetricLSEInjected),
		LSEDetected:      r.Counter(MetricLSEDetected),
		ScrubFound:       r.Counter(MetricScrubFound),
		Bursts:           r.Counter(MetricBursts),
		BurstKills:       r.Counter(MetricBurstKills),
		FailSlowOnsets:   r.Counter(MetricFailSlowOnsets),
		FailSlowRecovers: r.Counter(MetricFailSlowRecovers),
		SlowBursts:       r.Counter(MetricSlowBursts),
		SwitchFails:      r.Counter(MetricSwitchFails),
		RackPowerEvents:  r.Counter(MetricRackPowerEvents),
		Partitions:       r.Counter(MetricPartitions),
		PartitionHeals:   r.Counter(MetricPartitionHeals),
		FalseDeadRacks:   r.Counter(MetricFalseDeadRacks),
		FalseDeadDisks:   r.Counter(MetricFalseDeadDisks),

		DemandBursts:  r.Counter(MetricDemandBursts),
		DrainsPlanned: r.Counter(MetricDrainsPlanned),
		UpgradeWins:   r.Counter(MetricUpgradeWins),
		GrowthBatches: r.Counter(MetricGrowthBatches),
		GrowthDisks:   r.Counter(MetricGrowthDisks),

		ActiveRebuilds: r.Gauge(MetricActiveRebuilds),
		QueuedRebuilds: r.Gauge(MetricQueuedRebuilds),
		BusyDisks:      r.Gauge(MetricBusyDisks),
		RecoveryMBps:   r.Gauge(MetricRecoveryMBps),
		DegradedGroups: r.Gauge(MetricDegradedGroups),
		LostGroups:     r.Gauge(MetricLostGroups),
		SparePoolFree:  r.Gauge(MetricSparePoolFree),
		AliveDisks:     r.Gauge(MetricAliveDisks),
		SlowDisks:      r.Gauge(MetricSlowDisks),
		SuspectDisks:   r.Gauge(MetricSuspectDisks),
		UserLoadShare:  r.Gauge(MetricUserLoadShare),
		ThrottleMBps:   r.Gauge(MetricThrottleMBps),
	}
}

// FaultMetrics is the fault-injector handle bundle (internal/faults):
// read-probe classification counters.
type FaultMetrics struct {
	ProbeReads     *Counter
	ProbeTransient *Counter
	ProbeLatent    *Counter
}

// NewFaultMetrics resolves the fault-injector handles on r.
func NewFaultMetrics(r *Registry) *FaultMetrics {
	return &FaultMetrics{
		ProbeReads:     r.Counter(MetricProbeReads),
		ProbeTransient: r.Counter(MetricProbeTransient),
		ProbeLatent:    r.Counter(MetricProbeLatent),
	}
}

// StoreMetrics is the object-store handle bundle (internal/objstore):
// degraded-path data counters.
type StoreMetrics struct {
	DegradedReads  *Counter
	CorruptRegions *Counter
	Repairs        *Counter
	ShardsRebuilt  *Counter
}

// NewStoreMetrics resolves the object-store handles on r.
func NewStoreMetrics(r *Registry) *StoreMetrics {
	return &StoreMetrics{
		DegradedReads:  r.Counter(MetricObjDegradedReads),
		CorruptRegions: r.Counter(MetricObjCorruptRegions),
		Repairs:        r.Counter(MetricObjRepairs),
		ShardsRebuilt:  r.Counter(MetricObjShardsRebuilt),
	}
}

// RunObserver bundles the per-run observability configuration the core
// simulator threads through its layers. Every field is optional; the
// zero value (and a nil *RunObserver) disables the corresponding
// instrument and leaves the simulation untouched.
type RunObserver struct {
	// Registry, when non-nil, receives the metric catalogue of the run.
	Registry *Registry
	// Spans, when non-nil, records a rebuild-lifecycle span per block
	// rebuild.
	Spans *SpanLog
	// Series, when non-nil together with a positive SampleEveryHours,
	// receives periodic system-state samples.
	Series *Series
	// SampleEveryHours is the sampling cadence in simulated hours.
	SampleEveryHours float64

	// Memoized handle bundles over Registry, resolved on first use so
	// repeat runs against one observer re-register nothing and allocate
	// nothing (the metrics-on alloc parity gated by BENCH_5.json).
	sm *SimMetrics
	rm *RecoveryMetrics
	fm *FaultMetrics
}

// SimMetrics returns the simulator-level handle bundle over Registry,
// resolving it on first call. Registry must be non-nil.
func (o *RunObserver) SimMetrics() *SimMetrics {
	if o.sm == nil {
		o.sm = NewSimMetrics(o.Registry)
	}
	return o.sm
}

// RecoveryMetrics returns the recovery-engine handle bundle over
// Registry, resolving it on first call. Registry must be non-nil.
func (o *RunObserver) RecoveryMetrics() *RecoveryMetrics {
	if o.rm == nil {
		o.rm = NewRecoveryMetrics(o.Registry)
	}
	return o.rm
}

// FaultMetrics returns the fault-injector handle bundle over Registry,
// resolving it on first call. Registry must be non-nil.
func (o *RunObserver) FaultMetrics() *FaultMetrics {
	if o.fm == nil {
		o.fm = NewFaultMetrics(o.Registry)
	}
	return o.fm
}

// ErrSampleCadence reports an invalid sampler configuration.
var ErrSampleCadence = errors.New("obs: non-positive sample cadence with a Series configured")

// Validate checks the observer configuration.
func (o *RunObserver) Validate() error {
	if o == nil {
		return nil
	}
	if math.IsNaN(o.SampleEveryHours) || math.IsInf(o.SampleEveryHours, 0) {
		return fmt.Errorf("obs: SampleEveryHours is not finite")
	}
	if o.Series != nil && o.SampleEveryHours <= 0 {
		return ErrSampleCadence
	}
	return nil
}
