package recovery

import (
	"testing"

	"repro/internal/sim"
)

func TestSchedulerParallelWhenDisjoint(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 6)
	var doneAt []sim.Time
	for i := 0; i < 3; i++ {
		task := &Task{Group: i, Source: i * 2, Target: i*2 + 1, Duration: 10}
		s.Submit(task, func(now sim.Time, _ *Task) { doneAt = append(doneAt, now) })
	}
	eng.Run()
	if len(doneAt) != 3 {
		t.Fatalf("completed %d tasks", len(doneAt))
	}
	for _, at := range doneAt {
		if at != 10 {
			t.Fatalf("disjoint tasks did not run in parallel: done at %v", at)
		}
	}
	if s.Started != 3 || s.Completed != 3 {
		t.Fatalf("counters: started=%d completed=%d", s.Started, s.Completed)
	}
}

func TestSchedulerSerializesSharedTarget(t *testing.T) {
	// The no-FARM situation: every task writes to disk 5.
	eng := sim.New()
	s := NewScheduler(eng, 6)
	var doneAt []sim.Time
	for i := 0; i < 4; i++ {
		task := &Task{Group: i, Source: i, Target: 5, Duration: 10}
		s.Submit(task, func(now sim.Time, _ *Task) { doneAt = append(doneAt, now) })
	}
	eng.Run()
	want := []sim.Time{10, 20, 30, 40}
	if len(doneAt) != len(want) {
		t.Fatalf("completed %d tasks", len(doneAt))
	}
	for i, at := range doneAt {
		if at != want[i] {
			t.Fatalf("serialized completion %d at %v, want %v", i, at, want[i])
		}
	}
}

func TestSchedulerSerializesSharedSource(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 6)
	var doneAt []sim.Time
	for i := 0; i < 2; i++ {
		task := &Task{Group: i, Source: 0, Target: i + 1, Duration: 5}
		s.Submit(task, func(now sim.Time, _ *Task) { doneAt = append(doneAt, now) })
	}
	eng.Run()
	if len(doneAt) != 2 || doneAt[0] != 5 || doneAt[1] != 10 {
		t.Fatalf("shared source not serialized: %v", doneAt)
	}
}

func TestSchedulerChainedDependency(t *testing.T) {
	// t1 uses (0,1); t2 uses (1,2); t3 uses (2,3). At submit time t2's
	// source (1) is busy, so t2 waits for t1; t3's disks are both free,
	// so t3 runs alongside t1. Completion order: 1 and 3 at t=10 (FIFO),
	// then 2 at t=20.
	eng := sim.New()
	s := NewScheduler(eng, 4)
	var order []int
	submit := func(id, src, tgt int) {
		s.Submit(&Task{Group: id, Source: src, Target: tgt, Duration: 10},
			func(now sim.Time, _ *Task) { order = append(order, id) })
	}
	submit(1, 0, 1)
	submit(2, 1, 2)
	submit(3, 2, 3)
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("chain order %v, want [1 3 2]", order)
	}
	if eng.Now() != 20 {
		t.Fatalf("finished at %v, want 20", eng.Now())
	}
}

func TestSchedulerRefileBetweenQueues(t *testing.T) {
	// t2 parks on busy target 2; when 2 frees, its source 1 is still busy
	// (t3 holds it), so t2 re-files onto disk 1's queue and runs last.
	eng := sim.New()
	s := NewScheduler(eng, 4)
	var order []int
	add := func(id, src, tgt int, dur sim.Time) {
		s.Submit(&Task{Group: id, Source: src, Target: tgt, Duration: dur},
			func(now sim.Time, _ *Task) { order = append(order, id) })
	}
	add(1, 0, 2, 5)  // holds 2 until t=5
	add(3, 1, 3, 20) // holds 1 until t=20
	add(2, 1, 2, 5)  // target 2 busy -> parks on 2; at t=5 re-files to 1; runs at 20
	eng.Run()
	if len(order) != 3 || order[len(order)-1] != 2 {
		t.Fatalf("re-file order %v, want task 2 last", order)
	}
}

func TestSchedulerCancelPending(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 3)
	done := 0
	t1 := &Task{Group: 1, Source: 0, Target: 1, Duration: 10}
	t2 := &Task{Group: 2, Source: 0, Target: 2, Duration: 10}
	s.Submit(t1, func(sim.Time, *Task) { done++ })
	s.Submit(t2, func(sim.Time, *Task) { done++ })
	if !s.Cancel(t2) {
		t.Fatal("cancel pending failed")
	}
	eng.Run()
	if done != 1 {
		t.Fatalf("done = %d, want 1 (cancelled task must not fire)", done)
	}
	if !t2.Cancelled() || !t1.Done() {
		t.Fatal("task states wrong")
	}
}

func TestSchedulerCancelRunningFreesDisks(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 3)
	done := 0
	t1 := &Task{Group: 1, Source: 0, Target: 1, Duration: 100}
	t2 := &Task{Group: 2, Source: 0, Target: 2, Duration: 10}
	s.Submit(t1, func(sim.Time, *Task) { done++ })
	s.Submit(t2, func(sim.Time, *Task) { done++ })
	if !s.Busy(0) || !s.Busy(1) {
		t.Fatal("t1 should be running")
	}
	s.Cancel(t1)
	if s.Busy(1) {
		t.Fatal("cancel did not free target")
	}
	eng.Run()
	if done != 1 {
		t.Fatalf("done = %d, want 1", done)
	}
	if eng.Now() != 10 {
		t.Fatalf("t2 should have started immediately after cancel; ended at %v", eng.Now())
	}
}

func TestSchedulerCancelDoneReturnsFalse(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 2)
	task := &Task{Group: 1, Source: 0, Target: 1, Duration: 1}
	s.Submit(task, nil)
	eng.Run()
	if s.Cancel(task) {
		t.Fatal("cancelling a done task returned true")
	}
}

func TestSchedulerGrow(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 2)
	s.Grow(5)
	task := &Task{Group: 1, Source: 0, Target: 4, Duration: 1}
	s.Submit(task, nil)
	eng.Run()
	if !task.Done() {
		t.Fatal("task on grown disk slot did not run")
	}
	if s.QueueLen(4) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestSchedulerSameSourceTargetPanics(t *testing.T) {
	eng := sim.New()
	s := NewScheduler(eng, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("source == target did not panic")
		}
	}()
	s.Submit(&Task{Group: 1, Source: 1, Target: 1, Duration: 1}, nil)
}

func TestSchedulerFIFOFairness(t *testing.T) {
	// Tasks contending on one target complete in submission order.
	eng := sim.New()
	s := NewScheduler(eng, 10)
	var order []int
	for i := 0; i < 8; i++ {
		id := i
		s.Submit(&Task{Group: id, Source: id, Target: 9, Duration: 1},
			func(now sim.Time, _ *Task) { order = append(order, id) })
	}
	eng.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}
