package recovery

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SpareDisk is the traditional RAID baseline the paper compares against:
// when a drive fails, a fresh dedicated spare is activated and *every*
// block of the failed drive is rebuilt onto that one spare. The spare's
// single recovery slot serializes the transfers, so the window of
// vulnerability covers the whole disk rebuild ("reconstruction requests
// queue up at the single recovery target", §3.2).
type SpareDisk struct {
	base
	spawn DiskSpawner
	// spareFor maps a failed disk to the spare rebuilding it, and
	// spareRole maps a spare back to its failed disk, so a spare failure
	// can re-drive the remaining work onto a new spare.
	spareFor  map[int]int
	spareRole map[int]int
}

// NewSpareDisk returns the traditional engine. spawn provisions fresh
// spare drives on demand (the simulator schedules their failures). bw
// supplies the per-disk recovery bandwidth (use FixedBW for the paper's
// base model).
func NewSpareDisk(cl *cluster.Cluster, eng *sim.Engine, sched *Scheduler, bw workload.BandwidthModel, spawn DiskSpawner) *SpareDisk {
	return &SpareDisk{
		base:      newBase(cl, eng, sched, bw),
		spawn:     spawn,
		spareFor:  make(map[int]int),
		spareRole: make(map[int]int),
	}
}

// Name implements Engine.
func (s *SpareDisk) Name() string { return "spare" }

// HandleDetection activates a spare for the failed disk and queues every
// lost block onto it.
func (s *SpareDisk) HandleDetection(now sim.Time, diskID int, failedAt sim.Time, lost []cluster.BlockRef) {
	if len(lost) == 0 {
		return // nothing resided on the drive; no spare needed
	}
	spare := s.activateSpare(now, diskID)
	for _, ref := range lost {
		s.startRebuild(failedAt, int(ref.Group), int(ref.Rep), spare)
	}
}

// activateSpare provisions the dedicated replacement drive for failed.
func (s *SpareDisk) activateSpare(now sim.Time, failed int) int {
	spare := s.spawn(now)
	s.sched.Grow(s.cl.NumDisks())
	s.spareFor[failed] = spare
	s.spareRole[spare] = failed
	s.stats.SparesUsed++
	return spare
}

// startRebuild queues one block onto the designated spare.
func (s *SpareDisk) startRebuild(failedAt sim.Time, group, rep, spare int) {
	grp := &s.cl.Groups[group]
	if grp.Lost {
		s.stats.DroppedLost++
		return
	}
	src := s.cl.SourceFor(group, spare)
	if src < 0 {
		s.stats.DroppedLost++
		return
	}
	if !s.cl.ReserveTarget(spare) {
		// The spare cannot be full in the paper's regime (a fresh drive
		// absorbing at most one failed drive's data); treat as dropped.
		s.stats.DroppedLost++
		return
	}
	r := &rebuild{failedAt: failedAt}
	r.task = &Task{
		Group:    group,
		Rep:      rep,
		Source:   src,
		Target:   spare,
		Duration: s.blockDuration(),
	}
	s.track(r)
	s.sched.Submit(r.task, func(now sim.Time, _ *Task) { s.complete(now, r) })
}

// HandleFailure reacts to any disk death: if it was an active spare, the
// outstanding work restarts on a new spare; rebuilds sourced from the dead
// disk are re-sourced.
func (s *SpareDisk) HandleFailure(now sim.Time, diskID int) {
	if failed, ok := s.spareRole[diskID]; ok {
		delete(s.spareRole, diskID)
		delete(s.spareFor, failed)
		asSource, asTarget := s.rebuildsTouching(diskID)
		if len(asTarget) > 0 {
			replacement := s.activateSpare(now, failed)
			for _, r := range asTarget {
				s.sched.Cancel(r.task)
				s.untrack(r)
				if s.cl.Groups[r.task.Group].Lost {
					s.stats.DroppedLost++
					continue
				}
				s.stats.Redirections++
				s.startRebuild(r.failedAt, r.task.Group, r.task.Rep, replacement)
			}
		}
		for _, r := range asSource {
			if r.task.Source == diskID {
				s.resource(r)
			}
		}
		return
	}
	asSource, asTarget := s.rebuildsTouching(diskID)
	// A regular data disk died. Rebuilds targeting it do not exist under
	// this engine (targets are always spares) unless bookkeeping broke.
	for _, r := range asTarget {
		s.sched.Cancel(r.task)
		s.untrack(r)
		s.stats.DroppedLost++
	}
	for _, r := range asSource {
		if r.task.Source == diskID {
			s.resource(r)
		}
	}
}

// SpareOf returns the active spare for a failed disk, or -1 (test hook).
func (s *SpareDisk) SpareOf(failed int) int {
	if sp, ok := s.spareFor[failed]; ok {
		return sp
	}
	return -1
}
