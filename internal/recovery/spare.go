package recovery

import (
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SpareDisk is the traditional RAID baseline the paper compares against:
// when a drive fails, a fresh dedicated spare is activated and *every*
// block of the failed drive is rebuilt onto that one spare. The spare's
// single recovery slot serializes the transfers, so the window of
// vulnerability covers the whole disk rebuild ("reconstruction requests
// queue up at the single recovery target", §3.2).
//
// The paper assumes an inexhaustible supply of spares. With a finite
// pool configured (ConfigureSparePool), activations beyond the pool do
// not fail: the work queues FIFO until a replenishment drive arrives,
// degrading gracefully at the cost of longer windows of vulnerability.
type SpareDisk struct {
	base
	spawn DiskSpawner
	// spareFor maps a failed disk to the spare rebuilding it, and
	// spareRole maps a spare back to its failed disk, so a spare failure
	// can re-drive the remaining work onto a new spare.
	spareFor  map[int]int
	spareRole map[int]int
	// pool is the number of spare drives available for immediate
	// activation; -1 (the default) models the paper's unlimited supply.
	pool int
	// replenish is the lead time for a consumed spare's replacement.
	replenish sim.Time
	// waiting queues recovery work that found the pool empty.
	waiting []spareWork
}

// pendingBlock is one block rebuild awaiting a spare.
type pendingBlock struct {
	group, rep int
	failedAt   sim.Time
	// span is the block's lifecycle span carried across the wait (nil
	// when spans are disabled); parkedAt is when the block joined the
	// queue — the wait folds into the span's queue-wait phase at drain.
	span     *obs.Span
	parkedAt sim.Time
}

// spareWork is the queued recovery work of one failed disk.
type spareWork struct {
	failed int
	blocks []pendingBlock
}

// NewSpareDisk returns the traditional engine. spawn provisions fresh
// spare drives on demand (the simulator schedules their failures). bw
// supplies the per-disk recovery bandwidth (use FixedBW for the paper's
// base model).
func NewSpareDisk(cl *cluster.Cluster, eng *sim.Engine, sched *Scheduler, bw workload.BandwidthModel, spawn DiskSpawner) *SpareDisk {
	return &SpareDisk{
		base:      newBase(cl, eng, sched, bw),
		spawn:     spawn,
		spareFor:  make(map[int]int),
		spareRole: make(map[int]int),
		pool:      -1,
	}
}

// Name implements Engine.
func (s *SpareDisk) Name() string { return "spare" }

// ConfigureSparePool bounds the dedicated-spare supply: size drives are
// on the shelf, and each consumed spare is reordered with the given
// lead time. size <= 0 restores the unlimited model.
func (s *SpareDisk) ConfigureSparePool(size int, replenishHours float64) {
	if size <= 0 {
		s.pool = -1
		return
	}
	s.pool = size
	s.replenish = sim.Time(replenishHours)
}

// SparePoolFree returns the spares available for immediate activation
// (-1 when unlimited) and the queued work items (test hook).
func (s *SpareDisk) SparePoolFree() (free, queued int) {
	return s.pool, len(s.waiting)
}

// takeSpare consumes one spare from the pool, scheduling its
// replenishment. Returns false when the pool is empty.
func (s *SpareDisk) takeSpare() bool {
	if s.pool < 0 {
		return true
	}
	if s.pool == 0 {
		return false
	}
	s.pool--
	s.eng.After(s.replenish, "spare-replenish", func(at sim.Time) {
		s.pool++
		s.drainSpareQueue(at)
	})
	return true
}

// queueSpareWork parks recovery work until a spare arrives.
func (s *SpareDisk) queueSpareWork(now sim.Time, failed int, blocks []pendingBlock) {
	s.stats.SpareWaits++
	s.rm.SpareWaits.Inc()
	s.waiting = append(s.waiting, spareWork{failed: failed, blocks: blocks})
	s.observe(now, trace.KindSpareQueued, -1, -1, failed)
}

// drainSpareQueue activates spares for queued work, FIFO, as the pool
// allows.
func (s *SpareDisk) drainSpareQueue(now sim.Time) {
	for len(s.waiting) > 0 && s.takeSpare() {
		w := s.waiting[0]
		s.waiting = s.waiting[1:]
		spare := s.activateSpare(now, w.failed)
		for _, pb := range w.blocks {
			if pb.span != nil {
				// Hours spent waiting for a spare are queue wait.
				pb.span.QueueWait += float64(now - pb.parkedAt)
			}
			// startRebuild drops blocks whose group died while waiting.
			s.startRebuild(pb.failedAt, pb.group, pb.rep, spare, pb.span)
		}
	}
}

// HandleDetection activates a spare for the failed disk and queues every
// lost block onto it; with an exhausted pool the work waits instead.
func (s *SpareDisk) HandleDetection(now sim.Time, diskID int, failedAt sim.Time, lost []cluster.BlockRef) {
	if len(lost) == 0 {
		return // nothing resided on the drive; no spare needed
	}
	if !s.takeSpare() {
		blocks := make([]pendingBlock, len(lost))
		for i, ref := range lost {
			blocks[i] = pendingBlock{
				group: int(ref.Group), rep: int(ref.Rep), failedAt: failedAt,
				span: s.spanOpen(int(ref.Group), int(ref.Rep), failedAt), parkedAt: now,
			}
		}
		s.queueSpareWork(now, diskID, blocks)
		return
	}
	spare := s.activateSpare(now, diskID)
	for _, ref := range lost {
		s.startRebuild(failedAt, int(ref.Group), int(ref.Rep), spare, nil)
	}
}

// activateSpare provisions the dedicated replacement drive for failed.
// The caller must have consumed a pool slot via takeSpare.
func (s *SpareDisk) activateSpare(now sim.Time, failed int) int {
	spare := s.spawn(now)
	s.sched.Grow(s.cl.NumDisks())
	s.spareFor[failed] = spare
	s.spareRole[spare] = failed
	s.stats.SparesUsed++
	s.rm.SparesUsed.Inc()
	return spare
}

// startRebuild queues one block onto the designated spare. sp, when
// non-nil, is an existing lifecycle span carried over from an earlier
// attempt (spare death, spare-pool wait); nil opens a fresh one when
// spans are enabled.
func (s *SpareDisk) startRebuild(failedAt sim.Time, group, rep, spare int, sp *obs.Span) {
	if sp == nil {
		sp = s.spanOpen(group, rep, failedAt)
	}
	r := &rebuild{failedAt: failedAt, baseDur: s.blockDuration(), span: sp}
	if s.cl.GroupLost(group) {
		s.stats.DroppedLost++
		s.rm.Dropped.Inc()
		s.spanDropped(r, s.eng.Now())
		return
	}
	src := s.cl.SourceFor(group, spare)
	if src < 0 && s.net != nil {
		src = s.cl.AnySourceFor(group, spare)
	}
	if src < 0 {
		s.stats.DroppedLost++
		s.rm.Dropped.Inc()
		s.spanDropped(r, s.eng.Now())
		return
	}
	if !s.cl.ReserveTarget(spare) {
		// The spare cannot be full in the paper's regime (a fresh drive
		// absorbing at most one failed drive's data); treat as dropped.
		s.stats.DroppedLost++
		s.rm.Dropped.Inc()
		s.spanDropped(r, s.eng.Now())
		return
	}
	r.task = &Task{
		Group:    group,
		Rep:      rep,
		Source:   src,
		Target:   spare,
		Duration: s.effDuration(r.baseDur, src, spare),
	}
	s.track(r)
	s.submitTracked(r)
}

// HandleBlockLoss repairs a single damaged replica (a discovered latent
// sector error): traditional systems remap the bad sector and rewrite
// the block in place, so the repair targets the same drive when it is
// alive with space, falling back to any eligible drive otherwise.
func (s *SpareDisk) HandleBlockLoss(now sim.Time, failedAt sim.Time, diskID, group, rep int) {
	s.blockLoss(now, failedAt, diskID, group, rep, nil)
}

// blockLoss is HandleBlockLoss with an optional carried-over span (the
// target-death restart path re-drives repairs through here without
// opening a second span for the same block).
func (s *SpareDisk) blockLoss(now sim.Time, failedAt sim.Time, diskID, group, rep int, sp *obs.Span) {
	if sp == nil {
		sp = s.spanOpen(group, rep, failedAt)
	}
	r := &rebuild{failedAt: failedAt, baseDur: s.blockDuration(), span: sp}
	if s.cl.GroupLost(group) {
		s.stats.DroppedLost++
		s.rm.Dropped.Inc()
		s.spanDropped(r, now)
		return
	}
	target := -1
	if s.cl.Disks[diskID].State == disk.Alive && s.cl.ReserveTarget(diskID) {
		target = diskID
	} else {
		t, _, ok := s.pickTarget(group, rep, 0)
		if !ok {
			s.stats.DroppedLost++
			s.rm.Dropped.Inc()
			s.spanDropped(r, now)
			return
		}
		target = t
	}
	src := s.cl.SourceFor(group, target)
	if src < 0 && s.net != nil {
		src = s.cl.AnySourceFor(group, target)
	}
	if src < 0 {
		s.cl.ReleaseTarget(target)
		s.stats.DroppedLost++
		s.rm.Dropped.Inc()
		s.spanDropped(r, now)
		return
	}
	r.task = &Task{
		Group:    group,
		Rep:      rep,
		Source:   src,
		Target:   target,
		Duration: s.effDuration(r.baseDur, src, target),
	}
	s.track(r)
	s.submitTracked(r)
}

// HandleFailure reacts to any disk death: if it was an active spare, the
// outstanding work restarts on a new spare (or queues for one); rebuilds
// sourced from the dead disk are re-sourced.
func (s *SpareDisk) HandleFailure(now sim.Time, diskID int) {
	s.dropHedgesOn(diskID)
	if failed, ok := s.spareRole[diskID]; ok {
		delete(s.spareRole, diskID)
		delete(s.spareFor, failed)
		asSource, asTarget := s.rebuildsTouching(diskID)
		if len(asTarget) > 0 {
			if s.takeSpare() {
				replacement := s.activateSpare(now, failed)
				for _, r := range asTarget {
					s.spanEndAttempt(r, now)
					s.sched.Cancel(r.task)
					s.untrack(r)
					if s.cl.GroupLost(r.task.Group) {
						s.stats.DroppedLost++
						s.rm.Dropped.Inc()
						s.spanDropped(r, now)
						continue
					}
					s.stats.Redirections++
					s.rm.Redirections.Inc()
					if r.span != nil {
						r.span.Redirections++
					}
					s.startRebuild(r.failedAt, r.task.Group, r.task.Rep, replacement, r.span)
				}
			} else {
				// Pool exhausted mid-recovery: park the remaining work.
				blocks := make([]pendingBlock, 0, len(asTarget))
				for _, r := range asTarget {
					s.spanEndAttempt(r, now)
					s.sched.Cancel(r.task)
					s.untrack(r)
					if s.cl.GroupLost(r.task.Group) {
						s.stats.DroppedLost++
						s.rm.Dropped.Inc()
						s.spanDropped(r, now)
						continue
					}
					s.stats.Redirections++
					s.rm.Redirections.Inc()
					if r.span != nil {
						r.span.Redirections++
					}
					blocks = append(blocks, pendingBlock{
						group: r.task.Group, rep: r.task.Rep, failedAt: r.failedAt,
						span: r.span, parkedAt: now})
				}
				if len(blocks) > 0 {
					s.queueSpareWork(now, failed, blocks)
				}
			}
		}
		for _, r := range asSource {
			if r.task.Source == diskID {
				s.resource(r)
			}
		}
		return
	}
	asSource, asTarget := s.rebuildsTouching(diskID)
	// A regular data disk died. Rebuilds targeting it exist only for
	// latent-error repairs (in place or redirected); restart each on a
	// surviving drive so the replica is not silently forgotten.
	for _, r := range asTarget {
		s.spanEndAttempt(r, now)
		s.sched.Cancel(r.task)
		s.untrack(r)
		if s.cl.GroupLost(r.task.Group) {
			s.stats.DroppedLost++
			s.rm.Dropped.Inc()
			s.spanDropped(r, now)
			continue
		}
		s.stats.Redirections++
		s.rm.Redirections.Inc()
		if r.span != nil {
			r.span.Redirections++
		}
		s.blockLoss(now, r.failedAt, diskID, r.task.Group, r.task.Rep, r.span)
	}
	for _, r := range asSource {
		if r.task.Source == diskID {
			s.resource(r)
		}
	}
}

// SpareOf returns the active spare for a failed disk, or -1 (test hook).
func (s *SpareDisk) SpareOf(failed int) int {
	if sp, ok := s.spareFor[failed]; ok {
		return sp
	}
	return -1
}
