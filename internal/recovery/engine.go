package recovery

import (
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Stats aggregates recovery-engine behaviour over one run.
type Stats struct {
	// BlocksRebuilt counts completed block reconstructions.
	BlocksRebuilt int
	// Redirections counts recovery-target failures that forced the
	// rebuild to an alternative target (§2.3 "recovery redirection").
	Redirections int
	// Resourcings counts rebuilds whose read source failed (disk death,
	// latent sector error, or exhausted transient retries) and was
	// replaced by an alternative buddy.
	Resourcings int
	// DroppedLost counts rebuilds abandoned because the group lost data
	// or exhausted every source.
	DroppedLost int
	// Window accumulates per-block windows of vulnerability: failure
	// (not detection) to rebuild completion, in hours.
	Window metrics.Welford
	// SparesUsed counts replacement drives activated (SpareDisk engine).
	SparesUsed int
	// TransientFaults counts rebuild transfers whose source read failed
	// transiently (injected fault); Retries counts the backed-off
	// re-attempts those faults caused.
	TransientFaults int
	Retries         int
	// SpareWaits counts recovery jobs that found the spare pool empty
	// and had to queue (SpareDisk engine with a finite pool).
	SpareWaits int
}

// FaultModel is the injection surface the engines consult when a rebuild
// transfer completes; implemented by *faults.Injector. A nil model (the
// default) means no injected faults and no extra work on the hot path.
type FaultModel interface {
	// ProbeRead classifies the source read of a just-finished transfer.
	ProbeRead(now sim.Time, src, group int) faults.Outcome
	// RetryBackoff returns the delay before retry attempt n (1-based).
	RetryBackoff(attempt int) sim.Time
	// MaxRetries caps transient retries per source.
	MaxRetries() int
	// MaxResourcings caps source switches per rebuild.
	MaxResourcings() int
}

// Engine is a recovery strategy. The core simulator calls HandleFailure at
// the instant a disk dies (to fix up in-flight work) and HandleDetection
// once the failure is noticed (to start rebuilding the lost blocks).
type Engine interface {
	// HandleFailure reacts to disk diskID dying at now: rebuilds in
	// flight that read from or write to it must be redirected or
	// re-sourced.
	HandleFailure(now sim.Time, diskID int)
	// HandleDetection starts recovery for the blocks lost with diskID.
	// failedAt is the underlying failure time (now - failedAt is the
	// detection latency contribution to the vulnerability window).
	HandleDetection(now sim.Time, diskID int, failedAt sim.Time, lost []cluster.BlockRef)
	// HandleBlockLoss starts recovery for a single damaged replica —
	// a latent sector error discovered by a scrub or a rebuild read on
	// disk diskID. The block has already been unlinked from the cluster.
	HandleBlockLoss(now sim.Time, failedAt sim.Time, diskID, group, rep int)
	// SetFaultModel installs the fault-injection surface consulted when
	// transfers complete; nil (the default) disables probing.
	SetFaultModel(fm FaultModel)
	// Stats returns the engine's counters.
	Stats() *Stats
	// Name identifies the engine ("farm" or "spare").
	Name() string
	// SetObserver installs an optional callback fired when a block
	// rebuild completes ("rebuilt"), is abandoned ("dropped"), or is
	// retried after a transient fault ("retry"), for tracing.
	SetObserver(fn func(now sim.Time, kind string, group, rep, diskID int))
}

// DiskSpawner lets an engine add drives to the system; the simulator hooks
// it to schedule failure events for the new drives. Returns the disk ID.
type DiskSpawner func(now sim.Time) int

// rebuild carries the engine-level state of one block reconstruction.
type rebuild struct {
	task     *Task
	failedAt sim.Time // when the block was lost
	// trial is the candidate-stream position of the current target, so
	// redirection resumes the stream past it (FARM only).
	trial int
	// retries counts transient-fault retries against the current source;
	// resourcings counts source switches over the rebuild's lifetime.
	retries     int
	resourcings int
	// retryEv is the pending backed-off resubmission, if any; untrack
	// cancels it so redirection/re-sourcing/abandonment during a backoff
	// cannot leave a stale resubmission behind.
	retryEv *sim.Event
}

// base holds the machinery common to both engines.
type base struct {
	cl    *cluster.Cluster
	eng   *sim.Engine
	sched *Scheduler
	// bw yields the per-disk bandwidth available to a rebuild starting
	// at a given time (fixed in the paper's base experiments; diurnal
	// under adaptive recovery, §2.4).
	bw    workload.BandwidthModel
	stats Stats
	// active indexes live rebuilds by the disks they touch.
	bySource map[int][]*rebuild
	byTarget map[int][]*rebuild
	// perGroupTargets tracks in-flight rebuild targets per group so two
	// rebuilds of one group never pick the same disk. Values are tiny
	// (at most the group's missing-block count), so a slice with
	// swap-remove beats a nested map; emptied slices keep their backing
	// array for reuse, so steady-state tracking allocates nothing.
	perGroupTargets map[int][]int
	// observer, when set, sees rebuilt/dropped/retry block events.
	observer func(now sim.Time, kind string, group, rep, diskID int)
	// fm, when set, injects read faults into completing transfers.
	fm FaultModel
	// scratchSrc/scratchTgt are reusable buffers for rebuildsTouching:
	// handlers mutate the underlying indexes while iterating, so the
	// lists are copied — into these, not fresh slices.
	scratchSrc []*rebuild
	scratchTgt []*rebuild
}

func newBase(cl *cluster.Cluster, eng *sim.Engine, sched *Scheduler, bw workload.BandwidthModel) base {
	return base{
		cl:              cl,
		eng:             eng,
		sched:           sched,
		bw:              bw,
		bySource:        make(map[int][]*rebuild),
		byTarget:        make(map[int][]*rebuild),
		perGroupTargets: make(map[int][]int),
	}
}

func (b *base) Stats() *Stats { return &b.stats }

// SetObserver implements Engine.
func (b *base) SetObserver(fn func(now sim.Time, kind string, group, rep, diskID int)) {
	b.observer = fn
}

// SetFaultModel implements Engine.
func (b *base) SetFaultModel(fm FaultModel) { b.fm = fm }

// observe fires the observer if installed.
func (b *base) observe(now sim.Time, kind string, group, rep, diskID int) {
	if b.observer != nil {
		b.observer(now, kind, group, rep, diskID)
	}
}

// blockDuration is the transfer time of one block rebuild requested now.
func (b *base) blockDuration() sim.Time {
	mbps := b.bw.RecoveryMBps(float64(b.eng.Now()))
	return sim.Time(disk.RebuildHours(b.cl.BlockBytes, mbps))
}

// track registers a rebuild in the disk indexes.
func (b *base) track(r *rebuild) {
	b.bySource[r.task.Source] = append(b.bySource[r.task.Source], r)
	b.byTarget[r.task.Target] = append(b.byTarget[r.task.Target], r)
	b.perGroupTargets[r.task.Group] = append(b.perGroupTargets[r.task.Group], r.task.Target)
}

// untrack removes a rebuild from the disk indexes. It also cancels any
// pending backed-off resubmission: every path that untracks (success,
// abandonment, redirection, re-sourcing) supersedes a waiting retry.
func (b *base) untrack(r *rebuild) {
	if r.retryEv != nil {
		b.eng.Cancel(r.retryEv)
		r.retryEv = nil
	}
	b.bySource[r.task.Source] = removeRebuild(b.bySource[r.task.Source], r)
	b.byTarget[r.task.Target] = removeRebuild(b.byTarget[r.task.Target], r)
	tg := b.perGroupTargets[r.task.Group]
	for i, t := range tg {
		if t == r.task.Target {
			tg[i] = tg[len(tg)-1]
			// Keep the emptied slice in the map: its backing array is
			// reused by the next rebuild of this group.
			b.perGroupTargets[r.task.Group] = tg[:len(tg)-1]
			break
		}
	}
}

func removeRebuild(list []*rebuild, r *rebuild) []*rebuild {
	for i, x := range list {
		if x == r {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// complete finishes a rebuild: probe the source read for injected
// faults, then install the block and record the window.
func (b *base) complete(now sim.Time, r *rebuild) {
	if b.fm != nil {
		switch b.fm.ProbeRead(now, r.task.Source, r.task.Group) {
		case faults.ReadTransient:
			b.stats.TransientFaults++
			b.retryOrResource(now, r)
			return
		case faults.ReadLatent:
			// The damaged source replica has already been unlinked and
			// queued for repair by the injector's discovery handler
			// (which may have latched the group lost); this rebuild
			// switches to another buddy or drains through DroppedLost.
			r.retries = 0
			b.resourceChecked(now, r)
			return
		}
	}
	b.untrack(r)
	if b.cl.Groups[r.task.Group].Lost {
		// The group lost data while this block was in flight; the
		// reservation stands as wasted space dropped with the group.
		b.cl.ReleaseTarget(r.task.Target)
		b.stats.DroppedLost++
		b.observe(now, "dropped", r.task.Group, r.task.Rep, r.task.Target)
		return
	}
	b.cl.PlaceRecovered(r.task.Group, r.task.Rep, r.task.Target)
	b.stats.BlocksRebuilt++
	b.stats.Window.Add(float64(now - r.failedAt))
	b.observe(now, "rebuilt", r.task.Group, r.task.Rep, r.task.Target)
}

// abandon drops a rebuild whose group is beyond repair.
func (b *base) abandon(r *rebuild) {
	b.sched.Cancel(r.task)
	b.untrack(r)
	b.cl.ReleaseTarget(r.task.Target)
	b.stats.DroppedLost++
}

// resource replaces the failed read source of a rebuild, or abandons it if
// the group is lost.
func (b *base) resource(r *rebuild) {
	grp := &b.cl.Groups[r.task.Group]
	if grp.Lost {
		b.abandon(r)
		return
	}
	src := b.cl.SourceFor(r.task.Group, r.task.Target)
	if src < 0 {
		// No intact block remains; with Available < m the group is
		// already latched lost, so this is unreachable unless m == 0.
		b.abandon(r)
		return
	}
	b.sched.Cancel(r.task)
	b.untrack(r)
	nt := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   src,
		Target:   r.task.Target,
		Duration: r.task.Duration,
	}
	r.task = nt
	b.track(r)
	b.stats.Resourcings++
	b.sched.Submit(nt, func(now sim.Time, _ *Task) { b.complete(now, r) })
}

// resourceChecked re-sources a rebuild whose current source is unusable
// (latent error or exhausted retries), abandoning it through the
// DroppedLost path once the fault model's re-sourcing cap is exceeded —
// graceful degradation instead of an unbounded source-hopping loop.
func (b *base) resourceChecked(now sim.Time, r *rebuild) {
	r.resourcings++
	if b.fm != nil && r.resourcings > b.fm.MaxResourcings() {
		b.observe(now, "dropped", r.task.Group, r.task.Rep, r.task.Target)
		b.abandon(r)
		return
	}
	b.resource(r)
}

// retryOrResource reacts to a transient source-read fault: re-attempt
// the same transfer after capped exponential backoff, up to the fault
// model's retry cap, then escalate to re-sourcing. The rebuild stays
// tracked (its target reservation stands) during the backoff, so disk
// deaths in the window still find and fix it up.
func (b *base) retryOrResource(now sim.Time, r *rebuild) {
	if r.retries >= b.fm.MaxRetries() {
		r.retries = 0
		b.resourceChecked(now, r)
		return
	}
	r.retries++
	b.stats.Retries++
	// A fresh Task with identical endpoints: the finished task is spent
	// (scheduler state done), but the disk indexes key by endpoint, so
	// swapping the task pointer keeps tracking consistent.
	nt := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   r.task.Source,
		Target:   r.task.Target,
		Duration: r.task.Duration,
	}
	r.task = nt
	b.observe(now, "retry", nt.Group, nt.Rep, nt.Source)
	r.retryEv = b.eng.After(b.fm.RetryBackoff(r.retries), "rebuild-retry", func(at sim.Time) {
		r.retryEv = nil
		if b.cl.Groups[nt.Group].Lost {
			b.observe(at, "dropped", nt.Group, nt.Rep, nt.Target)
			b.abandon(r)
			return
		}
		b.sched.Submit(nt, func(done sim.Time, _ *Task) { b.complete(done, r) })
	})
}

// pickTarget applies the paper's target rules via the placement candidate
// stream, additionally excluding targets already claimed by in-flight
// rebuilds of the same group. It reserves space on the chosen disk. The
// exclusion set is the cluster's reusable epoch-stamped scratch, so the
// steady-state path performs no allocation.
func (b *base) pickTarget(group, rep, startTrial int) (target, trial int, ok bool) {
	exclude := b.cl.BuddyExcludes(group)
	for _, t := range b.perGroupTargets[group] {
		exclude.Add(t)
	}
	target, trial, err := b.cl.Hasher().RecoveryTarget(
		b.cl, uint64(group), rep, b.cl.BlockBytes, exclude, startTrial)
	if err != nil {
		return -1, 0, false
	}
	if !b.cl.ReserveTarget(target) {
		// Raced with another reservation landing between Eligible and
		// Reserve; walk further down the stream.
		t2, tr2, err2 := b.cl.Hasher().RecoveryTarget(
			b.cl, uint64(group), rep, b.cl.BlockBytes, exclude, trial+1)
		if err2 != nil || !b.cl.ReserveTarget(t2) {
			return -1, 0, false
		}
		return t2, tr2, true
	}
	return target, trial, true
}

// rebuildsTouching returns copies of the rebuild lists for a disk, since
// handlers mutate the underlying indexes. The copies live in reusable
// scratch buffers owned by the engine (valid until the next call); the
// simulation loop is single-threaded and handlers do not re-enter, so
// one pair of buffers suffices and steady state allocates nothing.
func (b *base) rebuildsTouching(diskID int) (asSource, asTarget []*rebuild) {
	b.scratchSrc = append(b.scratchSrc[:0], b.bySource[diskID]...)
	b.scratchTgt = append(b.scratchTgt[:0], b.byTarget[diskID]...)
	return b.scratchSrc, b.scratchTgt
}
