package recovery

import (
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Stats aggregates recovery-engine behaviour over one run.
type Stats struct {
	// BlocksRebuilt counts completed block reconstructions.
	BlocksRebuilt int
	// Redirections counts recovery-target failures that forced the
	// rebuild to an alternative target (§2.3 "recovery redirection").
	Redirections int
	// Resourcings counts rebuilds whose read source failed (disk death,
	// latent sector error, or exhausted transient retries) and was
	// replaced by an alternative buddy.
	Resourcings int
	// DroppedLost counts rebuilds abandoned because the group lost data
	// or exhausted every source.
	DroppedLost int
	// Window accumulates per-block windows of vulnerability: failure
	// (not detection) to rebuild completion, in hours.
	Window metrics.Welford
	// SparesUsed counts replacement drives activated (SpareDisk engine).
	SparesUsed int
	// TransientFaults counts rebuild transfers whose source read failed
	// transiently (injected fault); Retries counts the backed-off
	// re-attempts those faults caused.
	TransientFaults int
	Retries         int
	// SpareWaits counts recovery jobs that found the spare pool empty
	// and had to queue (SpareDisk engine with a finite pool).
	SpareWaits int
	// Hedges counts duplicate transfers launched for rebuilds stuck past
	// the hedge deadline; HedgeWins counts hedges that finished before
	// their primaries (straggler mitigation).
	Hedges    int
	HedgeWins int
	// Timeouts counts rebuilds hard-aborted past the timeout multiple and
	// pushed through the retry/re-source/abandon ladder.
	Timeouts int
	// SlowFlagged counts disks newly flagged slow by the peer-comparison
	// detector; Evictions counts disks it evicted (terminal, once each).
	SlowFlagged int
	Evictions   int
	// WindowP50/WindowP99 are streaming quantiles of the same per-block
	// vulnerability windows Window accumulates — the rebuild-time tail the
	// fail-slow experiment reports. P² estimators: O(1) memory, no
	// allocation after newBase.
	WindowP50 metrics.P2Quantile
	WindowP99 metrics.P2Quantile
	// Parked counts rebuilds parked against an unreachable endpoint (a
	// dark rack) instead of being abandoned; CrossRackTransfers and
	// CrossRackBytes tally completed transfers that crossed the rack
	// fabric — the repair traffic the oversubscribed spine carries.
	Parked             int
	CrossRackTransfers int
	CrossRackBytes     int64
	// DegradedReads counts user reads served by k-way reconstruction
	// during a block's window of vulnerability; DegradedMs accumulates
	// their latencies (milliseconds) and DegradedP50/DegradedP99 are the
	// streaming quantiles of the same samples. HealthyP99 is the tail of
	// the counterfactual healthy-read latencies sampled at the same
	// instants — the user-visible cost of the window is the gap.
	DegradedReads int
	DegradedMs    metrics.Welford
	DegradedP50   metrics.P2Quantile
	DegradedP99   metrics.P2Quantile
	HealthyP99    metrics.P2Quantile
	// ThrottleSteps counts recovery-rate changes the QoS policy made;
	// ThrottleMBps accumulates the rate granted at each decision point.
	ThrottleSteps int
	ThrottleMBps  metrics.Welford
	// FencedParks counts rebuilds parked against a write-fenced
	// (read-only, mid-upgrade) target.
	FencedParks int
}

// FaultModel is the injection surface the engines consult when a rebuild
// transfer completes; implemented by *faults.Injector. A nil model (the
// default) means no injected faults and no extra work on the hot path.
type FaultModel interface {
	// ProbeRead classifies the source read of a just-finished transfer.
	ProbeRead(now sim.Time, src, group int) faults.Outcome
	// RetryBackoff returns the delay before retry attempt n (1-based).
	RetryBackoff(attempt int) sim.Time
	// MaxRetries caps transient retries per source.
	MaxRetries() int
	// MaxResourcings caps source switches per rebuild.
	MaxResourcings() int
}

// Engine is a recovery strategy. The core simulator calls HandleFailure at
// the instant a disk dies (to fix up in-flight work) and HandleDetection
// once the failure is noticed (to start rebuilding the lost blocks).
type Engine interface {
	// HandleFailure reacts to disk diskID dying at now: rebuilds in
	// flight that read from or write to it must be redirected or
	// re-sourced.
	HandleFailure(now sim.Time, diskID int)
	// HandleDetection starts recovery for the blocks lost with diskID.
	// failedAt is the underlying failure time (now - failedAt is the
	// detection latency contribution to the vulnerability window).
	HandleDetection(now sim.Time, diskID int, failedAt sim.Time, lost []cluster.BlockRef)
	// HandleBlockLoss starts recovery for a single damaged replica —
	// a latent sector error discovered by a scrub or a rebuild read on
	// disk diskID. The block has already been unlinked from the cluster.
	HandleBlockLoss(now sim.Time, failedAt sim.Time, diskID, group, rep int)
	// SetFaultModel installs the fault-injection surface consulted when
	// transfers complete; nil (the default) disables probing.
	SetFaultModel(fm FaultModel)
	// SetStraggler installs the straggler-mitigation policy (defaults
	// filled) and the eviction callback fired when the peer-comparison
	// detector condemns a persistently slow disk. A disabled policy (the
	// zero value) leaves every code path untouched.
	SetStraggler(p StragglerPolicy, evict func(now sim.Time, diskID int))
	// Stats returns the engine's counters.
	Stats() *Stats
	// Name identifies the engine ("farm" or "spare").
	Name() string
	// SetObserver installs an optional callback fired when a block
	// rebuild completes ("rebuilt"), is abandoned ("dropped"), or is
	// retried after a transient fault ("retry"), for tracing.
	SetObserver(fn func(now sim.Time, kind trace.Kind, group, rep, diskID int))
	// SetObservability installs the flight-recorder surfaces: the
	// pre-resolved metrics bundle (nil restores the no-op sink) and the
	// rebuild-lifecycle span log (nil disables span accounting).
	SetObservability(rm *obs.RecoveryMetrics, spans *obs.SpanLog)
	// InFlight returns the number of tracked block rebuilds (read-only;
	// feeds the state sampler).
	InFlight() int
	// SetTopology installs the run's network fabric: transfer durations
	// become contention-shaped, unreachable endpoints park rebuilds, and
	// re-sourcing prefers reachable racks. Nil (the default) keeps the
	// flat model bit-for-bit.
	SetTopology(net *topology.Network)
	// HandleUnreachable reacts to diskID's rack going dark at now:
	// rebuilds writing to it park, rebuilds reading from it re-source
	// (or park when no reachable buddy exists).
	HandleUnreachable(now sim.Time, diskID int)
	// HandleReachable reacts to diskID's rack healing: rebuilds parked
	// against the disk resubmit.
	HandleReachable(now sim.Time, diskID int)
	// SetForeground installs the run's foreground-traffic bundle: rebuild
	// transfers contend with user load, the throttle policy governs the
	// recovery rate, and completed windows sample degraded-read latency.
	// Nil (the default) keeps every fast path bit-for-bit.
	SetForeground(fg *workload.Foreground)
	// SetDetailObserver installs the detail-bearing observer for
	// foreground events (degraded-read samples, throttle steps), which
	// carry a payload the positional observer cannot express.
	SetDetailObserver(fn func(now sim.Time, kind trace.Kind, group, rep, diskID int, detail string))
	// HandleWriteFence reacts to diskID turning read-only at now (a
	// rolling-upgrade window): rebuilds writing to it park. Reads are
	// unaffected — a fenced disk still serves as a rebuild source.
	HandleWriteFence(now sim.Time, diskID int)
	// HandleWriteUnfence reacts to diskID's write fence lifting: rebuilds
	// parked against it resubmit.
	HandleWriteUnfence(now sim.Time, diskID int)
}

// DiskSpawner lets an engine add drives to the system; the simulator hooks
// it to schedule failure events for the new drives. Returns the disk ID.
type DiskSpawner func(now sim.Time) int

// rebuild carries the engine-level state of one block reconstruction.
type rebuild struct {
	task     *Task
	failedAt sim.Time // when the block was lost
	// trial is the candidate-stream position of the current target, so
	// redirection resumes the stream past it (FARM only).
	trial int
	// retries counts transient-fault retries against the current source;
	// resourcings counts source switches over the rebuild's lifetime.
	retries     int
	resourcings int
	// retryEv is the pending backed-off resubmission, if any; untrack
	// cancels it so redirection/re-sourcing/abandonment during a backoff
	// cannot leave a stale resubmission behind.
	retryEv sim.Handle
	// baseDur is the healthy-model transfer duration fixed when the
	// rebuild was first created. It is the deadline reference for hedging
	// and timeouts and the base every (re)submission scales by the
	// endpoints' fail-slow factors; with no per-disk degradation every
	// submission uses it bit-for-bit unchanged.
	baseDur sim.Time
	// hedgeEv/timeoutEv are the pending straggler timers; hedgeTask is
	// the in-flight duplicate transfer (nil when none); hedges counts
	// duplicates launched over the rebuild's lifetime (capped).
	hedgeEv   sim.Handle
	timeoutEv sim.Handle
	hedgeTask *Task
	hedges    int
	// span is the rebuild's lifecycle span (nil when spans are
	// disabled); spanDone latches the current attempt's phase accounting
	// (see spanEndAttempt). retryArmedAt is when the pending backed-off
	// resubmission was armed; hedgeAt is when the in-flight hedge
	// launched — both feed the span's retry-wait/hedge-overlap phases.
	span         *obs.Span
	spanDone     bool
	retryArmedAt sim.Time
	hedgeAt      sim.Time
	// parked marks a rebuild suspended against an unreachable endpoint:
	// its task is cancelled and its timers disarmed, but it stays in the
	// disk indexes so heals (and endpoint deaths) find it.
	parked bool
}

// base holds the machinery common to both engines.
type base struct {
	cl    *cluster.Cluster
	eng   *sim.Engine
	sched *Scheduler
	// bw yields the per-disk bandwidth available to a rebuild starting
	// at a given time (fixed in the paper's base experiments; diurnal
	// under adaptive recovery, §2.4).
	bw    workload.BandwidthModel
	stats Stats
	// active indexes live rebuilds by the disks they touch.
	bySource map[int][]*rebuild
	byTarget map[int][]*rebuild
	// perGroupTargets tracks in-flight rebuild targets per group so two
	// rebuilds of one group never pick the same disk. Values are tiny
	// (at most the group's missing-block count), so a slice with
	// swap-remove beats a nested map; emptied slices keep their backing
	// array for reuse, so steady-state tracking allocates nothing.
	perGroupTargets map[int][]int
	// observer, when set, sees rebuilt/dropped/retry block events.
	observer func(now sim.Time, kind trace.Kind, group, rep, diskID int)
	// fm, when set, injects read faults into completing transfers.
	fm FaultModel
	// scratchSrc/scratchTgt are reusable buffers for rebuildsTouching:
	// handlers mutate the underlying indexes while iterating, so the
	// lists are copied — into these, not fresh slices.
	scratchSrc []*rebuild
	scratchTgt []*rebuild
	// pd is bw's per-disk view when the bandwidth model carries fail-slow
	// state (nil otherwise); cached so the hot path does not repeat the
	// interface assertion.
	pd workload.PerDiskModel
	// policy/det/evict are the straggler-mitigation layer; det is nil
	// (and every related code path dormant) until SetStraggler enables
	// the policy.
	policy StragglerPolicy
	det    *stragglerDetector
	evict  func(now sim.Time, diskID int)
	// hedgeByDisk indexes in-flight hedge transfers by both endpoints so
	// disk deaths can drop them.
	hedgeByDisk map[int][]*rebuild
	// rm is the flight-recorder metrics bundle. Never nil: newBase
	// installs a sink bundle on a private registry, so record sites need
	// no branches; SetObservability swaps in the real one.
	rm *obs.RecoveryMetrics
	// spans, when non-nil, receives one lifecycle span per block rebuild.
	spans *obs.SpanLog
	// inFlight counts tracked rebuilds (read-only sampler feed).
	inFlight int
	// net, when non-nil, is the run's network fabric (SetTopology).
	net *topology.Network
	// fg, when non-nil, is the run's foreground-traffic bundle
	// (SetForeground): demand contention, throttle policy, degraded-read
	// sampling. activeTargets counts distinct disks with in-flight
	// rebuild writes — the parallel-stream estimate the deadline policy's
	// repair bound divides the backlog by. lastThrottle is the previous
	// policy grant, for throttle-step detection.
	fg            *workload.Foreground
	activeTargets int
	lastThrottle  float64
	// detailObserver, when set, sees foreground events with a payload.
	detailObserver func(now sim.Time, kind trace.Kind, group, rep, diskID int, detail string)
}

func newBase(cl *cluster.Cluster, eng *sim.Engine, sched *Scheduler, bw workload.BandwidthModel) base {
	pd, _ := bw.(workload.PerDiskModel)
	b := base{
		cl:              cl,
		eng:             eng,
		sched:           sched,
		bw:              bw,
		pd:              pd,
		bySource:        make(map[int][]*rebuild),
		byTarget:        make(map[int][]*rebuild),
		perGroupTargets: make(map[int][]int),
		hedgeByDisk:     make(map[int][]*rebuild),
	}
	b.stats.WindowP50 = metrics.NewP2(0.5)
	b.stats.WindowP99 = metrics.NewP2(0.99)
	b.stats.DegradedP50 = metrics.NewP2(0.5)
	b.stats.DegradedP99 = metrics.NewP2(0.99)
	b.stats.HealthyP99 = metrics.NewP2(0.99)
	b.rm = obs.NewDiscardRecoveryMetrics()
	return b
}

func (b *base) Stats() *Stats { return &b.stats }

// SetObserver implements Engine.
func (b *base) SetObserver(fn func(now sim.Time, kind trace.Kind, group, rep, diskID int)) {
	b.observer = fn
}

// SetFaultModel implements Engine.
func (b *base) SetFaultModel(fm FaultModel) { b.fm = fm }

// SetStraggler implements Engine: it fills the policy defaults and, when
// enabled, builds the peer-comparison detector. evict (optional) is
// fired at most once per condemned disk; the core simulator binds it to
// the S.M.A.R.T. suspect/drain path.
func (b *base) SetStraggler(p StragglerPolicy, evict func(now sim.Time, diskID int)) {
	p = p.withDefaults()
	b.policy = p
	b.evict = evict
	if p.Enabled {
		b.det = newStragglerDetector(p, b.cl.NumDisks())
	} else {
		b.det = nil
	}
}

// observe fires the observer if installed.
func (b *base) observe(now sim.Time, kind trace.Kind, group, rep, diskID int) {
	if b.observer != nil {
		b.observer(now, kind, group, rep, diskID)
	}
}

// blockDuration is the healthy-model transfer time of one block rebuild
// requested now — the expectation deadlines are measured against. Under
// a throttle policy the policy's grant replaces the bandwidth model's
// curve (the policy *is* the recovery-rate decision).
func (b *base) blockDuration() sim.Time {
	var mbps float64
	if b.fg != nil && b.fg.Policy != nil {
		mbps = b.throttleMBps(float64(b.eng.Now()))
	} else {
		mbps = b.bw.RecoveryMBps(float64(b.eng.Now()))
	}
	return sim.Time(disk.RebuildHours(b.cl.BlockBytes, mbps))
}

// effDuration scales a healthy-model duration by the worse of the two
// endpoints' fail-slow factors and, when a demand model is installed, by
// the contention stretch of the busier endpoint's user share. With
// neither layer installed it returns baseDur bit-for-bit unchanged (no
// float operation), so the disabled layers cannot perturb schedules.
func (b *base) effDuration(baseDur sim.Time, src, tgt int) sim.Time {
	if b.pd == nil && b.fg == nil {
		return baseDur
	}
	f := 1.0
	if b.pd != nil {
		f = b.pd.SlowdownFactor(src)
		if g := b.pd.SlowdownFactor(tgt); g > f {
			f = g
		}
	}
	if b.fg != nil {
		now := float64(b.eng.Now())
		s := b.fg.Demand.Share(now, src)
		if t := b.fg.Demand.Share(now, tgt); t > s {
			s = t
		}
		f *= workload.ContentionFactor(s)
	}
	if f <= 1 {
		return baseDur
	}
	return sim.Time(float64(baseDur) * f)
}

// track registers a rebuild in the disk indexes.
//
//farm:hotpath in-flight index insert, gated by TestTrackUntrackSteadyStateZeroAlloc
func (b *base) track(r *rebuild) {
	b.bySource[r.task.Source] = append(b.bySource[r.task.Source], r)
	if len(b.byTarget[r.task.Target]) == 0 {
		b.activeTargets++
	}
	b.byTarget[r.task.Target] = append(b.byTarget[r.task.Target], r)
	b.perGroupTargets[r.task.Group] = append(b.perGroupTargets[r.task.Group], r.task.Target)
	b.inFlight++
}

// untrack removes a rebuild from the disk indexes. It also cancels any
// pending backed-off resubmission and any straggler timer or in-flight
// hedge: every path that untracks (success, abandonment, redirection,
// re-sourcing, hedge win) supersedes them.
//
//farm:hotpath in-flight index removal, gated by TestTrackUntrackSteadyStateZeroAlloc
func (b *base) untrack(r *rebuild) {
	b.cancelTimers(r)
	b.bySource[r.task.Source] = removeRebuild(b.bySource[r.task.Source], r)
	tl := removeRebuild(b.byTarget[r.task.Target], r)
	if len(tl) == 0 && len(b.byTarget[r.task.Target]) > 0 {
		b.activeTargets--
	}
	b.byTarget[r.task.Target] = tl
	tg := b.perGroupTargets[r.task.Group]
	for i, t := range tg {
		if t == r.task.Target {
			tg[i] = tg[len(tg)-1]
			// Keep the emptied slice in the map: its backing array is
			// reused by the next rebuild of this group.
			b.perGroupTargets[r.task.Group] = tg[:len(tg)-1]
			break
		}
	}
	b.inFlight--
}

// cancelTimers disarms a rebuild's pending backed-off resubmission,
// straggler timers, and in-flight hedge — shared by untrack and park
// (which keeps the rebuild in the indexes but must quiesce it).
//
//farm:hotpath timer teardown on every untrack
func (b *base) cancelTimers(r *rebuild) {
	if r.retryEv.Valid() {
		b.eng.Cancel(r.retryEv)
		r.retryEv = sim.Handle{}
		if r.span != nil {
			// The backoff was cut short; the hours actually waited are
			// still retry wait.
			r.span.RetryWait += float64(b.eng.Now() - r.retryArmedAt)
		}
	}
	if r.hedgeEv.Valid() {
		b.eng.Cancel(r.hedgeEv)
		r.hedgeEv = sim.Handle{}
	}
	if r.timeoutEv.Valid() {
		b.eng.Cancel(r.timeoutEv)
		r.timeoutEv = sim.Handle{}
	}
	if r.hedgeTask != nil {
		b.cancelHedge(r)
	}
}

func removeRebuild(list []*rebuild, r *rebuild) []*rebuild {
	for i, x := range list {
		if x == r {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// complete finishes a rebuild: probe the source read for injected
// faults, then install the block and record the window.
func (b *base) complete(now sim.Time, r *rebuild) {
	// The attempt ran to completion whatever the probe below says; fold
	// its queue wait and transfer time into the span now.
	b.spanEndAttempt(r, now)
	if b.fm != nil {
		switch b.fm.ProbeRead(now, r.task.Source, r.task.Group) {
		case faults.ReadTransient:
			b.stats.TransientFaults++
			b.rm.TransientFaults.Inc()
			b.retryOrResource(now, r)
			return
		case faults.ReadLatent:
			// The damaged source replica has already been unlinked and
			// queued for repair by the injector's discovery handler
			// (which may have latched the group lost); this rebuild
			// switches to another buddy or drains through DroppedLost.
			r.retries = 0
			b.resourceChecked(now, r)
			return
		}
	}
	b.untrack(r)
	if b.cl.GroupLost(r.task.Group) {
		// The group lost data while this block was in flight; the
		// reservation stands as wasted space dropped with the group.
		b.cl.ReleaseTarget(r.task.Target)
		b.stats.DroppedLost++
		b.rm.Dropped.Inc()
		b.spanDropped(r, now)
		b.observe(now, trace.KindDropped, r.task.Group, r.task.Rep, r.task.Target)
		return
	}
	b.cl.PlaceRecovered(r.task.Group, r.task.Rep, r.task.Target)
	b.stats.BlocksRebuilt++
	b.rm.BlocksRebuilt.Inc()
	b.noteCrossRack(r.task.Source, r.task.Target)
	w := float64(now - r.failedAt)
	b.stats.Window.Add(w)
	b.recordWindow(w)
	b.sampleDegradedReads(now, r, r.task, w)
	b.spanFinish(r, now, obs.OutcomeDone)
	b.noteTransfer(now, r.task)
	b.observe(now, trace.KindRebuilt, r.task.Group, r.task.Rep, r.task.Target)
}

// abandon drops a rebuild whose group is beyond repair.
func (b *base) abandon(r *rebuild) {
	now := b.eng.Now()
	b.spanEndAttempt(r, now)
	b.sched.Cancel(r.task)
	b.untrack(r)
	b.cl.ReleaseTarget(r.task.Target)
	b.stats.DroppedLost++
	b.rm.Dropped.Inc()
	b.spanDropped(r, now)
}

// resource replaces the failed read source of a rebuild, or abandons it if
// the group is lost.
func (b *base) resource(r *rebuild) {
	// The current attempt ends here whichever branch wins (abandon
	// re-checks via the latch).
	b.spanEndAttempt(r, b.eng.Now())
	if b.cl.GroupLost(r.task.Group) {
		b.abandon(r)
		return
	}
	// Prefer a buddy different from the source that just proved dead,
	// damaged, faulty, or slow; when it was the *only* intact buddy left
	// (alive after exhausted transient retries, say), fall back to it
	// rather than abandoning. Dead/unlinked sources are never candidates,
	// so the fallback changes nothing on those paths.
	src := b.cl.SourceForExcluding(r.task.Group, r.task.Source, r.task.Target)
	if src < 0 {
		src = b.cl.SourceFor(r.task.Group, r.task.Target)
	}
	if src < 0 {
		// No *reachable* intact block remains. Without topology that
		// means no intact block at all (with Available < m the group is
		// already latched lost, so this is unreachable unless m == 0).
		// With topology, an intact buddy may merely sit behind a dark
		// switch — park the rebuild until the rack heals instead of
		// converting a partition into data abandonment.
		if b.net != nil {
			if alt := b.cl.AnySourceFor(r.task.Group, r.task.Target); alt >= 0 {
				b.parkOnSource(r, alt)
				return
			}
		}
		b.abandon(r)
		return
	}
	if b.net != nil && !b.net.SameRack(src, r.task.Source) {
		// Topology-aware re-sourcing crossed the fabric to another rack
		// (typically fleeing a dark or dead one).
		b.observe(b.eng.Now(), trace.KindResourceCrossRack, r.task.Group, r.task.Rep, src)
	}
	b.sched.Cancel(r.task)
	b.untrack(r)
	nt := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   src,
		Target:   r.task.Target,
		Duration: b.effDuration(r.baseDur, src, r.task.Target),
	}
	r.task = nt
	b.track(r)
	b.stats.Resourcings++
	b.rm.Resourcings.Inc()
	if r.span != nil {
		r.span.Resourcings++
	}
	b.submitTracked(r)
}

// resourceChecked re-sources a rebuild whose current source is unusable
// (latent error or exhausted retries), abandoning it through the
// DroppedLost path once the fault model's re-sourcing cap is exceeded —
// graceful degradation instead of an unbounded source-hopping loop.
func (b *base) resourceChecked(now sim.Time, r *rebuild) {
	r.resourcings++
	if r.resourcings > b.maxResourcings() {
		b.observe(now, trace.KindDropped, r.task.Group, r.task.Rep, r.task.Target)
		b.abandon(r)
		return
	}
	b.resource(r)
}

// retryOrResource reacts to a transient source-read fault: re-attempt
// the same transfer after capped exponential backoff, up to the fault
// model's retry cap, then escalate to re-sourcing. The rebuild stays
// tracked (its target reservation stands) during the backoff, so disk
// deaths in the window still find and fix it up.
func (b *base) retryOrResource(now sim.Time, r *rebuild) {
	if r.retries >= b.fm.MaxRetries() {
		r.retries = 0
		b.resourceChecked(now, r)
		return
	}
	r.retries++
	b.stats.Retries++
	b.rm.Retries.Inc()
	if r.span != nil {
		r.span.Retries++
	}
	// A fresh Task with identical endpoints: the finished task is spent
	// (scheduler state done), but the disk indexes key by endpoint, so
	// swapping the task pointer keeps tracking consistent.
	nt := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   r.task.Source,
		Target:   r.task.Target,
		Duration: b.effDuration(r.baseDur, r.task.Source, r.task.Target),
	}
	r.task = nt
	r.retryArmedAt = now
	b.observe(now, trace.KindRetry, nt.Group, nt.Rep, nt.Source)
	r.retryEv = b.eng.After(b.fm.RetryBackoff(r.retries), "rebuild-retry", func(at sim.Time) {
		r.retryEv = sim.Handle{}
		if r.span != nil {
			r.span.RetryWait += float64(at - r.retryArmedAt)
		}
		if b.cl.GroupLost(nt.Group) {
			b.observe(at, trace.KindDropped, nt.Group, nt.Rep, nt.Target)
			b.abandon(r)
			return
		}
		b.submitTracked(r)
	})
}

// pickTarget applies the paper's target rules via the placement candidate
// stream, additionally excluding targets already claimed by in-flight
// rebuilds of the same group. It reserves space on the chosen disk. The
// exclusion set is the cluster's reusable epoch-stamped scratch, so the
// steady-state path performs no allocation.
//
//farm:hotpath FARM redirection/targeting, gated by TestFARMPickTargetZeroAlloc
func (b *base) pickTarget(group, rep, startTrial int) (target, trial int, ok bool) {
	if b.net != nil && b.net.RackAware() {
		return b.pickTargetSpread(group, rep, startTrial)
	}
	exclude := b.cl.BuddyExcludes(group)
	for _, t := range b.perGroupTargets[group] {
		exclude.Add(t)
	}
	target, trial, err := b.cl.Hasher().RecoveryTarget(
		b.cl, uint64(group), rep, b.cl.BlockBytes, exclude, startTrial)
	if err != nil {
		return -1, 0, false
	}
	if !b.cl.ReserveTarget(target) {
		// Raced with another reservation landing between Eligible and
		// Reserve; walk further down the stream.
		t2, tr2, err2 := b.cl.Hasher().RecoveryTarget(
			b.cl, uint64(group), rep, b.cl.BlockBytes, exclude, trial+1)
		if err2 != nil || !b.cl.ReserveTarget(t2) {
			return -1, 0, false
		}
		return t2, tr2, true
	}
	return target, trial, true
}

// pickTargetSpread is pickTarget under rack-aware placement: the
// candidate's rack must hold neither an intact block of the group nor a
// concurrent rebuild target's block, so a repaired group keeps the
// one-block-per-rack invariant.
//
//farm:hotpath rack-aware redirection/targeting, gated by TestSingleRunAllocCeiling
func (b *base) pickTargetSpread(group, rep, startTrial int) (target, trial int, ok bool) {
	exclude := b.cl.BuddyExcludes(group)
	rackEx := b.cl.BuddyRackExcludes(group)
	for _, t := range b.perGroupTargets[group] {
		exclude.Add(t)
		rackEx.Add(b.net.RackOf(t))
	}
	target, trial, err := b.cl.Hasher().RecoveryTargetSpread(
		b.cl, b.net, uint64(group), rep, b.cl.BlockBytes, exclude, rackEx, startTrial)
	if err != nil {
		return -1, 0, false
	}
	if !b.cl.ReserveTarget(target) {
		t2, tr2, err2 := b.cl.Hasher().RecoveryTargetSpread(
			b.cl, b.net, uint64(group), rep, b.cl.BlockBytes, exclude, rackEx, trial+1)
		if err2 != nil || !b.cl.ReserveTarget(t2) {
			return -1, 0, false
		}
		return t2, tr2, true
	}
	return target, trial, true
}

// rebuildsTouching returns copies of the rebuild lists for a disk, since
// handlers mutate the underlying indexes. The copies live in reusable
// scratch buffers owned by the engine (valid until the next call); the
// simulation loop is single-threaded and handlers do not re-enter, so
// one pair of buffers suffices and steady state allocates nothing.
//
//farm:hotpath failure fan-out scratch, reuses engine-owned buffers
func (b *base) rebuildsTouching(diskID int) (asSource, asTarget []*rebuild) {
	b.scratchSrc = append(b.scratchSrc[:0], b.bySource[diskID]...)
	b.scratchTgt = append(b.scratchTgt[:0], b.byTarget[diskID]...)
	return b.scratchSrc, b.scratchTgt
}
