// Package recovery implements the paper's two recovery engines and the
// disk-bandwidth scheduler beneath them.
//
//   - FARM: after a failure is detected, every affected redundancy group
//     rebuilds its lost block in parallel onto a *different* disk chosen
//     from the group's placement candidate list. The window of
//     vulnerability shrinks from "rebuild an entire disk" to "rebuild one
//     group" (§2.3).
//   - SpareDisk: the traditional RAID baseline — every lost block of the
//     failed drive is rebuilt onto a single dedicated replacement drive, so
//     reconstruction requests queue up at the one recovery target (§3.2).
//
// Both engines schedule rebuild work through a Scheduler that grants each
// disk one recovery transfer at a time (the paper caps recovery at 20% of a
// drive's bandwidth; a rebuild consumes that allotment on its source and on
// its target).
package recovery

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// taskState tracks a rebuild through its lifecycle.
type taskState uint8

const (
	taskPending taskState = iota
	taskRunning
	taskDone
	taskCancelled
)

// Task is one block rebuild: read from Source, write to Target, taking
// Duration of virtual time once both disks are free.
type Task struct {
	Group  int
	Rep    int
	Source int
	Target int
	// Duration is the transfer time once started.
	Duration sim.Time
	// SubmittedAt records when the rebuild was first requested, for
	// window-of-vulnerability statistics.
	SubmittedAt sim.Time
	// StartedAt records when the transfer actually began (queue wait is
	// StartedAt - SubmittedAt); meaningful once the task is running.
	StartedAt sim.Time

	state    taskState
	event    sim.Handle
	onDone   func(now sim.Time, t *Task)
	queuedOn int // disk queue currently holding the task, -1 if none
	// shaped is the effective transfer time after the Shape hook
	// (network contention) stretched Duration; equal to Duration when no
	// hook is installed. Set at transfer start.
	shaped sim.Time
	// span, when non-nil, is the rebuild-lifecycle span this attempt
	// belongs to; the scheduler marks its first transfer start.
	span *obs.Span
}

// State helpers used by engines and tests.
func (t *Task) Done() bool      { return t.state == taskDone }
func (t *Task) Cancelled() bool { return t.state == taskCancelled }
func (t *Task) Running() bool   { return t.state == taskRunning }

// Scheduler serializes rebuild transfers per disk: each disk performs at
// most one recovery transfer at a time. Tasks whose source or target is
// busy wait in that disk's FIFO queue.
type Scheduler struct {
	eng     *sim.Engine
	busy    []bool
	waiting [][]*Task
	// Started counts transfers begun; Completed counts finished.
	Started   int
	Completed int
	// BusyHours accumulates disk-hours spent on recovery transfers (two
	// disks per transfer) — the degraded-mode interference the paper's
	// declustering argument is about.
	BusyHours float64
	// OnStart, when set, fires as each transfer begins — the engines'
	// span layer hooks it to mark transfer starts. Strictly read-only
	// with respect to scheduling decisions.
	OnStart func(now sim.Time, t *Task)
	// Shape, when set, maps a starting transfer's nominal Duration to
	// its effective duration (network-contention stretch). Release is
	// its paired teardown, fired exactly once per shaped transfer —
	// at completion or at cancellation of a running task. Tasks that
	// never started are never shaped and never released.
	Shape   func(now sim.Time, t *Task) sim.Time
	Release func(t *Task)
}

// NewScheduler returns a scheduler for numDisks disk slots.
func NewScheduler(eng *sim.Engine, numDisks int) *Scheduler {
	return &Scheduler{
		eng:     eng,
		busy:    make([]bool, numDisks),
		waiting: make([][]*Task, numDisks),
	}
}

// Grow extends the per-disk tables after disks are added to the cluster.
func (s *Scheduler) Grow(numDisks int) {
	for len(s.busy) < numDisks {
		s.busy = append(s.busy, false)
		s.waiting = append(s.waiting, nil)
	}
}

// Busy reports whether disk id is mid-transfer.
func (s *Scheduler) Busy(id int) bool { return s.busy[id] }

// QueueLen returns the number of tasks waiting on disk id.
func (s *Scheduler) QueueLen(id int) int { return len(s.waiting[id]) }

// BusyDisks counts disks currently mid-transfer (two per running
// transfer). Read-only; used by the state sampler.
func (s *Scheduler) BusyDisks() int {
	n := 0
	for _, b := range s.busy {
		if b {
			n++
		}
	}
	return n
}

// QueuedTransfers counts live tasks parked in the per-disk FIFO queues
// (cancelled or re-filed entries are lazily removed, so they are
// skipped here). Read-only; used by the state sampler.
func (s *Scheduler) QueuedTransfers() int {
	n := 0
	for d, q := range s.waiting {
		for _, t := range q {
			if t.state == taskPending && t.queuedOn == d {
				n++
			}
		}
	}
	return n
}

// Submit queues a rebuild. onDone fires at completion with the simulation
// time. The task starts immediately if both disks are idle.
func (s *Scheduler) Submit(t *Task, onDone func(now sim.Time, t *Task)) {
	if t.Source == t.Target {
		panic(fmt.Sprintf("recovery: task %d/%d source == target %d", t.Group, t.Rep, t.Source))
	}
	t.onDone = onDone
	t.state = taskPending
	t.queuedOn = -1
	t.SubmittedAt = s.eng.Now()
	s.dispatch(t)
}

// dispatch starts t if possible, otherwise parks it on a busy disk's queue.
func (s *Scheduler) dispatch(t *Task) {
	switch {
	case !s.busy[t.Source] && !s.busy[t.Target]:
		s.start(t)
	case s.busy[t.Target]:
		t.queuedOn = t.Target
		s.waiting[t.Target] = append(s.waiting[t.Target], t)
	default:
		t.queuedOn = t.Source
		s.waiting[t.Source] = append(s.waiting[t.Source], t)
	}
}

func (s *Scheduler) start(t *Task) {
	s.busy[t.Source] = true
	s.busy[t.Target] = true
	t.state = taskRunning
	t.queuedOn = -1
	t.StartedAt = s.eng.Now()
	s.Started++
	if s.OnStart != nil {
		s.OnStart(t.StartedAt, t)
	}
	dur := t.Duration
	if s.Shape != nil {
		dur = s.Shape(t.StartedAt, t)
	}
	t.shaped = dur
	t.event = s.eng.After(dur, "rebuild-done", func(now sim.Time) {
		t.event = sim.Handle{}
		t.state = taskDone
		s.busy[t.Source] = false
		s.busy[t.Target] = false
		s.Completed++
		if s.Release != nil {
			s.Release(t)
		}
		s.BusyHours += 2 * float64(t.shaped)
		done := t.onDone
		if done != nil {
			done(now, t)
		}
		s.drain(t.Source)
		s.drain(t.Target)
	})
}

// drain starts or re-files tasks waiting on disk d after it frees up.
func (s *Scheduler) drain(d int) {
	for len(s.waiting[d]) > 0 && !s.busy[d] {
		t := s.waiting[d][0]
		s.waiting[d] = s.waiting[d][1:]
		if t.state != taskPending || t.queuedOn != d {
			continue // cancelled or moved
		}
		t.queuedOn = -1
		s.dispatch(t)
	}
}

// Cancel aborts a task. A running transfer releases both disks (and wakes
// their queues); a waiting task is lazily removed from its queue. Returns
// false if the task already completed.
func (s *Scheduler) Cancel(t *Task) bool {
	switch t.state {
	case taskDone, taskCancelled:
		return t.state == taskCancelled
	case taskRunning:
		if t.event.Valid() {
			s.eng.Cancel(t.event)
			t.event = sim.Handle{}
		}
		t.state = taskCancelled
		s.busy[t.Source] = false
		s.busy[t.Target] = false
		if s.Release != nil {
			s.Release(t)
		}
		s.drain(t.Source)
		s.drain(t.Target)
		return true
	default: // pending
		t.state = taskCancelled
		return true
	}
}
