package recovery

import (
	"errors"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// StragglerPolicy configures the straggler-mitigation layer of the
// recovery engines: peer-comparison detection of fail-slow disks,
// hedged duplicate transfers for rebuilds stuck behind a slow endpoint,
// hard rebuild timeouts falling back to the retry/re-source/abandon
// ladder, and eviction of persistent stragglers through the
// S.M.A.R.T.-style suspect/drain path.
//
// The zero value disables the whole layer and leaves every engine code
// path byte-identical to a tree without it (no timers armed, no
// detector state, no extra allocations). Policy fields left at zero
// receive the documented defaults when Enabled is set; a *negative*
// multiple/threshold disables that one mechanism while keeping the
// rest.
//
// Everything here is deterministic: detection and hedging decisions are
// pure functions of the simulated event history — no random draws — so
// runs remain reproducible and byte-identical across Monte Carlo worker
// counts.
type StragglerPolicy struct {
	// Enabled turns the layer on.
	Enabled bool
	// EWMAAlpha is the exponential-smoothing weight of the per-disk
	// rebuild-throughput estimate (default 0.25): higher reacts faster,
	// lower rides out attribution noise (a healthy disk is dinged once
	// when paired with a slow peer).
	EWMAAlpha float64
	// SlowFactorThreshold flags a disk when the cluster-median transfer
	// throughput exceeds the disk's estimate by this factor (default 3).
	// It should sit safely below the injected slowdown factor and above
	// the bandwidth spread natural transfers show.
	SlowFactorThreshold float64
	// MinDiskSamples is the number of transfers a disk must have touched
	// before it can be scored (default 6).
	MinDiskSamples int
	// MinClusterSamples is the number of transfers the streaming median
	// must have seen before anyone is scored (default 32).
	MinClusterSamples int
	// HedgeAfterMultiple launches a duplicate transfer — another buddy
	// read onto a fresh declustered target, first finisher wins — once a
	// rebuild has been outstanding this multiple of its healthy-model
	// expected duration (default 3; negative disables hedging).
	HedgeAfterMultiple float64
	// MaxHedgesPerRebuild caps duplicate transfers per rebuild
	// (default 1).
	MaxHedgesPerRebuild int
	// TimeoutMultiple hard-aborts a rebuild outstanding this multiple of
	// its expected duration and pushes it through the PR-2
	// retry/re-source/abandon ladder (default 12; negative disables).
	// It should sit above HedgeAfterMultiple: hedge first, abort later.
	TimeoutMultiple float64
	// EvictAfterFlags evicts a disk — marks it suspect and drains it via
	// the S.M.A.R.T. path — after this many *consecutive* slow scores
	// (default 4; negative disables eviction).
	EvictAfterFlags int //farm:anyvalue negative disables, zero takes the default, positive is the threshold
}

// Validate checks the policy, rejecting NaN/±Inf floats with
// field-distinct messages before range checks.
func (p StragglerPolicy) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"EWMAAlpha", p.EWMAAlpha},
		{"SlowFactorThreshold", p.SlowFactorThreshold},
		{"HedgeAfterMultiple", p.HedgeAfterMultiple},
		{"TimeoutMultiple", p.TimeoutMultiple},
	} {
		if err := faults.CheckFinite("recovery: Straggler."+f.name, f.v); err != nil {
			return err
		}
	}
	if !p.Enabled {
		return nil
	}
	switch {
	case p.EWMAAlpha < 0 || p.EWMAAlpha > 1:
		return errors.New("recovery: straggler EWMA alpha out of [0,1]")
	case p.SlowFactorThreshold > 0 && p.SlowFactorThreshold <= 1:
		return errors.New("recovery: straggler slow threshold must exceed 1")
	case p.MinDiskSamples < 0:
		return errors.New("recovery: negative straggler disk-sample floor")
	case p.MinClusterSamples < 0:
		return errors.New("recovery: negative straggler cluster-sample floor")
	case p.HedgeAfterMultiple > 0 && p.HedgeAfterMultiple < 1:
		return errors.New("recovery: hedge multiple below 1")
	case p.MaxHedgesPerRebuild < 0:
		return errors.New("recovery: negative hedge cap")
	case p.TimeoutMultiple > 0 && p.TimeoutMultiple < 1:
		return errors.New("recovery: timeout multiple below 1")
	}
	return nil
}

// withDefaults fills the zero policy fields (negative values mean
// "mechanism disabled" and pass through).
func (p StragglerPolicy) withDefaults() StragglerPolicy {
	if !p.Enabled {
		return p
	}
	if p.EWMAAlpha == 0 {
		p.EWMAAlpha = 0.25
	}
	if p.SlowFactorThreshold == 0 {
		p.SlowFactorThreshold = 3
	}
	if p.MinDiskSamples == 0 {
		p.MinDiskSamples = 6
	}
	if p.MinClusterSamples == 0 {
		p.MinClusterSamples = 32
	}
	if p.HedgeAfterMultiple == 0 {
		p.HedgeAfterMultiple = 3
	}
	if p.MaxHedgesPerRebuild == 0 {
		p.MaxHedgesPerRebuild = 1
	}
	if p.TimeoutMultiple == 0 {
		p.TimeoutMultiple = 12
	}
	if p.EvictAfterFlags == 0 {
		p.EvictAfterFlags = 4
	}
	return p
}

// hedging reports whether duplicate transfers are enabled.
func (p StragglerPolicy) hedging() bool { return p.Enabled && p.HedgeAfterMultiple > 0 }

// timeouts reports whether hard rebuild timeouts are enabled.
func (p StragglerPolicy) timeouts() bool { return p.Enabled && p.TimeoutMultiple > 0 }

// stragglerDetector scores per-disk rebuild throughput against the
// cluster median: every completed transfer contributes one sample to a
// streaming P² median and to the EWMA estimates of both endpoints. A
// disk whose estimate falls SlowFactorThreshold below the median is
// flagged; EvictAfterFlags consecutive flags evict it. Purely
// observational — it never sees the injected Slowdown state, only
// transfer durations — and fully deterministic.
type stragglerDetector struct {
	p      StragglerPolicy
	median metrics.P2Quantile
	est    []float64 // EWMA throughput per disk (MB/s)
	cnt    []int32   // samples per disk
	flags  []int32   // consecutive slow scores per disk
	evict  []bool    // already evicted (terminal)
}

// newStragglerDetector sizes a detector for numDisks slots.
func newStragglerDetector(p StragglerPolicy, numDisks int) *stragglerDetector {
	d := &stragglerDetector{p: p, median: metrics.NewP2(0.5)}
	d.grow(numDisks)
	return d
}

// grow extends the per-disk tables (replacement batches, spares).
func (d *stragglerDetector) grow(n int) {
	for len(d.est) < n {
		d.est = append(d.est, 0)
		d.cnt = append(d.cnt, 0)
		d.flags = append(d.flags, 0)
		d.evict = append(d.evict, false)
	}
}

// observe folds one transfer-throughput sample for disk id and reports
// state transitions: flagged is true when the disk newly enters a slow
// streak, evicted when the streak crosses the eviction threshold (at
// most once per disk, terminal). It is the single-endpoint convenience
// over addSample+score, used by tests; the engines call addSample once
// per transfer and score both endpoints.
func (d *stragglerDetector) observe(id int, mbps float64) (flagged, evicted bool) {
	d.addSample(mbps)
	return d.score(id, mbps)
}

// addSample feeds one completed transfer into the cluster-median
// estimate.
func (d *stragglerDetector) addSample(mbps float64) { d.median.Add(mbps) }

// score folds a transfer-throughput sample into disk id's EWMA estimate
// and reports state transitions (see observe). The cluster median is
// not touched: a transfer contributes one median sample (addSample) but
// dings both of its endpoints.
func (d *stragglerDetector) score(id int, mbps float64) (flagged, evicted bool) {
	d.grow(id + 1)
	if d.cnt[id] == 0 {
		d.est[id] = mbps
	} else {
		d.est[id] = d.p.EWMAAlpha*mbps + (1-d.p.EWMAAlpha)*d.est[id]
	}
	d.cnt[id]++
	if d.p.SlowFactorThreshold <= 0 || d.evict[id] ||
		int(d.cnt[id]) < d.p.MinDiskSamples || d.median.N() < d.p.MinClusterSamples {
		return false, false
	}
	if d.est[id]*d.p.SlowFactorThreshold < d.median.Value() {
		d.flags[id]++
		flagged = d.flags[id] == 1
		if d.p.EvictAfterFlags > 0 && d.flags[id] >= int32(d.p.EvictAfterFlags) {
			d.evict[id] = true
			evicted = true
		}
		return flagged, evicted
	}
	d.flags[id] = 0
	return false, false
}

// Estimate returns the detector's current throughput estimate and
// sample count for a disk (test hook).
func (d *stragglerDetector) Estimate(id int) (mbps float64, samples int) {
	if id >= len(d.est) {
		return 0, 0
	}
	return d.est[id], int(d.cnt[id])
}
