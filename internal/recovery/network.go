package recovery

import (
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file is the engines' network-topology layer: contention-shaped
// transfer durations, cross-rack traffic accounting, and the
// park/resume machinery for rebuilds whose endpoints sit behind a dark
// switch. Everything here is dormant (net == nil, no Shape/Release
// hooks installed) until SetTopology wires a fabric in, so a run
// without topology is byte-identical to a tree without this file.
//
// Parking model: a rebuild whose source or target becomes unreachable
// is *parked*, not abandoned — its scheduler task is cancelled and its
// straggler timers disarmed, but it stays tracked in the disk indexes
// (and keeps its target reservation) so both heals and endpoint deaths
// find it. The single choke point is submitTracked's dark-rack guard:
// whatever path produces an attempt (initial submission, retry,
// re-source, redirection, heal resume), an attempt touching a dark
// rack parks there instead of entering the scheduler.

// SetTopology implements Engine: it installs the run's network fabric
// and arms the scheduler's Shape/Release hooks so every starting
// transfer claims fair-share bandwidth on its path and returns it when
// it ends. A nil fabric restores the flat model bit-for-bit.
func (b *base) SetTopology(net *topology.Network) {
	b.net = net
	if net != nil {
		b.sched.Shape = b.shapeTransfer
		b.sched.Release = b.releaseTransfer
	} else {
		b.sched.Shape = nil
		b.sched.Release = nil
	}
}

// shapeTransfer maps a starting transfer's nominal duration to its
// network-contended duration. Intra-rack transfers never touch the
// fabric and keep their disk-limited duration unchanged; cross-rack
// transfers register a flow on the path and stretch by the ratio of
// the disk-limited rate to the fair-share bottleneck rate when the
// fabric is the slower of the two.
//
//farm:hotpath runs at every transfer start under topology, gated by TestSingleRunAllocCeiling
func (b *base) shapeTransfer(now sim.Time, t *Task) sim.Time {
	share, cross := b.net.BeginFlow(t.Source, t.Target)
	if !cross {
		return t.Duration
	}
	// The disk-limited rate implied by the nominal duration (the same
	// expression noteTransfer uses): BlockBytes over duration-hours.
	mbps := float64(b.cl.BlockBytes) / (float64(t.Duration) * 1e6 * 3600)
	if share > 0 && share < mbps {
		return sim.Time(float64(t.Duration) * (mbps / share))
	}
	return t.Duration
}

// releaseTransfer is shapeTransfer's paired teardown: the scheduler
// fires it exactly once per shaped transfer, at completion or at
// cancellation of a running task.
//
//farm:hotpath runs at every transfer end under topology, gated by TestSingleRunAllocCeiling
func (b *base) releaseTransfer(t *Task) {
	b.net.EndFlow(t.Source, t.Target)
}

// noteCrossRack tallies one completed transfer that crossed the rack
// fabric — the repair traffic the oversubscribed spine carries.
//
//farm:hotpath runs at every rebuild completion, gated by TestSingleRunAllocCeiling
func (b *base) noteCrossRack(src, tgt int) {
	if b.net == nil || b.net.SameRack(src, tgt) {
		return
	}
	b.stats.CrossRackTransfers++
	b.stats.CrossRackBytes += b.cl.BlockBytes
	b.rm.CrossRackTransfers.Inc()
	b.rm.CrossRackBytes.Add(uint64(b.cl.BlockBytes))
}

// parkTracked parks a tracked rebuild in place: timers disarmed, kept
// in the indexes, target reservation held. The caller has already
// cancelled (or never submitted) the scheduler task. Idempotent.
func (b *base) parkTracked(r *rebuild) {
	if r.parked {
		return
	}
	r.parked = true
	b.spanEndAttempt(r, b.eng.Now())
	b.cancelTimers(r)
	b.stats.Parked++
	b.rm.ParkedTransfers.Inc()
	b.observe(b.eng.Now(), trace.KindRebuildParked, r.task.Group, r.task.Rep, r.task.Target)
}

// park suspends a rebuild whose task may be queued or running (a dark
// rack swallowed its target mid-flight).
func (b *base) park(r *rebuild) {
	if r.parked {
		return
	}
	b.spanEndAttempt(r, b.eng.Now())
	b.sched.Cancel(r.task)
	b.parkTracked(r)
}

// parkOnSource repoints a rebuild at an intact-but-unreachable buddy
// and parks it. The repoint matters: heals resume rebuilds through the
// disk indexes, so a rebuild waiting on a dark buddy must be indexed
// under that buddy — parking it under its old (dead or faulty) source
// would orphan it forever.
func (b *base) parkOnSource(r *rebuild, src int) {
	b.sched.Cancel(r.task)
	if src != r.task.Source {
		b.untrack(r)
		nt := &Task{
			Group:    r.task.Group,
			Rep:      r.task.Rep,
			Source:   src,
			Target:   r.task.Target,
			Duration: b.effDuration(r.baseDur, src, r.task.Target),
		}
		r.task = nt
		b.track(r)
	}
	b.parkTracked(r)
}

// HandleUnreachable implements Engine: disk diskID's rack went dark at
// now. Rebuilds writing to it park (the reservation and the work
// stand; the rack may heal); rebuilds reading from it flee to another
// rack via the regular re-sourcing ladder, which itself parks when
// every intact buddy is dark. Hedges touching the disk are dropped —
// they are best-effort duplicates, never re-driven.
func (b *base) HandleUnreachable(now sim.Time, diskID int) {
	if b.net == nil {
		return
	}
	b.dropHedgesOn(diskID)
	asSource, asTarget := b.rebuildsTouching(diskID)
	for _, r := range asTarget {
		b.park(r)
	}
	for _, r := range asSource {
		// Already-parked rebuilds keep waiting; their source is re-picked
		// at resume time.
		if !r.parked && r.task.Source == diskID {
			b.resource(r)
		}
	}
}

// HandleReachable implements Engine: disk diskID's rack healed at now.
// Every parked rebuild indexed on the disk re-attempts.
func (b *base) HandleReachable(now sim.Time, diskID int) {
	if b.net == nil {
		return
	}
	asSource, asTarget := b.rebuildsTouching(diskID)
	for _, r := range asTarget {
		if r.parked {
			b.resumeParked(now, r)
		}
	}
	for _, r := range asSource {
		if r.parked {
			b.resumeParked(now, r)
		}
	}
}

// resumeParked re-drives one parked rebuild after an endpoint's rack
// healed. The group may have died, the other endpoint may still be
// dark, or the source may need re-picking; whatever survives those
// checks resubmits on a fresh task (the parked task is cancelled and
// may sit stale in a disk FIFO queue — reusing its pointer could alias
// a lazily-removed queue entry).
func (b *base) resumeParked(now sim.Time, r *rebuild) {
	if !r.parked {
		return
	}
	if b.cl.GroupLost(r.task.Group) {
		b.abandon(r)
		return
	}
	if b.net != nil && b.net.DiskUnreachable(r.task.Target) {
		return // target's rack still dark; keep waiting
	}
	if b.cl.ReadOnly(r.task.Target) {
		return // target still write-fenced; keep waiting for the unfence
	}
	src := r.task.Source
	if b.net != nil && b.net.DiskUnreachable(src) {
		// Healed on the target side only: try to flee the dark source.
		src = b.cl.SourceForExcluding(r.task.Group, r.task.Source, r.task.Target)
		if src < 0 {
			return // no reachable buddy yet; keep waiting
		}
	}
	b.sched.Cancel(r.task)
	b.untrack(r)
	if src != r.task.Source {
		b.stats.Resourcings++
		b.rm.Resourcings.Inc()
		if r.span != nil {
			r.span.Resourcings++
		}
		if b.net != nil && !b.net.SameRack(src, r.task.Source) {
			b.observe(now, trace.KindResourceCrossRack, r.task.Group, r.task.Rep, src)
		}
	}
	nt := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   src,
		Target:   r.task.Target,
		Duration: b.effDuration(r.baseDur, src, r.task.Target),
	}
	r.task = nt
	b.track(r)
	r.parked = false
	b.observe(now, trace.KindRebuildResumed, r.task.Group, r.task.Rep, r.task.Target)
	b.submitTracked(r)
}
