package recovery

import (
	"testing"

	"repro/internal/redundancy"
)

// TestFARMPickTargetZeroAlloc is the allocation-regression gate for the
// FARM redirection/targeting path: in steady state, selecting a rebuild
// target — buddy exclusions, in-flight-target exclusions, candidate
// stream walk, and space reservation — must not touch the heap.
func TestFARMPickTargetZeroAlloc(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 3}, 400)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))

	// Put the engine into a realistic steady state: one failure with
	// rebuilds in flight, so perGroupTargets and the disk indexes are
	// populated and their backing storage is warm.
	lost := h.failAndDetect(f, 0)
	if len(lost) == 0 {
		t.Fatal("disk 0 held no blocks")
	}
	ref := lost[0]

	// Warm the exclusion scratch.
	f.cl.BuddyExcludes(int(ref.Group))

	if n := testing.AllocsPerRun(100, func() {
		target, _, ok := f.pickTarget(int(ref.Group), int(ref.Rep), 0)
		if !ok {
			t.Fatal("no target")
		}
		// Undo the reservation so repeated runs cannot fill the disk.
		f.cl.ReleaseTarget(target)
	}); n != 0 {
		t.Fatalf("FARM pickTarget allocates %v times per run, want 0", n)
	}
}

// TestTrackUntrackSteadyStateZeroAlloc verifies that the per-group
// in-flight-target index reuses its backing storage: a track/untrack
// cycle on a warmed group performs no allocation.
func TestTrackUntrackSteadyStateZeroAlloc(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 200)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	r := &rebuild{task: &Task{Group: 7, Rep: 0, Source: 1, Target: 2}}
	// Warm: first track allocates the group's slot and slice.
	f.track(r)
	f.untrack(r)
	if n := testing.AllocsPerRun(100, func() {
		f.track(r)
		f.untrack(r)
	}); n != 0 {
		t.Fatalf("track/untrack allocates %v times per run, want 0", n)
	}
}
