package recovery

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/redundancy"
	"repro/internal/sim"
)

// scriptFM is a deterministic FaultModel for tests: it serves a scripted
// sequence of read outcomes (ReadOK once the script is exhausted, unless
// always is set) with a fixed backoff and explicit caps.
type scriptFM struct {
	outcomes       []faults.Outcome
	always         faults.Outcome // served after the script when alwaysOn
	alwaysOn       bool
	backoff        sim.Time
	maxRetries     int
	maxResourcings int
	probes         int
}

func (s *scriptFM) ProbeRead(now sim.Time, src, group int) faults.Outcome {
	s.probes++
	if len(s.outcomes) > 0 {
		o := s.outcomes[0]
		s.outcomes = s.outcomes[1:]
		return o
	}
	if s.alwaysOn {
		return s.always
	}
	return faults.ReadOK
}

func (s *scriptFM) RetryBackoff(attempt int) sim.Time { return s.backoff }
func (s *scriptFM) MaxRetries() int                   { return s.maxRetries }
func (s *scriptFM) MaxResourcings() int               { return s.maxResourcings }

// tracked counts rebuilds still registered in the engine's disk indexes.
func tracked(b *base) int {
	n := 0
	for _, l := range b.byTarget {
		n += len(l)
	}
	return n
}

// TestTransientFaultRetriesThenSucceeds: two transient faults delay but
// do not derail recovery — every block still rebuilds, with the retries
// counted.
func TestTransientFaultRetriesThenSucceeds(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 200)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	fm := &scriptFM{
		outcomes:       []faults.Outcome{faults.ReadTransient, faults.ReadTransient},
		backoff:        sim.Time(0.25),
		maxRetries:     3,
		maxResourcings: 8,
	}
	f.SetFaultModel(fm)
	lost := h.failAndDetect(f, 0)
	h.eng.Run()
	st := f.Stats()
	if st.TransientFaults != 2 || st.Retries != 2 {
		t.Fatalf("faults=%d retries=%d, want 2/2", st.TransientFaults, st.Retries)
	}
	if st.BlocksRebuilt != len(lost) {
		t.Fatalf("rebuilt %d of %d", st.BlocksRebuilt, len(lost))
	}
	if st.Resourcings != 0 {
		t.Fatalf("unexpected re-sourcings: %d", st.Resourcings)
	}
	if tracked(&f.base) != 0 {
		t.Fatal("rebuilds leaked in the disk indexes")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryCapEscalatesToResourceThenDrops is the graceful-degradation
// acceptance path: with every read faulting transiently forever, each
// rebuild retries up to the cap, re-sources up to the cap, and is then
// abandoned through the DroppedLost path — the run terminates instead of
// spinning.
func TestRetryCapEscalatesToResourceThenDrops(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 60)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	fm := &scriptFM{
		always:         faults.ReadTransient,
		alwaysOn:       true,
		backoff:        sim.Time(0.1),
		maxRetries:     2,
		maxResourcings: 1,
	}
	f.SetFaultModel(fm)
	lost := h.failAndDetect(f, 0)
	if len(lost) == 0 {
		t.Fatal("disk 0 held no blocks")
	}
	h.eng.Run() // must terminate: the caps bound the work
	st := f.Stats()
	if st.BlocksRebuilt != 0 {
		t.Fatalf("rebuilt %d blocks under always-faulting reads", st.BlocksRebuilt)
	}
	if st.DroppedLost != len(lost) {
		t.Fatalf("dropped %d of %d", st.DroppedLost, len(lost))
	}
	// Per rebuild: (maxRetries) retries per source, (maxResourcings+1)
	// sources tried before abandonment.
	wantRetries := len(lost) * fm.maxRetries * (fm.maxResourcings + 1)
	if st.Retries != wantRetries {
		t.Fatalf("retries = %d, want %d", st.Retries, wantRetries)
	}
	if st.Resourcings != len(lost)*fm.maxResourcings {
		t.Fatalf("resourcings = %d, want %d", st.Resourcings, len(lost)*fm.maxResourcings)
	}
	if tracked(&f.base) != 0 {
		t.Fatal("abandoned rebuilds leaked in the disk indexes")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLatentOutcomeForcesResource: a latent source fault makes the engine
// switch to a different buddy (counted as a re-sourcing) and still finish.
func TestLatentOutcomeForcesResource(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 4, N: 6}, 60)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	fm := &scriptFM{
		outcomes:       []faults.Outcome{faults.ReadLatent},
		maxRetries:     3,
		maxResourcings: 8,
	}
	f.SetFaultModel(fm)
	lost := h.failAndDetect(f, 0)
	h.eng.Run()
	st := f.Stats()
	if st.Resourcings != 1 {
		t.Fatalf("resourcings = %d, want 1", st.Resourcings)
	}
	if st.BlocksRebuilt != len(lost) {
		t.Fatalf("rebuilt %d of %d", st.BlocksRebuilt, len(lost))
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPendingRetryCancelledByTargetDeath covers the stale-retry hazard: a
// rebuild waiting out a transient-fault backoff whose target dies must be
// redirected exactly once — the pending backed-off resubmission must not
// fire afterwards and resurrect the old task.
func TestPendingRetryCancelledByTargetDeath(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 120)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	fm := &scriptFM{
		outcomes:       []faults.Outcome{faults.ReadTransient},
		backoff:        sim.Time(1000), // far beyond every other event
		maxRetries:     3,
		maxResourcings: 8,
	}
	f.SetFaultModel(fm)
	lost := h.failAndDetect(f, 0)
	// Step until the scripted transient fires: one rebuild is now parked
	// in its backoff window.
	for f.Stats().TransientFaults == 0 {
		if !h.eng.Step() {
			t.Fatal("queue drained before the transient fault fired")
		}
	}
	// Find the parked rebuild and kill its target mid-backoff.
	var victim int = -1
	for target, list := range f.byTarget {
		for _, r := range list {
			if r.retryEv.Valid() {
				victim = target
			}
		}
	}
	if victim < 0 {
		t.Fatal("no rebuild holds a pending retry event")
	}
	h.cl.FailDisk(victim, float64(h.eng.Now()))
	f.HandleFailure(h.eng.Now(), victim)
	h.eng.Run()
	st := f.Stats()
	// Every block of disk 0 must be accounted for exactly once; the
	// victim disk's own blocks were never handed to the engine, so the
	// only flows are rebuilt or dropped-with-lost-group.
	if st.BlocksRebuilt+st.DroppedLost != len(lost) {
		t.Fatalf("rebuilt %d + dropped %d != lost %d", st.BlocksRebuilt, st.DroppedLost, len(lost))
	}
	if st.Redirections == 0 {
		t.Fatal("target death during backoff did not redirect")
	}
	if tracked(&f.base) != 0 {
		t.Fatal("rebuilds leaked in the disk indexes")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSparePoolQueuesWhenExhausted: with one spare on the shelf, the
// second disk failure finds the pool empty and its recovery work queues
// until the replenishment drive arrives — graceful degradation instead
// of dropped work.
func TestSparePoolQueuesWhenExhausted(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 200)
	e := NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), func(now sim.Time) int {
		ids := h.cl.AddDisks(1, float64(now))
		h.sched.Grow(h.cl.NumDisks())
		return ids[0]
	})
	e.ConfigureSparePool(1, 12)
	lost0 := h.failAndDetect(e, 0)
	lost1 := h.failAndDetect(e, 1)
	if len(lost0) == 0 || len(lost1) == 0 {
		t.Fatal("test disks held no blocks")
	}
	if e.Stats().SpareWaits == 0 {
		t.Fatal("second failure did not queue for the exhausted pool")
	}
	if free, queued := e.SparePoolFree(); free != 0 || queued != 1 {
		t.Fatalf("pool free=%d queued=%d, want 0/1", free, queued)
	}
	h.eng.Run()
	if _, queued := e.SparePoolFree(); queued != 0 {
		t.Fatalf("queue not drained: %d items", queued)
	}
	st := e.Stats()
	// Both disks' blocks resolve: rebuilt, or dropped because the group
	// lost both replicas across the two failures.
	if st.BlocksRebuilt+st.DroppedLost < len(lost0)+len(lost1) {
		t.Fatalf("rebuilt %d + dropped %d < lost %d", st.BlocksRebuilt, st.DroppedLost,
			len(lost0)+len(lost1))
	}
	if st.SparesUsed != 2 {
		t.Fatalf("spares used = %d, want 2", st.SparesUsed)
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpareHandleBlockLossRepairsInPlace: a discovered latent error on a
// live drive is rewritten onto the same drive (sector remap semantics).
func TestSpareHandleBlockLossRepairsInPlace(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 100)
	e := NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), func(now sim.Time) int {
		ids := h.cl.AddDisks(1, float64(now))
		h.sched.Grow(h.cl.NumDisks())
		return ids[0]
	})
	// Pick a resident block and corrupt it.
	var group, rep, diskID int = -1, -1, -1
	for id := 0; id < h.cl.NumDisks(); id++ {
		if blocks := h.cl.BlocksOn(id); len(blocks) > 0 {
			group, rep, diskID = int(blocks[0].Group), int(blocks[0].Rep), id
			break
		}
	}
	if group < 0 {
		t.Fatal("no resident blocks")
	}
	h.cl.CorruptBlock(cluster.BlockRef{Group: int32(group), Rep: int32(rep)})
	e.HandleBlockLoss(0, 0, diskID, group, rep)
	h.eng.Run()
	if e.Stats().BlocksRebuilt != 1 {
		t.Fatalf("rebuilt %d, want 1", e.Stats().BlocksRebuilt)
	}
	if got := int(h.cl.GroupDiskOf(group, rep)); got != diskID {
		t.Fatalf("repair landed on disk %d, want in-place on %d", got, diskID)
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
