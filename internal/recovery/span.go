package recovery

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the engines' span layer: rebuild-lifecycle bookkeeping
// feeding the obs flight recorder. Everything here is strictly
// observational — spans and metrics never influence a scheduling
// decision — and everything is dormant unless SetObservability installs
// a span log (per-rebuild span accounting) or a metrics bundle
// (counters/histograms; a sink bundle is installed by default so record
// sites need no nil checks).
//
// Accounting model: a rebuild is one span; each (re)submission of its
// primary task is one attempt. When an attempt ends — completion,
// cancellation for redirection/re-sourcing, abandonment, or a hedge win
// — its queue wait (transfer start − submission) and transfer time
// (end − transfer start) fold into the span's phase accumulators. The
// spanDone latch makes attempt-end accounting idempotent: terminal
// paths that cascade (complete → re-source → abandon) account the
// attempt exactly once, and submitTracked re-arms the latch for the
// next attempt.

// SetObservability implements Engine: it installs the pre-resolved
// metrics bundle (nil restores the default sink) and the span log (nil
// disables span accounting). With spans enabled the scheduler's OnStart
// hook is armed, which also emits the transfer-start trace event — new
// event kinds appear in the transcript only when spans are on, so
// existing transcripts stay byte-identical.
func (b *base) SetObservability(rm *obs.RecoveryMetrics, spans *obs.SpanLog) {
	if rm == nil {
		rm = obs.NewDiscardRecoveryMetrics()
	}
	b.rm = rm
	b.spans = spans
	if spans != nil {
		b.sched.OnStart = func(now sim.Time, t *Task) {
			if t.span != nil && t.span.StartAt < 0 {
				t.span.StartAt = float64(now)
			}
			b.observe(now, trace.KindTransferStart, t.Group, t.Rep, t.Target)
		}
	} else {
		b.sched.OnStart = nil
	}
}

// InFlight implements Engine: the number of tracked block rebuilds
// (transferring, queued, or backing off). Read-only; used by the state
// sampler.
func (b *base) InFlight() int { return b.inFlight }

// spanOpen opens the lifecycle span of one block rebuild detected now,
// emitting the rebuild-queued trace event. Returns nil when spans are
// disabled; every accounting helper below tolerates a nil span.
func (b *base) spanOpen(group, rep int, failedAt sim.Time) *obs.Span {
	if b.spans == nil {
		return nil
	}
	now := b.eng.Now()
	b.observe(now, trace.KindRebuildQueued, group, rep, -1)
	return b.spans.Start(group, rep, float64(failedAt), float64(now), float64(now))
}

// spanEndAttempt folds the rebuild's current attempt into its span's
// phase accumulators. Call it at the instant the attempt ends, BEFORE
// the task is cancelled or replaced (the task's state decides where the
// time went). Idempotent per attempt via the spanDone latch.
func (b *base) spanEndAttempt(r *rebuild, now sim.Time) {
	sp := r.span
	if sp == nil || r.spanDone {
		return
	}
	r.spanDone = true
	t := r.task
	switch {
	case t.onDone == nil:
		// Created for a backed-off retry but never submitted; the wait is
		// retry backoff, accounted by the retry bookkeeping in untrack.
	case t.Running() || t.Done():
		sp.QueueWait += float64(t.StartedAt - t.SubmittedAt)
		sp.Transfer += float64(now - t.StartedAt)
	default: // still pending in a disk FIFO queue
		sp.QueueWait += float64(now - t.SubmittedAt)
	}
}

// spanFinish latches the span's terminal outcome at now and feeds the
// per-run phase histograms. Safe on a nil span.
func (b *base) spanFinish(r *rebuild, now sim.Time, outcome string) {
	sp := r.span
	if sp == nil {
		return
	}
	sp.DoneAt = float64(now)
	sp.Outcome = outcome
	b.rm.QueueWaitHours.Observe(sp.QueueWait)
	b.rm.TransferHours.Observe(sp.Transfer)
	b.rm.RetryWaitHours.Observe(sp.RetryWait)
	b.rm.HedgeOverlapHours.Observe(sp.HedgeOverlap)
	b.rm.DetectWaitHours.Observe(sp.DetectWait())
}

// spanDropped finishes a span as dropped (nil-safe convenience for the
// abandonment paths).
func (b *base) spanDropped(r *rebuild, now sim.Time) {
	b.spanFinish(r, now, obs.OutcomeDropped)
}
