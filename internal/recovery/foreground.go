package recovery

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the engines' foreground-coexistence layer: the throttle
// policy governing how much bandwidth recovery may take from users, the
// degraded-read latency sampling that prices each block's window of
// vulnerability, and the write-fence park/resume machinery for rolling
// upgrades. Everything here is dormant (fg == nil, no fences raised)
// until SetForeground / HandleWriteFence wire it in, so a run without
// foreground traffic is byte-identical to a tree without this file.

// SetForeground implements Engine.
func (b *base) SetForeground(fg *workload.Foreground) {
	b.fg = fg
	b.lastThrottle = 0
}

// SetDetailObserver implements Engine.
func (b *base) SetDetailObserver(fn func(now sim.Time, kind trace.Kind, group, rep, diskID int, detail string)) {
	b.detailObserver = fn
}

// throttleMBps asks the QoS policy for the recovery rate at a decision
// point (a rebuild being created), feeding it the fleet user share and
// the engine's current backlog. Rate changes are counted as throttle
// steps and traced; the policy's hysteresis keeps them sparse.
func (b *base) throttleMBps(now float64) float64 {
	fg := b.fg
	fleet := fg.Demand.FleetShare(now)
	bl := workload.Backlog{
		PendingBytes: int64(b.inFlight) * b.cl.BlockBytes,
		Streams:      b.activeTargets,
		MTTFHours:    fg.MTTFHours,
	}
	mbps := fg.Policy.RecoveryMBps(now, fleet, bl)
	b.stats.ThrottleMBps.Add(mbps)
	if mbps != b.lastThrottle {
		if b.lastThrottle != 0 {
			b.stats.ThrottleSteps++
			b.rm.ThrottleSteps.Inc()
			if b.detailObserver != nil {
				b.detailObserver(sim.Time(now), trace.KindThrottle, -1, -1, -1,
					fmt.Sprintf("mbps=%.2f share=%.3f", mbps, fleet))
			}
		}
		b.lastThrottle = mbps
	}
	return mbps
}

// sampleDegradedReads prices one just-closed window of vulnerability in
// user-visible latency: user reads that landed on the lost block while
// it was missing were served by k-way reconstruction, stretched by the
// contention of the moment, the source's fail-slow factor, and the
// cross-rack fabric. The arrivals are Poisson in the window at the
// demand model's read rate scaled by the local user share; each sample
// also records the counterfactual healthy-read latency at the same
// instant, so the degraded/healthy gap is measured on identical traffic.
// All randomness draws from the bundle's private stream — enabling the
// sampler cannot perturb failure, placement, or injection schedules.
func (b *base) sampleDegradedReads(now sim.Time, r *rebuild, t *Task, windowHours float64) {
	fg := b.fg
	if fg == nil || windowHours <= 0 {
		return
	}
	cfg := fg.Demand.Config()
	if cfg.ReadsPerBlockHour <= 0 {
		return
	}
	start := float64(r.failedAt)
	mean := cfg.ReadsPerBlockHour * fg.Demand.Share(start+windowHours/2, t.Source) * windowHours
	n := workload.Poisson(fg.Reads, mean)
	if n == 0 {
		return
	}
	// Cap the per-block sample count: a marathon window under heavy load
	// would otherwise dominate the run's latency distribution with tens
	// of thousands of identical draws. The quantiles converge long before
	// the cap binds.
	if n > 32 {
		n = 32
	}
	// The recovery stream's own share of the source disk, implied by the
	// transfer the block actually rode: the causal channel from throttle
	// policy to user latency (a polite policy stretches windows, an
	// aggressive one stretches every concurrent user read).
	recShare := 0.0
	if fg.DiskMBps > 0 && t.shaped > 0 {
		recShare = float64(b.cl.BlockBytes) / (float64(t.shaped) * 3600 * 1e6) / fg.DiskMBps
	}
	slow := 1.0
	if b.pd != nil {
		slow = b.pd.SlowdownFactor(t.Source)
	}
	cross := 1.0
	if b.net != nil && !b.net.SameRack(t.Source, t.Target) && fg.CrossRackFactor > 1 {
		cross = fg.CrossRackFactor
	}
	var sum, max float64
	for i := 0; i < n; i++ {
		at := start + fg.Reads.Float64()*windowHours
		share := fg.Demand.Share(at, t.Source)
		healthy := cfg.HealthyLatencyMs * workload.ContentionFactor(share)
		lat := cfg.HealthyLatencyMs * fg.KFactor * slow * cross *
			workload.ContentionFactor(share+recShare)
		b.stats.DegradedReads++
		b.stats.DegradedMs.Add(lat)
		b.stats.DegradedP50.Add(lat)
		b.stats.DegradedP99.Add(lat)
		b.stats.HealthyP99.Add(healthy)
		b.rm.DegradedReads.Inc()
		b.rm.DegradedLatencyMs.Observe(lat)
		sum += lat
		if lat > max {
			max = lat
		}
	}
	if b.detailObserver != nil {
		b.detailObserver(now, trace.KindDegradedReads, t.Group, t.Rep, t.Source,
			fmt.Sprintf("n=%d mean=%.3f max=%.3f", n, sum/float64(n), max))
	}
}

// HandleWriteFence implements Engine: disk diskID turned read-only at
// now (a rolling-upgrade window). Rebuilds writing to it park — the
// work and the reservation stand; the fence will lift. Rebuilds reading
// from it are untouched (fenced disks serve reads), but in-flight
// hedges writing to it are dropped as always-best-effort duplicates.
func (b *base) HandleWriteFence(now sim.Time, diskID int) {
	// cancelHedge mutates the index being scanned, so restart the scan
	// after each cancellation rather than ranging over it.
	for {
		var victim *rebuild
		for _, rs := range b.hedgeByDisk[diskID] {
			if rs.hedgeTask != nil && rs.hedgeTask.Target == diskID {
				victim = rs
				break
			}
		}
		if victim == nil {
			break
		}
		b.cancelHedge(victim)
	}
	_, asTarget := b.rebuildsTouching(diskID)
	for _, r := range asTarget {
		if !r.parked {
			b.stats.FencedParks++
			b.park(r)
		}
	}
}

// HandleWriteUnfence implements Engine: disk diskID's write fence
// lifted at now. Every parked rebuild writing to it re-attempts.
func (b *base) HandleWriteUnfence(now sim.Time, diskID int) {
	_, asTarget := b.rebuildsTouching(diskID)
	for _, r := range asTarget {
		if r.parked {
			b.resumeParked(now, r)
		}
	}
}
