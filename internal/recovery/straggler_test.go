package recovery

import (
	"math"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/redundancy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// degradedBW wraps the harness cluster's drive states in the per-disk
// bandwidth model, the way the core simulator wires it.
func degradedBW(h *harness, mbps float64) workload.BandwidthModel {
	return workload.Degraded{
		Base: workload.Fixed{MBps: mbps},
		Slowdown: func(id int) float64 {
			if id >= h.cl.NumDisks() {
				return 1
			}
			return h.cl.Disks[id].SlowFactor()
		},
	}
}

// hedgesTracked counts hedge index entries (each hedge appears twice:
// once per endpoint).
func hedgesTracked(b *base) int {
	n := 0
	for _, l := range b.hedgeByDisk {
		n += len(l)
	}
	return n
}

// TestStragglerPolicyValidate is the table-driven NaN/Inf/range check.
func TestStragglerPolicyValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		p    StragglerPolicy
		want string // substring of the error, "" for valid
	}{
		{"zero-disabled", StragglerPolicy{}, ""},
		{"enabled-defaults", StragglerPolicy{Enabled: true}, ""},
		{"nan-alpha", StragglerPolicy{EWMAAlpha: nan}, "EWMAAlpha is NaN"},
		{"inf-threshold", StragglerPolicy{SlowFactorThreshold: inf}, "SlowFactorThreshold is infinite"},
		{"nan-hedge", StragglerPolicy{HedgeAfterMultiple: nan}, "HedgeAfterMultiple is NaN"},
		{"inf-timeout", StragglerPolicy{TimeoutMultiple: inf}, "TimeoutMultiple is infinite"},
		// NaN/Inf are rejected even on a disabled policy: a config
		// carrying them is corrupt regardless.
		{"nan-disabled", StragglerPolicy{Enabled: false, EWMAAlpha: nan}, "EWMAAlpha is NaN"},
		{"alpha-range", StragglerPolicy{Enabled: true, EWMAAlpha: 1.5}, "alpha out of [0,1]"},
		{"threshold-low", StragglerPolicy{Enabled: true, SlowFactorThreshold: 0.5}, "must exceed 1"},
		{"threshold-negative-ok", StragglerPolicy{Enabled: true, SlowFactorThreshold: -1}, ""},
		{"neg-disk-samples", StragglerPolicy{Enabled: true, MinDiskSamples: -1}, "disk-sample floor"},
		{"neg-cluster-samples", StragglerPolicy{Enabled: true, MinClusterSamples: -2}, "cluster-sample floor"},
		{"hedge-low", StragglerPolicy{Enabled: true, HedgeAfterMultiple: 0.5}, "hedge multiple below 1"},
		{"hedge-negative-ok", StragglerPolicy{Enabled: true, HedgeAfterMultiple: -1}, ""},
		{"neg-hedge-cap", StragglerPolicy{Enabled: true, MaxHedgesPerRebuild: -1}, "negative hedge cap"},
		{"timeout-low", StragglerPolicy{Enabled: true, TimeoutMultiple: 0.25}, "timeout multiple below 1"},
		{"timeout-negative-ok", StragglerPolicy{Enabled: true, TimeoutMultiple: -3}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

// TestStragglerDefaults: zero fields receive the documented defaults,
// negative fields pass through (mechanism disabled).
func TestStragglerDefaults(t *testing.T) {
	p := StragglerPolicy{Enabled: true, TimeoutMultiple: -1}.withDefaults()
	if p.EWMAAlpha != 0.25 || p.SlowFactorThreshold != 3 || p.MinDiskSamples != 6 ||
		p.MinClusterSamples != 32 || p.HedgeAfterMultiple != 3 || p.MaxHedgesPerRebuild != 1 ||
		p.EvictAfterFlags != 4 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	if p.TimeoutMultiple != -1 {
		t.Fatalf("negative timeout multiple overwritten: %v", p.TimeoutMultiple)
	}
	if !p.hedging() || p.timeouts() {
		t.Fatalf("hedging/timeouts gates wrong: %v %v", p.hedging(), p.timeouts())
	}
	var off StragglerPolicy
	if off.withDefaults() != off {
		t.Fatal("disabled policy must pass through unchanged")
	}
}

// TestDetectorFlagsAndEvicts: a disk consistently far below the cluster
// median is flagged once per streak and evicted after EvictAfterFlags
// consecutive slow scores; eviction is terminal.
func TestDetectorFlagsAndEvicts(t *testing.T) {
	p := StragglerPolicy{Enabled: true}.withDefaults()
	d := newStragglerDetector(p, 8)
	// Warm the cluster median and the healthy disks' estimates.
	for i := 0; i < 10; i++ {
		for id := 0; id < 8; id++ {
			if id == 3 {
				continue
			}
			if f, e := d.observe(id, 16); f || e {
				t.Fatalf("healthy disk %d flagged/evicted during warmup", id)
			}
		}
	}
	// Disk 3 crawls at 1 MB/s: 16/1 far exceeds the 3x threshold.
	var flags, evicts int
	firstFlagAt := -1
	for i := 1; i <= 10; i++ {
		f, e := d.observe(3, 1)
		if f {
			flags++
			if firstFlagAt < 0 {
				firstFlagAt = i
			}
		}
		if e {
			evicts++
			if i != firstFlagAt+p.EvictAfterFlags-1 {
				t.Fatalf("evicted on sample %d, want %d", i, firstFlagAt+p.EvictAfterFlags-1)
			}
		}
	}
	if flags != 1 {
		t.Fatalf("flagged %d times, want once per streak", flags)
	}
	if firstFlagAt != p.MinDiskSamples {
		t.Fatalf("first flag on sample %d, want the disk-sample floor %d", firstFlagAt, p.MinDiskSamples)
	}
	if evicts != 1 {
		t.Fatalf("evicted %d times, want exactly once (terminal)", evicts)
	}
	if mbps, n := d.Estimate(3); n != 10 || mbps > 2 {
		t.Fatalf("estimate = %v over %d samples, want ~1 over 10", mbps, n)
	}
}

// TestDetectorStreakResets: one healthy score breaks a slow streak, so
// intermittent blips never accumulate to an eviction.
func TestDetectorStreakResets(t *testing.T) {
	p := StragglerPolicy{Enabled: true, EWMAAlpha: 1}.withDefaults() // alpha 1: estimate = last sample
	d := newStragglerDetector(p, 8)
	for i := 0; i < 10; i++ {
		for id := 0; id < 8; id++ {
			d.observe(id, 16)
		}
	}
	evicted := false
	for cycle := 0; cycle < 10; cycle++ {
		// Three slow scores (below the eviction threshold of 4)...
		for i := 0; i < p.EvictAfterFlags-1; i++ {
			if _, e := d.observe(3, 1); e {
				evicted = true
			}
		}
		// ...then a healthy one resets the streak.
		d.observe(3, 16)
	}
	if evicted {
		t.Fatal("intermittent slow blips must not evict")
	}
}

// TestHedgeWinsOverSlowSource: rebuilds stuck reading from a crawling
// buddy launch duplicate transfers from a healthy buddy, and the hedge
// finishes first. Every block still rebuilds and no index leaks.
func TestHedgeWinsOverSlowSource(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 4, N: 6}, 60)
	f := NewFARM(h.cl, h.eng, h.sched, degradedBW(h, 16))
	f.SetStraggler(StragglerPolicy{
		Enabled:             true,
		HedgeAfterMultiple:  2,
		TimeoutMultiple:     -1, // isolate hedging
		SlowFactorThreshold: -1, // no detection/eviction
	}, nil)
	// Every disk but 0 and 1 crawls? No: make disk 1 the crawler so only
	// rebuilds sourced from it are stuck.
	h.cl.Disks[1].Slowdown = 64
	lost := h.failAndDetect(f, 0)
	if len(lost) == 0 {
		t.Fatal("disk 0 held no blocks")
	}
	h.eng.Run()
	st := f.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges=%d wins=%d, want both > 0", st.Hedges, st.HedgeWins)
	}
	if st.BlocksRebuilt != len(lost) {
		t.Fatalf("rebuilt %d of %d", st.BlocksRebuilt, len(lost))
	}
	if tracked(&f.base) != 0 || hedgesTracked(&f.base) != 0 {
		t.Fatal("rebuilds or hedges leaked in the indexes")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The hedged rebuilds must beat the crawling source's 64x transfer:
	// the worst window stays well under the crawl duration.
	crawl := 64 * float64(f.blockDuration())
	if st.Window.Max() >= crawl {
		t.Fatalf("worst window %v did not beat the crawl %v", st.Window.Max(), crawl)
	}
}

// TestTimeoutReSourcesStuckRebuild: with hedging disabled, the hard
// timeout aborts transfers stuck on the crawling source and the ladder
// re-sources them to a healthy buddy.
func TestTimeoutReSourcesStuckRebuild(t *testing.T) {
	run := func(timeouts float64) Stats {
		h := newHarness(t, redundancy.Scheme{M: 4, N: 6}, 60)
		f := NewFARM(h.cl, h.eng, h.sched, degradedBW(h, 16))
		f.SetStraggler(StragglerPolicy{
			Enabled:             true,
			HedgeAfterMultiple:  -1,
			TimeoutMultiple:     timeouts,
			SlowFactorThreshold: -1,
		}, nil)
		h.cl.Disks[1].Slowdown = 64
		lost := h.failAndDetect(f, 0)
		h.eng.Run()
		st := f.Stats()
		if st.BlocksRebuilt != len(lost) {
			t.Fatalf("rebuilt %d of %d (timeouts=%v)", st.BlocksRebuilt, len(lost), timeouts)
		}
		if tracked(&f.base) != 0 {
			t.Fatal("rebuilds leaked in the indexes")
		}
		if err := h.cl.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return *st
	}
	off := run(-1)
	on := run(3)
	if on.Timeouts == 0 || on.Resourcings == 0 {
		t.Fatalf("timeouts=%d resourcings=%d, want both > 0", on.Timeouts, on.Resourcings)
	}
	// Same placement, same failure: aborting transfers stuck on the
	// crawling source must shrink the mean vulnerability window. (Blocks
	// whose *target* crawls are beyond re-sourcing; the cap leaves them
	// running rather than abandoning them.)
	if on.Window.Mean() >= off.Window.Mean() {
		t.Fatalf("timeout mitigation did not improve mean window: on=%v off=%v",
			on.Window.Mean(), off.Window.Mean())
	}
}

// TestHedgeDroppedWhenEndpointDies: killing a hedge endpoint mid-flight
// drops the duplicate without re-driving work; the primary still
// resolves every block.
func TestHedgeDroppedWhenEndpointDies(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 4, N: 6}, 60)
	f := NewFARM(h.cl, h.eng, h.sched, degradedBW(h, 16))
	f.SetStraggler(StragglerPolicy{
		Enabled:             true,
		HedgeAfterMultiple:  2,
		TimeoutMultiple:     -1,
		SlowFactorThreshold: -1,
	}, nil)
	h.cl.Disks[1].Slowdown = 64
	lost := h.failAndDetect(f, 0)
	for f.Stats().Hedges == 0 {
		if !h.eng.Step() {
			t.Fatal("queue drained before any hedge launched")
		}
	}
	// Kill one hedge's target disk.
	victim := -1
	for id, l := range f.hedgeByDisk {
		for _, r := range l {
			if r.hedgeTask != nil && r.hedgeTask.Target == id {
				victim = id
			}
		}
	}
	if victim < 0 {
		t.Fatal("no in-flight hedge target found")
	}
	h.cl.FailDisk(victim, float64(h.eng.Now()))
	f.HandleFailure(h.eng.Now(), victim)
	h.eng.Run()
	st := f.Stats()
	if st.BlocksRebuilt+st.DroppedLost != len(lost) {
		t.Fatalf("rebuilt %d + dropped %d != lost %d", st.BlocksRebuilt, st.DroppedLost, len(lost))
	}
	if tracked(&f.base) != 0 || hedgesTracked(&f.base) != 0 {
		t.Fatal("rebuilds or hedges leaked in the indexes")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionCallbackFires: with detection enabled, sustained slow
// transfers from one disk fire the eviction callback exactly once for
// that disk.
func TestEvictionCallbackFires(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 4, N: 6}, 120)
	f := NewFARM(h.cl, h.eng, h.sched, degradedBW(h, 16))
	var evicted []int
	f.SetStraggler(StragglerPolicy{
		Enabled:            true,
		HedgeAfterMultiple: -1,
		TimeoutMultiple:    -1,
		MinClusterSamples:  16,
		MinDiskSamples:     3,
		EvictAfterFlags:    2,
	}, func(now sim.Time, id int) { evicted = append(evicted, id) })
	h.cl.Disks[1].Slowdown = 16
	lost := h.failAndDetect(f, 0)
	if len(lost) == 0 {
		t.Fatal("disk 0 held no blocks")
	}
	h.eng.Run()
	st := f.Stats()
	if st.SlowFlagged == 0 {
		t.Fatal("crawling disk never flagged")
	}
	if st.Evictions != 1 || len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evictions=%d callback=%v, want exactly disk 1 once", st.Evictions, evicted)
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPolicyIsInert: installing the zero policy changes nothing
// against a run that never called SetStraggler — same stats, block for
// block.
func TestDisabledPolicyIsInert(t *testing.T) {
	run := func(install bool) Stats {
		h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 200)
		f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
		if install {
			f.SetStraggler(StragglerPolicy{}, nil)
		}
		h.failAndDetect(f, 0)
		h.eng.Run()
		return f.base.stats
	}
	a, b := run(false), run(true)
	if a != b {
		t.Fatalf("zero policy perturbed the run:\n%+v\n%+v", a, b)
	}
}

// TestEffDurationHealthyIsExact: with a per-disk model present but both
// endpoints healthy, the effective duration must be the base duration
// bit for bit.
func TestEffDurationHealthyIsExact(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 10)
	f := NewFARM(h.cl, h.eng, h.sched, degradedBW(h, 16))
	base := sim.Time(disk.RebuildHours(h.cl.BlockBytes, 16))
	if got := f.effDuration(base, 2, 3); got != base {
		t.Fatalf("healthy effDuration %v != base %v", got, base)
	}
	h.cl.Disks[3].Slowdown = 4
	if got := f.effDuration(base, 2, 3); got != sim.Time(float64(base)*4) {
		t.Fatalf("slow-target effDuration %v, want 4x base", got)
	}
}
