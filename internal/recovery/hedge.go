package recovery

import (
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the active half of the straggler-mitigation layer: the
// per-rebuild hedge/timeout timers, the duplicate-transfer lifecycle,
// and the detector feeding. Everything here is dormant (det == nil, no
// timers armed, no allocations) until SetStraggler enables the policy,
// so a disabled layer leaves the engines byte-identical to a tree
// without it.

// submitTracked submits the rebuild's current primary task and arms the
// straggler timers against its healthy-model deadline. Deadlines measure
// total outstanding time from submission (queue wait included), the
// "tail at scale" hedging signal: a rebuild stuck in queue behind a
// crawling transfer is exactly as vulnerable as one crawling itself, and
// the hedge's fresh source/target pair escapes both. The detector, by
// contrast, scores only transfer durations — a busy healthy disk is
// never *flagged* slow, it just gets hedged around.
func (b *base) submitTracked(r *rebuild) {
	// Unified dark-rack catch-all: an attempt headed at or out of an
	// unreachable rack parks here whatever path produced it (initial
	// submission, retry, re-source, redirection, heal resume).
	if b.net != nil && (b.net.DiskUnreachable(r.task.Source) || b.net.DiskUnreachable(r.task.Target)) {
		b.parkTracked(r)
		return
	}
	// Write-fence catch-all: an attempt writing to a read-only target (a
	// rolling-upgrade window) parks until the fence lifts. Sources are
	// exempt — a fenced disk still serves reads.
	if b.cl.ReadOnly(r.task.Target) {
		b.stats.FencedParks++
		b.parkTracked(r)
		return
	}
	r.parked = false
	// A new attempt begins: re-arm the span latch so its end is
	// accounted exactly once, and hand the span to the scheduler so the
	// OnStart hook can mark the first transfer start.
	r.spanDone = false
	r.task.span = r.span
	if r.span != nil {
		r.span.Attempts++
	}
	b.sched.Submit(r.task, func(now sim.Time, _ *Task) { b.complete(now, r) })
	b.armStragglerTimers(r)
}

// armStragglerTimers arms the hedge and timeout deadlines for the
// rebuild's current attempt. Already-armed timers are left running (a
// transient retry keeps its original deadlines: the rebuild has been
// outstanding the whole time); terminal paths cancel both via untrack.
func (b *base) armStragglerTimers(r *rebuild) {
	if b.det == nil {
		return
	}
	if b.policy.timeouts() && !r.timeoutEv.Valid() {
		d := sim.Time(float64(r.baseDur) * b.policy.TimeoutMultiple)
		r.timeoutEv = b.eng.After(d, "rebuild-timeout", func(now sim.Time) {
			r.timeoutEv = sim.Handle{}
			b.timeoutFired(now, r)
		})
	}
	if b.policy.hedging() && !r.hedgeEv.Valid() && r.hedgeTask == nil &&
		r.hedges < b.policy.MaxHedgesPerRebuild {
		d := sim.Time(float64(r.baseDur) * b.policy.HedgeAfterMultiple)
		r.hedgeEv = b.eng.After(d, "rebuild-hedge", func(now sim.Time) {
			r.hedgeEv = sim.Handle{}
			b.maybeHedge(now, r)
		})
	}
}

// timeoutFired hard-aborts a rebuild that overstayed its timeout
// multiple: the current attempt is cancelled and the rebuild escalates
// through the retry/re-source ladder with a fresh source. Two guards
// keep the abort from degenerating into churn:
//
//   - While a hedge is racing the primary, the duplicate transfer (on a
//     fresh source AND target) is already the escape hatch; aborting the
//     primary too would throw away the more-advanced of the two racers
//     and requeue the work behind everything else. The timer re-arms so
//     a rebuild whose hedge *also* stalls still escalates eventually.
//   - Once the re-sourcing cap is reached the timer stops firing and the
//     attempt is left to run: if the slowness lives on the *target*
//     (which re-sourcing cannot fix), a slow rebuild still beats an
//     abandoned one, so the timeout path never converts stuck work into
//     data loss.
func (b *base) timeoutFired(now sim.Time, r *rebuild) {
	if r.hedgeTask != nil {
		d := sim.Time(float64(r.baseDur) * b.policy.TimeoutMultiple)
		r.timeoutEv = b.eng.After(d, "rebuild-timeout", func(at sim.Time) {
			r.timeoutEv = sim.Handle{}
			b.timeoutFired(at, r)
		})
		return
	}
	if r.resourcings >= b.maxResourcings() {
		return // mitigation exhausted; let the attempt finish at its pace
	}
	b.stats.Timeouts++
	b.rm.Timeouts.Inc()
	if r.span != nil {
		r.span.TimedOut = true
	}
	b.observe(now, trace.KindRebuildTimeout, r.task.Group, r.task.Rep, r.task.Target)
	r.retries = 0
	b.resourceChecked(now, r)
}

// maybeHedge launches the duplicate transfer for a rebuild stuck past
// its hedge deadline: another buddy read onto a fresh declustered
// target, first finisher wins. The hedge claims its own reservation and
// a perGroupTargets slot so concurrent rebuilds of the group cannot
// collide with it.
func (b *base) maybeHedge(now sim.Time, r *rebuild) {
	if r.hedgeTask != nil || r.hedges >= b.policy.MaxHedgesPerRebuild {
		return
	}
	if b.cl.GroupLost(r.task.Group) {
		return
	}
	target, _, ok := b.pickTarget(r.task.Group, r.task.Rep, 0)
	if !ok {
		return // nowhere to duplicate to; the primary stands alone
	}
	// Prefer a source different from the (possibly slow) primary source;
	// with only one intact buddy left, share it — the hedge then only
	// covers a slow target, not a slow source.
	src := b.cl.SourceForExcluding(r.task.Group, r.task.Source, target)
	if src < 0 {
		src = b.cl.SourceFor(r.task.Group, target)
	}
	if src < 0 {
		b.cl.ReleaseTarget(target)
		return
	}
	ht := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   src,
		Target:   target,
		Duration: b.effDuration(r.baseDur, src, target),
	}
	r.hedgeTask = ht
	r.hedges++
	r.hedgeAt = now
	b.stats.Hedges++
	b.rm.Hedges.Inc()
	if r.span != nil {
		r.span.Hedges++
		ht.span = r.span
	}
	b.trackHedge(r)
	b.observe(now, trace.KindHedge, ht.Group, ht.Rep, ht.Target)
	b.sched.Submit(ht, func(done sim.Time, _ *Task) { b.hedgeComplete(done, r) })
}

// trackHedge registers the rebuild's hedge task in the hedge indexes and
// the per-group target set.
func (b *base) trackHedge(r *rebuild) {
	ht := r.hedgeTask
	b.hedgeByDisk[ht.Source] = append(b.hedgeByDisk[ht.Source], r)
	b.hedgeByDisk[ht.Target] = append(b.hedgeByDisk[ht.Target], r)
	b.perGroupTargets[ht.Group] = append(b.perGroupTargets[ht.Group], ht.Target)
}

// untrackHedge removes the hedge from the indexes and clears the task
// pointer. It does not touch the scheduler or the target reservation.
// Whatever resolved the hedge (win, loss, cancellation), the duplicate
// raced the primary from launch until this instant — that interval is
// the span's hedge-overlap phase.
func (b *base) untrackHedge(r *rebuild) {
	if r.span != nil {
		r.span.HedgeOverlap += float64(b.eng.Now() - r.hedgeAt)
	}
	ht := r.hedgeTask
	b.hedgeByDisk[ht.Source] = removeRebuild(b.hedgeByDisk[ht.Source], r)
	b.hedgeByDisk[ht.Target] = removeRebuild(b.hedgeByDisk[ht.Target], r)
	tg := b.perGroupTargets[ht.Group]
	for i, t := range tg {
		if t == ht.Target {
			tg[i] = tg[len(tg)-1]
			b.perGroupTargets[ht.Group] = tg[:len(tg)-1]
			break
		}
	}
	r.hedgeTask = nil
}

// cancelHedge aborts an in-flight hedge (the primary won, was replaced,
// or lost an endpoint) and returns its target reservation.
func (b *base) cancelHedge(r *rebuild) {
	ht := r.hedgeTask
	if ht == nil {
		return
	}
	b.sched.Cancel(ht)
	b.cl.ReleaseTarget(ht.Target)
	b.untrackHedge(r)
}

// dropHedgesOn cancels every hedge touching a dead disk. Hedges are
// best-effort duplicates: losing one never re-drives work, the primary
// rebuild still stands (and is fixed up by the regular failure paths).
func (b *base) dropHedgesOn(diskID int) {
	for len(b.hedgeByDisk[diskID]) > 0 {
		b.cancelHedge(b.hedgeByDisk[diskID][0])
	}
}

// hedgeComplete finishes a duplicate transfer. A faulting hedge read
// simply loses the race (the primary is untouched); a clean hedge
// supersedes the primary: the block lands on the hedge target and the
// primary attempt is cancelled.
func (b *base) hedgeComplete(now sim.Time, r *rebuild) {
	ht := r.hedgeTask
	if b.fm != nil {
		switch b.fm.ProbeRead(now, ht.Source, ht.Group) {
		case faults.ReadTransient:
			b.stats.TransientFaults++
			b.rm.TransientFaults.Inc()
			b.cl.ReleaseTarget(ht.Target)
			b.untrackHedge(r)
			return
		case faults.ReadLatent:
			// The damaged replica was unlinked (and queued for repair) by
			// the injector's discovery handler; this hedge just loses.
			b.cl.ReleaseTarget(ht.Target)
			b.untrackHedge(r)
			return
		}
	}
	b.untrackHedge(r)
	// First finisher wins: cancel the primary attempt and release its
	// reservation (dead targets already dropped their byte accounting).
	b.spanEndAttempt(r, now)
	b.sched.Cancel(r.task)
	b.untrack(r)
	b.cl.ReleaseTarget(r.task.Target)
	if b.cl.GroupLost(ht.Group) {
		b.cl.ReleaseTarget(ht.Target)
		b.stats.DroppedLost++
		b.rm.Dropped.Inc()
		b.spanDropped(r, now)
		b.observe(now, trace.KindDropped, ht.Group, ht.Rep, ht.Target)
		return
	}
	b.cl.PlaceRecovered(ht.Group, ht.Rep, ht.Target)
	b.noteCrossRack(ht.Source, ht.Target)
	b.stats.BlocksRebuilt++
	b.stats.HedgeWins++
	b.rm.BlocksRebuilt.Inc()
	b.rm.HedgeWins.Inc()
	if r.span != nil {
		r.span.HedgeWon = true
	}
	w := float64(now - r.failedAt)
	b.stats.Window.Add(w)
	b.recordWindow(w)
	b.sampleDegradedReads(now, r, ht, w)
	b.spanFinish(r, now, obs.OutcomeDone)
	b.noteTransfer(now, ht)
	b.observe(now, trace.KindHedgeWin, ht.Group, ht.Rep, ht.Target)
}

// recordWindow feeds one vulnerability window into the streaming tail
// quantiles.
func (b *base) recordWindow(w float64) {
	b.stats.WindowP50.Add(w)
	b.stats.WindowP99.Add(w)
	b.rm.WindowHours.Observe(w)
}

// noteTransfer feeds one successful transfer into the peer-comparison
// detector: one cluster-median sample, one EWMA score per endpoint. The
// signal is the transfer's *duration* (not its queue wait), so a busy
// healthy disk is not mistaken for a slow one.
func (b *base) noteTransfer(now sim.Time, t *Task) {
	if b.det == nil || t.Duration <= 0 {
		return
	}
	mbps := float64(b.cl.BlockBytes) / (float64(t.Duration) * 1e6 * 3600)
	b.det.addSample(mbps)
	b.scoreDisk(now, t.Source, mbps)
	b.scoreDisk(now, t.Target, mbps)
}

// scoreDisk folds one endpoint sample and reacts to detector verdicts:
// flags are traced, evictions additionally fire the engine's eviction
// callback (bound to the S.M.A.R.T. suspect/drain path by the core).
func (b *base) scoreDisk(now sim.Time, id int, mbps float64) {
	flagged, evicted := b.det.score(id, mbps)
	if flagged {
		b.stats.SlowFlagged++
		b.rm.SlowFlagged.Inc()
		b.observe(now, trace.KindFailSlowDetect, -1, -1, id)
	}
	if evicted {
		b.stats.Evictions++
		b.rm.SlowEvicted.Inc()
		b.observe(now, trace.KindEvictSlow, -1, -1, id)
		if b.evict != nil {
			b.evict(now, id)
		}
	}
}

// maxResourcings is the re-sourcing cap: the fault model's when one is
// installed, a conservative default otherwise (the timeout path can
// escalate rebuilds with no fault model configured).
func (b *base) maxResourcings() int {
	if b.fm != nil {
		return b.fm.MaxResourcings()
	}
	return 8
}
