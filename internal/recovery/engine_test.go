package recovery

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/redundancy"
	"repro/internal/sim"
)

// harness bundles a small cluster with an engine under test.
type harness struct {
	cl    *cluster.Cluster
	eng   *sim.Engine
	sched *Scheduler
}

func newHarness(t *testing.T, scheme redundancy.Scheme, groups int) *harness {
	t.Helper()
	cfg := cluster.Config{
		Scheme:             scheme,
		GroupBytes:         10 * disk.GB,
		NumGroups:          groups,
		DiskModel:          disk.DefaultModel(),
		InitialUtilization: 0.4,
		PlacementSeed:      7,
		// Keep the cluster comfortably wider than one group so recovery
		// targets satisfying rule (b) always exist.
		ExtraDisks: 10,
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	return &harness{cl: cl, eng: eng, sched: NewScheduler(eng, cl.NumDisks())}
}

// failAndDetect plays a failure at the current time with zero detection
// latency through the engine.
func (h *harness) failAndDetect(e Engine, id int) []cluster.BlockRef {
	now := h.eng.Now()
	lost, _ := h.cl.FailDisk(id, float64(now))
	e.HandleFailure(now, id)
	e.HandleDetection(now, id, now, lost)
	return lost
}

func TestFARMRebuildsEverything(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 300)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	lost := h.failAndDetect(f, 0)
	if len(lost) == 0 {
		t.Fatal("disk 0 held no blocks")
	}
	h.eng.Run()
	if f.Stats().BlocksRebuilt != len(lost) {
		t.Fatalf("rebuilt %d of %d blocks", f.Stats().BlocksRebuilt, len(lost))
	}
	for _, ref := range lost {
		g := int(ref.Group)
		if h.cl.GroupAvailable(g) != 2 || h.cl.GroupLost(g) {
			t.Fatalf("group %d not restored", ref.Group)
		}
		// Rule (b): blocks of a group on distinct disks.
		if h.cl.GroupDiskOf(g, 0) == h.cl.GroupDiskOf(g, 1) {
			t.Fatalf("group %d has both blocks on one disk", ref.Group)
		}
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.cl.LostGroups != 0 {
		t.Fatal("unexpected data loss")
	}
}

func TestFARMTargetsAreSpread(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 400)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	lost := h.failAndDetect(f, 1)
	h.eng.Run()
	// Count distinct target disks among the recovered replicas.
	targets := map[int32]bool{}
	for _, ref := range lost {
		targets[h.cl.GroupDiskOf(int(ref.Group), int(ref.Rep))] = true
	}
	// Declustering: the rebuilt blocks should land on many disks, not one.
	if len(targets) < 3 {
		t.Fatalf("FARM used only %d target disks for %d blocks", len(targets), len(lost))
	}
}

func TestFARMFasterThanSpare(t *testing.T) {
	// The paper's core claim: FARM's parallel rebuild finishes far sooner
	// than the serialized spare-disk rebuild.
	mkTime := func(useFARM bool) sim.Time {
		h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 300)
		var e Engine
		if useFARM {
			e = NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
		} else {
			e = NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), func(now sim.Time) int {
				ids := h.cl.AddDisks(1, float64(now))
				h.sched.Grow(h.cl.NumDisks())
				return ids[0]
			})
		}
		h.failAndDetect(e, 0)
		h.eng.Run()
		if e.Stats().BlocksRebuilt == 0 {
			t.Fatal("no blocks rebuilt")
		}
		return sim.Time(e.Stats().Window.Max())
	}
	farm := mkTime(true)
	spare := mkTime(false)
	if farm*4 > spare {
		t.Fatalf("FARM window %v not clearly shorter than spare window %v", farm, spare)
	}
}

func TestSpareDiskSerializesOnOneTarget(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 300)
	var spareID int
	e := NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), func(now sim.Time) int {
		ids := h.cl.AddDisks(1, float64(now))
		h.sched.Grow(h.cl.NumDisks())
		spareID = ids[0]
		return ids[0]
	})
	lost := h.failAndDetect(e, 0)
	h.eng.Run()
	if e.Stats().SparesUsed != 1 {
		t.Fatalf("spares used = %d", e.Stats().SparesUsed)
	}
	// All recovered blocks sit on the one spare.
	for _, ref := range lost {
		got := h.cl.GroupDiskOf(int(ref.Group), int(ref.Rep))
		if got != int32(spareID) {
			t.Fatalf("block %v recovered to %d, want spare %d", ref, got, spareID)
		}
	}
	if e.SpareOf(0) != spareID {
		t.Fatal("SpareOf mapping wrong")
	}
	// Completion time == blocks × per-block duration (strict serialization).
	want := sim.Time(float64(len(lost)) * disk.RebuildHours(h.cl.BlockBytes, 16))
	if diff := h.eng.Now() - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("spare rebuild finished at %v, want %v", h.eng.Now(), want)
	}
}

func TestSpareDiskEmptyFailureNoSpare(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 10)
	e := NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), func(now sim.Time) int {
		t.Fatal("spawned a spare for an empty disk")
		return -1
	})
	// Find a disk with no blocks (tiny cluster has spare room); if all
	// loaded, add one.
	empty := -1
	for id := 0; id < h.cl.NumDisks(); id++ {
		if len(h.cl.BlocksOn(id)) == 0 {
			empty = id
			break
		}
	}
	if empty == -1 {
		empty = h.cl.AddDisks(1, 0)[0]
		h.sched.Grow(h.cl.NumDisks())
	}
	h.failAndDetect(e, empty)
	h.eng.Run()
	if e.Stats().SparesUsed != 0 {
		t.Fatal("spare activated for empty disk")
	}
}

func TestFARMRedirectionOnTargetFailure(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 3}, 200)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	lost := h.failAndDetect(f, 0)
	if len(lost) == 0 {
		t.Fatal("no blocks lost")
	}
	// Let rebuilds start, then kill an active target mid-flight.
	h.eng.Step() // nothing scheduled yet except completions; find a target
	var target int = -1
	for id := 0; id < h.cl.NumDisks(); id++ {
		if h.sched.Busy(id) && id != 0 {
			// Busy disks include sources; pick one that is a target of
			// some in-flight rebuild.
			if len(f.byTarget[id]) > 0 {
				target = id
				break
			}
		}
	}
	if target == -1 {
		t.Skip("no busy target found; cluster too small")
	}
	now := h.eng.Now()
	h.cl.FailDisk(target, float64(now))
	f.HandleFailure(now, target)
	h.eng.Run()
	if f.Stats().Redirections == 0 {
		t.Fatal("expected at least one redirection")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFARMResourcingOnSourceFailure(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 3}, 200)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	h.failAndDetect(f, 0)
	// Find an in-flight source and kill it. 3-way mirroring leaves an
	// alternative replica, so the rebuild re-sources rather than dying.
	var src int = -1
	for id := 0; id < h.cl.NumDisks(); id++ {
		if len(f.bySource[id]) > 0 {
			src = id
			break
		}
	}
	if src == -1 {
		t.Fatal("no in-flight source found")
	}
	now := h.eng.Now()
	lost2, _ := h.cl.FailDisk(src, float64(now))
	f.HandleFailure(now, src)
	f.HandleDetection(now, src, now, lost2)
	h.eng.Run()
	if f.Stats().Resourcings == 0 {
		t.Fatal("expected at least one re-sourcing")
	}
	if h.cl.LostGroups != 0 {
		t.Fatalf("3-way mirror lost %d groups after two failures", h.cl.LostGroups)
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorDataLossOnDoubleFailureBeforeRebuild(t *testing.T) {
	// Two-way mirroring, both replica disks die before any rebuild: the
	// shared groups are lost and the engine abandons their rebuilds.
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 300)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	now := h.eng.Now()
	lost0, _ := h.cl.FailDisk(0, float64(now))
	f.HandleFailure(now, 0)
	// Find a disk sharing a group with disk 0 and kill it too, before
	// detection of either failure.
	shared := -1
	for _, ref := range lost0 {
		if d := h.cl.SourceFor(int(ref.Group), -1); d >= 0 {
			shared = d
			break
		}
	}
	if shared < 0 {
		t.Fatal("no buddy disk found")
	}
	lost1, dead := h.cl.FailDisk(shared, float64(now))
	f.HandleFailure(now, shared)
	if dead == 0 {
		t.Fatal("double failure should have killed shared groups")
	}
	f.HandleDetection(now, 0, now, lost0)
	f.HandleDetection(now, shared, now, lost1)
	h.eng.Run()
	if h.cl.LostGroups != dead {
		t.Fatalf("LostGroups %d, expected %d", h.cl.LostGroups, dead)
	}
	if f.Stats().DroppedLost == 0 {
		t.Fatal("engine should have dropped rebuilds of lost groups")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestErasureToleratesTwoFailures(t *testing.T) {
	// 4/6 survives two overlapping failures with zero-latency detection.
	h := newHarness(t, redundancy.Scheme{M: 4, N: 6}, 150)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	h.failAndDetect(f, 0)
	h.failAndDetect(f, 1)
	h.eng.Run()
	if h.cl.LostGroups != 0 {
		t.Fatalf("4/6 lost %d groups after two failures", h.cl.LostGroups)
	}
	for g := 0; g < h.cl.GroupCount(); g++ {
		if h.cl.GroupAvailable(g) != 6 {
			t.Fatalf("group %d not fully restored (%d/6)", g, h.cl.GroupAvailable(g))
		}
	}
}

func TestSpareFailureMidRebuildRedirects(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 300)
	spawned := []int{}
	e := NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), func(now sim.Time) int {
		ids := h.cl.AddDisks(1, float64(now))
		h.sched.Grow(h.cl.NumDisks())
		spawned = append(spawned, ids[0])
		return ids[0]
	})
	h.failAndDetect(e, 0)
	if len(spawned) != 1 {
		t.Fatal("no spare spawned")
	}
	// Kill the spare mid-rebuild.
	h.eng.Step() // progress a bit
	now := h.eng.Now()
	lostOnSpare, _ := h.cl.FailDisk(spawned[0], float64(now))
	e.HandleFailure(now, spawned[0])
	e.HandleDetection(now, spawned[0], now, lostOnSpare)
	h.eng.Run()
	if len(spawned) < 2 {
		t.Fatal("no replacement spare after spare failure")
	}
	if e.Stats().Redirections == 0 {
		t.Fatal("expected redirections after spare death")
	}
	if h.cl.LostGroups != 0 {
		t.Fatalf("lost %d groups; replicas were all intact", h.cl.LostGroups)
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNames(t *testing.T) {
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 10)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	s := NewSpareDisk(h.cl, h.eng, h.sched, FixedBW(16), nil)
	if f.Name() != "farm" || s.Name() != "spare" {
		t.Fatal("engine names wrong")
	}
}

func TestWindowIncludesDetectionLatency(t *testing.T) {
	// Submitting detection later than the failure lengthens the measured
	// window by exactly the latency.
	h := newHarness(t, redundancy.Scheme{M: 1, N: 2}, 100)
	f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
	now := h.eng.Now()
	lost, _ := h.cl.FailDisk(0, float64(now))
	f.HandleFailure(now, 0)
	const latency = sim.Time(0.5) // hours
	h.eng.Schedule(now+latency, "detect", func(dnow sim.Time) {
		f.HandleDetection(dnow, 0, now, lost)
	})
	h.eng.Run()
	if f.Stats().Window.Min() < float64(latency) {
		t.Fatalf("window %v shorter than detection latency %v",
			f.Stats().Window.Min(), latency)
	}
}
