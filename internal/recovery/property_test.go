package recovery

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/redundancy"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestQuickSchedulerNeverOverlaps drives the scheduler with random task
// graphs and checks the core resource invariant: no disk ever serves two
// transfers at once, every non-cancelled task completes exactly once, and
// completion times respect durations.
func TestQuickSchedulerNeverOverlaps(t *testing.T) {
	type interval struct {
		start, end sim.Time
		src, tgt   int
	}
	f := func(seed uint64, n8 uint8) bool {
		r := rng.New(seed)
		numDisks := 6
		numTasks := int(n8%40) + 2
		eng := sim.New()
		s := NewScheduler(eng, numDisks)
		var done []interval
		completed := 0
		for i := 0; i < numTasks; i++ {
			src := r.Intn(numDisks)
			tgt := r.Intn(numDisks - 1)
			if tgt >= src {
				tgt++
			}
			dur := sim.Time(r.Float64()*5 + 0.1)
			task := &Task{Group: i, Source: src, Target: tgt, Duration: dur}
			s.Submit(task, func(now sim.Time, tk *Task) {
				completed++
				done = append(done, interval{start: now - tk.Duration, end: now,
					src: tk.Source, tgt: tk.Target})
			})
		}
		eng.Run()
		if completed != numTasks || s.Completed != numTasks {
			return false
		}
		// Per-disk intervals must not overlap (strictly, open intervals).
		for d := 0; d < numDisks; d++ {
			var ivs []interval
			for _, iv := range done {
				if iv.src == d || iv.tgt == d {
					ivs = append(ivs, iv)
				}
			}
			for i := 0; i < len(ivs); i++ {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.start < b.end-1e-12 && b.start < a.end-1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickFARMEndToEnd drives random multi-failure scenarios through the
// FARM engine and checks cluster invariants plus conservation: every
// group is either fully restored, still degraded-but-recoverable, or
// latched lost.
func TestQuickFARMEndToEnd(t *testing.T) {
	f := func(seed uint64, kills8 uint8) bool {
		h := quickHarness(seed)
		f := NewFARM(h.cl, h.eng, h.sched, FixedBW(16))
		kills := int(kills8%5) + 1
		r := rng.New(seed)
		for k := 0; k < kills; k++ {
			id := r.Intn(h.cl.NumDisks())
			if h.cl.Disks[id].State != disk.Alive {
				continue
			}
			now := h.eng.Now()
			lost, _ := h.cl.FailDisk(id, float64(now))
			f.HandleFailure(now, id)
			f.HandleDetection(now, id, now, lost)
			// Advance a random amount between kills.
			h.eng.RunUntil(now + sim.Time(r.Float64()*0.2))
		}
		h.eng.Run()
		if err := h.cl.CheckInvariants(); err != nil {
			return false
		}
		for g := 0; g < h.cl.GroupCount(); g++ {
			if h.cl.GroupLost(g) {
				continue
			}
			// Non-lost groups must be fully restored once the queue
			// drains (all rebuilds completed or redirected to completion),
			// unless no eligible target existed (tiny cluster corner).
			if int(h.cl.GroupAvailable(g)) < h.cl.Cfg.Scheme.M {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// quickHarness builds a deterministic small cluster without *testing.T.
func quickHarness(seed uint64) *harness {
	cfg := cluster.Config{
		Scheme:             redundancy.Scheme{M: 1, N: 3},
		GroupBytes:         10 * disk.GB,
		NumGroups:          120,
		DiskModel:          disk.DefaultModel(),
		InitialUtilization: 0.4,
		PlacementSeed:      seed,
		ExtraDisks:         12,
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		panic(err)
	}
	eng := sim.New()
	return &harness{cl: cl, eng: eng, sched: NewScheduler(eng, cl.NumDisks())}
}
