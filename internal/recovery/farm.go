package recovery

import (
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FARM is the paper's FAst Recovery Mechanism: declustered, parallel
// rebuild. Each lost block is re-created on a disk drawn from the group's
// placement candidate stream, subject to the paper's target rules:
// (a) alive, (b) holding no other block of the group, (c) with space.
// Targets are spread across the whole cluster, so rebuilds proceed in
// parallel and the window of vulnerability is roughly one group-rebuild
// long instead of one disk-rebuild long.
type FARM struct {
	base
}

// NewFARM returns a FARM engine over the given cluster. bw supplies the
// per-disk recovery bandwidth (use FixedBW for the paper's base model).
func NewFARM(cl *cluster.Cluster, eng *sim.Engine, sched *Scheduler, bw workload.BandwidthModel) *FARM {
	return &FARM{base: newBase(cl, eng, sched, bw)}
}

// FixedBW is shorthand for the constant-bandwidth model.
func FixedBW(mbps float64) workload.BandwidthModel {
	return workload.Fixed{MBps: mbps}
}

// Name implements Engine.
func (f *FARM) Name() string { return "farm" }

// HandleDetection schedules one parallel rebuild per lost block.
func (f *FARM) HandleDetection(now sim.Time, diskID int, failedAt sim.Time, lost []cluster.BlockRef) {
	for _, ref := range lost {
		f.startRebuild(failedAt, int(ref.Group), int(ref.Rep))
	}
}

// startRebuild selects target and source for one block and submits the
// transfer. Returns silently if the group is already beyond repair.
func (f *FARM) startRebuild(failedAt sim.Time, group, rep int) {
	if f.cl.GroupLost(group) {
		f.stats.DroppedLost++
		f.rm.Dropped.Inc()
		return
	}
	src := f.cl.SourceFor(group, -1)
	if src < 0 && f.net != nil {
		// Every intact buddy is behind a dark switch; the rebuild will
		// park against one (submitTracked's guard) instead of dropping.
		src = f.cl.AnySourceFor(group, -1)
	}
	if src < 0 {
		f.stats.DroppedLost++
		f.rm.Dropped.Inc()
		return
	}
	r := &rebuild{failedAt: failedAt, baseDur: f.blockDuration()}
	r.span = f.spanOpen(group, rep, failedAt)
	target, trial, ok := f.pickTarget(group, rep, 0)
	if !ok {
		// Nowhere to put the block (cluster effectively full/dead);
		// leave the group degraded.
		f.stats.DroppedLost++
		f.rm.Dropped.Inc()
		f.spanDropped(r, f.eng.Now())
		return
	}
	r.trial = trial
	r.task = &Task{
		Group:    group,
		Rep:      rep,
		Source:   src,
		Target:   target,
		Duration: f.effDuration(r.baseDur, src, target),
	}
	f.track(r)
	f.submitTracked(r)
}

// HandleBlockLoss recovers a single damaged replica (a discovered latent
// sector error): under FARM it is just another declustered block rebuild,
// targeted anywhere in the cluster.
func (f *FARM) HandleBlockLoss(now sim.Time, failedAt sim.Time, diskID, group, rep int) {
	f.startRebuild(failedAt, group, rep)
}

// HandleFailure redirects rebuilds writing to the dead disk and re-sources
// rebuilds reading from it.
func (f *FARM) HandleFailure(now sim.Time, diskID int) {
	f.dropHedgesOn(diskID)
	asSource, asTarget := f.rebuildsTouching(diskID)
	for _, r := range asTarget {
		f.redirect(now, r)
	}
	for _, r := range asSource {
		// Skip rebuilds already fixed by redirection (task replaced).
		if r.task.Source == diskID {
			f.resource(r)
		}
	}
}

// redirect moves a rebuild to the next candidate target after its target
// died mid-rebuild — the paper's recovery redirection. The transfer
// restarts from scratch on the new disk.
func (f *FARM) redirect(now sim.Time, r *rebuild) {
	f.spanEndAttempt(r, now)
	f.sched.Cancel(r.task)
	f.untrack(r)
	// No ReleaseTarget: the dead disk's byte accounting is already gone.
	if f.cl.GroupLost(r.task.Group) {
		f.stats.DroppedLost++
		f.rm.Dropped.Inc()
		f.spanDropped(r, now)
		return
	}
	target, trial, ok := f.pickTarget(r.task.Group, r.task.Rep, r.trial+1)
	if !ok {
		f.stats.DroppedLost++
		f.rm.Dropped.Inc()
		f.spanDropped(r, now)
		return
	}
	src := r.task.Source
	if f.cl.Disks[src].State != disk.Alive || src == target {
		src = f.cl.SourceFor(r.task.Group, target)
		if src < 0 && f.net != nil {
			src = f.cl.AnySourceFor(r.task.Group, target)
		}
		if src < 0 {
			f.cl.ReleaseTarget(target)
			f.stats.DroppedLost++
			f.rm.Dropped.Inc()
			f.spanDropped(r, now)
			return
		}
	}
	nt := &Task{
		Group:    r.task.Group,
		Rep:      r.task.Rep,
		Source:   src,
		Target:   target,
		Duration: f.effDuration(r.baseDur, src, target),
	}
	r.task = nt
	r.trial = trial
	f.track(r)
	f.stats.Redirections++
	f.rm.Redirections.Inc()
	if r.span != nil {
		r.span.Redirections++
	}
	f.submitTracked(r)
}
