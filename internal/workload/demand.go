package workload

import (
	"errors"
	"math"

	"repro/internal/rng"
)

// This file is the foreground-traffic demand model: a seeded stochastic
// per-disk user I/O load the recovery layer must share the spindles
// with. The paper observes (§2.4) that recovery bandwidth "fluctuates
// with the intensity of user requests"; this model supplies the
// intensity — a diurnal base load, Poisson burst episodes on top of it,
// and a static per-rack skew — as an instantaneous user share of each
// disk's bandwidth.
//
// Determinism contract: the model draws every random quantity (burst
// episode arrivals, durations, amplitudes, rack skew) from its own RNG
// stream split off the run seed with a dedicated salt at construction
// time, before the first simulation event fires. Queries are pure reads
// of the precomputed schedule, so enabling the demand model never
// perturbs the failure, placement, or fault-injection streams, and the
// zero config constructs no model at all (core keeps a nil pointer and
// every consumer's fast path returns its input bit-for-bit unchanged).

// demandSeedSalt isolates the demand stream from every other consumer of
// the run seed (placement, injector, fail-slow, network faults).
const demandSeedSalt = 0x10ad_caf3_0f0e_610d

// DemandConfig configures the foreground demand model. The zero value
// disables it entirely.
type DemandConfig struct {
	// BaseShare is the diurnal-mean user share of each disk's bandwidth
	// (0..1). Zero with zero BurstsPerDay disables the model.
	BaseShare float64
	// DiurnalAmplitude is the fraction of BaseShare swung by the day
	// cycle: the share follows BaseShare·(1 + A·cos) peaking at PeakHour.
	// Default 0.6.
	DiurnalAmplitude float64
	// PeakHour is the busiest hour of day in [0,24). Default 14.
	PeakHour float64
	// BurstsPerDay is the Poisson rate of burst episodes (flash crowds,
	// batch jobs). Zero disables bursts.
	BurstsPerDay float64
	// BurstMeanHours is the mean episode duration (exponential).
	// Default 2.
	BurstMeanHours float64
	// BurstShare is the mean additional user share during an episode;
	// each episode draws its amplitude uniformly in [0.5, 1.5]× this.
	// Default 0.25.
	BurstShare float64
	// RackSkew spreads the load across racks: rack multipliers are drawn
	// uniformly in [1-RackSkew, 1+RackSkew] (0..1; zero means uniform).
	RackSkew float64
	// MaxShare caps the total user share so recovery always retains some
	// headroom (0..1). Default 0.9.
	MaxShare float64
	// ReadsPerBlockHour is the user read rate against one lost block per
	// hour of its vulnerability window at full user share — the arrival
	// rate of degraded reads. Default 2.
	ReadsPerBlockHour float64
	// HealthyLatencyMs is the uncontended single-disk read service time
	// in milliseconds. Default 8.
	HealthyLatencyMs float64
}

// Enabled reports whether the config describes any foreground load.
func (c DemandConfig) Enabled() bool { return c.BaseShare > 0 || c.BurstsPerDay > 0 }

// Validate rejects NaN/Inf and out-of-range fields.
func (c DemandConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"BaseShare", c.BaseShare},
		{"DiurnalAmplitude", c.DiurnalAmplitude},
		{"PeakHour", c.PeakHour},
		{"BurstsPerDay", c.BurstsPerDay},
		{"BurstMeanHours", c.BurstMeanHours},
		{"BurstShare", c.BurstShare},
		{"RackSkew", c.RackSkew},
		{"MaxShare", c.MaxShare},
		{"ReadsPerBlockHour", c.ReadsPerBlockHour},
		{"HealthyLatencyMs", c.HealthyLatencyMs},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return errors.New("workload: demand " + f.name + " is NaN or Inf")
		}
	}
	switch {
	case c.BaseShare < 0 || c.BaseShare > 1:
		return errors.New("workload: demand base share out of [0,1]")
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1:
		return errors.New("workload: demand diurnal amplitude out of [0,1]")
	case c.PeakHour < 0 || c.PeakHour >= 24:
		return errors.New("workload: demand peak hour out of [0,24)")
	case c.BurstsPerDay < 0:
		return errors.New("workload: negative burst rate")
	case c.BurstMeanHours < 0:
		return errors.New("workload: negative burst duration")
	case c.BurstShare < 0 || c.BurstShare > 1:
		return errors.New("workload: burst share out of [0,1]")
	case c.RackSkew < 0 || c.RackSkew > 1:
		return errors.New("workload: rack skew out of [0,1]")
	case c.MaxShare < 0 || c.MaxShare > 1:
		return errors.New("workload: max share out of [0,1]")
	case c.ReadsPerBlockHour < 0:
		return errors.New("workload: negative degraded-read rate")
	case c.HealthyLatencyMs < 0:
		return errors.New("workload: negative healthy read latency")
	}
	return nil
}

// withDefaults fills the zero knobs of an enabled config.
func (c DemandConfig) withDefaults() DemandConfig {
	if c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.6
	}
	if c.PeakHour == 0 {
		c.PeakHour = 14
	}
	if c.BurstMeanHours == 0 {
		c.BurstMeanHours = 2
	}
	if c.BurstShare == 0 {
		c.BurstShare = 0.25
	}
	if c.MaxShare == 0 {
		c.MaxShare = 0.9
	}
	if c.ReadsPerBlockHour == 0 {
		c.ReadsPerBlockHour = 2
	}
	if c.HealthyLatencyMs == 0 {
		c.HealthyLatencyMs = 8
	}
	return c
}

// burst is one precomputed demand episode.
type burst struct {
	start, end float64
	amp        float64
}

// Demand is the materialized demand model: the full burst schedule and
// rack skew are drawn at construction, so queries are pure.
type Demand struct {
	cfg   DemandConfig
	racks int
	skew  []float64
	// bursts are episode records sorted by start time; starts is the
	// parallel start-time array the share query binary-searches.
	bursts []burst
	starts []float64
	// maxOverlap bounds how many episodes can cover one instant, so the
	// share query scans a bounded prefix behind the binary search.
	maxOverlap int
}

// NewDemand draws the run's demand schedule: burst episodes over the
// horizon and one skew multiplier per rack, all from a dedicated stream
// salted off the seed. racks <= 1 means a flat (unskewed) fleet.
func NewDemand(cfg DemandConfig, horizonHours float64, racks int, seed uint64) (*Demand, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	r := rng.New(seed ^ demandSeedSalt)
	d := &Demand{cfg: cfg, racks: racks}
	if racks > 1 && cfg.RackSkew > 0 {
		d.skew = make([]float64, racks)
		for i := range d.skew {
			d.skew[i] = 1 + cfg.RackSkew*(2*r.Float64()-1)
		}
	}
	if cfg.BurstsPerDay > 0 {
		rate := cfg.BurstsPerDay / 24
		for t := r.Exp(rate); t < horizonHours; t += r.Exp(rate) {
			dur := r.Exp(1 / cfg.BurstMeanHours)
			amp := cfg.BurstShare * (0.5 + r.Float64())
			d.bursts = append(d.bursts, burst{start: t, end: t + dur, amp: amp})
			d.starts = append(d.starts, t)
		}
	}
	// Overlap bound: an episode alive at t must start after t minus the
	// longest episode; precompute the worst backward scan length.
	longest := 0.0
	for _, b := range d.bursts {
		if dur := b.end - b.start; dur > longest {
			longest = dur
		}
	}
	for i := range d.bursts {
		n := 1
		for j := i - 1; j >= 0 && d.bursts[i].start-d.bursts[j].start <= longest; j-- {
			n++
		}
		if n > d.maxOverlap {
			d.maxOverlap = n
		}
	}
	return d, nil
}

// Config returns the effective (default-filled) config.
func (d *Demand) Config() DemandConfig { return d.cfg }

// Bursts returns the precomputed episode count.
func (d *Demand) Bursts() int { return len(d.bursts) }

// BurstAt returns episode i's start hour, duration, and amplitude.
func (d *Demand) BurstAt(i int) (start, hours, amp float64) {
	b := d.bursts[i]
	return b.start, b.end - b.start, b.amp
}

// diurnal is the base user share at nowHours: a raised cosine around
// BaseShare swinging ±DiurnalAmplitude·BaseShare, peaking at PeakHour.
//
//farm:hotpath runs per demand query on the transfer-submission path
func (d *Demand) diurnal(nowHours float64) float64 {
	hourOfDay := math.Mod(nowHours, 24)
	if hourOfDay < 0 {
		hourOfDay += 24
	}
	phase := (hourOfDay - d.cfg.PeakHour) * (2 * math.Pi / 24)
	return d.cfg.BaseShare * (1 + d.cfg.DiurnalAmplitude*math.Cos(phase))
}

// burstBoost sums the amplitudes of episodes covering nowHours: a
// manual binary search over the start array plus a bounded backward
// scan (episodes are sorted by start, not end, so an earlier long
// episode can still cover now).
//
//farm:hotpath runs per demand query on the transfer-submission path
func (d *Demand) burstBoost(nowHours float64) float64 {
	lo, hi := 0, len(d.starts)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.starts[mid] <= nowHours {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first episode starting after now; scan backward over the
	// bounded overlap window.
	boost := 0.0
	for i, n := lo-1, 0; i >= 0 && n < d.maxOverlap; i, n = i-1, n+1 {
		if d.bursts[i].end > nowHours {
			boost += d.bursts[i].amp
		}
	}
	return boost
}

// FleetShare returns the rack-agnostic user share at nowHours — the
// load signal throttle policies react to.
//
//farm:hotpath runs per throttle decision
func (d *Demand) FleetShare(nowHours float64) float64 {
	s := d.diurnal(nowHours) + d.burstBoost(nowHours)
	if s > d.cfg.MaxShare {
		return d.cfg.MaxShare
	}
	return s
}

// Share returns disk's instantaneous user share at nowHours, including
// its rack's skew multiplier. racks is fixed at construction; disks map
// to racks round-robin exactly as the topology layer does.
//
//farm:hotpath runs per transfer submission and degraded-read sample
func (d *Demand) Share(nowHours float64, diskID int) float64 {
	s := d.diurnal(nowHours) + d.burstBoost(nowHours)
	if d.skew != nil {
		s *= d.skew[diskID%d.racks]
	}
	if s > d.cfg.MaxShare {
		return d.cfg.MaxShare
	}
	return s
}

// ContentionFactor converts a user share into the transfer-duration
// stretch it inflicts on a recovery flow sharing the spindle: the flow
// gets the residual bandwidth, so the duration divides by (1 - share).
//
//farm:hotpath runs per transfer submission
func ContentionFactor(share float64) float64 {
	if share <= 0 {
		return 1
	}
	if share > 0.95 {
		share = 0.95
	}
	return 1 / (1 - share)
}

// Poisson draws a Poisson variate with the given mean from src (Knuth's
// product method; means here are small — degraded-read counts per
// window — so the loop is short). Deterministic given the stream.
func Poisson(src *rng.Source, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation keeps the draw O(1) for storm windows.
		n := int(src.Norm(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
