package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFixed(t *testing.T) {
	f, err := NewFixed(16)
	if err != nil {
		t.Fatal(err)
	}
	if f.RecoveryMBps(0) != 16 || f.RecoveryMBps(1e6) != 16 {
		t.Fatal("fixed model not constant")
	}
	if f.Name() != "fixed" {
		t.Fatal("name wrong")
	}
	if _, err := NewFixed(0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewFixed(-4); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestNewDiurnalValidation(t *testing.T) {
	if _, err := NewDiurnal(80, 16, 0.8, 14); err != nil {
		t.Fatalf("valid diurnal rejected: %v", err)
	}
	bad := []struct{ disk, floor, share, peak float64 }{
		{0, 16, 0.8, 14},
		{80, 0, 0.8, 14},
		{80, 100, 0.8, 14}, // floor > disk
		{80, 16, 1.5, 14},
		{80, 16, -0.1, 14},
		{80, 16, 0.8, 24},
		{80, 16, 0.8, -1},
	}
	for i, c := range bad {
		if _, err := NewDiurnal(c.disk, c.floor, c.share, c.peak); err == nil {
			t.Errorf("bad diurnal %d accepted", i)
		}
	}
}

func TestDiurnalPeakAndTrough(t *testing.T) {
	d, err := NewDiurnal(80, 16, 0.8, 14)
	if err != nil {
		t.Fatal(err)
	}
	// At the peak hour, users take 80% → recovery gets max(16, 16) = 16.
	if got := d.RecoveryMBps(14); math.Abs(got-16) > 1e-9 {
		t.Fatalf("peak recovery = %v, want 16", got)
	}
	// Twelve hours later, user share is zero → recovery gets the disk.
	if got := d.RecoveryMBps(2); math.Abs(got-80) > 1e-9 {
		t.Fatalf("trough recovery = %v, want 80", got)
	}
	if d.Name() != "diurnal" {
		t.Fatal("name wrong")
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	d, _ := NewDiurnal(80, 16, 0.8, 14)
	for h := 0.0; h < 24; h += 0.5 {
		a := d.RecoveryMBps(h)
		b := d.RecoveryMBps(h + 24*365)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("not 24h-periodic at hour %v: %v vs %v", h, a, b)
		}
	}
}

func TestDiurnalUserShareRange(t *testing.T) {
	d, _ := NewDiurnal(80, 16, 0.8, 14)
	for h := 0.0; h < 48; h += 0.25 {
		s := d.UserShare(h)
		if s < 0 || s > 0.8+1e-12 {
			t.Fatalf("user share %v out of [0, 0.8] at hour %v", s, h)
		}
	}
	if got := d.UserShare(14); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("peak share = %v, want 0.8", got)
	}
}

func TestDiurnalFloorRespected(t *testing.T) {
	// Even with crushing user load, recovery keeps its floor.
	d, _ := NewDiurnal(80, 16, 1.0, 12)
	for h := 0.0; h < 24; h += 0.1 {
		if d.RecoveryMBps(h) < 16-1e-9 {
			t.Fatalf("recovery fell below floor at hour %v", h)
		}
	}
}

func TestMeanRecoveryMBps(t *testing.T) {
	f, _ := NewFixed(16)
	if got := MeanRecoveryMBps(f); math.Abs(got-16) > 1e-9 {
		t.Fatalf("fixed mean = %v", got)
	}
	// Closed form: the trapezoid rule integrates a constant exactly, so
	// the mean of Fixed must equal the constant to the last ULP (the old
	// left-rectangle loop already had this property; the trapezoid keeps
	// it while also weighting the endpoints correctly).
	for _, mbps := range []float64{1, 16.25, 37.5, 80} {
		c, _ := NewFixed(mbps)
		if got := MeanRecoveryMBps(c); got != mbps {
			t.Fatalf("fixed %v mean = %v, want exact", mbps, got)
		}
	}
	// Closed form: a raised cosine over a full period averages to its
	// midline. With the floor below the trough, Diurnal is exactly
	// DiskMBps·(1 - share/2 + share/2·cos), whose day-mean is
	// DiskMBps·(1 - share/2); the trapezoid on a periodic function is
	// spectrally accurate, so the numeric mean must agree to float noise.
	dNoFloor, err := NewDiurnal(80, 1e-9, 0.5, 14)
	if err != nil {
		t.Fatal(err)
	}
	want := 80 * (1 - 0.5/2)
	if got := MeanRecoveryMBps(dNoFloor); math.Abs(got-want) > 1e-6 {
		t.Fatalf("cosine mean = %v, want %v", got, want)
	}
	d, _ := NewDiurnal(80, 16, 0.8, 14)
	mean := MeanRecoveryMBps(d)
	// Average user share is 0.4, so mean free bandwidth is 48; the floor
	// only binds near the peak, lifting the mean slightly.
	if mean < 48-1 || mean > 56 {
		t.Fatalf("diurnal mean = %v, want ~48-52", mean)
	}
	// The adaptive model must beat the paper's fixed reservation.
	if mean <= 16 {
		t.Fatal("adaptive model no better than fixed floor")
	}
}

// Property: recovery bandwidth is always within [floor, disk] for valid
// models at any time.
func TestQuickDiurnalBounds(t *testing.T) {
	f := func(hour float64, share uint8) bool {
		d, err := NewDiurnal(80, 16, float64(share%101)/100, 14)
		if err != nil {
			return false
		}
		got := d.RecoveryMBps(math.Abs(hour))
		return got >= 16-1e-9 && got <= 80+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeHourHandled(t *testing.T) {
	d, _ := NewDiurnal(80, 16, 0.8, 14)
	if got := d.UserShare(-10); got < 0 || got > 0.8 {
		t.Fatalf("negative hour share = %v", got)
	}
}
