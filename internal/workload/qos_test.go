package workload

import (
	"math"
	"testing"
)

func TestThrottleDisabledIsNil(t *testing.T) {
	p, err := NewThrottle(ThrottleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatal("zero config built a throttle policy")
	}
}

func TestThrottleValidation(t *testing.T) {
	bad := []ThrottleConfig{
		{Policy: "bogus"},
		{Policy: PolicyAIMD, FloorMBps: -1},
		{Policy: PolicyAIMD, FloorMBps: 100, MaxMBps: 50},
		{Policy: PolicyAIMD, DecreaseFactor: 1.5},
		{Policy: PolicyAIMD, HighLoad: 2},
		{Policy: PolicyAIMD, HighLoad: 0.3, LowLoad: 0.6},
		{Policy: PolicyAIMD, IncreaseMBps: math.NaN()},
	}
	for i, cfg := range bad {
		if _, err := NewThrottle(cfg); err == nil {
			t.Errorf("bad throttle config %d accepted: %+v", i, cfg)
		}
	}
}

func TestFixedFloorNeverMoves(t *testing.T) {
	p, err := NewThrottle(ThrottleConfig{Policy: PolicyFixed})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != PolicyFixed {
		t.Fatal("name wrong")
	}
	for _, share := range []float64{0, 0.3, 0.9} {
		if got := p.RecoveryMBps(0, share, Backlog{PendingBytes: 1 << 40, Streams: 1, MTTFHours: 1}); got != 16 {
			t.Fatalf("fixed floor moved to %v at share %v", got, share)
		}
	}
}

func TestAIMDHysteresis(t *testing.T) {
	p, err := NewThrottle(ThrottleConfig{Policy: PolicyAIMD})
	if err != nil {
		t.Fatal(err)
	}
	// Quiet fleet: additive increase up to the ceiling, then hold.
	var prev float64
	for i := 0; i < 40; i++ {
		cur := p.RecoveryMBps(float64(i), 0.1, Backlog{})
		if cur < prev {
			t.Fatalf("rate decreased under quiet load: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev != 64 {
		t.Fatalf("quiet-fleet rate = %v, want ceiling 64", prev)
	}
	// Deadband: the rate must hold exactly — no oscillation.
	for i := 0; i < 10; i++ {
		if got := p.RecoveryMBps(100, 0.45, Backlog{}); got != prev {
			t.Fatalf("rate moved inside the deadband: %v -> %v", prev, got)
		}
	}
	// Busy fleet: multiplicative decrease down to the floor, then hold.
	for i := 0; i < 10; i++ {
		prev = p.RecoveryMBps(200, 0.9, Backlog{})
	}
	if prev != 16 {
		t.Fatalf("busy-fleet rate = %v, want floor 16", prev)
	}
}

func TestDeadlineRefusesStarvation(t *testing.T) {
	p, err := NewThrottle(ThrottleConfig{Policy: PolicyDeadline})
	if err != nil {
		t.Fatal(err)
	}
	// Crush the AIMD component to its floor first.
	for i := 0; i < 10; i++ {
		p.RecoveryMBps(float64(i), 0.95, Backlog{})
	}
	// Huge backlog, imminent next failure: the Luby bound exceeds the
	// floor, so the policy must rise above it even under peak load.
	b := Backlog{PendingBytes: 4 << 40, Streams: 8, MTTFHours: 2}
	min := MinRepairMBps(b)
	if min <= 16 {
		t.Fatalf("test backlog too small to bind: min = %v", min)
	}
	got := p.RecoveryMBps(100, 0.95, b)
	if got < math.Min(min, 64) {
		t.Fatalf("deadline policy throttled to %v below the repair bound %v", got, min)
	}
	// No backlog: behaves like plain AIMD at its floor.
	if got := p.RecoveryMBps(101, 0.95, Backlog{}); got != 16 {
		t.Fatalf("empty-backlog rate = %v, want floor", got)
	}
}

func TestMinRepairMBps(t *testing.T) {
	if MinRepairMBps(Backlog{}) != 0 {
		t.Fatal("empty backlog has a bound")
	}
	if MinRepairMBps(Backlog{PendingBytes: 1 << 30, MTTFHours: 0}) != 0 {
		t.Fatal("no deadline still bound")
	}
	// 1 GiB across 1 stream with 1 hour to deadline: 1 GiB / 3600 s.
	got := MinRepairMBps(Backlog{PendingBytes: 1 << 30, Streams: 1, MTTFHours: 1})
	want := float64(1<<30) / (3600 * 1e6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	// More streams divide the per-stream requirement.
	half := MinRepairMBps(Backlog{PendingBytes: 1 << 30, Streams: 2, MTTFHours: 1})
	if math.Abs(half-want/2) > 1e-12 {
		t.Fatalf("2-stream bound = %v, want %v", half, want/2)
	}
	// Streams <= 0 clamps to 1 rather than dividing by zero.
	if MinRepairMBps(Backlog{PendingBytes: 1 << 30, Streams: 0, MTTFHours: 1}) != got {
		t.Fatal("zero streams not clamped")
	}
}

func TestThrottleDeterministic(t *testing.T) {
	mk := func() ThrottlePolicy {
		p, err := NewThrottle(ThrottleConfig{Policy: PolicyDeadline})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	shares := []float64{0.1, 0.7, 0.7, 0.2, 0.45, 0.9, 0.1}
	for i, s := range shares {
		bl := Backlog{PendingBytes: int64(i) << 32, Streams: i + 1, MTTFHours: 24}
		if a.RecoveryMBps(float64(i), s, bl) != b.RecoveryMBps(float64(i), s, bl) {
			t.Fatalf("policy trajectories diverged at step %d", i)
		}
	}
}
